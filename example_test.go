package lumiere_test

import (
	"fmt"
	"time"

	"lumiere"
)

// ExampleRun shows the minimal simulated execution: four replicas running
// Lumiere over the partial synchrony model. Seeded runs are
// deterministic, so the output is exact.
func ExampleRun() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol: lumiere.ProtoLumiere,
		F:        1, // n = 3f+1 = 4
		Delta:    100 * time.Millisecond,
		Duration: 10 * time.Second,
		Seed:     1,
	})
	fmt.Println("replicas:", res.Cfg.N)
	fmt.Println("decided:", res.DecisionCount() > 100)
	// Output:
	// replicas: 4
	// decided: true
}

// ExampleRun_faults shows a run with the maximum number of crashed
// replicas: the protocol stays live with f faults.
func ExampleRun_faults() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:    lumiere.ProtoLumiere,
		F:           1,
		Delta:       100 * time.Millisecond,
		Corruptions: lumiere.CrashFirst(1),
		Duration:    20 * time.Second,
		Seed:        1,
	})
	fmt.Println("live with f crashes:", res.DecisionCount() > 0)
	// Output:
	// live with f crashes: true
}

// ExampleRun_chaos runs Lumiere through a split-brain that heals at
// GST: an island of f+1 processors is cut off, the §2 clamp floods the
// withheld traffic back at GST+Δ, and the protocol must resynchronize.
func ExampleRun_chaos() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:   lumiere.ProtoLumiere,
		F:          1,
		Delta:      100 * time.Millisecond,
		GST:        2 * time.Second,
		Partitions: [][]lumiere.NodeID{{0, 1}}, // island until GST
		Duration:   20 * time.Second,
		Seed:       1,
	})
	_, ok := res.Collector.FirstDecisionAfter(res.GST)
	fmt.Println("synced after heal:", ok)
	// Output:
	// synced after heal: true
}

// ExampleRunChaosSweep runs the chaos conformance sweep: generated
// scenarios with guaranteed link conditions (partitions, loss,
// duplication, reorder jitter, crash-recovery churn, omission budgets),
// cycled across every protocol and checked against the §2 obligations.
// The report depends only on (count, seed), so the output is exact at
// any worker count.
func ExampleRunChaosSweep() {
	rep := lumiere.RunChaosSweep(6, 7, lumiere.SweepOptions{})
	fmt.Println("cells:", len(rep.Cells))
	fmt.Println("conformant:", rep.Conformant())
	// Output:
	// cells: 6
	// conformant: true
}

// ExampleRunAttackSweep runs every protocol under every adaptive attack
// strategy — vote-then-silence desync, next-leader omission, GST
// straddling, protocol-legal sync spam — and checks that all of them
// stay live: the strategies are model-legal, so a stalled cell would be
// a protocol failure. The report depends only on (f, seed), so the
// output is exact at any worker count.
func ExampleRunAttackSweep() {
	rep := lumiere.RunAttackSweep(1, 42, lumiere.SweepOptions{})
	fmt.Println("cells:", len(rep.Cells))
	fmt.Println("all decided after GST:", rep.AllDecided())
	// Output:
	// cells: 24
	// all decided after GST: true
}

// Example_wordComplexity shows the per-word communication accounting:
// every honest send is charged its size in words (one word per κ-bit
// signature, certificate, hash or bounded integer), queryable as run
// totals, post-GST windows (the paper's W_T), and per-epoch series.
func Example_wordComplexity() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol: lumiere.ProtoLumiere,
		F:        1,
		Delta:    100 * time.Millisecond,
		Duration: 10 * time.Second,
		Seed:     1,
	})
	words, _, _ := res.Collector.WordsWindowAfter(res.GST)
	n := res.Cfg.N
	fmt.Println("accounted words:", res.Collector.WordsTotal() > 0)
	fmt.Println("W_GST within 8n^2 words:", words <= int64(8*n*n))
	fmt.Println("epochs tracked:", len(res.Collector.WordsByEpoch()) > 0)
	// Output:
	// accounted words: true
	// W_GST within 8n^2 words: true
	// epochs tracked: true
}

// ExampleRun_attack arms the complexity-saturation attack: the
// corrupted processor goes dark during its leadership slots (its views
// fail, forcing the view-change machinery to fire continuously) and
// spams protocol-legal sync traffic the rest of the time. Progress
// slows — but the per-decision word cost stays within the O(n²)
// ceiling the protocol guarantees. The baseline corrupts the same
// processor without a strategy, so both runs charge the same honest
// set.
func ExampleRun_attack() {
	base := lumiere.Scenario{
		Protocol:    lumiere.ProtoLumiere,
		F:           1,
		Delta:       50 * time.Millisecond,
		DeltaActual: 5 * time.Millisecond,
		Duration:    20 * time.Second,
		Seed:        1,
	}
	quiet := base
	quiet.Corruptions = []lumiere.Corruption{{Node: 3, Behavior: lumiere.BehaviorStrategic}}
	attacked := base
	attacked.Attack = lumiere.AttackSpec{Name: lumiere.AttackSaturate}
	q, a := lumiere.Run(quiet), lumiere.Run(attacked)
	perDec := a.Collector.Stats(a.GST, 2).MeanWords
	n := a.Cfg.N
	fmt.Println("still live:", a.DecisionCount() > 0)
	fmt.Println("attack slowed decisions:", a.DecisionCount() < q.DecisionCount()/2)
	fmt.Println("words per decision within 4n^2:", perDec <= float64(4*n*n))
	// Output:
	// still live: true
	// attack slowed decisions: true
	// words per decision within 4n^2: true
}

// ExampleRun_smr runs full chained-HotStuff state machine replication
// under the Lumiere pacemaker.
func ExampleRun_smr() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:     lumiere.ProtoLumiere,
		F:            1,
		Delta:        100 * time.Millisecond,
		DeltaActual:  5 * time.Millisecond,
		Duration:     10 * time.Second,
		Seed:         1,
		SMR:          true,
		WorkloadRate: 100,
	})
	fmt.Println("commands injected:", res.Injected > 0)
	fmt.Println("state machines:", res.SMs[0] != nil)
	// Output:
	// commands injected: true
	// state machines: true
}
