package lumiere_test

import (
	"fmt"
	"time"

	"lumiere"
)

// ExampleRun shows the minimal simulated execution: four replicas running
// Lumiere over the partial synchrony model. Seeded runs are
// deterministic, so the output is exact.
func ExampleRun() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol: lumiere.ProtoLumiere,
		F:        1, // n = 3f+1 = 4
		Delta:    100 * time.Millisecond,
		Duration: 10 * time.Second,
		Seed:     1,
	})
	fmt.Println("replicas:", res.Cfg.N)
	fmt.Println("decided:", res.DecisionCount() > 100)
	// Output:
	// replicas: 4
	// decided: true
}

// ExampleRun_faults shows a run with the maximum number of crashed
// replicas: the protocol stays live with f faults.
func ExampleRun_faults() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:    lumiere.ProtoLumiere,
		F:           1,
		Delta:       100 * time.Millisecond,
		Corruptions: lumiere.CrashFirst(1),
		Duration:    20 * time.Second,
		Seed:        1,
	})
	fmt.Println("live with f crashes:", res.DecisionCount() > 0)
	// Output:
	// live with f crashes: true
}

// ExampleRun_chaos runs Lumiere through a split-brain that heals at
// GST: an island of f+1 processors is cut off, the §2 clamp floods the
// withheld traffic back at GST+Δ, and the protocol must resynchronize.
func ExampleRun_chaos() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:   lumiere.ProtoLumiere,
		F:          1,
		Delta:      100 * time.Millisecond,
		GST:        2 * time.Second,
		Partitions: [][]lumiere.NodeID{{0, 1}}, // island until GST
		Duration:   20 * time.Second,
		Seed:       1,
	})
	_, ok := res.Collector.FirstDecisionAfter(res.GST)
	fmt.Println("synced after heal:", ok)
	// Output:
	// synced after heal: true
}

// ExampleRunChaosSweep runs the chaos conformance sweep: generated
// scenarios with guaranteed link conditions (partitions, loss,
// duplication, reorder jitter, crash-recovery churn, omission budgets),
// cycled across every protocol and checked against the §2 obligations.
// The report depends only on (count, seed), so the output is exact at
// any worker count.
func ExampleRunChaosSweep() {
	rep := lumiere.RunChaosSweep(6, 7, lumiere.SweepOptions{})
	fmt.Println("cells:", len(rep.Cells))
	fmt.Println("conformant:", rep.Conformant())
	// Output:
	// cells: 6
	// conformant: true
}

// ExampleRun_smr runs full chained-HotStuff state machine replication
// under the Lumiere pacemaker.
func ExampleRun_smr() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:     lumiere.ProtoLumiere,
		F:            1,
		Delta:        100 * time.Millisecond,
		DeltaActual:  5 * time.Millisecond,
		Duration:     10 * time.Second,
		Seed:         1,
		SMR:          true,
		WorkloadRate: 100,
	})
	fmt.Println("commands injected:", res.Injected > 0)
	fmt.Println("state machines:", res.SMs[0] != nil)
	// Output:
	// commands injected: true
	// state machines: true
}
