package lumiere

import (
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/harness"
	"lumiere/internal/nettcp"
	"lumiere/internal/network"
	"lumiere/internal/redteam"
	"lumiere/internal/types"
	"lumiere/internal/workload"
)

// Re-exported core vocabulary.
type (
	// Scenario describes one simulated execution; zero values get
	// sensible defaults (see the field docs).
	Scenario = harness.Scenario
	// Result carries everything measurable about one execution.
	Result = harness.Result
	// Protocol selects the view synchronization protocol under test.
	Protocol = harness.Protocol
	// Corruption assigns a Byzantine behavior to one processor.
	Corruption = adversary.Corruption
	// Behavior is a Byzantine strategy.
	Behavior = adversary.Behavior
	// NodeID identifies a processor.
	NodeID = types.NodeID
	// View is a view number.
	View = types.View
	// Epoch groups views.
	Epoch = types.Epoch
	// Table is a rendered experiment result.
	Table = harness.Table
	// ClusterNode is a live TCP replica.
	ClusterNode = nettcp.Node
	// ClusterConfig configures one TCP replica.
	ClusterConfig = nettcp.NodeConfig
	// ClusterExperiment configures one loopback wall-clock cluster run
	// over real sockets (see RunCluster).
	ClusterExperiment = harness.ClusterExperiment
	// ClusterResult aggregates a wall-clock cluster run's measures.
	ClusterResult = harness.ClusterResult
	// ClusterStats snapshots one TCP node's transport counters.
	ClusterStats = nettcp.Stats
	// ClusterPeerStats counts one outbound TCP peer link's traffic.
	ClusterPeerStats = nettcp.PeerStats
	// LinkConditioner realizes link chaos at the socket layer of a TCP
	// node (ClusterConfig.Link), honoring the §2 clamp.
	LinkConditioner = nettcp.Conditioner
	// SweepOptions configures a parallel scenario sweep.
	SweepOptions = harness.SweepOptions
	// SweepCell is one completed cell of a sweep.
	SweepCell = harness.SweepCell
	// SweepResult aggregates a sweep in matrix order.
	SweepResult = harness.SweepResult
	// LinkPolicy is the adversary's full per-message control: delay,
	// drop, duplicate — clamped to the §2 model by the network.
	LinkPolicy = network.LinkPolicy
	// Topology is a regional WAN link matrix (Scenario.Topology): nodes
	// grouped into regions, one latency class per region pair, optional
	// per-region processing delays. Compiles to a zero-allocation
	// LinkPolicy under the §2 clamp.
	Topology = network.Topology
	// WANCell is one protocol × WAN-preset cell of a WAN degradation
	// sweep.
	WANCell = harness.WANCell
	// WANReport aggregates a WAN degradation sweep.
	WANReport = harness.WANReport
	// DriftCell is one protocol × drift-magnitude cell of a clock-drift
	// tolerance sweep.
	DriftCell = harness.DriftCell
	// DriftReport aggregates a clock-drift tolerance sweep.
	DriftReport = harness.DriftReport
	// OmissionBudget authorizes true post-GST message omission
	// (Scenario.OmissionBudget); MaxSenders must be ≤ f.
	OmissionBudget = network.OmissionBudget
	// Downtime is one crash interval of a crash-recovery (churn)
	// corruption.
	Downtime = adversary.Downtime
	// ChaosCell is one checked cell of a chaos conformance sweep.
	ChaosCell = harness.ChaosCell
	// ChaosReport aggregates a chaos conformance sweep.
	ChaosReport = harness.ChaosReport
	// AttackSpec selects an adaptive attack strategy for a scenario
	// (Scenario.Attack): a named Strategy observing protocol traffic
	// through read-only hooks and steering the corrupted processors
	// dynamically.
	AttackSpec = adversary.AttackSpec
	// AttackCell is one protocol × strategy cell of an attack sweep.
	AttackCell = harness.AttackCell
	// AttackReport aggregates an attack sweep.
	AttackReport = harness.AttackReport
	// Arena is a reusable per-worker execution stack: one long-lived
	// scheduler/network/crypto/metrics/replica bundle recycled across
	// scenario runs via RunIn. Sweeps thread one per worker
	// automatically; reuse is byte-identical to fresh construction.
	Arena = harness.Arena
	// RedTeamCandidate is one point of the adversarial search space: an
	// adaptive attack composed with chaos conditions and a GST
	// placement.
	RedTeamCandidate = redteam.Candidate
	// RedTeamSpace is a finite adversarial search space: a choice list
	// per candidate axis.
	RedTeamSpace = redteam.Space
	// RedTeamObjective selects what the adversarial search maximizes
	// (sync latency, W_GST words, or p99 commit latency).
	RedTeamObjective = redteam.Objective
	// RedTeamConfig parameterizes the RedTeam search.
	RedTeamConfig = redteam.Config
	// Frontier is the searched worst-case frontier artifact (one entry
	// per protocol × objective), committed as FRONTIER.json.
	Frontier = redteam.Frontier
	// FrontierEntry is one protocol × objective row of a Frontier.
	FrontierEntry = redteam.Entry
)

// Protocols.
const (
	ProtoLumiere   = harness.ProtoLumiere
	ProtoBasic     = harness.ProtoBasic
	ProtoLP22      = harness.ProtoLP22
	ProtoFever     = harness.ProtoFever
	ProtoCogsworth = harness.ProtoCogsworth
	ProtoNK20      = harness.ProtoNK20
	ProtoRareSync  = harness.ProtoRareSync
)

// Byzantine behaviors.
const (
	BehaviorHonest        = adversary.BehaviorHonest
	BehaviorCrash         = adversary.BehaviorCrash
	BehaviorNonProposing  = adversary.BehaviorNonProposing
	BehaviorLateProposing = adversary.BehaviorLateProposing
	BehaviorCrashAt       = adversary.BehaviorCrashAt
	BehaviorChurn         = adversary.BehaviorChurn
	BehaviorStrategic     = adversary.BehaviorStrategic
)

// Adaptive attack strategies (Scenario.Attack / RunAttackSweep).
const (
	// AttackViewDesync is the vote-then-silence desynchronizer.
	AttackViewDesync = adversary.AttackViewDesync
	// AttackLeaderTarget omits traffic to/from the next k leaders.
	AttackLeaderTarget = adversary.AttackLeaderTarget
	// AttackGSTStraddle is honest until GST, worst-case after.
	AttackGSTStraddle = adversary.AttackGSTStraddle
	// AttackSaturate spams protocol-legal sync traffic toward O(n²).
	AttackSaturate = adversary.AttackSaturate
)

// AttackNames lists the implemented attack strategies.
func AttackNames() []string { return adversary.AttackNames() }

// AllProtocols lists every implemented protocol in Table 1 order.
var AllProtocols = harness.AllProtocols

// Run executes a simulated scenario to completion.
func Run(s Scenario) *Result { return harness.Run(s) }

// NewArena creates an empty execution arena for serial scenario reuse:
// RunIn recycles its scheduler, network, crypto suite, metrics buffers
// and replica shells across runs, eliminating per-run setup cost. An
// arena must not be shared between goroutines.
func NewArena() *Arena { return harness.NewArena() }

// RunIn executes a scenario inside an arena, recycling its layers. The
// Result is independent of the arena and byte-identical to Run(s); a nil
// arena is equivalent to Run(s). Use one arena per goroutine when
// running many scenarios back to back (RunSweep does this per worker
// automatically).
func RunIn(a *Arena, s Scenario) *Result { return harness.RunIn(a, s) }

// RunSweep executes a scenario matrix on a worker pool and returns the
// results in matrix order. Cell seeds are derived from (opts.BaseSeed,
// cell index), so the aggregated results are byte-identical at every
// worker count.
func RunSweep(scenarios []Scenario, opts SweepOptions) *SweepResult {
	return harness.Sweep(scenarios, opts)
}

// DeriveSeed derives the deterministic seed of sweep cell index from a
// base seed.
func DeriveSeed(base int64, index int) int64 { return harness.DeriveSeed(base, index) }

// GenScenario derives a random but fully reproducible scenario from seed
// (random corruptions, delay policy, GST, stagger, SMR on/off); the
// Protocol field is left for the caller. See the conformance suite.
func GenScenario(seed int64) Scenario { return harness.GenScenario(seed) }

// ConformanceReport checks a finished run against the protocol-
// independent safety and liveness obligations of §2, returning one
// message per violation.
func ConformanceReport(res *Result) []string { return harness.ConformanceReport(res) }

// StartClusterNode boots a real TCP replica (see cmd/lumiere-cluster).
func StartClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return nettcp.StartNode(cfg) }

// RunCluster boots a loopback cluster of real TCP replicas (one shared
// wall-clock origin), runs it for the experiment's duration, and
// aggregates per-node metrics — words in the simulator's per-kind model,
// merged decision stream, transport counters — into one result. The
// wall-clock counterpart of Run.
func RunCluster(e ClusterExperiment) (*ClusterResult, error) { return harness.RunCluster(e) }

// ClusterTable runs one loopback TCP cluster per f in fs (n = 3f+1) for
// perRun of wall clock each and renders sync-latency and words columns
// in a fixed schema — the real-I/O table printed by
// `lumiere-cluster -local -table` and recorded in EXPERIMENTS.md.
func ClusterTable(fs []int, delta, perRun time.Duration, seed int64) (*Table, error) {
	return harness.ClusterTable(fs, delta, perRun, seed)
}

// CrashFirst returns crash corruptions for processors 0..k-1.
func CrashFirst(k int) []Corruption { return adversary.CrashFirst(k) }

// NonProposingSet returns non-proposing corruptions for the given nodes.
func NonProposingSet(nodes ...NodeID) []Corruption { return adversary.NonProposingSet(nodes...) }

// Churn returns a crash-recovery corruption: the node is silent and
// deaf during each Downtime and resumes with intact state after.
func Churn(node NodeID, downs ...Downtime) Corruption { return adversary.Churn(node, downs...) }

// PeriodicChurn returns a churn corruption with cycles downtimes of
// length downFor, the first starting at start, spaced period apart.
func PeriodicChurn(node NodeID, start, downFor, period time.Duration, cycles int) Corruption {
	return adversary.PeriodicChurn(node, start, downFor, period, cycles)
}

// RunChaosSweep runs the chaos conformance sweep: count generated
// scenarios with guaranteed link conditions (partitions, loss,
// duplication, reorder jitter, churn, omission budgets), cycled across
// AllProtocols and conformance-checked. The report depends only on
// (count, seed), never on the worker count.
func RunChaosSweep(count int, seed int64, opts SweepOptions) *ChaosReport {
	return harness.ChaosSweep(count, seed, opts)
}

// GenChaosScenario derives a reproducible scenario with at least one
// chaos axis always on; see GenScenario.
func GenChaosScenario(seed int64) Scenario { return harness.GenChaosScenario(seed) }

// RunAttackSweep runs every protocol under every adaptive attack
// strategy (AllProtocols × AttackNames) and reports each cell's
// post-GST view-synchronization latency and honest communication in
// words. The report depends only on (f, seed), never on the worker
// count.
func RunAttackSweep(f int, seed int64, opts SweepOptions) *AttackReport {
	return harness.AttackSweep(f, seed, opts)
}

// AttackSpecs lists the attack table's strategies (default parameters)
// in column order.
func AttackSpecs() []AttackSpec { return harness.AttackSpecs() }

// AttackDelta is the Δ every attack, red-team and WAN table runs
// under (50ms): large enough that sub-Δ timing structure is visible,
// small enough that long adversarial horizons stay cheap to simulate.
const AttackDelta = harness.AttackDelta

// WANPresets lists the named WAN deployment topologies in table order
// (see PresetTopology).
var WANPresets = harness.WANPresets

// PresetTopology builds a named WAN deployment topology for n nodes
// under Δ = delta: "single" (one region), "wan3" (three regions),
// "hub" (hub region + satellites), "degraded" (wan3 plus a slow last
// region). Panics on an unknown name; WANPresets lists the valid ones.
func PresetTopology(name string, n int, delta time.Duration) *Topology {
	return harness.PresetTopology(name, n, delta)
}

// RunWANSweep runs every WAN protocol over the deployment presets —
// sync latency and honest words per cell, plus a p99 commit column
// from an SMR run — and returns the raw cells. The report depends only
// on (f, seed), never on the worker count.
func RunWANSweep(f int, seed int64, opts SweepOptions) *WANReport {
	return harness.WANSweep(f, seed, opts)
}

// TopologyTable renders the WAN graceful-degradation table: one row
// per deployment preset (single region → degraded WAN), columns per
// protocol with post-GST sync latency, honest words, and p99 commit
// latency. Byte-identical at every worker count.
func TopologyTable(f int, seed int64) *Table { return harness.TopologyTable(f, seed) }

// TopologyTableOpts is TopologyTable with explicit sweep options.
func TopologyTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.TopologyTableOpts(f, seed, opts)
}

// DriftPPMAxis is the default drift-magnitude axis of the tolerance
// table, from perfect clocks to 50% rate error.
var DriftPPMAxis = harness.DriftPPMAxis

// RunDriftSweep sweeps per-node clock-drift magnitudes (±ppm,
// alternating sign by node parity — the worst pairwise spread) and
// checks each cell against the paper's Lemma 5.1–5.3 obligations,
// marking whether the magnitude is within the model's timing budget.
func RunDriftSweep(f int, ppms []int64, seed int64, opts SweepOptions) *DriftReport {
	return harness.DriftSweep(f, ppms, seed, opts)
}

// DriftToleranceTable renders the clock-drift tolerance table: one row
// per drift magnitude, in-model cells asserted violation-free and
// beyond-tolerance cells reported as a degradation regression table.
// Byte-identical at every worker count.
func DriftToleranceTable(f int, seed int64) *Table { return harness.DriftToleranceTable(f, seed) }

// DriftToleranceTableOpts is DriftToleranceTable with explicit sweep
// options.
func DriftToleranceTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.DriftToleranceTableOpts(f, seed, opts)
}

// RedTeam runs the adversarial search: for every protocol × objective,
// a grid sweep over the attack × chaos space, evolutionary refinement
// seeded with the scripted attacks, and delta-debugging minimization of
// the worst candidate found. The frontier — including every minimized
// candidate — depends only on (Config.Seed, Config.F, spaces), never on
// the worker count. The reference run is committed as FRONTIER.json;
// see DESIGN.md §1d.
func RedTeam(cfg RedTeamConfig) *Frontier { return redteam.SearchFrontier(cfg) }

// RedTeamTable runs the adversarial search at fault tolerance f and
// renders the frontier table (one row per protocol × objective: worst
// candidate, objective value, minimized reproducer).
func RedTeamTable(f int, seed int64, opts SweepOptions) *Table {
	return redteam.SearchFrontier(redteam.Config{F: f, Seed: seed, Workers: opts.Workers}).Table()
}

// RedTeamObjectives lists the adversarial search objectives in
// presentation order.
func RedTeamObjectives() []RedTeamObjective { return redteam.Objectives() }

// ReadFrontier loads a committed frontier artifact (FRONTIER.json).
func ReadFrontier(path string) (*Frontier, error) { return redteam.ReadFrontier(path) }

// ---------------------------------------------------------------------------
// Experiment drivers (the paper's table and figures; see EXPERIMENTS.md)
// ---------------------------------------------------------------------------

// Table1WorstCase regenerates Table 1's worst-case communication and
// latency rows as empirical n-sweeps.
func Table1WorstCase(fs []int, seed int64) (comm, latency *Table) {
	return harness.Table1WorstCase(fs, seed)
}

// Table1WorstCaseOpts is Table1WorstCase with explicit sweep options
// (worker count, progress callback).
func Table1WorstCaseOpts(fs []int, seed int64, opts SweepOptions) (comm, latency *Table) {
	return harness.Table1WorstCaseOpts(fs, seed, opts)
}

// Table1Eventual regenerates Table 1's eventual worst-case rows as
// f_a-sweeps at n = 3f+1.
func Table1Eventual(f int, fas []int, seed int64) (comm, latency *Table) {
	return harness.Table1Eventual(f, fas, seed)
}

// Table1EventualOpts is Table1Eventual with explicit sweep options.
func Table1EventualOpts(f int, fas []int, seed int64, opts SweepOptions) (comm, latency *Table) {
	return harness.Table1EventualOpts(f, fas, seed, opts)
}

// EventualScaling sweeps n at fixed f_a to expose per-decision message
// scaling.
func EventualScaling(fs []int, fa int, seed int64) *Table {
	return harness.EventualScaling(fs, fa, seed)
}

// Figure1Table regenerates Figure 1: the stall a single Byzantine leader
// causes after a burst of fast QCs, per protocol and size.
func Figure1Table(fs []int, seed int64) *Table { return harness.Figure1Table(fs, seed) }

// Figure1TableOpts is Figure1Table with explicit sweep options.
func Figure1TableOpts(fs []int, seed int64, opts SweepOptions) *Table {
	return harness.Figure1TableOpts(fs, seed, opts)
}

// ResponsivenessTable sweeps the actual network delay δ at f_a = 0.
func ResponsivenessTable(f int, seed int64) *Table { return harness.ResponsivenessTable(f, seed) }

// ResponsivenessTableOpts is ResponsivenessTable with explicit sweep
// options.
func ResponsivenessTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.ResponsivenessTableOpts(f, seed, opts)
}

// HeavySyncTable counts Θ(n²) epoch synchronizations after warmup.
func HeavySyncTable(f int, seed int64) *Table { return harness.HeavySyncTable(f, seed) }

// HeavySyncTableOpts is HeavySyncTable with explicit sweep options.
func HeavySyncTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.HeavySyncTableOpts(f, seed, opts)
}

// ChaosTable compares every protocol's view-synchronization latency
// after GST under partitions healing at GST, pre-GST loss, duplication
// with reordering, and crash-recovery churn.
func ChaosTable(f int, seed int64) *Table { return harness.ChaosTable(f, seed) }

// ChaosTableOpts is ChaosTable with explicit sweep options.
func ChaosTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.ChaosTableOpts(f, seed, opts)
}

// AttackTable compares every protocol under the four adaptive attack
// strategies: post-GST view-synchronization latency (in Δ) and W_GST in
// words per cell.
func AttackTable(f int, seed int64) *Table { return harness.AttackTable(f, seed) }

// AttackTableOpts is AttackTable with explicit sweep options.
func AttackTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.AttackTableOpts(f, seed, opts)
}

// EventualWordsTable reports the maximum honest words between
// consecutive decisions as f_a grows at fixed n = 3f+1: Lumiere/Fever
// grow linearly with the actual faults, LP22/NK20 pay Θ(n²) regardless.
func EventualWordsTable(f int, fas []int, seed int64, opts SweepOptions) *Table {
	return harness.EventualWordsTable(f, fas, seed, opts)
}

// WordScalingTable sweeps n at fixed f_a and reports the maximum words
// per decision window: Lumiere's words grow ~linearly in n (driven by
// actual faults), LP22's and NK20's quadratically.
func WordScalingTable(fs []int, fa int, seed int64, opts SweepOptions) *Table {
	return harness.WordScalingTable(fs, fa, seed, opts)
}

// LargeNSizes is the default system-size axis of the massive-n scaling
// table: {128, 256, 1024, 4096}.
var LargeNSizes = harness.LargeNSizes

// LargeNWordsTable sweeps LP22 and Lumiere over massive system sizes
// (multicast broadcast events + bitset quorum tracking make n=4096
// cells feasible) and reports total honest words / n over a 60s run:
// near-flat for Lumiere (words linear in n), ~linear for LP22 (words
// quadratic, from its Θ(n²) epoch synchronization).
func LargeNWordsTable(ns []int, seed int64, opts SweepOptions) *Table {
	return harness.LargeNWordsTable(ns, seed, opts)
}

// GapShrinkage measures §3.5's honest-gap convergence.
func GapShrinkage(f int, seed int64) harness.GapShrinkageResult {
	return harness.GapShrinkage(f, seed)
}

// DeltaWaitAblation compares heavy-sync counts with and without the
// Δ-wait of §3.5.
func DeltaWaitAblation(f int, seed int64) (withWait, withoutWait int) {
	return harness.DeltaWaitAblation(f, seed)
}

// AdversarialSuccess runs §3.5's adversarial-success-criterion scenario.
func AdversarialSuccess(f int, seed int64) harness.EventualResult {
	return harness.AdversarialSuccess(f, seed)
}

// DefaultDelta is the Δ used by examples.
const DefaultDelta = 100 * time.Millisecond

// EventualScalingData runs the n-sweep at fixed f_a for every protocol
// (raw data for custom rendering).
func EventualScalingData(fs []int, fa int, seed int64) map[Protocol][]harness.EventualResult {
	return harness.EventualScalingData(fs, fa, seed)
}

// EventualScalingDataOpts is EventualScalingData with explicit sweep
// options.
func EventualScalingDataOpts(fs []int, fa int, seed int64, opts SweepOptions) map[Protocol][]harness.EventualResult {
	return harness.EventualScalingDataOpts(fs, fa, seed, opts)
}

// EventualScalingTableF formats pre-computed scaling data.
func EventualScalingTableF(data map[Protocol][]harness.EventualResult, fs []int, fa int) *Table {
	return harness.EventualScalingTable(data, fs, fa)
}

// EventualScalingPlot renders the scaling sweep as an ASCII chart.
func EventualScalingPlot(data map[Protocol][]harness.EventualResult) string {
	return harness.EventualScalingPlot(data)
}

// WorkloadConfig describes a logical client population for SMR runs
// (Scenario.Workload): open or closed loop, exact offered load via the
// accumulator pacer, optional payload padding and read mix. Command
// generation is allocation-free on the warm path at any population size.
type WorkloadConfig = workload.Config

// ThroughputCell is one protocol × offered-load × batch-size cell of a
// throughput sweep: committed commands/sec plus submit→commit latency
// percentiles.
type ThroughputCell = harness.ThroughputCell

// ThroughputReport aggregates a throughput sweep.
type ThroughputReport = harness.ThroughputReport

// ThroughputAttackCell compares one protocol's commit latency clean
// versus under attack at the same offered load.
type ThroughputAttackCell = harness.ThroughputAttackCell

// ThroughputUnderAttackReport aggregates an under-attack throughput
// sweep.
type ThroughputUnderAttackReport = harness.ThroughputUnderAttackReport

// RunThroughputSweep runs every protocol over the offered-load × batch
// matrix in SMR mode and measures committed-command throughput and
// commit latency (raw cells for custom rendering).
func RunThroughputSweep(f int, seed int64, opts SweepOptions) *ThroughputReport {
	return harness.ThroughputSweep(f, seed, opts)
}

// RunThroughputUnderAttackSweep runs every protocol clean and under the
// named attack strategy (default view-desync) at a fixed offered load.
func RunThroughputUnderAttackSweep(f int, attack string, seed int64, opts SweepOptions) *ThroughputUnderAttackReport {
	return harness.ThroughputUnderAttackSweep(f, attack, seed, opts)
}

// ThroughputTable compares every protocol's committed commands/sec and
// commit latency (p50/p99) across offered loads and batch sizes, open
// loop at 10⁶ logical clients. Byte-identical at every worker count.
func ThroughputTable(f int, seed int64) *Table { return harness.ThroughputTable(f, seed) }

// ThroughputTableOpts is ThroughputTable with explicit sweep options.
func ThroughputTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.ThroughputTableOpts(f, seed, opts)
}

// ThroughputUnderAttackTable reports what the view-desync attack does to
// each protocol's commit latency at a fixed offered load: clean vs
// attacked throughput, p99, and the p99 blowup factor.
func ThroughputUnderAttackTable(f int, seed int64) *Table {
	return harness.ThroughputUnderAttackTable(f, seed)
}

// ThroughputUnderAttackTableOpts is ThroughputUnderAttackTable with
// explicit sweep options.
func ThroughputUnderAttackTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return harness.ThroughputUnderAttackTableOpts(f, seed, opts)
}
