// Package fever implements the Fever view synchronization protocol as
// described in §3.3 of the Lumiere paper. Fever operates in a stronger
// model than partial synchrony: it assumes that at the start of the
// execution the (f+1)st honest clock gap is at most Γ (the simulator
// provides this by seeding initial clock offsets; see the harness).
//
// Mechanics: leaders get two consecutive views; even ("initial") views are
// entered when lc reaches c_v, whereupon processors send a view message to
// the leader, who combines f+1 of them into a VC; odd views are entered on
// a QC for the previous view; clocks are bumped forward by QCs and VCs,
// which preserves hg_{f+1} ≤ Γ forever and makes the protocol smoothly
// optimistically responsive with O(n) messages per view.
package fever

import (
	"fmt"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// Config parameterizes Fever.
type Config struct {
	// Base is the execution-model configuration.
	Base types.Config
	// GammaOverride overrides Γ = 2(x+1)Δ (§3.3).
	GammaOverride time.Duration
}

// Gamma returns the view duration Γ = 2(x+1)Δ unless overridden.
func (c Config) Gamma() time.Duration {
	if c.GammaOverride > 0 {
		return c.GammaOverride
	}
	return 2 * time.Duration(c.Base.X+1) * c.Base.Delta
}

// Pacemaker is one processor's Fever instance.
type Pacemaker struct {
	cfg    Config
	id     types.NodeID
	ep     network.Endpoint
	rt     clock.Runtime
	clk    *clock.Clock
	ticker *clock.Ticker
	suite  crypto.Suite
	signer crypto.Signer
	// stmt is the statement scratch: sign/verify statements are
	// rebuilt in place, keeping the message hot paths free of
	// per-call statement allocations.
	stmt   msg.StmtScratch
	driver pacemaker.Driver
	obs    pacemaker.Observer
	tr     *trace.Tracer

	gamma time.Duration
	view  types.View

	sentView quorum.Flags
	viewMsgs quorum.VoteSets
	vcFormed quorum.Flags
	vcSeen   quorum.Flags
	qcDone   quorum.Flags
}

var _ pacemaker.Pacemaker = (*Pacemaker)(nil)

// New creates a Fever pacemaker.
func New(cfg Config, ep network.Endpoint, rt clock.Runtime, clk *clock.Clock,
	suite crypto.Suite, driver pacemaker.Driver, obs pacemaker.Observer, tr *trace.Tracer) *Pacemaker {
	if err := cfg.Base.Validate(); err != nil {
		panic(fmt.Sprintf("fever: invalid config: %v", err))
	}
	if obs == nil {
		obs = pacemaker.NopObserver{}
	}
	if driver == nil {
		driver = pacemaker.NopDriver{}
	}
	p := &Pacemaker{
		cfg:    cfg,
		id:     ep.ID(),
		ep:     ep,
		rt:     rt,
		clk:    clk,
		suite:  suite,
		signer: suite.SignerFor(ep.ID()),
		driver: driver,
		obs:    obs,
		tr:     tr,
		gamma:  cfg.Gamma(),
		view:   types.NoView,
	}
	p.viewMsgs.Reset(cfg.Base.N)
	return p
}

// Gamma returns the view duration Γ in effect.
func (p *Pacemaker) Gamma() time.Duration { return p.gamma }

// Start boots the protocol. The clock's initial value encodes the model's
// bounded initial skew.
func (p *Pacemaker) Start() {
	p.ticker = clock.NewTicker(p.clk, p.gamma, p.onBoundary)
	p.ticker.StartInclusive()
}

// CurrentView implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentView() types.View { return p.view }

// CurrentEpoch implements pacemaker.Pacemaker; Fever has no epochs.
func (p *Pacemaker) CurrentEpoch() types.Epoch { return 0 }

// Leader implements pacemaker.Pacemaker: lead(v) = ⌊v/2⌋ mod n (§3.3).
func (p *Pacemaker) Leader(v types.View) types.NodeID {
	if v < 0 {
		return types.NoNode
	}
	return types.NodeID((v / 2) % types.View(p.cfg.Base.N))
}

func (p *Pacemaker) clockTime(v types.View) types.Time {
	return types.Time(v) * types.Time(p.gamma)
}

// Handle implements pacemaker.Pacemaker.
func (p *Pacemaker) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.ViewMsg:
		p.onViewMsg(from, mm)
	case *msg.VC:
		p.onVC(mm)
	case *msg.QC:
		p.onQC(mm)
	}
}

// onBoundary implements "if v is initial, p enters view v when lc = c_v".
func (p *Pacemaker) onBoundary(w types.View) {
	if !w.Initial() || w <= p.view {
		return
	}
	p.enterView(w)
}

func (p *Pacemaker) enterView(w types.View) {
	if w <= p.view {
		return
	}
	p.view = w
	p.tr.Emit(p.rt.Now(), p.id, trace.EnterView, w, "")
	p.obs.OnEnterView(w, p.rt.Now())
	p.driver.EnterView(w)
	if w.Initial() {
		p.sendViewMsg(w)
		p.maybeLeaderStart(w)
	} else if p.Leader(w) == p.id {
		p.driver.LeaderStart(w, types.TimeInf)
	}
	p.prune()
}

func (p *Pacemaker) sendViewMsg(w types.View) {
	if p.sentView.Has(w) {
		return
	}
	p.sentView.Set(w)
	p.tr.Emit(p.rt.Now(), p.id, trace.SendView, w, "")
	p.ep.Send(p.Leader(w), &msg.ViewMsg{V: w, Sig: p.signer.Sign(p.stmt.View(w))})
}

func (p *Pacemaker) onViewMsg(from types.NodeID, vm *msg.ViewMsg) {
	w := vm.V
	if !w.Initial() || p.Leader(w) != p.id || w < p.view || p.vcFormed.Has(w) {
		return
	}
	if vm.Sig.Signer != from || p.suite.Verify(p.stmt.View(w), vm.Sig) != nil {
		return
	}
	sigs := p.viewMsgs.Get(w)
	sigs.Add(vm.Sig)
	if sigs.Count() < p.cfg.Base.Majority() {
		return
	}
	agg, err := p.suite.Aggregate(p.stmt.View(w), sigs.Sigs())
	if err != nil {
		return
	}
	p.vcFormed.Set(w)
	p.tr.Emit(p.rt.Now(), p.id, trace.FormVC, w, "")
	p.ep.Broadcast(&msg.VC{V: w, Agg: agg})
	p.maybeLeaderStart(w)
}

func (p *Pacemaker) maybeLeaderStart(w types.View) {
	if p.Leader(w) == p.id && p.view == w && p.vcFormed.Has(w) {
		p.driver.LeaderStart(w, types.TimeInf)
	}
}

// onVC implements the bump rule: a VC for view v with lc < c_v bumps the
// clock to c_v; the landing enters the view via the clock trigger.
func (p *Pacemaker) onVC(vc *msg.VC) {
	w := vc.V
	// Views below the pruning bound stay forgotten: the clock is already
	// at or past c_view > c_w, so the bump such an old VC could trigger
	// is a no-op.
	if !w.Initial() || w < p.vcSeen.Bound() || p.vcSeen.Has(w) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.View(w), vc.Agg, p.cfg.Base.Majority()) != nil {
		return
	}
	p.vcSeen.Set(w)
	if target := p.clockTime(w); p.clk.BumpTo(target) {
		p.tr.Emit(p.rt.Now(), p.id, trace.Bump, w, "vc")
		p.ticker.Jumped(target)
	}
}

// onQC implements the bump rule for QCs and non-initial view entry.
func (p *Pacemaker) onQC(qc *msg.QC) {
	v := qc.V
	// As in onVC, views below the pruning bound are treated as done:
	// neither the view entry nor the bump they gate can still fire.
	if v < p.qcDone.Bound() || p.qcDone.Has(v) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.Vote(v, &qc.BlockHash), qc.Agg, p.cfg.Base.Quorum()) != nil {
		return
	}
	p.qcDone.Set(v)
	next := v + 1
	if !next.Initial() && next > p.view {
		p.enterView(next)
		if p.Leader(next) == p.id {
			p.driver.LeaderStart(next, types.TimeInf)
		}
	}
	if target := p.clockTime(next); p.clk.BumpTo(target) {
		p.tr.Emit(p.rt.Now(), p.id, trace.Bump, next, "qc")
		p.ticker.Jumped(target)
	}
}

func (p *Pacemaker) prune() {
	low := p.view - 2
	p.sentView.ForgetBelow(low)
	p.vcFormed.ForgetBelow(low)
	p.vcSeen.ForgetBelow(low)
	p.qcDone.ForgetBelow(low)
	p.viewMsgs.DropBelow(low)
}
