package fever

import (
	"testing"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

type fakeEP struct {
	id     types.NodeID
	bcasts []msg.Message
	sends  []sent
}

type sent struct {
	to types.NodeID
	m  msg.Message
}

func (f *fakeEP) ID() types.NodeID                    { return f.id }
func (f *fakeEP) Send(to types.NodeID, m msg.Message) { f.sends = append(f.sends, sent{to, m}) }
func (f *fakeEP) Broadcast(m msg.Message)             { f.bcasts = append(f.bcasts, m) }

var _ network.Endpoint = (*fakeEP)(nil)

type recDriver struct {
	entered []types.View
	started []types.View
}

func (r *recDriver) EnterView(v types.View)                 { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, _ types.Time) { r.started = append(r.started, v) }

var _ pacemaker.Driver = (*recDriver)(nil)

type unit struct {
	sched *sim.Scheduler
	suite *crypto.SimSuite
	ep    *fakeEP
	clk   *clock.Clock
	drv   *recDriver
	pm    *Pacemaker
}

func newUnit(id types.NodeID, initial types.Time) *unit {
	u := &unit{sched: sim.New(1)}
	u.suite = crypto.NewSimSuite(4, 5)
	u.ep = &fakeEP{id: id}
	u.clk = clock.New(u.sched, initial)
	u.drv = &recDriver{}
	u.pm = New(Config{Base: types.NewConfig(1, 100*time.Millisecond)}, u.ep, u.sched, u.clk, u.suite, u.drv, nil, nil)
	return u
}

func (u *unit) viewMsgFrom(from types.NodeID, v types.View) *msg.ViewMsg {
	return &msg.ViewMsg{V: v, Sig: u.suite.SignerFor(from).Sign(msg.ViewStatement(v))}
}

func (u *unit) vcFor(v types.View) *msg.VC {
	var sigs []crypto.Signature
	for i := 0; i < 2; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.ViewStatement(v)))
	}
	agg, _ := u.suite.Aggregate(msg.ViewStatement(v), sigs)
	return &msg.VC{V: v, Agg: agg}
}

func (u *unit) qcFor(v types.View) *msg.QC {
	var h [32]byte
	var sigs []crypto.Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(v, h)))
	}
	agg, _ := u.suite.Aggregate(msg.VoteStatement(v, h), sigs)
	return &msg.QC{V: v, BlockHash: h, Agg: agg}
}

func TestGamma(t *testing.T) {
	c := Config{Base: types.NewConfig(1, 100*time.Millisecond)}
	if c.Gamma() != 800*time.Millisecond {
		t.Fatalf("Γ = %v, want 2(x+1)Δ = 800ms", c.Gamma())
	}
}

// TestClockEntryAndViewMsg: entering an initial view on the clock sends a
// view message to lead(v) = ⌊v/2⌋ mod n.
func TestClockEntryAndViewMsg(t *testing.T) {
	u := newUnit(3, 0)
	u.pm.Start()
	u.sched.RunUntil(0)
	if u.pm.CurrentView() != 0 {
		t.Fatalf("view = %v, want 0 at lc = c_0", u.pm.CurrentView())
	}
	if len(u.ep.sends) != 1 || u.ep.sends[0].to != 0 || u.ep.sends[0].m.Kind() != msg.KindView {
		t.Fatalf("sends = %+v", u.ep.sends)
	}
	u.sched.RunFor(2 * u.pm.Gamma())
	if u.pm.CurrentView() != 2 {
		t.Fatalf("view = %v, want 2 (odd views are not clock-entered)", u.pm.CurrentView())
	}
}

// TestInitialSkewRespected: a clock starting at an offset enters the
// matching view.
func TestInitialSkewRespected(t *testing.T) {
	u := newUnit(3, types.Time(800*time.Millisecond)) // c_1
	u.pm.Start()
	u.sched.RunFor(800 * time.Millisecond) // reach c_2
	if u.pm.CurrentView() != 2 {
		t.Fatalf("view = %v, want 2", u.pm.CurrentView())
	}
}

// TestLeaderVC: the leader aggregates f+1 view messages, broadcasts the
// VC and starts driving.
func TestLeaderVC(t *testing.T) {
	u := newUnit(0, 0)
	u.pm.Start()
	u.sched.RunUntil(0) // enter view 0 (p0 leads 0,1)
	u.pm.Handle(1, u.viewMsgFrom(1, 0))
	u.pm.Handle(2, u.viewMsgFrom(2, 0))
	var vcs int
	for _, m := range u.ep.bcasts {
		if m.Kind() == msg.KindVC {
			vcs++
		}
	}
	if vcs != 1 {
		t.Fatalf("VC broadcasts = %d", vcs)
	}
	if len(u.drv.started) != 1 || u.drv.started[0] != 0 {
		t.Fatalf("started = %v", u.drv.started)
	}
}

// TestVCBumpsIntoView: a VC for a future initial view bumps the clock to
// c_v, and the landing enters the view.
func TestVCBumpsIntoView(t *testing.T) {
	u := newUnit(3, 0)
	u.pm.Start()
	u.sched.RunUntil(0)
	u.pm.Handle(0, u.vcFor(4))
	if u.pm.CurrentView() != 4 {
		t.Fatalf("view = %v, want 4", u.pm.CurrentView())
	}
	if u.clk.Read() != types.Time(4)*types.Time(u.pm.Gamma()) {
		t.Fatalf("lc = %v, want c_4", u.clk.Read())
	}
}

// TestQCEntersOddViewAndBumps: a QC for an even view enters its odd
// successor and bumps the clock to c_{v+1}.
func TestQCEntersOddViewAndBumps(t *testing.T) {
	u := newUnit(3, 0)
	u.pm.Start()
	u.sched.RunUntil(0)
	u.pm.Handle(0, u.qcFor(0))
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v, want 1", u.pm.CurrentView())
	}
	if u.clk.Read() != types.Time(u.pm.Gamma()) {
		t.Fatalf("lc = %v, want c_1", u.clk.Read())
	}
	// QC for the odd view bumps to the next even boundary, entering it
	// via the clock trigger.
	u.pm.Handle(0, u.qcFor(1))
	if u.pm.CurrentView() != 2 {
		t.Fatalf("view = %v, want 2", u.pm.CurrentView())
	}
}

// TestBumpNeverBackwards: stale certificates cannot regress the clock.
func TestBumpNeverBackwards(t *testing.T) {
	u := newUnit(3, 0)
	u.pm.Start()
	u.pm.Handle(0, u.qcFor(9))
	lc := u.clk.Read()
	u.pm.Handle(0, u.vcFor(2))
	u.pm.Handle(0, u.qcFor(3))
	if u.clk.Read() != lc {
		t.Fatal("stale certificate moved the clock")
	}
}

// TestBadVCRejected: an unverifiable VC is ignored.
func TestBadVCRejected(t *testing.T) {
	u := newUnit(3, 0)
	u.pm.Start()
	vc := u.vcFor(4)
	vc.Agg.Bytes[0] = append([]byte(nil), vc.Agg.Bytes[0]...)
	vc.Agg.Bytes[0][0] ^= 1
	u.pm.Handle(0, vc)
	if u.clk.Read() != 0 {
		t.Fatal("tampered VC bumped the clock")
	}
}
