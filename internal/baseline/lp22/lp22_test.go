package lp22

import (
	"testing"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

type fakeEP struct {
	id     types.NodeID
	bcasts []msg.Message
	sends  []msg.Message
}

func (f *fakeEP) ID() types.NodeID                   { return f.id }
func (f *fakeEP) Send(_ types.NodeID, m msg.Message) { f.sends = append(f.sends, m) }
func (f *fakeEP) Broadcast(m msg.Message)            { f.bcasts = append(f.bcasts, m) }
func (f *fakeEP) countBcast(k msg.Kind) (n int) {
	for _, m := range f.bcasts {
		if m.Kind() == k {
			n++
		}
	}
	return n
}

var _ network.Endpoint = (*fakeEP)(nil)

type recDriver struct {
	entered []types.View
	started []types.View
}

func (r *recDriver) EnterView(v types.View)                 { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, _ types.Time) { r.started = append(r.started, v) }

var _ pacemaker.Driver = (*recDriver)(nil)

type unit struct {
	sched *sim.Scheduler
	suite *crypto.SimSuite
	ep    *fakeEP
	clk   *clock.Clock
	drv   *recDriver
	pm    *Pacemaker
}

func newUnit(id types.NodeID) *unit {
	u := &unit{sched: sim.New(1)}
	u.suite = crypto.NewSimSuite(4, 5)
	u.ep = &fakeEP{id: id}
	u.clk = clock.New(u.sched, 0)
	u.drv = &recDriver{}
	cfg := Config{Base: types.NewConfig(1, 100*time.Millisecond)}
	u.pm = New(cfg, u.ep, u.sched, u.clk, u.suite, u.drv, nil, nil)
	return u
}

func (u *unit) epochViewFrom(from types.NodeID, v types.View) *msg.EpochViewMsg {
	return &msg.EpochViewMsg{V: v, Sig: u.suite.SignerFor(from).Sign(msg.EpochViewStatement(v))}
}

func (u *unit) qcFor(v types.View) *msg.QC {
	var h [32]byte
	var sigs []crypto.Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(v, h)))
	}
	agg, _ := u.suite.Aggregate(msg.VoteStatement(v, h), sigs)
	return &msg.QC{V: v, BlockHash: h, Agg: agg}
}

func TestGeometry(t *testing.T) {
	c := Config{Base: types.NewConfig(3, 100*time.Millisecond)}
	if c.Gamma() != 400*time.Millisecond {
		t.Fatalf("Γ = %v, want (x+1)Δ = 400ms", c.Gamma())
	}
	if c.EpochLen() != 4 {
		t.Fatalf("epoch = %d, want f+1", c.EpochLen())
	}
}

// TestBootImmediateHeavySync: LP22 pauses at c_0 and broadcasts its
// epoch-view message immediately (no Δ-wait, no success criterion).
func TestBootImmediateHeavySync(t *testing.T) {
	u := newUnit(0)
	u.pm.Start()
	if !u.clk.Paused() {
		t.Fatal("not paused at boot")
	}
	if u.ep.countBcast(msg.KindEpochView) != 1 {
		t.Fatal("epoch-view not sent immediately")
	}
}

// TestECAssemblyBroadcastsAndEnters: 2f+1 epoch-view messages form an EC
// which is re-broadcast (§3.2) before entering the epoch.
func TestECAssemblyBroadcastsAndEnters(t *testing.T) {
	u := newUnit(0) // p0 = lead(0) under v mod n
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	if u.ep.countBcast(msg.KindEC) != 1 {
		t.Fatal("EC not re-broadcast")
	}
	if u.pm.CurrentView() != 0 || u.pm.CurrentEpoch() != 0 || u.clk.Paused() {
		t.Fatalf("entry failed: view=%v epoch=%v paused=%v", u.pm.CurrentView(), u.pm.CurrentEpoch(), u.clk.Paused())
	}
	if len(u.drv.started) != 1 || u.drv.started[0] != 0 {
		t.Fatalf("leader of view 0 did not start: %v", u.drv.started)
	}
	// A non-leader unit enters without starting.
	u3 := newUnit(3)
	u3.pm.Start()
	for i := 0; i < 3; i++ {
		u3.pm.Handle(types.NodeID(i), u3.epochViewFrom(types.NodeID(i), 0))
	}
	if u3.pm.CurrentView() != 0 || len(u3.drv.started) != 0 {
		t.Fatalf("non-leader: view=%v started=%v", u3.pm.CurrentView(), u3.drv.started)
	}
}

// TestQCEntersNextViewWithoutBump: LP22's defining weakness — QC entry
// advances the view but never the clock.
func TestQCEntersNextViewWithoutBump(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	lcBefore := u.clk.Read()
	u.pm.Handle(2, u.qcFor(0))
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v, want 1", u.pm.CurrentView())
	}
	if u.clk.Read() != lcBefore {
		t.Fatal("LP22 must not bump clocks on QCs")
	}
	// View 1's leader is p1 (this node): responsive LeaderStart.
	if len(u.drv.started) == 0 || u.drv.started[len(u.drv.started)-1] != 1 {
		t.Fatalf("leader start = %v", u.drv.started)
	}
}

// TestQCAtEpochBoundaryWaitsForClock: a QC for the last view of an epoch
// does not enter the next epoch; the processor waits for its clock.
func TestQCAtEpochBoundaryWaitsForClock(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	u.pm.Handle(2, u.qcFor(0))
	u.pm.Handle(2, u.qcFor(1)) // last view of epoch 0 (f+1 = 2 views)
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v, want still 1", u.pm.CurrentView())
	}
	// The clock eventually reaches c_2 = 2Γ and starts the next heavy
	// sync.
	u.sched.RunFor(2 * u.pm.Gamma())
	if !u.clk.Paused() {
		t.Fatal("did not pause at the next epoch boundary")
	}
	found := false
	for _, m := range u.ep.bcasts {
		if m.Kind() == msg.KindEpochView && m.View() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no epoch-view message for V(1)")
	}
}

// TestClockEntersViewsWithinEpoch: absent QCs, views are entered on the
// clock schedule.
func TestClockEntersViewsWithinEpoch(t *testing.T) {
	u := newUnit(2)
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	u.sched.RunFor(u.pm.Gamma())
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v, want 1 after Γ", u.pm.CurrentView())
	}
}

// TestForeignECMessageAccepted: a relayed compact EC certificate enters
// the epoch.
func TestForeignECMessageAccepted(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	var sigs []crypto.Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.EpochViewStatement(0)))
	}
	agg, _ := u.suite.Aggregate(msg.EpochViewStatement(0), sigs)
	u.pm.Handle(3, &msg.EC{V: 0, Agg: agg})
	if u.pm.CurrentEpoch() != 0 {
		t.Fatal("EC message rejected")
	}
	// Undersized EC rejected.
	u2 := newUnit(1)
	u2.pm.Start()
	u2.pm.Handle(3, &msg.EC{V: 0, Agg: agg.Truncate(2)})
	if u2.pm.CurrentEpoch() != types.NoEpoch {
		t.Fatal("undersized EC accepted")
	}
}
