package raresync

import (
	"testing"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

type fakeEP struct {
	id     types.NodeID
	bcasts []msg.Message
}

func (f *fakeEP) ID() types.NodeID                   { return f.id }
func (f *fakeEP) Send(_ types.NodeID, m msg.Message) {}
func (f *fakeEP) Broadcast(m msg.Message)            { f.bcasts = append(f.bcasts, m) }

var _ network.Endpoint = (*fakeEP)(nil)

type recDriver struct{ entered, started []types.View }

func (r *recDriver) EnterView(v types.View)                 { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, _ types.Time) { r.started = append(r.started, v) }

var _ pacemaker.Driver = (*recDriver)(nil)

type unit struct {
	sched *sim.Scheduler
	suite *crypto.SimSuite
	ep    *fakeEP
	clk   *clock.Clock
	drv   *recDriver
	pm    *Pacemaker
}

func newUnit(id types.NodeID) *unit {
	u := &unit{sched: sim.New(1)}
	u.suite = crypto.NewSimSuite(4, 5)
	u.ep = &fakeEP{id: id}
	u.clk = clock.New(u.sched, 0)
	u.drv = &recDriver{}
	u.pm = New(Config{Base: types.NewConfig(1, 100*time.Millisecond)}, u.ep, u.sched, u.clk, u.suite, u.drv, nil, nil)
	return u
}

func (u *unit) epochViewFrom(from types.NodeID, v types.View) *msg.EpochViewMsg {
	return &msg.EpochViewMsg{V: v, Sig: u.suite.SignerFor(from).Sign(msg.EpochViewStatement(v))}
}

func (u *unit) qcFor(v types.View) *msg.QC {
	var h [32]byte
	var sigs []crypto.Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(v, h)))
	}
	agg, _ := u.suite.Aggregate(msg.VoteStatement(v, h), sigs)
	return &msg.QC{V: v, BlockHash: h, Agg: agg}
}

func TestGeometry(t *testing.T) {
	c := Config{Base: types.NewConfig(3, 100*time.Millisecond)}
	if c.Gamma() != 400*time.Millisecond || c.EpochLen() != 4 {
		t.Fatalf("geometry: Γ=%v epoch=%d", c.Gamma(), c.EpochLen())
	}
}

func TestBootPausesAndSyncs(t *testing.T) {
	u := newUnit(0)
	u.pm.Start()
	if !u.clk.Paused() || len(u.ep.bcasts) != 1 {
		t.Fatalf("boot: paused=%v bcasts=%d", u.clk.Paused(), len(u.ep.bcasts))
	}
}

func TestECEntersEpochThenClockSchedulesViews(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	if u.pm.CurrentView() != 0 || u.clk.Paused() {
		t.Fatalf("entry failed: view=%v", u.pm.CurrentView())
	}
	u.sched.RunFor(u.pm.Gamma())
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v after Γ, want 1", u.pm.CurrentView())
	}
	if len(u.drv.started) == 0 || u.drv.started[len(u.drv.started)-1] != 1 {
		t.Fatalf("leader starts = %v (p1 leads view 1)", u.drv.started)
	}
}

// TestQCsDoNotAdvanceViews: the defining non-responsiveness — QCs have no
// effect on view entry.
func TestQCsDoNotAdvanceViews(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	u.pm.Handle(0, u.qcFor(0))
	if u.pm.CurrentView() != 0 {
		t.Fatalf("QC advanced a RareSync view to %v", u.pm.CurrentView())
	}
}

func TestNextEpochBoundaryPausesAgain(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	// Epoch 0 = views {0, 1} (f+1 = 2); boundary at c_2.
	u.sched.RunFor(2 * u.pm.Gamma())
	if !u.clk.Paused() {
		t.Fatal("did not pause at the next boundary")
	}
	found := false
	for _, m := range u.ep.bcasts {
		if m.Kind() == msg.KindEpochView && m.View() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no heavy sync for epoch 1")
	}
}
