// Package raresync implements RareSync (Civit et al., DISC 2022), the
// protocol that — concurrently with LP22 — first matched the
// Dolev-Reischuk O(n²) bound for Byzantine view synchronization in
// partial synchrony, as discussed in §6 of the Lumiere paper.
//
// Like LP22 it batches views into epochs of f+1 views and performs one
// Θ(n²) all-to-all synchronization per epoch. Unlike LP22 it is *not*
// optimistically responsive: views within an epoch advance purely on the
// clock schedule (the paper: "RareSync is not optimistically
// responsive"), so every consensus decision costs Θ(Γ) = Θ(Δ) even on a
// fast network. It serves as the non-responsive end of the comparison
// spectrum in this repository's experiments.
package raresync

import (
	"fmt"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// Config parameterizes RareSync.
type Config struct {
	// Base is the execution-model configuration.
	Base types.Config
	// GammaOverride overrides Γ = (x+1)Δ.
	GammaOverride time.Duration
}

// Gamma returns the view duration Γ = (x+1)Δ unless overridden.
func (c Config) Gamma() time.Duration {
	if c.GammaOverride > 0 {
		return c.GammaOverride
	}
	return time.Duration(c.Base.X+1) * c.Base.Delta
}

// EpochLen returns the views per epoch (f+1).
func (c Config) EpochLen() types.View { return types.View(c.Base.F + 1) }

// Pacemaker is one processor's RareSync instance.
type Pacemaker struct {
	cfg    Config
	id     types.NodeID
	ep     network.Endpoint
	rt     clock.Runtime
	clk    *clock.Clock
	ticker *clock.Ticker
	suite  crypto.Suite
	signer crypto.Signer
	// stmt is the statement scratch: sign/verify statements are
	// rebuilt in place, keeping the message hot paths free of
	// per-call statement allocations.
	stmt   msg.StmtScratch
	driver pacemaker.Driver
	obs    pacemaker.Observer
	tr     *trace.Tracer

	gamma    time.Duration
	epochLen types.View

	view     types.View
	epoch    types.Epoch
	pausedAt types.View

	sentEpochView quorum.Flags
	pauseSeen     quorum.Flags
	epochViewMsgs quorum.VoteSets
	ecDone        quorum.Flags
}

var _ pacemaker.Pacemaker = (*Pacemaker)(nil)

// New creates a RareSync pacemaker.
func New(cfg Config, ep network.Endpoint, rt clock.Runtime, clk *clock.Clock,
	suite crypto.Suite, driver pacemaker.Driver, obs pacemaker.Observer, tr *trace.Tracer) *Pacemaker {
	if err := cfg.Base.Validate(); err != nil {
		panic(fmt.Sprintf("raresync: invalid config: %v", err))
	}
	if obs == nil {
		obs = pacemaker.NopObserver{}
	}
	if driver == nil {
		driver = pacemaker.NopDriver{}
	}
	p := &Pacemaker{
		cfg:      cfg,
		id:       ep.ID(),
		ep:       ep,
		rt:       rt,
		clk:      clk,
		suite:    suite,
		signer:   suite.SignerFor(ep.ID()),
		driver:   driver,
		obs:      obs,
		tr:       tr,
		gamma:    cfg.Gamma(),
		epochLen: cfg.EpochLen(),
		view:     types.NoView,
		epoch:    types.NoEpoch,
		pausedAt: types.NoView,
	}
	p.epochViewMsgs.Reset(cfg.Base.N)
	return p
}

// Gamma returns the view duration Γ in effect.
func (p *Pacemaker) Gamma() time.Duration { return p.gamma }

// Start boots the protocol; lc = 0 triggers the epoch-0 synchronization.
func (p *Pacemaker) Start() {
	p.ticker = clock.NewTicker(p.clk, p.gamma, p.onBoundary)
	p.ticker.StartInclusive()
}

// CurrentView implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentView() types.View { return p.view }

// CurrentEpoch implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentEpoch() types.Epoch { return p.epoch }

// Leader implements pacemaker.Pacemaker: round robin.
func (p *Pacemaker) Leader(v types.View) types.NodeID {
	if v < 0 {
		return types.NoNode
	}
	return types.NodeID(v % types.View(p.cfg.Base.N))
}

func (p *Pacemaker) isEpochView(v types.View) bool { return v >= 0 && v%p.epochLen == 0 }

func (p *Pacemaker) clockTime(v types.View) types.Time {
	return types.Time(v) * types.Time(p.gamma)
}

// Handle implements pacemaker.Pacemaker. QCs are deliberately ignored for
// view entry: RareSync is not responsive.
func (p *Pacemaker) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.EpochViewMsg:
		p.onEpochViewMsg(from, mm)
	case *msg.EC:
		p.onECMessage(mm)
	}
}

func (p *Pacemaker) onBoundary(w types.View) {
	if w <= p.view {
		return
	}
	if p.isEpochView(w) {
		if p.pauseSeen.Has(w) {
			return
		}
		p.pauseSeen.Set(w)
		p.clk.Pause()
		p.pausedAt = w
		p.tr.Emit(p.rt.Now(), p.id, trace.PauseClock, w, "epoch boundary")
		p.sendEpochViewMsg(w)
		return
	}
	p.enterView(w)
}

func (p *Pacemaker) sendEpochViewMsg(w types.View) {
	if p.sentEpochView.Has(w) {
		return
	}
	p.sentEpochView.Set(w)
	p.obs.OnHeavySync(w, p.rt.Now())
	p.tr.Emit(p.rt.Now(), p.id, trace.SendEpoch, w, "")
	p.ep.Broadcast(&msg.EpochViewMsg{V: w, Sig: p.signer.Sign(p.stmt.EpochView(w))})
}

func (p *Pacemaker) onEpochViewMsg(from types.NodeID, em *msg.EpochViewMsg) {
	w := em.V
	if !p.isEpochView(w) || p.ecDone.Has(w) || w <= p.view {
		return
	}
	if em.Sig.Signer != from || p.suite.Verify(p.stmt.EpochView(w), em.Sig) != nil {
		return
	}
	sigs := p.epochViewMsgs.Get(w)
	sigs.Add(em.Sig)
	if sigs.Count() < p.cfg.Base.Quorum() {
		return
	}
	agg, err := p.suite.Aggregate(p.stmt.EpochView(w), sigs.Sigs())
	if err != nil {
		return
	}
	p.ep.Broadcast(&msg.EC{V: w, Agg: agg})
	p.enterEpoch(w)
}

func (p *Pacemaker) onECMessage(ec *msg.EC) {
	w := ec.V
	if !p.isEpochView(w) || w <= p.view {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.EpochView(w), ec.Agg, p.cfg.Base.Quorum()) != nil {
		return
	}
	p.enterEpoch(w)
}

func (p *Pacemaker) enterEpoch(w types.View) {
	if p.ecDone.Has(w) || w <= p.view {
		return
	}
	p.ecDone.Set(w)
	if p.clk.Paused() {
		p.clk.Unpause()
		p.pausedAt = types.NoView
		p.tr.Emit(p.rt.Now(), p.id, trace.Unpause, w, "ec")
	}
	p.enterView(w)
	if target := p.clockTime(w); p.clk.BumpTo(target) {
		p.ticker.Jumped(target)
	} else {
		p.ticker.Rearm()
	}
}

func (p *Pacemaker) enterView(w types.View) {
	if w <= p.view {
		return
	}
	p.view = w
	e := types.Epoch(w / p.epochLen)
	if e > p.epoch {
		p.epoch = e
		p.obs.OnEnterEpoch(e, p.rt.Now())
	}
	p.tr.Emit(p.rt.Now(), p.id, trace.EnterView, w, "")
	p.obs.OnEnterView(w, p.rt.Now())
	p.driver.EnterView(w)
	if p.Leader(w) == p.id {
		p.driver.LeaderStart(w, types.TimeInf)
	}
	p.prune()
}

func (p *Pacemaker) prune() {
	lowEpochView := types.View(p.epoch-1) * p.epochLen
	p.sentEpochView.ForgetBelow(lowEpochView)
	p.pauseSeen.ForgetBelow(lowEpochView)
	p.ecDone.ForgetBelow(lowEpochView)
	p.epochViewMsgs.DropBelow(lowEpochView)
}
