package nk20

import (
	"testing"
	"time"

	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

type fakeEP struct {
	id     types.NodeID
	bcasts []msg.Message
	sends  []sent
}

type sent struct {
	to types.NodeID
	m  msg.Message
}

func (f *fakeEP) ID() types.NodeID                    { return f.id }
func (f *fakeEP) Send(to types.NodeID, m msg.Message) { f.sends = append(f.sends, sent{to, m}) }
func (f *fakeEP) Broadcast(m msg.Message)             { f.bcasts = append(f.bcasts, m) }

var _ network.Endpoint = (*fakeEP)(nil)

type recDriver struct{ entered, started []types.View }

func (r *recDriver) EnterView(v types.View)                 { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, _ types.Time) { r.started = append(r.started, v) }

var _ pacemaker.Driver = (*recDriver)(nil)

type unit struct {
	sched *sim.Scheduler
	suite *crypto.SimSuite
	ep    *fakeEP
	drv   *recDriver
	pm    *Pacemaker
	cfg   Config
}

func newUnit(id types.NodeID) *unit {
	u := &unit{sched: sim.New(1)}
	u.suite = crypto.NewSimSuite(4, 5)
	u.ep = &fakeEP{id: id}
	u.drv = &recDriver{}
	u.cfg = Config{Base: types.NewConfig(1, 100*time.Millisecond)}
	u.pm = New(u.cfg, u.ep, u.sched, u.suite, u.drv, nil, nil)
	return u
}

func (u *unit) timeoutFrom(from types.NodeID, v types.View) *msg.Timeout {
	return &msg.Timeout{V: v, Sig: u.suite.SignerFor(from).Sign(msg.TimeoutStatement(v))}
}

func (u *unit) qcFor(v types.View) *msg.QC {
	var h [32]byte
	var sigs []crypto.Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(v, h)))
	}
	agg, _ := u.suite.Aggregate(msg.VoteStatement(v, h), sigs)
	return &msg.QC{V: v, BlockHash: h, Agg: agg}
}

// TestTimeoutFanout: on expiry, timeout messages go to the leaders of the
// next f+1 views.
func TestTimeoutFanout(t *testing.T) {
	u := newUnit(3)
	u.pm.Start()
	u.sched.RunFor(u.cfg.viewTimeout())
	if len(u.ep.sends) != u.cfg.fanout() {
		t.Fatalf("fanout = %d, want %d", len(u.ep.sends), u.cfg.fanout())
	}
	for k, s := range u.ep.sends {
		wantView := types.View(1 + k)
		if s.m.View() != wantView || s.to != u.pm.Leader(wantView) {
			t.Fatalf("fanout %d = %+v", k, s)
		}
	}
	// Re-arm: another fanout after another timeout.
	u.sched.RunFor(u.cfg.viewTimeout())
	if len(u.ep.sends) != 2*u.cfg.fanout() {
		t.Fatalf("no re-fanout: %d", len(u.ep.sends))
	}
}

// TestOnlyViewLeaderAggregates: a node ignores timeout messages for views
// it does not lead.
func TestOnlyViewLeaderAggregates(t *testing.T) {
	u := newUnit(2) // p2 leads view 2
	u.pm.Start()
	u.pm.Handle(0, u.timeoutFrom(0, 1)) // p1's view: ignored
	u.pm.Handle(1, u.timeoutFrom(1, 1))
	if len(u.ep.bcasts) != 0 {
		t.Fatal("aggregated a view it does not lead")
	}
	u.pm.Handle(0, u.timeoutFrom(0, 2))
	u.pm.Handle(1, u.timeoutFrom(1, 2))
	if len(u.ep.bcasts) != 1 || u.ep.bcasts[0].Kind() != msg.KindTC || u.ep.bcasts[0].View() != 2 {
		t.Fatalf("bcasts = %v", u.ep.bcasts)
	}
	// Aggregating moved nothing locally until the TC self-delivers via
	// the network (fake endpoint does not loop back).
	if u.pm.CurrentView() != 0 {
		t.Fatalf("view = %v", u.pm.CurrentView())
	}
}

// TestTCSkipsAhead: a TC for view v+k synchronizes directly into it.
func TestTCSkipsAhead(t *testing.T) {
	u := newUnit(3)
	u.pm.Start()
	var sigs []crypto.Signature
	for i := 0; i < 2; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.TimeoutStatement(2)))
	}
	agg, _ := u.suite.Aggregate(msg.TimeoutStatement(2), sigs)
	u.pm.Handle(0, &msg.TC{V: 2, Agg: agg})
	if u.pm.CurrentView() != 2 {
		t.Fatalf("view = %v, want 2", u.pm.CurrentView())
	}
}

// TestQCResponsiveEntry: QC chains advance views at network speed.
func TestQCResponsiveEntry(t *testing.T) {
	u := newUnit(3)
	u.pm.Start()
	u.pm.Handle(0, u.qcFor(0))
	u.pm.Handle(1, u.qcFor(1))
	if u.pm.CurrentView() != 2 {
		t.Fatalf("view = %v, want 2", u.pm.CurrentView())
	}
}

// TestStaleTimeoutIgnored: timeouts for past views are dropped.
func TestStaleTimeoutIgnored(t *testing.T) {
	u := newUnit(2)
	u.pm.Start()
	u.pm.Handle(0, u.qcFor(0))
	u.pm.Handle(1, u.qcFor(1)) // now in view 2
	u.pm.Handle(0, u.timeoutFrom(0, 2))
	u.pm.Handle(1, u.timeoutFrom(1, 2))
	if len(u.ep.bcasts) != 0 {
		t.Fatal("aggregated a stale view")
	}
}
