// Package nk20 implements the Naor-Keidar round synchronization protocol
// (DISC 2020), reconstructed from its summary in the Lumiere paper's
// Table 1 (see DESIGN.md §9 for fidelity notes).
//
// Mechanics: on a view timeout, each processor sends a signed timeout
// message for each of the next f+1 views to those views' leaders — at
// least one of which is honest. A leader holding f+1 timeout messages for
// a view it leads broadcasts a certificate that synchronizes everyone into
// that view. A single synchronization therefore costs up to O(n·f) = O(n²)
// messages, both in the worst case and whenever faults recur (the table's
// eventual O(n²)).
package nk20

import (
	"fmt"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// Config parameterizes NK20.
type Config struct {
	// Base is the execution-model configuration.
	Base types.Config
	// ViewTimeout overrides the per-view progress timeout ((x+1)Δ).
	ViewTimeout time.Duration
	// Fanout overrides the number of future views wished for (f+1).
	Fanout int
}

func (c Config) viewTimeout() time.Duration {
	if c.ViewTimeout > 0 {
		return c.ViewTimeout
	}
	return time.Duration(c.Base.X+1) * c.Base.Delta
}

func (c Config) fanout() int {
	if c.Fanout > 0 {
		return c.Fanout
	}
	return c.Base.F + 1
}

// Pacemaker is one processor's NK20 instance.
type Pacemaker struct {
	cfg    Config
	id     types.NodeID
	ep     network.Endpoint
	rt     clock.Runtime
	suite  crypto.Suite
	signer crypto.Signer
	// stmt is the statement scratch: sign/verify statements are
	// rebuilt in place, keeping the message hot paths free of
	// per-call statement allocations.
	stmt   msg.StmtScratch
	driver pacemaker.Driver
	obs    pacemaker.Observer
	tr     *trace.Tracer

	view       types.View
	viewCancel func()

	timeouts quorum.VoteSets
	tcSent   quorum.Flags
	tcSeen   quorum.Flags
	qcDone   quorum.Flags
}

var _ pacemaker.Pacemaker = (*Pacemaker)(nil)

// New creates an NK20 pacemaker.
func New(cfg Config, ep network.Endpoint, rt clock.Runtime,
	suite crypto.Suite, driver pacemaker.Driver, obs pacemaker.Observer, tr *trace.Tracer) *Pacemaker {
	if err := cfg.Base.Validate(); err != nil {
		panic(fmt.Sprintf("nk20: invalid config: %v", err))
	}
	if obs == nil {
		obs = pacemaker.NopObserver{}
	}
	if driver == nil {
		driver = pacemaker.NopDriver{}
	}
	p := &Pacemaker{
		cfg:    cfg,
		id:     ep.ID(),
		ep:     ep,
		rt:     rt,
		suite:  suite,
		signer: suite.SignerFor(ep.ID()),
		driver: driver,
		obs:    obs,
		tr:     tr,
		view:   types.NoView,
	}
	p.timeouts.Reset(cfg.Base.N)
	return p
}

// Start boots the protocol in view 0.
func (p *Pacemaker) Start() { p.enterView(0) }

// CurrentView implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentView() types.View { return p.view }

// CurrentEpoch implements pacemaker.Pacemaker; NK20 has no epochs.
func (p *Pacemaker) CurrentEpoch() types.Epoch { return 0 }

// Leader implements pacemaker.Pacemaker: round robin.
func (p *Pacemaker) Leader(v types.View) types.NodeID {
	if v < 0 {
		return types.NoNode
	}
	return types.NodeID(v % types.View(p.cfg.Base.N))
}

// Handle implements pacemaker.Pacemaker.
func (p *Pacemaker) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.Timeout:
		p.onTimeout(from, mm)
	case *msg.TC:
		p.onTC(mm)
	case *msg.QC:
		p.onQC(mm)
	}
}

func (p *Pacemaker) enterView(w types.View) {
	if w <= p.view {
		return
	}
	if p.viewCancel != nil {
		p.viewCancel()
		p.viewCancel = nil
	}
	p.view = w
	p.tr.Emit(p.rt.Now(), p.id, trace.EnterView, w, "")
	p.obs.OnEnterView(w, p.rt.Now())
	p.driver.EnterView(w)
	if p.Leader(w) == p.id {
		p.driver.LeaderStart(w, types.TimeInf)
	}
	p.viewCancel = p.rt.After(p.cfg.viewTimeout(), func() { p.onViewExpired(w) })
	p.prune()
}

// onViewExpired sends timeout messages for the next f+1 views to their
// leaders — the O(n·f) fanout.
func (p *Pacemaker) onViewExpired(w types.View) {
	if p.view != w {
		return
	}
	for k := 1; k <= p.cfg.fanout(); k++ {
		t := w + types.View(k)
		p.ep.Send(p.Leader(t), &msg.Timeout{V: t, Sig: p.signer.Sign(p.stmt.Timeout(t))})
	}
	p.tr.Emitf(p.rt.Now(), p.id, trace.SendView, w+1, "timeout fanout %d", p.cfg.fanout())
	// Re-arm: if synchronization fails (all f+1 leaders faulty cannot
	// happen, but certificates can be delayed), try again.
	p.viewCancel = p.rt.After(p.cfg.viewTimeout(), func() { p.onViewExpired(w) })
}

// onTimeout aggregates timeout messages for views this processor leads.
func (p *Pacemaker) onTimeout(from types.NodeID, tm *msg.Timeout) {
	t := tm.V
	if t <= p.view || p.Leader(t) != p.id || p.tcSent.Has(t) {
		return
	}
	if tm.Sig.Signer != from || p.suite.Verify(p.stmt.Timeout(t), tm.Sig) != nil {
		return
	}
	sigs := p.timeouts.Get(t)
	sigs.Add(tm.Sig)
	if sigs.Count() < p.cfg.Base.Majority() {
		return
	}
	agg, err := p.suite.Aggregate(p.stmt.Timeout(t), sigs.Sigs())
	if err != nil {
		return
	}
	p.tcSent.Set(t)
	p.tr.Emit(p.rt.Now(), p.id, trace.SeeTC, t, "aggregated")
	p.ep.Broadcast(&msg.TC{V: t, Agg: agg})
}

func (p *Pacemaker) onTC(tc *msg.TC) {
	t := tc.V
	if t <= p.view || p.tcSeen.Has(t) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.Timeout(t), tc.Agg, p.cfg.Base.Majority()) != nil {
		return
	}
	p.tcSeen.Set(t)
	p.enterView(t)
}

// onQC implements responsive entry into the next view.
func (p *Pacemaker) onQC(qc *msg.QC) {
	v := qc.V
	if v < p.view || p.qcDone.Has(v) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.Vote(v, &qc.BlockHash), qc.Agg, p.cfg.Base.Quorum()) != nil {
		return
	}
	p.qcDone.Set(v)
	p.enterView(v + 1)
}

func (p *Pacemaker) prune() {
	low := p.view - 1
	p.timeouts.DropBelow(low)
	p.tcSent.ForgetBelow(low)
	p.tcSeen.ForgetBelow(low)
	p.qcDone.ForgetBelow(low)
}
