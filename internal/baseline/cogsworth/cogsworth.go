// Package cogsworth implements the Cogsworth Byzantine view
// synchronization protocol, reconstructed from [Naor, Baudet, Malkhi,
// Spiegelman 2021] as summarized in the Lumiere paper's Table 1 (see
// DESIGN.md §9 for fidelity notes).
//
// Mechanics: on a view timeout, processors send a signed wish for the next
// view to an aggregation leader; an honest aggregator combines f+1 wishes
// into a timeout certificate (TC) and broadcasts it, synchronizing
// everyone into the view for O(n) messages. Faulty aggregators are skipped
// by relaying the wish to successive aggregators on a retry timer, which
// yields the table's shapes: expected O(n) per view change when leaders
// are honest, but O(n + n·f_a²) eventual and O(n³) worst-case
// communication, with O(f_a²Δ + δ) eventual and O(n²Δ) worst-case latency.
package cogsworth

import (
	"fmt"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// Config parameterizes Cogsworth.
type Config struct {
	// Base is the execution-model configuration.
	Base types.Config
	// ViewTimeout overrides the per-view progress timeout ((x+1)Δ).
	ViewTimeout time.Duration
	// RetryTimeout overrides the per-aggregator relay timeout (4Δ).
	RetryTimeout time.Duration
}

func (c Config) viewTimeout() time.Duration {
	if c.ViewTimeout > 0 {
		return c.ViewTimeout
	}
	return time.Duration(c.Base.X+1) * c.Base.Delta
}

func (c Config) retryTimeout() time.Duration {
	if c.RetryTimeout > 0 {
		return c.RetryTimeout
	}
	return 4 * c.Base.Delta
}

// Pacemaker is one processor's Cogsworth instance.
type Pacemaker struct {
	cfg    Config
	id     types.NodeID
	ep     network.Endpoint
	rt     clock.Runtime
	suite  crypto.Suite
	signer crypto.Signer
	// stmt is the statement scratch: sign/verify statements are
	// rebuilt in place, keeping the message hot paths free of
	// per-call statement allocations.
	stmt   msg.StmtScratch
	driver pacemaker.Driver
	obs    pacemaker.Observer
	tr     *trace.Tracer

	view        types.View
	viewCancel  func()
	retryCancel func()
	syncTarget  types.View // view currently being wished for (0 = none)
	attempt     int

	wishes quorum.VoteSets
	tcSent quorum.Flags
	tcSeen quorum.Flags
	qcDone quorum.Flags
}

var _ pacemaker.Pacemaker = (*Pacemaker)(nil)

// New creates a Cogsworth pacemaker.
func New(cfg Config, ep network.Endpoint, rt clock.Runtime,
	suite crypto.Suite, driver pacemaker.Driver, obs pacemaker.Observer, tr *trace.Tracer) *Pacemaker {
	if err := cfg.Base.Validate(); err != nil {
		panic(fmt.Sprintf("cogsworth: invalid config: %v", err))
	}
	if obs == nil {
		obs = pacemaker.NopObserver{}
	}
	if driver == nil {
		driver = pacemaker.NopDriver{}
	}
	p := &Pacemaker{
		cfg:    cfg,
		id:     ep.ID(),
		ep:     ep,
		rt:     rt,
		suite:  suite,
		signer: suite.SignerFor(ep.ID()),
		driver: driver,
		obs:    obs,
		tr:     tr,
		view:   types.NoView,
	}
	p.wishes.Reset(cfg.Base.N)
	return p
}

// Start boots the protocol in view 0.
func (p *Pacemaker) Start() { p.enterView(0) }

// CurrentView implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentView() types.View { return p.view }

// CurrentEpoch implements pacemaker.Pacemaker; Cogsworth has no epochs.
func (p *Pacemaker) CurrentEpoch() types.Epoch { return 0 }

// Leader implements pacemaker.Pacemaker: round robin.
func (p *Pacemaker) Leader(v types.View) types.NodeID {
	if v < 0 {
		return types.NoNode
	}
	return types.NodeID(v % types.View(p.cfg.Base.N))
}

// aggregator returns the k-th aggregation leader for view w: the relay
// sequence starts at lead(w) and walks the ring.
func (p *Pacemaker) aggregator(w types.View, k int) types.NodeID {
	return types.NodeID((int(p.Leader(w)) + k) % p.cfg.Base.N)
}

// Handle implements pacemaker.Pacemaker.
func (p *Pacemaker) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.Wish:
		p.onWish(from, mm)
	case *msg.TC:
		p.onTC(mm)
	case *msg.QC:
		p.onQC(mm)
	}
}

func (p *Pacemaker) enterView(w types.View) {
	if w <= p.view {
		return
	}
	p.cancelTimers()
	p.view = w
	p.syncTarget = 0
	p.tr.Emit(p.rt.Now(), p.id, trace.EnterView, w, "")
	p.obs.OnEnterView(w, p.rt.Now())
	p.driver.EnterView(w)
	if p.Leader(w) == p.id {
		p.driver.LeaderStart(w, types.TimeInf)
	}
	p.viewCancel = p.rt.After(p.cfg.viewTimeout(), func() { p.onViewTimeout(w) })
	p.prune()
}

func (p *Pacemaker) cancelTimers() {
	if p.viewCancel != nil {
		p.viewCancel()
		p.viewCancel = nil
	}
	if p.retryCancel != nil {
		p.retryCancel()
		p.retryCancel = nil
	}
}

// onViewTimeout begins the wish relay for the next view.
func (p *Pacemaker) onViewTimeout(w types.View) {
	if p.view != w {
		return
	}
	p.beginSync(w + 1)
}

func (p *Pacemaker) beginSync(target types.View) {
	p.syncTarget = target
	p.attempt = 0
	p.sendWish()
}

// sendWish sends this processor's wish for the sync target to the current
// aggregation leader and arms the relay retry.
func (p *Pacemaker) sendWish() {
	target := p.syncTarget
	if target <= p.view || target == 0 {
		return
	}
	agg := p.aggregator(target, p.attempt)
	p.tr.Emitf(p.rt.Now(), p.id, trace.SendView, target, "wish attempt %d -> %v", p.attempt, agg)
	p.ep.Send(agg, &msg.Wish{V: target, Sig: p.signer.Sign(p.stmt.Wish(target))})
	attempt := p.attempt
	p.retryCancel = p.rt.After(p.cfg.retryTimeout(), func() {
		if p.syncTarget != target || p.view >= target || p.attempt != attempt {
			return
		}
		p.attempt++
		if p.attempt >= p.cfg.Base.N {
			p.attempt = 0 // wrap: keep trying around the ring
		}
		p.sendWish()
	})
}

// onWish aggregates wishes addressed to this processor.
func (p *Pacemaker) onWish(from types.NodeID, w *msg.Wish) {
	t := w.V
	if t <= p.view || p.tcSent.Has(t) {
		return
	}
	if w.Sig.Signer != from || p.suite.Verify(p.stmt.Wish(t), w.Sig) != nil {
		return
	}
	sigs := p.wishes.Get(t)
	sigs.Add(w.Sig)
	if sigs.Count() < p.cfg.Base.Majority() {
		return
	}
	agg, err := p.suite.Aggregate(p.stmt.Wish(t), sigs.Sigs())
	if err != nil {
		return
	}
	p.tcSent.Set(t)
	p.tr.Emit(p.rt.Now(), p.id, trace.SeeTC, t, "aggregated")
	p.ep.Broadcast(&msg.TC{V: t, Agg: agg})
}

func (p *Pacemaker) onTC(tc *msg.TC) {
	t := tc.V
	if t <= p.view || p.tcSeen.Has(t) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.Wish(t), tc.Agg, p.cfg.Base.Majority()) != nil {
		return
	}
	p.tcSeen.Set(t)
	p.enterView(t)
}

// onQC implements responsive entry into the next view.
func (p *Pacemaker) onQC(qc *msg.QC) {
	v := qc.V
	if v < p.view || p.qcDone.Has(v) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.Vote(v, &qc.BlockHash), qc.Agg, p.cfg.Base.Quorum()) != nil {
		return
	}
	p.qcDone.Set(v)
	p.enterView(v + 1)
}

func (p *Pacemaker) prune() {
	low := p.view - 1
	p.wishes.DropBelow(low)
	p.tcSent.ForgetBelow(low)
	p.tcSeen.ForgetBelow(low)
	p.qcDone.ForgetBelow(low)
}
