package cogsworth

import (
	"testing"
	"time"

	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

type fakeEP struct {
	id     types.NodeID
	bcasts []msg.Message
	sends  []sent
}

type sent struct {
	to types.NodeID
	m  msg.Message
}

func (f *fakeEP) ID() types.NodeID                    { return f.id }
func (f *fakeEP) Send(to types.NodeID, m msg.Message) { f.sends = append(f.sends, sent{to, m}) }
func (f *fakeEP) Broadcast(m msg.Message)             { f.bcasts = append(f.bcasts, m) }

var _ network.Endpoint = (*fakeEP)(nil)

type recDriver struct {
	entered []types.View
	started []types.View
}

func (r *recDriver) EnterView(v types.View)                 { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, _ types.Time) { r.started = append(r.started, v) }

var _ pacemaker.Driver = (*recDriver)(nil)

type unit struct {
	sched *sim.Scheduler
	suite *crypto.SimSuite
	ep    *fakeEP
	drv   *recDriver
	pm    *Pacemaker
	cfg   Config
}

func newUnit(id types.NodeID) *unit {
	u := &unit{sched: sim.New(1)}
	u.suite = crypto.NewSimSuite(4, 5)
	u.ep = &fakeEP{id: id}
	u.drv = &recDriver{}
	u.cfg = Config{Base: types.NewConfig(1, 100*time.Millisecond)}
	u.pm = New(u.cfg, u.ep, u.sched, u.suite, u.drv, nil, nil)
	return u
}

func (u *unit) wishFrom(from types.NodeID, v types.View) *msg.Wish {
	return &msg.Wish{V: v, Sig: u.suite.SignerFor(from).Sign(msg.WishStatement(v))}
}

func (u *unit) qcFor(v types.View) *msg.QC {
	var h [32]byte
	var sigs []crypto.Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(v, h)))
	}
	agg, _ := u.suite.Aggregate(msg.VoteStatement(v, h), sigs)
	return &msg.QC{V: v, BlockHash: h, Agg: agg}
}

// TestTimeoutSendsWishToAggregator: on view expiry, a wish for the next
// view goes to lead(v+1); relay moves to the next aggregator after 4Δ.
func TestTimeoutSendsWishToAggregator(t *testing.T) {
	u := newUnit(3)
	u.pm.Start()
	if u.pm.CurrentView() != 0 {
		t.Fatal("did not start in view 0")
	}
	u.sched.RunFor(u.cfg.viewTimeout())
	if len(u.ep.sends) != 1 {
		t.Fatalf("sends = %d", len(u.ep.sends))
	}
	if u.ep.sends[0].to != 1 || u.ep.sends[0].m.View() != 1 {
		t.Fatalf("wish = %+v, want view-1 wish to p1", u.ep.sends[0])
	}
	// Aggregator p1 is silent: after the retry timeout the wish goes
	// to p2.
	u.sched.RunFor(u.cfg.retryTimeout())
	if len(u.ep.sends) != 2 || u.ep.sends[1].to != 2 {
		t.Fatalf("relay = %+v", u.ep.sends)
	}
}

// TestAggregatorFormsTC: f+1 wishes aggregate into a broadcast TC.
func TestAggregatorFormsTC(t *testing.T) {
	u := newUnit(1) // p1 = lead(1), the first aggregator for view 1
	u.pm.Start()
	u.pm.Handle(2, u.wishFrom(2, 1))
	if len(u.ep.bcasts) != 0 {
		t.Fatal("TC below threshold")
	}
	u.pm.Handle(3, u.wishFrom(3, 1))
	if len(u.ep.bcasts) != 1 || u.ep.bcasts[0].Kind() != msg.KindTC {
		t.Fatalf("bcasts = %v", u.ep.bcasts)
	}
}

// TestTCEntersView: receiving a valid TC synchronizes into the view.
func TestTCEntersView(t *testing.T) {
	u := newUnit(3)
	u.pm.Start()
	var sigs []crypto.Signature
	for i := 0; i < 2; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.WishStatement(5)))
	}
	agg, _ := u.suite.Aggregate(msg.WishStatement(5), sigs)
	u.pm.Handle(0, &msg.TC{V: 5, Agg: agg})
	if u.pm.CurrentView() != 5 {
		t.Fatalf("view = %v, want 5", u.pm.CurrentView())
	}
}

// TestQCResponsiveEntry: a QC enters the next view immediately and leader
// duties start.
func TestQCResponsiveEntry(t *testing.T) {
	u := newUnit(1)
	u.pm.Start()
	u.pm.Handle(0, u.qcFor(0))
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v, want 1", u.pm.CurrentView())
	}
	if len(u.drv.started) == 0 || u.drv.started[len(u.drv.started)-1] != 1 {
		t.Fatalf("leader start = %v", u.drv.started)
	}
}

// TestEntryCancelsWishRelay: entering the wished view stops the retries.
func TestEntryCancelsWishRelay(t *testing.T) {
	u := newUnit(3)
	u.pm.Start()
	u.sched.RunFor(u.cfg.viewTimeout()) // begin sync for view 1
	before := len(u.ep.sends)
	u.pm.Handle(0, u.qcFor(0)) // enter view 1 responsively
	u.sched.RunFor(3 * u.cfg.retryTimeout())
	// No further wishes for view 1; a new timeout cycle for view 2 may
	// begin (that is correct behavior), so only count view-1 wishes.
	for _, s := range u.ep.sends[before:] {
		if s.m.Kind() == msg.KindWish && s.m.View() == 1 {
			t.Fatal("wish relay continued after entering the view")
		}
	}
}
