package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"lumiere/internal/types"
)

func suites(t *testing.T, n int) map[string]Suite {
	t.Helper()
	return map[string]Suite{
		"sim":     NewSimSuite(n, 7),
		"ed25519": NewEd25519Suite(n, 7),
	}
}

func TestSignVerify(t *testing.T) {
	for name, s := range suites(t, 4) {
		t.Run(name, func(t *testing.T) {
			data := []byte("hello world")
			sig := s.SignerFor(2).Sign(data)
			if sig.Signer != 2 {
				t.Fatalf("signer = %v", sig.Signer)
			}
			if err := s.Verify(data, sig); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if err := s.Verify([]byte("other"), sig); err == nil {
				t.Fatal("verified wrong data")
			}
			forged := Signature{Signer: 1, Bytes: sig.Bytes}
			if err := s.Verify(data, forged); err == nil {
				t.Fatal("verified forged signer")
			}
			if err := s.Verify(data, Signature{Signer: 99, Bytes: sig.Bytes}); err == nil {
				t.Fatal("verified unknown signer")
			}
		})
	}
}

func TestAggregate(t *testing.T) {
	for name, s := range suites(t, 7) {
		t.Run(name, func(t *testing.T) {
			data := []byte("statement")
			var sigs []Signature
			for i := 0; i < 5; i++ {
				sigs = append(sigs, s.SignerFor(types.NodeID(i)).Sign(data))
			}
			agg, err := s.Aggregate(data, sigs)
			if err != nil {
				t.Fatalf("aggregate: %v", err)
			}
			if agg.Count() != 5 {
				t.Fatalf("count = %d", agg.Count())
			}
			if err := s.VerifyAggregate(data, agg, 5); err != nil {
				t.Fatalf("verify agg: %v", err)
			}
			if err := s.VerifyAggregate(data, agg, 6); err == nil {
				t.Fatal("threshold not enforced")
			}
			if err := s.VerifyAggregate([]byte("x"), agg, 5); err == nil {
				t.Fatal("verified agg over wrong data")
			}
			// Duplicate signers rejected.
			if _, err := s.Aggregate(data, append(sigs, sigs[0])); err == nil {
				t.Fatal("duplicate signer accepted")
			}
			// Truncation keeps validity at the lower threshold.
			tc := agg.Truncate(3)
			if err := s.VerifyAggregate(data, tc, 3); err != nil {
				t.Fatalf("truncated agg: %v", err)
			}
		})
	}
}

func TestAggregateHasAndClone(t *testing.T) {
	s := NewSimSuite(5, 1)
	data := []byte("d")
	sigs := []Signature{s.SignerFor(3).Sign(data), s.SignerFor(1).Sign(data)}
	agg, err := s.Aggregate(data, sigs)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Has(1) || !agg.Has(3) || agg.Has(2) {
		t.Fatalf("Has wrong: %v", agg.Signers)
	}
	cl := agg.Clone()
	cl.Bytes[0][0] ^= 0xff
	if bytes.Equal(cl.Bytes[0], agg.Bytes[0]) {
		t.Fatal("clone aliases original")
	}
}

func TestAggregateTamperedComponent(t *testing.T) {
	for name, s := range suites(t, 4) {
		t.Run(name, func(t *testing.T) {
			data := []byte("d")
			sigs := []Signature{s.SignerFor(0).Sign(data), s.SignerFor(1).Sign(data)}
			agg, err := s.Aggregate(data, sigs)
			if err != nil {
				t.Fatal(err)
			}
			agg.Bytes[1] = append([]byte(nil), agg.Bytes[1]...)
			agg.Bytes[1][0] ^= 1
			if err := s.VerifyAggregate(data, agg, 2); err == nil {
				t.Fatal("tampered aggregate accepted")
			}
		})
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := NewEd25519Suite(4, 42)
	b := NewEd25519Suite(4, 42)
	data := []byte("same keys")
	sa := a.SignerFor(0).Sign(data)
	if err := b.Verify(data, sa); err != nil {
		t.Fatalf("seeded suites disagree: %v", err)
	}
	c := NewEd25519Suite(4, 43)
	if err := c.Verify(data, sa); err == nil {
		t.Fatal("different seeds produced same keys")
	}
}

func TestStatementEncoding(t *testing.T) {
	a := Statement("dom", 5, []byte{1, 2})
	b := Statement("dom", 5, []byte{1, 2})
	if !bytes.Equal(a, b) {
		t.Fatal("statement not deterministic")
	}
	if bytes.Equal(Statement("dom", 5, nil), Statement("dom", 6, nil)) {
		t.Fatal("views collide")
	}
	if bytes.Equal(Statement("a", 5, nil), Statement("b", 5, nil)) {
		t.Fatal("domains collide")
	}
}

func TestStatementInjectiveQuick(t *testing.T) {
	// Property: distinct (domain, view) pairs yield distinct statements
	// when the domain contains no NUL byte (the separator).
	f := func(v1, v2 uint32) bool {
		a := Statement("x", types.View(v1), nil)
		b := Statement("x", types.View(v2), nil)
		return (v1 == v2) == bytes.Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimSuiteSignerPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown signer")
		}
	}()
	NewSimSuite(3, 1).SignerFor(9)
}

// TestSimSuiteResetEquivalence pins the arena contract for the crypto
// layer: a reset suite must produce byte-identical signatures to a
// freshly constructed one, and signatures handed out before the reset
// must keep verifying under a suite re-keyed the same way (the arena
// re-keys per cell with the cell's seed).
func TestSimSuiteResetEquivalence(t *testing.T) {
	data := []byte("statement")
	dirty := NewSimSuite(4, 1)
	oldSig := dirty.SignerFor(2).Sign(data)

	dirty.Reset(7, 99)
	fresh := NewSimSuite(7, 99)
	if dirty.N() != 7 {
		t.Fatalf("n = %d after reset", dirty.N())
	}
	for i := 0; i < 7; i++ {
		a := dirty.SignerFor(types.NodeID(i)).Sign(data)
		b := fresh.SignerFor(types.NodeID(i)).Sign(data)
		if !bytes.Equal(a.Bytes, b.Bytes) {
			t.Fatalf("node %d: reset suite signs differently", i)
		}
		if err := dirty.Verify(data, b); err != nil {
			t.Fatalf("cross-verify after reset: %v", err)
		}
	}
	// The old suite's signature must no longer verify (different keys)
	// but must not have been clobbered: its bytes still verify under an
	// identically keyed fresh suite.
	if err := dirty.Verify(data, oldSig); err == nil {
		t.Fatal("pre-reset signature verifies under new keys")
	}
	if err := NewSimSuite(4, 1).Verify(data, oldSig); err != nil {
		t.Fatalf("pre-reset signature bytes corrupted: %v", err)
	}
}

// TestSimSuiteSignatureStability verifies the chunked signature arena
// never moves bytes already handed out, across block boundaries and
// resets.
func TestSimSuiteSignatureStability(t *testing.T) {
	s := NewSimSuite(2, 5)
	data := make([]byte, 8)
	var sigs []Signature
	var want [][]byte
	for i := 0; i < 3000; i++ { // crosses the 1024-signature block size
		data[0] = byte(i)
		data[1] = byte(i >> 8)
		sig := s.SignerFor(types.NodeID(i % 2)).Sign(data)
		sigs = append(sigs, sig)
		want = append(want, append([]byte(nil), sig.Bytes...))
	}
	s.Reset(2, 5)
	for i := 0; i < 100; i++ {
		s.SignerFor(0).Sign(data)
	}
	for i, sig := range sigs {
		if !bytes.Equal(sig.Bytes, want[i]) {
			t.Fatalf("signature %d mutated after later signing", i)
		}
	}
}

// TestSimSuiteSteadyStateAllocs gates the signing hot path: with the
// per-node HMAC states warm, Sign must stay at ~1/1024 allocations per
// op (the amortized output block) and Verify at zero.
func TestSimSuiteSteadyStateAllocs(t *testing.T) {
	s := NewSimSuite(4, 1)
	data := []byte("warm statement")
	sig := s.SignerFor(1).Sign(data)
	if err := s.Verify(data, sig); err != nil {
		t.Fatal(err)
	}
	signer := s.SignerFor(1) // engines hold their Signer for the run
	signAllocs := testing.AllocsPerRun(2000, func() {
		signer.Sign(data)
	})
	if signAllocs > 0.01 {
		t.Fatalf("Sign allocates %.3f/op in steady state", signAllocs)
	}
	verifyAllocs := testing.AllocsPerRun(1000, func() {
		if err := s.Verify(data, sig); err != nil {
			t.Fatal(err)
		}
	})
	if verifyAllocs != 0 {
		t.Fatalf("Verify allocates %.3f/op in steady state", verifyAllocs)
	}
}

// TestVerifiedAggregateMemo pins the SimSuite memo-cache semantics: a
// re-verified certificate hits, but any content drift — tampered MAC,
// re-bound statement — falls through to the full check and fails.
func TestVerifiedAggregateMemo(t *testing.T) {
	s := NewSimSuite(memoMinN, 1) // memoization is off below memoMinN
	data := Statement("memo", 7, nil)
	var sigs []Signature
	for i := 0; i < 3; i++ {
		sigs = append(sigs, s.SignerFor(types.NodeID(i)).Sign(data))
	}
	agg, err := s.Aggregate(data, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // populate, then hit
		if err := s.VerifyAggregate(data, agg, 3); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	// Tamper one component in place: same backing arrays, same key.
	saved := agg.Bytes[0]
	agg.Bytes[0] = append([]byte(nil), saved...)
	agg.Bytes[0][0] ^= 1
	if err := s.VerifyAggregate(data, agg, 3); err == nil {
		t.Fatal("tampered aggregate accepted via memo cache")
	}
	agg.Bytes[0] = saved
	// Re-bind the verified certificate to a different statement.
	other := Statement("memo", 8, nil)
	if err := s.VerifyAggregate(other, agg, 3); err == nil {
		t.Fatal("re-bound aggregate accepted via memo cache")
	}
	// Threshold still enforced on hits.
	if err := s.VerifyAggregate(data, agg, 4); err == nil {
		t.Fatal("threshold ignored on memo hit")
	}
	if err := s.VerifyAggregate(data, agg, 3); err != nil {
		t.Fatalf("valid aggregate rejected after misses: %v", err)
	}
	// Reset drops the cache and re-keys: the old certificate no longer
	// verifies at all.
	s.Reset(4, 2)
	if err := s.VerifyAggregate(data, agg, 3); err == nil {
		t.Fatal("stale certificate accepted after Reset")
	}
}
