// Package crypto provides the signature substrate assumed in §2 of the
// paper: a signature scheme with PKI and an m-of-n threshold/aggregate
// scheme whose certificates have size O(κ) independent of m and n.
//
// Two suites are provided:
//
//   - SimSuite: an HMAC-SHA256 scheme keyed per node. It is cheap enough
//     for large simulated executions while still making signatures
//     unforgeable by construction inside the process (a Byzantine node's
//     code has no access to honest nodes' MAC keys). Aggregates carry the
//     signer set plus the component MACs; for communication-complexity
//     accounting every certificate is charged a constant κ bytes, matching
//     the paper's model (threshold signatures are O(κ)).
//
//   - Ed25519Suite: real public-key signatures from the standard library,
//     used by the TCP runtime. The standard library has no pairing-based
//     threshold scheme, so aggregates are multisignatures (concatenated
//     ed25519 signatures) — a documented substitution (see DESIGN.md §2);
//     complexity accounting still charges κ per certificate so the
//     measured message-complexity shapes are unchanged.
package crypto

import (
	"bytes"
	"cmp"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"math/rand"
	"slices"

	"lumiere/internal/types"
)

// Kappa is the security parameter κ in bytes: the nominal size charged for
// every signature, hash and certificate when accounting message sizes.
const Kappa = 32

// Errors returned by aggregate construction and verification.
var (
	ErrBadSignature    = errors.New("crypto: signature verification failed")
	ErrDuplicateSigner = errors.New("crypto: duplicate signer in aggregate")
	ErrThreshold       = errors.New("crypto: aggregate below threshold")
	ErrUnknownSigner   = errors.New("crypto: unknown signer")
)

// Signature is a single-node signature over a byte string.
type Signature struct {
	Signer types.NodeID
	Bytes  []byte
}

// Aggregate is an m-of-n certificate: a threshold signature in the paper's
// model. Signers is sorted and duplicate-free.
type Aggregate struct {
	Signers []types.NodeID
	Bytes   [][]byte // component signatures, parallel to Signers
}

// Count returns the number of distinct signers.
func (a *Aggregate) Count() int { return len(a.Signers) }

// Has reports whether id contributed to the aggregate.
func (a *Aggregate) Has(id types.NodeID) bool {
	_, ok := slices.BinarySearch(a.Signers, id)
	return ok
}

// Clone returns a deep copy of the aggregate.
func (a *Aggregate) Clone() Aggregate {
	out := Aggregate{
		Signers: append([]types.NodeID(nil), a.Signers...),
		Bytes:   make([][]byte, len(a.Bytes)),
	}
	for i, b := range a.Bytes {
		out.Bytes[i] = append([]byte(nil), b...)
	}
	return out
}

// Truncate returns an aggregate containing only the first m signers. The
// paper uses this implicitly: any EC (2f+1 signers) contains a TC (f+1
// signers).
func (a *Aggregate) Truncate(m int) Aggregate {
	if m > len(a.Signers) {
		m = len(a.Signers)
	}
	return Aggregate{Signers: a.Signers[:m], Bytes: a.Bytes[:m]}
}

// Signer signs on behalf of one node.
type Signer interface {
	ID() types.NodeID
	Sign(data []byte) Signature
}

// Suite is a signature scheme plus PKI for a fixed set of n nodes.
type Suite interface {
	// SignerFor returns the signing handle for a node (its private key).
	SignerFor(id types.NodeID) Signer
	// Verify checks a single signature.
	Verify(data []byte, sig Signature) error
	// Aggregate combines component signatures into a certificate,
	// verifying each and rejecting duplicates.
	Aggregate(data []byte, sigs []Signature) (Aggregate, error)
	// VerifyAggregate checks a certificate against a threshold.
	VerifyAggregate(data []byte, agg Aggregate, threshold int) error
	// N returns the number of nodes in the PKI.
	N() int
}

// aggregate is the shared combine logic used by both suites.
func aggregate(s Suite, data []byte, sigs []Signature) (Aggregate, error) {
	sorted := append([]Signature(nil), sigs...)
	// slices.SortFunc rather than sort.Slice: the non-capturing
	// comparison keeps the certificate-assembly path free of closure
	// allocations.
	slices.SortFunc(sorted, func(a, b Signature) int { return cmp.Compare(a.Signer, b.Signer) })
	agg := Aggregate{
		Signers: make([]types.NodeID, 0, len(sorted)),
		Bytes:   make([][]byte, 0, len(sorted)),
	}
	for i, sig := range sorted {
		if i > 0 && sig.Signer == sorted[i-1].Signer {
			return Aggregate{}, fmt.Errorf("%w: %v", ErrDuplicateSigner, sig.Signer)
		}
		if err := s.Verify(data, sig); err != nil {
			return Aggregate{}, err
		}
		agg.Signers = append(agg.Signers, sig.Signer)
		agg.Bytes = append(agg.Bytes, sig.Bytes)
	}
	return agg, nil
}

// verifyAggregate is the shared threshold-check logic.
func verifyAggregate(s Suite, data []byte, agg Aggregate, threshold int) error {
	if agg.Count() < threshold {
		return fmt.Errorf("%w: have %d, need %d", ErrThreshold, agg.Count(), threshold)
	}
	if len(agg.Signers) != len(agg.Bytes) {
		return fmt.Errorf("crypto: malformed aggregate: %d signers, %d signatures", len(agg.Signers), len(agg.Bytes))
	}
	for i := range agg.Signers {
		if i > 0 && agg.Signers[i] <= agg.Signers[i-1] {
			return fmt.Errorf("%w: signer list not strictly sorted", ErrDuplicateSigner)
		}
		sig := Signature{Signer: agg.Signers[i], Bytes: agg.Bytes[i]}
		if err := s.Verify(data, sig); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// SimSuite
// ---------------------------------------------------------------------------

// SimSuite is the HMAC-based suite used by the simulator. Unlike
// Ed25519Suite it is NOT safe for concurrent use: it reuses one keyed
// HMAC state per node across operations and bump-allocates signature
// outputs from shared blocks, so each suite must be confined to a single
// execution's event loop (the harness creates or resets one per run).
type SimSuite struct {
	keys [][]byte
	// macs caches one keyed HMAC state per node, initialized lazily and
	// recycled via hash.Reset — signing and verification allocate no
	// hash state in steady state.
	macs []hash.Hash
	// sigs is the bump arena signature outputs are cut from: Sum appends
	// into the current block, and a fresh block is chained when it
	// fills. Reset detaches the block instead of truncating it, so
	// signatures held by a previous execution's messages stay intact.
	sigs []byte
	// vbuf is the verification scratch: recomputed MACs are compared
	// against the candidate and never escape.
	vbuf []byte
	// verified memoizes (statement, certificate) pairs that have passed a
	// full component-wise check, so re-verifying a broadcast certificate
	// at each of n recipients costs one memcmp instead of 2f+1 keyed
	// HMACs — at n=4096 the difference between O(n) and O(n²) MACs per
	// certified view. The map key is backing-array identity (a fast
	// index; Truncate shares its parent's arrays, hence the length in
	// the key), but a hit only counts after the entry's deep copy of the
	// statement, signer list and MAC bytes compares equal to the
	// candidate — so a tampered or re-bound certificate, however it
	// aliases a verified one, falls through to the full check. This
	// shortcut is for the in-process simulation only; Ed25519Suite
	// performs every check.
	verified map[aggKey]*verifiedCert
}

// aggKey indexes an aggregate by the identity of its backing arrays plus
// its length (a Truncate view shares pointers with its parent).
type aggKey struct {
	signers *types.NodeID
	bytes   *[]byte
	n       int
}

// verifiedCert is a deep copy of a fully verified (statement,
// certificate) pair; cache hits require byte equality with it.
type verifiedCert struct {
	stmt    []byte
	signers []types.NodeID
	macs    [][]byte
}

func (c *verifiedCert) matches(data []byte, agg Aggregate) bool {
	if !bytes.Equal(c.stmt, data) || !slices.Equal(c.signers, agg.Signers) {
		return false
	}
	if len(c.macs) != len(agg.Bytes) {
		return false
	}
	for i, m := range c.macs {
		if !bytes.Equal(m, agg.Bytes[i]) {
			return false
		}
	}
	return true
}

// sigBlock is the byte size of one signature-output block (1024
// signatures of sha256.Size bytes each).
const sigBlock = 1024 * sha256.Size

var _ Suite = (*SimSuite)(nil)

// NewSimSuite creates a SimSuite for n nodes with keys derived from seed.
func NewSimSuite(n int, seed int64) *SimSuite {
	s := &SimSuite{}
	s.Reset(n, seed)
	return s
}

// Reset re-keys the suite for n nodes from seed, reusing key buffers and
// dropping the cached per-node HMAC states (they re-key lazily). The
// current signature block is detached, not truncated: signatures already
// handed out keep their bytes. The result is indistinguishable from
// NewSimSuite(n, seed).
func (s *SimSuite) Reset(n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	if cap(s.keys) < n {
		grown := make([][]byte, n)
		copy(grown, s.keys)
		s.keys = grown
	}
	s.keys = s.keys[:n]
	for i := range s.keys {
		if s.keys[i] == nil {
			s.keys[i] = make([]byte, 32)
		}
		// rand.Rand.Read never returns an error.
		rng.Read(s.keys[i])
	}
	if cap(s.macs) < n {
		s.macs = make([]hash.Hash, n)
	}
	s.macs = s.macs[:n]
	for i := range s.macs {
		s.macs[i] = nil
	}
	s.sigs = nil
	clear(s.verified)
}

// N implements Suite.
func (s *SimSuite) N() int { return len(s.keys) }

type simSigner struct {
	suite *SimSuite
	id    types.NodeID
}

// SignerFor implements Suite.
func (s *SimSuite) SignerFor(id types.NodeID) Signer {
	if int(id) < 0 || int(id) >= len(s.keys) {
		panic(fmt.Sprintf("crypto: signer for unknown node %v", id))
	}
	return simSigner{suite: s, id: id}
}

func (ss simSigner) ID() types.NodeID { return ss.id }

func (ss simSigner) Sign(data []byte) Signature {
	s := ss.suite
	h := s.macState(ss.id)
	h.Write(data)
	if cap(s.sigs)-len(s.sigs) < sha256.Size {
		s.sigs = make([]byte, 0, sigBlock)
	}
	n := len(s.sigs)
	s.sigs = h.Sum(s.sigs)
	return Signature{Signer: ss.id, Bytes: s.sigs[n:len(s.sigs):len(s.sigs)]}
}

// macState returns node id's keyed HMAC state, reset and ready to write.
func (s *SimSuite) macState(id types.NodeID) hash.Hash {
	h := s.macs[id]
	if h == nil {
		h = hmac.New(sha256.New, s.keys[id])
		s.macs[id] = h
	} else {
		h.Reset()
	}
	return h
}

// Verify implements Suite.
func (s *SimSuite) Verify(data []byte, sig Signature) error {
	if int(sig.Signer) < 0 || int(sig.Signer) >= len(s.keys) {
		return fmt.Errorf("%w: %v", ErrUnknownSigner, sig.Signer)
	}
	h := s.macState(sig.Signer)
	h.Write(data)
	s.vbuf = h.Sum(s.vbuf[:0])
	if !hmac.Equal(sig.Bytes, s.vbuf) {
		return fmt.Errorf("%w: signer %v", ErrBadSignature, sig.Signer)
	}
	return nil
}

// Aggregate implements Suite.
func (s *SimSuite) Aggregate(data []byte, sigs []Signature) (Aggregate, error) {
	return aggregate(s, data, sigs)
}

// maxVerifiedCerts bounds the memo cache; on overflow the cache flushes
// wholesale (a backstop — runs produce far fewer distinct certificates).
const maxVerifiedCerts = 1 << 14

// VerifyAggregate implements Suite.
func (s *SimSuite) VerifyAggregate(data []byte, agg Aggregate, threshold int) error {
	if agg.Count() < threshold {
		return fmt.Errorf("%w: have %d, need %d", ErrThreshold, agg.Count(), threshold)
	}
	k, keyed := s.key(agg)
	if keyed {
		if c, hit := s.verified[k]; hit && c.matches(data, agg) {
			return nil
		}
	}
	if err := verifyAggregate(s, data, agg, threshold); err != nil {
		return err
	}
	if keyed {
		s.memoize(k, data, agg)
	}
	return nil
}

// memoMinN disables memoization for small suites: the cache's deep
// copies cost more allocations than the saved HMACs are worth below it
// (and the small-n benchmark baselines stay comparable), while the
// massive-n runs — where re-verifying a broadcast certificate at every
// recipient is the dominant cost — sit far above it.
const memoMinN = 64

func (s *SimSuite) key(agg Aggregate) (aggKey, bool) {
	if len(s.keys) < memoMinN || len(agg.Signers) == 0 || len(agg.Bytes) == 0 {
		return aggKey{}, false
	}
	return aggKey{signers: &agg.Signers[0], bytes: &agg.Bytes[0], n: len(agg.Signers)}, true
}

func (s *SimSuite) memoize(k aggKey, data []byte, agg Aggregate) {
	if s.verified == nil {
		s.verified = make(map[aggKey]*verifiedCert)
	} else if len(s.verified) >= maxVerifiedCerts {
		clear(s.verified)
	}
	c := &verifiedCert{
		stmt:    append([]byte(nil), data...),
		signers: append([]types.NodeID(nil), agg.Signers...),
		macs:    make([][]byte, len(agg.Bytes)),
	}
	for i, m := range agg.Bytes {
		c.macs[i] = append([]byte(nil), m...)
	}
	s.verified[k] = c
}

// ---------------------------------------------------------------------------
// Ed25519Suite
// ---------------------------------------------------------------------------

// Ed25519Suite uses real ed25519 keys; certificates are multisignatures.
type Ed25519Suite struct {
	pub  []ed25519.PublicKey
	priv []ed25519.PrivateKey
}

var _ Suite = (*Ed25519Suite)(nil)

// NewEd25519Suite deterministically generates keys for n nodes from seed.
// Deterministic generation keeps multi-process clusters configuration-free:
// every process derives the same PKI from the shared seed.
func NewEd25519Suite(n int, seed int64) *Ed25519Suite {
	rng := rand.New(rand.NewSource(seed))
	s := &Ed25519Suite{
		pub:  make([]ed25519.PublicKey, n),
		priv: make([]ed25519.PrivateKey, n),
	}
	for i := 0; i < n; i++ {
		seedBytes := make([]byte, ed25519.SeedSize)
		rng.Read(seedBytes)
		s.priv[i] = ed25519.NewKeyFromSeed(seedBytes)
		s.pub[i] = s.priv[i].Public().(ed25519.PublicKey)
	}
	return s
}

// N implements Suite.
func (s *Ed25519Suite) N() int { return len(s.pub) }

type edSigner struct {
	suite *Ed25519Suite
	id    types.NodeID
}

// SignerFor implements Suite.
func (s *Ed25519Suite) SignerFor(id types.NodeID) Signer {
	if int(id) < 0 || int(id) >= len(s.priv) {
		panic(fmt.Sprintf("crypto: signer for unknown node %v", id))
	}
	return edSigner{suite: s, id: id}
}

func (es edSigner) ID() types.NodeID { return es.id }

func (es edSigner) Sign(data []byte) Signature {
	return Signature{Signer: es.id, Bytes: ed25519.Sign(es.suite.priv[es.id], data)}
}

// Verify implements Suite.
func (s *Ed25519Suite) Verify(data []byte, sig Signature) error {
	if int(sig.Signer) < 0 || int(sig.Signer) >= len(s.pub) {
		return fmt.Errorf("%w: %v", ErrUnknownSigner, sig.Signer)
	}
	if !ed25519.Verify(s.pub[sig.Signer], data, sig.Bytes) {
		return fmt.Errorf("%w: signer %v", ErrBadSignature, sig.Signer)
	}
	return nil
}

// Aggregate implements Suite.
func (s *Ed25519Suite) Aggregate(data []byte, sigs []Signature) (Aggregate, error) {
	return aggregate(s, data, sigs)
}

// VerifyAggregate implements Suite.
func (s *Ed25519Suite) VerifyAggregate(data []byte, agg Aggregate, threshold int) error {
	return verifyAggregate(s, data, agg, threshold)
}

// ---------------------------------------------------------------------------
// Signing payload helpers
// ---------------------------------------------------------------------------

// Statement builds the canonical byte string that protocol messages sign:
// a domain tag, a view number and an optional hash. Using a fixed encoding
// keeps the two suites and the two runtimes interoperable.
func Statement(domain string, view types.View, hash []byte) []byte {
	return AppendStatement(make([]byte, 0, len(domain)+1+8+len(hash)), domain, view, hash)
}

// AppendStatement appends the canonical statement encoding to buf and
// returns the extended slice. Engines on the signing hot path keep a
// per-instance scratch buffer and rebuild statements in place
// (buf[:0]), so steady-state signing and verification allocate nothing;
// Statement is the allocating convenience form.
func AppendStatement(buf []byte, domain string, view types.View, hash []byte) []byte {
	buf = append(buf, domain...)
	buf = append(buf, 0)
	buf = binary.BigEndian.AppendUint64(buf, uint64(view))
	return append(buf, hash...)
}
