package adversary

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

var condMsg = &msg.ViewMsg{V: 1}

func base(d time.Duration) network.LinkPolicy {
	return network.DelayLink{P: network.Fixed{D: d}}
}

func TestPartitionDropsAcrossGroupsUntilHeal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	heal := types.Time(0).Add(time.Second)
	// Nodes 0..3: {0,1} is an island; 2 and 3 are unlisted and share
	// the implicit group.
	p := NewPartition(base(time.Millisecond), 4, heal, []types.NodeID{0, 1})
	cases := []struct {
		name     string
		from, to types.NodeID
		at       types.Time
		drop     bool
	}{
		{"cross-group pre-heal", 0, 2, 0, true},
		{"cross-group reverse pre-heal", 3, 1, 0, true},
		{"intra-island pre-heal", 0, 1, 0, false},
		{"implicit-group pre-heal", 2, 3, 0, false},
		{"cross-group at heal", 0, 2, heal, false},
		{"cross-group post-heal", 0, 2, heal.Add(time.Second), false},
	}
	for _, c := range cases {
		if v := p.Link(c.from, c.to, condMsg, c.at, rng); v.Drop != c.drop {
			t.Errorf("%s: drop = %v, want %v", c.name, v.Drop, c.drop)
		}
	}
}

func TestLossyProbabilityAndUntil(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	always := Lossy{Base: base(time.Millisecond), P: 1}
	if v := always.Link(0, 1, condMsg, 0, rng); !v.Drop {
		t.Fatal("P=1 did not drop")
	}
	never := Lossy{Base: base(time.Millisecond), P: 0}
	if v := never.Link(0, 1, condMsg, 0, rng); v.Drop {
		t.Fatal("P=0 dropped")
	}
	until := Lossy{Base: base(time.Millisecond), P: 1, Until: types.Time(0).Add(time.Second)}
	if v := until.Link(0, 1, condMsg, types.Time(0).Add(time.Second), rng); v.Drop {
		t.Fatal("dropped at Until")
	}
	if v := until.Link(0, 1, condMsg, 0, rng); !v.Drop {
		t.Fatal("did not drop before Until")
	}
	half := Lossy{Base: base(time.Millisecond), P: 0.5}
	drops := 0
	for i := 0; i < 1000; i++ {
		if half.Link(0, 1, condMsg, 0, rng).Drop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("P=0.5 dropped %d/1000", drops)
	}
}

func TestDuplicatingVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Duplicating{Base: base(time.Millisecond), P: 1}
	v := d.Link(0, 1, condMsg, 0, rng)
	if !v.Dup || v.DupDelay != v.Delay {
		t.Fatalf("P=1 verdict %+v: want Dup with DupDelay = Delay", v)
	}
	jit := Duplicating{Base: base(time.Millisecond), P: 1, Jitter: 10 * time.Millisecond}
	for i := 0; i < 100; i++ {
		v := jit.Link(0, 1, condMsg, 0, rng)
		if v.DupDelay < v.Delay || v.DupDelay > v.Delay+jit.Jitter {
			t.Fatalf("jittered DupDelay %v outside [%v, %v]", v.DupDelay, v.Delay, v.Delay+jit.Jitter)
		}
	}
	// A dropped message is never duplicated.
	dl := Duplicating{Base: Lossy{Base: base(time.Millisecond), P: 1}, P: 1}
	if v := dl.Link(0, 1, condMsg, 0, rng); !v.Drop || v.Dup {
		t.Fatalf("dropped verdict %+v: want Drop without Dup", v)
	}
}

func TestFlakyLinkDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := FlakyLink{Base: base(time.Millisecond), From: 0, To: 1, P: 1}
	if !f.Link(0, 1, condMsg, 0, rng).Drop {
		t.Fatal("forward not dropped")
	}
	if f.Link(1, 0, condMsg, 0, rng).Drop {
		t.Fatal("reverse dropped on a directed link")
	}
	if f.Link(0, 2, condMsg, 0, rng).Drop {
		t.Fatal("unrelated link dropped")
	}
	f.Bidirectional = true
	if !f.Link(1, 0, condMsg, 0, rng).Drop {
		t.Fatal("reverse not dropped on a bidirectional link")
	}
}

func TestReorderingJittersWithinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Reordering{Base: base(5 * time.Millisecond), Jitter: 20 * time.Millisecond}
	varied := false
	for i := 0; i < 200; i++ {
		v := r.Link(0, 1, condMsg, 0, rng)
		if v.Delay < 5*time.Millisecond || v.Delay > 25*time.Millisecond {
			t.Fatalf("delay %v outside [5ms, 25ms]", v.Delay)
		}
		if v.Delay != 5*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never varied the delay")
	}
}

// TestConditionAllocs pins the condition primitives' Link paths at zero
// allocations: they sit inside the simulated send hot path, which PR 2
// pinned at 0 allocs/send.
func TestConditionAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	part := NewPartition(base(time.Millisecond), 4, types.Time(0).Add(time.Second), []types.NodeID{0, 1})
	chain := Lossy{
		Base: Duplicating{
			Base: Reordering{
				Base:   FlakyLink{Base: part, From: 2, To: 3, P: 0.5},
				Jitter: time.Millisecond,
			},
			P: 0.3, Jitter: time.Millisecond,
		},
		P: 0.2,
	}
	var sink network.Verdict
	avg := testing.AllocsPerRun(1000, func() {
		sink = chain.Link(0, 2, condMsg, 0, rng)
		sink = chain.Link(0, 1, condMsg, 0, rng)
	})
	_ = sink
	if avg != 0 {
		t.Fatalf("condition chain allocates %.2f per Link, want 0", avg)
	}
}

func TestPeriodicChurnSchedule(t *testing.T) {
	c := PeriodicChurn(2, time.Second, 500*time.Millisecond, 2*time.Second, 3)
	if c.Node != 2 || c.Behavior != BehaviorChurn || len(c.Downs) != 3 {
		t.Fatalf("corruption %+v", c)
	}
	for i, d := range c.Downs {
		wantFrom := time.Second + time.Duration(i)*2*time.Second
		if d.From != wantFrom || d.To != wantFrom+500*time.Millisecond {
			t.Fatalf("down %d = %+v", i, d)
		}
	}
	if BehaviorChurn.String() != "churn" {
		t.Fatalf("String() = %q", BehaviorChurn.String())
	}
}
