// Package adversary models the §2 adversary in three escalating forms:
// static corruptions (which processors are Byzantine and how they
// misbehave — this file), composable link conditions (partitions, loss,
// duplication, reordering — conditions.go), and adaptive attack
// strategies that observe protocol traffic through read-only hooks and
// steer the corrupted processors and the message schedule dynamically
// (Strategy, strategy.go). Combined with the network's delay/link
// policies this realizes the full §2 adversary for the worst-case
// scenarios the experiments measure.
package adversary

import (
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/pacemaker"
	"lumiere/internal/types"
)

// Behavior is a Byzantine strategy.
type Behavior int

// Byzantine behaviors. Honest is the zero-ish default (explicit, per
// style: enums start at one).
const (
	// BehaviorHonest follows the protocol.
	BehaviorHonest Behavior = iota + 1
	// BehaviorCrash never participates at all (silent from the start):
	// the canonical "actual fault" f_a of the latency/communication
	// experiments.
	BehaviorCrash
	// BehaviorNonProposing participates in view synchronization and
	// voting but never proposes as leader, wasting its views while
	// keeping everyone else synchronized — the cheapest way for a
	// single Byzantine processor to exercise issue (i) of §1.
	BehaviorNonProposing
	// BehaviorLateProposing proposes after an extra delay and ignores
	// the honest-leader QC deadline, producing QCs "just in time" to
	// keep the success criterion alive while slowing every one of its
	// views (§3.5's adversarial-success-criterion discussion).
	BehaviorLateProposing
	// BehaviorCrashAt behaves honestly until Corruption.At, then goes
	// completely silent — the desynchronization adversary: Byzantine
	// votes advance a quorum's clocks far ahead of blocked honest
	// processors, then the help stops.
	BehaviorCrashAt
	// BehaviorEquivocating proposes conflicting blocks to different
	// halves of the cluster as leader (SMR safety attack; see
	// Equivocator). Requires the HotStuff engine.
	BehaviorEquivocating
	// BehaviorChurn crashes and recovers repeatedly per the
	// Corruption.Downs schedule: during each downtime the node neither
	// sends nor receives (messages addressed to it are lost — its own
	// omission fault), and it resumes with intact state afterwards.
	// The canonical crash-recovery churn of the pre-GST regime.
	BehaviorChurn
	// BehaviorStrategic marks a processor controlled by an adaptive
	// attack Strategy (see strategy.go): it runs the protocol honestly
	// by default and the strategy decides dynamically when it is
	// silenced, revived, or made to inject protocol-legal traffic.
	BehaviorStrategic
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case BehaviorHonest:
		return "honest"
	case BehaviorCrash:
		return "crash"
	case BehaviorNonProposing:
		return "non-proposing"
	case BehaviorLateProposing:
		return "late-proposing"
	case BehaviorCrashAt:
		return "crash-at"
	case BehaviorEquivocating:
		return "equivocating"
	case BehaviorChurn:
		return "churn"
	case BehaviorStrategic:
		return "strategic"
	default:
		return "unknown"
	}
}

// Corruption assigns a behavior to one processor.
type Corruption struct {
	Node     types.NodeID
	Behavior Behavior
	// Lag is the extra proposing delay for BehaviorLateProposing.
	Lag time.Duration
	// At is the crash time for BehaviorCrashAt.
	At time.Duration
	// Downs is the crash/recover schedule for BehaviorChurn.
	Downs []Downtime
}

// Downtime is one crash interval of a churning node: down at From,
// recovered at To.
type Downtime struct{ From, To time.Duration }

// Churn returns a crash-recovery corruption for one node.
func Churn(node types.NodeID, downs ...Downtime) Corruption {
	return Corruption{Node: node, Behavior: BehaviorChurn, Downs: downs}
}

// PeriodicChurn returns a churn corruption with cycles downtimes of
// length downFor, the first starting at start, spaced period apart.
func PeriodicChurn(node types.NodeID, start, downFor, period time.Duration, cycles int) Corruption {
	downs := make([]Downtime, cycles)
	for i := range downs {
		from := start + time.Duration(i)*period
		downs[i] = Downtime{From: from, To: from + downFor}
	}
	return Churn(node, downs...)
}

// CrashSet returns crash corruptions for the given nodes.
func CrashSet(nodes ...types.NodeID) []Corruption {
	out := make([]Corruption, len(nodes))
	for i, n := range nodes {
		out[i] = Corruption{Node: n, Behavior: BehaviorCrash}
	}
	return out
}

// CrashFirst returns crash corruptions for processors 0..k-1.
func CrashFirst(k int) []Corruption {
	nodes := make([]types.NodeID, k)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	return CrashSet(nodes...)
}

// NonProposingSet returns non-proposing corruptions for the given nodes.
func NonProposingSet(nodes ...types.NodeID) []Corruption {
	out := make([]Corruption, len(nodes))
	for i, n := range nodes {
		out[i] = Corruption{Node: n, Behavior: BehaviorNonProposing}
	}
	return out
}

// WrapDriver applies a behavior to an underlying-protocol driver: the
// returned driver is what the pacemaker actually controls.
func WrapDriver(d pacemaker.Driver, b Behavior, lag time.Duration, rt clock.Runtime) pacemaker.Driver {
	switch b {
	case BehaviorNonProposing:
		return nonProposing{d}
	case BehaviorLateProposing:
		return &lateProposing{d: d, lag: lag, rt: rt}
	default:
		return d
	}
}

type nonProposing struct{ d pacemaker.Driver }

func (n nonProposing) EnterView(v types.View)             { n.d.EnterView(v) }
func (n nonProposing) LeaderStart(types.View, types.Time) {}

type lateProposing struct {
	d   pacemaker.Driver
	lag time.Duration
	rt  clock.Runtime
}

func (l *lateProposing) EnterView(v types.View) { l.d.EnterView(v) }

// LeaderStart delays the proposal and discards the QC deadline (Byzantine
// leaders are not bound by the honest-leader discipline).
func (l *lateProposing) LeaderStart(v types.View, _ types.Time) {
	l.rt.After(l.lag, func() { l.d.LeaderStart(v, types.TimeInf) })
}
