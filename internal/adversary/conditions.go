package adversary

import (
	"math/rand"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// This file implements the composable link-condition primitives: the
// adversary's control over the network beyond pure delay. Each
// primitive wraps a base network.LinkPolicy and tightens its verdict —
// drop across a partition, lose or duplicate with some probability,
// sever a single link, jitter delays to reorder traffic. All of them
// are value types whose Link methods draw only from the execution's
// rng, so conditioned executions stay reproducible, and none allocate
// on the Link path (the send hot path is pinned at zero allocations).
//
// The network enforces the §2 clamp under every condition: a drop
// before GST is a delivery at GST+Δ, and a drop at or after GST is a
// true omission only under the network's OmissionBudget.

// Partition isolates processor groups from each other until Heal:
// messages crossing a group boundary before Heal are dropped (which the
// clamp converts into deliveries at GST+Δ when the partition heals at
// or before GST — the model-faithful split-brain). Intra-group traffic
// passes through Base. Build with NewPartition; processors not listed
// in any group form one implicit group together.
type Partition struct {
	Base network.LinkPolicy
	Heal types.Time
	// group is the group index per node; unlisted nodes share group 0.
	group []int32
}

// NewPartition builds a Partition over n processors healing at heal.
// Each groups[i] becomes an isolated island; unlisted processors form
// one implicit island together.
func NewPartition(base network.LinkPolicy, n int, heal types.Time, groups ...[]types.NodeID) *Partition {
	member := make([]int32, n)
	for gi, g := range groups {
		for _, id := range g {
			member[id] = int32(gi + 1)
		}
	}
	return &Partition{Base: base, Heal: heal, group: member}
}

// Link implements network.LinkPolicy.
func (p *Partition) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	if at < p.Heal && p.group[from] != p.group[to] {
		return network.Verdict{Drop: true}
	}
	return p.Base.Link(from, to, m, at, rng)
}

// Lossy drops each message independently with probability P. Until
// limits the loss to messages sent before that instant (zero means the
// whole run — post-GST the clamp degrades unfunded drops to Δ-late
// deliveries, so unbounded loss still satisfies the model).
type Lossy struct {
	Base  network.LinkPolicy
	P     float64
	Until types.Time
}

// Link implements network.LinkPolicy.
func (l Lossy) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	if (l.Until == 0 || at < l.Until) && rng.Float64() < l.P {
		return network.Verdict{Drop: true}
	}
	return l.Base.Link(from, to, m, at, rng)
}

// Duplicating delivers one extra copy of each message with probability
// P. The duplicate's delay is the original's plus a uniform draw in
// [0, Jitter] (Jitter 0 duplicates at the same requested delay, so
// under adversarial clamping both copies collapse onto the bound).
type Duplicating struct {
	Base   network.LinkPolicy
	P      float64
	Jitter time.Duration
}

// Link implements network.LinkPolicy.
func (d Duplicating) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	v := d.Base.Link(from, to, m, at, rng)
	if !v.Drop && rng.Float64() < d.P {
		v.Dup = true
		v.DupDelay = v.Delay
		if d.Jitter > 0 {
			v.DupDelay += time.Duration(rng.Int63n(int64(d.Jitter) + 1))
		}
	}
	return v
}

// FlakyLink drops each message on the directed link From→To with
// probability P (1 severs the link; Bidirectional severs both
// directions). Everything else passes through Base. It models a single
// bad cable — the minimal partition.
type FlakyLink struct {
	Base          network.LinkPolicy
	From, To      types.NodeID
	P             float64
	Bidirectional bool
}

// Link implements network.LinkPolicy.
func (f FlakyLink) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	hit := (from == f.From && to == f.To) ||
		(f.Bidirectional && from == f.To && to == f.From)
	if hit && rng.Float64() < f.P {
		return network.Verdict{Drop: true}
	}
	return f.Base.Link(from, to, m, at, rng)
}

// Reordering adds an independent uniform delay in [0, Jitter] to every
// message, so later sends overtake earlier ones — the reorder axis of
// the adversary (delivery order is only constrained by the clamp).
type Reordering struct {
	Base   network.LinkPolicy
	Jitter time.Duration
}

// Link implements network.LinkPolicy.
func (r Reordering) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	v := r.Base.Link(from, to, m, at, rng)
	if !v.Drop && r.Jitter > 0 {
		v.Delay += time.Duration(rng.Int63n(int64(r.Jitter) + 1))
	}
	return v
}
