package adversary

import (
	"testing"
	"time"

	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

type recDriver struct {
	entered []types.View
	started []types.View
	dls     []types.Time
}

func (r *recDriver) EnterView(v types.View) { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, dl types.Time) {
	r.started = append(r.started, v)
	r.dls = append(r.dls, dl)
}

func TestWrapDriverHonestPassThrough(t *testing.T) {
	d := &recDriver{}
	w := WrapDriver(d, BehaviorHonest, 0, sim.New(1))
	if _, same := w.(*recDriver); !same {
		t.Fatal("honest wrap should be identity")
	}
}

func TestNonProposingSwallowsLeaderStart(t *testing.T) {
	d := &recDriver{}
	w := WrapDriver(d, BehaviorNonProposing, 0, sim.New(1))
	w.EnterView(3)
	w.LeaderStart(3, 100)
	if len(d.entered) != 1 || d.entered[0] != 3 {
		t.Fatal("EnterView not forwarded")
	}
	if len(d.started) != 0 {
		t.Fatal("LeaderStart not swallowed")
	}
}

func TestLateProposingDelaysAndDropsDeadline(t *testing.T) {
	s := sim.New(1)
	d := &recDriver{}
	w := WrapDriver(d, BehaviorLateProposing, 50*time.Nanosecond, s)
	w.LeaderStart(4, 100)
	if len(d.started) != 0 {
		t.Fatal("LeaderStart not delayed")
	}
	s.RunUntil(50)
	if len(d.started) != 1 || d.started[0] != 4 {
		t.Fatalf("LeaderStart lost: %v", d.started)
	}
	if d.dls[0] != types.TimeInf {
		t.Fatalf("deadline not discarded: %v", d.dls[0])
	}
}

func TestCorruptionConstructors(t *testing.T) {
	cs := CrashFirst(3)
	if len(cs) != 3 || cs[2].Node != 2 || cs[0].Behavior != BehaviorCrash {
		t.Fatalf("CrashFirst = %+v", cs)
	}
	np := NonProposingSet(5, 7)
	if len(np) != 2 || np[1].Node != 7 || np[0].Behavior != BehaviorNonProposing {
		t.Fatalf("NonProposingSet = %+v", np)
	}
}

func TestBehaviorStrings(t *testing.T) {
	for _, b := range []Behavior{BehaviorHonest, BehaviorCrash, BehaviorNonProposing, BehaviorLateProposing, BehaviorCrashAt} {
		if b.String() == "unknown" || b.String() == "" {
			t.Errorf("behavior %d has no name", b)
		}
	}
	if Behavior(99).String() != "unknown" {
		t.Error("unknown behavior name")
	}
}

var _ pacemaker.Driver = (*recDriver)(nil)
