package adversary

import (
	"fmt"
	"math/rand"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/types"
)

// This file implements the adaptive attack-strategy subsystem: where the
// static corruptions of adversary.go fix each Byzantine processor's
// behavior up front, a Strategy observes the protocol as it runs —
// message kinds, views, certificate formation, view entries — and steers
// the corrupted processors and the network schedule dynamically. This is
// the §2 adversary at full power: it sees all traffic, controls delivery
// timing within the partial-synchrony clamp, and adapts the corrupted
// processors' participation to what the honest processors are doing.
//
// Strategies act through an Env the harness wires up per execution. All
// strategy state is per-run and every action flows through the
// deterministic scheduler, so attacked executions remain reproducible
// and sweep results stay byte-identical at any worker count. The
// Observe and Link hot paths must not allocate (the send path is pinned
// at zero allocations; see TestStrategyHookAllocs).

// HookEvent discriminates the read-only observation hooks a Strategy
// receives.
type HookEvent uint8

// Observation hooks. Enumeration starts at 1 so the zero value is
// invalid.
const (
	// HookSend fires once per point-to-point transmission.
	HookSend HookEvent = iota + 1
	// HookDeliver fires when a message reaches its destination.
	HookDeliver
	// HookEnterView fires when a processor enters a view.
	HookEnterView
	// HookEnterEpoch fires when a processor enters an epoch.
	HookEnterEpoch
	// HookHeavySync fires when a processor starts participating in a
	// heavy Θ(n²) epoch synchronization.
	HookHeavySync
)

// Observation is one read-only protocol event surfaced to a Strategy:
// network traffic (kind, view, endpoints) and pacemaker lifecycle
// (view/epoch entries, heavy syncs). It is passed by value on the send
// hot path and must stay allocation-free.
type Observation struct {
	Event HookEvent
	At    types.Time
	// Node is the acting processor: the sender (HookSend), the receiver
	// (HookDeliver), or the processor entering a view/epoch.
	Node types.NodeID
	// Peer is the other endpoint for HookSend/HookDeliver.
	Peer types.NodeID
	// Kind and View describe the message (HookSend/HookDeliver) or the
	// entered view (HookEnterView/HookHeavySync).
	Kind  msg.Kind
	View  types.View
	Epoch types.Epoch
	// Honest reports whether Node is an honest processor (HookSend).
	Honest bool
}

// Env is the control surface the harness exposes to a Strategy: static
// execution facts, read-only schedule access, and the adversary's
// legitimate powers over its corrupted processors (silence, revive,
// inject protocol-legal traffic). All scheduling closures run on the
// execution's deterministic scheduler.
type Env struct {
	// Cfg is the execution's (n, f, Δ) configuration.
	Cfg types.Config
	// GST is the global stabilization time.
	GST types.Time
	// Corrupted lists the processors the strategy controls.
	Corrupted []types.NodeID
	// Leader returns the leader of view v under the protocol's schedule
	// (-1 before any replica has booted).
	Leader func(v types.View) types.NodeID
	// Now returns the current simulated time.
	Now func() types.Time
	// At schedules fn at time t; After schedules fn after d.
	At    func(t types.Time, fn func())
	After func(d time.Duration, fn func())
	// Silence crashes a corrupted processor from now on (it neither
	// sends nor receives); Unsilence revives it with intact state.
	Silence   func(id types.NodeID)
	Unsilence func(id types.NodeID)
	// Broadcast transmits m from corrupted processor from to everyone.
	Broadcast func(from types.NodeID, m msg.Message)
	// SyncMsg builds a protocol-legal, correctly signed view-
	// synchronization message from the given corrupted processor for
	// (the protocol's relevant view at or above) view v — an epoch-view
	// message, wish, or timeout depending on the protocol under test.
	SyncMsg func(from types.NodeID, v types.View) msg.Message
	// Base is the scenario's underlying link policy; strategies that
	// override scheduling for some messages delegate the rest here.
	Base network.LinkPolicy
}

// Strategy is an adaptive attack: it observes protocol traffic through
// read-only hooks and steers the corrupted processors and the message
// schedule dynamically. Implementations must be deterministic (state
// machines over observations and scheduler callbacks, randomness only
// from the rng handed to Link) and must not allocate in Observe or Link.
type Strategy interface {
	// Name returns the strategy's registry name (see AttackNames).
	Name() string
	// Init binds the strategy to an execution before it starts.
	Init(env *Env)
	// Observe is the read-only protocol hook; it fires for every
	// transmission, delivery, view/epoch entry and heavy sync.
	Observe(o Observation)
	// Link is the strategy's adversarial message schedule, consulted
	// once per point-to-point transmission under the §2 clamp.
	Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict
}

// Attack strategy names.
const (
	// AttackViewDesync is the vote-then-silence desynchronizer: the
	// corrupted processors participate honestly until their votes have
	// helped certify a stride of views, then vanish, splitting honest
	// views between the bumped quorum and the stragglers — repeatedly.
	AttackViewDesync = "view-desync"
	// AttackLeaderTarget omits/delays only traffic to and from the next
	// K leaders, tracking the honest frontier view as it moves.
	AttackLeaderTarget = "leader-target"
	// AttackGSTStraddle behaves perfectly until GST — fast network,
	// honest corrupted processors — then silences the corrupted set at
	// GST exactly and stretches every delivery to the Δ bound.
	AttackGSTStraddle = "gst-straddle"
	// AttackSaturate (ComplexitySaturate) keeps every protocol's
	// view-change machinery firing: the corrupted processors go dark
	// exactly during their leadership slots (their views fail, forcing
	// synchronization work) and spam protocol-legal sync traffic the
	// rest of the time, pushing communication toward the O(n²) bound.
	AttackSaturate = "complexity-saturate"
)

// AttackNames lists the implemented strategies in presentation order.
func AttackNames() []string {
	return []string{AttackViewDesync, AttackLeaderTarget, AttackGSTStraddle, AttackSaturate}
}

// AttackSpec is the declarative form of an attack, carried by scenarios
// so sweeps stay printable and reproducible. The zero value means "no
// attack".
type AttackSpec struct {
	// Name selects the strategy (an AttackNames entry).
	Name string
	// Nodes is the number of corrupted processors the strategy
	// controls (0 = the scenario's f). They count against f.
	Nodes int
	// K is LeaderTarget's horizon: how many upcoming leaders are
	// targeted (0 = f).
	K int
	// Period is ViewDesync's silence length and ComplexitySaturate's
	// spam interval (0 = a strategy-specific multiple of Δ).
	Period time.Duration
}

// Enabled reports whether the spec names a strategy.
func (s AttackSpec) Enabled() bool { return s.Name != "" }

// Strategy instantiates the named strategy with the spec's parameters.
// Instances are single-execution: build a fresh one per run.
func (s AttackSpec) Strategy() (Strategy, error) {
	switch s.Name {
	case AttackViewDesync:
		return &ViewDesync{SilenceFor: s.Period}, nil
	case AttackLeaderTarget:
		return &LeaderTarget{K: s.K}, nil
	case AttackGSTStraddle:
		return &GSTStraddle{}, nil
	case AttackSaturate:
		return &ComplexitySaturate{Period: s.Period}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown attack strategy %q", s.Name)
	}
}

// maxDelay requests an unbounded delay; the network clamps delivery to
// the partial-synchrony bound max(GST, t)+Δ — the §2 worst case.
const maxDelay = time.Duration(1<<62 - 1)

// isCertKind reports whether a message kind certifies view progress:
// the observations the strategies use to track the honest frontier.
func isCertKind(k msg.Kind) bool {
	switch k {
	case msg.KindVC, msg.KindEC, msg.KindTC, msg.KindQC:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// ViewDesync
// ---------------------------------------------------------------------------

// ViewDesync is the adaptive vote-then-silence desynchronizer. The
// corrupted processors run the protocol honestly, so their votes and
// view messages help certify views and bump honest clocks; every time
// the certified frontier advances a stride of f+1 views past the last
// cut, the strategy silences all corrupted processors for SilenceFor —
// the help the bumped quorum was counting on disappears exactly when
// the stragglers need f+1 contributions — then revives them and
// repeats. Unlike the static BehaviorCrashAt schedule, the cut times
// adapt to the protocol's actual pace.
type ViewDesync struct {
	// SilenceFor is the length of each silence window (0 = 20Δ).
	SilenceFor time.Duration

	env      *Env
	frontier types.View // max view certified by honest traffic
	lastCut  types.View
	down     bool
}

// Name implements Strategy.
func (s *ViewDesync) Name() string { return AttackViewDesync }

// Init implements Strategy.
func (s *ViewDesync) Init(env *Env) {
	s.env = env
	if s.SilenceFor <= 0 {
		s.SilenceFor = 20 * env.Cfg.Delta
	}
}

// Observe implements Strategy: honest certificate traffic moves the
// frontier; a stride of progress since the last cut triggers the next
// silence window.
func (s *ViewDesync) Observe(o Observation) {
	if o.Event != HookSend || !o.Honest || !isCertKind(o.Kind) {
		return
	}
	if o.View > s.frontier {
		s.frontier = o.View
	}
	if s.down || s.frontier < s.lastCut+types.View(s.env.Cfg.F+1) {
		return
	}
	s.down = true
	s.lastCut = s.frontier
	for _, id := range s.env.Corrupted {
		s.env.Silence(id)
	}
	s.env.After(s.SilenceFor, func() {
		s.down = false
		for _, id := range s.env.Corrupted {
			s.env.Unsilence(id)
		}
	})
}

// Link implements Strategy: ViewDesync leaves scheduling to the base
// policy; the attack is participation, not delay.
func (s *ViewDesync) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	return s.env.Base.Link(from, to, m, at, rng)
}

// ---------------------------------------------------------------------------
// LeaderTarget
// ---------------------------------------------------------------------------

// LeaderTarget omits or maximally delays only the traffic to and from
// the next K leaders, tracked against the moving honest frontier: as
// views advance, the targeted set slides with them. Everyone else sees
// the base network, so the attack is invisible except exactly where
// leadership is about to matter — the focused version of the classic
// "slow the leader" adversary.
type LeaderTarget struct {
	// K is how many upcoming leaders are targeted (0 = f).
	K int

	env      *Env
	frontier types.View // max view observed entered or certified
	// targets caches the leaders of views frontier+1..frontier+K;
	// targetsFor is the frontier it was computed at (-1 = never). The
	// cache is refreshed lazily on the Link hot path, so Link pays K
	// schedule lookups per frontier move instead of per transmission.
	targets    []types.NodeID
	targetsFor types.View
}

// Name implements Strategy.
func (s *LeaderTarget) Name() string { return AttackLeaderTarget }

// Init implements Strategy.
func (s *LeaderTarget) Init(env *Env) {
	s.env = env
	if s.K <= 0 {
		s.K = env.Cfg.F
	}
	s.targets = make([]types.NodeID, s.K)
	s.targetsFor = -1
}

// Observe implements Strategy: view entries and certificates move the
// frontier the targeted window slides against.
func (s *LeaderTarget) Observe(o Observation) {
	switch o.Event {
	case HookEnterView:
	case HookSend:
		if !o.Honest || !isCertKind(o.Kind) {
			return
		}
	default:
		return
	}
	if o.View > s.frontier {
		s.frontier = o.View
	}
}

// isTarget reports whether id leads one of the next K views, against
// the cached target set.
func (s *LeaderTarget) isTarget(id types.NodeID) bool {
	for _, t := range s.targets {
		if t == id {
			return true
		}
	}
	return false
}

// Link implements Strategy: traffic touching an upcoming leader is
// omitted (the clamp converts that into the worst delivery the model
// permits); everything else passes through the base policy.
func (s *LeaderTarget) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	if s.targetsFor != s.frontier {
		for i := range s.targets {
			s.targets[i] = s.env.Leader(s.frontier + types.View(i+1))
		}
		s.targetsFor = s.frontier
	}
	if s.isTarget(from) || s.isTarget(to) {
		return network.Verdict{Drop: true}
	}
	return s.env.Base.Link(from, to, m, at, rng)
}

// ---------------------------------------------------------------------------
// GSTStraddle
// ---------------------------------------------------------------------------

// GSTStraddle is the stabilization-boundary attack: before GST the
// network runs the scenario's base policy and the corrupted processors
// participate honestly — their contributions are baked into every
// pre-GST certificate — then at GST exactly the corrupted set goes
// silent and every delivery is stretched to the t+Δ bound. The
// protocols' post-GST guarantees are measured under the worst timing
// the model permits, entered from the most poisoned state the adversary
// could prepare.
type GSTStraddle struct {
	env *Env
}

// Name implements Strategy.
func (s *GSTStraddle) Name() string { return AttackGSTStraddle }

// Init implements Strategy: the corrupted set is scheduled to vanish at
// GST.
func (s *GSTStraddle) Init(env *Env) {
	s.env = env
	env.At(env.GST, func() {
		for _, id := range env.Corrupted {
			env.Silence(id)
		}
	})
}

// Observe implements Strategy.
func (s *GSTStraddle) Observe(Observation) {}

// Link implements Strategy: base scheduling before GST, the Δ bound
// from GST on.
func (s *GSTStraddle) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	if at < s.env.GST {
		return s.env.Base.Link(from, to, m, at, rng)
	}
	return network.Verdict{Delay: maxDelay}
}

// ---------------------------------------------------------------------------
// ComplexitySaturate
// ---------------------------------------------------------------------------

// ComplexitySaturate pushes communication toward the O(n²) bound by
// forcing every protocol to keep running its view-change machinery —
// the traffic whose cost the quadratic bounds cap — at full network
// speed. Two protocol-legal levers combine:
//
// First, each corrupted processor goes dark exactly while it holds an
// upcoming leadership slot and participates honestly otherwise (tracked
// against the moving honest frontier). Its views fail, so the
// view-change machinery fires on every one of them: Lumiere's
// per-leader success criterion keeps failing and its heavy Θ(n²) epoch
// synchronizations never retire; NK20 pays an all-to-all timeout round
// per failed view; Cogsworth re-enters its wish/relay chains. Outside
// its slots the processor helps, so the run advances quickly and the
// sync work repeats as often as possible.
//
// Second, every Period each corrupted processor broadcasts a correctly
// signed synchronization message (epoch-view, wish or timeout per the
// protocol under test) for the next relevant view above the frontier:
// honest processors verify and buffer the signatures, and certificate
// thresholds complete with up to f adversarial contributions the moment
// the first honest participant arrives — every forced synchronization
// starts as early as the model allows.
//
// The words-accounting experiments measure how close each protocol is
// driven to its quadratic ceiling (see the per-view ≤ c·n² regression
// gate).
type ComplexitySaturate struct {
	// Period is the spam interval (0 = Δ).
	Period time.Duration

	env      *Env
	frontier types.View
	down     []bool // down[i]: Corrupted[i] currently silenced
}

// Name implements Strategy.
func (s *ComplexitySaturate) Name() string { return AttackSaturate }

// Init implements Strategy: the spam tick is armed on the execution's
// scheduler.
func (s *ComplexitySaturate) Init(env *Env) {
	s.env = env
	s.down = make([]bool, len(env.Corrupted))
	if s.Period <= 0 {
		s.Period = env.Cfg.Delta
	}
	var tick func()
	tick = func() {
		for _, id := range env.Corrupted {
			if s.silencedNode(id) {
				continue // a dark node cannot send
			}
			if m := env.SyncMsg(id, s.frontier+1); m != nil {
				env.Broadcast(id, m)
			}
		}
		env.After(s.Period, tick)
	}
	env.After(s.Period, tick)
}

// silencedNode reports whether id is currently dark.
func (s *ComplexitySaturate) silencedNode(id types.NodeID) bool {
	for i, c := range s.env.Corrupted {
		if c == id {
			return s.down[i]
		}
	}
	return false
}

// Observe implements Strategy: honest view entries and certificates
// move the frontier, and the corrupted processors' darkness follows
// their leadership slots.
func (s *ComplexitySaturate) Observe(o Observation) {
	switch o.Event {
	case HookEnterView:
	case HookSend:
		if !o.Honest || !isCertKind(o.Kind) {
			return
		}
	default:
		return
	}
	if o.View <= s.frontier {
		return
	}
	s.frontier = o.View
	// Darkness tracks leadership: silenced while holding the current or
	// next slot (so it is already dark when its view starts and stays
	// dark through it), revived with intact state otherwise.
	for i, id := range s.env.Corrupted {
		leads := s.env.Leader(s.frontier) == id || s.env.Leader(s.frontier+1) == id
		if leads && !s.down[i] {
			s.down[i] = true
			s.env.Silence(id)
		} else if !leads && s.down[i] {
			s.down[i] = false
			s.env.Unsilence(id)
		}
	}
}

// Link implements Strategy: scheduling stays with the base policy — the
// attack repeats sync work as fast as the network allows rather than
// slowing it down.
func (s *ComplexitySaturate) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) network.Verdict {
	return s.env.Base.Link(from, to, m, at, rng)
}

// Compile-time interface checks.
var (
	_ Strategy = (*ViewDesync)(nil)
	_ Strategy = (*LeaderTarget)(nil)
	_ Strategy = (*GSTStraddle)(nil)
	_ Strategy = (*ComplexitySaturate)(nil)
)

// ---------------------------------------------------------------------------
// Hook adapters
// ---------------------------------------------------------------------------

// netObserver adapts a Strategy to network.Observer, reducing each
// transmission to a read-only Observation. It allocates nothing per
// event.
type netObserver struct{ s Strategy }

// NetObserver returns a network.Observer forwarding traffic to the
// strategy's Observe hook.
func NetObserver(s Strategy) network.Observer { return netObserver{s: s} }

// OnSend implements network.Observer.
func (o netObserver) OnSend(from, to types.NodeID, m msg.Message, at types.Time, honestSender bool) {
	o.s.Observe(Observation{
		Event: HookSend, At: at, Node: from, Peer: to,
		Kind: m.Kind(), View: m.View(), Honest: honestSender,
	})
}

// OnDeliver implements network.Observer.
func (o netObserver) OnDeliver(from, to types.NodeID, m msg.Message, at types.Time) {
	o.s.Observe(Observation{
		Event: HookDeliver, At: at, Node: to, Peer: from,
		Kind: m.Kind(), View: m.View(),
	})
}

// pmObserver adapts a Strategy to one node's pacemaker.Observer.
type pmObserver struct {
	s    Strategy
	node types.NodeID
}

// PMObserver returns a pacemaker.Observer surfacing one node's view and
// epoch entries (and heavy syncs) to the strategy.
func PMObserver(s Strategy, node types.NodeID) pacemaker.Observer {
	return pmObserver{s: s, node: node}
}

// OnEnterView implements pacemaker.Observer.
func (o pmObserver) OnEnterView(v types.View, at types.Time) {
	o.s.Observe(Observation{Event: HookEnterView, At: at, Node: o.node, View: v})
}

// OnEnterEpoch implements pacemaker.Observer.
func (o pmObserver) OnEnterEpoch(e types.Epoch, at types.Time) {
	o.s.Observe(Observation{Event: HookEnterEpoch, At: at, Node: o.node, Epoch: e})
}

// OnHeavySync implements pacemaker.Observer.
func (o pmObserver) OnHeavySync(v types.View, at types.Time) {
	o.s.Observe(Observation{Event: HookHeavySync, At: at, Node: o.node, View: v})
}
