package adversary

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// fakeEnv builds an Env over recording closures, with a 4-node config,
// GST at 1s, node 3 corrupted, and round-robin leaders.
type fakeEnv struct {
	env       *Env
	silenced  []types.NodeID
	revived   []types.NodeID
	broadcast []msg.Message
	afters    []struct {
		d  time.Duration
		fn func()
	}
	ats []struct {
		t  types.Time
		fn func()
	}
}

func newFakeEnv() *fakeEnv {
	f := &fakeEnv{}
	base := network.LinkFunc(func(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) network.Verdict {
		return network.Verdict{Delay: time.Millisecond}
	})
	f.env = &Env{
		Cfg:       types.NewConfig(1, 100*time.Millisecond), // n=4, f=1
		GST:       types.Time(0).Add(time.Second),
		Corrupted: []types.NodeID{3},
		Leader:    func(v types.View) types.NodeID { return types.NodeID(int64(v) % 4) },
		Now:       func() types.Time { return 0 },
		At: func(t types.Time, fn func()) {
			f.ats = append(f.ats, struct {
				t  types.Time
				fn func()
			}{t, fn})
		},
		After: func(d time.Duration, fn func()) {
			f.afters = append(f.afters, struct {
				d  time.Duration
				fn func()
			}{d, fn})
		},
		Silence:   func(id types.NodeID) { f.silenced = append(f.silenced, id) },
		Unsilence: func(id types.NodeID) { f.revived = append(f.revived, id) },
		Broadcast: func(_ types.NodeID, m msg.Message) { f.broadcast = append(f.broadcast, m) },
		SyncMsg: func(from types.NodeID, v types.View) msg.Message {
			return &msg.EpochViewMsg{V: v}
		},
		Base: base,
	}
	return f
}

func TestAttackSpecFactory(t *testing.T) {
	for _, name := range AttackNames() {
		s, err := AttackSpec{Name: name}.Strategy()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.Name())
		}
	}
	if _, err := (AttackSpec{Name: "nope"}).Strategy(); err == nil {
		t.Fatal("unknown strategy name must error")
	}
	if (AttackSpec{}).Enabled() {
		t.Fatal("zero spec must be disabled")
	}
	if !(AttackSpec{Name: AttackSaturate}).Enabled() {
		t.Fatal("named spec must be enabled")
	}
}

// TestViewDesyncCutsAfterStride drives the desynchronizer with honest
// certificate traffic: after the frontier advances f+1 views it must
// silence the corrupted set, stay down until the silence window
// callback fires, then be ready to cut again.
func TestViewDesyncCutsAfterStride(t *testing.T) {
	f := newFakeEnv()
	s := &ViewDesync{}
	s.Init(f.env)
	if s.SilenceFor != 20*f.env.Cfg.Delta {
		t.Fatalf("default silence window = %v", s.SilenceFor)
	}
	cert := func(v types.View) Observation {
		return Observation{Event: HookSend, Kind: msg.KindQC, View: v, Node: 0, Honest: true}
	}
	s.Observe(cert(1)) // frontier 1 < stride 2
	if len(f.silenced) != 0 {
		t.Fatal("cut before the stride advanced")
	}
	s.Observe(cert(2)) // frontier 2 = lastCut(0) + f+1
	if len(f.silenced) != 1 || f.silenced[0] != 3 {
		t.Fatalf("silenced = %v, want [3]", f.silenced)
	}
	s.Observe(cert(9)) // down: no second cut
	if len(f.silenced) != 1 {
		t.Fatal("cut while already down")
	}
	if len(f.afters) != 1 {
		t.Fatalf("afters = %d, want the revive callback", len(f.afters))
	}
	f.afters[0].fn() // silence window expires
	if len(f.revived) != 1 || f.revived[0] != 3 {
		t.Fatalf("revived = %v, want [3]", f.revived)
	}
	s.Observe(cert(11)) // frontier 11 ≥ lastCut(2... now 9) + 2
	if len(f.silenced) != 2 {
		t.Fatalf("no second cut after revival; silenced = %v", f.silenced)
	}
	// Byzantine and non-certificate traffic must not move the frontier.
	s2 := &ViewDesync{}
	f2 := newFakeEnv()
	s2.Init(f2.env)
	s2.Observe(Observation{Event: HookSend, Kind: msg.KindQC, View: 50, Honest: false})
	s2.Observe(Observation{Event: HookSend, Kind: msg.KindProposal, View: 50, Honest: true})
	if len(f2.silenced) != 0 {
		t.Fatal("frontier moved on ignored traffic")
	}
}

// TestLeaderTargetVerdicts checks the sliding target window: traffic
// touching one of the next K leaders is omitted, everything else passes
// through the base policy.
func TestLeaderTargetVerdicts(t *testing.T) {
	f := newFakeEnv()
	s := &LeaderTarget{}
	s.Init(f.env)
	if s.K != f.env.Cfg.F {
		t.Fatalf("default K = %d, want f", s.K)
	}
	rng := rand.New(rand.NewSource(1))
	m := &msg.ViewMsg{V: 1}
	// Frontier 0: the single target is Leader(1) = node 1.
	if v := s.Link(1, 2, m, 0, rng); !v.Drop {
		t.Fatal("traffic from upcoming leader not omitted")
	}
	if v := s.Link(2, 1, m, 0, rng); !v.Drop {
		t.Fatal("traffic to upcoming leader not omitted")
	}
	if v := s.Link(0, 2, m, 0, rng); v.Drop || v.Delay != time.Millisecond {
		t.Fatalf("untargeted traffic altered: %+v", v)
	}
	// Entering view 2 slides the window: target becomes Leader(3) = 3.
	s.Observe(Observation{Event: HookEnterView, Node: 0, View: 2})
	if v := s.Link(1, 2, m, 0, rng); v.Drop {
		t.Fatal("stale target still omitted after the window slid")
	}
	if v := s.Link(3, 2, m, 0, rng); !v.Drop {
		t.Fatal("new target not omitted")
	}
}

// TestGSTStraddleLink checks the boundary: base scheduling before GST,
// the Δ bound after, and the corrupted set scheduled to vanish at GST.
func TestGSTStraddleLink(t *testing.T) {
	f := newFakeEnv()
	s := &GSTStraddle{}
	s.Init(f.env)
	if len(f.ats) != 1 || f.ats[0].t != f.env.GST {
		t.Fatalf("silence not scheduled at GST: %+v", f.ats)
	}
	f.ats[0].fn()
	if len(f.silenced) != 1 || f.silenced[0] != 3 {
		t.Fatalf("silenced = %v, want [3]", f.silenced)
	}
	rng := rand.New(rand.NewSource(1))
	m := &msg.ViewMsg{V: 1}
	if v := s.Link(0, 1, m, 0, rng); v.Delay != time.Millisecond {
		t.Fatalf("pre-GST verdict %+v, want base", v)
	}
	if v := s.Link(0, 1, m, f.env.GST, rng); v.Delay != maxDelay {
		t.Fatalf("post-GST verdict %+v, want the bound", v)
	}
}

// TestComplexitySaturateSpamTick checks the spam loop: each tick
// broadcasts one protocol-legal sync message per corrupted node for the
// view above the observed frontier, then re-arms. Dark nodes (holding a
// leadership slot) cannot send.
func TestComplexitySaturateSpamTick(t *testing.T) {
	f := newFakeEnv()
	s := &ComplexitySaturate{}
	s.Init(f.env)
	if s.Period != f.env.Cfg.Delta {
		t.Fatalf("default period = %v, want Δ", s.Period)
	}
	if len(f.afters) != 1 {
		t.Fatalf("tick not armed: %d afters", len(f.afters))
	}
	// Node 3 leads neither view 4 nor 5: it stays up and spams.
	s.Observe(Observation{Event: HookEnterView, Node: 0, View: 4})
	f.afters[0].fn()
	if len(f.broadcast) != 1 {
		t.Fatalf("broadcasts = %d, want one per corrupted node", len(f.broadcast))
	}
	if v := f.broadcast[0].View(); v != 5 {
		t.Fatalf("spam view = %v, want frontier+1", v)
	}
	if len(f.afters) != 2 {
		t.Fatal("tick did not re-arm")
	}
}

// TestComplexitySaturateLeaderDarkness checks the leadership-slot
// silencing: a corrupted processor goes dark while it holds the current
// or next leader slot, is revived after, and does not spam while dark.
func TestComplexitySaturateLeaderDarkness(t *testing.T) {
	f := newFakeEnv()
	s := &ComplexitySaturate{}
	s.Init(f.env)
	enter := func(v types.View) Observation {
		return Observation{Event: HookEnterView, Node: 0, View: v}
	}
	s.Observe(enter(1)) // leaders of 1, 2 are nodes 1, 2: node 3 stays up
	if len(f.silenced) != 0 {
		t.Fatalf("silenced at frontier 1: %v", f.silenced)
	}
	s.Observe(enter(2)) // leader of 3 is node 3: dark before its slot
	if len(f.silenced) != 1 || f.silenced[0] != 3 {
		t.Fatalf("silenced = %v, want [3]", f.silenced)
	}
	f.afters[0].fn() // spam tick while dark: nothing sent
	if len(f.broadcast) != 0 {
		t.Fatal("dark node spammed")
	}
	s.Observe(enter(3)) // still its slot: stays dark
	if len(f.revived) != 0 {
		t.Fatal("revived during its own leader view")
	}
	s.Observe(enter(4)) // slot passed: revived
	if len(f.revived) != 1 || f.revived[0] != 3 {
		t.Fatalf("revived = %v, want [3]", f.revived)
	}
}

// TestStrategyHookAllocs pins the observation-hook and Link paths at
// zero allocations: they sit inside the simulated send hot path, which
// is pinned at 0 allocs/send.
func TestStrategyHookAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &msg.ViewMsg{V: 3}
	for _, spec := range AttackNames() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			f := newFakeEnv()
			s, err := AttackSpec{Name: spec}.Strategy()
			if err != nil {
				t.Fatal(err)
			}
			s.Init(f.env)
			obs := NetObserver(s)
			var sink network.Verdict
			avg := testing.AllocsPerRun(1000, func() {
				obs.OnSend(0, 1, m, 0, true)
				obs.OnDeliver(0, 1, m, 0)
				sink = s.Link(0, 1, m, 0, rng)
			})
			_ = sink
			if avg != 0 {
				t.Errorf("hook path allocates %.2f per event, want 0", avg)
			}
		})
	}
}

// TestPMObserverForwarding checks the pacemaker-side hook adapter.
func TestPMObserverForwarding(t *testing.T) {
	var got []Observation
	rec := recorderStrategy{got: &got}
	o := PMObserver(rec, 2)
	o.OnEnterView(5, 10)
	o.OnEnterEpoch(1, 11)
	o.OnHeavySync(6, 12)
	if len(got) != 3 {
		t.Fatalf("observations = %d", len(got))
	}
	if got[0].Event != HookEnterView || got[0].Node != 2 || got[0].View != 5 {
		t.Fatalf("enter-view obs = %+v", got[0])
	}
	if got[1].Event != HookEnterEpoch || got[1].Epoch != 1 {
		t.Fatalf("enter-epoch obs = %+v", got[1])
	}
	if got[2].Event != HookHeavySync || got[2].View != 6 || got[2].At != 12 {
		t.Fatalf("heavy-sync obs = %+v", got[2])
	}
}

// recorderStrategy records observations; Link passes through.
type recorderStrategy struct{ got *[]Observation }

func (recorderStrategy) Name() string            { return "recorder" }
func (recorderStrategy) Init(*Env)               {}
func (r recorderStrategy) Observe(o Observation) { *r.got = append(*r.got, o) }
func (recorderStrategy) Link(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) network.Verdict {
	return network.Verdict{}
}
