package adversary

import (
	"fmt"

	"lumiere/internal/hotstuff"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/replica"
	"lumiere/internal/types"
)

// Equivocator is a Byzantine SMR engine: it participates honestly as a
// follower (voting, forwarding) but, as leader, proposes two *different*
// blocks — one to each half of the processors. This is the canonical
// safety attack on chained HotStuff; the 2f+1 vote quorum ensures at most
// one of the conflicting blocks can ever be certified, so honest commit
// logs must never diverge (asserted by the SMR safety tests).
type Equivocator struct {
	inner *hotstuff.Core
	ep    network.Endpoint
	cfg   types.Config
	seq   uint64
}

var _ replica.Engine = (*Equivocator)(nil)

// NewEquivocator wraps a HotStuff core with equivocating leader behavior.
func NewEquivocator(inner *hotstuff.Core, ep network.Endpoint, cfg types.Config) *Equivocator {
	return &Equivocator{inner: inner, ep: ep, cfg: cfg}
}

// EnterView implements replica.Engine.
func (e *Equivocator) EnterView(v types.View) { e.inner.EnterView(v) }

// Handle implements replica.Engine.
func (e *Equivocator) Handle(from types.NodeID, m msg.Message) { e.inner.Handle(from, m) }

// LeaderStart implements replica.Engine: send conflicting proposals to
// the two halves of the cluster instead of one honest proposal.
func (e *Equivocator) LeaderStart(v types.View, _ types.Time) {
	justify := e.inner.HighQC()
	e.seq++
	mk := func(tag string) *msg.Proposal {
		block := &hotstuff.Block{
			View:   v,
			Parent: justify.BlockHash,
			Cmds: []hotstuff.Command{{
				ID:      uint64(e.ep.ID())<<40 | e.seq,
				Payload: []byte(fmt.Sprintf("EQUIVOCATE %s %d", tag, e.seq)),
			}},
		}
		return &msg.Proposal{
			V:       v,
			Leader:  e.ep.ID(),
			Justify: justify,
			Block:   block.Encode(),
			Hash:    block.HashOf(),
		}
	}
	a, b := mk("left"), mk("right")
	for i := 0; i < e.cfg.N; i++ {
		to := types.NodeID(i)
		if i < e.cfg.N/2 {
			e.ep.Send(to, a)
		} else {
			e.ep.Send(to, b)
		}
	}
}
