package trace

import (
	"strings"
	"testing"

	"lumiere/internal/types"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, 0, EnterView, 1, "")
	tr.Emitf(1, 0, EnterView, 1, "x %d", 3)
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
}

func TestEmitAndOrder(t *testing.T) {
	tr := New(0)
	tr.Emit(5, 1, QCSeen, 2, "b")
	tr.Emit(3, 0, EnterView, 1, "a")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].At != 3 || evs[1].At != 5 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestLimit(t *testing.T) {
	tr := New(2)
	for i := 0; i < 5; i++ {
		tr.Emit(types.Time(i), 0, EnterView, types.View(i), "")
	}
	if len(tr.Events()) != 2 {
		t.Fatalf("limit not enforced: %d", len(tr.Events()))
	}
}

func TestFilterAndFirst(t *testing.T) {
	tr := New(0)
	tr.Emit(1, 0, EnterView, 1, "")
	tr.Emit(2, 1, EnterView, 2, "")
	tr.Emit(3, 0, QCProduced, 2, "")
	if got := tr.Filter(0, ""); len(got) != 2 {
		t.Fatalf("filter node: %d", len(got))
	}
	if got := tr.Filter(types.NoNode, EnterView); len(got) != 2 {
		t.Fatalf("filter kind: %d", len(got))
	}
	ev, ok := tr.First(QCProduced, 2)
	if !ok || ev.At != 3 {
		t.Fatalf("first = %+v %v", ev, ok)
	}
	if _, ok := tr.First(QCProduced, 9); ok {
		t.Fatal("found nonexistent")
	}
}

func TestRender(t *testing.T) {
	tr := New(0)
	tr.Emitf(1, 2, Bump, 3, "to %d", 7)
	out := tr.Render()
	if !strings.Contains(out, "bump") || !strings.Contains(out, "to 7") {
		t.Fatalf("render = %q", out)
	}
	csv := tr.RenderCSV()
	if !strings.HasPrefix(csv, "time_ns,node,kind,view,note\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "1,2,bump,3,to 7") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestCSVCommaEscaping(t *testing.T) {
	tr := New(0)
	tr.Emit(1, 0, EnterView, 1, "a,b")
	if !strings.Contains(tr.RenderCSV(), "a;b") {
		t.Fatal("comma not sanitized")
	}
}
