// Package trace records protocol-level event timelines, used to
// regenerate Figure 1 (the LP22 stall scenario) and its Lumiere
// counterpart, and for debugging executions.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"lumiere/internal/types"
)

// Kind classifies trace events.
type Kind string

// Event kinds emitted by the protocol implementations.
const (
	EnterView  Kind = "enter_view"
	EnterEpoch Kind = "enter_epoch"
	PauseClock Kind = "pause"
	Unpause    Kind = "unpause"
	Bump       Kind = "bump"
	SendView   Kind = "send_view"
	SendEpoch  Kind = "send_epochview"
	FormVC     Kind = "form_vc"
	SeeEC      Kind = "see_ec"
	SeeTC      Kind = "see_tc"
	QCProduced Kind = "qc_produced"
	QCSeen     Kind = "qc_seen"
	Success    Kind = "success"
	Propose    Kind = "propose"
	Commit     Kind = "commit"
)

// Event is one timeline entry.
type Event struct {
	At   types.Time
	Node types.NodeID
	Kind Kind
	View types.View
	Note string
}

// Tracer accumulates events. A nil *Tracer is a valid no-op sink, so
// protocol code can emit unconditionally.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// New creates a Tracer retaining at most limit events (0 = unlimited).
func New(limit int) *Tracer { return &Tracer{limit: limit} }

// Emit records an event. Safe on a nil receiver.
func (t *Tracer) Emit(at types.Time, node types.NodeID, kind Kind, view types.View, note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, Event{At: at, Node: node, Kind: kind, View: view, Note: note})
}

// Emitf records an event with a formatted note. Safe on a nil receiver.
func (t *Tracer) Emitf(at types.Time, node types.NodeID, kind Kind, view types.View, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(at, node, kind, view, fmt.Sprintf(format, args...))
}

// Events returns a time-ordered copy of the log.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]Event(nil), t.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Filter returns the events matching all non-zero criteria.
func (t *Tracer) Filter(node types.NodeID, kind Kind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if node != types.NoNode && e.Node != node {
			continue
		}
		if kind != "" && e.Kind != kind {
			continue
		}
		out = append(out, e)
	}
	return out
}

// First returns the earliest event of the given kind for a view, if any.
func (t *Tracer) First(kind Kind, view types.View) (Event, bool) {
	for _, e := range t.Events() {
		if e.Kind == kind && e.View == view {
			return e, true
		}
	}
	return Event{}, false
}

// Render formats the timeline as text, one event per line.
func (t *Tracer) Render() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%12v  %-4v %-14s %-6v %s\n", e.At, e.Node, e.Kind, e.View, e.Note)
	}
	return b.String()
}

// RenderCSV formats the timeline as CSV (time_ns,node,kind,view,note).
func (t *Tracer) RenderCSV() string {
	var b strings.Builder
	b.WriteString("time_ns,node,kind,view,note\n")
	for _, e := range t.Events() {
		note := strings.ReplaceAll(e.Note, ",", ";")
		fmt.Fprintf(&b, "%d,%d,%s,%d,%s\n", int64(e.At), int32(e.Node), e.Kind, int64(e.View), note)
	}
	return b.String()
}
