package statemachine

import "testing"

// FuzzKVApply: arbitrary command bytes must never panic the KV store, and
// errors must leave state readable.
func FuzzKVApply(f *testing.F) {
	f.Add([]byte("SET a 1"))
	f.Add([]byte("GET a"))
	f.Add([]byte("DEL a"))
	f.Add([]byte(""))
	f.Add([]byte("SET"))
	f.Add([]byte{0xff, 0x00, 0xfe})
	f.Fuzz(func(t *testing.T, cmd []byte) {
		kv := NewKV()
		kv.Apply([]byte("SET seed value"))
		_, _ = kv.Apply(cmd)
		_ = kv.Summary()
	})
}

// FuzzBankApply: arbitrary commands must never panic the bank or mint or
// destroy money outside OPEN.
func FuzzBankApply(f *testing.F) {
	f.Add([]byte("OPEN a 10"))
	f.Add([]byte("XFER a b 5"))
	f.Add([]byte("XFER a a 99999999999999999999"))
	f.Add([]byte("OPEN a -3"))
	f.Add([]byte("BAL"))
	f.Fuzz(func(t *testing.T, cmd []byte) {
		b := NewBank()
		b.Apply([]byte("OPEN a 10"))
		b.Apply([]byte("OPEN b 10"))
		before := b.TotalBalance()
		_, err := b.Apply(cmd)
		after := b.TotalBalance()
		// Only a successful OPEN may change the total.
		isOpen := err == nil && len(cmd) > 4 && string(cmd[:4]) == "OPEN"
		if !isOpen && after != before {
			t.Fatalf("command %q changed total %d -> %d (err=%v)", cmd, before, after, err)
		}
		if isOpen && after < before {
			t.Fatalf("OPEN decreased total: %q", cmd)
		}
	})
}
