// Package statemachine provides the replicated state machines executed by
// the SMR layer in examples and tests: a key-value store and a bank whose
// conservation-of-money invariant makes consistency violations loudly
// detectable.
package statemachine

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// StateMachine is a deterministic command executor. Commands and results
// are opaque byte strings; determinism across replicas is the caller's
// obligation (commands must be self-contained).
type StateMachine interface {
	// Apply executes one committed command and returns its result.
	Apply(cmd []byte) ([]byte, error)
	// Summary returns a human-readable digest of the current state,
	// identical across replicas that applied the same command
	// sequence.
	Summary() string
}

// Errors returned by the bundled state machines.
var (
	ErrBadCommand        = errors.New("statemachine: malformed command")
	ErrUnknownAccount    = errors.New("statemachine: unknown account")
	ErrInsufficientFunds = errors.New("statemachine: insufficient funds")
	ErrAccountExists     = errors.New("statemachine: account already open")
	ErrKeyNotFound       = errors.New("statemachine: key not found")
)

// ---------------------------------------------------------------------------
// Key-value store
// ---------------------------------------------------------------------------

// KV is a string key-value store. Commands:
//
//	SET <key> <value>
//	GET <key>
//	DEL <key>
type KV struct {
	mu   sync.Mutex
	data map[string]string
}

var _ StateMachine = (*KV)(nil)

// NewKV creates an empty store.
func NewKV() *KV { return &KV{data: make(map[string]string)} }

// Apply implements StateMachine.
func (kv *KV) Apply(cmd []byte) ([]byte, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	parts := strings.SplitN(string(cmd), " ", 3)
	switch {
	case len(parts) == 3 && parts[0] == "SET":
		kv.data[parts[1]] = parts[2]
		return []byte("OK"), nil
	case len(parts) == 2 && parts[0] == "GET":
		v, ok := kv.data[parts[1]]
		if !ok {
			// A missing key must be distinguishable from `SET k ""`:
			// closed-loop clients assert read-your-writes on this.
			return nil, fmt.Errorf("%w: %s", ErrKeyNotFound, parts[1])
		}
		return []byte(v), nil
	case len(parts) == 2 && parts[0] == "DEL":
		delete(kv.data, parts[1])
		return []byte("OK"), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadCommand, cmd)
	}
}

// Len returns the number of keys.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.data)
}

// Get reads a key directly (for assertions).
func (kv *KV) Get(key string) (string, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.data[key]
	return v, ok
}

// Summary implements StateMachine.
func (kv *KV) Summary() string {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, kv.data[k])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------------

// Bank is an account ledger. Commands:
//
//	OPEN <account> <balance>
//	XFER <from> <to> <amount>
//	BAL <account>
//
// Total money is conserved by XFER; tests use TotalBalance as a
// consistency canary.
type Bank struct {
	mu       sync.Mutex
	accounts map[string]int64
}

var _ StateMachine = (*Bank)(nil)

// NewBank creates an empty bank.
func NewBank() *Bank { return &Bank{accounts: make(map[string]int64)} }

// Apply implements StateMachine.
func (b *Bank) Apply(cmd []byte) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	parts := strings.Fields(string(cmd))
	switch {
	case len(parts) == 3 && parts[0] == "OPEN":
		amt, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || amt < 0 {
			return nil, fmt.Errorf("%w: %q", ErrBadCommand, cmd)
		}
		if _, ok := b.accounts[parts[1]]; ok {
			// A retried OPEN (e.g. after a dropped response) must not
			// mint money: the conservation canary counts successful
			// OPENs, so re-OPEN is an error, not an increment.
			return nil, fmt.Errorf("%w: %s", ErrAccountExists, parts[1])
		}
		b.accounts[parts[1]] = amt
		return []byte("OK"), nil
	case len(parts) == 4 && parts[0] == "XFER":
		amt, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil || amt < 0 {
			return nil, fmt.Errorf("%w: %q", ErrBadCommand, cmd)
		}
		from, to := parts[1], parts[2]
		if _, ok := b.accounts[from]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownAccount, from)
		}
		if _, ok := b.accounts[to]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownAccount, to)
		}
		if b.accounts[from] < amt {
			return nil, fmt.Errorf("%w: %s has %d, needs %d", ErrInsufficientFunds, from, b.accounts[from], amt)
		}
		b.accounts[from] -= amt
		b.accounts[to] += amt
		return []byte("OK"), nil
	case len(parts) == 2 && parts[0] == "BAL":
		bal, ok := b.accounts[parts[1]]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownAccount, parts[1])
		}
		return []byte(strconv.FormatInt(bal, 10)), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrBadCommand, cmd)
	}
}

// TotalBalance sums all accounts (conserved by XFER).
func (b *Bank) TotalBalance() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total int64
	for _, v := range b.accounts {
		total += v
	}
	return total
}

// Balance reads one account directly (for assertions).
func (b *Bank) Balance(account string) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.accounts[account]
	return v, ok
}

// Summary implements StateMachine.
func (b *Bank) Summary() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.accounts))
	for k := range b.accounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d;", k, b.accounts[k])
	}
	return sb.String()
}

// Counter is a trivial state machine counting applied commands; useful
// for throughput measurements.
type Counter struct {
	mu sync.Mutex
	n  int64
}

var _ StateMachine = (*Counter)(nil)

// NewCounter creates a Counter.
func NewCounter() *Counter { return &Counter{} }

// Apply implements StateMachine.
func (c *Counter) Apply([]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return []byte(strconv.FormatInt(c.n, 10)), nil
}

// Count returns the number of applied commands.
func (c *Counter) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Summary implements StateMachine.
func (c *Counter) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return strconv.FormatInt(c.n, 10)
}
