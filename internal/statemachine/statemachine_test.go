package statemachine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKVBasics(t *testing.T) {
	kv := NewKV()
	mustApply(t, kv, "SET a 1", "OK")
	mustApply(t, kv, "GET a", "1")
	mustApply(t, kv, "SET a hello world", "OK") // value may contain spaces
	mustApply(t, kv, "GET a", "hello world")
	mustApply(t, kv, "DEL a", "OK")
	if _, err := kv.Apply([]byte("GET a")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("GET of deleted key: err = %v, want ErrKeyNotFound", err)
	}
	if _, err := kv.Apply([]byte("NOPE x")); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("bad command error = %v", err)
	}
	kv.Apply([]byte("SET k v"))
	if kv.Len() != 1 {
		t.Fatalf("len = %d", kv.Len())
	}
	if v, ok := kv.Get("k"); !ok || v != "v" {
		t.Fatal("Get failed")
	}
}

func mustApply(t *testing.T, sm StateMachine, cmd, want string) {
	t.Helper()
	got, err := sm.Apply([]byte(cmd))
	if err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	if string(got) != want {
		t.Fatalf("%s = %q, want %q", cmd, got, want)
	}
}

func TestKVSummaryDeterministic(t *testing.T) {
	a, b := NewKV(), NewKV()
	cmds := []string{"SET z 9", "SET a 1", "SET m 5"}
	for _, c := range cmds {
		a.Apply([]byte(c))
	}
	for _, c := range cmds {
		b.Apply([]byte(c))
	}
	if a.Summary() != b.Summary() {
		t.Fatal("summaries differ for identical histories")
	}
	if a.Summary() != "a=1;m=5;z=9;" {
		t.Fatalf("summary = %q", a.Summary())
	}
}

func TestBankOpenXferBal(t *testing.T) {
	b := NewBank()
	mustApply(t, b, "OPEN alice 100", "OK")
	mustApply(t, b, "OPEN bob 50", "OK")
	mustApply(t, b, "XFER alice bob 30", "OK")
	mustApply(t, b, "BAL alice", "70")
	mustApply(t, b, "BAL bob", "80")
	if b.TotalBalance() != 150 {
		t.Fatalf("total = %d", b.TotalBalance())
	}
}

func TestBankErrors(t *testing.T) {
	b := NewBank()
	b.Apply([]byte("OPEN a 10"))
	b.Apply([]byte("OPEN c 0"))
	cases := []struct {
		cmd string
		err error
	}{
		{"XFER a missing 1", ErrUnknownAccount},
		{"XFER missing a 1", ErrUnknownAccount},
		{"XFER a c 100", ErrInsufficientFunds},
		{"XFER a c -5", ErrBadCommand},
		{"OPEN a -1", ErrBadCommand},
		{"BAL missing", ErrUnknownAccount},
		{"garbage", ErrBadCommand},
	}
	for _, c := range cases {
		if _, err := b.Apply([]byte(c.cmd)); !errors.Is(err, c.err) {
			t.Errorf("%q: err = %v, want %v", c.cmd, err, c.err)
		}
	}
	if b.TotalBalance() != 10 {
		t.Fatalf("failed commands changed the total: %d", b.TotalBalance())
	}
}

// TestBankConservationQuick: random XFER sequences never change the total
// balance, whether they succeed or fail.
func TestBankConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBank()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5; i++ {
			b.Apply([]byte(fmt.Sprintf("OPEN a%d 100", i)))
		}
		for i := 0; i < 200; i++ {
			cmd := fmt.Sprintf("XFER a%d a%d %d", rng.Intn(6), rng.Intn(6), rng.Intn(150))
			b.Apply([]byte(cmd))
		}
		return b.TotalBalance() == 500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 5; i++ {
		if _, err := c.Apply(nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.Count() != 5 || c.Summary() != "5" {
		t.Fatalf("count = %d summary = %s", c.Count(), c.Summary())
	}
}

// TestKVGetMissingDistinctFromEmpty: regression for the read-your-writes
// bug where GET of a missing key returned empty bytes indistinguishable
// from `SET k ""`. A closed-loop client must be able to tell the two
// apart.
func TestKVGetMissingDistinctFromEmpty(t *testing.T) {
	kv := NewKV()
	if _, err := kv.Apply([]byte("GET ghost")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("GET of never-set key: err = %v, want ErrKeyNotFound", err)
	}
	mustApply(t, kv, "SET ghost ", "OK") // explicit empty value
	got, err := kv.Apply([]byte("GET ghost"))
	if err != nil || string(got) != "" {
		t.Fatalf("GET of empty-valued key = (%q, %v), want (\"\", nil)", got, err)
	}
}

// TestBankReopenIsRejected: regression for the money-minting bug where a
// retried OPEN (client resends after a dropped response) silently added
// to the existing balance instead of failing.
func TestBankReopenIsRejected(t *testing.T) {
	b := NewBank()
	mustApply(t, b, "OPEN alice 100", "OK")
	if _, err := b.Apply([]byte("OPEN alice 100")); !errors.Is(err, ErrAccountExists) {
		t.Fatalf("retried OPEN: err = %v, want ErrAccountExists", err)
	}
	if v, _ := b.Balance("alice"); v != 100 {
		t.Fatalf("retried OPEN changed balance: %d", v)
	}
	if b.TotalBalance() != 100 {
		t.Fatalf("retried OPEN minted money: total = %d", b.TotalBalance())
	}
}

func TestBankBalanceAccessor(t *testing.T) {
	b := NewBank()
	b.Apply([]byte("OPEN x 7"))
	if v, ok := b.Balance("x"); !ok || v != 7 {
		t.Fatal("Balance accessor")
	}
	if _, ok := b.Balance("nope"); ok {
		t.Fatal("Balance found missing account")
	}
}
