package metrics

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/types"
)

func fill(c *Collector) {
	// Honest sends at t = 1..10 (one per ns), plus Byzantine noise.
	for i := 1; i <= 10; i++ {
		c.OnSend(0, 1, &msg.ViewMsg{V: types.View(i)}, types.Time(i), true)
	}
	c.OnSend(2, 1, &msg.ViewMsg{V: 1}, 5, false)
	// Decisions at t = 3 (v1, leader 0), t = 7 (v2, leader 1, byz),
	// t = 9 (v3, leader 0).
	c.RecordDecision(1, 0, 3)
	c.RecordDecision(2, 9, 7) // leader 9 is Byzantine in this test
	c.RecordDecision(3, 0, 9)
	// Command commits at t = 4 and t = 8.
	c.RecordCommit(4, 3)
	c.RecordCommit(8, 5)
}

func newTestCollector() *Collector {
	return NewCollector(func(id types.NodeID) bool { return id != 9 })
}

func TestCollectorCounts(t *testing.T) {
	c := newTestCollector()
	fill(c)
	if c.HonestSends() != 10 {
		t.Fatalf("honest = %d", c.HonestSends())
	}
	if c.ByzantineSends() != 1 {
		t.Fatalf("byz = %d", c.ByzantineSends())
	}
	if c.KindCount(msg.KindView) != 10 {
		t.Fatalf("kind count = %d", c.KindCount(msg.KindView))
	}
}

func TestDecisionFiltering(t *testing.T) {
	c := newTestCollector()
	fill(c)
	decs := c.Decisions()
	if len(decs) != 2 {
		t.Fatalf("decisions = %d (byzantine leader must not count)", len(decs))
	}
	if decs[0].At != 3 || decs[1].At != 9 {
		t.Fatalf("decisions = %+v", decs)
	}
}

func TestWindowAfter(t *testing.T) {
	c := newTestCollector()
	fill(c)
	msgs, lat, ok := c.WindowAfter(0)
	if !ok || msgs != 3 || lat != 3 {
		t.Fatalf("window = (%d, %v, %v)", msgs, lat, ok)
	}
	msgs, lat, ok = c.WindowAfter(3)
	if !ok || msgs != 6 || lat != 6 {
		t.Fatalf("window after 3 = (%d, %v, %v)", msgs, lat, ok)
	}
	if _, _, ok := c.WindowAfter(100); ok {
		t.Fatal("window past last decision should fail")
	}
}

func TestIntervalsAndStats(t *testing.T) {
	c := newTestCollector()
	fill(c)
	ivs := c.Intervals(0, 0)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	// (0,3]: 3 msgs; (3,9]: 6 msgs.
	if ivs[0].Msgs != 3 || ivs[1].Msgs != 6 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[1].Gap != 6 {
		t.Fatalf("gap = %v", ivs[1].Gap)
	}
	st := c.Stats(0, 0)
	if st.Count != 2 || st.MaxMsgs != 6 || st.MaxGap != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanMsgs != 4.5 {
		t.Fatalf("mean msgs = %v", st.MeanMsgs)
	}
	// Warmup skip drops the first decision's window.
	st = c.Stats(0, 1)
	if st.Count != 1 || st.MaxMsgs != 6 {
		t.Fatalf("warmup stats = %+v", st)
	}
}

func TestHeavySyncViews(t *testing.T) {
	c := newTestCollector()
	c.OnSend(0, 1, &msg.EpochViewMsg{V: 0}, 1, true)
	c.OnSend(1, 2, &msg.EpochViewMsg{V: 0}, 2, true)
	c.OnSend(0, 1, &msg.EpochViewMsg{V: 40}, 5, true)
	c.OnSend(3, 1, &msg.EpochViewMsg{V: 80}, 9, false) // byzantine: ignored
	got := c.HeavySyncViews(0)
	if len(got) != 2 || got[0] != 0 || got[1] != 40 {
		t.Fatalf("heavy = %v", got)
	}
	if got := c.HeavySyncViews(2); len(got) != 1 || got[0] != 40 {
		t.Fatalf("heavy after 2 = %v", got)
	}
}

// TestDecisionsWithoutSends is the regression test for the
// zero-honest-traffic window query: decisions with no observed honest
// sends must yield empty windows, not a panic.
func TestDecisionsWithoutSends(t *testing.T) {
	c := NewCollector(nil)
	c.RecordDecision(1, 0, 5)
	msgs, lat, ok := c.WindowAfter(0)
	if !ok || msgs != 0 || lat != 5 {
		t.Fatalf("window = (%d, %v, %v), want (0, 5, true)", msgs, lat, ok)
	}
	if ivs := c.Intervals(0, 0); len(ivs) != 1 || ivs[0].Msgs != 0 {
		t.Fatalf("intervals = %+v", ivs)
	}
	if st := c.Stats(0, 0); st.Count != 1 || st.MaxMsgs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatsEmpty(t *testing.T) {
	c := newTestCollector()
	st := c.Stats(0, 0)
	if st.Count != 0 || st.MaxMsgs != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestNilHonestFunc(t *testing.T) {
	c := NewCollector(nil)
	c.RecordDecision(1, 5, 1)
	if len(c.Decisions()) != 1 {
		t.Fatal("nil honest func should accept all leaders")
	}
	_ = c.String()
	_ = time.Second
}

func TestSendLogOptIn(t *testing.T) {
	c := newTestCollector()
	fill(c)
	if got := c.Sends(); got != nil {
		t.Fatalf("default collector retained a send log: %d records", len(got))
	}
	logged := NewCollector(func(id types.NodeID) bool { return id != 9 }, WithSendLog())
	fill(logged)
	sends := logged.Sends()
	if len(sends) != 10 {
		t.Fatalf("WithSendLog kept %d records, want 10", len(sends))
	}
	if sends[0].At != 1 || sends[0].Kind != msg.KindView {
		t.Fatalf("first record = %+v", sends[0])
	}
	// The streaming aggregates must not depend on the log.
	a, _, _ := c.WindowAfter(0)
	b, _, _ := logged.WindowAfter(0)
	if a != b {
		t.Fatalf("window differs with/without log: %d vs %d", a, b)
	}
}

// TestOutOfOrderSends pins exactness when OnSend observes timestamps out
// of order (possible under the TCP runtime): window counts must match a
// sorted log.
func TestOutOfOrderSends(t *testing.T) {
	c := newTestCollector()
	for _, at := range []types.Time{5, 2, 8, 2, 5, 1} {
		c.OnSend(0, 1, &msg.ViewMsg{V: 1}, at, true)
	}
	c.RecordDecision(1, 0, 6)
	msgs, _, ok := c.WindowAfter(1) // sends in (1, 6]: at 2, 2, 5, 5
	if !ok || msgs != 4 {
		t.Fatalf("window = (%d, %v)", msgs, ok)
	}
	// Appends after a query must be folded into the next query.
	c.OnSend(0, 1, &msg.ViewMsg{V: 1}, 3, true)
	if msgs, _, _ = c.WindowAfter(1); msgs != 5 {
		t.Fatalf("window after late append = %d, want 5", msgs)
	}
}

func TestDecisionsOutOfOrderSorted(t *testing.T) {
	c := newTestCollector()
	c.RecordDecision(2, 0, 9)
	c.RecordDecision(1, 0, 3)
	c.RecordDecision(3, 0, 12)
	decs := c.Decisions()
	if len(decs) != 3 || decs[0].At != 3 || decs[1].At != 9 || decs[2].At != 12 {
		t.Fatalf("decisions = %+v", decs)
	}
	if d, ok := c.FirstDecisionAfter(4); !ok || d.At != 9 {
		t.Fatalf("first after 4 = %+v, %v", d, ok)
	}
	if c.DecisionCount() != 3 {
		t.Fatalf("count = %d", c.DecisionCount())
	}
}

// TestCollectorOnSendAllocs pins the streaming hot path: repeated sends
// at a warm collector must not allocate per send (the per-timestamp
// series grows only on distinct instants, amortized).
func TestCollectorOnSendAllocs(t *testing.T) {
	c := newTestCollector()
	m := &msg.ViewMsg{V: 1}
	at := types.Time(0)
	for i := 0; i < 100; i++ {
		at++
		c.OnSend(0, 1, m, at, true)
	}
	avg := testing.AllocsPerRun(1000, func() {
		at++
		c.OnSend(0, 1, m, at, true)
	})
	if avg > 0.1 {
		t.Errorf("OnSend allocates %.3f per send, want ~0", avg)
	}
}

func TestKappaAccounting(t *testing.T) {
	c := newTestCollector()
	c.OnSend(0, 1, &msg.ViewMsg{V: 1}, 1, true)
	c.OnSend(0, 1, &msg.Proposal{V: 1}, 2, true)
	c.OnSend(2, 1, &msg.QC{V: 1}, 3, false) // byzantine: not charged
	if got := c.KappaBytes(); got != 3 {
		t.Fatalf("kappa = %d, want 1 (view) + 2 (proposal)", got)
	}
}

func TestWordsAccounting(t *testing.T) {
	c := newTestCollector()
	c.OnSend(0, 1, &msg.ViewMsg{V: 1}, 1, true)  // 2 words
	c.OnSend(0, 1, &msg.QC{V: 1}, 2, true)       // 3 words
	c.OnSend(2, 1, &msg.QC{V: 1}, 3, false)      // byzantine: not charged
	c.OnSend(0, 1, &msg.Proposal{V: 2}, 4, true) // no justify: 2 words
	if got := c.WordsTotal(); got != 7 {
		t.Fatalf("words = %d, want 2+3+2", got)
	}
	if got := c.WordsBetween(1, 4); got != 5 {
		t.Fatalf("words in (1,4] = %d, want 5", got)
	}
	c.RecordDecision(1, 0, 3)
	w, lat, ok := c.WordsWindowAfter(0)
	if !ok || w != 5 || lat != 3 {
		t.Fatalf("words window = (%d, %v, %v), want (5, 3, true)", w, lat, ok)
	}
}

func TestWordsByEpoch(t *testing.T) {
	c := NewCollector(nil, WithEpochWords(2))        // epochs of 2 views
	c.OnSend(0, 1, &msg.ViewMsg{V: 0}, 1, true)      // epoch 0: 2 words
	c.OnSend(0, 1, &msg.ViewMsg{V: 1}, 2, true)      // epoch 0: 2 words
	c.OnSend(0, 1, &msg.EpochViewMsg{V: 4}, 3, true) // epoch 2: 2 words
	c.OnSend(2, 1, &msg.ViewMsg{V: 4}, 4, false)     // byzantine: not charged
	got := c.WordsByEpoch()
	want := []int64{4, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("epochs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("epochs = %v, want %v", got, want)
		}
	}
	if NewCollector(nil).WordsByEpoch() != nil {
		t.Fatal("epoch words must be nil when not enabled")
	}
}

func TestIntervalWords(t *testing.T) {
	c := newTestCollector()
	fill(c) // 10 ViewMsgs (2 words each) at t=1..10; decisions at 3, 9
	ivs := c.Intervals(0, 0)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	if ivs[0].Words != 6 || ivs[1].Words != 12 {
		t.Fatalf("interval words = %d, %d; want 6, 12", ivs[0].Words, ivs[1].Words)
	}
	s := c.Stats(0, 0)
	if s.TotalWords != 18 || s.MaxWords != 12 || s.MeanWords != 9 {
		t.Fatalf("stats words = %+v", s)
	}
}

// TestWordsAllocs extends the hot-path gate to the words and epoch-words
// accounting: a warm collector with the epoch series enabled must not
// allocate per send.
func TestWordsAllocs(t *testing.T) {
	c := NewCollector(nil, WithEpochWords(10))
	m := &msg.ViewMsg{V: 1}
	at := types.Time(0)
	for i := 0; i < 100; i++ {
		at++
		c.OnSend(0, 1, m, at, true)
	}
	avg := testing.AllocsPerRun(1000, func() {
		at++
		c.OnSend(0, 1, m, at, true)
	})
	if avg > 0.1 {
		t.Errorf("OnSend with epoch words allocates %.3f per send, want ~0", avg)
	}
}

// querySurface renders every query the experiment drivers use, so the
// Reset and Snapshot tests can compare collectors wholesale.
func querySurface(c *Collector) string {
	m, lat, ok := c.WindowAfter(2)
	w, _, _ := c.WordsWindowAfter(2)
	return fmt.Sprint(
		c.HonestSends(), c.ByzantineSends(), c.KappaBytes(), c.WordsTotal(),
		c.KindCount(msg.KindView), c.DecisionCount(), c.Decisions(),
		c.WordsBetween(0, 100), c.WordsByEpoch(), c.HeavySyncViews(0),
		c.Intervals(0, 0), c.Stats(0, 1), m, lat, ok, w, c.Sends(),
		c.CommitCount(), c.CommitLatencyStats(0),
	)
}

// TestCollectorResetEquivalence pins the arena contract: a reset
// collector must answer every query exactly as a fresh one, including
// when options change across the reset.
func TestCollectorResetEquivalence(t *testing.T) {
	dirty := NewCollector(nil, WithSendLog(), WithEpochWords(2))
	fill(dirty)
	honest := func(id types.NodeID) bool { return id != 9 }
	dirty.Reset(honest, WithEpochWords(3))
	fresh := NewCollector(honest, WithEpochWords(3))
	if got, want := querySurface(dirty), querySurface(fresh); got != want {
		t.Fatalf("empty reset != fresh:\nreset: %s\nfresh: %s", got, want)
	}
	fill(dirty)
	fill(fresh)
	if got, want := querySurface(dirty), querySurface(fresh); got != want {
		t.Fatalf("refilled reset != fresh:\nreset: %s\nfresh: %s", got, want)
	}
	// The send log must be off after a reset without WithSendLog.
	if dirty.Sends() != nil {
		t.Fatal("send log survived reset")
	}
}

// TestCollectorSnapshotIndependence pins Snapshot: identical answers at
// the moment of the call, unaffected by later mutation or reset of the
// original.
func TestCollectorSnapshotIndependence(t *testing.T) {
	c := NewCollector(func(id types.NodeID) bool { return id != 9 }, WithEpochWords(2))
	fill(c)
	snap := c.Snapshot()
	want := querySurface(c)
	if got := querySurface(snap); got != want {
		t.Fatalf("snapshot != original:\nsnap: %s\norig: %s", got, want)
	}
	// Mutate and reset the original; the snapshot must not move.
	c.OnSend(0, 1, &msg.ViewMsg{V: 99}, 50, true)
	c.RecordDecision(99, 0, 60)
	if got := querySurface(snap); got != want {
		t.Fatalf("snapshot moved after original mutated:\nsnap: %s\nwant: %s", got, want)
	}
	c.Reset(nil)
	if got := querySurface(snap); got != want {
		t.Fatalf("snapshot moved after original reset:\nsnap: %s\nwant: %s", got, want)
	}
}

// TestCollectorSnapshotWithSendLog verifies the opt-in send log survives
// into snapshots as an independent copy.
func TestCollectorSnapshotWithSendLog(t *testing.T) {
	c := NewCollector(nil, WithSendLog())
	fill(c)
	snap := c.Snapshot()
	orig := c.Sends()
	got := snap.Sends()
	if len(got) != len(orig) {
		t.Fatalf("snapshot log has %d records, want %d", len(got), len(orig))
	}
	c.Reset(nil, WithSendLog())
	if len(snap.Sends()) != len(orig) {
		t.Fatal("snapshot log shrank after original reset")
	}
}

// TestSparseCollectorCapsPoints: WithSparse bounds the send series while
// keeping every total exact; full-range window queries still see all
// traffic, and snapshots carry the cap.
func TestSparseCollectorCapsPoints(t *testing.T) {
	sparse := NewCollector(nil, WithSparse(16), WithEpochWords(10))
	exact := NewCollector(nil, WithEpochWords(10))
	m := &msg.ViewMsg{V: 3}
	for i := 0; i < 1000; i++ {
		at := types.Time(int64(i) * 1000)
		sparse.OnSend(0, 1, m, at, true)
		exact.OnSend(0, 1, m, at, true)
	}
	if got := len(sparse.points); got >= 32 {
		t.Fatalf("sparse series not capped: %d points", got)
	}
	if sparse.HonestSends() != exact.HonestSends() ||
		sparse.WordsTotal() != exact.WordsTotal() ||
		sparse.KappaBytes() != exact.KappaBytes() {
		t.Fatal("sparse totals drifted from exact collector")
	}
	we := exact.WordsByEpoch()
	ws := sparse.WordsByEpoch()
	if len(we) != len(ws) || we[0] != ws[0] {
		t.Fatal("epoch words drifted under sparse mode")
	}
	end := types.Time(int64(1000) * 1000)
	if sparse.WordsBetween(types.Time(-1), end) != exact.WordsBetween(types.Time(-1), end) {
		t.Fatal("full-range window lost sends under sparse mode")
	}
	snap := sparse.Snapshot()
	if snap.maxPoints != sparse.maxPoints {
		t.Fatal("snapshot dropped sparse cap")
	}
	// Coalescing moves sends later, never earlier: a prefix window can
	// only undercount.
	mid := types.Time(int64(500) * 1000)
	if sparse.WordsBetween(types.Time(-1), mid) > exact.WordsBetween(types.Time(-1), mid) {
		t.Fatal("sparse prefix window overcounts")
	}
	sparse.Reset(nil)
	if sparse.maxPoints != 0 {
		t.Fatal("Reset kept sparse cap")
	}
}

// TestCommitLatencyStats: the commit series answers count, throughput and
// latency percentiles over a warmup-excluded window, and tolerates
// out-of-order recording (the TCP runtime commits from goroutines).
func TestCommitLatencyStats(t *testing.T) {
	c := NewCollector(nil)
	// 100 commits, one per ms, latency i µs — recorded in reverse to
	// exercise the sort path.
	for i := 100; i >= 1; i-- {
		c.RecordCommit(types.Time(int64(i)*1_000_000), time.Duration(i)*time.Microsecond)
	}
	if c.CommitCount() != 100 {
		t.Fatalf("count = %d", c.CommitCount())
	}
	s := c.CommitLatencyStats(0)
	if s.Count != 100 || s.Max != 100*time.Microsecond {
		t.Fatalf("stats = %+v", s)
	}
	if s.P50 != 51*time.Microsecond || s.P99 != 100*time.Microsecond {
		t.Fatalf("p50 = %v p99 = %v", s.P50, s.P99)
	}
	if s.Mean != 50500*time.Nanosecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Commits span (0, 100ms]: 100 commands in 0.1s = 1000/s.
	if s.PerSec < 999 || s.PerSec > 1001 {
		t.Fatalf("per-sec = %v", s.PerSec)
	}
	// Warmup exclusion: only commits strictly after 50ms count.
	s = c.CommitLatencyStats(50_000_000)
	if s.Count != 50 || s.P50 != 76*time.Microsecond {
		t.Fatalf("windowed stats = %+v", s)
	}
	if empty := c.CommitLatencyStats(1_000_000_000); empty.Count != 0 || empty.PerSec != 0 {
		t.Fatalf("empty window = %+v", empty)
	}
}
