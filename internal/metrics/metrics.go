// Package metrics implements the complexity measures of §2 of the paper:
// communication complexity W_T (messages sent by correct processors
// between T and the next honest-leader consensus decision t*_T), worst-
// case and eventual worst-case latency, and the honest clock gaps hg_i of
// Definition 3.1.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// SendRecord is one point-to-point transmission by an honest processor.
type SendRecord struct {
	At   types.Time
	From types.NodeID
	Kind msg.Kind
	View types.View
}

// Decision is the paper's consensus-decision event: an honest lead(v)
// produced a QC for view v.
type Decision struct {
	At     types.Time
	View   types.View
	Leader types.NodeID
}

// Collector observes network traffic and decision events for one
// execution. It is safe for concurrent use (the TCP runtime delivers from
// multiple goroutines); under the simulator the mutex is uncontended.
type Collector struct {
	mu          sync.Mutex
	sends       []SendRecord
	byKind      map[msg.Kind]int64
	honestTotal int64
	kappaTotal  int64
	byzTotal    int64
	decisions   []Decision
	honest      func(types.NodeID) bool
}

var _ network.Observer = (*Collector)(nil)

// NewCollector creates a Collector. honest classifies decision leaders; a
// nil function treats every node as honest.
func NewCollector(honest func(types.NodeID) bool) *Collector {
	if honest == nil {
		honest = func(types.NodeID) bool { return true }
	}
	return &Collector{byKind: make(map[msg.Kind]int64), honest: honest}
}

// OnSend implements network.Observer.
func (c *Collector) OnSend(from, _ types.NodeID, m msg.Message, at types.Time, honestSender bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !honestSender {
		c.byzTotal++
		return
	}
	c.honestTotal++
	c.kappaTotal += int64(msg.KappaSize(m))
	c.byKind[m.Kind()]++
	c.sends = append(c.sends, SendRecord{At: at, From: from, Kind: m.Kind(), View: m.View()})
}

// OnDeliver implements network.Observer.
func (c *Collector) OnDeliver(types.NodeID, types.NodeID, msg.Message, types.Time) {}

// RecordDecision registers a QC produced by a leader; only honest leaders
// count as decisions per §2.
func (c *Collector) RecordDecision(v types.View, leader types.NodeID, at types.Time) {
	if !c.honest(leader) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decisions = append(c.decisions, Decision{At: at, View: v, Leader: leader})
}

// HonestSends returns the total number of messages sent by honest
// processors.
func (c *Collector) HonestSends() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.honestTotal
}

// ByzantineSends returns the total number of messages sent by Byzantine
// processors (not charged to the protocol's complexity).
func (c *Collector) ByzantineSends() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byzTotal
}

// KindCount returns the number of honest sends of one message kind.
func (c *Collector) KindCount(k msg.Kind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind[k]
}

// Decisions returns a copy of the decision log, in time order.
func (c *Collector) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]Decision(nil), c.decisions...)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Sends returns a copy of the honest send log, in time order.
func (c *Collector) Sends() []SendRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SendRecord(nil), c.sends...)
}

// sendsBetween counts honest sends with At in (a, b]. The send log is
// appended in time order under the simulator.
func (c *Collector) sendsBetween(a, b types.Time) int64 {
	lo := sort.Search(len(c.sends), func(i int) bool { return c.sends[i].At > a })
	hi := sort.Search(len(c.sends), func(i int) bool { return c.sends[i].At > b })
	return int64(hi - lo)
}

// FirstDecisionAfter returns the first decision strictly after t.
func (c *Collector) FirstDecisionAfter(t types.Time) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.decisions {
		if d.At > t {
			return d, true
		}
	}
	return Decision{}, false
}

// WindowAfter computes the paper's W_T and t*_T − T for a given T: the
// number of honest messages and elapsed time from T to the first
// honest-leader decision after T. ok is false when no decision follows T.
func (c *Collector) WindowAfter(t types.Time) (msgs int64, latency time.Duration, ok bool) {
	d, found := c.FirstDecisionAfter(t)
	if !found {
		return 0, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sendsBetween(t, d.At), d.At.Sub(t), true
}

// Interval summarizes one window between consecutive decisions.
type Interval struct {
	From, To types.Time
	Msgs     int64
	Gap      time.Duration
}

// Intervals returns the per-decision windows strictly after t, skipping
// the first skip decisions after t (the paper's "warmup"). The i-th
// interval spans (d_i, d_{i+1}].
func (c *Collector) Intervals(t types.Time, skip int) []Interval {
	decs := c.Decisions()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Interval
	prev := t
	seen := 0
	for _, d := range decs {
		if d.At <= t {
			continue
		}
		if seen >= skip {
			out = append(out, Interval{
				From: prev,
				To:   d.At,
				Msgs: c.sendsBetween(prev, d.At),
				Gap:  d.At.Sub(prev),
			})
		}
		prev = d.At
		seen++
	}
	return out
}

// IntervalStats aggregates per-decision windows.
type IntervalStats struct {
	Count                int
	MaxMsgs, MeanMsgs    float64
	MaxGap, MeanGap      time.Duration
	TotalMsgs            int64
	TotalSpan            time.Duration
	P99Msgs              float64
	DecisionsPerSecSimed float64
}

// Stats summarizes the windows after t, skipping skip warmup decisions.
func (c *Collector) Stats(t types.Time, skip int) IntervalStats {
	ivs := c.Intervals(t, skip)
	var s IntervalStats
	s.Count = len(ivs)
	if len(ivs) == 0 {
		return s
	}
	msgs := make([]int64, 0, len(ivs))
	var sumMsgs int64
	var sumGap time.Duration
	for _, iv := range ivs {
		msgs = append(msgs, iv.Msgs)
		sumMsgs += iv.Msgs
		sumGap += iv.Gap
		if float64(iv.Msgs) > s.MaxMsgs {
			s.MaxMsgs = float64(iv.Msgs)
		}
		if iv.Gap > s.MaxGap {
			s.MaxGap = iv.Gap
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i] < msgs[j] })
	s.P99Msgs = float64(msgs[(len(msgs)*99)/100])
	s.MeanMsgs = float64(sumMsgs) / float64(len(ivs))
	s.MeanGap = sumGap / time.Duration(len(ivs))
	s.TotalMsgs = sumMsgs
	s.TotalSpan = ivs[len(ivs)-1].To.Sub(ivs[0].From)
	if s.TotalSpan > 0 {
		s.DecisionsPerSecSimed = float64(len(ivs)) / s.TotalSpan.Seconds()
	}
	return s
}

// HeavySyncViews returns the distinct epoch views for which any honest
// processor sent an epoch-view message strictly after t — the number of
// heavy Θ(n²) synchronizations started after t.
func (c *Collector) HeavySyncViews(t types.Time) []types.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := make(map[types.View]bool)
	for _, r := range c.sends {
		if r.At > t && r.Kind == msg.KindEpochView {
			set[r.View] = true
		}
	}
	out := make([]types.View, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the collector for logs.
func (c *Collector) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("metrics{honest=%d byz=%d decisions=%d}", c.honestTotal, c.byzTotal, len(c.decisions))
}

// KappaBytes returns the total honest communication in κ units (§2's bit
// complexity: messages × O(κ)).
func (c *Collector) KappaBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kappaTotal
}
