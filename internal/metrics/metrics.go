// Package metrics implements the complexity measures of §2 of the paper:
// communication complexity W_T (messages sent by correct processors
// between T and the next honest-leader consensus decision t*_T), worst-
// case and eventual worst-case latency, and the honest clock gaps hg_i of
// Definition 3.1.
//
// The Collector aggregates online: per-kind counters, a compressed
// cumulative send series (one point per distinct timestamp, so an n-node
// broadcast costs one entry, not n), and per-epoch-view last-send times
// for heavy-sync detection. The full per-send record log is opt-in via
// WithSendLog; default executions run without it, so memory scales with
// distinct network-activity instants rather than with total sends. All
// window queries (W_T, per-decision intervals, heavy syncs) are exact —
// they produce byte-identical results to the old log-backed collector.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// SendRecord is one point-to-point transmission by an honest processor.
// Records are only retained under WithSendLog.
type SendRecord struct {
	At   types.Time
	From types.NodeID
	Kind msg.Kind
	View types.View
}

// Decision is the paper's consensus-decision event: an honest lead(v)
// produced a QC for view v.
type Decision struct {
	At     types.Time
	View   types.View
	Leader types.NodeID
}

// sendPoint is one entry of the compressed cumulative send series: count
// honest sends totalling words words happened at exactly instant at.
type sendPoint struct {
	at    types.Time
	count int64
	words int64
}

// Option configures a Collector.
type Option func(*Collector)

// WithSendLog retains the full per-send record log (Sends). Default
// collectors aggregate online and keep no per-send state; enable this
// only for debugging or offline analysis of individual transmissions.
func WithSendLog() Option {
	return func(c *Collector) { c.keepLog = true }
}

// WithEpochWords enables the per-epoch cumulative word series: every
// honest send is charged msg.Words to the epoch View()/viewsPerEpoch of
// the view it refers to (see WordsByEpoch). viewsPerEpoch is the
// protocol's epoch length — a nominal grouping for protocols without
// epochs.
func WithEpochWords(viewsPerEpoch types.View) Option {
	return func(c *Collector) {
		if viewsPerEpoch > 0 {
			c.epochLen = viewsPerEpoch
		}
	}
}

// DefaultSparsePoints is the send-series cap WithSparse applies when
// given no explicit bound.
const DefaultSparsePoints = 1 << 16

// WithSparse caps the compressed cumulative send series at maxPoints
// entries (0 = DefaultSparsePoints) for massive-n executions, where even
// one series entry per distinct send instant (≈ n per view at n=4096)
// outgrows memory across a sweep. On overflow, adjacent point pairs are
// coalesced onto the later timestamp — deterministically, so runs remain
// reproducible. Totals (WordsTotal, HonestSends, KappaBytes, per-kind
// counts, WordsByEpoch) stay exact; time-windowed queries (W_T,
// Intervals, WordsBetween) become approximate at the coalesced
// resolution, with sends attributed no earlier than they occurred.
func WithSparse(maxPoints int) Option {
	return func(c *Collector) {
		if maxPoints <= 0 {
			maxPoints = DefaultSparsePoints
		}
		if maxPoints < 2 {
			maxPoints = 2
		}
		c.maxPoints = maxPoints
	}
}

// Collector observes network traffic and decision events for one
// execution. It is safe for concurrent use (the TCP runtime delivers from
// multiple goroutines); under the simulator the mutex is uncontended.
type Collector struct {
	mu      sync.Mutex
	keepLog bool
	sends   []SendRecord // WithSendLog only

	// Streaming aggregates.
	points      []sendPoint // per-distinct-timestamp honest send counts and words
	prefix      []int64     // prefix[i] = sends strictly before points[i]; len(points)+1 entries
	prefixW     []int64     // prefixW[i] = words strictly before points[i]; len(points)+1 entries
	pointsDirty bool        // prefixes (and possibly point order) need rebuilding
	pointsInOrd bool        // appends observed in non-decreasing At order so far
	maxPoints   int         // WithSparse cap on len(points); 0 = unbounded
	byKind      map[msg.Kind]int64
	epochLast   map[types.View]types.Time // last epoch-view send per view
	epochLen    types.View                // views per epoch for epochWords (0 = disabled)
	epochWords  []int64                   // honest words per epoch (WithEpochWords)
	honestTotal int64
	kappaTotal  int64
	wordsTotal  int64
	byzTotal    int64

	decisions []Decision
	decInOrd  bool // decisions appended in non-decreasing At order so far

	commits     []commitPoint // per-command commit events (SMR workloads)
	commitInOrd bool          // commits appended in non-decreasing At order so far

	honest func(types.NodeID) bool
}

// commitPoint is one command's first commit: when it happened and the
// submit→commit latency.
type commitPoint struct {
	at    types.Time
	latNs int64
}

var _ network.Observer = (*Collector)(nil)

// NewCollector creates a Collector. honest classifies decision leaders; a
// nil function treats every node as honest.
func NewCollector(honest func(types.NodeID) bool, opts ...Option) *Collector {
	if honest == nil {
		honest = func(types.NodeID) bool { return true }
	}
	c := &Collector{
		byKind:      make(map[msg.Kind]int64),
		epochLast:   make(map[types.View]types.Time),
		honest:      honest,
		pointsInOrd: true,
		decInOrd:    true,
		commitInOrd: true,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Reset re-arms the Collector for a fresh execution, reusing the
// compressed send series, prefix-sum, epoch-words, decision and
// (optional) send-log backing storage. All aggregates, counters and maps
// are cleared and the options are re-applied from scratch: a reset
// Collector answers every query exactly as NewCollector(honest, opts...)
// would. Callers that hand results across executions take a Snapshot
// first — the arena resets the live Collector only after detaching one.
func (c *Collector) Reset(honest func(types.NodeID) bool, opts ...Option) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if honest == nil {
		honest = func(types.NodeID) bool { return true }
	}
	c.honest = honest
	c.keepLog = false
	c.sends = c.sends[:0]
	c.points = c.points[:0]
	c.prefix = c.prefix[:0]
	c.prefixW = c.prefixW[:0]
	c.pointsDirty = false
	c.pointsInOrd = true
	c.maxPoints = 0
	clear(c.byKind)
	clear(c.epochLast)
	c.epochLen = 0
	c.epochWords = c.epochWords[:0]
	c.honestTotal = 0
	c.kappaTotal = 0
	c.wordsTotal = 0
	c.byzTotal = 0
	c.decisions = c.decisions[:0]
	c.decInOrd = true
	c.commits = c.commits[:0]
	c.commitInOrd = true
	for _, opt := range opts {
		opt(c)
	}
}

// Snapshot returns an independent copy of the Collector: every series,
// counter and map is deep-copied into exactly-sized storage, so the copy
// answers all queries identically to the original at the moment of the
// call and shares no mutable state with it. The execution arena hands
// snapshots to Results so the live Collector's buffers can be recycled
// for the next cell.
func (c *Collector) Snapshot() *Collector {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Collector{
		keepLog:     c.keepLog,
		pointsDirty: c.pointsDirty,
		pointsInOrd: c.pointsInOrd,
		maxPoints:   c.maxPoints,
		epochLen:    c.epochLen,
		honestTotal: c.honestTotal,
		kappaTotal:  c.kappaTotal,
		wordsTotal:  c.wordsTotal,
		byzTotal:    c.byzTotal,
		decInOrd:    c.decInOrd,
		commitInOrd: c.commitInOrd,
		honest:      c.honest,
		byKind:      make(map[msg.Kind]int64, len(c.byKind)),
		epochLast:   make(map[types.View]types.Time, len(c.epochLast)),
	}
	if c.sends != nil {
		out.sends = append([]SendRecord(nil), c.sends...)
	}
	if c.points != nil {
		out.points = append([]sendPoint(nil), c.points...)
	}
	if c.prefix != nil {
		out.prefix = append([]int64(nil), c.prefix...)
		out.prefixW = append([]int64(nil), c.prefixW...)
	}
	if c.epochWords != nil {
		out.epochWords = append([]int64(nil), c.epochWords...)
	}
	if c.decisions != nil {
		out.decisions = append([]Decision(nil), c.decisions...)
	}
	if c.commits != nil {
		out.commits = append([]commitPoint(nil), c.commits...)
	}
	for k, v := range c.byKind {
		out.byKind[k] = v
	}
	for k, v := range c.epochLast {
		out.epochLast[k] = v
	}
	return out
}

// OnSend implements network.Observer. It is the per-transmission hot
// path: counter bumps and (at most) one amortized append per distinct
// timestamp, no per-send allocation.
func (c *Collector) OnSend(from, _ types.NodeID, m msg.Message, at types.Time, honestSender bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !honestSender {
		c.byzTotal++
		return
	}
	c.honestTotal++
	c.kappaTotal += int64(msg.KappaSize(m))
	words := int64(msg.Words(m))
	c.wordsTotal += words
	kind := m.Kind()
	c.byKind[kind]++
	if kind == msg.KindEpochView {
		v := m.View()
		if last, ok := c.epochLast[v]; !ok || at > last {
			c.epochLast[v] = at
		}
	}
	if c.epochLen > 0 {
		if v := m.View(); v >= 0 {
			e := int(v / c.epochLen)
			for len(c.epochWords) <= e {
				c.epochWords = append(c.epochWords, 0)
			}
			c.epochWords[e] += words
		}
	}
	if n := len(c.points); n > 0 && c.points[n-1].at == at {
		c.points[n-1].count++
		c.points[n-1].words += words
	} else {
		if n > 0 && at < c.points[n-1].at {
			c.pointsInOrd = false
		}
		c.points = append(c.points, sendPoint{at: at, count: 1, words: words})
		if c.maxPoints > 0 && len(c.points) >= c.maxPoints {
			c.coalesceLocked()
		}
	}
	c.pointsDirty = true
	if c.keepLog {
		c.sends = append(c.sends, SendRecord{At: at, From: from, Kind: kind, View: m.View()})
	}
}

// OnDeliver implements network.Observer.
func (c *Collector) OnDeliver(types.NodeID, types.NodeID, msg.Message, types.Time) {}

// RecordDecision registers a QC produced by a leader; only honest leaders
// count as decisions per §2.
func (c *Collector) RecordDecision(v types.View, leader types.NodeID, at types.Time) {
	if !c.honest(leader) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.decisions); n > 0 && at < c.decisions[n-1].At {
		c.decInOrd = false
	}
	c.decisions = append(c.decisions, Decision{At: at, View: v, Leader: leader})
}

// RecordCommit registers the first commit of one SMR command: at is the
// commit instant, lat the submit→commit latency. The harness records a
// command once, at its first commit on any honest replica.
func (c *Collector) RecordCommit(at types.Time, lat time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.commits); n > 0 && at < c.commits[n-1].at {
		c.commitInOrd = false
	}
	c.commits = append(c.commits, commitPoint{at: at, latNs: int64(lat)})
}

// CommitCount returns the number of recorded command commits.
func (c *Collector) CommitCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.commits))
}

// CommitStats summarizes the per-command commit latency distribution.
type CommitStats struct {
	// Count is the number of commands committed in the window; PerSec is
	// the committed-command throughput over (after, last commit].
	Count  int
	PerSec float64
	// Latency percentiles of submit→first-commit.
	Mean, P50, P99, P999, Max time.Duration
}

// CommitLatencyStats summarizes the commits strictly after t (warmup
// exclusion). Percentiles use the same index convention as P99Msgs:
// element ⌊n·q/100⌋ of the sorted latencies.
func (c *Collector) CommitLatencyStats(t types.Time) CommitStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.commitInOrd {
		sort.Slice(c.commits, func(i, j int) bool { return c.commits[i].at < c.commits[j].at })
		c.commitInOrd = true
	}
	lo := sort.Search(len(c.commits), func(i int) bool { return c.commits[i].at > t })
	win := c.commits[lo:]
	var s CommitStats
	s.Count = len(win)
	if len(win) == 0 {
		return s
	}
	lats := make([]int64, len(win))
	var sum int64
	for i, p := range win {
		lats[i] = p.latNs
		sum += p.latNs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.Mean = time.Duration(sum / int64(len(lats)))
	s.P50 = time.Duration(lats[(len(lats)*50)/100])
	s.P99 = time.Duration(lats[(len(lats)*99)/100])
	s.P999 = time.Duration(lats[(len(lats)*999)/1000])
	s.Max = time.Duration(lats[len(lats)-1])
	if span := win[len(win)-1].at.Sub(t); span > 0 {
		s.PerSec = float64(len(win)) / span.Seconds()
	}
	return s
}

// coalesceLocked halves the send series by merging adjacent point pairs
// onto the later timestamp (WithSparse). Merging neighbours in time
// order keeps the cumulative totals exact and the timestamp drift local:
// a send moves at most one merged-neighbour gap later.
func (c *Collector) coalesceLocked() {
	if !c.pointsInOrd {
		sort.Slice(c.points, func(i, j int) bool { return c.points[i].at < c.points[j].at })
		c.pointsInOrd = true
	}
	out := c.points[:0]
	for i := 0; i+1 < len(c.points); i += 2 {
		a, b := c.points[i], c.points[i+1]
		out = append(out, sendPoint{at: b.at, count: a.count + b.count, words: a.words + b.words})
	}
	if len(c.points)%2 == 1 {
		out = append(out, c.points[len(c.points)-1])
	}
	c.points = out
}

// normalizeLocked brings the cumulative send series to query form: points
// sorted by time with duplicates merged (the simulator appends in order,
// so the sort is skipped there) and prefix sums rebuilt.
func (c *Collector) normalizeLocked() {
	// The length check covers the never-sent case: prefix must hold
	// len(points)+1 entries (i.e. [0]) even when no send ever arrived.
	if !c.pointsDirty && len(c.prefix) == len(c.points)+1 {
		return
	}
	if !c.pointsInOrd {
		sort.Slice(c.points, func(i, j int) bool { return c.points[i].at < c.points[j].at })
		merged := c.points[:0]
		for _, p := range c.points {
			if n := len(merged); n > 0 && merged[n-1].at == p.at {
				merged[n-1].count += p.count
				merged[n-1].words += p.words
			} else {
				merged = append(merged, p)
			}
		}
		c.points = merged
		c.pointsInOrd = true
	}
	if cap(c.prefix) < len(c.points)+1 {
		c.prefix = make([]int64, len(c.points)+1)
		c.prefixW = make([]int64, len(c.points)+1)
	}
	c.prefix = c.prefix[:len(c.points)+1]
	c.prefixW = c.prefixW[:len(c.points)+1]
	c.prefix[0], c.prefixW[0] = 0, 0
	for i, p := range c.points {
		c.prefix[i+1] = c.prefix[i] + p.count
		c.prefixW[i+1] = c.prefixW[i] + p.words
	}
	c.pointsDirty = false
}

// sortDecisionsLocked restores time order after out-of-order appends (the
// simulator records in order; the flag memoizes sortedness between
// appends so the common path never re-verifies or re-sorts).
func (c *Collector) sortDecisionsLocked() {
	if c.decInOrd {
		return
	}
	sort.SliceStable(c.decisions, func(i, j int) bool { return c.decisions[i].At < c.decisions[j].At })
	c.decInOrd = true
}

// HonestSends returns the total number of messages sent by honest
// processors.
func (c *Collector) HonestSends() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.honestTotal
}

// ByzantineSends returns the total number of messages sent by Byzantine
// processors (not charged to the protocol's complexity).
func (c *Collector) ByzantineSends() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byzTotal
}

// KindCount returns the number of honest sends of one message kind.
func (c *Collector) KindCount(k msg.Kind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind[k]
}

// DecisionCount returns the number of honest-leader decisions without
// copying the log.
func (c *Collector) DecisionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.decisions)
}

// Decisions returns a copy of the decision log, in time order. The
// internal log's sortedness is tracked across appends, so this sorts only
// when decisions actually arrived out of order (never under the
// simulator).
func (c *Collector) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sortDecisionsLocked()
	return append([]Decision(nil), c.decisions...)
}

// Sends returns a copy of the honest send log, in time order. It returns
// nil unless the Collector was built WithSendLog.
func (c *Collector) Sends() []SendRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.keepLog {
		return nil
	}
	return append([]SendRecord(nil), c.sends...)
}

// sendsBetween counts honest sends and their words with At in (a, b]
// from the compressed cumulative series. Callers must hold mu and have
// normalized.
func (c *Collector) sendsBetween(a, b types.Time) (msgs, words int64) {
	lo := sort.Search(len(c.points), func(i int) bool { return c.points[i].at > a })
	hi := sort.Search(len(c.points), func(i int) bool { return c.points[i].at > b })
	return c.prefix[hi] - c.prefix[lo], c.prefixW[hi] - c.prefixW[lo]
}

// FirstDecisionAfter returns the first decision strictly after t.
func (c *Collector) FirstDecisionAfter(t types.Time) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstDecisionAfterLocked(t)
}

func (c *Collector) firstDecisionAfterLocked(t types.Time) (Decision, bool) {
	c.sortDecisionsLocked()
	i := sort.Search(len(c.decisions), func(i int) bool { return c.decisions[i].At > t })
	if i == len(c.decisions) {
		return Decision{}, false
	}
	return c.decisions[i], true
}

// windowAfterLocked is the shared body of WindowAfter and
// WordsWindowAfter: messages, words and elapsed time from t to the
// first honest-leader decision after it. Callers must hold mu.
func (c *Collector) windowAfterLocked(t types.Time) (msgs, words int64, latency time.Duration, ok bool) {
	d, found := c.firstDecisionAfterLocked(t)
	if !found {
		return 0, 0, 0, false
	}
	c.normalizeLocked()
	m, w := c.sendsBetween(t, d.At)
	return m, w, d.At.Sub(t), true
}

// WindowAfter computes the paper's W_T and t*_T − T for a given T: the
// number of honest messages and elapsed time from T to the first
// honest-leader decision after T. ok is false when no decision follows T.
func (c *Collector) WindowAfter(t types.Time) (msgs int64, latency time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, _, lat, ok := c.windowAfterLocked(t)
	return m, lat, ok
}

// WordsWindowAfter is WindowAfter in words: the honest communication in
// words (msg.Words per send) and elapsed time from T to the first
// honest-leader decision after T.
func (c *Collector) WordsWindowAfter(t types.Time) (words int64, latency time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, w, lat, ok := c.windowAfterLocked(t)
	return w, lat, ok
}

// Interval summarizes one window between consecutive decisions.
type Interval struct {
	From, To types.Time
	Msgs     int64
	Words    int64
	Gap      time.Duration
}

// Intervals returns the per-decision windows strictly after t, skipping
// the first skip decisions after t (the paper's "warmup"). The i-th
// interval spans (d_i, d_{i+1}].
func (c *Collector) Intervals(t types.Time, skip int) []Interval {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sortDecisionsLocked()
	c.normalizeLocked()
	var out []Interval
	prev := t
	seen := 0
	for _, d := range c.decisions {
		if d.At <= t {
			continue
		}
		if seen >= skip {
			m, w := c.sendsBetween(prev, d.At)
			out = append(out, Interval{
				From:  prev,
				To:    d.At,
				Msgs:  m,
				Words: w,
				Gap:   d.At.Sub(prev),
			})
		}
		prev = d.At
		seen++
	}
	return out
}

// IntervalStats aggregates per-decision windows.
type IntervalStats struct {
	Count                int
	MaxMsgs, MeanMsgs    float64
	MaxWords, MeanWords  float64
	MaxGap, MeanGap      time.Duration
	TotalMsgs            int64
	TotalWords           int64
	TotalSpan            time.Duration
	P99Msgs              float64
	DecisionsPerSecSimed float64
}

// Stats summarizes the windows after t, skipping skip warmup decisions.
func (c *Collector) Stats(t types.Time, skip int) IntervalStats {
	ivs := c.Intervals(t, skip)
	var s IntervalStats
	s.Count = len(ivs)
	if len(ivs) == 0 {
		return s
	}
	msgs := make([]int64, 0, len(ivs))
	var sumMsgs, sumWords int64
	var sumGap time.Duration
	for _, iv := range ivs {
		msgs = append(msgs, iv.Msgs)
		sumMsgs += iv.Msgs
		sumWords += iv.Words
		sumGap += iv.Gap
		if float64(iv.Msgs) > s.MaxMsgs {
			s.MaxMsgs = float64(iv.Msgs)
		}
		if float64(iv.Words) > s.MaxWords {
			s.MaxWords = float64(iv.Words)
		}
		if iv.Gap > s.MaxGap {
			s.MaxGap = iv.Gap
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i] < msgs[j] })
	s.P99Msgs = float64(msgs[(len(msgs)*99)/100])
	s.MeanMsgs = float64(sumMsgs) / float64(len(ivs))
	s.MeanWords = float64(sumWords) / float64(len(ivs))
	s.MeanGap = sumGap / time.Duration(len(ivs))
	s.TotalMsgs = sumMsgs
	s.TotalWords = sumWords
	s.TotalSpan = ivs[len(ivs)-1].To.Sub(ivs[0].From)
	if s.TotalSpan > 0 {
		s.DecisionsPerSecSimed = float64(len(ivs)) / s.TotalSpan.Seconds()
	}
	return s
}

// HeavySyncViews returns the distinct epoch views for which any honest
// processor sent an epoch-view message strictly after t — the number of
// heavy Θ(n²) synchronizations started after t. Computed from the
// streaming per-view last-send times, not a send log.
func (c *Collector) HeavySyncViews(t types.Time) []types.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]types.View, 0, len(c.epochLast))
	for v, last := range c.epochLast {
		if last > t {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the collector for logs.
func (c *Collector) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("metrics{honest=%d byz=%d decisions=%d}", c.honestTotal, c.byzTotal, len(c.decisions))
}

// KappaBytes returns the total honest communication in κ units (§2's bit
// complexity: messages × O(κ)).
func (c *Collector) KappaBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kappaTotal
}

// WordsTotal returns the total honest communication in words (msg.Words
// per send): the paper's word complexity, accumulated over the whole
// execution.
func (c *Collector) WordsTotal() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wordsTotal
}

// WordsBetween returns the honest words sent in (a, b].
func (c *Collector) WordsBetween(a, b types.Time) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.normalizeLocked()
	_, w := c.sendsBetween(a, b)
	return w
}

// WordsByEpoch returns a copy of the per-epoch honest word totals:
// entry e holds the words of messages referring to views in epoch e
// (View/viewsPerEpoch per WithEpochWords). Nil unless the Collector was
// built WithEpochWords.
func (c *Collector) WordsByEpoch() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epochLen == 0 {
		return nil
	}
	return append([]int64(nil), c.epochWords...)
}
