package metrics

import (
	"sort"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/types"
)

// GapSample is one observation of the honest clock gaps of Definition 3.1.
type GapSample struct {
	At types.Time
	// HG is indexed by i−1: HG[i-1] = hg_{i,t}, the gap between the
	// most advanced honest clock and the i-th most advanced.
	HG []time.Duration
}

// GapTracker samples the local clocks of honest processors and computes
// hg_{f+1} and hg_{2f+1} trajectories, used to validate §3.5's
// gap-shrinking argument (Lemma 5.9, Lemma 5.12).
type GapTracker struct {
	provider func() ([]*clock.Clock, []bool)
	f        int
	samples  []GapSample
}

// NewGapTracker tracks a fixed set of clocks; honest[i] marks clocks[i]'s
// owner honest.
func NewGapTracker(clocks []*clock.Clock, honest []bool, f int) *GapTracker {
	return NewGapTrackerLazy(func() ([]*clock.Clock, []bool) { return clocks, honest }, f)
}

// NewGapTrackerLazy tracks a clock set resolved at each sample, for
// executions where processors join over time.
func NewGapTrackerLazy(provider func() ([]*clock.Clock, []bool), f int) *GapTracker {
	return &GapTracker{provider: provider, f: f}
}

// Sample records the current gaps.
func (g *GapTracker) Sample(at types.Time) {
	clocks, honest := g.provider()
	vals := make([]types.Time, 0, len(clocks))
	for i, c := range clocks {
		if i < len(honest) && honest[i] {
			vals = append(vals, c.Read())
		}
	}
	if len(vals) == 0 {
		return
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	hg := make([]time.Duration, len(vals))
	for i := range vals {
		hg[i] = vals[0].Sub(vals[i])
	}
	g.samples = append(g.samples, GapSample{At: at, HG: hg})
}

// Samples returns the recorded trajectory.
func (g *GapTracker) Samples() []GapSample { return g.samples }

// gapAt extracts hg_{i} from a sample, saturating on short samples.
func gapAt(s GapSample, i int) time.Duration {
	if i-1 < len(s.HG) {
		return s.HG[i-1]
	}
	if len(s.HG) == 0 {
		return 0
	}
	return s.HG[len(s.HG)-1]
}

// GapF1 returns hg_{f+1} of a sample.
func (g *GapTracker) GapF1(s GapSample) time.Duration { return gapAt(s, g.f+1) }

// Gap2F1 returns hg_{2f+1} of a sample.
func (g *GapTracker) Gap2F1(s GapSample) time.Duration { return gapAt(s, 2*g.f+1) }

// MaxGapF1After returns the maximum hg_{f+1} over samples taken strictly
// after t.
func (g *GapTracker) MaxGapF1After(t types.Time) time.Duration {
	var max time.Duration
	for _, s := range g.samples {
		if s.At > t {
			if v := g.GapF1(s); v > max {
				max = v
			}
		}
	}
	return max
}

// FirstTimeGapF1Below returns the first sample time after t at which
// hg_{f+1} ≤ bound.
func (g *GapTracker) FirstTimeGapF1Below(t types.Time, bound time.Duration) (types.Time, bool) {
	for _, s := range g.samples {
		if s.At > t && g.GapF1(s) <= bound {
			return s.At, true
		}
	}
	return 0, false
}
