package pacemaker

import (
	"fmt"
	"math"
	"testing"
	"time"

	"lumiere/internal/types"
)

func TestNopDriver(t *testing.T) {
	var d Driver = NopDriver{}
	d.EnterView(3)
	d.LeaderStart(3, types.TimeInf) // must not panic
}

func TestNopObserver(t *testing.T) {
	var o Observer = NopObserver{}
	o.OnEnterView(1, 0)
	o.OnEnterEpoch(1, 0)
	o.OnHeavySync(0, 0) // must not panic
}

// recObserver records every notification with its position in a shared
// log, so dispatch order across a fan-out is observable.
type recObserver struct {
	name string
	log  *[]string
}

func (r recObserver) OnEnterView(v types.View, at types.Time) {
	*r.log = append(*r.log, fmt.Sprintf("%s:view(%v@%v)", r.name, v, at))
}

func (r recObserver) OnEnterEpoch(e types.Epoch, at types.Time) {
	*r.log = append(*r.log, fmt.Sprintf("%s:epoch(%v@%v)", r.name, e, at))
}

func (r recObserver) OnHeavySync(v types.View, at types.Time) {
	*r.log = append(*r.log, fmt.Sprintf("%s:heavy(%v@%v)", r.name, v, at))
}

// TestObserversDispatchOrder verifies the fan-out: every hook reaches
// every observer in slice order with the arguments unmodified.
func TestObserversDispatchOrder(t *testing.T) {
	var log []string
	obs := Observers{recObserver{"a", &log}, recObserver{"b", &log}}
	at := types.Time(0).Add(250 * time.Millisecond)
	obs.OnEnterView(7, at)
	obs.OnEnterEpoch(2, at)
	obs.OnHeavySync(40, at)
	want := fmt.Sprint([]string{
		"a:view(v7@250ms)", "b:view(v7@250ms)",
		"a:epoch(e2@250ms)", "b:epoch(e2@250ms)",
		"a:heavy(v40@250ms)", "b:heavy(v40@250ms)",
	})
	if got := fmt.Sprint(log); got != want {
		t.Fatalf("dispatch log:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestObserversDegenerate pins the edge shapes: empty and nil fan-outs
// dispatch to nobody, and Nop placeholders compose silently.
func TestObserversDegenerate(t *testing.T) {
	for _, obs := range []Observers{nil, {}, {NopObserver{}, NopObserver{}}} {
		obs.OnEnterView(1, 0)
		obs.OnEnterEpoch(1, 0)
		obs.OnHeavySync(1, 0) // must not panic
	}
	var log []string
	obs := Observers{NopObserver{}, recObserver{"x", &log}}
	obs.OnEnterView(3, 0)
	if len(log) != 1 || log[0] != "x:view(v3@0s)" {
		t.Fatalf("log = %v", log)
	}
}

// TestObserversRebind pins the per-use construction discipline the type
// doc demands: a pacemaker holds its Observers by value (a slice
// header), so every use must build a fresh fan-out rather than truncate
// and re-append a shared one, which would redirect an already-held
// dispatch through the shared backing array. The test pins both
// directions: fresh slices stay independent, and the truncate-and-reuse
// shape really does alias.
func TestObserversRebind(t *testing.T) {
	var oldLog, newLog []string
	oldObs := Observers{recObserver{"old", &oldLog}}
	newObs := Observers{recObserver{"new", &newLog}}
	oldObs.OnEnterView(1, 0)
	newObs.OnEnterEpoch(2, 0)
	if len(oldLog) != 1 || len(newLog) != 1 {
		t.Fatalf("fresh fan-outs not independent: old=%v new=%v", oldLog, newLog)
	}
	shared := make(Observers, 0, 1)
	held := append(shared, recObserver{"old", &oldLog})
	_ = append(shared, recObserver{"new", &newLog}) // the anti-pattern: same backing array
	held.OnEnterView(3, 0)
	if len(newLog) != 2 {
		t.Fatalf("expected the aliased rebind to redirect dispatch (got old=%v new=%v)", oldLog, newLog)
	}
}

// recDriver records LeaderStart deadlines to pin the Driver contract.
type recDriver struct {
	views     []types.View
	deadlines []types.Time
}

func (d *recDriver) EnterView(v types.View) { d.views = append(d.views, v) }

func (d *recDriver) LeaderStart(v types.View, qcDeadline types.Time) {
	d.views = append(d.views, v)
	d.deadlines = append(d.deadlines, qcDeadline)
}

// TestDriverDeadlineConventions pins the LeaderStart deadline edge
// cases at this package's contract level: deadline values reach the
// driver unmodified (including the types.TimeInf no-deadline sentinel
// and a zero deadline), and TimeInf is the maximum representable Time —
// the property that makes an engine's `now > deadline` expiry check
// constant-false for protocols without the Γ/2−2Δ rule. The behavioral
// side of the convention (a QC suppressed past the deadline, produced
// exactly at it) is exercised against a real engine in
// internal/viewcore's tests.
func TestDriverDeadlineConventions(t *testing.T) {
	d := &recDriver{}
	var drv Driver = d
	finite := types.Time(0).Add(3 * time.Second)
	drv.LeaderStart(1, types.TimeInf)
	drv.LeaderStart(2, finite)
	drv.LeaderStart(3, 0)
	if len(d.deadlines) != 3 || d.deadlines[0] != types.TimeInf || d.deadlines[1] != finite || d.deadlines[2] != 0 {
		t.Fatalf("deadlines = %v", d.deadlines)
	}
	if types.TimeInf != types.Time(math.MaxInt64) {
		t.Fatalf("TimeInf = %d, not the maximum Time — no-deadline engines could read it as expired", int64(types.TimeInf))
	}
}
