package pacemaker

import (
	"testing"

	"lumiere/internal/types"
)

func TestNopDriver(t *testing.T) {
	var d Driver = NopDriver{}
	d.EnterView(3)
	d.LeaderStart(3, types.TimeInf) // must not panic
}

func TestNopObserver(t *testing.T) {
	var o Observer = NopObserver{}
	o.OnEnterView(1, 0)
	o.OnEnterEpoch(1, 0)
	o.OnHeavySync(0, 0) // must not panic
}
