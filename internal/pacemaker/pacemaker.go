// Package pacemaker defines the interface between a Byzantine View
// Synchronization protocol (the "pacemaker", in HotStuff's terminology
// adopted by the paper) and the underlying view-based protocol it drives.
//
// The paper's §2 abstraction: the underlying protocol has views, each with
// a leader; the successful completion of view v is marked by all
// processors receiving a QC for v; the BVS protocol decides when
// processors enter views so that conditions (1) (monotonicity) and (2)
// (eventual synchronized honest-leader views) hold.
package pacemaker

import (
	"lumiere/internal/msg"
	"lumiere/internal/types"
)

// Driver is the underlying protocol as seen by a pacemaker.
type Driver interface {
	// EnterView informs the underlying protocol that this processor is
	// now in view v. Followers use this to vote on buffered proposals.
	EnterView(v types.View)
	// LeaderStart tells the underlying protocol that, as leader of
	// view v, it may start driving the view (propose), and that it
	// must not produce a QC after qcDeadline (Lumiere's Γ/2 − 2Δ rule,
	// §4; types.TimeInf for protocols without the rule).
	LeaderStart(v types.View, qcDeadline types.Time)
}

// NopDriver is a Driver that ignores all notifications; useful in tests.
type NopDriver struct{}

// EnterView implements Driver.
func (NopDriver) EnterView(types.View) {}

// LeaderStart implements Driver.
func (NopDriver) LeaderStart(types.View, types.Time) {}

// Pacemaker is a Byzantine View Synchronization protocol instance bound to
// one processor.
type Pacemaker interface {
	// Start boots the protocol (processors join with lc(p) = 0).
	Start()
	// CurrentView returns the view this processor is in (NoView before
	// entering any view).
	CurrentView() types.View
	// CurrentEpoch returns the epoch this processor is in (NoEpoch for
	// protocols without epochs, before entering any epoch).
	CurrentEpoch() types.Epoch
	// Handle processes a view-synchronization message or an observed
	// QC. Replicas route every QC they see (standalone or embedded in
	// proposals) here.
	Handle(from types.NodeID, m msg.Message)
	// Leader returns the leader of view v under this protocol's
	// schedule.
	Leader(v types.View) types.NodeID
}

// Observer receives pacemaker-level lifecycle notifications: tracing,
// metrics, and the read-only observation hooks adaptive attack
// strategies consume (adversary.PMObserver). All methods may be
// nil-safe no-ops.
type Observer interface {
	// OnEnterView fires when the processor enters a view.
	OnEnterView(v types.View, at types.Time)
	// OnEnterEpoch fires when the processor enters an epoch.
	OnEnterEpoch(e types.Epoch, at types.Time)
	// OnHeavySync fires when the processor sends an epoch-view
	// message, i.e. participates in a Θ(n²) epoch synchronization.
	OnHeavySync(v types.View, at types.Time)
}

// Observers fans lifecycle notifications out to several observers in
// slice order: the dispatch to use when a pacemaker must feed more than
// one consumer (say, an attack hook plus a metrics probe) without each
// protocol growing its own fan-out. The harness currently wires at most
// one observer per pacemaker and passes it directly; build a fresh
// Observers per use — entries must be non-nil (NopObserver for
// placeholders).
type Observers []Observer

// OnEnterView implements Observer.
func (os Observers) OnEnterView(v types.View, at types.Time) {
	for _, o := range os {
		o.OnEnterView(v, at)
	}
}

// OnEnterEpoch implements Observer.
func (os Observers) OnEnterEpoch(e types.Epoch, at types.Time) {
	for _, o := range os {
		o.OnEnterEpoch(e, at)
	}
}

// OnHeavySync implements Observer.
func (os Observers) OnHeavySync(v types.View, at types.Time) {
	for _, o := range os {
		o.OnHeavySync(v, at)
	}
}

// NopObserver is an Observer that ignores all notifications.
type NopObserver struct{}

// OnEnterView implements Observer.
func (NopObserver) OnEnterView(types.View, types.Time) {}

// OnEnterEpoch implements Observer.
func (NopObserver) OnEnterEpoch(types.Epoch, types.Time) {}

// OnHeavySync implements Observer.
func (NopObserver) OnHeavySync(types.View, types.Time) {}
