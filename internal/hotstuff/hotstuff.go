package hotstuff

import (
	"bytes"
	"sort"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
	"lumiere/internal/viewcore"
)

// Config parameterizes a HotStuff core.
type Config struct {
	// Base is the execution-model configuration.
	Base types.Config
	// BatchSize caps commands per block (default 128).
	BatchSize int
	// TwoPhase commits on a two-chain of consecutive views instead of
	// a three-chain, in the spirit of HotStuff-2 (Malkhi-Nayak 2023,
	// cited in §6): one fewer round of confirmation latency. The full
	// HotStuff-2 view-change optimism is out of scope; the two-chain
	// rule is safe here because leaders always extend the highest QC
	// they know and the lock tracks the parent of the newest certified
	// block.
	TwoPhase bool
}

func (c Config) batch() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 128
}

func (c Config) chainLen() int {
	if c.TwoPhase {
		return 2
	}
	return 3
}

// CommitObserver is notified of each committed block, in commit order.
type CommitObserver func(b *Block, at types.Time)

// Core is one replica's chained HotStuff instance. It implements
// replica.Engine: the pacemaker drives views, Core produces QCs (which
// double as the BVS layer's decision events) and commits blocks on
// three-chains of consecutive views.
type Core struct {
	cfg    Config
	id     types.NodeID
	ep     network.Endpoint
	rt     clock.Runtime
	suite  crypto.Suite
	signer crypto.Signer
	// stmt is the statement scratch: sign/verify statements are
	// rebuilt in place, keeping the vote/QC hot paths free of
	// per-call statement allocations.
	stmt     msg.StmtScratch
	leader   func(types.View) types.NodeID
	onQC     func(*msg.QC)
	obs      viewcore.QCObserver
	sm       statemachine.StateMachine
	onCommit CommitObserver

	view      types.View
	blocks    map[Hash]*Block
	qcByHash  map[Hash]*msg.QC
	proposals map[types.View]*msg.Proposal
	voted     quorum.Flags
	seenQC    quorum.Flags

	highQC   *msg.QC
	lockedQC *msg.QC

	leading  types.View
	deadline types.Time
	votes    quorum.VoteSet
	done     bool

	mempool       []Command
	inPool        map[uint64]bool
	applied       map[uint64]bool
	committed     []Hash
	lastExec      types.View
	nextReqID     uint64
	pendingExec   map[Hash]*Block
	pendingCommit map[Hash]*Block
	fetchAsked    map[Hash]types.Time
}

var _ pacemaker.Driver = (*Core)(nil)

// New creates a HotStuff core. sm receives committed commands; onQC
// routes observed QCs to the pacemaker; obs and onCommit may be nil.
func New(cfg Config, ep network.Endpoint, rt clock.Runtime, suite crypto.Suite,
	leader func(types.View) types.NodeID, onQC func(*msg.QC),
	sm statemachine.StateMachine, obs viewcore.QCObserver, onCommit CommitObserver) *Core {
	genesis := &Block{View: types.NoView}
	genesisQC := &msg.QC{V: types.NoView, BlockHash: GenesisHash}
	c := &Core{
		cfg:           cfg,
		id:            ep.ID(),
		ep:            ep,
		rt:            rt,
		suite:         suite,
		signer:        suite.SignerFor(ep.ID()),
		leader:        leader,
		onQC:          onQC,
		obs:           obs,
		sm:            sm,
		onCommit:      onCommit,
		view:          types.NoView,
		blocks:        map[Hash]*Block{GenesisHash: genesis},
		qcByHash:      map[Hash]*msg.QC{GenesisHash: genesisQC},
		proposals:     make(map[types.View]*msg.Proposal),
		highQC:        genesisQC,
		lockedQC:      genesisQC,
		leading:       types.NoView,
		inPool:        make(map[uint64]bool),
		applied:       make(map[uint64]bool),
		lastExec:      types.NoView,
		nextReqID:     uint64(ep.ID())<<48 + 1,
		pendingExec:   make(map[Hash]*Block),
		pendingCommit: make(map[Hash]*Block),
		fetchAsked:    make(map[Hash]types.Time),
	}
	return c
}

// Submit queues a client command locally (examples broadcast msg.Request
// so every replica's mempool holds it; whichever leader proposes first
// wins, and execution dedupes by request ID).
func (c *Core) Submit(payload []byte) uint64 {
	id := c.nextReqID
	c.nextReqID++
	c.enqueue(Command{ID: id, Payload: payload})
	return id
}

// EnqueueCommand queues an externally generated command without the
// msg.Request envelope — the harness injector's allocation-free entry
// point (the envelope would be allocated once per replica per command).
func (c *Core) EnqueueCommand(id uint64, payload []byte) {
	c.enqueue(Command{ID: id, Payload: payload})
}

func (c *Core) enqueue(cmd Command) {
	if c.inPool[cmd.ID] || c.applied[cmd.ID] {
		return
	}
	c.inPool[cmd.ID] = true
	c.mempool = append(c.mempool, cmd)
}

// CommittedCount returns the number of committed blocks.
func (c *Core) CommittedCount() int { return len(c.committed) }

// CommittedHashes returns the commit sequence (for consistency checks).
func (c *Core) CommittedHashes() []Hash { return append([]Hash(nil), c.committed...) }

// HighView returns the view of the highest QC observed.
func (c *Core) HighView() types.View { return c.highQC.V }

// HighQC returns the highest QC observed (used by Byzantine behavior
// harnesses to craft plausible equivocating proposals).
func (c *Core) HighQC() *msg.QC { return c.highQC }

// MempoolLen returns the number of pending commands.
func (c *Core) MempoolLen() int { return len(c.mempool) }

// EnterView implements pacemaker.Driver.
func (c *Core) EnterView(v types.View) {
	if v <= c.view {
		return
	}
	c.view = v
	c.pruneBelow(v)
	if p, ok := c.proposals[v]; ok {
		c.maybeVote(p)
	}
}

// LeaderStart implements pacemaker.Driver: propose a block extending the
// highest QC.
func (c *Core) LeaderStart(v types.View, qcDeadline types.Time) {
	if c.leader(v) != c.id || v < c.view || v <= c.leading {
		return
	}
	c.leading = v
	c.deadline = qcDeadline
	c.votes.Reset(c.cfg.Base.N)
	c.done = false
	batch := c.mempool
	if len(batch) > c.cfg.batch() {
		batch = batch[:c.cfg.batch()]
	}
	block := &Block{View: v, Parent: c.highQC.BlockHash, Cmds: append([]Command(nil), batch...)}
	hash := block.HashOf()
	c.blocks[hash] = block
	c.ep.Broadcast(&msg.Proposal{
		V:       v,
		Leader:  c.id,
		Justify: c.highQC,
		Block:   block.Encode(),
		Hash:    hash,
	})
}

// Handle implements replica.Engine.
func (c *Core) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.Proposal:
		c.handleProposal(from, mm)
	case *msg.Vote:
		c.handleVote(from, mm)
	case *msg.QC:
		c.observeQC(mm)
	case *msg.Request:
		c.enqueue(Command{ID: mm.ID, Payload: mm.Payload})
	case *msg.NewView:
		if mm.HighQC != nil {
			c.observeQC(mm.HighQC)
		}
	case *msg.BlockFetch:
		c.handleBlockFetch(mm)
	case *msg.BlockResp:
		c.handleBlockResp(mm)
	}
}

// requestBlock broadcasts a fetch for a missing ancestor block — the
// catch-up path for replicas whose crash window swallowed proposals
// (the network model loses in-flight messages to a dead node, so the
// committed chain has real gaps after a revival). Re-asks for the same
// hash are rate-limited to one per Δ.
func (c *Core) requestBlock(h Hash) {
	now := c.rt.Now()
	if last, ok := c.fetchAsked[h]; ok && now < last+types.Time(c.cfg.Base.Delta) {
		return
	}
	c.fetchAsked[h] = now
	c.ep.Broadcast(&msg.BlockFetch{H: h, FromRaw: c.id})
}

// handleBlockFetch serves a fetch request — but only for blocks whose
// certifying QC is known, so a Byzantine requester learns nothing about
// uncertified proposals and honest responders never propagate blocks
// that could still be discarded.
func (c *Core) handleBlockFetch(m *msg.BlockFetch) {
	b, ok := c.blocks[m.H]
	if !ok || b.View < 0 {
		return
	}
	qc, ok := c.qcByHash[m.H]
	if !ok || qc.V < 0 {
		return
	}
	c.ep.Send(m.FromRaw, &msg.BlockResp{Block: b.Encode(), Cert: qc, FromRaw: c.id})
}

// handleBlockResp verifies and stores a fetched block. The response is
// self-certifying: the decoded block must hash to the QC's BlockHash and
// the QC must verify, so a forged response from a Byzantine peer is
// dropped without trusting the sender.
func (c *Core) handleBlockResp(m *msg.BlockResp) {
	if m.Cert == nil {
		return
	}
	b, err := DecodeBlock(m.Block)
	if err != nil || b.View != m.Cert.V || b.HashOf() != m.Cert.BlockHash {
		return
	}
	if _, known := c.blocks[m.Cert.BlockHash]; known {
		return
	}
	if !c.verifyQC(m.Cert) {
		return
	}
	c.blocks[m.Cert.BlockHash] = b
	delete(c.fetchAsked, m.Cert.BlockHash)
	c.observeQC(m.Cert)
	c.retryPending()
}

func (c *Core) handleProposal(from types.NodeID, p *msg.Proposal) {
	if p.Leader != from || c.leader(p.V) != from {
		return
	}
	block, err := DecodeBlock(p.Block)
	if err != nil || block.View != p.V || block.HashOf() != p.Hash {
		return
	}
	if p.Justify == nil || block.Parent != p.Justify.BlockHash {
		return
	}
	if !c.verifyQC(p.Justify) {
		return
	}
	// Store the block even when the proposal arrives too late to vote:
	// it may be an ancestor of a later commit, and dropping it would
	// leave a hole in the executed chain.
	if _, known := c.blocks[p.Hash]; !known {
		c.blocks[p.Hash] = block
		c.retryPending()
	}
	c.observeQC(p.Justify)
	if p.V < c.view {
		return
	}
	if _, dup := c.proposals[p.V]; dup {
		return
	}
	c.proposals[p.V] = p
	if p.V == c.view {
		c.maybeVote(p)
	}
}

// maybeVote applies the chained-HotStuff safety rule: vote if the block
// extends the locked block, or its justify is newer than the lock.
func (c *Core) maybeVote(p *msg.Proposal) {
	if c.voted.Has(p.V) {
		return
	}
	if !c.extends(p.Hash, c.lockedQC.BlockHash) && p.Justify.V <= c.lockedQC.V {
		return
	}
	c.voted.Set(p.V)
	sig := c.signer.Sign(c.stmt.Vote(p.V, &p.Hash))
	c.ep.Send(p.Leader, &msg.Vote{V: p.V, BlockHash: p.Hash, Sig: sig})
}

// extends reports whether the block with hash h has ancestor anc (walking
// at most a bounded number of known parents).
func (c *Core) extends(h, anc Hash) bool {
	cur := h
	for i := 0; i < 1024; i++ {
		if cur == anc {
			return true
		}
		b, ok := c.blocks[cur]
		if !ok || b.View < 0 {
			return false
		}
		cur = b.Parent
	}
	return false
}

func (c *Core) handleVote(from types.NodeID, v *msg.Vote) {
	if v.Sig.Signer != from || c.leading != v.V || c.done {
		return
	}
	if c.suite.Verify(c.stmt.Vote(v.V, &v.BlockHash), v.Sig) != nil {
		return
	}
	c.votes.Add(v.Sig)
	if c.votes.Count() < c.cfg.Base.Quorum() {
		return
	}
	if c.rt.Now() > c.deadline {
		c.done = true // honest-leader QC discipline (§4)
		return
	}
	agg, err := c.suite.Aggregate(c.stmt.Vote(v.V, &v.BlockHash), c.votes.Sigs())
	if err != nil {
		return
	}
	c.done = true
	qc := &msg.QC{V: v.V, BlockHash: v.BlockHash, Agg: agg}
	if c.obs != nil {
		c.obs.OnQCProduced(qc, c.rt.Now())
	}
	c.ep.Broadcast(qc)
}

func (c *Core) verifyQC(qc *msg.QC) bool {
	if qc.V == types.NoView && qc.BlockHash == GenesisHash {
		return true
	}
	return c.suite.VerifyAggregate(c.stmt.Vote(qc.V, &qc.BlockHash), qc.Agg, c.cfg.Base.Quorum()) == nil
}

// observeQC updates highQC/lockedQC and runs the three-chain commit rule.
// QCs for views below the pruning bound stay forgotten: they cannot raise
// highQC, and commits for stragglers are retried via pendingCommit on
// block arrival, so a re-delivered ancient certificate is inert.
func (c *Core) observeQC(qc *msg.QC) {
	if qc.V >= 0 && (qc.V < c.seenQC.Bound() || c.seenQC.Has(qc.V)) {
		return
	}
	if !c.verifyQC(qc) {
		return
	}
	if qc.V >= 0 {
		c.seenQC.Set(qc.V)
		if c.obs != nil {
			c.obs.OnQCSeen(qc, c.rt.Now())
		}
	}
	if qc.V > c.highQC.V {
		c.highQC = qc
	}
	c.qcByHash[qc.BlockHash] = qc
	// Lock rule: lock the parent of a newly certified block.
	b2, ok := c.blocks[qc.BlockHash]
	if ok && b2.View >= 0 {
		if pqc, ok := c.qcByHash[b2.Parent]; ok && pqc.V > c.lockedQC.V {
			c.lockedQC = pqc
		}
		c.tryCommit(b2)
	}
	if c.onQC != nil && qc.V >= 0 {
		c.onQC(qc)
	}
}

// tryCommit applies the chain commit rule: with a certified block heading
// a chain of chainLen blocks at consecutive views, the tail commits
// (three-chain for classic chained HotStuff, two-chain for the HotStuff-2
// style variant). If the rule walk hits a block not yet received, the
// check is deferred until it arrives; if the rule fails definitively
// (non-consecutive views), the head can never trigger a commit.
func (c *Core) tryCommit(head *Block) {
	tail := head
	for i := 1; i < c.cfg.chainLen(); i++ {
		parent, ok := c.blocks[tail.Parent]
		if !ok {
			if head.View > c.lastExec {
				c.pendingCommit[head.HashOf()] = head
				c.requestBlock(tail.Parent)
			}
			return
		}
		if parent.View < 0 || parent.View+1 != tail.View {
			return
		}
		tail = parent
	}
	delete(c.pendingCommit, head.HashOf())
	if tail.View <= c.lastExec {
		return
	}
	c.execChain(tail)
}

// execChain commits b0 and any uncommitted ancestors, oldest first. If an
// ancestor is not locally known yet (its proposal is still in flight),
// execution is deferred rather than committing a gapped chain; the
// arrival of any new block retries (retryPending).
func (c *Core) execChain(b0 *Block) {
	var chain []*Block
	cur := b0
	for cur != nil && cur.View > c.lastExec {
		chain = append(chain, cur)
		next, ok := c.blocks[cur.Parent]
		if !ok {
			c.pendingExec[b0.HashOf()] = b0
			c.requestBlock(cur.Parent)
			return
		}
		cur = next
	}
	delete(c.pendingExec, b0.HashOf())
	for i := len(chain) - 1; i >= 0; i-- {
		b := chain[i]
		if b.View < 0 {
			continue
		}
		c.lastExec = b.View
		c.committed = append(c.committed, b.HashOf())
		for _, cmd := range b.Cmds {
			if c.applied[cmd.ID] {
				continue
			}
			c.applied[cmd.ID] = true
			delete(c.inPool, cmd.ID)
			c.removeFromPool(cmd.ID)
			if c.sm != nil {
				// Execution errors (e.g. insufficient funds)
				// are results, not failures: state machines
				// must handle them deterministically.
				_, _ = c.sm.Apply(cmd.Payload)
			}
		}
		if c.onCommit != nil {
			c.onCommit(b, c.rt.Now())
		}
	}
}

// retryPending re-attempts deferred commit checks and executions after a
// new block arrives. Pending blocks are visited in (view, hash) order,
// never map order: a retry can broadcast a fetch for a missing ancestor,
// and letting Go's randomized map iteration decide whether that message
// is sent before or after lastExec advances would fork the run's RNG
// stream — the same seed would produce different tables run to run.
func (c *Core) retryPending() {
	for _, b := range sortedPending(c.pendingCommit) {
		if b.View > c.lastExec {
			c.tryCommit(b)
		}
	}
	for _, b := range sortedPending(c.pendingExec) {
		if b.View > c.lastExec {
			c.execChain(b)
		}
	}
	for h, b := range c.pendingCommit {
		if b.View <= c.lastExec {
			delete(c.pendingCommit, h)
		}
	}
	for h, b := range c.pendingExec {
		if b.View <= c.lastExec {
			delete(c.pendingExec, h)
		}
	}
}

// sortedPending snapshots a pending-block map in (view, hash) order so
// retry processing is independent of map iteration order.
func sortedPending(m map[Hash]*Block) []*Block {
	if len(m) == 0 {
		return nil
	}
	type entry struct {
		h Hash
		b *Block
	}
	es := make([]entry, 0, len(m))
	for h, b := range m {
		es = append(es, entry{h, b})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].b.View != es[j].b.View {
			return es[i].b.View < es[j].b.View
		}
		return bytes.Compare(es[i].h[:], es[j].h[:]) < 0
	})
	out := make([]*Block, len(es))
	for i, e := range es {
		out[i] = e.b
	}
	return out
}

func (c *Core) removeFromPool(id uint64) {
	for i, cmd := range c.mempool {
		if cmd.ID == id {
			c.mempool = append(c.mempool[:i], c.mempool[i+1:]...)
			return
		}
	}
}

// pruneBelow bounds per-view bookkeeping; block/QC maps retain recent
// history for parent walks and late commits.
func (c *Core) pruneBelow(v types.View) {
	low := v - 4
	for w := range c.proposals {
		if w < low {
			delete(c.proposals, w)
		}
	}
	c.voted.ForgetBelow(low)
	// Old blocks below the executed prefix can be dropped once far
	// behind; keep a generous window for stragglers.
	if len(c.blocks) > 4096 {
		cut := c.lastExec - 1024
		for h, b := range c.blocks {
			if b.View >= 0 && b.View < cut {
				delete(c.blocks, h)
				delete(c.qcByHash, h)
			}
		}
	}
	c.seenQC.ForgetBelow(low - 4)
}
