package hotstuff

import (
	"bytes"
	"testing"
)

// FuzzDecodeBlock hardens the block codec against malformed wire input:
// it must never panic, and valid round-trips must be stable.
func FuzzDecodeBlock(f *testing.F) {
	seed := &Block{
		View:   3,
		Parent: GenesisHash,
		Cmds:   []Command{{ID: 1, Payload: []byte("SET a 1")}, {ID: 2}},
	}
	f.Add(seed.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlock(data)
		if err != nil {
			return
		}
		// A successfully decoded block must re-encode to something
		// that decodes to the same hash.
		again, err := DecodeBlock(b.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.HashOf() != b.HashOf() {
			t.Fatal("hash not stable across round trip")
		}
	})
}
