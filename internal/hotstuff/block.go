// Package hotstuff implements chained HotStuff, the view-based BFT SMR
// protocol the paper's view synchronization work targets (HotStuff
// introduced the decoupled "PaceMaker" that Lumiere instantiates). One
// block is proposed per view and certified by a QC of 2f+1 votes; a block
// commits when it heads a three-chain of consecutive views. Any pacemaker
// in this repository can drive it through the replica.Engine interface.
package hotstuff

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"lumiere/internal/types"
)

// Hash is a block hash.
type Hash = [32]byte

// GenesisHash anchors every chain; the genesis block has view -1.
var GenesisHash = sha256.Sum256([]byte("lumiere/hotstuff/genesis"))

// Command is one client request carried in a block.
type Command struct {
	ID      uint64
	Payload []byte
}

// Block is a proposal payload: a batch of commands extending a parent.
type Block struct {
	View   types.View
	Parent Hash
	Cmds   []Command
}

// ErrBadBlock reports a malformed block encoding.
var ErrBadBlock = errors.New("hotstuff: malformed block")

// Encode serializes the block canonically (length-prefixed fields), so
// hashes are stable across runtimes.
func (b *Block) Encode() []byte {
	var buf bytes.Buffer
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf.Write(scratch[:])
	}
	putU64(uint64(b.View))
	buf.Write(b.Parent[:])
	putU64(uint64(len(b.Cmds)))
	for _, c := range b.Cmds {
		putU64(c.ID)
		putU64(uint64(len(c.Payload)))
		buf.Write(c.Payload)
	}
	return buf.Bytes()
}

// DecodeBlock parses an encoded block.
func DecodeBlock(data []byte) (*Block, error) {
	r := bytes.NewReader(data)
	var scratch [8]byte
	getU64 := func() (uint64, error) {
		if _, err := r.Read(scratch[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadBlock, err)
		}
		return binary.BigEndian.Uint64(scratch[:]), nil
	}
	view, err := getU64()
	if err != nil {
		return nil, err
	}
	b := &Block{View: types.View(view)}
	if _, err := r.Read(b.Parent[:]); err != nil {
		return nil, fmt.Errorf("%w: parent: %v", ErrBadBlock, err)
	}
	n, err := getU64()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: absurd command count %d", ErrBadBlock, n)
	}
	b.Cmds = make([]Command, 0, n)
	for i := uint64(0); i < n; i++ {
		id, err := getU64()
		if err != nil {
			return nil, err
		}
		plen, err := getU64()
		if err != nil {
			return nil, err
		}
		if plen > 1<<24 {
			return nil, fmt.Errorf("%w: absurd payload size %d", ErrBadBlock, plen)
		}
		payload := make([]byte, plen)
		if plen > 0 {
			if _, err := r.Read(payload); err != nil {
				return nil, fmt.Errorf("%w: payload: %v", ErrBadBlock, err)
			}
		}
		b.Cmds = append(b.Cmds, Command{ID: id, Payload: payload})
	}
	return b, nil
}

// HashOf returns the block's hash.
func (b *Block) HashOf() Hash { return sha256.Sum256(b.Encode()) }
