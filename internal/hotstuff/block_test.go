package hotstuff

import (
	"bytes"
	"testing"
	"testing/quick"

	"lumiere/internal/types"
)

func TestBlockRoundTrip(t *testing.T) {
	b := &Block{
		View:   7,
		Parent: GenesisHash,
		Cmds: []Command{
			{ID: 1, Payload: []byte("SET a 1")},
			{ID: 2, Payload: nil},
			{ID: 3, Payload: []byte{0, 0xff, 0x7f}},
		},
	}
	enc := b.Encode()
	got, err := DecodeBlock(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.View != b.View || got.Parent != b.Parent || len(got.Cmds) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range b.Cmds {
		if got.Cmds[i].ID != b.Cmds[i].ID || !bytes.Equal(got.Cmds[i].Payload, b.Cmds[i].Payload) {
			t.Fatalf("cmd %d mismatch", i)
		}
	}
	if got.HashOf() != b.HashOf() {
		t.Fatal("hash changed across round trip")
	}
}

func TestBlockRoundTripQuick(t *testing.T) {
	f := func(view int64, id uint64, payload []byte) bool {
		b := &Block{View: types.View(view), Parent: GenesisHash,
			Cmds: []Command{{ID: id, Payload: payload}}}
		got, err := DecodeBlock(b.Encode())
		if err != nil {
			return false
		}
		return got.HashOf() == b.HashOf()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 48), // absurd command count
	}
	for i, c := range cases {
		if _, err := DecodeBlock(c); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
}

func TestHashDistinguishesBlocks(t *testing.T) {
	a := &Block{View: 1, Parent: GenesisHash}
	b := &Block{View: 2, Parent: GenesisHash}
	if a.HashOf() == b.HashOf() {
		t.Fatal("distinct blocks share a hash")
	}
	c := &Block{View: 1, Parent: GenesisHash, Cmds: []Command{{ID: 1}}}
	if a.HashOf() == c.HashOf() {
		t.Fatal("commands not hashed")
	}
}
