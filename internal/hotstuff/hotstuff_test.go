package hotstuff

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/sim"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
)

// rig wires n HotStuff cores over a simulated network with a trivial
// chaining pacemaker: every observed QC enters the next view and starts
// its leader immediately (pure responsiveness, no clocks).
type rig struct {
	sched *sim.Scheduler
	cores []*Core
	kvs   []*statemachine.KV
	cfg   types.Config
}

func newRig(t *testing.T, f int, delay time.Duration, twoPhase bool) *rig {
	t.Helper()
	cfg := types.NewConfig(f, 100*time.Millisecond)
	r := &rig{sched: sim.New(1), cfg: cfg}
	net := network.NewNet(r.sched, cfg, 0, network.Fixed{D: delay})
	suite := crypto.NewSimSuite(cfg.N, 2)
	leader := func(v types.View) types.NodeID { return types.NodeID(v % types.View(cfg.N)) }
	r.cores = make([]*Core, cfg.N)
	r.kvs = make([]*statemachine.KV, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		ep := net.Attach(types.NodeID(i), network.HandlerFunc(func(from types.NodeID, m msg.Message) {
			r.cores[i].Handle(from, m)
		}))
		r.kvs[i] = statemachine.NewKV()
		r.cores[i] = New(Config{Base: cfg, TwoPhase: twoPhase}, ep, r.sched, suite, leader,
			func(qc *msg.QC) {
				next := qc.V + 1
				r.cores[i].EnterView(next)
				r.cores[i].LeaderStart(next, types.TimeInf)
			}, r.kvs[i], nil, nil)
	}
	return r
}

func (r *rig) start() {
	for _, c := range r.cores {
		c.EnterView(0)
	}
	r.cores[0].LeaderStart(0, types.TimeInf)
}

func TestChainCommitsAndExecutes(t *testing.T) {
	r := newRig(t, 1, time.Millisecond, false)
	for i := 0; i < 10; i++ {
		r.cores[0].Submit([]byte(fmt.Sprintf("SET k%d v%d", i, i)))
	}
	r.start()
	r.sched.RunFor(time.Second)
	for i, c := range r.cores {
		if c.CommittedCount() < 10 {
			t.Fatalf("core %d committed %d blocks", i, c.CommittedCount())
		}
	}
	// Commands submitted at node 0 executed everywhere (node 0 was the
	// first leader and batched them).
	for i, kv := range r.kvs {
		if v, ok := kv.Get("k9"); !ok || v != "v9" {
			t.Fatalf("kv %d missing k9 (have %d keys)", i, kv.Len())
		}
	}
	// Logs identical.
	ref := r.cores[0].CommittedHashes()
	for i := 1; i < len(r.cores); i++ {
		l := r.cores[i].CommittedHashes()
		n := len(ref)
		if len(l) < n {
			n = len(l)
		}
		for j := 0; j < n; j++ {
			if l[j] != ref[j] {
				t.Fatalf("logs diverge at %d", j)
			}
		}
	}
}

func TestCommitLagThreeVsTwoChain(t *testing.T) {
	run := func(twoPhase bool) (highView types.View, committed int) {
		r := newRig(t, 1, time.Millisecond, twoPhase)
		r.start()
		r.sched.RunFor(200 * time.Millisecond)
		return r.cores[0].HighView(), r.cores[0].CommittedCount()
	}
	h3, c3 := run(false)
	h2, c2 := run(true)
	// With a QC for view v, the three-chain rule has executed views
	// 0..v-2 (v-1 blocks) and the two-chain rule 0..v-1 (v blocks).
	if int(h3)-c3 != 1 {
		t.Fatalf("three-chain: highView=%d committed=%d, want lag 1 block", h3, c3)
	}
	if int(h2)-c2 != 0 {
		t.Fatalf("two-chain: highView=%d committed=%d, want lag 0 blocks", h2, c2)
	}
}

func TestVoteRefusesNonExtendingOldJustify(t *testing.T) {
	r := newRig(t, 1, time.Millisecond, false)
	r.start()
	r.sched.RunFor(time.Second) // locks well above genesis
	core := r.cores[1]
	locked := core.lockedQC
	if locked.V < 1 {
		t.Fatal("no lock formed")
	}
	// A proposal extending genesis with the genesis justify: violates
	// the safety rule (doesn't extend the lock, justify not newer).
	v := core.view + 1
	core.EnterView(v)
	block := &Block{View: v, Parent: GenesisHash}
	genesisQC := &msg.QC{V: types.NoView, BlockHash: GenesisHash}
	core.handleProposal(types.NodeID(v%types.View(r.cfg.N)), &msg.Proposal{
		V:       v,
		Leader:  types.NodeID(v % types.View(r.cfg.N)),
		Justify: genesisQC,
		Block:   block.Encode(),
		Hash:    block.HashOf(),
	})
	if core.voted.Has(v) {
		t.Fatal("voted for a proposal violating the safety rule")
	}
}

func TestLateProposalStoredButNotVoted(t *testing.T) {
	r := newRig(t, 1, time.Millisecond, false)
	r.start()
	r.sched.RunFor(100 * time.Millisecond)
	core := r.cores[1]
	// Craft a valid proposal for an old view extending genesis (as the
	// view-0 leader legitimately did); it must be stored, not voted.
	old := &Block{View: 0, Parent: GenesisHash, Cmds: []Command{{ID: 42}}}
	genesisQC := &msg.QC{V: types.NoView, BlockHash: GenesisHash}
	before := core.voted.Has(0)
	core.handleProposal(0, &msg.Proposal{
		V: 0, Leader: 0, Justify: genesisQC, Block: old.Encode(), Hash: old.HashOf(),
	})
	if _, ok := core.blocks[old.HashOf()]; !ok {
		t.Fatal("late proposal's block not stored")
	}
	if !before && core.voted.Has(0) {
		t.Fatal("voted for a stale view")
	}
}

func TestPendingExecDefersUntilAncestorArrives(t *testing.T) {
	r := newRig(t, 1, time.Millisecond, false)
	core := r.cores[0]
	// Build a private 3-chain b0←b1←b2 of consecutive views with a QC
	// for b2, but withhold b0 from the core.
	suite := crypto.NewSimSuite(r.cfg.N, 2)
	qcFor := func(b *Block) *msg.QC {
		h := b.HashOf()
		var sigs []crypto.Signature
		for i := 0; i < r.cfg.Quorum(); i++ {
			sigs = append(sigs, suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(b.View, h)))
		}
		agg, err := suite.Aggregate(msg.VoteStatement(b.View, h), sigs)
		if err != nil {
			t.Fatal(err)
		}
		return &msg.QC{V: b.View, BlockHash: h, Agg: agg}
	}
	b0 := &Block{View: 0, Parent: GenesisHash, Cmds: []Command{{ID: 7, Payload: []byte("SET x 1")}}}
	b1 := &Block{View: 1, Parent: b0.HashOf()}
	b2 := &Block{View: 2, Parent: b1.HashOf()}
	core.blocks[b1.HashOf()] = b1
	core.blocks[b2.HashOf()] = b2
	core.qcByHash[b0.HashOf()] = qcFor(b0)
	core.qcByHash[b1.HashOf()] = qcFor(b1)
	core.observeQC(qcFor(b2))
	if core.CommittedCount() != 0 {
		t.Fatal("committed a chain with a missing ancestor")
	}
	if len(core.pendingExec)+len(core.pendingCommit) == 0 {
		t.Fatal("execution not deferred")
	}
	// The missing ancestor arrives (late proposal path).
	core.blocks[b0.HashOf()] = b0
	core.retryPending()
	if core.CommittedCount() != 1 {
		t.Fatalf("deferred commit not executed: %d", core.CommittedCount())
	}
	if v, ok := r.kvs[0].Get("x"); !ok || v != "1" {
		t.Fatal("deferred command not applied")
	}
}

func TestLeaderDeadlineDiscipline(t *testing.T) {
	r := newRig(t, 1, 10*time.Millisecond, false)
	for _, c := range r.cores {
		c.EnterView(0)
	}
	// Deadline in the past relative to vote arrival (~2δ = 20ms).
	r.cores[0].LeaderStart(0, r.sched.Now().Add(5*time.Millisecond))
	r.sched.RunFor(time.Second)
	if r.cores[0].CommittedCount() != 0 || r.cores[0].HighView() >= 0 {
		t.Fatal("leader produced a QC past its deadline")
	}
}

func TestMempoolDedupeAndDrainOnCommit(t *testing.T) {
	r := newRig(t, 1, time.Millisecond, false)
	core := r.cores[0]
	core.Handle(1, &msg.Request{ID: 5, Payload: []byte("SET a 1")})
	core.Handle(2, &msg.Request{ID: 5, Payload: []byte("SET a 1")}) // duplicate
	if core.MempoolLen() != 1 {
		t.Fatalf("mempool = %d, want deduped 1", core.MempoolLen())
	}
	r.start()
	r.sched.RunFor(time.Second)
	if core.MempoolLen() != 0 {
		t.Fatalf("mempool not drained after commit: %d", core.MempoolLen())
	}
	// Re-submitting an applied command is a no-op.
	core.Handle(1, &msg.Request{ID: 5, Payload: []byte("SET a 1")})
	if core.MempoolLen() != 0 {
		t.Fatal("applied command re-entered the mempool")
	}
}

func TestForgedQCRejected(t *testing.T) {
	r := newRig(t, 1, time.Millisecond, false)
	core := r.cores[0]
	var h Hash
	core.observeQC(&msg.QC{V: 3, BlockHash: h}) // empty aggregate
	if core.HighView() >= 0 {
		t.Fatal("unverifiable QC accepted")
	}
}
