package redteam

import (
	"math/rand"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/harness"
)

// Space is a finite search space: a choice list per candidate axis.
// Empty lists mean "axis pinned at zero". Enumeration and mutation are
// axis-aware — K only varies under leader-target, Period only under
// view-desync/complexity-saturate, the loss/partition/churn sub-axes
// only when their master axis is on — so the grid contains no
// redundant duplicates and mutations always land in the space.
type Space struct {
	// F is the fault tolerance every candidate runs at (n = 3f+1).
	F int
	// Strategies are the attack strategies to cross in (may include ""
	// for chaos-only candidates).
	Strategies []string
	// Nodes, Ks and Periods are the AttackSpec axes.
	Nodes   []int
	Ks      []int
	Periods []time.Duration
	// GSTs places the global stabilization time.
	GSTs []time.Duration
	// Losses, LossUntils, Duplications and ReorderJitters are the
	// message-chaos axes.
	Losses         []float64
	LossUntils     []time.Duration
	Duplications   []float64
	ReorderJitters []time.Duration
	// PartitionSizes and PartitionHeals are the partition axes.
	PartitionSizes []int
	PartitionHeals []time.Duration
	// ChurnNodes, ChurnDowns and ChurnPeriods are the crash-recovery
	// churn axes.
	ChurnNodes   []int
	ChurnDowns   []time.Duration
	ChurnPeriods []time.Duration
	// WANs is the deployment axis: topology preset, clock drift and
	// straggler are one joint choice list rather than three crossed axes,
	// keeping the grid growth linear in the number of deployments.
	WANs []WAN
}

// WAN is one deployment choice of the WANs axis: a topology preset
// (harness.WANPresets or empty), a ± clock-drift rate and a straggler
// processing delay. The zero WAN is the uniform fast network, so spaces
// listing it keep every topology-free candidate (ScriptedCandidates
// stay grid members).
type WAN struct {
	Topology  string
	DriftPPM  int64
	Straggler time.Duration
}

// orInts returns xs, or the pinned-zero singleton when empty.
func orInts(xs []int) []int {
	if len(xs) == 0 {
		return []int{0}
	}
	return xs
}

func orDurs(xs []time.Duration) []time.Duration {
	if len(xs) == 0 {
		return []time.Duration{0}
	}
	return xs
}

func orFloats(xs []float64) []float64 {
	if len(xs) == 0 {
		return []float64{0}
	}
	return xs
}

func orWANs(xs []WAN) []WAN {
	if len(xs) == 0 {
		return []WAN{{}}
	}
	return xs
}

// usesK reports whether the strategy consumes the K axis; usesPeriod
// likewise for Period.
func usesK(strategy string) bool { return strategy == adversary.AttackLeaderTarget }

func usesPeriod(strategy string) bool {
	return strategy == adversary.AttackViewDesync || strategy == adversary.AttackSaturate
}

// Candidates enumerates the space's grid in deterministic order. Axes a
// combination does not consume collapse to zero (no duplicates), and
// combinations whose strategic plus churned processors would exceed F
// are skipped.
func (sp Space) Candidates() []Candidate {
	var out []Candidate
	strategies := sp.Strategies
	if len(strategies) == 0 {
		strategies = []string{""}
	}
	for _, strat := range strategies {
		nodes, ks, periods := orInts(sp.Nodes), []int{0}, []time.Duration{0}
		if strat == "" {
			nodes = []int{0}
		}
		if usesK(strat) {
			ks = orInts(sp.Ks)
		}
		if usesPeriod(strat) {
			periods = orDurs(sp.Periods)
		}
		for _, n := range nodes {
			for _, k := range ks {
				for _, per := range periods {
					for _, gst := range orDurs(sp.GSTs) {
						out = sp.chaosCross(out, Candidate{
							Strategy: strat, Nodes: n, K: k, Period: per, GST: gst,
						})
					}
				}
			}
		}
	}
	return out
}

// chaosCross appends base crossed with every legal chaos combination.
func (sp Space) chaosCross(out []Candidate, base Candidate) []Candidate {
	for _, loss := range orFloats(sp.Losses) {
		lus := []time.Duration{0}
		if loss > 0 {
			lus = orDurs(sp.LossUntils)
		}
		for _, lu := range lus {
			for _, dup := range orFloats(sp.Duplications) {
				for _, rj := range orDurs(sp.ReorderJitters) {
					for _, ps := range orInts(sp.PartitionSizes) {
						phs := []time.Duration{0}
						if ps > 0 {
							phs = orDurs(sp.PartitionHeals)
						}
						for _, ph := range phs {
							for _, cn := range orInts(sp.ChurnNodes) {
								if base.Nodes+cn > sp.F {
									continue
								}
								cds, cps := []time.Duration{0}, []time.Duration{0}
								if cn > 0 {
									cds, cps = orDurs(sp.ChurnDowns), orDurs(sp.ChurnPeriods)
								}
								for _, cd := range cds {
									for _, cp := range cps {
										for _, w := range orWANs(sp.WANs) {
											c := base
											c.Loss, c.LossUntil = loss, lu
											c.Duplication, c.ReorderJitter = dup, rj
											c.PartitionSize, c.PartitionHeal = ps, ph
											c.ChurnNodes, c.ChurnDown, c.ChurnPeriod = cn, cd, cp
											c.Topology, c.DriftPPM, c.Straggler = w.Topology, w.DriftPPM, w.Straggler
											out = append(out, c.Legalize(sp.F))
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Mutate moves the candidate one step along a random axis of the space
// (all randomness from rng) and returns the legalized result. Mutations
// stay in-space: the new axis value is drawn from the axis's choice
// list.
func (sp Space) Mutate(c Candidate, rng *rand.Rand) Candidate {
	type op func(*Candidate)
	var ops []op
	if len(sp.Strategies) > 1 {
		ops = append(ops, func(d *Candidate) {
			d.Strategy = sp.Strategies[rng.Intn(len(sp.Strategies))]
			if d.Strategy != "" && d.Nodes == 0 {
				d.Nodes = orInts(sp.Nodes)[rng.Intn(len(orInts(sp.Nodes)))]
			}
			if usesK(d.Strategy) && d.K == 0 {
				d.K = orInts(sp.Ks)[rng.Intn(len(orInts(sp.Ks)))]
			}
			if usesPeriod(d.Strategy) && d.Period == 0 {
				d.Period = orDurs(sp.Periods)[rng.Intn(len(orDurs(sp.Periods)))]
			}
		})
	}
	if len(sp.Nodes) > 1 {
		ops = append(ops, func(d *Candidate) { d.Nodes = sp.Nodes[rng.Intn(len(sp.Nodes))] })
	}
	if len(sp.Ks) > 1 {
		ops = append(ops, func(d *Candidate) { d.K = sp.Ks[rng.Intn(len(sp.Ks))] })
	}
	if len(sp.Periods) > 1 {
		ops = append(ops, func(d *Candidate) { d.Period = sp.Periods[rng.Intn(len(sp.Periods))] })
	}
	if len(sp.GSTs) > 1 {
		ops = append(ops, func(d *Candidate) { d.GST = sp.GSTs[rng.Intn(len(sp.GSTs))] })
	}
	if len(sp.Losses) > 1 {
		ops = append(ops, func(d *Candidate) { d.Loss = sp.Losses[rng.Intn(len(sp.Losses))] })
	}
	if len(sp.LossUntils) > 1 {
		ops = append(ops, func(d *Candidate) { d.LossUntil = sp.LossUntils[rng.Intn(len(sp.LossUntils))] })
	}
	if len(sp.Duplications) > 1 {
		ops = append(ops, func(d *Candidate) { d.Duplication = sp.Duplications[rng.Intn(len(sp.Duplications))] })
	}
	if len(sp.ReorderJitters) > 1 {
		ops = append(ops, func(d *Candidate) { d.ReorderJitter = sp.ReorderJitters[rng.Intn(len(sp.ReorderJitters))] })
	}
	if len(sp.PartitionSizes) > 1 {
		ops = append(ops, func(d *Candidate) {
			d.PartitionSize = sp.PartitionSizes[rng.Intn(len(sp.PartitionSizes))]
			if d.PartitionSize > 0 && d.PartitionHeal == 0 && len(sp.PartitionHeals) > 0 {
				d.PartitionHeal = sp.PartitionHeals[rng.Intn(len(sp.PartitionHeals))]
			}
		})
	}
	if len(sp.PartitionHeals) > 1 {
		ops = append(ops, func(d *Candidate) { d.PartitionHeal = sp.PartitionHeals[rng.Intn(len(sp.PartitionHeals))] })
	}
	if len(sp.ChurnNodes) > 1 {
		ops = append(ops, func(d *Candidate) { d.ChurnNodes = sp.ChurnNodes[rng.Intn(len(sp.ChurnNodes))] })
	}
	if len(sp.ChurnDowns) > 1 {
		ops = append(ops, func(d *Candidate) { d.ChurnDown = sp.ChurnDowns[rng.Intn(len(sp.ChurnDowns))] })
	}
	if len(sp.ChurnPeriods) > 1 {
		ops = append(ops, func(d *Candidate) { d.ChurnPeriod = sp.ChurnPeriods[rng.Intn(len(sp.ChurnPeriods))] })
	}
	if len(sp.WANs) > 1 {
		ops = append(ops, func(d *Candidate) {
			w := sp.WANs[rng.Intn(len(sp.WANs))]
			d.Topology, d.DriftPPM, d.Straggler = w.Topology, w.DriftPPM, w.Straggler
		})
	}
	if len(ops) == 0 {
		return c.Legalize(sp.F)
	}
	ops[rng.Intn(len(ops))](&c)
	return c.Legalize(sp.F)
}

// DefaultSpace is the reference search space at fault tolerance f: every
// strategy (plus chaos-only), small and maximal strategy-node counts,
// three silence/spam periods, two GST placements, loss, partition and
// churn compositions, and four WAN deployments (uniform, wan3, a
// drifting hub, and a drifting straggler on the fast network). It
// contains every ScriptedCandidates point (the zero WAN choice). Its
// grid stays in the low thousands of cells per protocol — small enough
// that a full-objective search runs in minutes on the sweep engine.
func DefaultSpace(f int) Space {
	d := harness.AttackDelta
	return Space{
		F:              f,
		Strategies:     append([]string{""}, adversary.AttackNames()...),
		Nodes:          dedupInts(1, f),
		Ks:             dedupInts(1, f),
		Periods:        []time.Duration{d, 5 * d, 20 * d},
		GSTs:           []time.Duration{500 * time.Millisecond, 2 * time.Second},
		Losses:         []float64{0, 0.3},
		PartitionSizes: []int{0, f + 1},
		PartitionHeals: []time.Duration{0, 3 * time.Second},
		ChurnNodes:     []int{0, 1},
		ChurnDowns:     []time.Duration{10 * d},
		ChurnPeriods:   []time.Duration{2 * time.Second},
		WANs: []WAN{
			{},
			{Topology: "wan3"},
			{Topology: "hub", DriftPPM: 10_000},
			{DriftPPM: maxDriftPPM, Straggler: d},
		},
	}
}

// SlimSpace is the reduced space the p99-commit objective searches: SMR
// cells cost an order of magnitude more wall-clock than plain sync
// cells, so the workload objective crosses strategies with loss and a
// single WAN coin (the degraded preset — slow inter-region links plus a
// slow region). It still contains every ScriptedCandidates point.
func SlimSpace(f int) Space {
	d := harness.AttackDelta
	return Space{
		F:          f,
		Strategies: append([]string{""}, adversary.AttackNames()...),
		Nodes:      dedupInts(1, f),
		Ks:         []int{f},
		Periods:    []time.Duration{d, 20 * d},
		GSTs:       []time.Duration{2 * time.Second},
		Losses:     []float64{0, 0.3},
		WANs:       []WAN{{}, {Topology: "degraded"}},
	}
}

// SmokeSpace is the tiny space the CI smoke job, the determinism suite
// and BenchmarkRedTeamGrid grid over: every strategy at one node with
// one parameter choice, crossed with a loss coin and a WAN coin.
func SmokeSpace(f int) Space {
	d := harness.AttackDelta
	return Space{
		F:          f,
		Strategies: append([]string{""}, adversary.AttackNames()...),
		Nodes:      []int{1},
		Ks:         []int{1},
		Periods:    []time.Duration{20 * d},
		GSTs:       []time.Duration{time.Second},
		Losses:     []float64{0, 0.25},
		WANs:       []WAN{{}, {Topology: "wan3", DriftPPM: 10_000}},
	}
}

// dedupInts returns {a, b}, collapsed when equal.
func dedupInts(a, b int) []int {
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}
