package redteam

import (
	"math/rand"
	"testing"

	"lumiere/internal/harness"
)

// smokeProtocols are the two protocols the CI smoke job greps for: the
// paper's protagonist and its closest O(n²) baseline.
var smokeProtocols = []harness.Protocol{harness.ProtoLP22, harness.ProtoLumiere}

// TestSpaceContainsScripted pins the dominance-by-construction
// property: every scripted PR 4 attack point is a member of both
// reference spaces, so any searched frontier value is ≥ the scripted
// corpus for free.
func TestSpaceContainsScripted(t *testing.T) {
	for _, f := range []int{1, 2, 3} {
		for _, sp := range []Space{DefaultSpace(f), SlimSpace(f)} {
			keys := map[string]bool{}
			for _, c := range sp.Candidates() {
				keys[c.Key()] = true
			}
			for _, c := range ScriptedCandidates(f) {
				lc := c.Legalize(f)
				if lc.Key() != c.Key() {
					t.Errorf("f=%d: scripted candidate %s not in legalized form", f, c)
				}
				if !keys[lc.Key()] {
					t.Errorf("f=%d: scripted candidate %s missing from space grid", f, c)
				}
			}
		}
	}
}

// TestCandidateSeedStable pins the seed derivation: equal candidates
// get equal seeds, different candidates (or search seeds) different
// ones — the property that makes every evaluation reproducible
// anywhere.
func TestCandidateSeedStable(t *testing.T) {
	a := ScriptedCandidates(2)[0]
	b := ScriptedCandidates(2)[1]
	if CandidateSeed(1, a) != CandidateSeed(1, a) {
		t.Fatal("seed not stable")
	}
	if CandidateSeed(1, a) == CandidateSeed(1, b) {
		t.Fatal("distinct candidates share a seed")
	}
	if CandidateSeed(1, a) == CandidateSeed(2, a) {
		t.Fatal("distinct search seeds share a candidate seed")
	}
}

// TestLegalizeIdempotent pins Legalize as a normal form: legalizing a
// legalized candidate is the identity, and the strategic + churned
// processor budget never exceeds f.
func TestLegalizeIdempotent(t *testing.T) {
	wild := Candidate{
		Strategy: "view-desync", Nodes: 99, K: 99, Period: 400 * 1e9,
		GST: 99 * 1e9, Loss: 7, LossUntil: 99 * 1e9, Duplication: -3,
		PartitionSize: 99, ChurnNodes: 99,
	}
	for _, f := range []int{1, 2, 3} {
		c := wild.Legalize(f)
		if again := c.Legalize(f); again.Key() != c.Key() {
			t.Errorf("f=%d: Legalize not idempotent: %s vs %s", f, c.Key(), again.Key())
		}
		if c.Nodes+c.ChurnNodes > f {
			t.Errorf("f=%d: corrupted budget exceeded: nodes=%d churn=%d", f, c.Nodes, c.ChurnNodes)
		}
	}
}

// TestRedTeamGridSmoke is the CI smoke search: the two smoke protocols
// over the tiny space, under every objective's evaluator — every cell
// must produce its objective event (the candidates are all model-legal)
// and the grid must be byte-identical at workers 1 vs 4.
func TestRedTeamGridSmoke(t *testing.T) {
	sp := SmokeSpace(1)
	cands := sp.Candidates()
	objectives := []Objective{ObjSyncLatency, ObjWGSTWords}
	if !testing.Short() {
		objectives = Objectives()
	}
	for _, p := range smokeProtocols {
		for _, obj := range objectives {
			serial := NewEvaluator(p, sp.F, obj, 9).EvalAll(cands, 1)
			pool := NewEvaluator(p, sp.F, obj, 9).EvalAll(cands, 4)
			for i := range serial {
				if serial[i] != pool[i] {
					t.Fatalf("%s/%s: cell %d differs across worker counts: %+v vs %+v",
						p, obj, i, serial[i], pool[i])
				}
				if !serial[i].Decided {
					t.Errorf("%s/%s: candidate %s stalled (value %.2f)",
						p, obj, serial[i].Candidate, serial[i].Value)
				}
			}
			best := Best(serial)
			if best.Value <= 0 {
				t.Errorf("%s/%s: degenerate frontier value %.3f", p, obj, best.Value)
			}
		}
	}
}

// TestEvolveDeterministicAcrossWorkers pins the evolutionary driver:
// same seed ⇒ identical trajectory (every evaluation, in order) at any
// worker count.
func TestEvolveDeterministicAcrossWorkers(t *testing.T) {
	sp := SmokeSpace(1)
	opts := EvolveOptions{Generations: 2, Population: 6}
	run := func(workers int) []Evaluated {
		e := NewEvaluator(harness.ProtoLumiere, sp.F, ObjSyncLatency, 11)
		o := opts
		o.Workers = workers
		return Evolve(sp, e, ScriptedCandidates(sp.F), o)
	}
	serial, pool := run(1), run(4)
	if len(serial) != len(pool) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(serial), len(pool))
	}
	for i := range serial {
		if serial[i] != pool[i] {
			t.Fatalf("evolution step %d differs across worker counts: %+v vs %+v", i, serial[i], pool[i])
		}
	}
}

// TestMutateStaysLegal drives the mutation operator hard and checks
// closure: mutants stay within the model budget and legalized form.
func TestMutateStaysLegal(t *testing.T) {
	sp := DefaultSpace(2)
	rng := rand.New(rand.NewSource(7))
	c := Candidate{}
	for i := 0; i < 2000; i++ {
		c = sp.Mutate(c, rng)
		if c.Legalize(sp.F).Key() != c.Key() {
			t.Fatalf("mutant %d not in legalized form: %s", i, c.Key())
		}
		if c.Nodes+c.ChurnNodes > sp.F {
			t.Fatalf("mutant %d exceeds corruption budget: %s", i, c.Key())
		}
	}
}
