package redteam

import (
	"math/rand"
	"sort"

	"lumiere/internal/harness"
)

// Evaluated is one candidate's evaluation under an objective.
type Evaluated struct {
	// Candidate is the evaluated point (legalized).
	Candidate Candidate `json:"candidate"`
	// Seed is the evaluation seed (CandidateSeed of the search seed and
	// the candidate).
	Seed int64 `json:"seed"`
	// Value is the objective value; Decided reports whether the run
	// produced the objective's event (see Measure).
	Value   float64 `json:"value"`
	Decided bool    `json:"decided"`
}

// Evaluator evaluates candidates for one (protocol, f, objective,
// search seed) context. Evaluation is a pure function of the candidate:
// the scenario seed derives from (SearchSeed, candidate key), so values
// are independent of evaluation order, caching and worker count. The
// evaluator memoizes by candidate key — grid, evolution and
// minimization share evaluations for free.
type Evaluator struct {
	Protocol   harness.Protocol
	F          int
	Obj        Objective
	SearchSeed int64

	arena *harness.Arena
	cache map[string]Evaluated
}

// NewEvaluator builds an evaluator for one search context.
func NewEvaluator(p harness.Protocol, f int, obj Objective, searchSeed int64) *Evaluator {
	return &Evaluator{Protocol: p, F: f, Obj: obj, SearchSeed: searchSeed, cache: map[string]Evaluated{}}
}

// Eval evaluates one candidate serially (the minimizer's probe path),
// recycling the evaluator's private arena.
func (e *Evaluator) Eval(c Candidate) Evaluated {
	c = c.Legalize(e.F)
	k := c.Key()
	if ev, ok := e.cache[k]; ok {
		return ev
	}
	if e.arena == nil {
		e.arena = harness.NewArena()
	}
	seed := CandidateSeed(e.SearchSeed, c)
	res := harness.RunIn(e.arena, c.Scenario(e.Protocol, e.F, e.Obj, seed))
	val, dec := Measure(res, e.Obj)
	ev := Evaluated{Candidate: c, Seed: seed, Value: val, Decided: dec}
	e.cache[k] = ev
	return ev
}

// EvalAll evaluates a candidate batch on the sweep engine (one arena
// per worker, results in input order). Candidates already in the cache
// cost nothing; the rest run in parallel with their candidate-derived
// seeds, so the returned values are byte-identical at any worker count.
func (e *Evaluator) EvalAll(cands []Candidate, workers int) []Evaluated {
	legal := make([]Candidate, len(cands))
	var todo []Candidate
	pending := map[string]bool{}
	for i, c := range cands {
		lc := c.Legalize(e.F)
		legal[i] = lc
		k := lc.Key()
		if _, ok := e.cache[k]; !ok && !pending[k] {
			pending[k] = true
			todo = append(todo, lc)
		}
	}
	if len(todo) > 0 {
		scenarios := make([]harness.Scenario, len(todo))
		for i, c := range todo {
			scenarios[i] = c.Scenario(e.Protocol, e.F, e.Obj, CandidateSeed(e.SearchSeed, c))
		}
		sr := harness.Sweep(scenarios, harness.SweepOptions{Workers: workers, KeepSeeds: true})
		for i := range sr.Cells {
			val, dec := Measure(sr.Cells[i].Result, e.Obj)
			e.cache[todo[i].Key()] = Evaluated{
				Candidate: todo[i], Seed: sr.Cells[i].Scenario.Seed, Value: val, Decided: dec,
			}
		}
	}
	out := make([]Evaluated, len(legal))
	for i := range legal {
		out[i] = e.cache[legal[i].Key()]
	}
	return out
}

// Evaluations returns the number of distinct candidates evaluated.
func (e *Evaluator) Evaluations() int { return len(e.cache) }

// Best returns the maximum of the evaluations under the search's total
// order: value descending, candidate key ascending as the
// deterministic tie-break. It panics on an empty slice.
func Best(evals []Evaluated) Evaluated {
	best := evals[0]
	for _, ev := range evals[1:] {
		if better(ev, best) {
			best = ev
		}
	}
	return best
}

// better reports whether a precedes b in the search order.
func better(a, b Evaluated) bool {
	if a.Value != b.Value {
		return a.Value > b.Value
	}
	return a.Candidate.Key() < b.Candidate.Key()
}

// Grid evaluates the space's full grid and returns the evaluations in
// enumeration order.
func Grid(sp Space, e *Evaluator, workers int) []Evaluated {
	return e.EvalAll(sp.Candidates(), workers)
}

// EvolveOptions tunes the evolutionary driver. Zero values take the
// defaults (3 generations, population 16, 2 elites, tournaments of 3).
type EvolveOptions struct {
	Generations int
	Population  int
	Elites      int
	Tournament  int
	Workers     int
}

func (o EvolveOptions) withDefaults() EvolveOptions {
	if o.Generations <= 0 {
		o.Generations = 3
	}
	if o.Population <= 0 {
		o.Population = 16
	}
	if o.Elites <= 0 {
		o.Elites = 2
	}
	if o.Elites > o.Population {
		o.Elites = o.Population
	}
	if o.Tournament <= 0 {
		o.Tournament = 3
	}
	return o
}

// Evolve runs seeded evolutionary search: each generation evaluates the
// population on the sweep engine, carries the elites over, and fills
// the rest by tournament selection plus one in-space mutation. Each
// generation draws from its own rng seeded by (search seed, generation
// index) and selection sorts by the deterministic search order, so the
// trajectory — and every value returned — is byte-identical at any
// worker count. The returned slice holds every evaluation in
// generation-major order.
func Evolve(sp Space, e *Evaluator, seeds []Candidate, opts EvolveOptions) []Evaluated {
	opts = opts.withDefaults()
	if len(seeds) == 0 {
		seeds = []Candidate{{}}
	}
	pop := make([]Candidate, 0, opts.Population)
	for _, c := range seeds {
		if len(pop) == opts.Population {
			break
		}
		pop = append(pop, c.Legalize(sp.F))
	}
	fill := rand.New(rand.NewSource(harness.DeriveSeed(e.SearchSeed, 7000)))
	for i := 0; len(pop) < opts.Population; i++ {
		pop = append(pop, sp.Mutate(pop[i%len(seeds)], fill))
	}

	var all []Evaluated
	for g := 0; g < opts.Generations; g++ {
		evals := e.EvalAll(pop, opts.Workers)
		all = append(all, evals...)
		ranked := append([]Evaluated(nil), evals...)
		sort.Slice(ranked, func(i, j int) bool { return better(ranked[i], ranked[j]) })

		rng := rand.New(rand.NewSource(harness.DeriveSeed(e.SearchSeed, 7001+g)))
		next := make([]Candidate, 0, opts.Population)
		for i := 0; i < opts.Elites; i++ {
			next = append(next, ranked[i].Candidate)
		}
		for len(next) < opts.Population {
			winner := ranked[rng.Intn(len(ranked))]
			for t := 1; t < opts.Tournament; t++ {
				if ch := ranked[rng.Intn(len(ranked))]; better(ch, winner) {
					winner = ch
				}
			}
			next = append(next, sp.Mutate(winner.Candidate, rng))
		}
		pop = next
	}
	return all
}
