package redteam

import (
	"encoding/json"
	"fmt"
	"os"

	"lumiere/internal/harness"
)

// Entry is one protocol × objective row of the searched frontier.
type Entry struct {
	// Protocol, Objective and F identify the search context.
	Protocol  harness.Protocol `json:"protocol"`
	Objective Objective        `json:"objective"`
	F         int              `json:"f"`
	// Candidate is the worst point found; Seed its evaluation seed,
	// Value the objective value (Unit: "Δ" or "w") and Decided whether
	// the run produced the objective's event (false flags a stall — the
	// value is then the pessimal penalty, see Measure).
	Candidate Candidate `json:"candidate"`
	Seed      int64     `json:"seed"`
	Value     float64   `json:"value"`
	Unit      string    `json:"unit"`
	Decided   bool      `json:"decided"`
	// Evaluated counts the distinct candidates this entry's search
	// evaluated (grid + evolution + minimization probes).
	Evaluated int `json:"evaluated"`
	// Minimized is the delta-debugged candidate: the smallest shrink of
	// Candidate still reproducing ≥ the configured fraction of Value.
	// MinimizedSeed/MinimizedValue are its evaluation seed and value.
	Minimized      Candidate `json:"minimized"`
	MinimizedSeed  int64     `json:"minimized_seed"`
	MinimizedValue float64   `json:"minimized_value"`
}

// Frontier is the searched worst-case frontier artifact: one entry per
// protocol × objective, plus the search parameters that regenerate it.
// The reference run is committed as FRONTIER.json and pinned by
// TestFrontierAtLeastScripted.
type Frontier struct {
	// F and Seed are the search's fault tolerance and base seed.
	F    int   `json:"f"`
	Seed int64 `json:"seed"`
	// MinKeep is the minimizer's objective-retention fraction.
	MinKeep float64 `json:"min_keep"`
	// Entries holds the frontier rows: protocols outer (AllProtocols
	// order), objectives inner (search order).
	Entries []Entry `json:"entries"`
}

// Config parameterizes SearchFrontier. The zero value of every field
// takes a default; only F is required to be meaningful (default 2).
type Config struct {
	// F is the fault tolerance (n = 3F+1); Seed the search base seed.
	F    int
	Seed int64
	// Workers is the sweep worker-pool size (0 = NumCPU).
	Workers int
	// Objectives to search (default: all of Objectives()).
	Objectives []Objective
	// Space is the grid/mutation space (zero F = DefaultSpace(F));
	// SMRSpace the reduced space for ObjP99Commit (zero F =
	// SlimSpace(F)).
	Space    Space
	SMRSpace Space
	// Evolve tunes the evolutionary refinement; Evolve.Generations < 0
	// disables it (grid only).
	Evolve EvolveOptions
	// MinKeep is the fraction of the frontier objective the minimized
	// candidate must retain (default 0.95).
	MinKeep float64
	// Progress, when non-nil, receives one line per finished entry.
	Progress func(string)
}

func (cfg Config) withDefaults() Config {
	if cfg.F <= 0 {
		cfg.F = 2
	}
	if len(cfg.Objectives) == 0 {
		cfg.Objectives = Objectives()
	}
	if cfg.Space.F == 0 {
		cfg.Space = DefaultSpace(cfg.F)
	}
	if cfg.SMRSpace.F == 0 {
		cfg.SMRSpace = SlimSpace(cfg.F)
	}
	if cfg.MinKeep <= 0 {
		cfg.MinKeep = 0.95
	}
	return cfg
}

// SearchFrontier runs the full search: for every protocol × objective,
// a grid sweep over the space, evolutionary refinement seeded with the
// scripted attacks and the grid's best points, and delta-debugging
// minimization of the winner. Every stage is deterministic in
// (Config.Seed, Config.F, spaces), so the returned frontier — including
// every minimized candidate — is byte-identical at any worker count.
// The scripted candidates are members of both default spaces, so each
// entry's value dominates the PR 4 scripted corpus by construction.
func SearchFrontier(cfg Config) *Frontier {
	cfg = cfg.withDefaults()
	fr := &Frontier{F: cfg.F, Seed: cfg.Seed, MinKeep: cfg.MinKeep}
	for _, p := range harness.AllProtocols {
		for _, obj := range cfg.Objectives {
			sp := cfg.Space
			if obj == ObjP99Commit {
				sp = cfg.SMRSpace
			}
			e := NewEvaluator(p, cfg.F, obj, cfg.Seed)
			all := Grid(sp, e, cfg.Workers)
			if cfg.Evolve.Generations >= 0 {
				ranked := append([]Evaluated(nil), all...)
				seeds := ScriptedCandidates(cfg.F)
				for i := 0; i < 4 && len(ranked) > 0; i++ {
					best := Best(ranked)
					seeds = append(seeds, best.Candidate)
					ranked = without(ranked, best.Candidate)
				}
				eopts := cfg.Evolve
				eopts.Workers = cfg.Workers
				all = append(all, Evolve(sp, e, seeds, eopts)...)
			}
			best := Best(all)
			floor := cfg.MinKeep * best.Value
			min := Minimize(best.Candidate, cfg.F, func(d Candidate) bool {
				return e.Eval(d).Value >= floor
			})
			minEv := e.Eval(min)
			entry := Entry{
				Protocol: p, Objective: obj, F: cfg.F,
				Candidate: best.Candidate, Seed: best.Seed,
				Value: best.Value, Unit: obj.Unit(), Decided: best.Decided,
				Evaluated: e.Evaluations(),
				Minimized: minEv.Candidate, MinimizedSeed: minEv.Seed, MinimizedValue: minEv.Value,
			}
			fr.Entries = append(fr.Entries, entry)
			if cfg.Progress != nil {
				cfg.Progress(fmt.Sprintf("%s/%s: %.2f%s over %d candidates — minimized to %s (%.2f%s)",
					p, obj, entry.Value, entry.Unit, entry.Evaluated,
					entry.Minimized, entry.MinimizedValue, entry.Unit))
			}
		}
	}
	return fr
}

// without filters out evaluations of one candidate.
func without(evals []Evaluated, c Candidate) []Evaluated {
	key := c.Key()
	out := evals[:0]
	for _, ev := range evals {
		if ev.Candidate.Key() != key {
			out = append(out, ev)
		}
	}
	return out
}

// AllDecided reports whether every frontier run produced its
// objective's event — the searched scenarios are all model-legal, so a
// stalled entry is a protocol liveness failure.
func (f *Frontier) AllDecided() bool {
	for i := range f.Entries {
		if !f.Entries[i].Decided {
			return false
		}
	}
	return true
}

// JSON serializes the frontier in its committed form (indented,
// trailing newline). Serialization is stable: byte-identical frontiers
// ⇔ identical searches.
func (f *Frontier) JSON() []byte {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("redteam: marshal frontier: %v", err))
	}
	return append(b, '\n')
}

// WriteFile writes the frontier's committed form to path.
func (f *Frontier) WriteFile(path string) error {
	return os.WriteFile(path, f.JSON(), 0o644)
}

// ReadFrontier loads a committed frontier artifact.
func ReadFrontier(path string) (*Frontier, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Frontier
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("redteam: parse %s: %w", path, err)
	}
	return &f, nil
}

// Table renders the frontier: one row per protocol × objective with the
// worst candidate, its objective value, and the minimized reproducer.
// The rendering is a pure function of the search, so it is
// byte-identical at every worker count.
func (f *Frontier) Table() *harness.Table {
	t := &harness.Table{Title: fmt.Sprintf("Searched worst-case frontier (f=%d, n=%d): grid + evolution over attack × chaos axes", f.F, 3*f.F+1)}
	t.Header = []string{"protocol", "objective", "worst", "candidate", "minimized", "min value"}
	for i := range f.Entries {
		e := &f.Entries[i]
		worst := fmt.Sprintf("%.2f%s", e.Value, e.Unit)
		if !e.Decided {
			worst += " STALLED"
		}
		t.Rows = append(t.Rows, []string{
			string(e.Protocol), string(e.Objective), worst,
			e.Candidate.String(), e.Minimized.String(),
			fmt.Sprintf("%.2f%s", e.MinimizedValue, e.Unit),
		})
	}
	t.AddNote("latencies in Δ = 50ms; words are honest sends only; minimized reproduces ≥95%% of the objective")
	t.AddNote("regenerate: go run ./cmd/lumiere-bench -redteam -frontier FRONTIER.json")
	return t
}
