package redteam

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/harness"
)

// FuzzSearchCandidate extends the PR 3 FuzzLinkPolicy pattern to
// composed attack+chaos scenarios: an arbitrary point, legalized into
// the search space, must yield a model-legal run — the execution
// completes within budget, no Lemma 5.1–5.3 invariant fires, the honest
// processors decide after GST within the §2 synchronous bound, and the
// network grants no true post-GST omission (the §2 clamp: without an
// omission budget every post-GST drop degrades to a Δ-late delivery).
// The WAN axes ride along: any fuzzed topology preset, drift rate and
// straggler legalize into in-model values and must keep conformance.
func FuzzSearchCandidate(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1), uint8(1), uint16(1000), uint16(2000), uint8(0), uint8(0), uint8(0), uint16(0), uint8(0), uint16(0), uint16(0))
	f.Add(int64(2), uint8(1), uint8(2), uint8(2), uint16(50), uint16(500), uint8(30), uint8(3), uint8(1), uint16(3000), uint8(1), uint16(100), uint16(10))
	f.Add(int64(3), uint8(2), uint8(1), uint8(1), uint16(250), uint16(0), uint8(90), uint8(6), uint8(2), uint16(9999), uint8(2), uint16(20000), uint16(0))
	f.Add(int64(4), uint8(3), uint8(2), uint8(3), uint16(50), uint16(2000), uint8(10), uint8(0), uint8(0), uint16(0), uint8(4), uint16(0), uint16(50))
	f.Add(int64(5), uint8(4), uint8(9), uint8(9), uint16(60000), uint16(60000), uint8(255), uint8(255), uint8(255), uint16(60000), uint8(255), uint16(60000), uint16(60000))

	protos := harness.AllProtocols
	names := adversary.AttackNames()
	f.Fuzz(func(t *testing.T, seed int64, stratB, nodesB, kB uint8, periodMs, gstMs uint16, lossB, psB, churnB uint8, healMs uint16, topoB uint8, driftPPM, slowMs uint16) {
		ft := 1 + int(nodesB)%2 // f ∈ {1, 2}
		strat := ""
		if int(stratB)%(len(names)+1) < len(names) {
			strat = names[int(stratB)%(len(names)+1)]
		}
		topo := ""
		if int(topoB)%(len(harness.WANPresets)+1) < len(harness.WANPresets) {
			topo = harness.WANPresets[int(topoB)%(len(harness.WANPresets)+1)]
		}
		c := Candidate{
			Strategy:      strat,
			Nodes:         int(nodesB),
			K:             int(kB),
			Period:        time.Duration(periodMs) * time.Millisecond,
			GST:           time.Duration(gstMs) * time.Millisecond,
			Loss:          float64(lossB) / 255,
			PartitionSize: int(psB),
			PartitionHeal: time.Duration(healMs) * time.Millisecond,
			ChurnNodes:    int(churnB),
			Topology:      topo,
			DriftPPM:      int64(driftPPM),
			Straggler:     time.Duration(slowMs) * time.Millisecond,
		}.Legalize(ft)
		p := protos[int(uint64(seed)%uint64(len(protos)))]

		s := c.Scenario(p, ft, ObjSyncLatency, CandidateSeed(seed, c))
		s.CheckInvariants = true
		res := harness.Run(s)

		corrupted := c.ChurnNodes
		if c.Strategy != "" {
			corrupted += c.Nodes
		}
		if corrupted > ft {
			t.Fatalf("legalized candidate corrupts %d > f=%d processors: %s", corrupted, ft, c)
		}
		if res.Omitted != 0 {
			t.Fatalf("§2 clamp violated: %d true post-GST omissions without a budget (%s on %s)", res.Omitted, c, p)
		}
		if problems := harness.ConformanceReport(res); len(problems) > 0 {
			t.Fatalf("candidate %s on %s (f=%d, seed %d) violates the model:\n%s",
				c, p, ft, s.Seed, fmt.Sprint(problems))
		}
	})
}
