package redteam

import (
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/harness"
)

// loadedCandidate is a fully-populated worst case for the synthetic
// minimizer tests: every axis on.
func loadedCandidate() Candidate {
	return Candidate{
		Strategy: adversary.AttackViewDesync, Nodes: 2, Period: time.Second,
		GST: 2 * time.Second, Loss: 0.4, LossUntil: 4 * time.Second,
		Duplication: 0.3, ReorderJitter: 40 * time.Millisecond,
		PartitionSize: 3, PartitionHeal: 3 * time.Second,
	}
}

// TestMinimizeIdempotent pins the fixpoint property: minimizing a
// minimized candidate changes nothing, for a spread of pure predicates.
func TestMinimizeIdempotent(t *testing.T) {
	preds := map[string]func(Candidate) bool{
		"always":     func(Candidate) bool { return true },
		"keep-loss":  func(c Candidate) bool { return c.Loss >= 0.1 },
		"keep-pair":  func(c Candidate) bool { return c.Strategy != "" && c.PartitionSize > 0 },
		"keep-heavy": func(c Candidate) bool { return axisSum(c) >= 0.5*axisSum(loadedCandidate()) },
	}
	for name, keep := range preds {
		m1 := Minimize(loadedCandidate(), 2, keep)
		m2 := Minimize(m1, 2, keep)
		if m1.Key() != m2.Key() {
			t.Errorf("%s: not a fixpoint: %s -> %s", name, m1, m2)
		}
		if !keep(m1) && name != "always" {
			// "always" accepts everything including the empty candidate;
			// the others must end on an accepted point.
			t.Errorf("%s: minimized candidate rejected by its own predicate: %s", name, m1)
		}
	}
}

// TestMinimizeMonotone pins monotone shrinkage: the minimized candidate
// never exceeds the input on any axis.
func TestMinimizeMonotone(t *testing.T) {
	start := loadedCandidate()
	for name, keep := range map[string]func(Candidate) bool{
		"always":    func(Candidate) bool { return true },
		"keep-some": func(c Candidate) bool { return c.Loss > 0 || c.Duplication > 0 },
	} {
		m := Minimize(start, 2, keep)
		sv, mv := axisVector(start.Legalize(2)), axisVector(m)
		for i := range sv {
			if mv[i] > sv[i] {
				t.Errorf("%s: axis %d grew: %.3g -> %.3g (candidate %s)", name, i, sv[i], mv[i], m)
			}
		}
	}
}

// TestMinimizeDeterministicAcrossWorkers pins the acceptance property
// end to end on a real objective: the same frontier candidate minimized
// against evaluators fed by 1-worker and 4-worker searches yields
// byte-identical candidates — the evaluator's values are pure functions
// of the candidate, so worker count cannot leak into the shrink path.
func TestMinimizeDeterministicAcrossWorkers(t *testing.T) {
	sp := SmokeSpace(1)
	minimize := func(workers int) (Candidate, float64) {
		e := NewEvaluator(harness.ProtoLumiere, sp.F, ObjSyncLatency, 5)
		evals := e.EvalAll(sp.Candidates(), workers)
		best := Best(evals)
		floor := 0.95 * best.Value
		m := Minimize(best.Candidate, sp.F, func(d Candidate) bool {
			return e.Eval(d).Value >= floor
		})
		return m, e.Eval(m).Value
	}
	m1, v1 := minimize(1)
	m4, v4 := minimize(4)
	if m1.Key() != m4.Key() || v1 != v4 {
		t.Fatalf("minimized scenario differs across worker counts: %s (%.3f) vs %s (%.3f)", m1, v1, m4, v4)
	}
}

// TestShrinksStrictlySmaller pins termination's well-foundedness: every
// immediate shrink of a legalized candidate strictly decreases the axis
// sum and never grows any single axis.
func TestShrinksStrictlySmaller(t *testing.T) {
	c := loadedCandidate().Legalize(2)
	for _, d := range shrinks(c) {
		d = d.Legalize(2)
		if d.Key() == c.Key() {
			continue
		}
		cv, dv := axisVector(c), axisVector(d)
		smaller := false
		for i := range cv {
			if dv[i] > cv[i] {
				t.Fatalf("shrink grew axis %d: %s -> %s", i, c, d)
			}
			if dv[i] < cv[i] {
				smaller = true
			}
		}
		if !smaller {
			t.Fatalf("shrink did not shrink: %s -> %s", c, d)
		}
	}
}

// axisSum is a crude size measure over the normalized axis vector.
func axisSum(c Candidate) float64 {
	total := 0.0
	for _, v := range axisVector(c) {
		total += v
	}
	return total
}
