// Package redteam is the adversarial search engine: it explores the
// attack/chaos parameter space (adversary.AttackSpec axes crossed with
// the harness's declarative chaos axes and GST placement) for the
// empirical worst case of each protocol under an objective — post-GST
// view-synchronization latency, W_GST honest words, or p99 commit
// latency under an SMR workload — and shrinks the winner to a minimal
// reproducing scenario by delta debugging.
//
// Everything is deterministic: a candidate's evaluation seed is a pure
// function of (search seed, candidate), candidates run through
// harness.RunIn arenas on the sweep engine, and the evolutionary driver
// draws all randomness from per-generation seeded rngs — so the
// searched frontier is byte-identical at any worker count, like every
// other sweep in this repository. The reference frontier is committed
// as FRONTIER.json and pinned by TestFrontierAtLeastScripted; see
// DESIGN.md §1d and EXPERIMENTS.md ("Searched worst-case frontier").
package redteam

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/harness"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
	"lumiere/internal/workload"
)

// Candidate is one point of the search space: an adaptive attack
// (adversary.AttackSpec axes) composed with declarative chaos
// conditions and a GST placement. The zero value is the clean run. All
// axes are explicit — ScriptedCandidates spells out the strategy
// defaults — so shrinking an axis never snaps back to a larger default.
type Candidate struct {
	// Strategy is the adaptive attack (an adversary.AttackNames entry;
	// empty = no attack). Nodes is the number of processors it
	// controls (≥ 1 when Strategy is set; they count against f). K is
	// LeaderTarget's horizon; Period is ViewDesync's silence length and
	// ComplexitySaturate's spam interval. Axes a strategy ignores are
	// zero.
	Strategy string        `json:"strategy,omitempty"`
	Nodes    int           `json:"nodes,omitempty"`
	K        int           `json:"k,omitempty"`
	Period   time.Duration `json:"period,omitempty"`

	// GST places the global stabilization time.
	GST time.Duration `json:"gst,omitempty"`

	// Loss drops each message with this probability until LossUntil
	// (zero = the whole run); Duplication and ReorderJitter are the
	// harness's duplication/reordering axes.
	Loss          float64       `json:"loss,omitempty"`
	LossUntil     time.Duration `json:"loss_until,omitempty"`
	Duplication   float64       `json:"duplication,omitempty"`
	ReorderJitter time.Duration `json:"reorder_jitter,omitempty"`

	// PartitionSize isolates an island of this many processors until
	// PartitionHeal (zero heal = at GST).
	PartitionSize int           `json:"partition_size,omitempty"`
	PartitionHeal time.Duration `json:"partition_heal,omitempty"`

	// ChurnNodes crash-recovery-churns this many processors (they count
	// against f together with Nodes), each down for ChurnDown every
	// ChurnPeriod.
	ChurnNodes  int           `json:"churn_nodes,omitempty"`
	ChurnDown   time.Duration `json:"churn_down,omitempty"`
	ChurnPeriod time.Duration `json:"churn_period,omitempty"`

	// The WAN axes (PR 10). Topology selects a deployment preset
	// (harness.WANPresets; empty = the uniform fast network). DriftPPM
	// gives every processor a drifting hardware clock: ±DriftPPM
	// alternating by processor parity (worst-case pairwise rate spread
	// 2·DriftPPM). Straggler adds a fixed processing delay to one
	// processor — the first ID above the churned and partitioned ranges.
	// Legalize keeps all three in-model (Scenario.Validate holds without
	// UncheckedWAN for every protocol).
	Topology  string        `json:"topology,omitempty"`
	DriftPPM  int64         `json:"drift_ppm,omitempty"`
	Straggler time.Duration `json:"straggler,omitempty"`
}

// Key returns the candidate's canonical identity: an injective encoding
// of every axis. Equal keys mean equal candidates; the evaluation seed
// and the search caches derive from it.
func (c Candidate) Key() string {
	return fmt.Sprintf("s=%s n=%d k=%d per=%d gst=%d loss=%g lu=%d dup=%g rj=%d ps=%d ph=%d cn=%d cd=%d cp=%d topo=%s drift=%d slow=%d",
		c.Strategy, c.Nodes, c.K, int64(c.Period), int64(c.GST),
		c.Loss, int64(c.LossUntil), c.Duplication, int64(c.ReorderJitter),
		c.PartitionSize, int64(c.PartitionHeal),
		c.ChurnNodes, int64(c.ChurnDown), int64(c.ChurnPeriod),
		c.Topology, c.DriftPPM, int64(c.Straggler))
}

// String renders the candidate compactly for tables and logs.
func (c Candidate) String() string {
	var parts []string
	if c.Strategy == "" {
		parts = append(parts, "no-attack")
	} else {
		a := fmt.Sprintf("%s×%d", c.Strategy, c.Nodes)
		if c.K > 0 {
			a += fmt.Sprintf(" k=%d", c.K)
		}
		if c.Period > 0 {
			a += fmt.Sprintf(" per=%s", c.Period)
		}
		parts = append(parts, a)
	}
	parts = append(parts, fmt.Sprintf("gst=%s", c.GST))
	if c.Loss > 0 {
		l := fmt.Sprintf("loss=%.2f", c.Loss)
		if c.LossUntil > 0 {
			l += fmt.Sprintf("<%s", c.LossUntil)
		}
		parts = append(parts, l)
	}
	if c.Duplication > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", c.Duplication))
	}
	if c.ReorderJitter > 0 {
		parts = append(parts, fmt.Sprintf("jit=%s", c.ReorderJitter))
	}
	if c.PartitionSize > 0 {
		p := fmt.Sprintf("part=%d", c.PartitionSize)
		if c.PartitionHeal > 0 {
			p += fmt.Sprintf("@%s", c.PartitionHeal)
		} else {
			p += "@gst"
		}
		parts = append(parts, p)
	}
	if c.ChurnNodes > 0 {
		parts = append(parts, fmt.Sprintf("churn=%d×%s/%s", c.ChurnNodes, c.ChurnDown, c.ChurnPeriod))
	}
	if c.Topology != "" {
		parts = append(parts, "topo="+c.Topology)
	}
	if c.DriftPPM > 0 {
		parts = append(parts, fmt.Sprintf("drift=±%dppm", c.DriftPPM))
	}
	if c.Straggler > 0 {
		parts = append(parts, fmt.Sprintf("slow=%s", c.Straggler))
	}
	return strings.Join(parts, " ")
}

// Legalize clamps the candidate into the model at fault tolerance f:
// the strategy name must be known (else the attack is dropped), the
// strategy and churned processors together stay within f, probabilities
// and durations stay within sane simulation bounds. Legalize is
// idempotent and never grows an axis beyond its input. Search drivers
// and the fuzz harness run every candidate through it, so arbitrary
// in-space points always yield model-legal scenarios.
func (c Candidate) Legalize(f int) Candidate {
	if f < 1 {
		f = 1
	}
	n := 3*f + 1
	known := false
	for _, name := range adversary.AttackNames() {
		if c.Strategy == name {
			known = true
			break
		}
	}
	if !known {
		c.Strategy = ""
	}
	if c.Strategy == "" {
		c.Nodes, c.K, c.Period = 0, 0, 0
	} else {
		c.Nodes = clampInt(c.Nodes, 1, f)
		c.K = clampInt(c.K, 0, n)
		if c.Strategy != adversary.AttackLeaderTarget {
			c.K = 0
		}
		if c.Strategy != adversary.AttackViewDesync && c.Strategy != adversary.AttackSaturate {
			c.Period = 0
		}
		c.Period = clampDur(c.Period, 0, 30*time.Second)
	}
	c.GST = clampDur(c.GST, 0, 10*time.Second)
	c.Loss = clampFloat(c.Loss, 0, 0.9)
	if c.Loss == 0 {
		c.LossUntil = 0
	}
	c.LossUntil = clampDur(c.LossUntil, 0, 60*time.Second)
	c.Duplication = clampFloat(c.Duplication, 0, 0.9)
	c.ReorderJitter = clampDur(c.ReorderJitter, 0, time.Second)
	c.PartitionSize = clampInt(c.PartitionSize, 0, n-1)
	if c.PartitionSize == 0 {
		c.PartitionHeal = 0
	}
	c.PartitionHeal = clampDur(c.PartitionHeal, 0, 60*time.Second)
	c.ChurnNodes = clampInt(c.ChurnNodes, 0, f)
	// Strategic and churned processors both count against f.
	if c.Nodes+c.ChurnNodes > f {
		c.ChurnNodes = f - c.Nodes
	}
	// The island occupies the IDs right above the churned processors;
	// together they must leave at least one processor outside.
	if c.ChurnNodes+c.PartitionSize > n-1 {
		c.PartitionSize = n - 1 - c.ChurnNodes
	}
	if c.PartitionSize == 0 {
		c.PartitionHeal = 0
	}
	if c.ChurnNodes == 0 {
		c.ChurnDown, c.ChurnPeriod = 0, 0
	} else {
		if c.ChurnDown <= 0 {
			c.ChurnDown = 10 * harness.AttackDelta
		}
		if c.ChurnPeriod <= 0 {
			c.ChurnPeriod = 2 * time.Second
		}
		c.ChurnDown = clampDur(c.ChurnDown, time.Millisecond, 10*time.Second)
		c.ChurnPeriod = clampDur(c.ChurnPeriod, time.Millisecond, 30*time.Second)
	}
	// The WAN axes: an unknown preset drops the topology; drift and the
	// straggler clamp to in-model bounds so a legalized candidate always
	// validates without UncheckedWAN. A preset that already carries
	// per-region proc delays absorbs the straggler axis — otherwise two
	// candidates with distinct keys would materialize identically.
	known = false
	for _, name := range harness.WANPresets {
		if c.Topology == name {
			known = true
			break
		}
	}
	if !known {
		c.Topology = ""
	}
	if c.DriftPPM < 0 {
		c.DriftPPM = 0
	}
	if c.DriftPPM > maxDriftPPM {
		c.DriftPPM = maxDriftPPM
	}
	c.Straggler = clampDur(c.Straggler, 0, harness.AttackDelta)
	if c.Topology != "" && len(harness.PresetTopology(c.Topology, n, harness.AttackDelta).ProcDelays) > 0 {
		c.Straggler = 0
	}
	return c
}

// maxDriftPPM bounds the searched drift rate. Validation requires
// |ppm|·Γ ≤ Δ·10⁶; the largest Γ budget here is lumiere's 10Δ, so
// ±20 000 ppm accumulates at most Δ/5 of skew over any protocol's Γ
// and every legalized candidate stays in-model.
const maxDriftPPM = 20_000

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Objective selects what the search maximizes.
type Objective string

// The implemented objectives.
const (
	// ObjSyncLatency is the post-GST view-synchronization latency in Δ
	// units: GST to the first honest-leader decision after it.
	ObjSyncLatency Objective = "sync-latency"
	// ObjWGSTWords is W_GST in words: honest communication from GST to
	// the first honest-leader decision after it.
	ObjWGSTWords Objective = "wgst-words"
	// ObjP99Commit is the p99 submit→commit latency in Δ units under a
	// steady SMR workload (internal/workload), measured after warmup.
	ObjP99Commit Objective = "p99-commit"
)

// Objectives lists the implemented objectives in presentation order.
func Objectives() []Objective {
	return []Objective{ObjSyncLatency, ObjWGSTWords, ObjP99Commit}
}

// Unit names the objective's value unit.
func (o Objective) Unit() string {
	if o == ObjWGSTWords {
		return "w"
	}
	return "Δ"
}

// p99Warmup is the post-GST warmup the p99-commit objective excludes,
// and p99Window the measured steady window after it.
const (
	p99Warmup = 3 * time.Second
	p99Window = 9 * time.Second
	p99Rate   = 300
)

// Scenario materializes the candidate into a runnable scenario for one
// protocol, fault tolerance and objective, with the attack-table cell
// shape (Δ = AttackDelta, δ = Δ/10) and a horizon of 30(f+1) views
// after GST — the p99-commit objective instead runs the SMR stack with
// a steady open-loop workload for p99Warmup+p99Window after GST.
// Churned processors take the lowest IDs and the partition island the
// next ones up, so they never collide with the strategy's processors
// (the highest free IDs).
func (c Candidate) Scenario(p harness.Protocol, f int, obj Objective, seed int64) harness.Scenario {
	delta := harness.AttackDelta
	s := harness.Scenario{
		Name:          fmt.Sprintf("redteam-%s-%s", p, obj),
		Protocol:      p,
		F:             f,
		Delta:         delta,
		DeltaActual:   delta / 10,
		GST:           c.GST,
		Seed:          seed,
		Loss:          c.Loss,
		LossUntil:     c.LossUntil,
		Duplication:   c.Duplication,
		ReorderJitter: c.ReorderJitter,
		PartitionHeal: c.PartitionHeal,
		Duration:      c.GST + 30*time.Duration(f+1)*harness.GammaOf(p, delta),
	}
	if c.Strategy != "" {
		s.Attack = adversary.AttackSpec{Name: c.Strategy, Nodes: c.Nodes, K: c.K, Period: c.Period}
	}
	for i := 0; i < c.ChurnNodes; i++ {
		start := time.Duration(i+1) * c.ChurnPeriod / time.Duration(c.ChurnNodes+1)
		cycles := int(s.Duration/c.ChurnPeriod) + 1
		if cycles > 8 {
			cycles = 8
		}
		s.Corruptions = append(s.Corruptions,
			adversary.PeriodicChurn(types.NodeID(i), start, c.ChurnDown, c.ChurnPeriod, cycles))
	}
	if c.PartitionSize > 0 {
		island := make([]types.NodeID, c.PartitionSize)
		for i := range island {
			island[i] = types.NodeID(c.ChurnNodes + i)
		}
		s.Partitions = [][]types.NodeID{island}
	}
	n := 3*f + 1
	if c.Topology != "" {
		// The topology replaces the fast uniform network (DeltaActual is
		// ignored once a topology is set).
		s.Topology = harness.PresetTopology(c.Topology, n, delta)
	}
	if c.DriftPPM > 0 {
		// Worst-case pairwise spread: rates alternate ±ppm by parity.
		s.DriftPPM = make([]int64, n)
		for i := range s.DriftPPM {
			if i%2 == 0 {
				s.DriftPPM[i] = c.DriftPPM
			} else {
				s.DriftPPM[i] = -c.DriftPPM
			}
		}
	}
	if c.Straggler > 0 {
		// The straggler is the first honest ID above the churned and
		// partitioned ranges, clamped to stay a valid processor.
		slow := c.ChurnNodes + c.PartitionSize
		if slow > n-1 {
			slow = n - 1
		}
		s.ProcDelays = make([]time.Duration, slow+1)
		s.ProcDelays[slow] = c.Straggler
	}
	if obj == ObjP99Commit {
		s.Duration = c.GST + p99Warmup + p99Window
		s.SMR = true
		s.SMRBatchSize = 128
		s.NewStateMachine = func() statemachine.StateMachine { return statemachine.NewCounter() }
		s.Workload = &workload.Config{Clients: 10_000, Rate: p99Rate, PayloadPad: 64}
	}
	return s
}

// Measure extracts the objective value from a finished run. The second
// return reports whether the run produced the objective's event (a
// post-GST decision, or any post-warmup commit); a stalled run scores
// the pessimal penalty — the whole post-GST horizon in Δ for the
// latency objectives, the whole post-GST word count for ObjWGSTWords —
// so liveness failures surface as (flagged) frontier maxima instead of
// vanishing.
func Measure(res *harness.Result, obj Objective) (float64, bool) {
	delta := float64(harness.AttackDelta)
	end := types.Time(0).Add(res.Scenario.Duration)
	switch obj {
	case ObjSyncLatency:
		if _, lat, ok := res.Collector.WordsWindowAfter(res.GST); ok {
			return float64(lat) / delta, true
		}
		return float64(end.Sub(res.GST)) / delta, false
	case ObjWGSTWords:
		if w, _, ok := res.Collector.WordsWindowAfter(res.GST); ok {
			return float64(w), true
		}
		return float64(res.Collector.WordsBetween(res.GST, end)), false
	case ObjP99Commit:
		st := res.Collector.CommitLatencyStats(res.GST.Add(p99Warmup))
		if st.Count > 0 {
			return float64(st.P99) / delta, true
		}
		return float64(end.Sub(res.GST)) / delta, false
	default:
		panic(fmt.Sprintf("redteam: unknown objective %q", obj))
	}
}

// CandidateSeed derives a candidate's evaluation seed: the splitmix64
// finalizer over the search seed and the candidate's canonical key. The
// seed depends on (searchSeed, candidate) alone — never on how the
// search reached the candidate — so a frontier or minimized candidate
// re-evaluates byte-identically anywhere (tests, the minimizer, a later
// regeneration).
func CandidateSeed(searchSeed int64, c Candidate) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(c.Key()))
	z := uint64(searchSeed) + h.Sum64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ScriptedCandidates spells out the PR 4 attack-table cells (every
// strategy at its default parameters, GST = 2s, clean network) as
// explicit candidates. They are members of DefaultSpace and SlimSpace,
// and the search drivers seed them into every population — so the
// searched frontier dominates the scripted corpus by construction
// (TestFrontierAtLeastScripted pins it).
func ScriptedCandidates(f int) []Candidate {
	d := harness.AttackDelta
	gst := 2 * time.Second
	return []Candidate{
		{Strategy: adversary.AttackViewDesync, Nodes: f, Period: 20 * d, GST: gst},
		{Strategy: adversary.AttackLeaderTarget, Nodes: f, K: f, GST: gst},
		{Strategy: adversary.AttackGSTStraddle, Nodes: f, GST: gst},
		{Strategy: adversary.AttackSaturate, Nodes: f, Period: d, GST: gst},
	}
}
