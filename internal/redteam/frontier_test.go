package redteam

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// frontierPath locates the committed reference artifact.
var frontierPath = filepath.Join("..", "..", "FRONTIER.json")

// TestFrontierAtLeastScripted pins the committed FRONTIER.json: every
// entry's candidate and minimized candidate re-evaluate to exactly the
// recorded values (the simulator is deterministic, so any drift — in
// either direction — means the protocols or the search changed and the
// artifact must be regenerated), the minimized candidate retains ≥
// MinKeep of the frontier objective, the recorded seeds match the
// candidate-derived seeds, and the frontier dominates (≥) every PR 4
// scripted attack under the same objective. A frontier value that falls
// below a scripted attack's is a protocol regression of the worst case
// — exactly what this test exists to catch loudly.
func TestFrontierAtLeastScripted(t *testing.T) {
	fr, err := ReadFrontier(frontierPath)
	if err != nil {
		t.Fatalf("read committed frontier: %v (regenerate: go run ./cmd/lumiere-bench -redteam -frontier FRONTIER.json)", err)
	}
	if len(fr.Entries) == 0 {
		t.Fatal("committed frontier has no entries")
	}
	const regen = "regenerate with: go run ./cmd/lumiere-bench -redteam -frontier FRONTIER.json"
	for i := range fr.Entries {
		entry := fr.Entries[i]
		if testing.Short() && entry.Objective == ObjP99Commit {
			continue // the SMR cells dominate the wall clock; tier-1 covers them
		}
		t.Run(fmt.Sprintf("%s/%s", entry.Protocol, entry.Objective), func(t *testing.T) {
			t.Parallel()
			if entry.F != fr.F {
				t.Fatalf("entry f=%d disagrees with frontier f=%d", entry.F, fr.F)
			}
			if want := CandidateSeed(fr.Seed, entry.Candidate.Legalize(fr.F)); entry.Seed != want {
				t.Errorf("recorded seed %d is not the candidate-derived seed %d — seed derivation drifted; %s",
					entry.Seed, want, regen)
			}
			if want := CandidateSeed(fr.Seed, entry.Minimized.Legalize(fr.F)); entry.MinimizedSeed != want {
				t.Errorf("recorded minimized seed %d is not candidate-derived (%d); %s",
					entry.MinimizedSeed, want, regen)
			}

			e := NewEvaluator(entry.Protocol, fr.F, entry.Objective, fr.Seed)
			if got := e.Eval(entry.Candidate); got.Value != entry.Value || got.Decided != entry.Decided {
				t.Errorf("frontier candidate re-evaluates to %.4f (decided=%v), recorded %.4f (decided=%v) — %s",
					got.Value, got.Decided, entry.Value, entry.Decided, regen)
			}
			minEv := e.Eval(entry.Minimized)
			if minEv.Value != entry.MinimizedValue {
				t.Errorf("minimized candidate re-evaluates to %.4f, recorded %.4f — %s",
					minEv.Value, entry.MinimizedValue, regen)
			}
			if minEv.Value < fr.MinKeep*entry.Value {
				t.Errorf("minimized scenario reproduces only %.4f of frontier %.4f (< %.0f%%)",
					minEv.Value, entry.Value, 100*fr.MinKeep)
			}

			// Monotone shrinkage of the recorded minimization.
			cv, mv := axisVector(entry.Candidate.Legalize(fr.F)), axisVector(entry.Minimized.Legalize(fr.F))
			for a := range cv {
				if mv[a] > cv[a] {
					t.Errorf("minimized candidate grew axis %d: %s -> %s", a, entry.Candidate, entry.Minimized)
				}
			}

			// Dominance over the scripted PR 4 corpus.
			for _, sc := range ScriptedCandidates(fr.F) {
				if got := e.Eval(sc); got.Value > entry.Value {
					t.Errorf("scripted attack %s scores %.4f > frontier %.4f: the searched frontier no longer dominates the scripted corpus — %s",
						sc, got.Value, entry.Value, regen)
				}
			}
		})
	}
}

// TestFrontierWANCoverage pins the WAN arm of the committed frontier:
// for every protocol, at least one frontier entry exercises a WAN axis
// (topology preset, clock drift or a straggler). The search space
// crosses every candidate with the WAN deployments, and a worst case
// that ignores all of them would mean the WAN axes cost nothing — a
// sign the axes are not wired into the materialized scenarios.
func TestFrontierWANCoverage(t *testing.T) {
	fr, err := ReadFrontier(frontierPath)
	if err != nil {
		t.Fatalf("read committed frontier: %v", err)
	}
	wan := func(c Candidate) bool {
		return c.Topology != "" || c.DriftPPM > 0 || c.Straggler > 0
	}
	covered := make(map[string]bool)
	for _, e := range fr.Entries {
		if wan(e.Candidate) {
			covered[string(e.Protocol)] = true
		}
	}
	for _, e := range fr.Entries {
		if !covered[string(e.Protocol)] {
			t.Errorf("protocol %s: no frontier entry on any WAN axis", e.Protocol)
			covered[string(e.Protocol)] = true // report once
		}
	}
}

// TestFrontierSearchDeterminism pins the acceptance property end to
// end: the full search — grid, evolution, minimization, serialization —
// over a small space is byte-identical at workers 1 vs 4.
func TestFrontierSearchDeterminism(t *testing.T) {
	objectives := []Objective{ObjSyncLatency}
	if !testing.Short() {
		objectives = Objectives()
	}
	run := func(workers int) []byte {
		return SearchFrontier(Config{
			F:          1,
			Seed:       23,
			Workers:    workers,
			Objectives: objectives,
			Space:      SmokeSpace(1),
			SMRSpace:   SmokeSpace(1),
			Evolve:     EvolveOptions{Generations: 2, Population: 6},
		}).JSON()
	}
	serial, pool := run(1), run(4)
	if !bytes.Equal(serial, pool) {
		t.Fatalf("frontier differs across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", serial, pool)
	}
}
