package redteam

import (
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/harness"
)

// This file implements the delta-debugging minimizer: given a worst-case
// candidate and a predicate ("still reproduces ≥95% of the objective"),
// shrink it to a locally minimal candidate the predicate still accepts.
// The shrink relation only ever zeroes an axis, decrements a processor
// count, or halves a duration/probability — every step strictly
// decreases a well-founded measure, so minimization terminates, never
// grows an axis, and is a fixpoint on its own output (the unit tests
// pin all three properties).

// minQuantum floors halved durations: a window shorter than this is
// zeroed by the axis-zeroing steps instead (except Period, which some
// strategies interpret as "default" at zero and therefore floors here).
const minQuantum = time.Millisecond

// shrinks enumerates the candidate's immediate shrinks in priority
// order: drop whole axes first (attack, then each chaos axis), then
// decrement processor counts, then halve windows and rates. Every
// result is strictly smaller than c on at least one axis and equal on
// the rest.
func shrinks(c Candidate) []Candidate {
	var out []Candidate
	add := func(mut func(*Candidate)) {
		d := c
		mut(&d)
		out = append(out, d)
	}
	// Whole-axis drops.
	if c.Strategy != "" {
		add(func(d *Candidate) { d.Strategy, d.Nodes, d.K, d.Period = "", 0, 0, 0 })
	}
	if c.Loss > 0 {
		add(func(d *Candidate) { d.Loss, d.LossUntil = 0, 0 })
	}
	if c.Duplication > 0 {
		add(func(d *Candidate) { d.Duplication = 0 })
	}
	if c.ReorderJitter > 0 {
		add(func(d *Candidate) { d.ReorderJitter = 0 })
	}
	if c.PartitionSize > 0 {
		add(func(d *Candidate) { d.PartitionSize, d.PartitionHeal = 0, 0 })
	}
	if c.ChurnNodes > 0 {
		add(func(d *Candidate) { d.ChurnNodes, d.ChurnDown, d.ChurnPeriod = 0, 0, 0 })
	}
	if c.Topology != "" {
		add(func(d *Candidate) { d.Topology = "" })
	}
	if c.DriftPPM > 0 {
		add(func(d *Candidate) { d.DriftPPM = 0 })
	}
	if c.Straggler > 0 {
		add(func(d *Candidate) { d.Straggler = 0 })
	}
	// Fewer processors, smaller islands, shorter horizons.
	if c.Nodes > 1 {
		add(func(d *Candidate) { d.Nodes-- })
	}
	if c.K > 1 {
		add(func(d *Candidate) { d.K-- })
	}
	if c.ChurnNodes > 1 {
		add(func(d *Candidate) { d.ChurnNodes-- })
	}
	if c.PartitionSize > 1 {
		add(func(d *Candidate) { d.PartitionSize-- })
	}
	// Halved windows. Period floors at minQuantum (zero would mean the
	// strategy default, which is larger); the rest zero out below it.
	if c.Period > minQuantum {
		add(func(d *Candidate) { d.Period = halveFloor(d.Period) })
	}
	if c.GST > 0 {
		add(func(d *Candidate) { d.GST = halveZero(d.GST) })
	}
	if c.LossUntil > 0 {
		add(func(d *Candidate) { d.LossUntil = halveZero(d.LossUntil) })
	}
	if c.PartitionHeal > 0 {
		add(func(d *Candidate) { d.PartitionHeal = halveZero(d.PartitionHeal) })
	}
	if c.ChurnDown > minQuantum {
		add(func(d *Candidate) { d.ChurnDown = halveFloor(d.ChurnDown) })
	}
	if c.ChurnPeriod > minQuantum {
		add(func(d *Candidate) { d.ChurnPeriod = halveFloor(d.ChurnPeriod) })
	}
	if c.ReorderJitter > minQuantum {
		add(func(d *Candidate) { d.ReorderJitter = halveFloor(d.ReorderJitter) })
	}
	if c.Straggler > minQuantum {
		add(func(d *Candidate) { d.Straggler = halveZero(d.Straggler) })
	}
	// Halved drift, zeroing below 100 ppm (hardware-grade drift does not
	// move any objective).
	if c.DriftPPM >= 200 {
		add(func(d *Candidate) { d.DriftPPM = d.DriftPPM / 2 })
	}
	// Halved rates, zeroing below 5%.
	if c.Loss > 0 {
		add(func(d *Candidate) { d.Loss = halveRate(d.Loss) })
	}
	if c.Duplication > 0 {
		add(func(d *Candidate) { d.Duplication = halveRate(d.Duplication) })
	}
	return out
}

// halveFloor halves a duration, flooring at minQuantum.
func halveFloor(d time.Duration) time.Duration {
	d /= 2
	if d < minQuantum {
		return minQuantum
	}
	return d
}

// halveZero halves a duration, zeroing below minQuantum.
func halveZero(d time.Duration) time.Duration {
	d /= 2
	if d < minQuantum {
		return 0
	}
	return d
}

// halveRate halves a probability, zeroing below 5%.
func halveRate(p float64) float64 {
	p /= 2
	if p < 0.05 {
		return 0
	}
	return p
}

// Minimize shrinks the candidate to a local minimum the predicate still
// accepts: a greedy fixpoint over the shrink relation, taking the first
// accepted shrink each round and stopping when none is. keep is never
// called on c itself — the caller established it. Minimization is
// serial and purely a function of (c, keep), so the result is
// byte-identical regardless of how the surrounding search is
// parallelized; with keep backed by an Evaluator, probes reuse the
// candidate-derived seeds and therefore reproduce anywhere.
func Minimize(c Candidate, f int, keep func(Candidate) bool) Candidate {
	c = c.Legalize(f)
	for {
		shrunk := false
		for _, d := range shrinks(c) {
			d = d.Legalize(f)
			if d.Key() == c.Key() {
				continue
			}
			if keep(d) {
				c = d
				shrunk = true
				break
			}
		}
		if !shrunk {
			return c
		}
	}
}

// axisVector flattens the candidate's axes for the monotone-shrinkage
// check: every Minimize output is ≤ its input pointwise (with the
// strategy axis ordered by presence). Exported for the minimizer tests.
func axisVector(c Candidate) []float64 {
	strat := 0.0
	if c.Strategy != "" {
		strat = float64(1 + indexOf(adversary.AttackNames(), c.Strategy))
	}
	topo := 0.0
	if c.Topology != "" {
		topo = float64(1 + indexOf(harness.WANPresets, c.Topology))
	}
	return []float64{
		strat, float64(c.Nodes), float64(c.K), float64(c.Period),
		float64(c.GST), c.Loss, float64(c.LossUntil), c.Duplication,
		float64(c.ReorderJitter), float64(c.PartitionSize), float64(c.PartitionHeal),
		float64(c.ChurnNodes), float64(c.ChurnDown), float64(c.ChurnPeriod),
		topo, float64(c.DriftPPM), float64(c.Straggler),
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
