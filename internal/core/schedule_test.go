package core

import (
	"testing"
	"testing/quick"

	"lumiere/internal/types"
)

func TestRoundRobinPairs(t *testing.T) {
	s := RoundRobin{N: 4}
	want := []types.NodeID{0, 0, 1, 1, 2, 2, 3, 3, 0, 0}
	for v, w := range want {
		if got := s.Leader(types.View(v)); got != w {
			t.Fatalf("lead(%d) = %v, want %v", v, got, w)
		}
	}
	if s.Leader(types.NoView) != types.NoNode {
		t.Fatal("lead(-1)")
	}
}

func TestPermScheduleIsPermutationPerBlock(t *testing.T) {
	n := 7
	s := NewPermSchedule(n, 99)
	for block := 0; block < 12; block++ {
		seen := make(map[types.NodeID]int)
		for pos := 0; pos < n; pos++ {
			v := types.View(block*2*n + 2*pos)
			l := s.Leader(v)
			if l < 0 || int(l) >= n {
				t.Fatalf("leader out of range: %v", l)
			}
			seen[l]++
			// Pair property: v and v+1 share a leader.
			if s.Leader(v+1) != l {
				t.Fatalf("pair broken at view %d", v)
			}
		}
		if len(seen) != n {
			t.Fatalf("block %d is not a permutation: %v", block, seen)
		}
	}
}

func TestPermScheduleBoundaryContinuity(t *testing.T) {
	// The §4 requirement (strengthened per DESIGN.md): the last leader
	// of every 2n-block equals the first leader of the next, hence the
	// last leader of every epoch equals the first of the next.
	n := 9
	s := NewPermSchedule(n, 5)
	for block := 0; block < 40; block++ {
		last := s.Leader(types.View((block+1)*2*n - 1))
		first := s.Leader(types.View((block + 1) * 2 * n))
		if last != first {
			t.Fatalf("boundary %d: last=%v first=%v", block, last, first)
		}
	}
}

func TestPermScheduleOddBlocksAreReversals(t *testing.T) {
	n := 6
	s := NewPermSchedule(n, 11)
	for k := 0; k+1 < 10; k += 2 {
		for pos := 0; pos < n; pos++ {
			even := s.Leader(types.View(k*2*n + 2*pos))
			odd := s.Leader(types.View((k+1)*2*n + 2*(n-1-pos)))
			if even != odd {
				t.Fatalf("block %d not reversed at pos %d: %v vs %v", k+1, pos, even, odd)
			}
		}
	}
}

func TestPermScheduleDeterministicBySeed(t *testing.T) {
	a := NewPermSchedule(8, 42)
	b := NewPermSchedule(8, 42)
	for v := types.View(0); v < 500; v++ {
		if a.Leader(v) != b.Leader(v) {
			t.Fatalf("seeded schedules diverge at view %d", v)
		}
	}
	c := NewPermSchedule(8, 43)
	same := true
	for v := types.View(0); v < 500; v++ {
		if a.Leader(v) != c.Leader(v) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPermScheduleFairnessPerEpoch(t *testing.T) {
	// Each processor leads exactly 2·BlocksPerEpoch views per epoch.
	n, blocks := 5, 5
	s := NewPermSchedule(n, 3)
	epochLen := 2 * n * blocks
	counts := make(map[types.NodeID]int)
	for v := 0; v < epochLen; v++ {
		counts[s.Leader(types.View(v))]++
	}
	for id, c := range counts {
		if c != 2*blocks {
			t.Fatalf("node %v leads %d views per epoch, want %d", id, c, 2*blocks)
		}
	}
}

func TestPermScheduleRandomAccessQuick(t *testing.T) {
	// Property: out-of-order access returns the same answers as
	// sequential access (lazy generation is order-independent).
	seq := NewPermSchedule(6, 21)
	for v := types.View(0); v < 600; v++ {
		seq.Leader(v)
	}
	rnd := NewPermSchedule(6, 21)
	f := func(raw uint16) bool {
		v := types.View(raw) % 600
		return rnd.Leader(v) == seq.Leader(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
