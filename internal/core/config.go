// Package core implements Lumiere, the paper's primary contribution: an
// optimistically responsive Byzantine View Synchronization protocol for
// partial synchrony with O(n²) worst-case communication, O(nΔ) worst-case
// latency, smooth optimistic responsiveness, and eventual worst-case
// communication O(n·f_a + n).
//
// Two variants are provided:
//
//   - VariantFull is the full protocol of §4 (Algorithm 1): epochs of 10n
//     views, the success criterion that retires heavy epoch
//     synchronizations in the steady state, TC-relayed epoch changes, the
//     Δ-wait before epoch-view messages, and the leader QC-production
//     deadline Γ/2 − 2Δ that shrinks the (f+1)st honest gap.
//
//   - VariantBasic is Basic Lumiere of §3.4: LP22's heavy synchronization
//     at the start of every epoch (of 2(f+1) views) combined with Fever's
//     clock bumping within epochs. It is smoothly optimistically
//     responsive with O(n²) worst-case communication, but performs a heavy
//     synchronization every epoch forever.
package core

import (
	"fmt"
	"time"

	"lumiere/internal/types"
)

// Variant selects the protocol variant.
type Variant int

// Protocol variants.
const (
	// VariantFull is the §4 protocol (Algorithm 1).
	VariantFull Variant = iota + 1
	// VariantBasic is Basic Lumiere (§3.4).
	VariantBasic
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "lumiere"
	case VariantBasic:
		return "basic-lumiere"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterizes a Lumiere pacemaker.
type Config struct {
	// Base is the execution-model configuration (n, f, Δ, x).
	Base types.Config
	// Variant selects full Lumiere (default) or Basic Lumiere.
	Variant Variant
	// BlocksPerEpoch is the number of 2n-view leader-permutation blocks
	// per epoch for the full variant. The paper uses 5, making epochs
	// 10n views long (§4 "Epochs and epoch views"). Each leader leads
	// 2·BlocksPerEpoch views per epoch.
	BlocksPerEpoch int
	// QCsPerLeaderForSuccess is the number of QCs each of 2f+1 distinct
	// leaders must produce in an epoch to satisfy the success
	// criterion. The paper uses 10 = 2·BlocksPerEpoch; 0 means derive
	// it that way.
	QCsPerLeaderForSuccess int
	// GammaOverride overrides Γ; 0 uses the paper's value
	// (2(x+2)Δ for full, 2(x+1)Δ for basic).
	GammaOverride time.Duration
	// DisableDeltaWait removes the Δ-wait before sending epoch-view
	// messages (§3.5's final fix); used by the ablation experiment.
	DisableDeltaWait bool
	// ScheduleSeed seeds the full variant's leader permutation
	// schedule.
	ScheduleSeed int64
	// RoundRobin forces the deterministic ⌊v/2⌋ mod n schedule instead
	// of random permutations (tests and the basic variant).
	RoundRobin bool
	// CheckInvariants enables per-step verification of the paper's
	// Lemmas 5.1-5.3; violations are recorded (see
	// Pacemaker.Violations).
	CheckInvariants bool
}

// DefaultConfig returns the paper-default full-variant configuration.
func DefaultConfig(base types.Config) Config {
	return Config{Base: base, Variant: VariantFull, BlocksPerEpoch: 5}
}

// normalized fills in derived defaults.
func (c Config) normalized() Config {
	if c.Variant == 0 {
		c.Variant = VariantFull
	}
	if c.BlocksPerEpoch <= 0 {
		c.BlocksPerEpoch = 5
	}
	if c.QCsPerLeaderForSuccess <= 0 {
		c.QCsPerLeaderForSuccess = 2 * c.BlocksPerEpoch
	}
	if c.Variant == VariantBasic {
		c.RoundRobin = true
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	n := c.normalized()
	if n.Variant != VariantFull && n.Variant != VariantBasic {
		return fmt.Errorf("core: unknown variant %v", c.Variant)
	}
	return nil
}

// Gamma returns the view duration Γ: 2(x+2)Δ for the full variant (§4),
// 2(x+1)Δ for basic (§3.3-3.4), unless overridden.
func (c Config) Gamma() time.Duration {
	if c.GammaOverride > 0 {
		return c.GammaOverride
	}
	x := time.Duration(c.Base.X)
	if c.normalized().Variant == VariantBasic {
		return 2 * (x + 1) * c.Base.Delta
	}
	return 2 * (x + 2) * c.Base.Delta
}

// QCWindow returns the leader QC-production window Γ/2 − 2Δ (§4), or a
// negative value meaning "no deadline" for the basic variant.
func (c Config) QCWindow() time.Duration {
	if c.normalized().Variant == VariantBasic {
		return -1
	}
	return c.Gamma()/2 - 2*c.Base.Delta
}

// EpochLen returns the number of views per epoch: 10n for the full
// variant (2n·BlocksPerEpoch), 2(f+1) for basic.
func (c Config) EpochLen() types.View {
	n := c.normalized()
	if n.Variant == VariantBasic {
		return types.View(2 * (c.Base.F + 1))
	}
	return types.View(2 * c.Base.N * n.BlocksPerEpoch)
}

// EpochOf returns E(v), the epoch a view belongs to (E(-1) = -1).
func (c Config) EpochOf(v types.View) types.Epoch {
	l := c.EpochLen()
	if v < 0 {
		return types.NoEpoch
	}
	return types.Epoch(v / l)
}

// FirstView returns V(e), the epoch view of epoch e.
func (c Config) FirstView(e types.Epoch) types.View {
	return types.View(e) * c.EpochLen()
}

// IsEpochView reports whether v is the first view of its epoch.
func (c Config) IsEpochView(v types.View) bool {
	return v >= 0 && v%c.EpochLen() == 0
}
