package core

import (
	"testing"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// fakeEP records everything a pacemaker sends.
type fakeEP struct {
	id     types.NodeID
	sends  []sentMsg
	bcasts []msg.Message
}

type sentMsg struct {
	to types.NodeID
	m  msg.Message
}

func (f *fakeEP) ID() types.NodeID { return f.id }
func (f *fakeEP) Send(to types.NodeID, m msg.Message) {
	f.sends = append(f.sends, sentMsg{to: to, m: m})
}
func (f *fakeEP) Broadcast(m msg.Message) { f.bcasts = append(f.bcasts, m) }

func (f *fakeEP) broadcastsOf(k msg.Kind) []msg.Message {
	var out []msg.Message
	for _, m := range f.bcasts {
		if m.Kind() == k {
			out = append(out, m)
		}
	}
	return out
}

func (f *fakeEP) sendsOf(k msg.Kind) []sentMsg {
	var out []sentMsg
	for _, s := range f.sends {
		if s.m.Kind() == k {
			out = append(out, s)
		}
	}
	return out
}

var _ network.Endpoint = (*fakeEP)(nil)

// recDriver records driver notifications.
type recDriver struct {
	entered []types.View
	started []types.View
	dls     []types.Time
}

func (r *recDriver) EnterView(v types.View) { r.entered = append(r.entered, v) }
func (r *recDriver) LeaderStart(v types.View, dl types.Time) {
	r.started = append(r.started, v)
	r.dls = append(r.dls, dl)
}

var _ pacemaker.Driver = (*recDriver)(nil)

// unit is a single Lumiere pacemaker with everything observable.
type unit struct {
	sched  *sim.Scheduler
	suite  *crypto.SimSuite
	ep     *fakeEP
	clk    *clock.Clock
	drv    *recDriver
	pm     *Pacemaker
	cfg    Config
	f, n   int
	quorum int
}

// newUnit builds a pacemaker for node id with f = 1 (n = 4), Δ = 100ms,
// round-robin leaders for predictability.
func newUnit(t *testing.T, id types.NodeID, mutate func(*Config)) *unit {
	t.Helper()
	u := &unit{sched: sim.New(1), f: 1, n: 4}
	u.quorum = 3
	u.suite = crypto.NewSimSuite(u.n, 5)
	u.ep = &fakeEP{id: id}
	u.clk = clock.New(u.sched, 0)
	u.drv = &recDriver{}
	u.cfg = DefaultConfig(types.NewConfig(u.f, 100*time.Millisecond))
	u.cfg.RoundRobin = true
	u.cfg.CheckInvariants = true
	if mutate != nil {
		mutate(&u.cfg)
	}
	u.pm = New(u.cfg, u.ep, u.sched, u.clk, u.suite, u.drv, nil, nil)
	return u
}

func (u *unit) requireClean(t *testing.T) {
	t.Helper()
	for _, v := range u.pm.Violations() {
		t.Errorf("violation: %s", v)
	}
}

// viewMsgFrom builds a signed view-v message.
func (u *unit) viewMsgFrom(from types.NodeID, v types.View) *msg.ViewMsg {
	return &msg.ViewMsg{V: v, Sig: u.suite.SignerFor(from).Sign(msg.ViewStatement(v))}
}

// epochViewFrom builds a signed epoch-view-v message.
func (u *unit) epochViewFrom(from types.NodeID, v types.View) *msg.EpochViewMsg {
	return &msg.EpochViewMsg{V: v, Sig: u.suite.SignerFor(from).Sign(msg.EpochViewStatement(v))}
}

// qcFor builds a valid QC for view v.
func (u *unit) qcFor(v types.View) *msg.QC {
	var h [32]byte
	var sigs []crypto.Signature
	for i := 0; i < u.quorum; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.VoteStatement(v, h)))
	}
	agg, err := u.suite.Aggregate(msg.VoteStatement(v, h), sigs)
	if err != nil {
		panic(err)
	}
	return &msg.QC{V: v, BlockHash: h, Agg: agg}
}

// vcFor builds a valid VC for view v.
func (u *unit) vcFor(v types.View) *msg.VC {
	var sigs []crypto.Signature
	for i := 0; i < u.f+1; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.ViewStatement(v)))
	}
	agg, err := u.suite.Aggregate(msg.ViewStatement(v), sigs)
	if err != nil {
		panic(err)
	}
	return &msg.VC{V: v, Agg: agg}
}

// ecFor builds an EC (2f+1 epoch-view messages) for epoch view v.
func (u *unit) ecFor(v types.View) *msg.EC {
	var sigs []crypto.Signature
	for i := 0; i < u.quorum; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.EpochViewStatement(v)))
	}
	agg, err := u.suite.Aggregate(msg.EpochViewStatement(v), sigs)
	if err != nil {
		panic(err)
	}
	return &msg.EC{V: v, Agg: agg}
}

// tcFor builds a TC (f+1 epoch-view messages) for epoch view v.
func (u *unit) tcFor(v types.View) *msg.TC {
	var sigs []crypto.Signature
	for i := 0; i < u.f+1; i++ {
		sigs = append(sigs, u.suite.SignerFor(types.NodeID(i)).Sign(msg.EpochViewStatement(v)))
	}
	agg, err := u.suite.Aggregate(msg.EpochViewStatement(v), sigs)
	if err != nil {
		panic(err)
	}
	return &msg.TC{V: v, Agg: agg}
}

// TestBootstrapPausesAndSendsEpochView: at start lc = 0 = c_0 with
// success(-1) = 0 (lines 9-11): pause, wait Δ, broadcast epoch-view-0.
func TestBootstrapPausesAndSendsEpochView(t *testing.T) {
	u := newUnit(t, 0, nil)
	u.pm.Start()
	if !u.pm.Paused() {
		t.Fatal("not paused at boot boundary")
	}
	if len(u.ep.broadcastsOf(msg.KindEpochView)) != 0 {
		t.Fatal("epoch-view sent before the Δ-wait")
	}
	u.sched.RunFor(100 * time.Millisecond)
	if got := u.ep.broadcastsOf(msg.KindEpochView); len(got) != 1 || got[0].View() != 0 {
		t.Fatalf("epoch-view sends = %v", got)
	}
	if u.pm.CurrentView() != types.NoView {
		t.Fatal("entered a view without an EC")
	}
	u.requireClean(t)
}

// TestDisableDeltaWaitSendsImmediately covers the ablation switch.
func TestDisableDeltaWaitSendsImmediately(t *testing.T) {
	u := newUnit(t, 0, func(c *Config) { c.DisableDeltaWait = true })
	u.pm.Start()
	if got := u.ep.broadcastsOf(msg.KindEpochView); len(got) != 1 {
		t.Fatalf("epoch-view sends = %d, want immediate", len(got))
	}
}

// TestECEntersEpochAndSendsViewMsg: an EC for view 0 unpauses, enters
// epoch 0 / view 0, and (line 28) sends a view-0 message to lead(0).
func TestECEntersEpochAndSendsViewMsg(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	if u.pm.Paused() {
		t.Fatal("still paused after EC")
	}
	if u.pm.CurrentView() != 0 || u.pm.CurrentEpoch() != 0 {
		t.Fatalf("position = (%v, %v)", u.pm.CurrentView(), u.pm.CurrentEpoch())
	}
	vm := u.ep.sendsOf(msg.KindView)
	if len(vm) != 1 || vm[0].to != 0 || vm[0].m.View() != 0 {
		t.Fatalf("view msgs = %+v, want view-0 to p0", vm)
	}
	if len(u.drv.entered) == 0 || u.drv.entered[len(u.drv.entered)-1] != 0 {
		t.Fatalf("driver entered = %v", u.drv.entered)
	}
	u.requireClean(t)
}

// TestECImpliesTCRelay: per §3.5, a processor seeing the epoch change
// must contribute its own epoch-view message (line 21, via the implied
// TC).
func TestECImpliesTCRelay(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	if got := u.ep.broadcastsOf(msg.KindEpochView); len(got) != 1 {
		t.Fatalf("epoch-view relays = %d, want 1", len(got))
	}
}

// TestTCBumpsAndPauses: a TC for a future epoch view (lines 16-21) bumps
// the clock to c_v, moves to view v-1, sends the epoch-view message, and
// the landing triggers the pause (success = 0).
func TestTCBumpsAndPauses(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))   // enter epoch 0 first
	boundary := u.cfg.EpochLen() // V(1)
	u.pm.Handle(2, u.tcFor(boundary))
	if u.pm.LocalClock() != types.Time(boundary)*types.Time(u.pm.Gamma()) {
		t.Fatalf("lc = %v, want c_%d", u.pm.LocalClock(), boundary)
	}
	if u.pm.CurrentView() != boundary-1 {
		t.Fatalf("view = %v, want %d (line 20)", u.pm.CurrentView(), boundary-1)
	}
	if !u.pm.Paused() {
		t.Fatal("not paused at the TC'd boundary")
	}
	found := false
	for _, m := range u.ep.broadcastsOf(msg.KindEpochView) {
		if m.View() == boundary {
			found = true
		}
	}
	if !found {
		t.Fatal("line 21 epoch-view message not sent")
	}
	u.requireClean(t)
}

// TestQCAdvancesViewAndBumps: lines 44-49 for a non-epoch successor.
func TestQCAdvancesViewAndBumps(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.pm.Handle(2, u.qcFor(0))
	if u.pm.CurrentView() != 1 {
		t.Fatalf("view = %v, want 1", u.pm.CurrentView())
	}
	if u.pm.LocalClock() != types.Time(u.pm.Gamma()) {
		t.Fatalf("lc = %v, want c_1", u.pm.LocalClock())
	}
	// QC for view 1 enters initial view 2 and (line 28 at the bump
	// landing) sends a view-2 message.
	u.pm.Handle(2, u.qcFor(1))
	if u.pm.CurrentView() != 2 {
		t.Fatalf("view = %v, want 2", u.pm.CurrentView())
	}
	vm := u.ep.sendsOf(msg.KindView)
	last := vm[len(vm)-1]
	if last.m.View() != 2 || last.to != 1 {
		t.Fatalf("last view msg %+v, want view-2 to p1 (round robin)", last)
	}
	u.requireClean(t)
}

// TestQCIntoEpochBoundary: line 49 — a QC for the last view of an epoch
// moves to that view (not past it) and the landing pauses at the
// boundary.
func TestQCIntoEpochBoundary(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	last := u.cfg.EpochLen() - 1 // non-initial view before V(1)
	u.pm.Handle(2, u.qcFor(last))
	if u.pm.CurrentView() != last {
		t.Fatalf("view = %v, want %v (line 49)", u.pm.CurrentView(), last)
	}
	if !u.pm.Paused() {
		t.Fatal("boundary landing did not pause (success=0)")
	}
	u.requireClean(t)
}

// TestVCEntry: lines 36-40 — a VC for a future initial view enters it
// directly, bumping the clock, even across the epoch boundary.
func TestVCEntry(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	target := u.cfg.EpochLen() + 4 // initial, inside epoch 1
	u.pm.Handle(2, u.vcFor(target))
	if u.pm.CurrentView() != target || u.pm.CurrentEpoch() != 1 {
		t.Fatalf("position = (%v, %v), want (%v, 1)", u.pm.CurrentView(), u.pm.CurrentEpoch(), target)
	}
	u.requireClean(t)
}

// TestPendingViewMsgsOnSkip: line 46 — a QC far ahead triggers view
// messages for every skipped initial view.
func TestPendingViewMsgsOnSkip(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.pm.Handle(2, u.qcFor(8)) // skip views 1..8
	views := make(map[types.View]bool)
	for _, s := range u.ep.sendsOf(msg.KindView) {
		views[s.m.View()] = true
	}
	// Line 46 covers initial views in [view(p), 8) — view 8 itself is
	// jumped over (the bump lands on c_9), exactly the paper's
	// semantics.
	for v := types.View(0); v < 8; v += 2 {
		if !views[v] {
			t.Fatalf("missing pending view message for %v (have %v)", v, views)
		}
	}
	if views[8] {
		t.Fatal("view-8 message sent despite the bump jumping over c_8")
	}
	u.requireClean(t)
}

// TestSuccessCriterionFlipsAtThreshold: success(e) requires 2f+1 distinct
// leaders each with 2·BlocksPerEpoch QCs.
func TestSuccessCriterionFlipsAtThreshold(t *testing.T) {
	u := newUnit(t, 1, func(c *Config) { c.BlocksPerEpoch = 1 }) // epoch = 2n = 8 views, 2 QCs per leader
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	// Round robin: views (0,1)→p0, (2,3)→p1, (4,5)→p2, (6,7)→p3.
	// Feed QCs for leaders p0, p1 fully and p2 partially: no success.
	for _, v := range []types.View{0, 1, 2, 3, 4} {
		u.pm.Handle(2, u.qcFor(v))
	}
	if u.pm.SuccessOf(0) {
		t.Fatal("success flipped below threshold")
	}
	u.pm.Handle(2, u.qcFor(5)) // completes p2: now 3 = 2f+1 leaders
	if !u.pm.SuccessOf(0) {
		t.Fatal("success did not flip at 2f+1 leaders")
	}
	u.requireClean(t)
}

// TestSuccessSkipsHeavySync: with success(0) set, reaching c_{V(1)}
// enters epoch 1 as a standard initial view (lines 13-14): no pause, no
// epoch-view message, and a view message to the boundary leader.
func TestSuccessSkipsHeavySync(t *testing.T) {
	u := newUnit(t, 1, func(c *Config) { c.BlocksPerEpoch = 1 })
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	for v := types.View(0); v < 8; v++ {
		u.pm.Handle(2, u.qcFor(v))
	}
	if !u.pm.SuccessOf(0) {
		t.Fatal("success not satisfied")
	}
	// The QC for view 7 bumped lc to c_8 = c_{V(1)}: the boundary
	// trigger must have entered epoch 1 directly.
	if u.pm.CurrentEpoch() != 1 || u.pm.CurrentView() != 8 {
		t.Fatalf("position = (%v, %v), want (8, 1)", u.pm.CurrentView(), u.pm.CurrentEpoch())
	}
	if u.pm.Paused() {
		t.Fatal("paused despite success criterion")
	}
	for _, m := range u.ep.broadcastsOf(msg.KindEpochView) {
		if m.View() == 8 {
			t.Fatal("heavy sync started despite success")
		}
	}
	u.requireClean(t)
}

// TestSuccessFlipUnpauses: a processor paused at V(e+1) enters the epoch
// when success(e) flips (line 10's success clause + lines 13-14).
func TestSuccessFlipUnpauses(t *testing.T) {
	u := newUnit(t, 1, func(c *Config) { c.BlocksPerEpoch = 1 })
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	// Reach the boundary without success: QC for view 7 only.
	u.pm.Handle(2, u.qcFor(7))
	if !u.pm.Paused() || u.pm.CurrentView() != 7 {
		t.Fatalf("not paused at boundary: view=%v paused=%v", u.pm.CurrentView(), u.pm.Paused())
	}
	// Late QCs for the earlier views flip success(0).
	for v := types.View(0); v < 7; v++ {
		u.pm.Handle(2, u.qcFor(v))
	}
	if !u.pm.SuccessOf(0) {
		t.Fatal("success not satisfied")
	}
	if u.pm.Paused() || u.pm.CurrentView() != 8 || u.pm.CurrentEpoch() != 1 {
		t.Fatalf("did not enter epoch on success flip: view=%v epoch=%v paused=%v",
			u.pm.CurrentView(), u.pm.CurrentEpoch(), u.pm.Paused())
	}
	u.requireClean(t)
}

// TestTCForPauseViewDoesNotUnpause: line 10 — only a TC for a view
// *greater* than the pause view unpauses.
func TestTCForPauseViewDoesNotUnpause(t *testing.T) {
	u := newUnit(t, 1, func(c *Config) { c.BlocksPerEpoch = 1 })
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.pm.Handle(2, u.qcFor(7)) // paused at V(1) = 8
	u.pm.Handle(2, u.tcFor(8))
	if !u.pm.Paused() {
		t.Fatal("TC for the pause view unpaused")
	}
	// But it must have triggered the epoch-view send (line 21).
	found := false
	for _, m := range u.ep.broadcastsOf(msg.KindEpochView) {
		if m.View() == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("TC did not trigger the epoch-view message")
	}
	u.requireClean(t)
}

// TestQCUnpausesAtOrAbovePauseView: line 10 — a QC for a view ≥ the
// pause view unpauses.
func TestQCUnpausesAtOrAbovePauseView(t *testing.T) {
	u := newUnit(t, 1, func(c *Config) { c.BlocksPerEpoch = 1 })
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.pm.Handle(2, u.qcFor(7)) // paused at 8
	u.pm.Handle(2, u.qcFor(8)) // QC for the pause view
	if u.pm.Paused() {
		t.Fatal("QC for pause view did not unpause")
	}
	if u.pm.CurrentView() != 9 {
		t.Fatalf("view = %v, want 9", u.pm.CurrentView())
	}
	u.requireClean(t)
}

// TestLeaderFormsVCAndStarts: lines 32-34 — the leader aggregates f+1
// view messages into a VC, broadcasts it, and starts driving the view
// with the Γ/2−2Δ deadline.
func TestLeaderFormsVCAndStarts(t *testing.T) {
	u := newUnit(t, 0, nil) // p0 leads views 0,1 under round robin
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.pm.Handle(1, u.viewMsgFrom(1, 0))
	if len(u.ep.broadcastsOf(msg.KindVC)) != 0 {
		t.Fatal("VC formed below f+1")
	}
	u.pm.Handle(2, u.viewMsgFrom(2, 0))
	// p0's own view-0 message went through the endpoint (not self-
	// delivered by the fake); two remote ones reach f+1 = 2.
	vcs := u.ep.broadcastsOf(msg.KindVC)
	if len(vcs) != 1 || vcs[0].View() != 0 {
		t.Fatalf("VCs = %v", vcs)
	}
	if len(u.drv.started) != 1 || u.drv.started[0] != 0 {
		t.Fatalf("driver started = %v", u.drv.started)
	}
	wantDL := u.sched.Now().Add(u.cfg.QCWindow())
	if u.drv.dls[0] != wantDL {
		t.Fatalf("deadline = %v, want %v (VC send + Γ/2−2Δ)", u.drv.dls[0], wantDL)
	}
	u.requireClean(t)
}

// TestNonInitialLeaderStartAnchoredAtQC: the leader of the odd view of
// its pair starts it upon its own QC with a fresh deadline.
func TestNonInitialLeaderStartAnchoredAtQC(t *testing.T) {
	u := newUnit(t, 0, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.sched.RunFor(70 * time.Millisecond)
	u.pm.Handle(0, u.qcFor(0)) // p0's own QC for view 0
	if len(u.drv.started) == 0 || u.drv.started[len(u.drv.started)-1] != 1 {
		t.Fatalf("driver started = %v, want view 1", u.drv.started)
	}
	wantDL := u.sched.Now().Add(u.cfg.QCWindow())
	if u.drv.dls[len(u.drv.dls)-1] != wantDL {
		t.Fatalf("deadline = %v, want %v", u.drv.dls[len(u.drv.dls)-1], wantDL)
	}
	u.requireClean(t)
}

// TestInvalidCertificatesRejected: forged or undersized certificates are
// ignored.
func TestInvalidCertificatesRejected(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	// EC with only f+1 signatures (that's a TC, not an EC).
	short := u.tcFor(0)
	u.pm.Handle(2, &msg.EC{V: 0, Agg: short.Agg})
	if u.pm.CurrentEpoch() != types.NoEpoch {
		t.Fatal("undersized EC accepted")
	}
	// QC with tampered signature bytes.
	qc := u.qcFor(0)
	qc.Agg.Bytes[0] = append([]byte(nil), qc.Agg.Bytes[0]...)
	qc.Agg.Bytes[0][0] ^= 1
	u.pm.Handle(2, qc)
	if u.pm.CurrentView() != types.NoView {
		t.Fatal("tampered QC accepted")
	}
	// View message with mismatched claimed sender.
	u2 := newUnit(t, 0, nil)
	u2.pm.Start()
	u2.pm.Handle(2, u2.ecFor(0))
	u2.pm.Handle(3, u2.viewMsgFrom(1, 0)) // from=3 but signed by 1
	u2.pm.Handle(2, u2.viewMsgFrom(2, 0))
	if len(u2.ep.broadcastsOf(msg.KindVC)) != 0 {
		t.Fatal("mismatched view message counted toward VC")
	}
	u.requireClean(t)
}

// TestEpochViewAssemblyThresholds: f+1 broadcast epoch-view messages act
// as a TC; 2f+1 act as an EC.
func TestEpochViewAssemblyThresholds(t *testing.T) {
	u := newUnit(t, 3, nil)
	u.pm.Start()
	u.pm.Handle(0, u.epochViewFrom(0, 0))
	if u.pm.CurrentEpoch() != types.NoEpoch || u.pm.LocalClock() != 0 {
		t.Fatal("single epoch-view message had effect")
	}
	u.pm.Handle(1, u.epochViewFrom(1, 0))
	// f+1 = 2 distinct: TC processed — and at boot lc is already c_0,
	// so no bump, but the epoch-view relay (line 21) fires.
	if len(u.ep.broadcastsOf(msg.KindEpochView)) != 1 {
		t.Fatal("TC assembly did not trigger relay")
	}
	if u.pm.CurrentEpoch() != types.NoEpoch {
		t.Fatal("entered epoch on TC alone")
	}
	u.pm.Handle(2, u.epochViewFrom(2, 0))
	if u.pm.CurrentEpoch() != 0 || u.pm.CurrentView() != 0 {
		t.Fatalf("EC assembly did not enter epoch: (%v, %v)", u.pm.CurrentView(), u.pm.CurrentEpoch())
	}
	u.requireClean(t)
}

// TestBasicVariantBroadcastsEC: §3.4 — the basic variant re-broadcasts
// the combined EC and never uses the success criterion.
func TestBasicVariantBroadcastsEC(t *testing.T) {
	u := newUnit(t, 3, func(c *Config) { c.Variant = VariantBasic })
	u.pm.Start()
	if len(u.ep.broadcastsOf(msg.KindEpochView)) != 1 {
		t.Fatal("basic variant must send epoch-view immediately (no Δ-wait)")
	}
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	if len(u.ep.broadcastsOf(msg.KindEC)) != 1 {
		t.Fatal("basic variant did not broadcast the EC")
	}
	if u.pm.CurrentEpoch() != 0 {
		t.Fatal("did not enter epoch")
	}
	u.requireClean(t)
}

// TestStaleMessagesIgnored: certificates for views far below the current
// position have no effect.
func TestStaleMessagesIgnored(t *testing.T) {
	u := newUnit(t, 1, nil)
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	u.pm.Handle(2, u.qcFor(10))
	view := u.pm.CurrentView()
	lc := u.pm.LocalClock()
	u.pm.Handle(2, u.vcFor(2))
	u.pm.Handle(2, u.qcFor(3))
	if u.pm.CurrentView() != view || u.pm.LocalClock() != lc {
		t.Fatal("stale certificate moved the pacemaker")
	}
	u.requireClean(t)
}

// TestDeadlineIsInfiniteForBasic: the basic variant imposes no QC
// deadline.
func TestDeadlineIsInfiniteForBasic(t *testing.T) {
	u := newUnit(t, 0, func(c *Config) { c.Variant = VariantBasic })
	u.pm.Start()
	for i := 0; i < 3; i++ {
		u.pm.Handle(types.NodeID(i), u.epochViewFrom(types.NodeID(i), 0))
	}
	u.pm.Handle(1, u.viewMsgFrom(1, 0))
	u.pm.Handle(2, u.viewMsgFrom(2, 0))
	if len(u.drv.started) == 0 {
		t.Fatal("leader never started")
	}
	if u.drv.dls[len(u.drv.dls)-1] != types.TimeInf {
		t.Fatalf("basic deadline = %v, want ∞", u.drv.dls[len(u.drv.dls)-1])
	}
}
