package core

import (
	"testing"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/types"
)

// These tests pin down the §3.5 Δ-wait mechanism deterministically: a
// processor whose clock reaches c_{V(e+1)} by the passage of time while
// the success-deciding QCs are still in flight (< Δ away) must NOT start
// a heavy synchronization — with the Δ-wait it sees success(e) flip
// before sending; without it (the ablation) it broadcasts a spurious
// epoch-view message.

// reachBoundaryWithPendingSuccess drives a unit to the V(1) boundary by
// clock time with success(0) one QC short, then delivers the deciding QC
// Δ/2 after the pause.
func reachBoundaryWithPendingSuccess(t *testing.T, disable bool) (*unit, types.View) {
	t.Helper()
	u := newUnit(t, 1, func(c *Config) {
		c.BlocksPerEpoch = 1 // epoch = 2n = 8 views; 2 QCs per leader
		c.DisableDeltaWait = disable
	})
	u.pm.Start()
	u.pm.Handle(2, u.ecFor(0))
	// Deliver QCs for views {0,1,2,3,4,6}: leaders p0, p1 complete
	// (2 QCs each) but p2 and p3 hold one each — success(0) needs a
	// third completed leader and is exactly one QC (view 5) short.
	for _, v := range []types.View{0, 1, 2, 3, 4, 6} {
		u.pm.Handle(2, u.qcFor(v))
	}
	if u.pm.SuccessOf(0) {
		t.Fatal("success flipped early")
	}
	// The QC for view 6 bumped lc to c_7; let the clock run Γ to the
	// boundary c_8 = c_{V(1)}: the processor pauses (lines 9-11).
	u.sched.RunFor(u.pm.Gamma())
	if !u.pm.Paused() {
		t.Fatalf("not paused at boundary: lc=%v view=%v", u.pm.LocalClock(), u.pm.CurrentView())
	}
	return u, 8
}

func countEpochViewSends(u *unit, w types.View) int {
	n := 0
	for _, m := range u.ep.bcasts {
		if m.Kind() == msg.KindEpochView && m.View() == w {
			n++
		}
	}
	return n
}

// TestDeltaWaitSuppressesSpuriousHeavySync: with the Δ-wait, the deciding
// QC arriving Δ/2 after the pause flips success before the send fires.
func TestDeltaWaitSuppressesSpuriousHeavySync(t *testing.T) {
	u, boundary := reachBoundaryWithPendingSuccess(t, false)
	u.sched.RunFor(50 * time.Millisecond) // Δ/2 of the Δ = 100ms wait
	u.pm.Handle(2, u.qcFor(5))            // deciding QC: success(0) = 1
	if !u.pm.SuccessOf(0) {
		t.Fatal("success did not flip")
	}
	if u.pm.Paused() {
		t.Fatal("success flip did not enter the epoch")
	}
	u.sched.RunFor(200 * time.Millisecond) // past the Δ-wait deadline
	if got := countEpochViewSends(u, boundary); got != 0 {
		t.Fatalf("spurious heavy sync despite Δ-wait: %d epoch-view sends", got)
	}
	if u.pm.CurrentEpoch() != 1 {
		t.Fatalf("epoch = %v, want 1", u.pm.CurrentEpoch())
	}
	u.requireClean(t)
}

// TestAblationWithoutDeltaWaitSendsSpuriously: the same timing without
// the wait broadcasts the epoch-view message the instant the clock pauses
// — the spurious Θ(n²) sync the paper's final fix removes.
func TestAblationWithoutDeltaWaitSendsSpuriously(t *testing.T) {
	u, boundary := reachBoundaryWithPendingSuccess(t, true)
	if got := countEpochViewSends(u, boundary); got != 1 {
		t.Fatalf("epoch-view sends = %d, want immediate spurious send", got)
	}
	// The processor still recovers once the deciding QC arrives.
	u.sched.RunFor(50 * time.Millisecond)
	u.pm.Handle(2, u.qcFor(5))
	if u.pm.Paused() || u.pm.CurrentEpoch() != 1 {
		t.Fatalf("did not recover: epoch=%v paused=%v", u.pm.CurrentEpoch(), u.pm.Paused())
	}
	u.requireClean(t)
}

// TestDeltaWaitTimesOutWhenSuccessNeverComes: when the epoch genuinely
// fails the success criterion, the Δ-wait expires and the heavy
// synchronization proceeds — the wait must not cost liveness.
func TestDeltaWaitTimesOutWhenSuccessNeverComes(t *testing.T) {
	u, boundary := reachBoundaryWithPendingSuccess(t, false)
	u.sched.RunFor(150 * time.Millisecond) // past Δ = 100ms
	if got := countEpochViewSends(u, boundary); got != 1 {
		t.Fatalf("epoch-view sends = %d, want 1 after the wait expires", got)
	}
	if !u.pm.Paused() {
		t.Fatal("should remain paused until an EC or success")
	}
	u.requireClean(t)
}
