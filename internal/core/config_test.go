package core

import (
	"testing"
	"testing/quick"
	"time"

	"lumiere/internal/types"
)

func fullCfg(f int) Config {
	return DefaultConfig(types.NewConfig(f, 100*time.Millisecond))
}

func basicCfg(f int) Config {
	c := DefaultConfig(types.NewConfig(f, 100*time.Millisecond))
	c.Variant = VariantBasic
	return c
}

func TestEpochGeometryFull(t *testing.T) {
	c := fullCfg(3) // n = 10
	if got := c.EpochLen(); got != 100 {
		t.Fatalf("epoch len = %d, want 10n = 100", got)
	}
	if c.FirstView(0) != 0 || c.FirstView(2) != 200 {
		t.Fatal("FirstView wrong")
	}
	if c.EpochOf(0) != 0 || c.EpochOf(99) != 0 || c.EpochOf(100) != 1 {
		t.Fatal("EpochOf wrong")
	}
	if c.EpochOf(types.NoView) != types.NoEpoch {
		t.Fatal("EpochOf(-1) != -1")
	}
	if !c.IsEpochView(0) || !c.IsEpochView(100) || c.IsEpochView(50) || c.IsEpochView(-1) {
		t.Fatal("IsEpochView wrong")
	}
}

func TestEpochGeometryBasic(t *testing.T) {
	c := basicCfg(3)
	if got := c.EpochLen(); got != 8 {
		t.Fatalf("basic epoch len = %d, want 2(f+1) = 8", got)
	}
}

func TestGammaValues(t *testing.T) {
	// x = 3, Δ = 100ms.
	if got := fullCfg(1).Gamma(); got != 1000*time.Millisecond {
		t.Fatalf("full Γ = %v, want 2(x+2)Δ = 1s", got)
	}
	if got := basicCfg(1).Gamma(); got != 800*time.Millisecond {
		t.Fatalf("basic Γ = %v, want 2(x+1)Δ = 800ms", got)
	}
	over := fullCfg(1)
	over.GammaOverride = time.Second * 3
	if over.Gamma() != 3*time.Second {
		t.Fatal("override ignored")
	}
}

func TestQCWindow(t *testing.T) {
	// Γ/2 − 2Δ = 5Δ − 2Δ = 3Δ = xΔ.
	if got := fullCfg(1).QCWindow(); got != 300*time.Millisecond {
		t.Fatalf("qc window = %v, want 300ms", got)
	}
	if got := basicCfg(1).QCWindow(); got >= 0 {
		t.Fatalf("basic should have no deadline, got %v", got)
	}
}

func TestSuccessThresholdDefault(t *testing.T) {
	c := fullCfg(1).normalized()
	if c.QCsPerLeaderForSuccess != 10 {
		t.Fatalf("default success QCs = %d, want 10", c.QCsPerLeaderForSuccess)
	}
	c2 := fullCfg(1)
	c2.BlocksPerEpoch = 3
	if c2.normalized().QCsPerLeaderForSuccess != 6 {
		t.Fatal("derived success QCs should be 2·blocks")
	}
}

func TestValidate(t *testing.T) {
	if err := fullCfg(2).Validate(); err != nil {
		t.Fatalf("valid rejected: %v", err)
	}
	bad := fullCfg(2)
	bad.Base.Delta = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid base accepted")
	}
}

func TestEpochRoundTripQuick(t *testing.T) {
	c := fullCfg(2)
	// Property: every view belongs to exactly one epoch and
	// V(E(v)) ≤ v < V(E(v)+1).
	f := func(raw uint32) bool {
		v := types.View(raw)
		e := c.EpochOf(v)
		return c.FirstView(e) <= v && v < c.FirstView(e+1) && c.EpochOf(c.FirstView(e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVariantString(t *testing.T) {
	if VariantFull.String() != "lumiere" || VariantBasic.String() != "basic-lumiere" {
		t.Fatal("variant strings")
	}
}
