package core

import (
	"math/rand"
	"sync"

	"lumiere/internal/types"
)

// Schedule maps views to leaders.
type Schedule interface {
	Leader(v types.View) types.NodeID
}

// RoundRobin is the deterministic ⌊v/2⌋ mod n schedule of §3.3-§3.4:
// every leader gets two consecutive views.
type RoundRobin struct{ N int }

// Leader implements Schedule.
func (s RoundRobin) Leader(v types.View) types.NodeID {
	if v < 0 {
		return types.NoNode
	}
	return types.NodeID((v / 2) % types.View(s.N))
}

// PermSchedule is the §4 leader schedule: views are grouped into blocks of
// 2n, block k ordered by a permutation g_k of the processors, each leader
// receiving two consecutive views. The paper stipulates reverse-paired
// permutations so that the last leader of each epoch equals the first
// leader of the next (footnote 2); we enforce the slightly stronger
// invariant g_{k+1}(0) = g_k(n−1) at every block boundary, which implies
// the paper's property at every epoch boundary regardless of epoch length
// (see DESIGN.md §2). Odd-indexed blocks are exact reversals of their
// predecessors, as in the paper.
//
// Blocks are generated lazily from a seed and cached; the schedule is safe
// for concurrent use so one instance can be shared by all replicas (as the
// common PKI-distributed randomness the paper assumes).
type PermSchedule struct {
	n   int
	rng *rand.Rand

	mu     sync.Mutex
	blocks [][]types.NodeID
}

var (
	_ Schedule = RoundRobin{}
	_ Schedule = (*PermSchedule)(nil)
)

// NewPermSchedule creates a permutation schedule for n processors.
func NewPermSchedule(n int, seed int64) *PermSchedule {
	return &PermSchedule{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Leader implements Schedule.
func (s *PermSchedule) Leader(v types.View) types.NodeID {
	if v < 0 {
		return types.NoNode
	}
	block := int(v / types.View(2*s.n))
	pos := int((v / 2) % types.View(s.n))
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.blocks) <= block {
		s.blocks = append(s.blocks, s.nextBlockLocked())
	}
	return s.blocks[block][pos]
}

// nextBlockLocked generates the next permutation, maintaining the boundary
// invariant g_{k+1}(0) = g_k(n−1).
func (s *PermSchedule) nextBlockLocked() []types.NodeID {
	k := len(s.blocks)
	if k == 0 {
		return s.randPermLocked(types.NoNode)
	}
	prev := s.blocks[k-1]
	if k%2 == 1 {
		// Odd blocks are exact reversals of their predecessors
		// (paper footnote 2).
		rev := make([]types.NodeID, s.n)
		for i := range rev {
			rev[i] = prev[s.n-1-i]
		}
		return rev
	}
	// Even blocks are fresh random permutations constrained to start
	// with the previous block's last leader.
	return s.randPermLocked(prev[s.n-1])
}

// randPermLocked returns a random permutation of 0..n-1; if first is a
// valid node it is placed in position 0.
func (s *PermSchedule) randPermLocked(first types.NodeID) []types.NodeID {
	perm := make([]types.NodeID, s.n)
	for i := range perm {
		perm[i] = types.NodeID(i)
	}
	s.rng.Shuffle(s.n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	if first != types.NoNode {
		for i, id := range perm {
			if id == first {
				perm[0], perm[i] = perm[i], perm[0]
				break
			}
		}
	}
	return perm
}
