package core

import (
	"fmt"
	"time"

	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// Pacemaker is one processor's Lumiere instance (Algorithm 1). It is not
// internally synchronized: the owning runtime serializes all entry points
// (message deliveries, clock alarms, timer callbacks).
type Pacemaker struct {
	cfg      Config
	id       types.NodeID
	ep       network.Endpoint
	rt       clock.Runtime
	clk      *clock.Clock
	ticker   *clock.Ticker
	suite    crypto.Suite
	signer   crypto.Signer
	driver   pacemaker.Driver
	schedule Schedule
	obs      pacemaker.Observer
	tr       *trace.Tracer

	gamma    time.Duration
	qcWindow time.Duration // <0 means no deadline
	epochLen types.View

	view  types.View  // view(p), Algorithm 1 line 3
	epoch types.Epoch // epoch(p), Algorithm 1 line 4

	// Pause state for epoch boundaries (lines 9-11).
	pausedAt  types.View // epoch view at which the clock is paused; NoView when running
	pauseSeen quorum.Flags

	// Send dedupe ("if not already sent").
	sentView      quorum.Flags
	sentEpochView quorum.Flags

	// VC formation (leader side, lines 32-34).
	viewMsgs quorum.VoteSets
	vcFormed quorum.Flags
	vcSentAt map[types.View]types.Time
	vcSeen   quorum.Flags

	// EC / TC assembly from broadcast epoch-view messages.
	epochViewMsgs quorum.VoteSets
	tcDone        quorum.Flags
	ecDone        quorum.Flags

	// QC processing (lines 44-49) and the success criterion (§4).
	qcDone    quorum.Flags
	credited  quorum.Flags
	leaderQCs map[types.Epoch]map[types.NodeID]int
	success   map[types.Epoch]bool

	violations []string
	lastLC     types.Time
	// inBump counts bumpTo nesting: boundary triggers fired from an
	// explicit clock bump run mid-step (the bump and the view entry that
	// follows it are one atomic line of the pseudocode), so the invariant
	// checker skips the transient and validates the post-step state from
	// the enclosing handler instead.
	inBump int

	// stmt is the statement scratch: sign/verify statements are rebuilt
	// in place, so the message hot paths allocate no statement buffers.
	stmt msg.StmtScratch
}

var _ pacemaker.Pacemaker = (*Pacemaker)(nil)

// New creates a Lumiere pacemaker. clk must have been created on rt;
// driver receives view-entry and leader-start notifications; obs and tr
// may be nil.
func New(cfg Config, ep network.Endpoint, rt clock.Runtime, clk *clock.Clock,
	suite crypto.Suite, driver pacemaker.Driver, obs pacemaker.Observer, tr *trace.Tracer) *Pacemaker {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid config: %v", err))
	}
	var sched Schedule
	if cfg.RoundRobin {
		sched = RoundRobin{N: cfg.Base.N}
	} else {
		sched = NewPermSchedule(cfg.Base.N, cfg.ScheduleSeed)
	}
	if obs == nil {
		obs = pacemaker.NopObserver{}
	}
	if driver == nil {
		driver = pacemaker.NopDriver{}
	}
	p := &Pacemaker{
		cfg:       cfg,
		id:        ep.ID(),
		ep:        ep,
		rt:        rt,
		clk:       clk,
		suite:     suite,
		signer:    suite.SignerFor(ep.ID()),
		driver:    driver,
		schedule:  sched,
		obs:       obs,
		tr:        tr,
		gamma:     cfg.Gamma(),
		qcWindow:  cfg.QCWindow(),
		epochLen:  cfg.EpochLen(),
		view:      types.NoView,
		epoch:     types.NoEpoch,
		pausedAt:  types.NoView,
		vcSentAt:  make(map[types.View]types.Time),
		leaderQCs: make(map[types.Epoch]map[types.NodeID]int),
		success:   make(map[types.Epoch]bool),
	}
	p.viewMsgs.Reset(cfg.Base.N)
	p.epochViewMsgs.Reset(cfg.Base.N)
	return p
}

// SetSchedule replaces the leader schedule (all replicas must share one).
func (p *Pacemaker) SetSchedule(s Schedule) { p.schedule = s }

// Gamma returns the view duration Γ in effect.
func (p *Pacemaker) Gamma() time.Duration { return p.gamma }

// Start boots the protocol: processors join with lc(p) = 0 and the
// epoch-view-0 trigger fires (success(-1) = 0, so the execution begins
// with a heavy synchronization into epoch 0).
func (p *Pacemaker) Start() {
	p.ticker = clock.NewTicker(p.clk, p.gamma, p.onBoundary)
	p.ticker.StartInclusive()
	p.checkInvariants("start")
}

// CurrentView implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentView() types.View { return p.view }

// CurrentEpoch implements pacemaker.Pacemaker.
func (p *Pacemaker) CurrentEpoch() types.Epoch { return p.epoch }

// Leader implements pacemaker.Pacemaker.
func (p *Pacemaker) Leader(v types.View) types.NodeID { return p.schedule.Leader(v) }

// Paused reports whether the local clock is paused at an epoch boundary.
func (p *Pacemaker) Paused() bool { return p.clk.Paused() }

// LocalClock returns lc(p).
func (p *Pacemaker) LocalClock() types.Time { return p.clk.Read() }

// SuccessOf reports success(e) (§4).
func (p *Pacemaker) SuccessOf(e types.Epoch) bool { return p.success[e] }

// Violations returns recorded invariant violations (empty in correct
// executions; populated only with Config.CheckInvariants).
func (p *Pacemaker) Violations() []string { return p.violations }

// Handle implements pacemaker.Pacemaker.
func (p *Pacemaker) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.ViewMsg:
		p.onViewMsg(from, mm)
	case *msg.VC:
		p.onVC(mm)
	case *msg.EpochViewMsg:
		p.onEpochViewMsg(from, mm)
	case *msg.TC:
		p.onTCMessage(mm)
	case *msg.EC:
		p.onECMessage(mm)
	case *msg.QC:
		p.onQC(mm)
	}
	if p.cfg.CheckInvariants {
		p.checkInvariants(fmt.Sprintf("handle %v", m.Kind()))
	}
}

// ---------------------------------------------------------------------------
// Clock boundary triggers ("Upon lc(p) == c_v ...")
// ---------------------------------------------------------------------------

func (p *Pacemaker) onBoundary(w types.View) {
	switch {
	case p.cfg.IsEpochView(w):
		p.onEpochBoundary(w)
	case w.Initial():
		p.onInitialBoundary(w)
	}
	if p.cfg.CheckInvariants {
		p.checkInvariants(fmt.Sprintf("boundary %v", w))
	}
}

// onEpochBoundary implements lines 9-14: the clock attained c_w for an
// epoch view w.
func (p *Pacemaker) onEpochBoundary(w types.View) {
	if w <= p.view || p.pauseSeen.Has(w) {
		return
	}
	p.pauseSeen.Set(w)
	if p.successOf(p.cfg.EpochOf(w) - 1) {
		// Lines 13-14: enter the epoch treating w as a standard
		// initial view.
		p.enterInitial(w)
		return
	}
	// Lines 9-11: pause; after Δ, if still paused, start the heavy
	// synchronization.
	p.clk.Pause()
	p.pausedAt = w
	p.tr.Emit(p.rt.Now(), p.id, trace.PauseClock, w, "epoch boundary, success=0")
	if p.cfg.Variant == VariantBasic || p.cfg.DisableDeltaWait {
		p.sendEpochViewMsg(w)
		return
	}
	p.rt.After(p.cfg.Base.Delta, func() {
		if p.clk.Paused() && p.pausedAt == w {
			p.sendEpochViewMsg(w)
		}
		p.checkInvariants("delta-wait")
	})
}

// onInitialBoundary implements lines 28-30: the clock attained c_w for an
// initial non-epoch view w.
func (p *Pacemaker) onInitialBoundary(w types.View) {
	if p.epoch != p.cfg.EpochOf(w) || w < p.view {
		return
	}
	if w > p.view {
		p.setPosition(w, p.cfg.EpochOf(w))
		p.driver.EnterView(w)
	}
	p.sendViewMsg(w)
	p.maybeLeaderStartInitial(w)
}

// enterInitial enters epoch view w as a standard initial view (lines
// 13-14 followed by the line-28 trigger, whose condition lc == c_w ∧
// epoch(p) == E(w) becomes true at this instant).
func (p *Pacemaker) enterInitial(w types.View) {
	p.unpauseIfAt(w)
	p.setPosition(w, p.cfg.EpochOf(w))
	p.driver.EnterView(w)
	p.sendViewMsg(w)
	p.maybeLeaderStartInitial(w)
}

// ---------------------------------------------------------------------------
// View messages and VCs (lines 28-40)
// ---------------------------------------------------------------------------

// onViewMsg implements the leader side (lines 32-34).
func (p *Pacemaker) onViewMsg(from types.NodeID, vm *msg.ViewMsg) {
	w := vm.V
	if !w.Initial() || p.schedule.Leader(w) != p.id || w < p.view || p.vcFormed.Has(w) {
		return
	}
	if vm.Sig.Signer != from || p.suite.Verify(p.stmt.View(w), vm.Sig) != nil {
		return
	}
	sigs := p.viewMsgs.Get(w)
	sigs.Add(vm.Sig)
	if sigs.Count() < p.cfg.Base.Majority() {
		return
	}
	agg, err := p.suite.Aggregate(p.stmt.View(w), sigs.Sigs())
	if err != nil {
		return
	}
	p.vcFormed.Set(w)
	p.vcSentAt[w] = p.rt.Now()
	p.tr.Emit(p.rt.Now(), p.id, trace.FormVC, w, "")
	p.ep.Broadcast(&msg.VC{V: w, Agg: agg})
	// If the leader is already in view w, start driving it now; if not,
	// the self-delivered VC (same instant) enters the view first.
	p.maybeLeaderStartInitial(w)
}

// onVC implements lines 36-40.
func (p *Pacemaker) onVC(vc *msg.VC) {
	w := vc.V
	if !w.Initial() || w <= p.view || p.vcSeen.Has(w) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.View(w), vc.Agg, p.cfg.Base.Majority()) != nil {
		return
	}
	p.vcSeen.Set(w)
	// Line 10: a VC for a view ≥ the pause view unpauses.
	if p.pausedAt != types.NoView && w >= p.pausedAt {
		p.unpause("vc")
	}
	if p.clk.Read() < p.clockTime(w) {
		p.sendPendingViewMsgs(w) // line 38
	}
	p.setPosition(w, p.cfg.EpochOf(w)) // line 40
	p.driver.EnterView(w)
	p.bumpTo(w) // line 39 (fires the line-28 trigger on landing)
	p.sendViewMsg(w)
	p.maybeLeaderStartInitial(w)
}

// ---------------------------------------------------------------------------
// Epoch-view messages, TCs and ECs (lines 9-24, §3.5)
// ---------------------------------------------------------------------------

// onEpochViewMsg assembles TCs (f+1) and ECs (2f+1) from broadcast
// epoch-view messages.
func (p *Pacemaker) onEpochViewMsg(from types.NodeID, em *msg.EpochViewMsg) {
	w := em.V
	if !p.cfg.IsEpochView(w) || p.cfg.EpochOf(w) <= p.epoch-1 {
		return
	}
	if em.Sig.Signer != from || p.suite.Verify(p.stmt.EpochView(w), em.Sig) != nil {
		return
	}
	sigs := p.epochViewMsgs.Get(w)
	sigs.Add(em.Sig)
	if p.cfg.Variant == VariantFull && sigs.Count() >= p.cfg.Base.Majority() && !p.tcDone.Has(w) {
		p.onTC(w)
	}
	if sigs.Count() >= p.cfg.Base.Quorum() && !p.ecDone.Has(w) {
		if p.cfg.Variant == VariantBasic {
			// §3.4 / LP22: broadcast the combined EC.
			if agg, err := p.aggregateEpochViews(w); err == nil {
				p.ep.Broadcast(&msg.EC{V: w, Agg: agg})
			}
		}
		p.onEC(w)
	}
}

func (p *Pacemaker) aggregateEpochViews(w types.View) (crypto.Aggregate, error) {
	return p.suite.Aggregate(p.stmt.EpochView(w), p.epochViewMsgs.Get(w).Sigs())
}

// onTCMessage verifies a relayed compact TC.
func (p *Pacemaker) onTCMessage(tc *msg.TC) {
	w := tc.V
	if p.cfg.Variant != VariantFull || !p.cfg.IsEpochView(w) || p.tcDone.Has(w) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.EpochView(w), tc.Agg, p.cfg.Base.Majority()) != nil {
		return
	}
	p.onTC(w)
}

// onECMessage verifies a relayed compact EC. Views below the pruning
// bound stay forgotten: an EC for an epoch that far behind cannot move
// this processor, so it is treated as already seen.
func (p *Pacemaker) onECMessage(ec *msg.EC) {
	w := ec.V
	if !p.cfg.IsEpochView(w) || w < p.ecDone.Bound() || p.ecDone.Has(w) {
		return
	}
	if p.suite.VerifyAggregate(p.stmt.EpochView(w), ec.Agg, p.cfg.Base.Quorum()) != nil {
		return
	}
	if p.cfg.Variant == VariantFull && !p.tcDone.Has(w) {
		p.onTC(w)
	}
	p.onEC(w)
}

// onTC implements lines 16-21 ("Upon first seeing a TC for epoch view v
// with E(v) ≥ epoch(p)").
func (p *Pacemaker) onTC(w types.View) {
	if p.tcDone.Has(w) || p.cfg.EpochOf(w) < p.epoch {
		return
	}
	p.tcDone.Set(w)
	p.tr.Emit(p.rt.Now(), p.id, trace.SeeTC, w, "")
	// Line 10: a TC for a view strictly greater than the pause view
	// unpauses.
	if p.pausedAt != types.NoView && w > p.pausedAt {
		p.unpause("tc")
	}
	below := p.clk.Read() < p.clockTime(w)
	if below {
		p.sendPendingViewMsgs(w) // line 18
	}
	if p.view < w-1 { // line 20
		p.setPosition(w-1, p.cfg.EpochOf(w)-1)
		p.driver.EnterView(w - 1)
	}
	p.sendEpochViewMsg(w) // line 21
	if below {
		p.bumpTo(w) // line 19; landing fires the epoch-boundary trigger
	}
}

// onEC implements lines 23-24 ("Upon first seeing an EC for epoch view v
// with E(v) > epoch(p)"). Seeing an EC implies seeing a TC, which the
// callers have already processed.
func (p *Pacemaker) onEC(w types.View) {
	if w < p.ecDone.Bound() || p.ecDone.Has(w) {
		return
	}
	p.ecDone.Set(w)
	p.tr.Emit(p.rt.Now(), p.id, trace.SeeEC, w, "")
	if p.cfg.EpochOf(w) <= p.epoch {
		return
	}
	// Line 10: an EC for a view ≥ the pause view unpauses; entering the
	// epoch unpauses unconditionally (§3.4).
	if p.pausedAt != types.NoView && w >= p.pausedAt {
		p.unpause("ec")
	}
	p.bumpTo(w)
	p.enterInitial(w) // line 24 + the line-28 trigger
}

// ---------------------------------------------------------------------------
// QCs (lines 44-49) and the success criterion (§4)
// ---------------------------------------------------------------------------

// onQC implements lines 44-49 plus success-criterion accounting. QCs
// routed up from the view core are already verified; re-verification here
// keeps Handle safe for directly injected certificates, skipped for views
// whose QC was already accepted.
func (p *Pacemaker) onQC(qc *msg.QC) {
	v := qc.V
	if !p.credited.Has(v) && !p.qcDone.Has(v) {
		if p.suite.VerifyAggregate(p.stmt.Vote(v, &qc.BlockHash), qc.Agg, p.cfg.Base.Quorum()) != nil {
			return
		}
	}
	p.creditQC(v)
	if v < p.view || p.qcDone.Has(v) {
		return
	}
	p.qcDone.Set(v)
	p.tr.Emit(p.rt.Now(), p.id, trace.QCSeen, v, "")
	// Line 10: a QC for a view ≥ the pause view unpauses.
	if p.pausedAt != types.NoView && v >= p.pausedAt {
		p.unpause("qc")
	}
	below := p.clk.Read() < p.clockTime(v+1)
	if below {
		p.sendPendingViewMsgs(v) // line 46
	}
	next := v + 1
	if !p.cfg.IsEpochView(next) { // line 48
		p.setPosition(next, p.cfg.EpochOf(next))
		p.driver.EnterView(next)
		if !next.Initial() && p.schedule.Leader(next) == p.id {
			// The leader of the pair (v, v+1) just produced the
			// QC for v; the deadline is anchored at its send
			// time, which is this instant.
			p.driver.LeaderStart(next, p.deadlineFrom(p.rt.Now()))
		}
	} else if p.view < v { // line 49
		p.setPosition(v, p.cfg.EpochOf(v))
		p.driver.EnterView(v)
	}
	if below {
		p.bumpTo(next) // line 47; landing fires boundary triggers
	}
}

// creditQC updates the success criterion: success(e) flips once 2f+1
// distinct leaders have each produced QCsPerLeaderForSuccess QCs for
// views in epoch e.
func (p *Pacemaker) creditQC(v types.View) {
	if p.cfg.Variant != VariantFull || p.credited.Has(v) {
		return
	}
	e := p.cfg.EpochOf(v)
	if e < p.epoch-1 || p.success[e] {
		return
	}
	p.credited.Set(v)
	leaders := p.leaderQCs[e]
	if leaders == nil {
		leaders = make(map[types.NodeID]int)
		p.leaderQCs[e] = leaders
	}
	leader := p.schedule.Leader(v)
	leaders[leader]++
	if leaders[leader] != p.cfg.QCsPerLeaderForSuccess {
		return
	}
	met := 0
	for _, c := range leaders {
		if c >= p.cfg.QCsPerLeaderForSuccess {
			met++
		}
	}
	if met < p.cfg.Base.Quorum() {
		return
	}
	p.success[e] = true
	p.tr.Emit(p.rt.Now(), p.id, trace.Success, p.cfg.FirstView(e), fmt.Sprintf("success(%d)=1", e))
	// Line 10 / line 13: if paused at c_{V(e+1)}, the success flip ends
	// the pause and the processor enters the epoch as an initial view.
	if p.pausedAt == p.cfg.FirstView(e+1) {
		p.enterInitial(p.pausedAt)
	}
}

// ---------------------------------------------------------------------------
// Shared transitions
// ---------------------------------------------------------------------------

// successOf reports success(e), with success(-1) = 0 (line 5).
func (p *Pacemaker) successOf(e types.Epoch) bool {
	if p.cfg.Variant != VariantFull {
		return false
	}
	return p.success[e]
}

func (p *Pacemaker) clockTime(v types.View) types.Time {
	return types.Time(v) * types.Time(p.gamma)
}

// bumpTo advances the clock to c_w and lets the ticker fire the trigger if
// the bump lands exactly on a boundary.
func (p *Pacemaker) bumpTo(w types.View) {
	target := p.clockTime(w)
	if p.clk.BumpTo(target) {
		p.tr.Emit(p.rt.Now(), p.id, trace.Bump, w, "")
		p.inBump++
		p.ticker.Jumped(target)
		p.inBump--
	}
}

// setPosition updates (view(p), epoch(p)) maintaining Lemmas 5.1-5.2.
func (p *Pacemaker) setPosition(v types.View, e types.Epoch) {
	if v < p.view || e < p.epoch {
		p.violate(fmt.Sprintf("position would regress: (%v,%v) -> (%v,%v)", p.view, p.epoch, v, e))
		return
	}
	if v > p.view {
		p.view = v
		p.tr.Emit(p.rt.Now(), p.id, trace.EnterView, v, "")
		p.obs.OnEnterView(v, p.rt.Now())
	}
	if e > p.epoch {
		p.epoch = e
		p.tr.Emit(p.rt.Now(), p.id, trace.EnterEpoch, p.cfg.FirstView(e), fmt.Sprintf("epoch %v", e))
		p.obs.OnEnterEpoch(e, p.rt.Now())
		p.prune()
	}
}

func (p *Pacemaker) unpause(reason string) {
	if !p.clk.Paused() {
		p.pausedAt = types.NoView
		return
	}
	p.clk.Unpause()
	p.pausedAt = types.NoView
	p.ticker.Rearm()
	p.tr.Emit(p.rt.Now(), p.id, trace.Unpause, p.view, reason)
}

func (p *Pacemaker) unpauseIfAt(w types.View) {
	if p.pausedAt == w {
		p.unpause("enter")
	}
}

// sendViewMsg sends a view-w message to lead(w) (line 30), deduped.
func (p *Pacemaker) sendViewMsg(w types.View) {
	if p.sentView.Has(w) || !w.Initial() {
		return
	}
	p.sentView.Set(w)
	sig := p.signer.Sign(p.stmt.View(w))
	p.tr.Emit(p.rt.Now(), p.id, trace.SendView, w, "")
	p.ep.Send(p.schedule.Leader(w), &msg.ViewMsg{V: w, Sig: sig})
}

// sendPendingViewMsgs implements lines 18/38/46: view messages for every
// initial view in [view(p), w) not already sent.
func (p *Pacemaker) sendPendingViewMsgs(w types.View) {
	start := p.view
	if start < 0 {
		start = 0
	}
	if !start.Initial() {
		start++
	}
	for v := start; v < w; v += 2 {
		p.sendViewMsg(v)
	}
}

// sendEpochViewMsg broadcasts an epoch-view-w message (heavy sync), deduped.
func (p *Pacemaker) sendEpochViewMsg(w types.View) {
	if p.sentEpochView.Has(w) {
		return
	}
	p.sentEpochView.Set(w)
	sig := p.signer.Sign(p.stmt.EpochView(w))
	p.tr.Emit(p.rt.Now(), p.id, trace.SendEpoch, w, "")
	p.obs.OnHeavySync(w, p.rt.Now())
	p.ep.Broadcast(&msg.EpochViewMsg{V: w, Sig: sig})
}

// maybeLeaderStartInitial starts driving an initial view once the leader
// is in it and has sent the VC; the QC deadline is anchored at the VC send
// time (§4).
func (p *Pacemaker) maybeLeaderStartInitial(w types.View) {
	if p.schedule.Leader(w) != p.id || p.view != w || !p.vcFormed.Has(w) {
		return
	}
	p.driver.LeaderStart(w, p.deadlineFrom(p.vcSentAt[w]))
}

func (p *Pacemaker) deadlineFrom(t types.Time) types.Time {
	if p.qcWindow < 0 {
		return types.TimeInf
	}
	return t.Add(p.qcWindow)
}

// prune discards per-view state that can no longer matter, bounding
// memory over unbounded executions.
func (p *Pacemaker) prune() {
	lowView := p.view - 2
	p.vcFormed.ForgetBelow(lowView)
	p.vcSeen.ForgetBelow(lowView)
	p.qcDone.ForgetBelow(lowView)
	p.sentView.ForgetBelow(lowView)
	p.viewMsgs.DropBelow(lowView)
	for w := range p.vcSentAt {
		if w < lowView {
			delete(p.vcSentAt, w)
		}
	}
	lowEpochView := p.cfg.FirstView(p.epoch - 1)
	p.sentEpochView.ForgetBelow(lowEpochView)
	p.tcDone.ForgetBelow(lowEpochView)
	p.ecDone.ForgetBelow(lowEpochView)
	p.pauseSeen.ForgetBelow(lowEpochView)
	p.credited.ForgetBelow(lowEpochView)
	p.epochViewMsgs.DropBelow(lowEpochView)
	for e := range p.leaderQCs {
		if e < p.epoch-1 {
			delete(p.leaderQCs, e)
		}
	}
	for e := range p.success {
		if e < p.epoch-1 {
			delete(p.success, e)
		}
	}
}

// ---------------------------------------------------------------------------
// Invariants (Lemmas 5.1-5.3)
// ---------------------------------------------------------------------------

func (p *Pacemaker) violate(s string) {
	if len(p.violations) < 64 {
		p.violations = append(p.violations, fmt.Sprintf("%v %v: %s", p.rt.Now(), p.id, s))
	}
}

func (p *Pacemaker) checkInvariants(ctx string) {
	if !p.cfg.CheckInvariants || p.inBump > 0 {
		return
	}
	lc := p.clk.Read()
	if lc < p.lastLC {
		p.violate(fmt.Sprintf("%s: clock regressed %v -> %v (Lemma 5.2)", ctx, p.lastLC, lc))
	}
	p.lastLC = lc
	if p.view >= 0 && p.cfg.EpochOf(p.view) != p.epoch {
		p.violate(fmt.Sprintf("%s: E(%v)=%v != epoch %v (Lemma 5.1)", ctx, p.view, p.cfg.EpochOf(p.view), p.epoch))
	}
	// Lemma 5.3: in initial view v0, lc ∈ [c_v0, c_v0+2]; in view v0+1,
	// lc ∈ [c_v0+1, c_v0+2]. The upper bounds carry one tick of slack:
	// on a drifting hardware clock (clock.Drift) the local→base map is
	// not surjective, so the boundary alarm can only fire at the first
	// representable reading at-or-after c — up to clockQuantum past it.
	switch {
	case p.view < 0:
		if lc > p.clockTime(0).Add(clockQuantum) {
			p.violate(fmt.Sprintf("%s: lc=%v beyond c_0 before entering any view (Lemma 5.3)", ctx, lc))
		}
	case p.view.Initial():
		if lc < p.clockTime(p.view) || lc > p.clockTime(p.view+2).Add(clockQuantum) {
			p.violate(fmt.Sprintf("%s: lc=%v outside [c_%d, c_%d] (Lemma 5.3i)", ctx, lc, p.view, p.view+2))
		}
	default:
		if lc < p.clockTime(p.view) || lc > p.clockTime(p.view+1).Add(clockQuantum) {
			p.violate(fmt.Sprintf("%s: lc=%v outside [c_%d, c_%d] (Lemma 5.3ii)", ctx, lc, p.view, p.view+1))
		}
	}
}

// clockQuantum is the invariant checker's allowance for clock
// discretization: a drifted clock advances in (at most) 2ns local steps
// within clock.Drift's ±5·10⁵ ppm hard range, so a reading taken when an
// alarm for local time c fires can exceed c by one skipped nanosecond.
const clockQuantum = time.Nanosecond
