package viz

import (
	"strings"
	"testing"

	"lumiere/internal/trace"
	"lumiere/internal/types"
)

func TestPlotBasics(t *testing.T) {
	out := Plot("demo", []Series{
		{Name: "linear", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Name: "quadratic", X: []float64{1, 2, 3, 4}, Y: []float64{1, 4, 9, 16}},
	}, 40, 10, false)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "linear") || !strings.Contains(out, "quadratic") {
		t.Fatalf("plot missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
}

func TestPlotLogY(t *testing.T) {
	out := Plot("log", []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{10, 1000}}}, 30, 6, true)
	if !strings.Contains(out, "1000") {
		t.Fatalf("log labels wrong:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	if out := Plot("e", nil, 30, 6, false); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestPlotDegenerateRanges(t *testing.T) {
	out := Plot("d", []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}, 20, 5, false)
	if !strings.Contains(out, "pt") {
		t.Fatal("single-point plot broken")
	}
}

// lanesOnly strips the header and legend, keeping only "pN ..." lanes.
func lanesOnly(out string) string {
	var lanes []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "p") {
			lanes = append(lanes, line)
		}
	}
	return strings.Join(lanes, "\n")
}

func TestSwimlane(t *testing.T) {
	events := []trace.Event{
		{At: 10, Node: 0, Kind: trace.EnterView, View: 1},
		{At: 20, Node: 0, Kind: trace.QCProduced, View: 1},
		{At: 30, Node: 1, Kind: trace.PauseClock, View: 2},
		{At: 40, Node: 1, Kind: trace.SendEpoch, View: 2},
		{At: 50, Node: 1, Kind: trace.Unpause, View: 2},
	}
	out := lanesOnly(Swimlane(events, 2, 0, 100, 50))
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p1") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	for _, g := range []string{"Q", "P", "E", "U", "|"} {
		if !strings.Contains(out, g) {
			t.Fatalf("glyph %s missing:\n%s", g, out)
		}
	}
}

func TestSwimlanePriority(t *testing.T) {
	// Two events in the same cell: QCProduced outranks QCSeen.
	events := []trace.Event{
		{At: 10, Node: 0, Kind: trace.QCSeen, View: 1},
		{At: 10, Node: 0, Kind: trace.QCProduced, View: 1},
	}
	out := lanesOnly(Swimlane(events, 1, 0, 100, 20))
	if !strings.Contains(out, "Q") {
		t.Fatalf("priority broken:\n%s", out)
	}
}

func TestSwimlaneBounds(t *testing.T) {
	events := []trace.Event{
		{At: 500, Node: 0, Kind: trace.QCProduced}, // outside window
		{At: 10, Node: 9, Kind: trace.QCProduced},  // unknown node
	}
	out := lanesOnly(Swimlane(events, 1, 0, 100, 20))
	if strings.Contains(out, "Q") {
		t.Fatalf("out-of-bounds events rendered:\n%s", out)
	}
	if Swimlane(nil, 1, 100, 100, 20) != "(empty window)\n" {
		t.Fatal("empty window not handled")
	}
}

func TestDecisionGaps(t *testing.T) {
	s := DecisionGaps([]types.Time{types.Time(3e9), types.Time(1e9), types.Time(2e9)})
	if len(s.X) != 2 || s.Y[0] != 1 || s.Y[1] != 1 {
		t.Fatalf("gaps = %+v", s)
	}
}
