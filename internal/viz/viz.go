// Package viz renders experiment output as ASCII charts: scaling curves
// for the Table 1 sweeps and per-processor timeline swimlanes that
// reproduce Figure 1's presentation.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers cycles per-series point glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders series on a width×height ASCII grid. logY plots log10 of
// the values (for scaling comparisons where exponents are the point).
func Plot(title string, series []Series, width, height int, logY bool) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	tx := func(v float64) float64 { return v }
	ty := tx
	if logY {
		ty = func(v float64) float64 {
			if v <= 0 {
				return 0
			}
			return math.Log10(v)
		}
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Sprintf("%s\n(no data)\n", title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((tx(s.X[i]) - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((ty(s.Y[i]) - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLabel := func(v float64) string {
		if logY {
			return fmt.Sprintf("%8.4g", math.Pow(10, v))
		}
		return fmt.Sprintf("%8.4g", v)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", 8)
		switch i {
		case 0:
			label = yLabel(maxY)
		case height - 1:
			label = yLabel(minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 8), width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// laneGlyphs maps trace kinds to swimlane characters, most significant
// last (later entries win a contested cell).
var laneGlyphs = []struct {
	kind  trace.Kind
	glyph byte
}{
	{trace.QCSeen, '.'},
	{trace.SendView, 'v'},
	{trace.Bump, 'b'},
	{trace.EnterView, '|'},
	{trace.SendEpoch, 'E'},
	{trace.Unpause, 'U'},
	{trace.PauseClock, 'P'},
	{trace.QCProduced, 'Q'},
}

// Swimlane renders per-processor timelines in [from, to] across width
// columns — the Figure 1 presentation: each lane shows view entries,
// pauses, heavy syncs and QC production for one processor.
func Swimlane(events []trace.Event, n int, from, to types.Time, width int) string {
	if width < 20 {
		width = 20
	}
	if to <= from {
		return "(empty window)\n"
	}
	rank := make(map[trace.Kind]int, len(laneGlyphs))
	glyph := make(map[trace.Kind]byte, len(laneGlyphs))
	for i, g := range laneGlyphs {
		rank[g.kind] = i
		glyph[g.kind] = g.glyph
	}
	lanes := make([][]byte, n)
	best := make([][]int, n)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat("-", width))
		best[i] = make([]int, width)
		for j := range best[i] {
			best[i][j] = -1
		}
	}
	span := float64(to - from)
	for _, e := range events {
		if e.At < from || e.At > to || int(e.Node) < 0 || int(e.Node) >= n {
			continue
		}
		g, ok := glyph[e.Kind]
		if !ok {
			continue
		}
		col := int(float64(e.At-from) / span * float64(width-1))
		if rank[e.Kind] > best[e.Node][col] {
			best[e.Node][col] = rank[e.Kind]
			lanes[e.Node][col] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v\n", from, to)
	for i, lane := range lanes {
		fmt.Fprintf(&b, "p%-3d %s\n", i, lane)
	}
	b.WriteString("     legend: Q=QC produced  P=pause  U=unpause  E=epoch-view  |=enter view  b=bump  v=view msg  .=qc seen\n")
	return b.String()
}

// DecisionGaps extracts (index, gap-seconds) points from decision times,
// for plotting stall patterns.
func DecisionGaps(times []types.Time) Series {
	s := Series{Name: "decision gap (s)"}
	sorted := append([]types.Time(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, sorted[i].Sub(sorted[i-1]).Seconds())
	}
	return s
}
