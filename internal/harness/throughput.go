package harness

import (
	"fmt"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/statemachine"
	"lumiere/internal/workload"
)

// This file implements the SMR throughput experiments: open-loop client
// populations (internal/workload) driving chained HotStuff over each
// view-synchronization protocol, measured in committed commands per
// second and submit→commit latency percentiles. ThroughputTable sweeps
// protocols × offered load × batch size in steady state;
// ThroughputUnderAttackTable pits a fixed load against the view-desync
// strategy and reports what the attack does to p99 commit latency.

// ThroughputLoads is the offered-load axis (commands per second) of the
// throughput table. The loads are deliberately non-divisors of 10⁹:
// the accumulator pacer injects them exactly (workload.Pacer).
var ThroughputLoads = []int64{300, 1500, 6000}

// ThroughputBatches is the block-batch-size axis of the throughput
// table.
var ThroughputBatches = []int{64, 256}

// ThroughputClients is the logical client population behind the
// throughput tables. Clients are materialized only as hashes of command
// indices, so the population costs no per-client state.
const ThroughputClients = 1_000_000

// ThroughputPayloadPad is the filler bytes per command in the
// throughput tables; proposals are charged ⌈payload/32⌉ words for it
// (msg.PayloadWords), so words/cmd reflects data-plane traffic too.
const ThroughputPayloadPad = 64

// throughputWarmup is the prefix of each run excluded from commit
// statistics (ramp-up views and cold mempools).
const throughputWarmup = 3 * time.Second

// throughputScenario builds one cell: an SMR run at Δ = 50ms, δ = Δ/10,
// with an open-loop population offering `load` commands per second into
// every honest replica and blocks capped at `batch` commands. The
// Counter state machine keeps execution O(1) per command at any load.
func throughputScenario(p Protocol, f int, load int64, batch int, seed int64) Scenario {
	delta := 50 * time.Millisecond
	return Scenario{
		Name:            fmt.Sprintf("smr-tput-%s-f%d-load%d-batch%d", p, f, load, batch),
		Protocol:        p,
		F:               f,
		Delta:           delta,
		DeltaActual:     delta / 10,
		Duration:        15 * time.Second,
		Seed:            seed,
		SMR:             true,
		SMRBatchSize:    batch,
		NewStateMachine: func() statemachine.StateMachine { return statemachine.NewCounter() },
		Workload: &workload.Config{
			Clients:    ThroughputClients,
			Rate:       load,
			PayloadPad: ThroughputPayloadPad,
		},
	}
}

// ThroughputCell is one protocol × load × batch cell.
type ThroughputCell struct {
	// Protocol, Load and Batch identify the cell.
	Protocol Protocol
	Load     int64
	Batch    int
	// Seed is the cell's derived seed.
	Seed int64
	// Submitted and Committed count workload commands over the whole
	// run; commands in flight at the horizon are submitted, uncommitted.
	Submitted int64
	Committed int64
	// PerSec is the committed-command throughput after warmup; P50/P99/
	// Mean/Max are submit→first-commit latency percentiles after warmup.
	PerSec              float64
	P50, P99, Mean, Max time.Duration
	// WordsPerCmd is total honest words divided by committed commands
	// (whole run): the communication price of one committed command,
	// view synchronization and data plane included.
	WordsPerCmd float64
}

// ThroughputReport aggregates a throughput sweep.
type ThroughputReport struct {
	// Cells holds protocols outer (AllProtocols order), then loads, then
	// batches (ThroughputLoads × ThroughputBatches order).
	Cells []ThroughputCell
	// Workers is the worker-pool size the sweep used; Elapsed its
	// wall-clock time.
	Workers int
	Elapsed time.Duration
}

// measureThroughput extracts one cell from a finished SMR run.
func measureThroughput(res *Result) ThroughputCell {
	s := res.Scenario
	cell := ThroughputCell{
		Protocol:  s.Protocol,
		Load:      s.Workload.Rate,
		Batch:     s.SMRBatchSize,
		Seed:      s.Seed,
		Submitted: int64(res.Injected),
		Committed: res.Collector.CommitCount(),
	}
	warm := res.GST.Add(throughputWarmup)
	st := res.Collector.CommitLatencyStats(warm)
	cell.PerSec = st.PerSec
	cell.P50, cell.P99 = st.P50, st.P99
	cell.Mean, cell.Max = st.Mean, st.Max
	if cell.Committed > 0 {
		cell.WordsPerCmd = float64(res.Collector.WordsTotal()) / float64(cell.Committed)
	}
	return cell
}

// ThroughputSweep runs the AllProtocols × ThroughputLoads ×
// ThroughputBatches matrix on the sweep engine. Cell seeds derive from
// (seed, cell index), so the report is byte-identical at every worker
// count.
func ThroughputSweep(f int, seed int64, opts SweepOptions) *ThroughputReport {
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(ThroughputLoads)*len(ThroughputBatches))
	for _, p := range AllProtocols {
		for _, load := range ThroughputLoads {
			for _, batch := range ThroughputBatches {
				scenarios = append(scenarios, throughputScenario(p, f, load, batch, 0))
			}
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	sr := Sweep(scenarios, opts)

	rep := &ThroughputReport{Workers: sr.Workers, Elapsed: sr.Elapsed}
	for i := range sr.Cells {
		cell := measureThroughput(sr.Cells[i].Result)
		cell.Seed = sr.Cells[i].Scenario.Seed
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// Table renders the report: one row per protocol, one column per load ×
// batch, each cell "cmd/s p50/p99". The rendering is a pure function of
// the simulated executions, so it is byte-identical at every worker
// count.
func (r *ThroughputReport) Table() *Table {
	t := &Table{Title: "SMR throughput: committed commands/sec and commit latency (p50/p99) by offered load and batch size"}
	t.Header = []string{"protocol"}
	for _, load := range ThroughputLoads {
		for _, batch := range ThroughputBatches {
			t.Header = append(t.Header, fmt.Sprintf("%d/s b=%d", load, batch))
		}
	}
	stride := len(ThroughputLoads) * len(ThroughputBatches)
	for pi, p := range AllProtocols {
		row := []string{string(p)}
		for ci := 0; ci < stride; ci++ {
			c := &r.Cells[pi*stride+ci]
			if c.Committed == 0 {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f/s %s/%s", c.PerSec, shortDur(c.P50), shortDur(c.P99)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("open loop: %d logical clients, %dB payload/cmd, Δ=50ms δ=5ms, stats after %s warmup", ThroughputClients, ThroughputPayloadPad, throughputWarmup)
	t.AddNote("latency is submit→first commit at any honest replica; words/cmd in ThroughputCell.WordsPerCmd")
	return t
}

// shortDur renders a latency compactly (ms resolution above 10ms).
func shortDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= 10*time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
}

// ThroughputTable regenerates the throughput comparison.
func ThroughputTable(f int, seed int64) *Table {
	return ThroughputTableOpts(f, seed, SweepOptions{})
}

// ThroughputTableOpts is ThroughputTable with explicit sweep options.
func ThroughputTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return ThroughputSweep(f, seed, opts).Table()
}

// ---------------------------------------------------------------------------
// Throughput under attack
// ---------------------------------------------------------------------------

// AttackLoad and AttackBatch fix the workload of the under-attack
// comparison (middle of the clean table's axes).
const (
	AttackLoad  int64 = 1500
	AttackBatch       = 128
)

// throughputAttackScenario is throughputScenario with GST = 2s and the
// given attack strategy poisoning the pre-GST window (attackScenario's
// shape); an empty name runs the unattacked control.
func throughputAttackScenario(p Protocol, f int, attack string, seed int64) Scenario {
	s := throughputScenario(p, f, AttackLoad, AttackBatch, seed)
	gst := 2 * time.Second
	s.GST = gst
	s.Duration = gst + 15*time.Second
	if attack != "" {
		s.Name = fmt.Sprintf("smr-tput-attack-%s-%s-f%d", attack, p, f)
		s.Attack = adversary.AttackSpec{Name: attack}
	}
	return s
}

// ThroughputAttackCell compares one protocol's commit latency clean
// versus under attack at the same offered load.
type ThroughputAttackCell struct {
	Protocol Protocol
	Attack   string
	Seed     int64
	Clean    ThroughputCell
	Attacked ThroughputCell
}

// ThroughputUnderAttackReport aggregates the under-attack sweep.
type ThroughputUnderAttackReport struct {
	Cells   []ThroughputAttackCell
	Workers int
	Elapsed time.Duration
}

// ThroughputUnderAttackSweep runs every protocol twice — clean and under
// the given attack strategy (default view-desync) — at AttackLoad /
// AttackBatch, on the sweep engine.
func ThroughputUnderAttackSweep(f int, attack string, seed int64, opts SweepOptions) *ThroughputUnderAttackReport {
	if attack == "" {
		attack = adversary.AttackViewDesync
	}
	scenarios := make([]Scenario, 0, 2*len(AllProtocols))
	for _, p := range AllProtocols {
		scenarios = append(scenarios, throughputAttackScenario(p, f, "", 0))
		scenarios = append(scenarios, throughputAttackScenario(p, f, attack, 0))
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	sr := Sweep(scenarios, opts)

	rep := &ThroughputUnderAttackReport{Workers: sr.Workers, Elapsed: sr.Elapsed}
	for pi, p := range AllProtocols {
		clean := measureThroughput(sr.Cells[2*pi].Result)
		clean.Seed = sr.Cells[2*pi].Scenario.Seed
		attacked := measureThroughput(sr.Cells[2*pi+1].Result)
		attacked.Seed = sr.Cells[2*pi+1].Scenario.Seed
		rep.Cells = append(rep.Cells, ThroughputAttackCell{
			Protocol: p,
			Attack:   attack,
			Seed:     attacked.Seed,
			Clean:    clean,
			Attacked: attacked,
		})
	}
	return rep
}

// Table renders the under-attack comparison: per protocol, clean and
// attacked throughput and p99 commit latency, plus the p99 blowup
// factor.
func (r *ThroughputUnderAttackReport) Table() *Table {
	attack := adversary.AttackViewDesync
	if len(r.Cells) > 0 {
		attack = r.Cells[0].Attack
	}
	t := &Table{Title: fmt.Sprintf("SMR throughput under attack (%s, %d cmd/s, batch %d): clean vs attacked commit latency", attack, AttackLoad, AttackBatch)}
	t.Header = []string{"protocol", "clean cmd/s", "clean p99", "attacked cmd/s", "attacked p99", "p99 blowup"}
	side := func(tc *ThroughputCell) (rate, p99 string) {
		// A side that committed nothing over the whole run is stalled:
		// the attack (or the protocol itself) denied service outright.
		if tc.Committed == 0 {
			return "stalled", "-"
		}
		return fmt.Sprintf("%.0f/s", tc.PerSec), shortDur(tc.P99)
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		cleanRate, cleanP99 := side(&c.Clean)
		attackedRate, attackedP99 := side(&c.Attacked)
		blowup := "-"
		if c.Clean.Committed > 0 && c.Attacked.Committed > 0 && c.Clean.P99 > 0 {
			blowup = fmt.Sprintf("%.2fx", float64(c.Attacked.P99)/float64(c.Clean.P99))
		}
		t.AddRow(string(c.Protocol), cleanRate, cleanP99, attackedRate, attackedP99, blowup)
	}
	t.AddNote("GST=2s; the attack poisons the pre-GST window, stats start at GST+%s", throughputWarmup)
	return t
}

// ThroughputUnderAttackTable regenerates the under-attack comparison
// with the view-desync strategy.
func ThroughputUnderAttackTable(f int, seed int64) *Table {
	return ThroughputUnderAttackTableOpts(f, seed, SweepOptions{})
}

// ThroughputUnderAttackTableOpts is ThroughputUnderAttackTable with
// explicit sweep options.
func ThroughputUnderAttackTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return ThroughputUnderAttackSweep(f, adversary.AttackViewDesync, seed, opts).Table()
}
