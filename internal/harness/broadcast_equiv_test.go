package harness

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/adversary"
)

// equivScenarios is the matrix the broadcast-equivalence suite runs:
// steady-state cells across the protocol families (epoch-based,
// bump-based, wish/timeout-based) plus a chaos cell exercising every
// per-recipient verdict the multicast path must preserve (loss,
// duplication, reordering, pre-GST clamping) and a Byzantine cell.
func equivScenarios() []Scenario {
	short := 8 * time.Second
	out := []Scenario{}
	for _, p := range []Protocol{ProtoLumiere, ProtoLP22, ProtoFever, ProtoCogsworth} {
		s := eventualScenario(p, 1, 1, 0)
		s.Duration = short
		out = append(out, s)
	}
	chaos := eventualScenario(ProtoLumiere, 2, 0, 0)
	chaos.Name = "equiv-chaos"
	chaos.Duration = short
	chaos.GST = 2 * time.Second
	chaos.Loss = 0.2
	chaos.Duplication = 0.15
	chaos.ReorderJitter = 20 * time.Millisecond
	out = append(out, chaos)
	byz := eventualScenario(ProtoLumiere, 2, 0, 0)
	byz.Name = "equiv-byz"
	byz.Duration = short
	byz.Corruptions = []adversary.Corruption{{Node: 1, Behavior: adversary.BehaviorNonProposing}}
	out = append(out, byz)
	return out
}

// equivPrint compresses everything a rendered table could depend on —
// the shared arena fingerprint (metric totals, final views, event
// counts) plus the full decision log — into a comparable string.
func equivPrint(r *Result) string {
	s := fmt.Sprintf("%+v", fingerprint(r))
	for _, d := range r.Collector.Decisions() {
		s += fmt.Sprintf("|%d@%d by %d", d.View, d.At, d.Leader)
	}
	return s
}

// TestBroadcastPathsByteIdentical: the multicast broadcast path (one
// heap event per distinct delivery time) and the legacy per-recipient
// path must produce byte-identical executions — same sends, words,
// decision log, final views and fired-event counts — at every worker
// count. This is the equivalence gate for the sim.Scheduler multicast
// rewrite.
func TestBroadcastPathsByteIdentical(t *testing.T) {
	scenarios := equivScenarios()
	legacy := make([]Scenario, len(scenarios))
	for i, s := range scenarios {
		s.LegacyBroadcast = true
		legacy[i] = s
	}
	var want []string
	for _, workers := range []int{1, 4} {
		opts := SweepOptions{Workers: workers, BaseSeed: 42}
		multi := Sweep(scenarios, opts).Results()
		per := Sweep(legacy, opts).Results()
		for i := range multi {
			fm, fp := equivPrint(multi[i]), equivPrint(per[i])
			if fm != fp {
				t.Errorf("workers=%d %s: multicast != legacy\n multicast: %s\n legacy:    %s",
					workers, scenarios[i].Name, fm, fp)
			}
			if multi[i].DecisionCount() == 0 {
				t.Errorf("workers=%d %s: no decisions — equivalence vacuous", workers, scenarios[i].Name)
			}
		}
		if want == nil {
			for i := range multi {
				want = append(want, equivPrint(multi[i]))
			}
			continue
		}
		for i := range multi {
			if got := equivPrint(multi[i]); got != want[i] {
				t.Errorf("%s: workers=%d diverges from workers=1", scenarios[i].Name, workers)
			}
		}
	}
}

// TestSparseMetricsKeepsTotals: a sparse-metrics run reports the same
// totals and decision log as the exact run it approximates.
func TestSparseMetricsKeepsTotals(t *testing.T) {
	s := eventualScenario(ProtoLumiere, 2, 1, 7)
	s.Duration = 8 * time.Second
	exact := Run(s)
	s.SparseMetrics = 64 // absurdly tight cap to force heavy coalescing
	sparse := Run(s)
	if exact.Collector.WordsTotal() != sparse.Collector.WordsTotal() ||
		exact.Collector.HonestSends() != sparse.Collector.HonestSends() ||
		exact.DecisionCount() != sparse.DecisionCount() {
		t.Fatalf("sparse run drifted: exact %v, sparse %v", exact.Collector, sparse.Collector)
	}
	if exact.Events != sparse.Events {
		t.Fatalf("sparse metrics changed the execution: %d vs %d events", exact.Events, sparse.Events)
	}
}

// TestLargeNSmoke is the CI largen-smoke entry point: one short n=256
// cell per protocol, exercising the multicast broadcast expansion,
// bitset quorum tracking and sparse metrics at a size where per-view
// maps and per-recipient heap events used to dominate. Kept fast enough
// (a few seconds of simulated time) to run under the race detector.
func TestLargeNSmoke(t *testing.T) {
	for _, p := range LargeNProtocols {
		s := LargeNScenario(p, 256, 7)
		s.Duration = 5 * time.Second
		res := Run(s)
		if res.Aborted || res.DecisionCount() == 0 {
			t.Fatalf("%s n=256: aborted=%v decisions=%d", p, res.Aborted, res.DecisionCount())
		}
	}
}

// TestLargeNScenarioRuns: one mid-sized massive-n cell per protocol
// completes, decides, and stays within the sparse-metrics cap.
func TestLargeNScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n cell in -short mode")
	}
	for _, p := range LargeNProtocols {
		s := LargeNScenario(p, 64, 42)
		s.Duration = 10 * time.Second
		res := Run(s)
		if res.Aborted || res.DecisionCount() == 0 {
			t.Fatalf("%s n=64: aborted=%v decisions=%d", p, res.Aborted, res.DecisionCount())
		}
		if s.SparseMetrics == 0 {
			t.Fatalf("LargeNScenario lost its sparse cap")
		}
	}
}
