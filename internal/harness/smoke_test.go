package harness

import (
	"testing"
	"time"
)

func TestSmokeAll(t *testing.T) {
	t.Parallel()
	for _, proto := range AllProtocols {
		res := Run(Scenario{
			Name:            string(proto),
			Protocol:        proto,
			F:               1,
			Duration:        20 * time.Second,
			Seed:            1,
			CheckInvariants: true,
		})
		t.Logf("%s: decisions=%d finalViews=%v honestMsgs=%d events=%d violations=%d",
			proto, res.DecisionCount(), res.FinalViews, res.Collector.HonestSends(), res.Events, len(res.Violations))
		for _, v := range res.Violations {
			t.Errorf("%s violation: %s", proto, v)
		}
		if res.DecisionCount() == 0 {
			t.Errorf("%s: no decisions", proto)
		}
	}
}
