package harness

import (
	"errors"
	"strings"
	"testing"
	"time"

	"lumiere/internal/hotstuff"
	"lumiere/internal/statemachine"
	"lumiere/internal/workload"
)

// TestThroughputScenarioShape pins the wiring of a throughput cell
// without running it: SMR mode, batch size, open-loop workload config
// and the non-divisor load axis. Runs in -short mode (CI smoke).
func TestThroughputScenarioShape(t *testing.T) {
	t.Parallel()
	s := throughputScenario(ProtoLumiere, 1, 1500, 256, 7)
	if !s.SMR || s.SMRBatchSize != 256 || s.Workload == nil {
		t.Fatalf("scenario not an SMR workload cell: %+v", s)
	}
	if s.Workload.Rate != 1500 || s.Workload.Closed || s.Workload.Clients != ThroughputClients {
		t.Fatalf("workload config wrong: %+v", *s.Workload)
	}
	if s.Workload.PayloadPad != ThroughputPayloadPad {
		t.Fatalf("payload pad = %d", s.Workload.PayloadPad)
	}
	for _, load := range ThroughputLoads {
		if int64(time.Second)%load == 0 {
			t.Fatalf("load %d divides 1s: axis must exercise the accumulator pacer", load)
		}
	}
}

// TestThroughputSanityCell runs one mid-table cell end to end and checks
// the measured numbers are physical: committed tracks submitted, PerSec
// reproduces the offered load, and latency is a few Δ.
func TestThroughputSanityCell(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	res := Run(throughputScenario(ProtoLumiere, 1, 1500, 256, 11))
	cell := measureThroughput(res)
	if cell.Submitted == 0 || cell.Committed == 0 {
		t.Fatalf("empty cell: %+v", cell)
	}
	// Open loop at 1500/s for 15s: exactly 22500 submitted (pacer is
	// exact), nearly all committed (only the in-flight tail is not).
	if cell.Submitted != 22500 {
		t.Fatalf("submitted = %d, want exactly 22500 (accumulator pacer)", cell.Submitted)
	}
	if cell.Committed < cell.Submitted*95/100 {
		t.Fatalf("committed %d of %d submitted", cell.Committed, cell.Submitted)
	}
	// Steady-state throughput must reproduce the offered load within 5%.
	if cell.PerSec < 1425 || cell.PerSec > 1575 {
		t.Fatalf("PerSec = %.1f, want ~1500", cell.PerSec)
	}
	if cell.P50 <= 0 || cell.P99 < cell.P50 || cell.P99 > time.Second {
		t.Fatalf("latency not physical: p50=%v p99=%v", cell.P50, cell.P99)
	}
	if cell.WordsPerCmd <= 0 {
		t.Fatalf("words/cmd = %v", cell.WordsPerCmd)
	}
}

// TestThroughputTableWorkerIndependence renders the throughput table at
// workers=1 and workers=4 and requires the renderings byte-identical:
// commit-latency recording, the workload engine's arena reuse and the
// word accounting must all be deterministic per cell seed.
func TestThroughputTableWorkerIndependence(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	const seed = 42
	var want string
	for _, w := range []int{1, 4} {
		got := ThroughputTableOpts(1, seed, SweepOptions{Workers: w}).Render()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("throughput table differs between workers=1 and workers=%d:\n--- want ---\n%s\n--- got ---\n%s", w, want, got)
		}
	}
	if !strings.Contains(want, "lumiere") || !strings.Contains(want, "6000/s b=256") {
		t.Fatalf("table missing expected axes:\n%s", want)
	}
}

// TestThroughputAttackTableWorkerIndependence is the same byte-identity
// contract for the under-attack comparison (clean + attacked cells share
// the sweep engine).
func TestThroughputAttackTableWorkerIndependence(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	const seed = 42
	var want string
	for _, w := range []int{1, 3} {
		got := ThroughputUnderAttackTableOpts(1, seed, SweepOptions{Workers: w}).Render()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("attack table differs between workers=1 and workers=%d:\n--- want ---\n%s\n--- got ---\n%s", w, want, got)
		}
	}
	if !strings.Contains(want, "p99 blowup") {
		t.Fatalf("attack table missing blowup column:\n%s", want)
	}
}

// TestInjectorExactRate is the regression test for the truncated-interval
// injector bug: at 666667 cmd/s the legacy time.Second/rate interval
// (1499ns) injects ~66711 commands per 100ms — +0.067% forever. The
// accumulator pacer must inject exactly DueBy(rate, horizon) = 66666.
func TestInjectorExactRate(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	const rate = 666667
	horizon := 100 * time.Millisecond
	res := Run(Scenario{
		Protocol:     ProtoLumiere,
		F:            1,
		Delta:        testDelta,
		DeltaActual:  testDelta / 10,
		Duration:     horizon,
		Seed:         3,
		SMR:          true,
		WorkloadRate: rate,
	})
	want := int(workload.DueBy(rate, int64(horizon)) - workload.DueBy(rate, 0))
	if want != 66666 {
		t.Fatalf("DueBy model says %d, want 66666", want)
	}
	if res.Injected != want {
		t.Fatalf("injected %d commands in %v at %d/s, want exactly %d (legacy interval gave ~66711)",
			res.Injected, horizon, rate, want)
	}
}

// countingKV wraps the KV state machine and counts GET misses, so a test
// can assert read-your-writes through the commit pipeline.
type countingKV struct {
	*statemachine.KV
	notFound int
}

func (c *countingKV) Apply(cmd []byte) ([]byte, error) {
	out, err := c.KV.Apply(cmd)
	if errors.Is(err, statemachine.ErrKeyNotFound) {
		c.notFound++
	}
	return out, err
}

// TestClosedLoopReadYourWrites runs a closed-loop population that
// alternates SET and GET per client. Because a closed-loop client only
// submits its GET after its SET committed, and commits execute in log
// order, no replica may ever observe a GET miss — which also proves the
// KV distinguishes "missing" from "present but empty" (satellite fix).
func TestClosedLoopReadYourWrites(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	const clients = 50
	res := Run(Scenario{
		Protocol:        ProtoLumiere,
		F:               1,
		Delta:           testDelta,
		DeltaActual:     testDelta / 10,
		Duration:        10 * time.Second,
		Seed:            9,
		SMR:             true,
		SMRBatchSize:    64,
		NewStateMachine: func() statemachine.StateMachine { return &countingKV{KV: statemachine.NewKV()} },
		Workload: &workload.Config{
			Clients: clients,
			Rate:    1000,
			Closed:  true,
			Reads:   true,
		},
	})
	committed := requireConsistentCommits(t, res)
	if committed < 10 {
		t.Fatalf("committed only %d blocks", committed)
	}
	if res.Collector.CommitCount() < clients*4 {
		t.Fatalf("only %d commands committed: closed loop did not cycle", res.Collector.CommitCount())
	}
	for i, sm := range res.SMs {
		ckv, ok := sm.(*countingKV)
		if !ok || ckv == nil {
			continue
		}
		if ckv.notFound != 0 {
			t.Fatalf("replica %d: %d GET misses — read-your-writes violated", i, ckv.notFound)
		}
		if ckv.Len() == 0 {
			t.Fatalf("replica %d applied no SETs", i)
		}
	}
}

// TestWorkloadAllocs pins the warm injection path: generating a command
// and enqueuing it into a live replica's mempool. Budget ≤ 0.5
// allocations per command, covering the amortized contributors — the
// generator's 64KiB bump blocks, commit-record slice doubling, and
// mempool/dedup-map growth. A regression here (e.g. per-command payload
// or string allocation) jumps to ≥ 2/cmd.
func TestWorkloadAllocs(t *testing.T) {
	skipInShort(t)
	res := Run(throughputScenario(ProtoLumiere, 1, 300, 64, 1))
	var core *hotstuff.Core
	for _, e := range res.Engines {
		if hs, ok := e.(*hotstuff.Core); ok && hs != nil {
			core = hs
			break
		}
	}
	if core == nil {
		t.Fatal("no hotstuff engine")
	}
	eng := workload.NewEngine(workload.Config{
		Clients:    ThroughputClients,
		Rate:       1_000_000,
		PayloadPad: ThroughputPayloadPad,
	})
	// idShift keeps test command IDs disjoint from the run's, so enqueue
	// exercises the full insert path rather than the dedup early-out.
	const idShift = uint64(1) << 50
	warm := func(n int) {
		for i := 0; i < n; i++ {
			id, payload := eng.SubmitNext(0)
			core.EnqueueCommand(id+idShift, payload)
		}
	}
	warm(4096)
	const batch = 1000
	perBatch := testing.AllocsPerRun(10, func() { warm(batch) })
	if perCmd := perBatch / batch; perCmd > 0.5 {
		t.Fatalf("warm injection path allocates %.3f/cmd (%.0f per %d-command batch), budget 0.5",
			perCmd, perBatch, batch)
	}
}
