package harness

import (
	"runtime"
	"sync"
	"time"
)

// This file implements the parallel deterministic sweep engine: the
// substrate every experiment driver runs on (see DESIGN.md §4). A sweep
// takes a scenario matrix, fans the executions across a worker pool, and
// aggregates results in matrix order. Each cell's seed is derived from
// (base seed, cell index) alone, so a sweep's results are byte-identical
// regardless of the worker count or the order the pool happens to
// schedule cells in.

// DeriveSeed deterministically derives the seed for cell index of a sweep
// from the sweep's base seed using the splitmix64 finalizer. The result
// depends only on (base, index) — never on worker count, scheduling
// order, or wall-clock time — and consecutive indices map to
// well-separated seeds even for small bases.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// SweepOptions configures a sweep.
type SweepOptions struct {
	// Workers is the worker-pool size. Zero or negative means
	// runtime.NumCPU(); the pool never exceeds the matrix size.
	Workers int
	// BaseSeed is the sweep's base seed: cell i runs with seed
	// DeriveSeed(BaseSeed, i) unless KeepSeeds is set.
	BaseSeed int64
	// KeepSeeds preserves each scenario's own Seed instead of deriving
	// per-cell seeds from BaseSeed. Use it when the caller has already
	// assigned deterministic per-cell seeds.
	KeepSeeds bool
	// Progress, when non-nil, is called once per completed cell (in
	// completion order, serialized — it may update a shared display
	// without locking). done counts completed cells, total is the
	// matrix size.
	Progress func(done, total int, cell *SweepCell)
	// KeepSendLog forces every cell's Collector to retain the full
	// per-send record log (see Scenario.KeepSendLog). Off by default:
	// sweeps aggregate online so each cell runs in memory proportional
	// to distinct network-activity instants, not total sends.
	KeepSendLog bool
	// FreshCells disables the per-worker execution arenas: every cell
	// constructs its full scheduler/network/crypto/metrics/replica
	// stack from scratch instead of recycling the worker's. Results are
	// byte-identical either way (the determinism suites assert it);
	// the switch exists for those suites and for memory-constrained
	// runs, since an arena retains high-water-mark buffers for the
	// worker's lifetime.
	FreshCells bool
}

// SweepCell is one completed cell of a sweep.
type SweepCell struct {
	// Index is the cell's position in the scenario matrix.
	Index int
	// Scenario is the scenario as run, with the derived seed filled in.
	Scenario Scenario
	// Result is the execution's full result.
	Result *Result
	// Elapsed is the cell's wall-clock execution time.
	Elapsed time.Duration
}

// SweepResult aggregates a sweep in matrix order.
type SweepResult struct {
	// Cells holds one entry per scenario, in matrix order.
	Cells []SweepCell
	// Workers is the worker-pool size actually used.
	Workers int
	// Elapsed is the sweep's total wall-clock time.
	Elapsed time.Duration
}

// Results returns the cell results in matrix order.
func (r *SweepResult) Results() []*Result {
	out := make([]*Result, len(r.Cells))
	for i := range r.Cells {
		out[i] = r.Cells[i].Result
	}
	return out
}

// Sweep executes every scenario of the matrix on a worker pool and
// returns the results in matrix order. Scenario seeds are derived from
// (opts.BaseSeed, index) unless opts.KeepSeeds is set; either way each
// cell's execution is a pure function of its scenario, so the aggregated
// results are independent of worker count and scheduling.
func Sweep(scenarios []Scenario, opts SweepOptions) *SweepResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	cells := make([]SweepCell, len(scenarios))

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes Progress and the done counter
		done int
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One execution arena per worker: cell setup (scheduler,
			// network, crypto suite, metrics buffers, replica shells)
			// is constructed once here and recycled across all cells
			// the worker drains, so the sweep performs O(workers)
			// constructions instead of O(cells).
			var arena *Arena
			if !opts.FreshCells {
				arena = NewArena()
			}
			for i := range jobs {
				s := scenarios[i]
				if !opts.KeepSeeds {
					s.Seed = DeriveSeed(opts.BaseSeed, i)
				}
				if opts.KeepSendLog {
					s.KeepSendLog = true
				}
				t0 := time.Now()
				res := RunIn(arena, s)
				cells[i] = SweepCell{Index: i, Scenario: s, Result: res, Elapsed: time.Since(t0)}
				if opts.Progress != nil {
					mu.Lock()
					done++
					opts.Progress(done, len(scenarios), &cells[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	return &SweepResult{Cells: cells, Workers: workers, Elapsed: time.Since(start)}
}
