package harness

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/hotstuff"
	"lumiere/internal/network"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
)

// TestSMRSafetyUnderEquivocation: f Byzantine leaders propose conflicting
// blocks to different halves of the cluster; HotStuff's quorum
// intersection must prevent any divergent commits, and liveness must
// survive (equivocating views waste at most their slots).
func TestSMRSafetyUnderEquivocation(t *testing.T) {
	t.Parallel()
	for _, p := range []Protocol{ProtoLumiere, ProtoFever} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			corr := make([]adversary.Corruption, 2)
			for i := range corr {
				corr[i] = adversary.Corruption{Node: types.NodeID(i), Behavior: adversary.BehaviorEquivocating}
			}
			res := Run(Scenario{
				Protocol:        p,
				F:               2,
				Delta:           testDelta,
				Delay:           network.Uniform{Min: time.Millisecond, Max: testDelta / 2},
				Corruptions:     corr,
				Duration:        90 * time.Second,
				Seed:            8,
				SMR:             true,
				NewStateMachine: func() statemachine.StateMachine { return statemachine.NewBank() },
				WorkloadRate:    100,
				WorkloadCommand: func(i int) []byte {
					if i < 4 {
						return []byte(fmt.Sprintf("OPEN a%d 100", i))
					}
					return []byte(fmt.Sprintf("XFER a%d a%d 1", i%4, (i+1)%4))
				},
			})
			committed := requireConsistentCommits(t, res)
			if committed < 20 {
				t.Fatalf("only %d commits under equivocation", committed)
			}
			// No equivocated command may execute on one replica but
			// not another with the same commit count; the bank total
			// must stay conserved everywhere.
			for i, sm := range res.SMs {
				if sm == nil {
					continue
				}
				bank := sm.(*statemachine.Bank)
				if tot := bank.TotalBalance(); tot%100 != 0 || tot > 400 {
					t.Fatalf("replica %d: money not conserved under equivocation: %d", i, tot)
				}
			}
		})
	}
}

// TestEquivocatingProposalsNeverBothCertify inspects the decision stream:
// at most one QC exists per view even when its leader equivocates.
func TestEquivocatingProposalsNeverBothCertify(t *testing.T) {
	t.Parallel()
	res := Run(Scenario{
		Protocol:    ProtoLumiere,
		F:           1,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Corruptions: []adversary.Corruption{{Node: 0, Behavior: adversary.BehaviorEquivocating}},
		Duration:    60 * time.Second,
		Seed:        8,
		SMR:         true,
	})
	// Scan every engine's committed sequence for duplicate views.
	for i, e := range res.Engines {
		hs, ok := e.(*hotstuff.Core)
		if !ok || hs == nil {
			continue
		}
		if hs.CommittedCount() == 0 {
			t.Fatalf("replica %d committed nothing", i)
		}
	}
	requireConsistentCommits(t, res)
}
