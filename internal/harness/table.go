package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid matching the
// paper's presentation.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV formats the table as CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
