// Package harness builds and runs complete simulated executions: n
// replicas of a chosen view-synchronization protocol over the partial-
// synchrony network, with corruptions, adversarial delay policies,
// staggered joins, metrics, gap tracking and tracing. The experiment
// definitions that regenerate the paper's table and figures live in
// experiments.go.
package harness

import (
	"fmt"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/baseline/cogsworth"
	"lumiere/internal/baseline/fever"
	"lumiere/internal/baseline/lp22"
	"lumiere/internal/baseline/nk20"
	"lumiere/internal/baseline/raresync"
	"lumiere/internal/clock"
	"lumiere/internal/core"
	"lumiere/internal/crypto"
	"lumiere/internal/hotstuff"
	"lumiere/internal/metrics"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/replica"
	"lumiere/internal/statemachine"
	"lumiere/internal/trace"
	"lumiere/internal/types"
	"lumiere/internal/viewcore"
	"lumiere/internal/workload"
)

// Protocol selects the view-synchronization protocol under test.
type Protocol string

// Supported protocols.
const (
	ProtoLumiere   Protocol = "lumiere"
	ProtoBasic     Protocol = "basic-lumiere"
	ProtoLP22      Protocol = "lp22"
	ProtoFever     Protocol = "fever"
	ProtoCogsworth Protocol = "cogsworth"
	ProtoNK20      Protocol = "nk20"
	// ProtoRareSync is not part of Table 1 but is discussed in §6 as
	// the other Dolev-Reischuk-optimal protocol; it is available in
	// scenarios and tests but excluded from the Table 1 sweeps.
	ProtoRareSync Protocol = "raresync"
)

// AllProtocols lists every protocol in Table 1 order plus Basic Lumiere.
var AllProtocols = []Protocol{ProtoCogsworth, ProtoNK20, ProtoLP22, ProtoFever, ProtoBasic, ProtoLumiere}

// Scenario describes one simulated execution.
type Scenario struct {
	Name     string
	Protocol Protocol

	// F is the fault tolerance; N defaults to 3F+1.
	F int
	N int

	// Delta is Δ (default 100ms); DeltaActual is the actual message
	// delay δ used by the default Fixed policy (default Δ/10).
	Delta       time.Duration
	DeltaActual time.Duration
	// Delay overrides the post-GST delay policy.
	Delay network.DelayPolicy
	// PreGSTChaos delays all pre-GST traffic to the model bound GST+Δ.
	PreGSTChaos bool

	// Link overrides the full link-condition policy (delay, drop,
	// duplicate per message), superseding Delay and the declarative
	// chaos fields below. Most scenarios should use those instead:
	// they compose over Delay and stay printable/generatable.
	Link network.LinkPolicy
	// Loss drops each message with this probability. Pre-GST drops are
	// model-faithful "loss" (delivery at GST+Δ); post-GST drops are
	// true omissions only under OmissionBudget, else Δ-late deliveries.
	Loss float64
	// LossUntil limits Loss to messages sent before this instant
	// (zero = the whole run).
	LossUntil time.Duration
	// Duplication delivers one extra copy of each message with this
	// probability, jittered by up to Δ/2.
	Duplication float64
	// ReorderJitter adds an independent uniform extra delay in
	// [0, ReorderJitter] per message, reordering traffic.
	ReorderJitter time.Duration
	// Partitions isolates processor groups from each other until
	// PartitionHeal; processors not listed form one implicit group.
	Partitions [][]types.NodeID
	// PartitionHeal is when Partitions heals (zero = at GST, the
	// model-faithful split-brain).
	PartitionHeal time.Duration
	// OmissionBudget authorizes true post-GST omission. MaxSenders
	// must be ≤ F: post-GST omission is a processor fault.
	OmissionBudget network.OmissionBudget

	// Topology selects a geo-distributed deployment: per-link delays
	// from a regional latency matrix replace the Delay/DeltaActual
	// uniform base (setting both is a scenario error), regional
	// partitions compose with Partitions, and per-region processing
	// delays feed ProcDelays. Validated up front — a latency class the
	// clamp would distort post-GST is rejected, not silently clamped.
	Topology *network.Topology
	// DriftPPM gives node i's clock rate drift in parts per million
	// (+100 = 0.01% fast); DriftSkew its initial clock offset. Shorter
	// slices leave the remaining nodes drift-free; nil means perfectly
	// synchronized hardware clocks. In-model drift keeps a Γ-long local
	// timer within Δ of true (|ppm|·Γ ≤ Δ·10⁶) and |skew| ≤ Δ;
	// Validate rejects more unless UncheckedWAN is set.
	DriftPPM  []int64
	DriftSkew []time.Duration
	// ProcDelays is the straggler model: node i ingests every network
	// message ProcDelays[i] after its clamped delivery time (node
	// slowness, outside the network model). Topology.ProcDelays is the
	// regional way to say the same thing; setting both is a scenario
	// error.
	ProcDelays []time.Duration
	// UncheckedWAN disables Validate's in-model drift and straggler
	// bounds, for deliberate degradation studies (DriftToleranceTable).
	// Topology latency classes are always validated against Δ.
	UncheckedWAN bool

	// GST is the global stabilization time (default 0).
	GST time.Duration
	// Duration is the virtual run length (default 60s).
	Duration time.Duration
	// Seed drives all randomness (delays, schedules, keys).
	Seed int64

	// Corruptions marks Byzantine processors and their behaviors.
	Corruptions []adversary.Corruption

	// Attack selects an adaptive attack strategy (adversary.Strategy):
	// the strategy observes protocol traffic through read-only hooks
	// and steers its corrupted processors dynamically. The zero value
	// disables the attack. The strategy's processors (Attack.Nodes,
	// default F) are the highest IDs not otherwise corrupted; together
	// with Corruptions they must not exceed F.
	Attack adversary.AttackSpec

	// InitialOffsets sets each processor's initial local-clock value
	// (Fever's bounded initial skew); nil means all zero.
	InitialOffsets []time.Duration
	// StartStagger delays each processor's join uniformly at random in
	// [0, StartStagger] (processors join with lc = 0 before GST, §2).
	StartStagger time.Duration

	// TraceLimit enables event tracing, keeping at most this many
	// events (0 disables tracing).
	TraceLimit int
	// KeepSendLog retains the full per-send record log in the metrics
	// Collector (Collector.Sends). Default executions aggregate online
	// and keep no per-send state, so sweeps run in memory proportional
	// to distinct network-activity instants rather than total sends.
	KeepSendLog bool
	// SparseMetrics caps the metrics Collector's cumulative send series
	// (metrics.WithSparse) for massive-n cells: totals stay exact,
	// time-windowed queries become approximate at the coalesced
	// resolution. Zero leaves the series exact and unbounded.
	SparseMetrics int
	// LegacyBroadcast forces per-recipient broadcast scheduling (one
	// heap event per recipient) instead of the default multicast events.
	// The two paths are byte-identical in outcome; this exists for
	// equivalence testing and as an escape hatch.
	LegacyBroadcast bool
	// CheckInvariants enables Lemma 5.1-5.3 runtime checks (Lumiere).
	CheckInvariants bool
	// SampleGaps enables honest-gap sampling every Δ/2.
	SampleGaps bool

	// Lumiere-specific knobs (zero values = paper defaults).
	CoreBlocksPerEpoch   int
	CoreQCsPerLeader     int
	CoreDisableDeltaWait bool
	GammaOverride        time.Duration

	// MaxEvents aborts runaway executions (default 200M events).
	MaxEvents uint64

	// SMR runs chained HotStuff instead of the plain view core, each
	// replica executing a state machine built by NewStateMachine
	// (default: the KV store).
	SMR bool
	// NewStateMachine builds each replica's state machine (SMR only).
	NewStateMachine func() statemachine.StateMachine
	// WorkloadRate injects this many client commands per second into
	// every honest replica's mempool (SMR only).
	WorkloadRate int
	// WorkloadCommand builds the i-th command payload (default: KV
	// SETs over a small key space).
	WorkloadCommand func(i int) []byte
	// SMRTwoPhase commits on two-chains (HotStuff-2 style) instead of
	// three-chains.
	SMRTwoPhase bool
	// SMRBatchSize caps commands per proposed block (SMR only; zero =
	// the hotstuff default of 128).
	SMRBatchSize int
	// Workload drives the SMR layer with a simulated client population
	// (internal/workload) instead of the WorkloadRate/WorkloadCommand
	// injector: exact accumulator pacing, per-command commit-latency
	// recording (Collector.CommitLatencyStats) and optional closed-loop
	// clients. SMR only; supersedes WorkloadRate when set.
	Workload *workload.Config
}

// withDefaults fills derived defaults.
func (s Scenario) withDefaults() Scenario {
	if s.Delta <= 0 {
		s.Delta = 100 * time.Millisecond
	}
	if s.DeltaActual <= 0 {
		s.DeltaActual = s.Delta / 10
	}
	if s.N <= 0 {
		s.N = 3*s.F + 1
	}
	if s.Duration <= 0 {
		s.Duration = 60 * time.Second
	}
	if s.MaxEvents == 0 {
		s.MaxEvents = 200_000_000
	}
	if s.Protocol == "" {
		s.Protocol = ProtoLumiere
	}
	return s
}

// Validate checks the scenario's declarative fields for combinations
// that cannot mean what they say — a topology latency class the §2
// clamp would silently distort, partition groups naming processors the
// scenario does not have, clock drift that puts an honest Γ-long timer
// more than Δ off true, straggler delays past Δ — and returns a
// descriptive error instead of producing a silently-wrong table. The
// harness runs it on every execution (run panics on error, like the
// config and omission-budget checks); UncheckedWAN waives only the
// in-model drift/straggler bounds, for deliberate degradation studies.
func (s Scenario) Validate() error {
	return s.withDefaults().validate()
}

// validate implements Validate on a defaults-applied scenario.
func (s Scenario) validate() error {
	for gi, group := range s.Partitions {
		for _, id := range group {
			if int(id) < 0 || int(id) >= s.N {
				return fmt.Errorf("partition group %d references processor %d; scenario has n=%d", gi, id, s.N)
			}
		}
	}
	if s.Topology != nil {
		if err := s.Topology.Validate(s.N, s.Delta); err != nil {
			return err
		}
		if s.Delay != nil {
			return fmt.Errorf("scenario sets both Topology and Delay; the topology is the delay model")
		}
		if s.ProcDelays != nil && s.Topology.ProcDelays != nil {
			return fmt.Errorf("scenario sets both ProcDelays and Topology.ProcDelays")
		}
	}
	if len(s.ProcDelays) > s.N {
		return fmt.Errorf("%d proc delays for n=%d", len(s.ProcDelays), s.N)
	}
	for i, d := range s.effectiveProcDelays() {
		if d < 0 {
			return fmt.Errorf("negative proc delay %v for processor %d", d, i)
		}
		if !s.UncheckedWAN && d > s.Delta {
			return fmt.Errorf("proc delay %v for processor %d exceeds Δ=%v; set UncheckedWAN for degradation studies", d, i, s.Delta)
		}
	}
	if len(s.DriftPPM) > s.N || len(s.DriftSkew) > s.N {
		return fmt.Errorf("%d drift rates / %d skews for n=%d", len(s.DriftPPM), len(s.DriftSkew), s.N)
	}
	gamma := GammaOf(s.Protocol, s.Delta)
	if s.GammaOverride > 0 {
		gamma = s.GammaOverride
	}
	for i, ppm := range s.DriftPPM {
		if ppm < -500_000 || ppm > 500_000 {
			return fmt.Errorf("drift rate %d ppm for processor %d is outside clock.Drift's ±5·10⁵ hard range", ppm, i)
		}
		if s.UncheckedWAN {
			continue
		}
		err := abs64(ppm) * int64(gamma) / 1_000_000
		if time.Duration(err) > s.Delta {
			return fmt.Errorf("drift rate %d ppm drifts a Γ=%v timer %v off true, past Δ=%v; set UncheckedWAN for degradation studies",
				ppm, gamma, time.Duration(err), s.Delta)
		}
	}
	for i, skew := range s.DriftSkew {
		if !s.UncheckedWAN && (skew > s.Delta || skew < -s.Delta) {
			return fmt.Errorf("drift skew %v for processor %d exceeds Δ=%v; set UncheckedWAN for degradation studies", skew, i, s.Delta)
		}
	}
	return nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// effectiveProcDelays resolves the straggler model to one per-node
// slice: the scenario's ProcDelays (padded to n) or the topology's
// regional delays, nil when neither is set.
func (s Scenario) effectiveProcDelays() []time.Duration {
	if s.ProcDelays != nil {
		if len(s.ProcDelays) == s.N {
			return s.ProcDelays
		}
		out := make([]time.Duration, s.N)
		copy(out, s.ProcDelays)
		return out
	}
	if s.Topology != nil {
		return s.Topology.NodeProcDelays()
	}
	return nil
}

// driftOf returns node i's drift parameters.
func (s Scenario) driftOf(i int) (ppm int64, skew time.Duration) {
	if i < len(s.DriftPPM) {
		ppm = s.DriftPPM[i]
	}
	if i < len(s.DriftSkew) {
		skew = s.DriftSkew[i]
	}
	return ppm, skew
}

// linkPolicy composes the declarative chaos fields into the link policy
// the network runs, innermost to outermost: delay base → reorder →
// duplicate → loss → partition → regional isolation (outermost, so
// partitioned traffic is dropped before it can be duplicated). The
// delay base is the uniform Delay policy or, when the scenario has a
// Topology, its compiled regional matrix. Scenario.Link overrides the
// whole chain.
func (s Scenario) linkPolicy(cfg types.Config, gst types.Time, delay network.DelayPolicy) network.LinkPolicy {
	if s.Link != nil {
		return s.Link
	}
	var link network.LinkPolicy = network.DelayLink{P: delay}
	if s.Topology != nil {
		link = s.Topology.Policy()
		if s.PreGSTChaos {
			link = network.PreGSTChaosLink{GST: gst, Base: link}
		}
	}
	if s.ReorderJitter > 0 {
		link = adversary.Reordering{Base: link, Jitter: s.ReorderJitter}
	}
	if s.Duplication > 0 {
		link = adversary.Duplicating{Base: link, P: s.Duplication, Jitter: s.Delta / 2}
	}
	if s.Loss > 0 {
		link = adversary.Lossy{Base: link, P: s.Loss, Until: types.Time(0).Add(s.LossUntil)}
	}
	if len(s.Partitions) > 0 {
		heal := gst
		if s.PartitionHeal > 0 {
			heal = types.Time(0).Add(s.PartitionHeal)
		}
		link = adversary.NewPartition(link, cfg.N, heal, s.Partitions...)
	}
	if s.Topology != nil {
		if groups := s.Topology.IslandGroups(); len(groups) > 0 {
			heal := gst
			if s.Topology.IsolateHeal > 0 {
				heal = types.Time(0).Add(s.Topology.IsolateHeal)
			}
			link = adversary.NewPartition(link, cfg.N, heal, groups...)
		}
	}
	return link
}

// Result carries everything measurable about one execution.
type Result struct {
	Scenario  Scenario
	Cfg       types.Config
	GST       types.Time
	Gamma     time.Duration
	Collector *metrics.Collector
	Tracer    *trace.Tracer
	Gaps      *metrics.GapTracker
	// Violations aggregates invariant violations across replicas.
	Violations []string
	// FinalViews holds each replica's final view (NoView for crashed).
	FinalViews []types.View
	// PMs exposes each replica's pacemaker for inspection (nil for
	// crashed replicas).
	PMs []pacemaker.Pacemaker
	// Engines exposes each replica's consensus engine (SMR: the
	// HotStuff core); nil for crashed replicas.
	Engines []replica.Engine
	// SMs exposes each replica's state machine (SMR only).
	SMs []statemachine.StateMachine
	// Injected is the number of workload commands injected (SMR only).
	Injected int
	// Events is the number of simulator events fired.
	Events uint64
	// Aborted reports whether the MaxEvents budget was exhausted.
	Aborted bool
	// Omitted is the number of true post-GST omissions the network
	// granted against the scenario's OmissionBudget.
	Omitted int64
}

// DecisionCount returns the number of honest-leader decisions.
func (r *Result) DecisionCount() int { return r.Collector.DecisionCount() }

// Run executes a scenario to completion on a fresh one-shot arena. For
// sweeps, thread an Arena through RunIn instead: the result is
// byte-identical and the per-cell setup cost amortizes away.
func Run(s Scenario) *Result {
	return (&Arena{}).run(s, false)
}

// run executes a scenario inside the arena. With detach set the Result
// receives a snapshot of the arena's metrics Collector (so the arena can
// be reused while the Result stays valid); without it the live Collector
// is handed out and the arena is assumed discarded.
func (a *Arena) run(s Scenario, detach bool) *Result {
	s = s.withDefaults()
	cfg := types.Config{N: s.N, F: s.F, Delta: s.Delta, X: types.DefaultX}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	if err := s.validate(); err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	sched := a.scheduler(s.Seed)
	gst := types.Time(0).Add(s.GST)

	policy := s.Delay
	if policy == nil {
		policy = network.Fixed{D: s.DeltaActual}
	}
	if s.PreGSTChaos {
		policy = network.PreGSTChaos{GST: gst, After: policy}
	}

	// Adaptive attack: instantiate the strategy and extend the
	// corruption set with its processors before honesty is classified;
	// the strategy's Link becomes the outermost message schedule, with
	// the scenario's composed policy as its base.
	var strat adversary.Strategy
	baseLink := s.linkPolicy(cfg, gst, policy)
	link := baseLink
	if s.Attack.Enabled() {
		st, err := s.Attack.Strategy()
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		strat = st
		s.Corruptions = withStrategicNodes(s.Corruptions, cfg, s.Attack.Nodes)
		link = network.LinkFunc(strat.Link)
	}
	net := a.network(cfg, gst, link)
	if s.LegacyBroadcast {
		net.SetPerRecipientBroadcast(true)
	}
	if pd := s.effectiveProcDelays(); pd != nil {
		net.SetProcDelays(pd)
	}
	if s.OmissionBudget != (network.OmissionBudget{}) {
		// The network treats MaxSenders 0 as "no per-sender cap", which
		// would let omissions touch more than f senders — reject it
		// here along with caps beyond f: post-GST omission is a
		// processor fault and only f processors may be faulty.
		if s.OmissionBudget.MaxSenders <= 0 || s.OmissionBudget.MaxSenders > cfg.F {
			panic(fmt.Sprintf("harness: omission budget must name 1..f=%d senders, got %d",
				cfg.F, s.OmissionBudget.MaxSenders))
		}
		net.SetOmissionBudget(s.OmissionBudget)
	}

	behaviors := make(map[types.NodeID]adversary.Corruption, len(s.Corruptions))
	for _, c := range s.Corruptions {
		behaviors[c.Node] = c
		if c.Behavior != adversary.BehaviorHonest {
			net.SetByzantine(c.Node)
		}
	}
	copts := []metrics.Option{metrics.WithEpochWords(accountingEpochLen(s, cfg))}
	if s.KeepSendLog {
		copts = append(copts, metrics.WithSendLog())
	}
	if s.SparseMetrics > 0 {
		copts = append(copts, metrics.WithSparse(s.SparseMetrics))
	}
	collector := a.metricsCollector(net.Honest, copts...)
	net.Observe(collector)

	var tracer *trace.Tracer
	if s.TraceLimit > 0 {
		tracer = trace.New(s.TraceLimit)
	}
	suite := a.simSuite(cfg.N, s.Seed+1)

	// The replica shells are arena slots; everything below that a Result
	// keeps a reference to (clocks via pacemakers, endpoints via the
	// strategy Env, state machines, the honest mask via the gap tracker)
	// is built fresh per cell.
	replicas := a.replicaSlots(cfg.N)
	clocks := make([]*clock.Clock, cfg.N)
	eps := make([]network.Endpoint, cfg.N)
	honest := make([]bool, cfg.N)
	sms := make([]statemachine.StateMachine, cfg.N)
	var gamma time.Duration
	// commitHook is the workload's per-block commit observer; it is
	// assigned below (after the network and collector exist) and read at
	// replica boot time inside the scheduled start closures.
	var commitHook hotstuff.CommitObserver

	for i := 0; i < cfg.N; i++ {
		id := types.NodeID(i)
		honest[i] = net.Honest(id)
		r := replicas[i]
		ep := net.Attach(id, r)
		eps[i] = ep
		corr := behaviors[id]
		if corr.Behavior == adversary.BehaviorCrash {
			r.Crashed = true
			continue
		}
		if corr.Behavior == adversary.BehaviorCrashAt {
			at := types.Time(0).Add(corr.At)
			sched.At(at, func() { net.Kill(id) })
		}
		if corr.Behavior == adversary.BehaviorChurn {
			for _, d := range corr.Downs {
				d := d
				sched.At(types.Time(0).Add(d.From), func() { net.Kill(id) })
				sched.At(types.Time(0).Add(d.To), func() { net.Revive(id) })
			}
		}
		startAt := types.Time(0)
		if s.StartStagger > 0 {
			startAt = types.Time(sched.Rand().Int63n(int64(s.StartStagger) + 1))
		}
		offset := types.Time(0)
		if i < len(s.InitialOffsets) {
			offset = types.Time(s.InitialOffsets[i])
		}
		if s.SMR {
			if s.NewStateMachine != nil {
				sms[i] = s.NewStateMachine()
			} else {
				sms[i] = statemachine.NewKV()
			}
		}
		// Only honest replicas feed the strategy's pacemaker hooks:
		// the attack frontier tracks honest progress, not the attacker's
		// own (possibly silenced, clock-driven) view entries.
		pobs := pacemaker.Observer(pacemaker.NopObserver{})
		if strat != nil && net.Honest(id) {
			pobs = adversary.PMObserver(strat, id)
		}
		i := i
		sched.At(startAt, func() {
			// A node with clock drift sees the whole runtime — clock
			// reads, alarms, protocol timers — through its drifted local
			// time scale. Drift implements TimerRuntime, so the clock's
			// allocation-free alarm path survives the wrapping.
			var rt clock.Runtime = sched
			if ppm, skew := s.driftOf(i); ppm != 0 || skew != 0 {
				rt = clock.NewDrift(sched, ppm, skew)
			}
			clk := clock.New(rt, offset)
			clocks[i] = clk
			// Commit latency is submit → first commit at any honest
			// replica: only honest replicas report commits.
			var onCommit hotstuff.CommitObserver
			if honest[i] {
				onCommit = commitHook
			}
			pm, engine, g := buildProtocol(s, cfg, ep, rt, clk, suite, corr, tracer, collector, pobs, sms[i], onCommit)
			gamma = g
			r.PM = pm
			r.Core = engine
			r.Start()
		})
	}

	if strat != nil {
		net.Observe(adversary.NetObserver(strat))
		// The leader schedule is shared by all replicas; resolve (and
		// cache) the first booted pacemaker — Leader sits on the
		// strategy Link/Observe hot paths.
		var leaderPM pacemaker.Pacemaker
		strat.Init(&adversary.Env{
			Cfg:       cfg,
			GST:       gst,
			Corrupted: strategicNodes(s.Corruptions),
			Leader: func(v types.View) types.NodeID {
				if leaderPM == nil {
					for _, r := range replicas {
						if r.PM != nil {
							leaderPM = r.PM
							break
						}
					}
					if leaderPM == nil {
						return -1
					}
				}
				return leaderPM.Leader(v)
			},
			Now:       sched.Now,
			At:        func(t types.Time, fn func()) { sched.At(t, fn) },
			After:     func(d time.Duration, fn func()) { sched.After(d, fn) },
			Silence:   net.Kill,
			Unsilence: net.Revive,
			Broadcast: func(from types.NodeID, m msg.Message) { eps[from].Broadcast(m) },
			SyncMsg:   syncSpamBuilder(s, cfg, suite),
			Base:      baseLink,
		})
	}

	injected := 0
	var eng *workload.Engine
	switch {
	case s.SMR && s.Workload != nil:
		// Workload-engine injection: exact accumulator pacing, alloc-free
		// mempool entry (hotstuff.EnqueueCommand), per-command commit
		// latency via commitHook, optional closed-loop resubmission.
		eng = a.workloadEngine(*s.Workload)
		wcfg := eng.Config()
		submitAll := func(id uint64, payload []byte) {
			for _, r := range replicas {
				if r.Crashed || r.Core == nil {
					continue
				}
				if hs, ok := r.Core.(*hotstuff.Core); ok {
					hs.EnqueueCommand(id, payload)
				} else {
					// Wrapped engines (equivocators) take the envelope
					// path; only corrupted replicas pay the allocation.
					r.Core.Handle(r.ID, &msg.Request{ID: id, Payload: payload})
				}
			}
		}
		commitHook = func(b *hotstuff.Block, at types.Time) {
			for i := range b.Cmds {
				c, ok := eng.OnCommit(b.Cmds[i].ID, int64(at))
				if !ok {
					continue // foreign ID or already committed elsewhere
				}
				collector.RecordCommit(at, c.Latency)
				if !wcfg.Closed {
					continue
				}
				client, seq := c.Client, c.Seq+1
				resub := func() {
					id, pl := eng.Resubmit(client, seq, int64(sched.Now()))
					submitAll(id, pl)
				}
				if wcfg.Think > 0 {
					sched.After(wcfg.Think, resub)
				} else {
					resub()
				}
			}
		}
		var pump func()
		pump = func() {
			now := int64(sched.Now())
			for !eng.RampDone() && eng.NextDueNs() <= now {
				id, pl := eng.SubmitNext(now)
				submitAll(id, pl)
			}
			if !eng.RampDone() {
				sched.At(types.Time(eng.NextDueNs()), pump)
			}
		}
		sched.At(types.Time(eng.NextDueNs()), pump)
	case s.SMR && s.WorkloadRate > 0:
		// Legacy injector, now on the exact accumulator schedule: command
		// i is due at ⌊(i+1)·10⁹/rate⌋ ns, which reproduces the old
		// interval schedule tick for tick at divisor rates and fixes the
		// truncation drift at every other rate (the old
		// time.Second/rate interval realized e.g. 667111/s for a
		// requested 666667/s, and collapsed to 1µs above 10⁶/s).
		pacer := workload.NewPacer(int64(s.WorkloadRate))
		cmdFor := s.WorkloadCommand
		if cmdFor == nil {
			cmdFor = func(i int) []byte {
				return []byte(fmt.Sprintf("SET key%d value%d", i%64, i))
			}
		}
		var inject func()
		inject = func() {
			now := int64(sched.Now())
			for pacer.NextAtNs() <= now {
				i := pacer.Take()
				req := &msg.Request{ID: workload.IDBase + uint64(i), Payload: cmdFor(int(i))}
				injected++
				for _, r := range replicas {
					if !r.Crashed && r.Core != nil {
						r.Core.Handle(r.ID, req)
					}
				}
			}
			sched.At(types.Time(pacer.NextAtNs()), inject)
		}
		sched.At(types.Time(pacer.NextAtNs()), inject)
	}

	gaps := metrics.NewGapTracker(nil, nil, cfg.F)
	if s.SampleGaps {
		gaps = newLazyGapTracker(clocks, honest, cfg.F)
		var sample func()
		sample = func() {
			gaps.Sample(sched.Now())
			sched.After(s.Delta/2, sample)
		}
		sched.After(s.Delta/2, sample)
	}

	// Run in chunks so the event budget is enforced.
	end := types.Time(0).Add(s.Duration)
	chunk := 100 * s.Delta
	aborted := false
	for sched.Now() < end {
		next := types.MinTime(sched.Now().Add(chunk), end)
		sched.RunUntil(next)
		if sched.Events() > s.MaxEvents {
			aborted = true
			break
		}
	}
	net.Stop()

	if eng != nil {
		injected = int(eng.Submitted())
	}
	resCollector := collector
	if detach {
		// Detach the metrics so the Result stays valid across the
		// arena's next cell: the snapshot is an exactly-sized deep copy
		// answering every query identically to the live Collector.
		resCollector = collector.Snapshot()
	}
	res := &Result{
		Scenario:   s,
		Cfg:        cfg,
		GST:        gst,
		Gamma:      gamma,
		Collector:  resCollector,
		Tracer:     tracer,
		Gaps:       gaps,
		FinalViews: make([]types.View, cfg.N),
		PMs:        make([]pacemaker.Pacemaker, cfg.N),
		Engines:    make([]replica.Engine, cfg.N),
		SMs:        sms,
		Injected:   injected,
		Events:     sched.Events(),
		Aborted:    aborted,
		Omitted:    net.Omitted(),
	}
	for i, r := range replicas {
		res.PMs[i] = r.PM
		res.Engines[i] = r.Core
		if r.PM != nil {
			res.FinalViews[i] = r.PM.CurrentView()
			// Lemmas 5.1–5.3 quantify over honest processors only: a
			// corrupted replica (e.g. crash-recovery churn waking up
			// with a stale clock) is outside their guarantees.
			if lum, ok := r.PM.(*core.Pacemaker); ok && honest[i] {
				res.Violations = append(res.Violations, lum.Violations()...)
			}
		} else {
			res.FinalViews[i] = types.NoView
		}
	}
	return res
}

// newLazyGapTracker builds a tracker over a clock slice that is filled in
// as replicas join; nil clocks and Byzantine owners are skipped at sample
// time by filtering here.
func newLazyGapTracker(clocks []*clock.Clock, honest []bool, f int) *metrics.GapTracker {
	return metrics.NewGapTrackerLazy(func() ([]*clock.Clock, []bool) {
		outC := make([]*clock.Clock, 0, len(clocks))
		outH := make([]bool, 0, len(clocks))
		for i, c := range clocks {
			if c != nil {
				outC = append(outC, c)
				outH = append(outH, honest[i])
			}
		}
		return outC, outH
	}, f)
}

// qcObserver wires view-core QC events into metrics and tracing.
type qcObserver struct {
	id        types.NodeID
	collector *metrics.Collector
	tracer    *trace.Tracer
	rtNow     func() types.Time
}

var _ viewcore.QCObserver = (*qcObserver)(nil)

func (o *qcObserver) OnQCSeen(qc *msg.QC, at types.Time) {
	o.tracer.Emit(at, o.id, trace.QCSeen, qc.V, "")
}

func (o *qcObserver) OnQCProduced(qc *msg.QC, at types.Time) {
	o.tracer.Emit(at, o.id, trace.QCProduced, qc.V, "")
	o.collector.RecordDecision(qc.V, o.id, at)
}

// buildProtocol constructs the pacemaker + consensus engine pair for one
// node. rt is the node's runtime view — the scheduler itself, or a
// clock.Drift wrapper when the node's hardware clock drifts. pobs
// receives the pacemaker's lifecycle notifications (view and epoch
// entries, heavy syncs) — the observation hooks adaptive attack
// strategies read.
func buildProtocol(s Scenario, cfg types.Config, ep network.Endpoint, rt clock.Runtime,
	clk *clock.Clock, suite crypto.Suite, corr adversary.Corruption,
	tracer *trace.Tracer, collector *metrics.Collector, pobs pacemaker.Observer,
	sm statemachine.StateMachine, onCommit hotstuff.CommitObserver) (pacemaker.Pacemaker, replica.Engine, time.Duration) {

	var pm pacemaker.Pacemaker
	leaderFn := func(v types.View) types.NodeID { return pm.Leader(v) }
	obs := &qcObserver{id: ep.ID(), collector: collector, tracer: tracer}
	onQC := func(qc *msg.QC) { pm.Handle(ep.ID(), qc) }
	var engine replica.Engine
	if s.SMR {
		hcfg := hotstuff.Config{Base: cfg, BatchSize: s.SMRBatchSize, TwoPhase: s.SMRTwoPhase}
		hs := hotstuff.New(hcfg, ep, rt, suite, leaderFn, onQC, sm, obs, onCommit)
		engine = hs
		if corr.Behavior == adversary.BehaviorEquivocating {
			engine = adversary.NewEquivocator(hs, ep, cfg)
		}
	} else {
		engine = viewcore.New(cfg, ep, rt, suite, leaderFn, onQC, obs)
	}
	driver := adversary.WrapDriver(engine, corr.Behavior, corr.Lag, rt)

	var gamma time.Duration
	switch s.Protocol {
	case ProtoLumiere, ProtoBasic:
		ccfg := core.Config{
			Base:                   cfg,
			Variant:                core.VariantFull,
			BlocksPerEpoch:         s.CoreBlocksPerEpoch,
			QCsPerLeaderForSuccess: s.CoreQCsPerLeader,
			DisableDeltaWait:       s.CoreDisableDeltaWait,
			GammaOverride:          s.GammaOverride,
			ScheduleSeed:           s.Seed + 7,
			CheckInvariants:        s.CheckInvariants,
		}
		if s.Protocol == ProtoBasic {
			ccfg.Variant = core.VariantBasic
		}
		p := core.New(ccfg, ep, rt, clk, suite, driver, pobs, tracer)
		gamma = p.Gamma()
		pm = p
	case ProtoLP22:
		p := lp22.New(lp22.Config{Base: cfg, GammaOverride: s.GammaOverride}, ep, rt, clk, suite, driver, pobs, tracer)
		gamma = p.Gamma()
		pm = p
	case ProtoRareSync:
		p := raresync.New(raresync.Config{Base: cfg, GammaOverride: s.GammaOverride}, ep, rt, clk, suite, driver, pobs, tracer)
		gamma = p.Gamma()
		pm = p
	case ProtoFever:
		p := fever.New(fever.Config{Base: cfg, GammaOverride: s.GammaOverride}, ep, rt, clk, suite, driver, pobs, tracer)
		gamma = p.Gamma()
		pm = p
	case ProtoCogsworth:
		p := cogsworth.New(cogsworth.Config{Base: cfg}, ep, rt, suite, driver, pobs, tracer)
		gamma = time.Duration(cfg.X+1) * cfg.Delta
		pm = p
	case ProtoNK20:
		p := nk20.New(nk20.Config{Base: cfg}, ep, rt, suite, driver, pobs, tracer)
		gamma = time.Duration(cfg.X+1) * cfg.Delta
		pm = p
	default:
		panic(fmt.Sprintf("harness: unknown protocol %q", s.Protocol))
	}
	return pm, engine, gamma
}
