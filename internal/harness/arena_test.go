package harness

import (
	"runtime"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/network"
)

// The arena contract: recycling a worker's execution stack across cells
// must be invisible in results. These tests prove it three ways — table
// byte-identity with arenas on vs off, per-cell result equivalence
// between a dirty arena and fresh runs under adversarial/honest
// interleaving, and a pinned allocation budget for warm-arena cells.

// TestArenaReuseDeterminism renders the Table 1 eventual, chaos and
// attack tables with per-worker arenas enabled (the default) and with
// FreshCells, at two worker counts each, and requires all four renderings
// byte-identical per table.
func TestArenaReuseDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-table sweep in -short mode")
	}
	t.Parallel()
	const seed = 42
	workers := []int{1, 3}
	render := map[string]func(opts SweepOptions) string{
		"table1-eventual": func(opts SweepOptions) string {
			comm, lat := Table1EventualOpts(1, []int{0, 1}, seed, opts)
			return comm.Render() + lat.Render()
		},
		"chaos": func(opts SweepOptions) string {
			return ChaosTableOpts(1, seed, opts).Render()
		},
		"attack": func(opts SweepOptions) string {
			return AttackTableOpts(1, seed, opts).Render()
		},
	}
	for name, fn := range render {
		var want string
		for _, fresh := range []bool{true, false} {
			for _, w := range workers {
				got := fn(SweepOptions{Workers: w, FreshCells: fresh})
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: output differs (fresh=%v workers=%d):\n--- want ---\n%s\n--- got ---\n%s",
						name, fresh, w, want, got)
				}
			}
		}
	}
}

// resultFingerprint summarizes the observable surface of one run: the
// fields every measure function reads.
type resultFingerprint struct {
	decisions  int
	honest     int64
	byz        int64
	words      int64
	kappa      int64
	events     uint64
	omitted    int64
	violations int
	finalViews string
	firstDec   time.Duration
}

func fingerprint(res *Result) resultFingerprint {
	fp := resultFingerprint{
		decisions:  res.DecisionCount(),
		honest:     res.Collector.HonestSends(),
		byz:        res.Collector.ByzantineSends(),
		words:      res.Collector.WordsTotal(),
		kappa:      res.Collector.KappaBytes(),
		events:     res.Events,
		omitted:    res.Omitted,
		violations: len(res.Violations),
	}
	for _, v := range res.FinalViews {
		fp.finalViews += v.String() + ","
	}
	if d, ok := res.Collector.FirstDecisionAfter(res.GST); ok {
		fp.firstDec = d.At.Sub(res.GST)
	}
	return fp
}

// TestArenaNoStateLeak interleaves adversarial (equivocator, adaptive
// strategy, churn, omission-budget) and honest cells of varying sizes
// through ONE arena, in an order chosen so every cell inherits a
// maximally dirty stack from a differently-shaped predecessor, and
// cross-checks each cell against a fresh standalone run.
func TestArenaNoStateLeak(t *testing.T) {
	t.Parallel()
	delta := 50 * time.Millisecond
	gst := 2 * time.Second
	dur := 8 * time.Second
	cells := []Scenario{
		// Adaptive attack: strategy nodes, silences, signed sync spam.
		{Name: "attack", Protocol: ProtoLumiere, F: 1, Delta: delta, DeltaActual: delta / 10,
			GST: gst, Duration: dur, Attack: adversary.AttackSpec{Name: adversary.AttackSaturate}},
		// Honest small cell: must see no trace of the attack cell.
		{Name: "honest-small", Protocol: ProtoLumiere, F: 1, Delta: delta, DeltaActual: delta / 10,
			GST: gst, Duration: dur, CheckInvariants: true},
		// SMR equivocator at a larger n: exercises the HotStuff stack
		// and Byzantine accounting on recycled slots.
		{Name: "equivocate", Protocol: ProtoLumiere, F: 2, Delta: delta, DeltaActual: delta / 10,
			GST: gst, Duration: dur, SMR: true, WorkloadRate: 50,
			Corruptions: []adversary.Corruption{{Node: 0, Behavior: adversary.BehaviorEquivocating}}},
		// Churn + loss + omission budget on another protocol.
		{Name: "churn", Protocol: ProtoFever, F: 2, Delta: delta, DeltaActual: delta / 10,
			GST: gst, Duration: dur, Loss: 0.2, LossUntil: gst,
			OmissionBudget: network.OmissionBudget{MaxMessages: 10, MaxSenders: 1},
			Corruptions: []adversary.Corruption{adversary.Churn(1,
				adversary.Downtime{From: 500 * time.Millisecond, To: time.Second})}},
		// Honest again, smaller n than the predecessor: shrinking slots.
		{Name: "honest-again", Protocol: ProtoCogsworth, F: 1, Delta: delta, DeltaActual: delta / 10,
			GST: gst, Duration: dur},
	}
	arena := NewArena()
	for round := 0; round < 2; round++ {
		for i, s := range cells {
			s.Seed = DeriveSeed(7, round*len(cells)+i)
			warm := fingerprint(RunIn(arena, s))
			fresh := fingerprint(Run(s))
			if warm != fresh {
				t.Fatalf("round %d cell %q: warm arena diverged from fresh run:\nwarm:  %+v\nfresh: %+v",
					round, s.Name, warm, fresh)
			}
		}
	}
}

// TestRunInAllocsSteadyCell pins the per-cell allocation budget of a warm
// arena: after a warmup run, re-running a chaos-table cell in the same
// arena must stay below a fixed allocation count. The budget has
// generous headroom over the measured value (see EXPERIMENTS.md perf
// notes) but would catch a regression that reintroduces per-cell setup
// churn or per-send allocation.
func TestRunInAllocsSteadyCell(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement in -short mode")
	}
	s := chaosScenario(ProtoCogsworth, 1, 0, 42)
	arena := NewArena()
	RunIn(arena, s) // warm every layer's high-water buffers
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	RunIn(arena, s)
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	// Measured ~16k warm-cell allocs (message structs, engine maps,
	// snapshot); the pre-arena stack paid ~195k. Budget: 3x headroom.
	const budget = 50_000
	if allocs > budget {
		t.Fatalf("warm arena cell performed %d allocs, budget %d", allocs, budget)
	}
	t.Logf("warm arena cell: %d allocs (budget %d)", allocs, budget)
}
