package harness

import (
	"fmt"
	"time"

	"lumiere/internal/network"
	"lumiere/internal/statemachine"
	"lumiere/internal/workload"
)

// This file implements the WAN deployment experiments: geo-distributed
// topology presets (regional latency matrices with jitter, straggler
// regions, hub-and-spoke shapes) realized through network.Topology, the
// per-node clock-drift tolerance study over clock.Drift, and the two
// tables that report them — TopologyTable (view-sync latency, W_GST
// words and p99 SMR commit latency per preset, Lumiere vs LP22) and
// DriftToleranceTable (where the Lemma 5.1–5.3 guarantees hold as
// hardware clocks drift, and where they break). See DESIGN.md §1e for
// the deployment model and EXPERIMENTS.md ("WAN degradation") for the
// reference tables.

// WANPresets lists the topology presets of the WAN tables, in row
// order. Each is a deployment shape PresetTopology materializes for any
// n and Δ:
//
//   - single: one region, LAN-class latencies — the control row.
//   - wan3: three regions of near-equal size, fast intra-region links,
//     Δ-scale inter-region links with jitter — the classic
//     three-datacenter deployment.
//   - hub: a hub region plus two spokes; spoke↔spoke traffic pays
//     nearly the whole Δ — the shape that stresses leaders placed in a
//     spoke.
//   - degraded: wan3 with the last region a straggler — every message
//     into it is ingested 0.8Δ late (node slowness, not network delay)
//     — the graceful-degradation row.
var WANPresets = []string{"single", "wan3", "hub", "degraded"}

// WANProtocols are the protocols compared in the WAN tables: the
// paper's Θ(n²)-synchronization baseline against Lumiere.
var WANProtocols = []Protocol{ProtoLumiere, ProtoLP22}

// splitRegions divides n processors over r regions as evenly as
// possible (earlier regions take the remainder).
func splitRegions(n, r int) []int {
	if r > n {
		r = n
	}
	out := make([]int, r)
	base, rem := n/r, n%r
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// PresetTopology materializes one of WANPresets for n processors under
// partial-synchrony bound delta. Every preset validates against delta
// by construction: latency class + jitter stays ≤ Δ, and the degraded
// preset's straggler delay stays ≤ Δ (in-model, no UncheckedWAN
// needed). Unknown names panic.
func PresetTopology(name string, n int, delta time.Duration) *network.Topology {
	intra := delta / 25
	switch name {
	case "single":
		return &network.Topology{
			Regions: []int{n},
			Intra:   intra,
			Jitter:  delta / 50,
		}
	case "wan3":
		return &network.Topology{
			Regions: splitRegions(n, 3),
			Intra:   intra,
			Inter:   delta * 3 / 5,
			Jitter:  delta / 10,
		}
	case "hub":
		h, s := intra, delta*2/5
		return &network.Topology{
			Regions: splitRegions(n, 3),
			Matrix: [][]time.Duration{
				{h, s, s},
				{s, h, delta * 4 / 5},
				{s, delta * 4 / 5, h},
			},
			Jitter: delta / 10,
		}
	case "degraded":
		t := PresetTopology("wan3", n, delta)
		t.ProcDelays = make([]time.Duration, t.R())
		t.ProcDelays[t.R()-1] = delta * 4 / 5
		return t
	default:
		panic(fmt.Sprintf("harness: unknown WAN preset %q", name))
	}
}

// wanSyncScenario builds the view-synchronization half of one WAN cell:
// the attack table's shape (GST = 2s, Δ = AttackDelta, a post-GST
// window long enough for per-decision statistics) with the preset
// topology as the delay model and pre-GST chaos riding on it.
func wanSyncScenario(preset string, p Protocol, f int, seed int64) Scenario {
	delta := AttackDelta
	gst := 2 * time.Second
	gamma := gammaOf(p, delta)
	return Scenario{
		Name:        fmt.Sprintf("wan-%s-%s-f%d", preset, p, f),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		Topology:    PresetTopology(preset, 3*f+1, delta),
		PreGSTChaos: true,
		GST:         gst,
		Duration:    gst + 30*time.Duration(f+1)*gamma,
		Seed:        seed,
	}
}

// wanSMRWarmup, wanSMRLoad, wanSMRBatch and wanSMRClients fix the SMR
// half of each WAN cell: a modest open-loop load whose p99 commit
// latency isolates the topology's effect rather than queueing.
const (
	wanSMRWarmup        = 3 * time.Second
	wanSMRLoad    int64 = 300
	wanSMRBatch         = 128
	wanSMRClients       = 10_000
)

// wanSMRScenario builds the SMR half of one WAN cell: chained HotStuff
// over the protocol's pacemaker on the preset topology, measured in
// submit→commit latency after warmup.
func wanSMRScenario(preset string, p Protocol, f int, seed int64) Scenario {
	delta := AttackDelta
	gst := 2 * time.Second
	return Scenario{
		Name:            fmt.Sprintf("wan-smr-%s-%s-f%d", preset, p, f),
		Protocol:        p,
		F:               f,
		Delta:           delta,
		Topology:        PresetTopology(preset, 3*f+1, delta),
		GST:             gst,
		Duration:        gst + 15*time.Second,
		Seed:            seed,
		SMR:             true,
		SMRBatchSize:    wanSMRBatch,
		NewStateMachine: func() statemachine.StateMachine { return statemachine.NewCounter() },
		Workload: &workload.Config{
			Clients:    wanSMRClients,
			Rate:       wanSMRLoad,
			PayloadPad: ThroughputPayloadPad,
		},
	}
}

// WANCell is one topology preset × protocol cell: the
// view-synchronization measurements from the sync run and the commit
// percentiles from the SMR run.
type WANCell struct {
	// Preset and Protocol identify the cell.
	Preset   string
	Protocol Protocol
	// Seed is the sync run's derived seed (the SMR run's is Seed+1 in
	// sweep order).
	Seed int64
	// Decided reports whether an honest-leader decision landed after
	// GST; SyncLatency is its distance from GST; WindowWords is W_GST in
	// words.
	Decided     bool
	SyncLatency time.Duration
	WindowWords int64
	// Committed, PerSec and P99 come from the SMR run: committed
	// commands, post-warmup throughput and p99 submit→commit latency.
	Committed int64
	PerSec    float64
	P99       time.Duration
}

// WANSyncIn runs the view-synchronization half of one WAN cell inside
// an arena (benchmark entry point; SMR fields stay zero): the preset
// topology as the delay model with pre-GST chaos riding on it.
func WANSyncIn(a *Arena, preset string, p Protocol, f int, seed int64) WANCell {
	res := RunIn(a, wanSyncScenario(preset, p, f, seed))
	cell := WANCell{Preset: preset, Protocol: p, Seed: seed}
	if w, lat, ok := res.Collector.WordsWindowAfter(res.GST); ok {
		cell.Decided = true
		cell.SyncLatency = lat
		cell.WindowWords = w
	}
	return cell
}

// WANReport aggregates a WAN sweep.
type WANReport struct {
	// Cells holds presets outer (WANPresets order), protocols inner
	// (WANProtocols order).
	Cells   []WANCell
	Workers int
	Elapsed time.Duration
}

// WANSweep runs the WANPresets × WANProtocols matrix — two runs per
// cell (view-sync shape and SMR shape) — on the sweep engine. Cell
// seeds derive from (seed, cell index), so the report is byte-identical
// at every worker count.
func WANSweep(f int, seed int64, opts SweepOptions) *WANReport {
	scenarios := make([]Scenario, 0, 2*len(WANPresets)*len(WANProtocols))
	for _, preset := range WANPresets {
		for _, p := range WANProtocols {
			scenarios = append(scenarios, wanSyncScenario(preset, p, f, 0))
			scenarios = append(scenarios, wanSMRScenario(preset, p, f, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	sr := Sweep(scenarios, opts)

	rep := &WANReport{Workers: sr.Workers, Elapsed: sr.Elapsed}
	for i := 0; i+1 < len(sr.Cells); i += 2 {
		syncRes, smrRes := sr.Cells[i].Result, sr.Cells[i+1].Result
		cell := WANCell{
			Preset:   WANPresets[(i/2)/len(WANProtocols)],
			Protocol: syncRes.Scenario.Protocol,
			Seed:     sr.Cells[i].Scenario.Seed,
		}
		if w, lat, ok := syncRes.Collector.WordsWindowAfter(syncRes.GST); ok {
			cell.Decided = true
			cell.SyncLatency = lat
			cell.WindowWords = w
		}
		cell.Committed = smrRes.Collector.CommitCount()
		st := smrRes.Collector.CommitLatencyStats(smrRes.GST.Add(wanSMRWarmup))
		cell.PerSec, cell.P99 = st.PerSec, st.P99
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// Table renders the report: one row per preset, per protocol the
// post-GST view-sync latency (in Δ), W_GST in words, and p99 commit
// latency. The rendering is a pure function of the simulated
// executions, so it is byte-identical at every worker count.
func (r *WANReport) Table() *Table {
	delta := AttackDelta
	t := &Table{Title: "WAN degradation: view-sync latency after GST (in Δ), W_GST words, and p99 SMR commit latency by topology"}
	t.Header = []string{"topology"}
	for _, p := range WANProtocols {
		t.Header = append(t.Header, string(p)+" sync", string(p)+" W_GST", string(p)+" p99")
	}
	for qi, preset := range WANPresets {
		row := []string{preset}
		for pi := range WANProtocols {
			c := &r.Cells[qi*len(WANProtocols)+pi]
			if !c.Decided {
				row = append(row, "stalled", "-")
			} else {
				row = append(row, fmt.Sprintf("%.2fΔ", float64(c.SyncLatency)/float64(delta)), fmt.Sprintf("%dw", c.WindowWords))
			}
			if c.Committed == 0 {
				row = append(row, "stalled")
			} else {
				row = append(row, shortDur(c.P99))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("presets: single region (control), 3-region WAN, hub-and-spoke, degraded region (0.8Δ straggler ingest)")
	t.AddNote("sync/W_GST from a pre-GST-chaos run (GST=2s); p99 from an SMR run at %d cmd/s, batch %d, stats after %s warmup", wanSMRLoad, wanSMRBatch, wanSMRWarmup)
	return t
}

// TopologyTable regenerates the WAN degradation comparison.
func TopologyTable(f int, seed int64) *Table {
	return TopologyTableOpts(f, seed, SweepOptions{})
}

// TopologyTableOpts is TopologyTable with explicit sweep options.
func TopologyTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return WANSweep(f, seed, opts).Table()
}

// ---------------------------------------------------------------------------
// Clock-drift tolerance
// ---------------------------------------------------------------------------

// DriftPPMAxis is the rate-drift axis of DriftToleranceTable, in parts
// per million, spanning realistic crystals (≤100ppm), the in-model
// tolerance boundary (|ppm|·Γ ≤ Δ·10⁶: 100k ppm for Lumiere's Γ=10Δ,
// 250k for LP22's Γ=4Δ), and far beyond it — half-speed/1.5×-speed
// clocks at clock.Drift's hard range.
var DriftPPMAxis = []int64{0, 100, 10_000, 100_000, 250_000, 500_000}

// driftScenario builds one drift cell: nodes alternate ±ppm by parity
// (worst-case pairwise rate spread 2·ppm) with skews fanned over
// [−Δ/2, Δ/2], invariant checking on. Out-of-model rates set
// UncheckedWAN — the point of the table's right half is watching the
// guarantees degrade.
func driftScenario(p Protocol, f int, ppm int64, seed int64) Scenario {
	delta := AttackDelta
	gst := 2 * time.Second
	gamma := gammaOf(p, delta)
	n := 3*f + 1
	drift := make([]int64, n)
	skew := make([]time.Duration, n)
	for i := range drift {
		if i%2 == 0 {
			drift[i] = ppm
		} else {
			drift[i] = -ppm
		}
		skew[i] = -delta/2 + delta*time.Duration(i)/time.Duration(n-1)
	}
	return Scenario{
		Name:            fmt.Sprintf("drift-%s-f%d-ppm%d", p, f, ppm),
		Protocol:        p,
		F:               f,
		Delta:           delta,
		DeltaActual:     delta / 10,
		GST:             gst,
		Duration:        gst + 30*time.Duration(f+1)*gamma,
		Seed:            seed,
		DriftPPM:        drift,
		DriftSkew:       skew,
		CheckInvariants: true,
		UncheckedWAN:    time.Duration(abs64(ppm)*int64(gamma)/1_000_000) > delta,
	}
}

// DriftCell is one protocol × ppm cell of a drift sweep.
type DriftCell struct {
	Protocol Protocol
	PPM      int64
	Seed     int64
	// InModel reports whether the rate is inside the harness's drift
	// tolerance for this protocol's Γ (no UncheckedWAN needed).
	InModel bool
	// Decided and SyncLatency are the post-GST liveness measurements;
	// Problems is the full conformance report (empty = Lemma 5.1–5.3
	// obligations all hold).
	Decided     bool
	SyncLatency time.Duration
	Problems    []string
}

// DriftReport aggregates a drift sweep.
type DriftReport struct {
	// Cells holds protocols outer (WANProtocols order), ppm inner (axis
	// order).
	Cells   []DriftCell
	Axis    []int64
	Workers int
	Elapsed time.Duration
}

// DriftSweep runs WANProtocols over the given ppm axis on the sweep
// engine. Cell seeds derive from (seed, cell index), so the report is
// byte-identical at every worker count.
func DriftSweep(f int, ppms []int64, seed int64, opts SweepOptions) *DriftReport {
	scenarios := make([]Scenario, 0, len(WANProtocols)*len(ppms))
	for _, p := range WANProtocols {
		for _, ppm := range ppms {
			scenarios = append(scenarios, driftScenario(p, f, ppm, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	sr := Sweep(scenarios, opts)

	rep := &DriftReport{Axis: ppms, Workers: sr.Workers, Elapsed: sr.Elapsed}
	for i := range sr.Cells {
		res := sr.Cells[i].Result
		cell := DriftCell{
			Protocol: res.Scenario.Protocol,
			PPM:      res.Scenario.DriftPPM[0],
			Seed:     sr.Cells[i].Scenario.Seed,
			InModel:  !res.Scenario.UncheckedWAN,
			Problems: ConformanceReport(res),
		}
		if d, ok := res.Collector.FirstDecisionAfter(res.GST); ok {
			cell.Decided = true
			cell.SyncLatency = d.At.Sub(res.GST)
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// InModelClean reports whether every in-model cell conforms — the
// regression gate: drift the harness accepts without UncheckedWAN must
// never break a Lemma 5.1–5.3 obligation.
func (r *DriftReport) InModelClean() bool {
	for i := range r.Cells {
		if r.Cells[i].InModel && len(r.Cells[i].Problems) > 0 {
			return false
		}
	}
	return true
}

// Table renders the report: one row per protocol, one column per ppm,
// each cell the post-GST sync latency in Δ plus a conformance marker —
// clean, or the number of broken obligations. Out-of-model columns are
// flagged in the header row per protocol Γ implicitly (the boundary
// differs per protocol; InModel is per cell).
func (r *DriftReport) Table() *Table {
	delta := AttackDelta
	t := &Table{Title: "Clock-drift tolerance: view-sync latency after GST (in Δ) and conformance as hardware clocks drift"}
	t.Header = []string{"protocol"}
	for _, ppm := range r.Axis {
		t.Header = append(t.Header, fmt.Sprintf("±%dppm", ppm))
	}
	stride := len(r.Axis)
	for pi, p := range WANProtocols {
		row := []string{string(p)}
		for ci := 0; ci < stride; ci++ {
			c := &r.Cells[pi*stride+ci]
			var cell string
			switch {
			case !c.Decided:
				cell = "stalled"
			default:
				cell = fmt.Sprintf("%.2fΔ", float64(c.SyncLatency)/float64(delta))
			}
			switch {
			case len(c.Problems) > 0:
				cell += fmt.Sprintf(" %d✗", len(c.Problems))
			case !c.InModel:
				cell += " *"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("nodes alternate ±ppm (pairwise rate spread 2·ppm), skews fanned over [−Δ/2, Δ/2]")
	t.AddNote("* = past the in-model tolerance |ppm|·Γ ≤ Δ·10⁶ (run under UncheckedWAN); N✗ = N broken conformance obligations")
	return t
}

// DriftToleranceTable regenerates the drift-tolerance comparison over
// DriftPPMAxis.
func DriftToleranceTable(f int, seed int64) *Table {
	return DriftToleranceTableOpts(f, seed, SweepOptions{})
}

// DriftToleranceTableOpts is DriftToleranceTable with explicit sweep
// options.
func DriftToleranceTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return DriftSweep(f, DriftPPMAxis, seed, opts).Table()
}
