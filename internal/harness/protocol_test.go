package harness

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/core"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

const testDelta = 50 * time.Millisecond

// skipInShort gates the paper-scale sweep tests: `go test -short` keeps
// the fast conformance and invariant coverage and skips the long
// steady-state runs (see DESIGN.md §4).
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-scale run in -short mode")
	}
}

// TestLumiereSteadyStateRetiresHeavySyncs validates Theorem 1.1(4)'s
// mechanism (Lemma 5.15(2)): once an epoch satisfies the success
// criterion, no honest processor sends epoch-view messages again in a
// fault-free synchronous run.
func TestLumiereSteadyStateRetiresHeavySyncs(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	res := Run(Scenario{
		Protocol:        ProtoLumiere,
		F:               2,
		Delta:           testDelta,
		DeltaActual:     testDelta / 10,
		Duration:        240 * time.Second,
		Seed:            7,
		CheckInvariants: true,
	})
	requireNoViolations(t, res)
	heavy := res.Collector.HeavySyncViews(types.Time(0).Add(30 * time.Second))
	if len(heavy) != 0 {
		t.Fatalf("heavy syncs after warmup: %v", heavy)
	}
	if res.DecisionCount() < 1000 {
		t.Fatalf("too few decisions: %d", res.DecisionCount())
	}
	// The success criterion must be observable on every honest node.
	for i, pm := range res.PMs {
		lum, ok := pm.(*core.Pacemaker)
		if !ok {
			t.Fatalf("node %d: not a lumiere pacemaker", i)
		}
		e := lum.CurrentEpoch()
		if e < 1 {
			t.Fatalf("node %d stuck in epoch %v", i, e)
		}
		if !lum.SuccessOf(e-1) && !lum.SuccessOf(e) {
			t.Errorf("node %d: success criterion not satisfied around epoch %v", i, e)
		}
	}
}

// TestBasicLumierePaysHeavySyncEveryEpoch contrasts §3.4: Basic Lumiere
// performs a Θ(n²) synchronization at every epoch boundary forever.
func TestBasicLumierePaysHeavySyncEveryEpoch(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	res := Run(Scenario{
		Protocol:    ProtoBasic,
		F:           2,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Duration:    120 * time.Second,
		Seed:        7,
	})
	heavy := res.Collector.HeavySyncViews(types.Time(0).Add(30 * time.Second))
	if len(heavy) < 5 {
		t.Fatalf("basic lumiere heavy syncs = %d, want one per epoch", len(heavy))
	}
}

// TestLP22PaysHeavySyncEveryEpoch checks issue (ii) of §1 for LP22.
func TestLP22PaysHeavySyncEveryEpoch(t *testing.T) {
	t.Parallel()
	res := Run(Scenario{
		Protocol:    ProtoLP22,
		F:           2,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Duration:    120 * time.Second,
		Seed:        7,
	})
	heavy := res.Collector.HeavySyncViews(types.Time(0).Add(30 * time.Second))
	if len(heavy) < 5 {
		t.Fatalf("lp22 heavy syncs = %d, want one per epoch", len(heavy))
	}
}

func requireNoViolations(t *testing.T, res *Result) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestLumiereInvariantsRandomized fuzzes executions: random delay
// distributions, random corruption mixes up to f, staggered joins, late
// GST — Lemmas 5.1-5.3 must hold in every run and liveness must be
// preserved after GST.
func TestLumiereInvariantsRandomized(t *testing.T) {
	t.Parallel()
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		f := 1 + rng.Intn(3)
		n := 3*f + 1
		fa := rng.Intn(f + 1)
		var corr []adversary.Corruption
		perm := rng.Perm(n)
		for i := 0; i < fa; i++ {
			b := []adversary.Behavior{
				adversary.BehaviorCrash,
				adversary.BehaviorNonProposing,
				adversary.BehaviorLateProposing,
			}[rng.Intn(3)]
			corr = append(corr, adversary.Corruption{
				Node:     types.NodeID(perm[i]),
				Behavior: b,
				Lag:      time.Duration(rng.Intn(200)) * time.Millisecond,
			})
		}
		res := Run(Scenario{
			Protocol:        ProtoLumiere,
			F:               f,
			Delta:           testDelta,
			Delay:           network.Uniform{Min: time.Millisecond, Max: testDelta},
			PreGSTChaos:     rng.Intn(2) == 0,
			GST:             time.Duration(rng.Intn(3)) * time.Second,
			StartStagger:    time.Duration(rng.Intn(500)) * time.Millisecond,
			Corruptions:     corr,
			Duration:        90 * time.Second,
			Seed:            seed * 31,
			CheckInvariants: true,
		})
		requireNoViolations(t, res)
		if res.DecisionCount() == 0 {
			t.Errorf("seed %d (f=%d fa=%d): no decisions", seed, f, fa)
		}
	}
}

// TestBasicLumiereInvariantsRandomized fuzzes the basic variant too.
func TestBasicLumiereInvariantsRandomized(t *testing.T) {
	t.Parallel()
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		res := Run(Scenario{
			Protocol:        ProtoBasic,
			F:               2,
			Delta:           testDelta,
			Delay:           network.Uniform{Min: time.Millisecond, Max: testDelta},
			GST:             time.Second,
			PreGSTChaos:     true,
			StartStagger:    300 * time.Millisecond,
			Duration:        60 * time.Second,
			Seed:            seed,
			CheckInvariants: true,
		})
		requireNoViolations(t, res)
		if res.DecisionCount() == 0 {
			t.Errorf("seed %d: no decisions", seed)
		}
	}
}

// TestFeverGapInvariant validates §3.3 claim (a): with the initial skew
// assumption satisfied, hg_{f+1} never exceeds Γ.
func TestFeverGapInvariant(t *testing.T) {
	t.Parallel()
	f := 2
	n := 3*f + 1
	offsets := make([]time.Duration, n)
	gamma := 2 * time.Duration(types.DefaultX+1) * testDelta
	rng := rand.New(rand.NewSource(4))
	for i := range offsets {
		offsets[i] = time.Duration(rng.Int63n(int64(gamma)))
	}
	res := Run(Scenario{
		Protocol:       ProtoFever,
		F:              f,
		Delta:          testDelta,
		DeltaActual:    testDelta / 10,
		InitialOffsets: offsets,
		Duration:       60 * time.Second,
		Seed:           4,
		SampleGaps:     true,
	})
	if res.DecisionCount() == 0 {
		t.Fatal("no decisions")
	}
	for _, s := range res.Gaps.Samples() {
		if g := res.Gaps.GapF1(s); g > res.Gamma {
			t.Fatalf("hg_{f+1} = %v > Γ = %v at %v", g, res.Gamma, s.At)
		}
	}
}

// TestSmoothResponsiveness validates Theorem 1.1(3) empirically at
// f_a = 0: the steady-state decision gap tracks the actual delay δ, not
// the conservative bound Δ.
func TestSmoothResponsiveness(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	for _, p := range []Protocol{ProtoLumiere, ProtoFever} {
		small := Eventual(p, 2, 0, 11)
		if small.Decisions == 0 {
			t.Fatalf("%s: no decisions", p)
		}
		// δ = Δ/10 = 5ms; a responsive view pair completes in ~3δ
		// per decision. Anything near Γ (≥ 400ms) means the clock,
		// not the network, is pacing the protocol.
		if small.MeanGap > 100*time.Millisecond {
			t.Errorf("%s: mean gap %v not responsive (δ=5ms)", p, small.MeanGap)
		}
	}
}

// TestFigure1Shape asserts the paper's Figure 1 comparison: LP22's stall
// from a single Byzantine leader grows with n, Lumiere's does not.
func TestFigure1Shape(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	lpSmall := Figure1(ProtoLP22, 1, 9, false)
	lpBig := Figure1(ProtoLP22, 5, 9, false)
	lmSmall := Figure1(ProtoLumiere, 1, 9, false)
	lmBig := Figure1(ProtoLumiere, 5, 9, false)
	t.Logf("lp22: %0.2fΓ -> %0.2fΓ; lumiere: %0.2fΓ -> %0.2fΓ",
		lpSmall.StallGammas, lpBig.StallGammas, lmSmall.StallGammas, lmBig.StallGammas)
	if lpBig.StallGammas < lpSmall.StallGammas+1.5 {
		t.Errorf("LP22 stall did not grow with n: %0.2fΓ -> %0.2fΓ", lpSmall.StallGammas, lpBig.StallGammas)
	}
	// Lumiere's stall stays bounded by ~4Γ (the 4-view boundary block)
	// at every size.
	if lmBig.StallGammas > 4.6 {
		t.Errorf("Lumiere stall too large: %0.2fΓ", lmBig.StallGammas)
	}
	if lmBig.StallGammas > lmSmall.StallGammas+1 {
		t.Errorf("Lumiere stall grew with n: %0.2fΓ -> %0.2fΓ", lmSmall.StallGammas, lmBig.StallGammas)
	}
}

// TestDeterminism: identical scenarios yield identical executions.
func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() (int, int64, uint64) {
		res := Run(Scenario{
			Protocol:    ProtoLumiere,
			F:           2,
			Delta:       testDelta,
			Delay:       network.Uniform{Min: time.Millisecond, Max: testDelta},
			Corruptions: adversary.CrashFirst(1),
			Duration:    30 * time.Second,
			Seed:        123,
		})
		return res.DecisionCount(), res.Collector.HonestSends(), res.Events
	}
	d1, m1, e1 := run()
	d2, m2, e2 := run()
	if d1 != d2 || m1 != m2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", d1, m1, e1, d2, m2, e2)
	}
}

// TestViewSynchronizationConditions checks the §2 BVS obligations on a
// post-run snapshot: honest processors' views agree up to the synchrony
// slack, and decisions continue after GST (condition (2)).
func TestViewSynchronizationConditions(t *testing.T) {
	t.Parallel()
	res := Run(Scenario{
		Protocol:        ProtoLumiere,
		F:               2,
		Delta:           testDelta,
		DeltaActual:     testDelta / 10,
		GST:             2 * time.Second,
		PreGSTChaos:     true,
		StartStagger:    time.Second,
		Duration:        90 * time.Second,
		Seed:            5,
		CheckInvariants: true,
	})
	requireNoViolations(t, res)
	if d, ok := res.Collector.FirstDecisionAfter(res.GST); !ok {
		t.Fatal("no decision after GST")
	} else if d.At.Sub(res.GST) > 10*time.Second {
		t.Fatalf("first decision %v after GST", d.At.Sub(res.GST))
	}
	// Final views within one epoch of each other in the steady state.
	var minV, maxV types.View = 1 << 60, -1
	for _, v := range res.FinalViews {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV-minV > 70 {
		t.Fatalf("final views spread too wide: [%v, %v]", minV, maxV)
	}
}

// TestAllProtocolsLiveWithMaxCrashes: every protocol stays live with
// exactly f crashed processors.
func TestAllProtocolsLiveWithMaxCrashes(t *testing.T) {
	t.Parallel()
	for _, p := range AllProtocols {
		res := Run(Scenario{
			Protocol:    p,
			F:           2,
			Delta:       testDelta,
			DeltaActual: testDelta / 10,
			Corruptions: adversary.CrashFirst(2),
			Duration:    60 * time.Second,
			Seed:        3,
		})
		if res.DecisionCount() == 0 {
			t.Errorf("%s: no decisions with f crashes", p)
		}
	}
}

// TestLumiereAdversarialSuccessCriterion: late-proposing Byzantine
// leaders keep the success criterion alive; Lumiere must keep deciding
// (§3.5's Γ-tuning argument).
func TestLumiereAdversarialSuccessCriterion(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	r := AdversarialSuccess(2, 13)
	if r.Decisions < 100 {
		t.Fatalf("too few decisions under adversarial success criterion: %d", r.Decisions)
	}
	if r.MaxGap > 10*time.Second {
		t.Fatalf("stall too long: %v", r.MaxGap)
	}
}

// TestGapShrinkageConverges validates §3.5: from a large initial gap the
// (f+1)st honest gap comes below Γ and stays there.
func TestGapShrinkageConverges(t *testing.T) {
	t.Parallel()
	r := GapShrinkage(2, 17)
	if !r.Converged {
		t.Fatal("hg_{f+1} never came below Γ after GST")
	}
	if r.TimeToBelow > 60*time.Second {
		t.Fatalf("convergence took %v", r.TimeToBelow)
	}
	if r.MaxGapSteady > r.Gamma+testDelta {
		t.Fatalf("steady-state gap %v exceeds Γ+Δ (Γ=%v)", r.MaxGapSteady, r.Gamma)
	}
}

// TestEventualScalingShape: per-decision message ceilings are O(n) for
// Lumiere/Fever but Ω(n²) for LP22 (amortized heavy syncs land in some
// window).
func TestEventualScalingShape(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	lm4 := Eventual(ProtoLumiere, 1, 1, 21)
	lm16 := Eventual(ProtoLumiere, 5, 1, 21)
	lp4 := Eventual(ProtoLP22, 1, 1, 21)
	lp16 := Eventual(ProtoLP22, 5, 1, 21)
	t.Logf("lumiere: %0.0f -> %0.0f; lp22: %0.0f -> %0.0f", lm4.MaxMsgs, lm16.MaxMsgs, lp4.MaxMsgs, lp16.MaxMsgs)
	if lm4.Decisions == 0 || lm16.Decisions == 0 || lp4.Decisions == 0 || lp16.Decisions == 0 {
		t.Fatal("missing decisions")
	}
	// n quadrupled: LP22's worst window (containing a heavy sync)
	// should grow ~16x; Lumiere's ~4x. Compare growth ratios with
	// slack.
	lmGrowth := lm16.MaxMsgs / lm4.MaxMsgs
	lpGrowth := lp16.MaxMsgs / lp4.MaxMsgs
	if lpGrowth < 2*lmGrowth {
		t.Errorf("expected LP22 per-window growth (%.1fx) to far exceed Lumiere's (%.1fx)", lpGrowth, lmGrowth)
	}
}
