package harness

import (
	"testing"
	"time"

	"lumiere/internal/network"
	"lumiere/internal/trace"
	"lumiere/internal/types"
)

// This file validates the paper's proof structure (§5) on observed
// executions: each test extracts the quantities a lemma talks about from
// the event trace of a run and checks the lemma's conclusion.

// tracedRun executes a Lumiere scenario with tracing and invariants on.
func tracedRun(t *testing.T, s Scenario) *Result {
	t.Helper()
	s.Protocol = ProtoLumiere
	s.TraceLimit = 2_000_000
	s.CheckInvariants = true
	res := Run(s)
	requireNoViolations(t, res)
	return res
}

// epochEntries returns, per epoch-first-view, the sorted entry times of
// honest processors.
func epochEntries(res *Result) map[types.View][]types.Time {
	out := make(map[types.View][]types.Time)
	for _, e := range res.Tracer.Filter(types.NoNode, trace.EnterEpoch) {
		out[e.View] = append(out[e.View], e.At)
	}
	return out
}

// TestLemma54EpochEntryRequiresPredecessor: if an honest processor enters
// epoch e, at least f+1 honest processors previously entered epoch e−1.
func TestLemma54EpochEntryRequiresPredecessor(t *testing.T) {
	t.Parallel()
	res := tracedRun(t, Scenario{
		F:            2,
		Delta:        testDelta,
		Delay:        network.Uniform{Min: time.Millisecond, Max: testDelta},
		GST:          time.Second,
		PreGSTChaos:  true,
		StartStagger: 500 * time.Millisecond,
		Duration:     120 * time.Second,
		Seed:         31,
	})
	entries := epochEntries(res)
	epochLen := types.View(10 * res.Cfg.N)
	for v, times := range entries {
		if v == 0 {
			continue
		}
		prev := entries[v-epochLen]
		first := times[0]
		for _, tm := range times {
			if tm < first {
				first = tm
			}
		}
		before := 0
		for _, tm := range prev {
			if tm <= first {
				before++
			}
		}
		if before < res.Cfg.F+1 {
			t.Fatalf("epoch view %v entered with only %d predecessors in epoch %v (Lemma 5.4)", v, before, v-epochLen)
		}
	}
	if len(entries) < 2 {
		t.Fatalf("run traversed too few epochs: %d", len(entries))
	}
}

// TestLemma55EpochSpreadBounded: if an honest processor is in epoch e at
// t ≥ GST, all honest processors are in epochs ≥ e−1 by t+Δ — measured as
// the entry-time spread per epoch being ≤ one epoch behind within Δ.
func TestLemma55EpochSpreadBounded(t *testing.T) {
	t.Parallel()
	res := tracedRun(t, Scenario{
		F:        2,
		Delta:    testDelta,
		Delay:    network.Uniform{Min: time.Millisecond, Max: testDelta},
		Duration: 120 * time.Second,
		Seed:     32,
	})
	entries := epochEntries(res)
	epochLen := types.View(10 * res.Cfg.N)
	honest := res.Cfg.N // no corruptions in this run
	for v, times := range entries {
		next := entries[v+epochLen]
		if len(next) == 0 {
			continue // last epoch of the run
		}
		// Everyone must have entered epoch E(v) by Δ after the first
		// entry into epoch E(v)+1 (a fortiori of Lemma 5.5).
		firstNext := next[0]
		for _, tm := range next {
			if tm < firstNext {
				firstNext = tm
			}
		}
		count := 0
		for _, tm := range times {
			if tm <= firstNext.Add(res.Cfg.Delta) {
				count++
			}
		}
		if count < honest {
			t.Fatalf("only %d/%d honest in epoch %v within Δ of epoch %v starting (Lemma 5.5)",
				count, honest, v, v+epochLen)
		}
	}
}

// TestLemma58TimelyViewsProduceQCsFast: in the steady state (timely
// starts), every honest-leader view's QC is produced within Γ/2 of the
// first honest processor entering the view.
func TestLemma58TimelyViewsProduceQCsFast(t *testing.T) {
	t.Parallel()
	res := tracedRun(t, Scenario{
		F:           2,
		Delta:       testDelta,
		DeltaActual: testDelta / 2, // δ = Δ/2: slow but within bound
		Duration:    60 * time.Second,
		Seed:        33,
	})
	firstEnter := make(map[types.View]types.Time)
	for _, e := range res.Tracer.Filter(types.NoNode, trace.EnterView) {
		if cur, ok := firstEnter[e.View]; !ok || e.At < cur {
			firstEnter[e.View] = e.At
		}
	}
	warm := types.Time(0).Add(10 * time.Second)
	checked := 0
	for _, e := range res.Tracer.Filter(types.NoNode, trace.QCProduced) {
		if e.At < warm {
			continue
		}
		enter, ok := firstEnter[e.View]
		if !ok {
			continue
		}
		if d := e.At.Sub(enter); d > res.Gamma/2 {
			t.Fatalf("QC for %v took %v > Γ/2 = %v after first entry (Lemma 5.8)", e.View, d, res.Gamma/2)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("too few QCs checked: %d", checked)
	}
}

// TestBVSCondition1ViewMonotonicity: per-processor view entries are
// strictly increasing (§2's condition (1)).
func TestBVSCondition1ViewMonotonicity(t *testing.T) {
	t.Parallel()
	res := tracedRun(t, Scenario{
		F:            2,
		Delta:        testDelta,
		Delay:        network.Uniform{Min: time.Millisecond, Max: testDelta},
		GST:          time.Second,
		PreGSTChaos:  true,
		StartStagger: time.Second,
		Duration:     60 * time.Second,
		Seed:         34,
	})
	last := make(map[types.NodeID]types.View)
	for _, e := range res.Tracer.Filter(types.NoNode, trace.EnterView) {
		if prev, ok := last[e.Node]; ok && e.View <= prev {
			t.Fatalf("%v entered %v after %v (condition (1))", e.Node, e.View, prev)
		}
		last[e.Node] = e.View
	}
}

// TestLemma59PrimaryBumpImpliesSmallGap: whenever the most advanced
// honest clock moved by a bump, hg_{f+1} ≤ Γ right after (statement (1)
// of Lemma 5.9) — observed via gap samples never exceeding Γ in runs
// without epoch-boundary desynchronization.
func TestLemma59PrimaryBumpImpliesSmallGap(t *testing.T) {
	t.Parallel()
	res := tracedRun(t, Scenario{
		F:          2,
		Delta:      testDelta,
		Delay:      network.Uniform{Min: time.Millisecond, Max: testDelta / 2},
		Duration:   90 * time.Second,
		Seed:       35,
		SampleGaps: true,
	})
	for _, s := range res.Gaps.Samples() {
		if g := res.Gaps.GapF1(s); g > res.Gamma {
			t.Fatalf("hg_{f+1} = %v > Γ = %v at %v (Lemma 5.9)", g, res.Gamma, s.At)
		}
	}
}

// TestLemma515TimelyEpochsNeedNoEpochViewMessages: once epochs start
// timely (steady state), no honest processor sends epoch-view messages
// and every honest-leader view produces a QC.
func TestLemma515TimelyEpochsNeedNoEpochViewMessages(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	res := tracedRun(t, Scenario{
		F:           2,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Duration:    240 * time.Second,
		Seed:        36,
	})
	warm := types.Time(0).Add(30 * time.Second)
	if heavy := res.Collector.HeavySyncViews(warm); len(heavy) != 0 {
		t.Fatalf("heavy syncs in steady state: %v (Lemma 5.15(2))", heavy)
	}
	// Every view in the steady state produces a QC (all leaders are
	// honest here): decision views are contiguous.
	decs := res.Collector.Decisions()
	var prev types.View = -1
	gaps := 0
	for _, d := range decs {
		if d.At < warm {
			continue
		}
		if prev >= 0 && d.View != prev+1 {
			gaps++
		}
		prev = d.View
	}
	if gaps > 0 {
		t.Fatalf("%d skipped views in fault-free steady state (Lemma 5.15(1))", gaps)
	}
}
