package harness

import (
	"strings"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/crypto"
	"lumiere/internal/types"
)

// TestAttackTableDeterminism renders the full attack table (every
// protocol × every strategy) at two worker counts: the outputs must be
// byte-identical — strategy state is per-execution and every cell's
// seed derives from (seed, index) alone.
func TestAttackTableDeterminism(t *testing.T) {
	t.Parallel()
	serial := AttackTableOpts(1, 42, SweepOptions{Workers: 1}).Render()
	pooled := AttackTableOpts(1, 42, SweepOptions{Workers: 5}).Render()
	if serial != pooled {
		t.Fatalf("attack table differs across worker counts:\n%s\n--- vs ---\n%s", serial, pooled)
	}
	if !strings.Contains(serial, string(ProtoLumiere)) || !strings.Contains(serial, adversary.AttackSaturate) {
		t.Fatalf("table missing expected rows/columns:\n%s", serial)
	}
}

// TestAttackSweepAllDecided checks that every attacked cell stays live:
// all four strategies are model-legal (≤ f corrupted processors, the §2
// delivery clamp respected), so every protocol must still synchronize
// after GST. Words must be accounted in every cell.
func TestAttackSweepAllDecided(t *testing.T) {
	t.Parallel()
	rep := AttackSweep(1, 7, SweepOptions{})
	if want := len(AllProtocols) * len(AttackSpecs()); len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	if !rep.AllDecided() {
		for _, c := range rep.Cells {
			if !c.Decided {
				t.Errorf("%s under %s stalled after GST", c.Protocol, c.Attack)
			}
		}
	}
	for _, c := range rep.Cells {
		if c.TotalWords <= 0 || (c.Decided && c.WindowWords <= 0) {
			t.Errorf("%s under %s: words not accounted (%d total, %d window)",
				c.Protocol, c.Attack, c.TotalWords, c.WindowWords)
		}
	}
}

// TestComplexitySaturateQuadraticBound is the regression gate on the
// saturation attack: protocol-legal spam may drive honest work up, but
// the per-view honest word cost must stay within a constant multiple of
// n² for every protocol — the O(n²) ceiling the paper's protocols all
// guarantee per view change. Measured values sit below 2.3·n²; the gate
// is 4·n².
func TestComplexitySaturateQuadraticBound(t *testing.T) {
	t.Parallel()
	fs := []int{1, 2}
	if testing.Short() {
		fs = []int{1}
	}
	for _, f := range fs {
		for _, p := range AllProtocols {
			s := attackScenario(p, f, adversary.AttackSpec{Name: adversary.AttackSaturate}, 42)
			res := Run(s)
			var maxV types.View
			for i, v := range res.FinalViews {
				if res.Cfg.N-i <= f {
					continue // the strategic tail is Byzantine
				}
				if v != types.NoView && v > maxV {
					maxV = v
				}
			}
			if maxV <= 0 {
				t.Fatalf("%s f=%d: no honest view progress under saturation", p, f)
			}
			perView := float64(res.Collector.WordsTotal()) / float64(maxV+1)
			bound := 4 * float64(res.Cfg.N*res.Cfg.N)
			if perView > bound {
				t.Errorf("%s f=%d: %.1f words per view under saturation, above the %.0f = 4n² gate",
					p, f, perView, bound)
			}
		}
	}
}

// TestEventualWordsLinearInFaults pins the headline word-complexity
// shape on the eventual-scaling scenario family: normalized per n,
// Lumiere's max words per decision window stays ~flat as n grows
// (eventual communication linear in n, driven by actual faults), while
// LP22's and NK20's grow with n (their Θ(n²) synchronizations never
// retire). At fixed n, Lumiere's word count grows with the number of
// actual crash faults f_a. Seeded runs are deterministic, so the
// asserted margins are exact for this seed.
func TestEventualWordsLinearInFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("long steady-state sweeps")
	}
	t.Parallel()
	perN := func(p Protocol, f, fa int) float64 {
		r := measureEventual(Run(eventualScenario(p, f, fa, DeriveSeed(42, f))))
		if r.Decisions == 0 {
			t.Fatalf("%s f=%d fa=%d stalled", p, f, fa)
		}
		return r.MaxWords / float64(r.N)
	}
	// n-scaling at f_a = 1: words/n ratio between n=16 and n=4.
	lum := perN(ProtoLumiere, 5, 1) / perN(ProtoLumiere, 1, 1)
	lp := perN(ProtoLP22, 5, 1) / perN(ProtoLP22, 1, 1)
	nk := perN(ProtoNK20, 5, 1) / perN(ProtoNK20, 1, 1)
	if lum > 2.0 {
		t.Errorf("lumiere words/n grew %.2fx from n=4 to n=16, want ~flat (≤ 2.0)", lum)
	}
	if lp < 2.5 || nk < 2.5 {
		t.Errorf("lp22/nk20 words/n grew only %.2fx/%.2fx, want ≥ 2.5 (quadratic words)", lp, nk)
	}
	// f_a-scaling at n=10: more actual faults, more Lumiere words.
	w0 := measureEventual(Run(eventualScenario(ProtoLumiere, 3, 0, 42))).MaxWords
	w2 := measureEventual(Run(eventualScenario(ProtoLumiere, 3, 2, 42))).MaxWords
	if w2 <= w0 {
		t.Errorf("lumiere max words did not grow with actual faults: fa=0 %.0f, fa=2 %.0f", w0, w2)
	}
}

// TestStrategicNodeSelection checks the harness glue: strategy nodes
// are the highest free IDs, the input slice is never mutated, and
// corrupting more than f processors is rejected.
func TestStrategicNodeSelection(t *testing.T) {
	t.Parallel()
	cfg := types.NewConfig(2, 100*time.Millisecond) // n=7, f=2
	base := make([]adversary.Corruption, 0, 4)
	base = append(base, adversary.Corruption{Node: 6, Behavior: adversary.BehaviorCrash})
	out := withStrategicNodes(base, cfg, 1)
	if len(out) != 2 {
		t.Fatalf("corruptions = %d, want crash + strategic", len(out))
	}
	if out[1].Node != 5 || out[1].Behavior != adversary.BehaviorStrategic {
		t.Fatalf("strategic corruption = %+v, want node 5 (highest free)", out[1])
	}
	if &base[0] == &out[0] && cap(base) >= 2 {
		t.Fatal("withStrategicNodes shares the caller's backing array")
	}
	got := strategicNodes(out)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("strategicNodes = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("corrupting f+1 processors must panic")
		}
	}()
	withStrategicNodes(base, cfg, 2) // crash + 2 strategic > f = 2
}

// TestSyncSpamLegality checks the spam builder per protocol: the
// message kind matches what the protocol's handlers consume, the view
// is one the handlers accept (epoch boundary / initial view / future
// view), and the signature verifies against the suite.
func TestSyncSpamLegality(t *testing.T) {
	t.Parallel()
	cfg := types.NewConfig(1, 100*time.Millisecond)
	suite := crypto.NewSimSuite(cfg.N, 1)
	for _, tc := range []struct {
		p        Protocol
		frontier types.View
		wantKind string
	}{
		{ProtoLumiere, 7, "EPOCHVIEW"},
		{ProtoBasic, 7, "EPOCHVIEW"},
		{ProtoLP22, 7, "EPOCHVIEW"},
		{ProtoRareSync, 7, "EPOCHVIEW"},
		{ProtoFever, 7, "VIEW"},
		{ProtoCogsworth, 7, "WISH"},
		{ProtoNK20, 7, "TIMEOUT"},
	} {
		build := syncSpamBuilder(Scenario{Protocol: tc.p}, cfg, suite)
		m := build(0, tc.frontier)
		if m == nil {
			t.Fatalf("%s: no spam message", tc.p)
		}
		if got := m.Kind().String(); got != tc.wantKind {
			t.Errorf("%s: spam kind %s, want %s", tc.p, got, tc.wantKind)
		}
		if m.View() < tc.frontier {
			t.Errorf("%s: spam view %v below the frontier %v", tc.p, m.View(), tc.frontier)
		}
		switch tc.p {
		case ProtoLumiere, ProtoBasic, ProtoLP22, ProtoRareSync:
			el := accountingEpochLen(Scenario{Protocol: tc.p}, cfg)
			if m.View()%el != 0 {
				t.Errorf("%s: spam view %v is not an epoch boundary (len %d)", tc.p, m.View(), el)
			}
		case ProtoFever:
			if !m.View().Initial() {
				t.Errorf("%s: spam view %v is not initial", tc.p, m.View())
			}
		}
	}
}
