package harness

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/hotstuff"
	"lumiere/internal/network"
	"lumiere/internal/statemachine"
	"lumiere/internal/workload"
)

// requireConsistentCommits asserts that every pair of honest replicas'
// committed block sequences are prefix-consistent (SMR safety).
func requireConsistentCommits(t *testing.T, res *Result) int {
	t.Helper()
	var logs [][]hotstuff.Hash
	for _, e := range res.Engines {
		hs, ok := e.(*hotstuff.Core)
		if !ok || hs == nil {
			continue
		}
		logs = append(logs, hs.CommittedHashes())
	}
	if len(logs) == 0 {
		t.Fatal("no hotstuff engines")
	}
	minLen := len(logs[0])
	for _, l := range logs {
		if len(l) < minLen {
			minLen = len(l)
		}
	}
	for i := 1; i < len(logs); i++ {
		for j := 0; j < minLen; j++ {
			if logs[i][j] != logs[0][j] {
				t.Fatalf("commit logs diverge at index %d between replicas 0 and %d", j, i)
			}
		}
	}
	return minLen
}

// TestSMRCommitsUnderLumiere: end-to-end chained HotStuff driven by
// Lumiere commits a workload consistently.
func TestSMRCommitsUnderLumiere(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	res := Run(Scenario{
		Protocol:     ProtoLumiere,
		F:            2,
		Delta:        testDelta,
		DeltaActual:  testDelta / 10,
		Duration:     60 * time.Second,
		Seed:         2,
		SMR:          true,
		WorkloadRate: 200,
	})
	committed := requireConsistentCommits(t, res)
	if committed < 100 {
		t.Fatalf("committed only %d blocks", committed)
	}
	// All replicas converge on the same state.
	var want string
	for i, sm := range res.SMs {
		if sm == nil {
			continue
		}
		got := sm.(*statemachine.KV).Summary()
		if want == "" {
			want = got
		}
		// States may differ by in-flight commits; compare only when
		// commit counts match.
		hs := res.Engines[i].(*hotstuff.Core)
		if hs.CommittedCount() == committed && got != want && want != "" {
			// Recompute want from a replica with the same count.
			continue
		}
	}
	if res.Injected == 0 {
		t.Fatal("no workload injected")
	}
}

// TestSMRBankConservationUnderFaults: the bank's total balance is
// conserved on every replica, under crashes and random delays, for every
// pacemaker.
func TestSMRBankConservationUnderFaults(t *testing.T) {
	t.Parallel()
	const accounts = 8
	const seedMoney = 1000
	for _, p := range []Protocol{ProtoLumiere, ProtoFever, ProtoLP22} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res := Run(Scenario{
				Protocol:        p,
				F:               2,
				Delta:           testDelta,
				Delay:           network.Uniform{Min: time.Millisecond, Max: testDelta / 2},
				Corruptions:     adversary.CrashFirst(2),
				Duration:        90 * time.Second,
				Seed:            5,
				SMR:             true,
				NewStateMachine: func() statemachine.StateMachine { return statemachine.NewBank() },
				WorkloadRate:    100,
				WorkloadCommand: func(i int) []byte {
					if i < accounts {
						return []byte(fmt.Sprintf("OPEN acct%d %d", i, seedMoney))
					}
					from := i % accounts
					to := (i + 3) % accounts
					return []byte(fmt.Sprintf("XFER acct%d acct%d %d", from, to, 1+i%7))
				},
			})
			committed := requireConsistentCommits(t, res)
			if committed < 50 {
				t.Fatalf("committed only %d blocks", committed)
			}
			for i, sm := range res.SMs {
				if sm == nil {
					continue
				}
				bank := sm.(*statemachine.Bank)
				total := bank.TotalBalance()
				// Each applied OPEN adds seedMoney; XFERs conserve.
				// Total must be a multiple of seedMoney, at most
				// accounts·seedMoney.
				if total%seedMoney != 0 || total > accounts*seedMoney {
					t.Fatalf("replica %d: money not conserved: total=%d", i, total)
				}
			}
		})
	}
}

// TestSMRThroughputResponsive: with a fast network, committed blocks per
// second track network speed (responsiveness carries through the stack).
func TestSMRThroughputResponsive(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	res := Run(Scenario{
		Protocol:     ProtoLumiere,
		F:            1,
		Delta:        testDelta,
		DeltaActual:  time.Millisecond,
		Duration:     30 * time.Second,
		Seed:         3,
		SMR:          true,
		WorkloadRate: 500,
	})
	committed := requireConsistentCommits(t, res)
	// A view pair completes in ~3δ = 3ms; 30s should yield thousands
	// of committed blocks.
	if committed < 2000 {
		t.Fatalf("committed %d blocks in 30s at δ=1ms", committed)
	}
	// Commands actually execute.
	applied := false
	for _, sm := range res.SMs {
		if sm != nil && sm.(*statemachine.KV).Len() > 0 {
			applied = true
		}
	}
	if !applied {
		t.Fatal("no commands applied")
	}
}

// TestSMRChurnCatchUp: a replica that crashes and recovers (twice) under
// an active workload loses every message sent during its down windows —
// the simulated network does not replay. Convergence therefore depends
// on the BlockFetch/BlockResp catch-up path: the revived replica must
// re-fetch the certified blocks it missed, execute them in order, and
// end with the same state as replicas that never went down.
func TestSMRChurnCatchUp(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	const churned = 1
	res := Run(Scenario{
		Protocol:    ProtoLumiere,
		F:           1,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Duration:    40 * time.Second,
		Seed:        7,
		SMR:         true,
		Corruptions: []adversary.Corruption{adversary.Churn(churned,
			adversary.Downtime{From: 5 * time.Second, To: 8 * time.Second},
			adversary.Downtime{From: 15 * time.Second, To: 18 * time.Second},
		)},
		Workload: &workload.Config{Clients: 10_000, Rate: 200, PayloadPad: 32},
	})
	committed := requireConsistentCommits(t, res)
	if committed < 100 {
		t.Fatalf("committed only %d blocks", committed)
	}
	maxCount := 0
	for _, e := range res.Engines {
		if hs, ok := e.(*hotstuff.Core); ok && hs.CommittedCount() > maxCount {
			maxCount = hs.CommittedCount()
		}
	}
	// Without catch-up the churned replica stalls at its first crash
	// point (~5s of ~40s of commits); with it, the commit frontier lags
	// the leaders by at most a few in-flight blocks.
	churnedCount := res.Engines[churned].(*hotstuff.Core).CommittedCount()
	if churnedCount < maxCount-10 {
		t.Fatalf("churned replica committed %d of %d blocks: catch-up failed", churnedCount, maxCount)
	}
	// Replicas with equal commit counts must agree on state exactly —
	// including the churned one.
	summaries := map[int]string{}
	for i, sm := range res.SMs {
		if sm == nil {
			continue
		}
		n := res.Engines[i].(*hotstuff.Core).CommittedCount()
		got := sm.(*statemachine.KV).Summary()
		if prev, ok := summaries[n]; ok && prev != got {
			t.Fatalf("replicas with %d commits disagree on state (replica %d)", n, i)
		}
		summaries[n] = got
	}
	if _, ok := summaries[churnedCount]; !ok {
		t.Fatal("churned replica state not captured")
	}
}
