package harness

import (
	"fmt"
	"time"
)

// This file implements the chaos conformance sweep: the scenario-
// diversity counterpart of the generated conformance suite (gen.go).
// Where the plain suite draws mostly-delay adversaries, the chaos sweep
// guarantees every cell carries link conditions — partitions, loss,
// duplication, reorder jitter, crash-recovery churn, omission budgets —
// and checks every protocol against the same §2 obligations on them.

// ChaosCell is one checked cell of a chaos conformance sweep.
type ChaosCell struct {
	// Name identifies the cell ("chaos-07-fever").
	Name string
	// Protocol is the protocol the cell ran.
	Protocol Protocol
	// Seed is the cell's generator seed.
	Seed int64
	// Decided reports whether an honest-leader decision landed after
	// GST; SyncLatency is its distance from GST.
	Decided     bool
	SyncLatency time.Duration
	// Decisions counts honest-leader decisions over the whole run.
	Decisions int
	// Omitted is the number of true post-GST omissions granted against
	// the cell's omission budget.
	Omitted int64
	// Problems holds the cell's conformance violations (empty = pass).
	Problems []string
}

// ChaosReport aggregates a chaos conformance sweep.
type ChaosReport struct {
	// Cells holds one entry per scenario, in matrix order.
	Cells []ChaosCell
	// Workers is the worker-pool size the sweep used.
	Workers int
	// Problems is the total conformance violation count across cells.
	Problems int
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
}

// Conformant reports whether every cell passed.
func (r *ChaosReport) Conformant() bool { return r.Problems == 0 }

// Table renders the report as one row per cell. The rendering is a
// pure function of the simulated executions, so it is byte-identical
// at every worker count.
func (r *ChaosReport) Table() *Table {
	t := &Table{Title: fmt.Sprintf("Chaos conformance sweep: %d generated scenarios", len(r.Cells))}
	t.Header = []string{"scenario", "protocol", "sync-latency", "decisions", "omitted", "problems"}
	for i := range r.Cells {
		c := &r.Cells[i]
		lat := "stalled"
		if c.Decided {
			lat = c.SyncLatency.Round(time.Millisecond).String()
		}
		t.AddRow(c.Name, string(c.Protocol), lat,
			fmt.Sprintf("%d", c.Decisions), fmt.Sprintf("%d", c.Omitted),
			fmt.Sprintf("%d", len(c.Problems)))
	}
	return t
}

// ChaosSweep generates count chaos scenarios (GenChaosScenario, seeds
// derived from baseSeed), cycles them across every protocol in
// AllProtocols, runs them on the sweep engine with invariant checking
// on, and conformance-checks every cell. Cell contents depend only on
// (count, baseSeed), never on the worker count.
func ChaosSweep(count int, baseSeed int64, opts SweepOptions) *ChaosReport {
	scenarios := make([]Scenario, count)
	for i := range scenarios {
		s := GenChaosScenario(DeriveSeed(baseSeed, i))
		s.Protocol = AllProtocols[i%len(AllProtocols)]
		s.Name = fmt.Sprintf("chaos-%02d-%s", i, s.Protocol)
		scenarios[i] = s
	}
	opts.KeepSeeds = true
	sr := Sweep(scenarios, opts)

	rep := &ChaosReport{Workers: sr.Workers, Elapsed: sr.Elapsed}
	for i := range sr.Cells {
		cell := &sr.Cells[i]
		res := cell.Result
		cc := ChaosCell{
			Name:      cell.Scenario.Name,
			Protocol:  cell.Scenario.Protocol,
			Seed:      cell.Scenario.Seed,
			Decisions: res.DecisionCount(),
			Omitted:   res.Omitted,
			Problems:  ConformanceReport(res),
		}
		if d, ok := res.Collector.FirstDecisionAfter(res.GST); ok {
			cc.Decided = true
			cc.SyncLatency = d.At.Sub(res.GST)
		}
		rep.Problems += len(cc.Problems)
		rep.Cells = append(rep.Cells, cc)
	}
	return rep
}
