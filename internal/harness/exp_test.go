package harness

import (
	"testing"
)

func TestExperimentQuick(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	for _, p := range AllProtocols {
		r := WorstCase(p, 3, 42)
		t.Logf("%-14s worst f=3: msgs=%-6d lat=%-8v strat=%s", p, r.Msgs, r.Latency, r.Strategy)
	}
}
