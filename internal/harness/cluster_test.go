package harness

import (
	"testing"
	"time"

	"lumiere/internal/network"
)

// TestClusterExperimentSmoke boots a small loopback cluster over real
// sockets and checks the wall-clock measurement plumbing end to end:
// decisions land, words are counted, and per-node stats come back.
func TestClusterExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	res, err := RunCluster(ClusterExperiment{F: 1, Seed: 7, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4 || res.F != 1 {
		t.Fatalf("cluster shape n=%d f=%d, want 4/1", res.N, res.F)
	}
	if !res.Decided || res.Decisions == 0 {
		t.Fatal("no decisions on a healthy loopback cluster")
	}
	if res.SyncLatency <= 0 || res.SyncLatency > res.Elapsed {
		t.Fatalf("implausible sync latency %v (elapsed %v)", res.SyncLatency, res.Elapsed)
	}
	if res.Words <= 0 || res.Sends <= 0 || res.WordsPerDecision <= 0 {
		t.Fatalf("words accounting missing: words=%d sends=%d w/dec=%v",
			res.Words, res.Sends, res.WordsPerDecision)
	}
	if len(res.Stats) != res.N || len(res.Collectors) != res.N {
		t.Fatalf("per-node snapshots: stats=%d collectors=%d, want %d",
			len(res.Stats), len(res.Collectors), res.N)
	}
}

// TestClusterExperimentSMR runs the SMR workload on the loopback
// cluster and checks commands commit.
func TestClusterExperimentSMR(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	res, err := RunCluster(ClusterExperiment{
		F: 1, Seed: 11, SMR: true, Rate: 50, Duration: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("workload injected no commands")
	}
	if res.Committed == 0 {
		t.Fatal("no node committed any block")
	}
}

// TestClusterChaosLoss runs the loopback cluster under pre-GST loss and
// checks the cluster still decides after GST — the socket-level clamp
// releasing "lost" messages at GST+Δ.
func TestClusterChaosLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	res, err := RunCluster(ClusterExperiment{
		F: 1, Seed: 13, Duration: 3 * time.Second,
		Loss: 0.3, LossUntil: 800 * time.Millisecond, GST: 800 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decided {
		t.Fatal("cluster failed to decide after GST despite the clamp")
	}
	if res.SyncLatency <= 0 {
		t.Fatalf("sync latency %v, want > 0", res.SyncLatency)
	}
}

// TestClusterExperimentValidation checks the omission-budget guard:
// MaxSenders beyond F violates the §2 model and must be rejected.
func TestClusterExperimentValidation(t *testing.T) {
	_, err := RunCluster(ClusterExperiment{
		F: 1, Duration: time.Second,
		OmissionBudget: network.OmissionBudget{MaxMessages: 10, MaxSenders: 2},
	})
	if err == nil {
		t.Fatal("RunCluster accepted an omission budget with MaxSenders > f")
	}
}
