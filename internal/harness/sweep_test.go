package harness

import (
	"fmt"
	"testing"
	"time"
)

// sweepTestMatrix is a small protocol × f matrix of fast scenarios.
func sweepTestMatrix() []Scenario {
	var out []Scenario
	for _, p := range []Protocol{ProtoLumiere, ProtoLP22, ProtoFever} {
		for _, f := range []int{1, 2} {
			out = append(out, Scenario{
				Name:     string(p),
				Protocol: p,
				F:        f,
				Delta:    testDelta,
				Duration: 10 * time.Second,
			})
		}
	}
	return out
}

// sweepFingerprint reduces a sweep to a comparable string.
func sweepFingerprint(t *testing.T, sr *SweepResult) string {
	t.Helper()
	tb := &Table{Title: "sweep", Header: []string{"cell", "seed", "decisions", "msgs", "events"}}
	for _, c := range sr.Cells {
		tb.AddRow(c.Scenario.Name,
			fmt.Sprintf("%d", c.Scenario.Seed),
			fmt.Sprintf("%d", c.Result.DecisionCount()),
			fmt.Sprintf("%d", c.Result.Collector.HonestSends()),
			fmt.Sprintf("%d", c.Result.Events))
	}
	return tb.Render()
}

// TestSweepDeterministicAcrossWorkerCounts: the same matrix and base seed
// produce byte-identical results at every worker count.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	matrix := sweepTestMatrix()
	var want string
	for _, workers := range []int{1, 2, 4, 16} {
		sr := Sweep(matrix, SweepOptions{Workers: workers, BaseSeed: 42})
		got := sweepFingerprint(t, sr)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged:\n%s\nvs workers=1:\n%s", workers, got, want)
		}
	}
}

// TestSweepTableOutputDeterministic: the rendered Table 1 and scaling
// tables are byte-identical at 1 worker and N workers (the acceptance
// bar for the sweep engine).
func TestSweepTableOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sweep in -short mode")
	}
	t.Parallel()
	fs := []int{1}
	fas := []int{0, 1}
	render := func(workers int) string {
		opts := SweepOptions{Workers: workers}
		c1, l1 := Table1EventualOpts(1, fas, 7, opts)
		sc := EventualScalingDataOpts(fs, 1, 7, opts)
		return c1.Render() + l1.Render() + EventualScalingTable(sc, fs, 1).Render()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("table output differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSweepOrderingAndTiming: cells come back in matrix order with their
// scenarios' derived seeds filled in and per-cell timings recorded.
func TestSweepOrderingAndTiming(t *testing.T) {
	t.Parallel()
	matrix := sweepTestMatrix()
	sr := Sweep(matrix, SweepOptions{Workers: 3, BaseSeed: 11})
	if len(sr.Cells) != len(matrix) {
		t.Fatalf("got %d cells for %d scenarios", len(sr.Cells), len(matrix))
	}
	if sr.Workers != 3 {
		t.Fatalf("workers = %d", sr.Workers)
	}
	for i, c := range sr.Cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		if want := DeriveSeed(11, i); c.Scenario.Seed != want {
			t.Fatalf("cell %d seed = %d, want %d", i, c.Scenario.Seed, want)
		}
		if c.Result == nil || c.Result.DecisionCount() == 0 {
			t.Fatalf("cell %d produced no decisions", i)
		}
		if c.Elapsed <= 0 {
			t.Fatalf("cell %d has no timing", i)
		}
	}
	if sr.Elapsed <= 0 {
		t.Fatal("sweep has no total timing")
	}
}

// TestSweepKeepSeeds: KeepSeeds preserves the scenarios' own seeds.
func TestSweepKeepSeeds(t *testing.T) {
	t.Parallel()
	matrix := sweepTestMatrix()
	for i := range matrix {
		matrix[i].Seed = int64(1000 + i)
	}
	sr := Sweep(matrix, SweepOptions{Workers: 2, BaseSeed: 5, KeepSeeds: true})
	for i, c := range sr.Cells {
		if c.Scenario.Seed != int64(1000+i) {
			t.Fatalf("cell %d seed = %d, want %d", i, c.Scenario.Seed, 1000+i)
		}
	}
}

// TestSweepProgress: the progress callback fires exactly once per cell
// with a monotonically increasing done count.
func TestSweepProgress(t *testing.T) {
	t.Parallel()
	matrix := sweepTestMatrix()
	seen := make(map[int]bool)
	last := 0
	Sweep(matrix, SweepOptions{Workers: 4, Progress: func(done, total int, cell *SweepCell) {
		if total != len(matrix) {
			t.Errorf("total = %d", total)
		}
		if done != last+1 {
			t.Errorf("done jumped %d -> %d", last, done)
		}
		last = done
		if seen[cell.Index] {
			t.Errorf("cell %d reported twice", cell.Index)
		}
		seen[cell.Index] = true
	}})
	if len(seen) != len(matrix) {
		t.Fatalf("progress fired for %d of %d cells", len(seen), len(matrix))
	}
}

// TestDeriveSeedStable pins the derivation so sweeps stay reproducible
// across releases (changing DeriveSeed silently rerolls every recorded
// experiment).
func TestDeriveSeedStable(t *testing.T) {
	t.Parallel()
	if a, b := DeriveSeed(42, 0), DeriveSeed(42, 0); a != b {
		t.Fatalf("unstable: %d vs %d", a, b)
	}
	if DeriveSeed(42, 0) == DeriveSeed(42, 1) {
		t.Fatal("adjacent indices collide")
	}
	if DeriveSeed(42, 0) == DeriveSeed(43, 0) {
		t.Fatal("adjacent bases collide")
	}
	// Distinctness over a window large enough for any realistic matrix.
	seen := make(map[int64]bool)
	for i := 0; i < 4096; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("collision at index %d", i)
		}
		seen[s] = true
	}
}
