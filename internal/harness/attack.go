package harness

import (
	"fmt"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/baseline/lp22"
	"lumiere/internal/baseline/raresync"
	"lumiere/internal/core"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/types"
)

// This file implements the adaptive-attack arm of the harness: the glue
// between Scenario.Attack and the adversary.Strategy subsystem (node
// selection, protocol-legal spam construction, epoch accounting), and
// the AttackTable experiment — every protocol run under every attack
// strategy, reporting post-GST view-synchronization latency and honest
// communication in words. See DESIGN.md §1c for the attack model and
// EXPERIMENTS.md ("Attack corpus") for the reference table.

// withStrategicNodes returns corr extended with BehaviorStrategic
// corruptions for the k highest-numbered processors not already
// corrupted (k = 0 means f). The result is a fresh slice — scenarios
// are shared across sweep workers, so the caller's backing array is
// never mutated. Strategic processors count against f: the combined
// corruption set must not exceed it.
func withStrategicNodes(corr []adversary.Corruption, cfg types.Config, k int) []adversary.Corruption {
	if k <= 0 {
		k = cfg.F
	}
	taken := make(map[types.NodeID]bool, len(corr))
	for _, c := range corr {
		if c.Behavior != adversary.BehaviorHonest {
			taken[c.Node] = true
		}
	}
	out := make([]adversary.Corruption, len(corr), len(corr)+k)
	copy(out, corr)
	added := 0
	for id := cfg.N - 1; id >= 0 && added < k; id-- {
		n := types.NodeID(id)
		if taken[n] {
			continue
		}
		out = append(out, adversary.Corruption{Node: n, Behavior: adversary.BehaviorStrategic})
		added++
	}
	if corrupted := len(taken) + added; corrupted > cfg.F {
		panic(fmt.Sprintf("harness: attack corrupts %d processors, model allows f=%d", corrupted, cfg.F))
	}
	return out
}

// strategicNodes returns the processors under strategy control.
func strategicNodes(corr []adversary.Corruption) []types.NodeID {
	var out []types.NodeID
	for _, c := range corr {
		if c.Behavior == adversary.BehaviorStrategic {
			out = append(out, c.Node)
		}
	}
	return out
}

// accountingEpochLen returns the views-per-epoch grouping used for the
// Collector's per-epoch word series: the protocol's own epoch length
// where it has one, f+1 (the classic epoch) as the nominal grouping for
// the epoch-less protocols.
func accountingEpochLen(s Scenario, cfg types.Config) types.View {
	switch s.Protocol {
	case ProtoLumiere:
		return core.Config{Base: cfg, Variant: core.VariantFull, BlocksPerEpoch: s.CoreBlocksPerEpoch}.EpochLen()
	case ProtoBasic:
		return core.Config{Base: cfg, Variant: core.VariantBasic}.EpochLen()
	case ProtoLP22:
		return lp22.Config{Base: cfg}.EpochLen()
	case ProtoRareSync:
		return raresync.Config{Base: cfg}.EpochLen()
	default:
		return types.View(cfg.F + 1)
	}
}

// syncSpamBuilder returns the protocol-legal view-synchronization spam
// constructor for adversary.Env.SyncMsg: given a corrupted sender and a
// frontier view, it builds the correctly signed message that protocol's
// honest processors verify and buffer — an epoch-view message for the
// next epoch boundary (Lumiere, Basic, LP22, RareSync), a view message
// for the next initial view (Fever), a wish (Cogsworth), or a timeout
// (NK20).
func syncSpamBuilder(s Scenario, cfg types.Config, suite crypto.Suite) func(types.NodeID, types.View) msg.Message {
	switch s.Protocol {
	case ProtoLumiere, ProtoBasic, ProtoLP22, ProtoRareSync:
		// accountingEpochLen returns the protocol's own epoch length
		// for all four epoch-based protocols.
		return epochViewSpam(suite, accountingEpochLen(s, cfg))
	case ProtoFever:
		return func(from types.NodeID, v types.View) msg.Message {
			w := v
			if w < 0 {
				w = 0
			}
			if !w.Initial() {
				w++
			}
			return &msg.ViewMsg{V: w, Sig: suite.SignerFor(from).Sign(msg.ViewStatement(w))}
		}
	case ProtoCogsworth:
		return func(from types.NodeID, v types.View) msg.Message {
			if v < 1 {
				v = 1
			}
			return &msg.Wish{V: v, Sig: suite.SignerFor(from).Sign(msg.WishStatement(v))}
		}
	case ProtoNK20:
		return func(from types.NodeID, v types.View) msg.Message {
			if v < 1 {
				v = 1
			}
			return &msg.Timeout{V: v, Sig: suite.SignerFor(from).Sign(msg.TimeoutStatement(v))}
		}
	default:
		return func(types.NodeID, types.View) msg.Message { return nil }
	}
}

// epochViewSpam builds epoch-view spam for epoch-based protocols: the
// message targets the next epoch boundary at or above the frontier, the
// only views those protocols' handlers accept.
func epochViewSpam(suite crypto.Suite, epochLen types.View) func(types.NodeID, types.View) msg.Message {
	return func(from types.NodeID, v types.View) msg.Message {
		if epochLen <= 0 {
			return nil
		}
		if v < 0 {
			v = 0
		}
		w := ((v + epochLen - 1) / epochLen) * epochLen
		return &msg.EpochViewMsg{V: w, Sig: suite.SignerFor(from).Sign(msg.EpochViewStatement(w))}
	}
}

// ---------------------------------------------------------------------------
// The AttackTable experiment
// ---------------------------------------------------------------------------

// AttackSpecs lists the attack table's strategies in column order, with
// default parameters (f strategy nodes, horizon f, strategy-default
// periods).
func AttackSpecs() []adversary.AttackSpec {
	names := adversary.AttackNames()
	out := make([]adversary.AttackSpec, len(names))
	for i, name := range names {
		out[i] = adversary.AttackSpec{Name: name}
	}
	return out
}

// AttackDelta is the Δ every attack-table cell runs with; the table
// renderer and BenchmarkAttackTable report latencies in this unit.
const AttackDelta = 50 * time.Millisecond

// attackScenario builds one cell of the attack table: GST = 2s so the
// pre-GST strategies (view-desync, gst-straddle) have room to poison
// the initial state, a fast base network (δ = Δ/10) so the measured
// damage is the attack's, and a steady post-GST window long enough for
// per-decision word statistics.
func attackScenario(p Protocol, f int, spec adversary.AttackSpec, seed int64) Scenario {
	delta := AttackDelta
	gst := 2 * time.Second
	gamma := gammaOf(p, delta)
	return Scenario{
		Name:        fmt.Sprintf("attack-%s-%s-f%d", spec.Name, p, f),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		DeltaActual: delta / 10,
		GST:         gst,
		Attack:      spec,
		Duration:    gst + 30*time.Duration(f+1)*gamma,
		Seed:        seed,
	}
}

// AttackCell is one protocol × strategy cell of an attack sweep.
type AttackCell struct {
	// Protocol and Attack identify the cell.
	Protocol Protocol
	Attack   string
	// Seed is the cell's derived seed.
	Seed int64
	// Decided reports whether an honest-leader decision landed after
	// GST; SyncLatency is its distance from GST.
	Decided     bool
	SyncLatency time.Duration
	// WindowWords is W_GST in words: honest communication from GST to
	// the first honest-leader decision after it.
	WindowWords int64
	// TotalWords is the honest word total over the whole run.
	TotalWords int64
	// Decisions counts honest-leader decisions over the whole run;
	// MeanWords is the steady-state mean words per decision window
	// after GST.
	Decisions int
	MeanWords float64
}

// AttackReport aggregates an attack sweep.
type AttackReport struct {
	// Cells holds one entry per protocol × strategy, protocols outer
	// (AllProtocols order), strategies inner (AttackSpecs order).
	Cells []AttackCell
	// Workers is the worker-pool size the sweep used.
	Workers int
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
}

// AllDecided reports whether every cell resynchronized after GST — the
// attacks are all model-legal, so a stalled cell is a protocol failure.
func (r *AttackReport) AllDecided() bool {
	for i := range r.Cells {
		if !r.Cells[i].Decided {
			return false
		}
	}
	return true
}

// Table renders the report: one row per protocol, one column per
// strategy, each cell "latency words" (post-GST view-synchronization
// latency in Δ and total honest words over the run). The rendering is a
// pure function of the simulated executions, so it is byte-identical at
// every worker count.
func (r *AttackReport) Table() *Table {
	delta := AttackDelta
	t := &Table{Title: "Attack table: view-sync latency after GST (in Δ) and total honest words under adaptive strategies"}
	t.Header = []string{"protocol"}
	for _, spec := range AttackSpecs() {
		t.Header = append(t.Header, spec.Name)
	}
	stride := len(AttackSpecs())
	for pi, p := range AllProtocols {
		row := []string{string(p)}
		for si := 0; si < stride; si++ {
			c := &r.Cells[pi*stride+si]
			if !c.Decided {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.2fΔ %dw", float64(c.SyncLatency)/float64(delta), c.TotalWords))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("strategies: vote-then-silence desync, next-f-leaders omission, honest-till-GST straddle, leader-slot darkness + sync spam")
	t.AddNote("words charge honest sends only (msg.Words per message); W_GST windows are in AttackCell.WindowWords")
	return t
}

// measureAttack extracts one cell from a finished attacked run.
func measureAttack(res *Result) AttackCell {
	s := res.Scenario
	cell := AttackCell{
		Protocol:   s.Protocol,
		Attack:     s.Attack.Name,
		Seed:       s.Seed,
		Decisions:  res.DecisionCount(),
		TotalWords: res.Collector.WordsTotal(),
	}
	if w, lat, ok := res.Collector.WordsWindowAfter(res.GST); ok {
		cell.Decided = true
		cell.SyncLatency = lat
		cell.WindowWords = w
	}
	cell.MeanWords = res.Collector.Stats(res.GST, 2).MeanWords
	return cell
}

// Attack runs one attack strategy (by index into AttackSpecs) for one
// protocol and size.
func Attack(p Protocol, f, si int, seed int64) AttackCell {
	return AttackIn(nil, p, f, si, seed)
}

// AttackIn is Attack inside an execution arena (see ChaosIn): repeated
// cells amortize their setup through the arena. A nil arena runs
// standalone.
func AttackIn(a *Arena, p Protocol, f, si int, seed int64) AttackCell {
	return measureAttack(RunIn(a, attackScenario(p, f, AttackSpecs()[si], seed)))
}

// AttackSweep runs every protocol under every attack strategy (the
// AllProtocols × AttackSpecs matrix) on the sweep engine. Cell seeds
// derive from (seed, cell index), so the report is byte-identical at
// every worker count.
func AttackSweep(f int, seed int64, opts SweepOptions) *AttackReport {
	specs := AttackSpecs()
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(specs))
	for _, p := range AllProtocols {
		for _, spec := range specs {
			scenarios = append(scenarios, attackScenario(p, f, spec, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	sr := Sweep(scenarios, opts)

	rep := &AttackReport{Workers: sr.Workers, Elapsed: sr.Elapsed}
	for i := range sr.Cells {
		cell := measureAttack(sr.Cells[i].Result)
		cell.Seed = sr.Cells[i].Scenario.Seed
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// AttackTable renders the attack comparison: every protocol's post-GST
// view-synchronization latency and words under the four adaptive
// strategies.
func AttackTable(f int, seed int64) *Table {
	return AttackTableOpts(f, seed, SweepOptions{})
}

// AttackTableOpts is AttackTable with explicit sweep options.
func AttackTableOpts(f int, seed int64, opts SweepOptions) *Table {
	return AttackSweep(f, seed, opts).Table()
}

// ---------------------------------------------------------------------------
// Word-complexity scaling (the eventual linear-in-f_a claim, in words)
// ---------------------------------------------------------------------------

// wordsTable runs the AllProtocols × axis matrix (protocols outer,
// per-cell derived seeds) on the sweep engine and renders the maximum
// honest words per decision window, one column per axis value.
func wordsTable(title string, axis []int, col func(v int) string, scenario func(p Protocol, v int) Scenario, seed int64, opts SweepOptions) *Table {
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(axis))
	for _, p := range AllProtocols {
		for _, v := range axis {
			scenarios = append(scenarios, scenario(p, v))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	t := &Table{Title: title}
	t.Header = []string{"protocol"}
	for _, v := range axis {
		t.Header = append(t.Header, col(v))
	}
	for pi, p := range AllProtocols {
		row := []string{string(p)}
		for vi := range axis {
			r := measureEventual(results[pi*len(axis)+vi])
			if r.Decisions == 0 {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f", r.MaxWords))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// EventualWordsTable regenerates the eventual worst-case communication
// comparison in words: the maximum honest words between consecutive
// decisions as f_a grows at fixed n = 3f+1. Lumiere and Fever grow
// linearly in f_a (O(n·f_a + n) words); LP22 and NK20 pay their Θ(n²)
// synchronizations regardless of how many processors actually failed.
func EventualWordsTable(f int, fas []int, seed int64, opts SweepOptions) *Table {
	t := wordsTable(
		fmt.Sprintf("Eventual worst-case communication in words, n=%d: max words between consecutive decisions", 3*f+1),
		fas,
		func(fa int) string { return fmt.Sprintf("fa=%d", fa) },
		func(p Protocol, fa int) Scenario { return eventualScenario(p, f, fa, 0) },
		seed, opts)
	t.AddNote("paper: Lumiere/Fever O(n·f_a+n) words — growing with actual faults; LP22/NK20 O(n²) regardless of f_a")
	return t
}

// WordScalingTable sweeps n at fixed f_a and reports the maximum words
// per decision window: the word-complexity counterpart of
// EventualScaling. Lumiere's and Fever's rows grow ~linearly in n,
// LP22's and NK20's quadratically — the scenario family where eventual
// word counts track actual faults rather than system size.
func WordScalingTable(fs []int, fa int, seed int64, opts SweepOptions) *Table {
	t := wordsTable(
		fmt.Sprintf("Eventual word-complexity scaling (f_a=%d): max words between consecutive decisions", fa),
		fs,
		func(f int) string { return fmt.Sprintf("n=%d", 3*f+1) },
		func(p Protocol, f int) Scenario { return eventualScenario(p, f, fa, 0) },
		seed, opts)
	t.AddNote("divide a row by n: ~flat for Lumiere/Fever (words linear in n), growing for LP22/NK20 (quadratic)")
	return t
}

// ---------------------------------------------------------------------------
// Massive-n scaling (multicast events + bitset quorum tracking)
// ---------------------------------------------------------------------------

// LargeNProtocols are the protocols compared in the massive-n scaling
// table: the paper's Θ(n²)-synchronization baseline against Lumiere.
var LargeNProtocols = []Protocol{ProtoLP22, ProtoLumiere}

// LargeNSizes is the default axis of the massive-n scaling table.
var LargeNSizes = []int{128, 256, 1024, 4096}

// largeNSparsePoints caps the metrics send series for massive-n cells:
// 2²⁰ points bound the collector to tens of megabytes while keeping the
// windowed attribution error (sends coalesce onto later timestamps)
// to tens of sends per point — noise well under 1 word/n on the cells
// the table reports.
const largeNSparsePoints = 1 << 20

// LargeNScenario builds one massive-n steady-state cell: n processors
// (f = ⌊(n−1)/3⌋), one crashed processor, and the eventualScenario
// timing (Δ = 50ms, δ = Δ/10) with a 300s horizon. The horizon matters:
// LP22 races through an epoch (f+1 views) on fast QCs and then sits
// silent until its unbumped clocks reach the next boundary at (f+1)Γ,
// and with Γ = (x+1)Δ = 200ms that is 273.2s at n=4096 — a 240s run
// (the eventual-table horizon) would end before the Θ(n²) epoch
// synchronization ever lands at the largest size.
func LargeNScenario(p Protocol, n int, seed int64) Scenario {
	delta := 50 * time.Millisecond
	return Scenario{
		Name:          fmt.Sprintf("largen-%s-n%d", p, n),
		Protocol:      p,
		N:             n,
		F:             (n - 1) / 3,
		Delta:         delta,
		DeltaActual:   delta / 10,
		Corruptions:   adversary.CrashFirst(1),
		Duration:      300 * time.Second,
		Seed:          seed,
		SparseMetrics: largeNSparsePoints,
		MaxEvents:     1_000_000_000,
	}
}

// LargeNWordsTable sweeps LargeNProtocols over the given system sizes
// and reports the maximum honest words between consecutive decisions
// after warmup, normalized by n — the WordScalingTable measure pushed to
// four-digit n. Lumiere's words/n stays near-flat as n grows (its worst
// window is O(n) words); LP22's grows ~linearly in n (Θ(n²) words: the
// all-to-all epoch-view exchange plus the all-to-all EC relay land in a
// single decision window).
//
// Unlike measureEventual this skips no post-warmup decisions: at n ≥
// 1024 only a handful of epoch boundaries fit in the run, and the first
// decision after warmup is the one immediately following a heavy
// synchronization — skipping it would skip the very window the table
// exists to measure.
func LargeNWordsTable(ns []int, seed int64, opts SweepOptions) *Table {
	scenarios := make([]Scenario, 0, len(LargeNProtocols)*len(ns))
	for _, p := range LargeNProtocols {
		for _, n := range ns {
			scenarios = append(scenarios, LargeNScenario(p, n, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	t := &Table{Title: "Massive-n word-complexity scaling: max honest words between consecutive decisions / n (f_a=1)"}
	t.Header = []string{"protocol"}
	for _, n := range ns {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for pi, p := range LargeNProtocols {
		row := []string{string(p)}
		for ni := range ns {
			res := results[pi*len(ns)+ni]
			warm := types.Time(0).Add(res.Scenario.Duration / 4)
			stats := res.Collector.Stats(warm, 0)
			if res.Aborted || stats.Count == 0 {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", stats.MaxWords/float64(res.Cfg.N)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("~flat row: worst window O(n) words (Lumiere); ~4n row: worst window Θ(n²) words (LP22's epoch sync)")
	return t
}
