package harness

import (
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/types"
)

// TestRareSyncLiveness: RareSync stays live with f crashes.
func TestRareSyncLiveness(t *testing.T) {
	t.Parallel()
	res := Run(Scenario{
		Protocol:    ProtoRareSync,
		F:           2,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Corruptions: adversary.CrashFirst(2),
		Duration:    60 * time.Second,
		Seed:        9,
	})
	if res.DecisionCount() == 0 {
		t.Fatal("raresync made no decisions")
	}
}

// TestRareSyncNotResponsive: unlike every other protocol here, RareSync's
// decision gap is pinned at Γ regardless of the actual network delay —
// the paper's §6 distinction between RareSync and LP22.
func TestRareSyncNotResponsive(t *testing.T) {
	t.Parallel()
	res := Run(Scenario{
		Protocol:    ProtoRareSync,
		F:           2,
		Delta:       testDelta,
		DeltaActual: time.Millisecond, // network 50x faster than Δ
		Duration:    120 * time.Second,
		Seed:        9,
	})
	stats := res.Collector.Stats(types.Time(0).Add(20*time.Second), 5)
	if stats.Count == 0 {
		t.Fatal("no decisions")
	}
	// Views are clock-scheduled: the mean gap must be ~Γ = 4Δ, not
	// ~3δ = 3ms.
	if stats.MeanGap < res.Gamma/2 {
		t.Fatalf("raresync responded at network speed (gap %v, Γ %v) — it must not", stats.MeanGap, res.Gamma)
	}
	// Contrast: LP22 in the same setting is responsive within epochs.
	lp := Run(Scenario{
		Protocol:    ProtoLP22,
		F:           2,
		Delta:       testDelta,
		DeltaActual: time.Millisecond,
		Duration:    120 * time.Second,
		Seed:        9,
	})
	lpStats := lp.Collector.Stats(types.Time(0).Add(20*time.Second), 5)
	if lpStats.MeanGap >= stats.MeanGap {
		t.Fatalf("LP22 (%v) should beat RareSync (%v) on a fast network", lpStats.MeanGap, stats.MeanGap)
	}
}

// TestRareSyncHeavySyncEveryEpoch: like LP22, one Θ(n²) sync per epoch
// forever.
func TestRareSyncHeavySyncEveryEpoch(t *testing.T) {
	t.Parallel()
	res := Run(Scenario{
		Protocol:    ProtoRareSync,
		F:           2,
		Delta:       testDelta,
		DeltaActual: testDelta / 10,
		Duration:    120 * time.Second,
		Seed:        9,
	})
	heavy := res.Collector.HeavySyncViews(types.Time(0).Add(30 * time.Second))
	if len(heavy) < 5 {
		t.Fatalf("raresync heavy syncs = %d, want one per epoch", len(heavy))
	}
}

// TestTwoPhaseSMRCommitsFasterAndConsistently: the HotStuff-2 style
// two-chain rule commits with one less view of lag and stays consistent.
func TestTwoPhaseSMRCommitsFasterAndConsistently(t *testing.T) {
	skipInShort(t)
	t.Parallel()
	run := func(twoPhase bool) (*Result, int) {
		res := Run(Scenario{
			Protocol:     ProtoLumiere,
			F:            1,
			Delta:        testDelta,
			DeltaActual:  testDelta / 10,
			Duration:     30 * time.Second,
			Seed:         4,
			SMR:          true,
			SMRTwoPhase:  twoPhase,
			WorkloadRate: 100,
		})
		return res, requireConsistentCommits(t, res)
	}
	res3, c3 := run(false)
	res2, c2 := run(true)
	if c2 == 0 || c3 == 0 {
		t.Fatal("no commits")
	}
	// Same decision stream, but the two-chain rule converts one more
	// block at the tail and never fewer overall.
	if c2 < c3 {
		t.Fatalf("two-phase committed fewer blocks (%d) than three-phase (%d)", c2, c3)
	}
	if res2.DecisionCount() == 0 || res3.DecisionCount() == 0 {
		t.Fatal("no decisions")
	}
}
