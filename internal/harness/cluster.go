package harness

import (
	"fmt"
	"net"
	"sort"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/metrics"
	"lumiere/internal/nettcp"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// This file implements the wall-clock counterpart of the simulated
// experiment drivers: loopback clusters of real TCP replicas
// (internal/nettcp) measured with the same words/decision machinery the
// simulator uses, so every simulated table in EXPERIMENTS.md can stand
// next to a real-I/O number.

// ClusterExperiment configures one loopback wall-clock cluster run: n
// single-process replicas over real sockets, one shared time origin, the
// declarative chaos axes of Scenario realized at the socket layer.
type ClusterExperiment struct {
	// F is the fault tolerance; N defaults to 3F+1.
	F int
	N int
	// Delta is Δ (default 50ms — loopback δ is far below it).
	Delta time.Duration
	// Seed derives the shared PKI and the per-node chaos streams.
	Seed int64
	// SMR runs chained HotStuff with a KV store on every node.
	SMR bool
	// Rate injects this many client commands per second round-robin
	// across the nodes (SMR only).
	Rate int
	// Duration is the wall-clock run length (default 3s).
	Duration time.Duration
	// Warmup decisions are skipped by the gap statistics (default 3).
	Warmup int

	// Chaos axes, mirroring Scenario's declarative fields; they compose
	// into a network.LinkPolicy applied by each node's socket-level
	// Conditioner under the §2 clamp.
	//
	// Loss drops each outbound message with this probability (pre-GST:
	// released at GST+Δ; post-GST: Δ-late unless OmissionBudget funds a
	// true omission).
	Loss float64
	// LossUntil limits Loss to sends before this instant (zero = whole
	// run).
	LossUntil time.Duration
	// Duplication enqueues an extra copy with this probability,
	// jittered by up to Δ/2.
	Duplication float64
	// ReorderJitter adds an independent uniform extra release delay in
	// [0, ReorderJitter] per message.
	ReorderJitter time.Duration
	// Partitions isolates processor groups until PartitionHeal
	// (default: heal at GST).
	Partitions    [][]types.NodeID
	PartitionHeal time.Duration
	// GST is the global stabilization time the conditioners honor
	// (relative to the shared start).
	GST time.Duration
	// OmissionBudget authorizes true post-GST omission per node;
	// MaxSenders must be ≤ F when set.
	OmissionBudget network.OmissionBudget
	// Churn schedules crash-recovery downtimes per node.
	Churn map[types.NodeID][]adversary.Downtime
}

func (e ClusterExperiment) withDefaults() ClusterExperiment {
	if e.Delta <= 0 {
		e.Delta = 50 * time.Millisecond
	}
	if e.N <= 0 {
		e.N = 3*e.F + 1
	}
	if e.Duration <= 0 {
		e.Duration = 3 * time.Second
	}
	if e.Warmup == 0 {
		e.Warmup = 3
	}
	return e
}

// LinkPolicy composes the experiment's chaos axes into the link policy
// each node's socket-level conditioner applies, exactly as
// Scenario.linkPolicy composes for the simulated network (innermost to
// outermost: reorder → duplicate → loss → partition), over a zero-delay
// base: on a real network the wire supplies δ itself. Nil when no axis
// is set.
func (e ClusterExperiment) LinkPolicy() network.LinkPolicy {
	var link network.LinkPolicy = network.DelayLink{P: network.Fixed{D: 0}}
	conditioned := false
	if e.ReorderJitter > 0 {
		link = adversary.Reordering{Base: link, Jitter: e.ReorderJitter}
		conditioned = true
	}
	if e.Duplication > 0 {
		link = adversary.Duplicating{Base: link, P: e.Duplication, Jitter: e.Delta / 2}
		conditioned = true
	}
	if e.Loss > 0 {
		link = adversary.Lossy{Base: link, P: e.Loss, Until: types.Time(0).Add(e.LossUntil)}
		conditioned = true
	}
	if len(e.Partitions) > 0 {
		heal := types.Time(0).Add(e.GST)
		if e.PartitionHeal > 0 {
			heal = types.Time(0).Add(e.PartitionHeal)
		}
		link = adversary.NewPartition(link, e.N, heal, e.Partitions...)
		conditioned = true
	}
	if !conditioned {
		return nil
	}
	return link
}

// ClusterResult carries everything measured about one wall-clock
// cluster run. Decision timestamps live on the cluster's shared time
// base (nanoseconds since the common start).
type ClusterResult struct {
	// N and F echo the cluster shape.
	N, F int
	// Delta echoes Δ.
	Delta time.Duration
	// Elapsed is the wall-clock run length.
	Elapsed time.Duration
	// Decisions counts honest-leader consensus decisions across the
	// cluster (each recorded once, by its producing leader).
	Decisions int
	// Decided reports whether any decision landed after GST;
	// SyncLatency is the first one's distance from GST — the wall-clock
	// analogue of the simulated sync-latency measure.
	Decided     bool
	SyncLatency time.Duration
	// MeanGap and MaxGap summarize inter-decision gaps after Warmup.
	MeanGap, MaxGap time.Duration
	// Words is the honest communication in words summed over all
	// nodes' collectors (msg.Words per wire send — the simulator's
	// model, bit-for-bit).
	Words int64
	// WordsPerDecision is Words/Decisions (0 when undecided).
	WordsPerDecision float64
	// Sends is the total wire transmissions across the cluster.
	Sends int64
	// Committed is the minimum committed-block count across nodes (SMR
	// only).
	Committed int
	// Injected counts workload commands submitted (SMR only).
	Injected int
	// Omitted sums true post-GST omissions across conditioners.
	Omitted int64
	// Stats holds each node's transport counters.
	Stats []nettcp.Stats
	// Collectors holds each node's detached metrics snapshot.
	Collectors []*metrics.Collector
}

// QueueDrops sums peer-queue drops across the cluster.
func (r *ClusterResult) QueueDrops() int64 {
	return r.sumPeer(func(p nettcp.PeerStats) int64 { return p.QueueDrops })
}

// WriteDrops sums bounded-retry write drops across the cluster.
func (r *ClusterResult) WriteDrops() int64 {
	return r.sumPeer(func(p nettcp.PeerStats) int64 { return p.WriteDrops })
}

// DecodeErrors sums abandoned inbound streams across the cluster.
func (r *ClusterResult) DecodeErrors() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.DecodeErrors
	}
	return n
}

func (r *ClusterResult) sumPeer(f func(nettcp.PeerStats) int64) int64 {
	var n int64
	for _, s := range r.Stats {
		for _, p := range s.Peers {
			n += f(p)
		}
	}
	return n
}

// freeLoopbackAddrs reserves n distinct localhost ports. There is a
// small reuse race between Close and the nodes' Listen, acceptable for
// experiments.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("harness: reserve loopback port: %w", err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// RunCluster boots the cluster over real sockets, runs it for
// e.Duration of wall-clock time, shuts it down, and aggregates the
// per-node metrics snapshots into one result.
func RunCluster(e ClusterExperiment) (*ClusterResult, error) {
	e = e.withDefaults()
	base := types.Config{N: e.N, F: e.F, Delta: e.Delta, X: types.DefaultX}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("harness: cluster: %w", err)
	}
	if e.OmissionBudget != (network.OmissionBudget{}) &&
		(e.OmissionBudget.MaxSenders <= 0 || e.OmissionBudget.MaxSenders > e.F) {
		return nil, fmt.Errorf("harness: cluster omission budget must name 1..f=%d senders, got %d",
			e.F, e.OmissionBudget.MaxSenders)
	}
	addrs, err := freeLoopbackAddrs(e.N)
	if err != nil {
		return nil, err
	}
	link := e.LinkPolicy()
	start := time.Now()
	nodes := make([]*nettcp.Node, 0, e.N)
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	for i := 0; i < e.N; i++ {
		cfg := nettcp.NodeConfig{
			ID:             types.NodeID(i),
			Addrs:          addrs,
			Base:           base,
			Seed:           e.Seed,
			SMR:            e.SMR,
			Start:          start,
			Link:           link,
			GST:            e.GST,
			OmissionBudget: e.OmissionBudget,
			ChaosSeed:      e.Seed + int64(i) + 1,
			Churn:          e.Churn[types.NodeID(i)],
		}
		n, err := nettcp.StartNode(cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: cluster node %d: %w", i, err)
		}
		nodes = append(nodes, n)
	}

	injected := 0
	stop := make(chan struct{})
	workloadDone := make(chan struct{})
	if e.SMR && e.Rate > 0 {
		go func() {
			defer close(workloadDone)
			tick := time.NewTicker(time.Second / time.Duration(e.Rate))
			defer tick.Stop()
			i := 0
			for {
				select {
				case <-tick.C:
					cmd := fmt.Sprintf("SET key%d value%d", i%64, i)
					if nodes[i%len(nodes)].Submit([]byte(cmd)) == nil {
						injected++
					}
					i++
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(workloadDone)
	}

	time.Sleep(e.Duration)
	close(stop)
	<-workloadDone
	elapsed := time.Since(start)

	res := &ClusterResult{
		N:        e.N,
		F:        e.F,
		Delta:    e.Delta,
		Elapsed:  elapsed,
		Injected: injected,
	}
	gst := types.Time(0).Add(e.GST)
	var decisions []metrics.Decision
	minCommitted := -1
	for _, n := range nodes {
		col := n.Metrics()
		res.Collectors = append(res.Collectors, col)
		res.Stats = append(res.Stats, n.Stats())
		res.Words += col.WordsTotal()
		res.Sends += col.HonestSends()
		res.Omitted += n.Omitted()
		decisions = append(decisions, col.Decisions()...)
		if e.SMR {
			_, _, committed := n.Status()
			if minCommitted < 0 || committed < minCommitted {
				minCommitted = committed
			}
		}
	}
	if e.SMR {
		res.Committed = minCommitted
	}
	// Each decision is recorded exactly once, by the leader that
	// produced it; the merged per-node streams form the cluster's
	// global decision log on the shared time base.
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].At < decisions[j].At })
	res.Decisions = len(decisions)
	for _, d := range decisions {
		if d.At > gst {
			res.Decided = true
			res.SyncLatency = d.At.Sub(gst)
			break
		}
	}
	if res.Decisions > 0 {
		res.WordsPerDecision = float64(res.Words) / float64(res.Decisions)
	}
	var gaps []time.Duration
	for i := e.Warmup + 1; i < len(decisions); i++ {
		gaps = append(gaps, decisions[i].At.Sub(decisions[i-1].At))
	}
	if len(gaps) > 0 {
		var sum time.Duration
		for _, g := range gaps {
			sum += g
			if g > res.MaxGap {
				res.MaxGap = g
			}
		}
		res.MeanGap = sum / time.Duration(len(gaps))
	}
	return res, nil
}

// ClusterTable runs one loopback cluster per f in fs (n = 3f+1) for
// perRun of wall clock each and renders the wall-clock sync-latency and
// words measures in a fixed schema: the values are wall-clock (and so
// vary run to run) but the header, row count and row order depend only
// on fs — the real-I/O table that stands next to the simulated ones in
// EXPERIMENTS.md.
func ClusterTable(fs []int, delta, perRun time.Duration, seed int64) (*Table, error) {
	t := &Table{Title: "Wall-clock loopback cluster: sync latency and words (real TCP)"}
	t.Header = []string{"n", "f", "decisions", "sync-lat", "mean-gap", "words", "words/dec", "words/dec/n", "drops"}
	for _, f := range fs {
		res, err := RunCluster(ClusterExperiment{
			F:        f,
			Delta:    delta,
			Seed:     seed,
			Duration: perRun,
		})
		if err != nil {
			return nil, err
		}
		sync := "stalled"
		if res.Decided {
			sync = res.SyncLatency.Round(time.Millisecond).String()
		}
		wpd, wpdn := "-", "-"
		if res.Decisions > 0 {
			wpd = fmt.Sprintf("%.1f", res.WordsPerDecision)
			wpdn = fmt.Sprintf("%.2f", res.WordsPerDecision/float64(res.N))
		}
		t.AddRow(
			fmt.Sprintf("%d", res.N),
			fmt.Sprintf("%d", res.F),
			fmt.Sprintf("%d", res.Decisions),
			sync,
			res.MeanGap.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Words),
			wpd,
			wpdn,
			fmt.Sprintf("%d", res.QueueDrops()+res.WriteDrops()),
		)
	}
	t.AddNote("real sockets on 127.0.0.1, Δ=%s, %s per cell, seed %d; values are wall-clock (schema deterministic, values not)", delta, perRun, seed)
	return t, nil
}
