package harness

import (
	"fmt"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/network"
	"lumiere/internal/types"
	"lumiere/internal/viz"
)

// This file defines the experiments that regenerate every table and figure
// of the paper (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured records). Every experiment is
// split into a scenario builder and a pure measure over the resulting
// *Result, so the table drivers can flatten their full protocol × size
// matrices into a single Sweep (sweep.go) and fan the executions across
// the worker pool; per-cell seeds are derived with DeriveSeed, making the
// rendered tables byte-identical at any worker count.

// DefaultFs is the fault-tolerance sweep used by the scaling experiments
// (n = 3f+1 ∈ {4, 10, 16, 31, 61}).
var DefaultFs = []int{1, 3, 5, 10, 20}

// WorstCaseResult is one protocol/size point of the worst-case
// experiments.
type WorstCaseResult struct {
	Protocol Protocol
	F, N     int
	Msgs     int64
	Latency  time.Duration
	Strategy string
	Decided  bool
}

// GammaOf estimates the view duration Γ of a protocol at the given Δ:
// the unit the experiment drivers (and internal/redteam's scenario
// builder) size their horizons in.
func GammaOf(p Protocol, delta time.Duration) time.Duration { return gammaOf(p, delta) }

// gammaOf estimates the view duration Γ of a protocol for scenario sizing.
func gammaOf(p Protocol, delta time.Duration) time.Duration {
	x := time.Duration(types.DefaultX)
	switch p {
	case ProtoLumiere:
		return 2 * (x + 2) * delta
	case ProtoBasic, ProtoFever:
		return 2 * (x + 1) * delta
	default:
		return (x + 1) * delta
	}
}

// worstStrategy is one adversary strategy of the worst-case experiment: a
// scenario builder plus the measure extracting the strategy's headline
// quantities from the finished run.
type worstStrategy struct {
	name     string
	scenario func(p Protocol, f int, seed int64) Scenario
	measure  func(*Result) WorstCaseResult
}

// worstStrategies lists the implemented adversary strategies, in the
// order WorstCase documents them.
var worstStrategies = []worstStrategy{
	{"crash", worstCaseCrashScenario, measureWorstCase},
	{"desync", desyncScenario, measureWorstCase},
	{"byz-leaders", steadyScenario(false), measureSteady},
	{"crash-steady", steadyScenario(true), measureSteady},
}

// WorstCase measures §2's worst-case communication W_{GST+Δ} and latency
// t*_GST − GST as the maximum over the implemented adversary strategies:
//
//   - "crash": f processors crash from the start, joins are staggered,
//     pre-GST traffic is withheld to GST+Δ, and every post-GST message
//     takes the full Δ. This exposes relay pathologies (Cogsworth's
//     aggregator chains, NK20's fanouts) and faulty-leader stalls.
//
//   - "desync": f Byzantine processors behave honestly while the
//     adversary blocks f honest "laggards"; QCs formed with Byzantine
//     votes bump the remaining f+1 honest clocks an epoch's worth of
//     views ahead; then the Byzantine processors go silent shortly before
//     GST. At GST+Δ the (f+1)st honest gap is Θ(nΓ) and the protocols
//     must resynchronize — the paper's Θ(n²)/Θ(nΔ) worst case.
//
//   - "byz-leaders"/"crash-steady" measure the unavoidable stall chain: f
//     non-proposing (resp. crashed) processors waste their views while
//     the adversary delays every message to Δ; consecutive Byzantine
//     leaders cost Θ(Γ) each, up to Θ(fΓ) = Θ(nΔ) between decisions.
//
// The strategies are independent executions, so they run as a small
// sweep; all use the same seed (the strategy, not the randomness, is the
// variable).
func WorstCase(p Protocol, f int, seed int64) WorstCaseResult {
	return WorstCaseOpts(p, f, seed, SweepOptions{})
}

// WorstCaseOpts is WorstCase with explicit sweep options.
func WorstCaseOpts(p Protocol, f int, seed int64, opts SweepOptions) WorstCaseResult {
	scenarios := make([]Scenario, len(worstStrategies))
	for i, st := range worstStrategies {
		scenarios[i] = st.scenario(p, f, seed)
	}
	opts.KeepSeeds = true
	return reduceWorstCase(Sweep(scenarios, opts).Results())
}

// reduceWorstCase combines one result per strategy (in worstStrategies
// order) into the strategy maximum.
func reduceWorstCase(results []*Result) WorstCaseResult {
	var out WorstCaseResult
	var maxLat time.Duration
	var first WorstCaseResult
	for i, res := range results {
		c := worstStrategies[i].measure(res)
		c.Strategy = worstStrategies[i].name
		if i == 0 {
			first = c
		}
		if !c.Decided {
			continue
		}
		if !out.Decided || c.Msgs > out.Msgs {
			out = c
		}
		if c.Latency > maxLat {
			maxLat = c.Latency
		}
	}
	if !out.Decided {
		return first
	}
	out.Latency = maxLat
	return out
}

// steadyScenario builds the scenario of the steady worst-case strategy: a
// long adversarial-delay run with f faulty processors holding consecutive
// leader slots, crashed (silent, so they neither aggregate nor vote) or
// non-proposing (they keep others synchronized but waste their views).
func steadyScenario(crash bool) func(p Protocol, f int, seed int64) Scenario {
	return func(p Protocol, f int, seed int64) Scenario {
		delta := 50 * time.Millisecond
		gamma := gammaOf(p, delta)
		corr := adversary.NonProposingSet(consecutive(f)...)
		if crash {
			corr = adversary.CrashFirst(f)
		}
		return Scenario{
			Name:        fmt.Sprintf("worst-steady-%s-f%d-crash%v", p, f, crash),
			Protocol:    p,
			F:           f,
			Delta:       delta,
			Delay:       network.Adversarial{},
			Corruptions: corr,
			Duration:    80 * time.Duration(f+1) * gamma,
			Seed:        seed,
		}
	}
}

// measureSteady extracts the maximum per-decision window of a steady
// worst-case run.
func measureSteady(res *Result) WorstCaseResult {
	s := res.Scenario
	gamma := gammaOf(s.Protocol, s.Delta)
	stats := res.Collector.Stats(types.Time(0).Add(20*time.Duration(s.F+1)*gamma), 2)
	out := WorstCaseResult{Protocol: s.Protocol, F: s.F, N: res.Cfg.N}
	if stats.Count == 0 {
		return out
	}
	out.Decided = true
	out.Msgs = int64(stats.MaxMsgs)
	out.Latency = stats.MaxGap
	return out
}

func consecutive(k int) []types.NodeID {
	out := make([]types.NodeID, k)
	for i := range out {
		out[i] = types.NodeID(i)
	}
	return out
}

// worstCaseCrashScenario builds the crash strategy's scenario.
func worstCaseCrashScenario(p Protocol, f int, seed int64) Scenario {
	delta := 50 * time.Millisecond
	gst := 1 * time.Second
	gamma := gammaOf(p, delta)
	return Scenario{
		Name:         fmt.Sprintf("worst-crash-%s-f%d", p, f),
		Protocol:     p,
		F:            f,
		Delta:        delta,
		Delay:        network.Adversarial{},
		PreGSTChaos:  true,
		GST:          gst,
		StartStagger: gst / 2,
		Corruptions:  adversary.CrashFirst(f),
		Duration:     gst + 40*time.Duration(f+1)*gamma,
		Seed:         seed,
	}
}

// desyncScenario builds the desynchronization adversary's scenario: until
// tBlock everything is fast and the Byzantine processors behave honestly;
// from tBlock the adversary blocks the last f honest processors
// ("laggards"), so QCs formed with Byzantine votes keep bumping the
// remaining f+1 honest clocks far ahead of the laggards'; at tKill the
// Byzantine processors crash, freezing progress; at GST the blocking
// ends (post-GST everything takes the full Δ).
func desyncScenario(p Protocol, f int, seed int64) Scenario {
	delta := 50 * time.Millisecond
	fast := delta / 50
	gamma := gammaOf(p, delta)
	n := 3*f + 1
	tBlock := types.Time(0).Add(1 * time.Second)
	tKill := tBlock.Add(3*time.Duration(f)*gamma + time.Second)
	gst := tKill.Add(time.Duration(f) * gamma)
	laggards := make(map[types.NodeID]bool, f)
	for i := 2*f + 1; i < n; i++ {
		laggards[types.NodeID(i)] = true
	}
	corr := make([]adversary.Corruption, f)
	for i := range corr {
		corr[i] = adversary.Corruption{
			Node:     types.NodeID(i),
			Behavior: adversary.BehaviorCrashAt,
			At:       tKill.Duration(),
		}
	}
	policy := network.Phased{
		Switch: tBlock,
		Before: network.Fixed{D: fast},
		After: network.Phased{
			Switch: gst,
			Before: network.Targeted{
				Base:    network.Fixed{D: fast},
				Slow:    network.Adversarial{},
				Targets: laggards,
			},
			After: network.Adversarial{},
		},
	}
	return Scenario{
		Name:        fmt.Sprintf("desync-%s-f%d", p, f),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		Delay:       policy,
		GST:         gst.Duration(),
		Corruptions: corr,
		Duration:    gst.Duration() + 14*time.Duration(n)*gamma + 10*time.Second,
		Seed:        seed,
	}
}

// measureWorstCase extracts W_{GST+Δ} and the post-GST decision latency.
func measureWorstCase(res *Result) WorstCaseResult {
	s := res.Scenario
	out := WorstCaseResult{Protocol: s.Protocol, F: s.F, N: res.Cfg.N}
	msgs, _, ok := res.Collector.WindowAfter(res.GST.Add(res.Cfg.Delta))
	if !ok {
		return out
	}
	out.Decided = true
	out.Msgs = msgs
	if d, found := res.Collector.FirstDecisionAfter(res.GST); found {
		out.Latency = d.At.Sub(res.GST)
	}
	return out
}

// Table1WorstCase regenerates the "Worst-case Communication" and
// "Worst-case Latency" rows of Table 1 as an empirical n-sweep.
func Table1WorstCase(fs []int, seed int64) (*Table, *Table) {
	return Table1WorstCaseOpts(fs, seed, SweepOptions{})
}

// Table1WorstCaseOpts is Table1WorstCase with explicit sweep options: the
// full protocol × f × strategy matrix is flattened into one sweep, so
// every execution runs on the worker pool. Cell (protocol, f) gets the
// seed DeriveSeed(seed, cell index); all of a cell's strategies share it.
func Table1WorstCaseOpts(fs []int, seed int64, opts SweepOptions) (*Table, *Table) {
	nStrat := len(worstStrategies)
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(fs)*nStrat)
	for pi, p := range AllProtocols {
		for fi, f := range fs {
			cellSeed := DeriveSeed(seed, pi*len(fs)+fi)
			for _, st := range worstStrategies {
				scenarios = append(scenarios, st.scenario(p, f, cellSeed))
			}
		}
	}
	opts.KeepSeeds = true
	results := Sweep(scenarios, opts).Results()

	comm := &Table{Title: "Table 1 (worst-case communication): messages from GST+Δ to first honest-leader decision"}
	lat := &Table{Title: "Table 1 (worst-case latency): GST to first honest-leader decision"}
	header := []string{"protocol"}
	for _, f := range fs {
		header = append(header, fmt.Sprintf("n=%d", 3*f+1))
	}
	comm.Header, lat.Header = header, header
	for pi, p := range AllProtocols {
		crow := []string{string(p)}
		lrow := []string{string(p)}
		for fi := range fs {
			base := (pi*len(fs) + fi) * nStrat
			r := reduceWorstCase(results[base : base+nStrat])
			if !r.Decided {
				crow = append(crow, "stalled")
				lrow = append(lrow, "stalled")
				continue
			}
			crow = append(crow, fmt.Sprintf("%d", r.Msgs))
			lrow = append(lrow, fmt.Sprintf("%.2fΔ", float64(r.Latency)/float64(50*time.Millisecond)))
		}
		comm.Rows = append(comm.Rows, crow)
		lat.Rows = append(lat.Rows, lrow)
	}
	comm.AddNote("paper: Cogsworth O(n³), NK20/LP22/Fever/Lumiere O(n²)")
	lat.AddNote("paper: Cogsworth O(n²Δ), NK20/LP22/Lumiere O(nΔ), Fever O(f_aΔ+δ)")
	return comm, lat
}

// EventualResult is one protocol point of the steady-state experiments.
type EventualResult struct {
	Protocol  Protocol
	F, N, Fa  int
	MaxMsgs   float64
	MeanMsgs  float64
	MaxWords  float64
	MeanWords float64
	MaxGap    time.Duration
	MeanGap   time.Duration
	Decisions int
	HeavySync int
}

// eventualScenario builds the steady-state scenario: GST = 0, fixed
// actual delay δ = Δ/10, f_a crashed processors, a long run.
func eventualScenario(p Protocol, f, fa int, seed int64) Scenario {
	delta := 50 * time.Millisecond
	return Scenario{
		Name:        fmt.Sprintf("eventual-%s-f%d-fa%d", p, f, fa),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		DeltaActual: delta / 10,
		Corruptions: adversary.CrashFirst(fa),
		Duration:    240 * time.Second,
		Seed:        seed,
	}
}

// measureEventual extracts the per-decision-window maxima after a warmup
// (§2's eventual worst-case communication and latency). The paper's
// eventual measures allow a small constant number of warmup decisions.
func measureEventual(res *Result) EventualResult {
	s := res.Scenario
	warm := types.Time(0).Add(s.Duration / 4)
	stats := res.Collector.Stats(warm, 5)
	return EventualResult{
		Protocol:  s.Protocol,
		F:         s.F,
		N:         res.Cfg.N,
		Fa:        len(s.Corruptions),
		MaxMsgs:   stats.MaxMsgs,
		MeanMsgs:  stats.MeanMsgs,
		MaxWords:  stats.MaxWords,
		MeanWords: stats.MeanWords,
		MaxGap:    stats.MaxGap,
		MeanGap:   stats.MeanGap,
		Decisions: stats.Count,
		HeavySync: len(res.Collector.HeavySyncViews(warm)),
	}
}

// Eventual runs the steady-state scenario for one protocol and size and
// measures the per-decision-window maxima.
func Eventual(p Protocol, f, fa int, seed int64) EventualResult {
	return measureEventual(Run(eventualScenario(p, f, fa, seed)))
}

// Table1Eventual regenerates the "Eventual Worst-case Communication" and
// "Eventual Worst-case Latency" rows of Table 1 as an f_a-sweep at fixed
// n = 3f+1.
func Table1Eventual(f int, fas []int, seed int64) (*Table, *Table) {
	return Table1EventualOpts(f, fas, seed, SweepOptions{})
}

// Table1EventualOpts is Table1Eventual with explicit sweep options.
func Table1EventualOpts(f int, fas []int, seed int64, opts SweepOptions) (*Table, *Table) {
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(fas))
	for _, p := range AllProtocols {
		for _, fa := range fas {
			scenarios = append(scenarios, eventualScenario(p, f, fa, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	comm := &Table{Title: fmt.Sprintf("Table 1 (eventual worst-case communication), n=%d: max messages between consecutive decisions", 3*f+1)}
	lat := &Table{Title: fmt.Sprintf("Table 1 (eventual worst-case latency), n=%d: max gap between consecutive decisions (in Δ)", 3*f+1)}
	header := []string{"protocol"}
	for _, fa := range fas {
		header = append(header, fmt.Sprintf("fa=%d", fa))
	}
	comm.Header, lat.Header = header, header
	delta := 50 * time.Millisecond
	for pi, p := range AllProtocols {
		crow := []string{string(p)}
		lrow := []string{string(p)}
		for fi := range fas {
			r := measureEventual(results[pi*len(fas)+fi])
			if r.Decisions == 0 {
				crow = append(crow, "stalled")
				lrow = append(lrow, "stalled")
				continue
			}
			crow = append(crow, fmt.Sprintf("%.0f", r.MaxMsgs))
			lrow = append(lrow, fmt.Sprintf("%.2fΔ", float64(r.MaxGap)/float64(delta)))
		}
		comm.Rows = append(comm.Rows, crow)
		lat.Rows = append(lat.Rows, lrow)
	}
	comm.AddNote("paper: Cogsworth O(n+n·f_a²), NK20 O(n²), LP22 O(n²), Fever/Lumiere O(n·f_a+n)")
	lat.AddNote("paper: Cogsworth O(f_a²Δ+δ), NK20/LP22 O(nΔ), Fever/Lumiere O(f_aΔ+δ)")
	return comm, lat
}

// EventualScalingData runs the n-sweep at fixed f_a for every protocol.
func EventualScalingData(fs []int, fa int, seed int64) map[Protocol][]EventualResult {
	return EventualScalingDataOpts(fs, fa, seed, SweepOptions{})
}

// EventualScalingDataOpts is EventualScalingData with explicit sweep
// options: the protocol × f matrix runs as one sweep with per-cell
// derived seeds, so the data (and any table rendered from it) is
// byte-identical at every worker count.
func EventualScalingDataOpts(fs []int, fa int, seed int64, opts SweepOptions) map[Protocol][]EventualResult {
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(fs))
	for _, p := range AllProtocols {
		for _, f := range fs {
			scenarios = append(scenarios, eventualScenario(p, f, fa, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	out := make(map[Protocol][]EventualResult, len(AllProtocols))
	for pi, p := range AllProtocols {
		for fi := range fs {
			out[p] = append(out[p], measureEventual(results[pi*len(fs)+fi]))
		}
	}
	return out
}

// EventualScaling sweeps n at fixed small f_a to expose the per-decision
// communication scaling (Lumiere/Fever O(n) vs LP22/NK20 O(n²)).
func EventualScaling(fs []int, fa int, seed int64) *Table {
	return EventualScalingTable(EventualScalingData(fs, fa, seed), fs, fa)
}

// EventualScalingTable formats pre-computed sweep data.
func EventualScalingTable(data map[Protocol][]EventualResult, fs []int, fa int) *Table {
	t := &Table{Title: fmt.Sprintf("Eventual communication scaling (f_a=%d): max messages between consecutive decisions", fa)}
	t.Header = []string{"protocol"}
	for _, f := range fs {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", 3*f+1))
	}
	for _, p := range AllProtocols {
		row := []string{string(p)}
		for _, r := range data[p] {
			if r.Decisions == 0 {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.0f", r.MaxMsgs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// EventualScalingPlot renders the sweep as a log-scale ASCII chart, the
// visual counterpart of the Table 1 communication rows.
func EventualScalingPlot(data map[Protocol][]EventualResult) string {
	var series []viz.Series
	for _, p := range AllProtocols {
		s := viz.Series{Name: string(p)}
		for _, r := range data[p] {
			if r.Decisions == 0 {
				continue
			}
			s.X = append(s.X, float64(r.N))
			s.Y = append(s.Y, r.MaxMsgs)
		}
		series = append(series, s)
	}
	return viz.Plot("max messages per decision window vs n (log y)", series, 64, 16, true)
}

// Figure1Result reproduces Figure 1: after a burst of fast QCs, a faulty
// leader stalls LP22 for almost (f+1)Γ because clocks are never bumped;
// Lumiere bounds the stall by ~Γ per faulty leader.
type Figure1Result struct {
	Protocol    Protocol
	Gamma       time.Duration
	MaxStall    time.Duration
	StallGammas float64
	Timeline    string
	Decisions   int
}

// figure1Scenario builds the Figure 1 scenario for one protocol and size:
// a fast network (δ = Δ/20) with a single non-proposing Byzantine
// processor.
func figure1Scenario(p Protocol, f int, seed int64, withTrace bool) Scenario {
	delta := 50 * time.Millisecond
	traceLimit := 0
	if withTrace {
		traceLimit = 200_000
	}
	return Scenario{
		Name:        fmt.Sprintf("figure1-%s-f%d", p, f),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		DeltaActual: delta / 20,
		Corruptions: adversary.NonProposingSet(types.NodeID(3*f - 1)),
		Duration:    240 * time.Second,
		Seed:        seed,
		TraceLimit:  traceLimit,
	}
}

// measureFigure1 extracts the single-fault stall. The stall a single
// fault causes is LP22's issue (i): after fast QCs the unbumped clocks
// must catch up, up to (f+1)Γ; Lumiere/Fever bound it by ~Γ per faulty
// view pair (≤ ~4Γ when the faulty processor holds the 4-view block
// boundary), independent of n.
func measureFigure1(res *Result) Figure1Result {
	stats := res.Collector.Stats(types.Time(0).Add(30*time.Second), 2)
	var timeline string
	if res.Tracer != nil {
		timeline = res.Tracer.Render()
	}
	return Figure1Result{
		Protocol:    res.Scenario.Protocol,
		Gamma:       res.Gamma,
		MaxStall:    stats.MaxGap,
		StallGammas: float64(stats.MaxGap) / float64(res.Gamma),
		Timeline:    timeline,
		Decisions:   stats.Count,
	}
}

// Figure1 runs the Figure 1 scenario for one protocol and size.
func Figure1(p Protocol, f int, seed int64, withTrace bool) Figure1Result {
	return measureFigure1(Run(figure1Scenario(p, f, seed, withTrace)))
}

// figure1Protocols is the Figure 1 comparison set, in presentation order.
var figure1Protocols = []Protocol{ProtoLP22, ProtoNK20, ProtoFever, ProtoBasic, ProtoLumiere}

// Figure1Table renders the Figure 1 comparison as an n-sweep: the stall
// caused by one Byzantine processor, in units of each protocol's Γ.
func Figure1Table(fs []int, seed int64) *Table {
	return Figure1TableOpts(fs, seed, SweepOptions{})
}

// Figure1TableOpts is Figure1Table with explicit sweep options.
func Figure1TableOpts(fs []int, seed int64, opts SweepOptions) *Table {
	scenarios := make([]Scenario, 0, len(figure1Protocols)*len(fs))
	for _, p := range figure1Protocols {
		for _, f := range fs {
			scenarios = append(scenarios, figure1Scenario(p, f, 0, false))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	t := &Table{Title: "Figure 1: max stall caused by a single Byzantine leader after fast QCs (in units of Γ)"}
	t.Header = []string{"protocol"}
	for _, f := range fs {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", 3*f+1))
	}
	for pi, p := range figure1Protocols {
		row := []string{string(p)}
		for fi := range fs {
			r := measureFigure1(results[pi*len(fs)+fi])
			if r.Decisions == 0 {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.2fΓ", r.StallGammas))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper (Fig. 1): LP22's stall grows to almost (f+1)Γ = O(nΔ); Lumiere/Fever stay O(Γ) = O(Δ) per faulty leader")
	return t
}

// ResponsivenessPoint is one δ point of the smooth-responsiveness sweep.
type ResponsivenessPoint struct {
	DeltaActual time.Duration
	MeanGap     time.Duration
	MaxGap      time.Duration
}

// responsivenessScenario builds one δ point of the responsiveness sweep
// (Δ fixed at 100ms, f_a = 0).
func responsivenessScenario(p Protocol, f int, d time.Duration, seed int64) Scenario {
	return Scenario{
		Name:        fmt.Sprintf("resp-%s-%v", p, d),
		Protocol:    p,
		F:           f,
		Delta:       100 * time.Millisecond,
		DeltaActual: d,
		Duration:    120 * time.Second,
		Seed:        seed,
	}
}

// measureResponsiveness extracts the steady-state decision gap.
func measureResponsiveness(res *Result) ResponsivenessPoint {
	stats := res.Collector.Stats(types.Time(0).Add(30*time.Second), 5)
	return ResponsivenessPoint{
		DeltaActual: res.Scenario.DeltaActual,
		MeanGap:     stats.MeanGap,
		MaxGap:      stats.MaxGap,
	}
}

// SmoothResponsiveness sweeps the actual network delay δ at f_a = 0 and
// reports the steady-state decision gap: an optimistically responsive
// protocol tracks O(δ), a non-responsive one is pinned at Ω(Γ).
func SmoothResponsiveness(p Protocol, f int, deltas []time.Duration, seed int64) []ResponsivenessPoint {
	scenarios := make([]Scenario, len(deltas))
	for i, d := range deltas {
		scenarios[i] = responsivenessScenario(p, f, d, seed)
	}
	results := Sweep(scenarios, SweepOptions{KeepSeeds: true}).Results()
	out := make([]ResponsivenessPoint, len(results))
	for i, res := range results {
		out[i] = measureResponsiveness(res)
	}
	return out
}

// ResponsivenessTable renders the δ-sweep for several protocols.
func ResponsivenessTable(f int, seed int64) *Table {
	return ResponsivenessTableOpts(f, seed, SweepOptions{})
}

// ResponsivenessTableOpts is ResponsivenessTable with explicit sweep
// options.
func ResponsivenessTableOpts(f int, seed int64, opts SweepOptions) *Table {
	deltas := []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(deltas))
	for _, p := range AllProtocols {
		for _, d := range deltas {
			scenarios = append(scenarios, responsivenessScenario(p, f, d, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	t := &Table{Title: fmt.Sprintf("Smooth optimistic responsiveness (f_a=0, n=%d, Δ=100ms): mean decision gap vs actual delay δ", 3*f+1)}
	t.Header = []string{"protocol"}
	for _, d := range deltas {
		t.Header = append(t.Header, d.String())
	}
	for pi, p := range AllProtocols {
		row := []string{string(p)}
		for di := range deltas {
			pt := measureResponsiveness(results[pi*len(deltas)+di])
			row = append(row, pt.MeanGap.Round(time.Millisecond/10).String())
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("responsive protocols track ~3δ (x=3 network round-trips); clock-driven entry pins the gap near Γ")
	return t
}

// heavySyncScenario builds the heavy-synchronization count scenario.
func heavySyncScenario(p Protocol, f, fa int, dur time.Duration, seed int64) Scenario {
	delta := 50 * time.Millisecond
	return Scenario{
		Name:        fmt.Sprintf("heavy-%s-f%d-fa%d", p, f, fa),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		DeltaActual: delta / 10,
		Corruptions: adversary.CrashFirst(fa),
		Duration:    dur,
		Seed:        seed,
	}
}

// measureHeavySync counts Theorem 1.1(4)'s mechanism: the number of heavy
// Θ(n²) epoch synchronizations started after the warmup, plus the number
// of epochs the run traversed. Lumiere retires heavy syncs once an epoch
// satisfies the success criterion; LP22 and Basic Lumiere pay one per
// epoch forever.
func measureHeavySync(res *Result) (heavy int, epochsElapsed float64) {
	s := res.Scenario
	warm := types.Time(0).Add(s.Duration / 4)
	heavy = len(res.Collector.HeavySyncViews(warm))
	decs := res.Collector.Decisions()
	var views float64
	if len(decs) > 0 {
		views = float64(decs[len(decs)-1].View)
	}
	switch s.Protocol {
	case ProtoLP22:
		epochsElapsed = views / float64(s.F+1)
	case ProtoBasic:
		epochsElapsed = views / float64(2*(s.F+1))
	default:
		epochsElapsed = views / float64(10*(3*s.F+1))
	}
	return heavy, epochsElapsed
}

// HeavySyncCount runs the heavy-synchronization experiment for one
// protocol and fault mix.
func HeavySyncCount(p Protocol, f, fa int, dur time.Duration, seed int64) (heavy int, epochsElapsed float64) {
	return measureHeavySync(Run(heavySyncScenario(p, f, fa, dur, seed)))
}

// heavySyncProtocols is the heavy-sync comparison set.
var heavySyncProtocols = []Protocol{ProtoLP22, ProtoBasic, ProtoLumiere}

// HeavySyncTable renders the heavy-synchronization comparison.
func HeavySyncTable(f int, seed int64) *Table {
	return HeavySyncTableOpts(f, seed, SweepOptions{})
}

// HeavySyncTableOpts is HeavySyncTable with explicit sweep options.
func HeavySyncTableOpts(f int, seed int64, opts SweepOptions) *Table {
	fas := []int{0, 1}
	scenarios := make([]Scenario, 0, len(heavySyncProtocols)*len(fas))
	for _, p := range heavySyncProtocols {
		for _, fa := range fas {
			scenarios = append(scenarios, heavySyncScenario(p, f, fa, 240*time.Second, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	t := &Table{Title: fmt.Sprintf("Heavy (Θ(n²)) epoch synchronizations after warmup, n=%d, 240s run", 3*f+1)}
	t.Header = []string{"protocol", "fa=0 heavy", "fa=0 epochs", "fa=1 heavy", "fa=1 epochs"}
	for pi, p := range heavySyncProtocols {
		h0, e0 := measureHeavySync(results[pi*len(fas)+0])
		h1, e1 := measureHeavySync(results[pi*len(fas)+1])
		t.AddRow(string(p), fmt.Sprintf("%d", h0), fmt.Sprintf("%.0f", e0),
			fmt.Sprintf("%d", h1), fmt.Sprintf("%.0f", e1))
	}
	t.AddNote("paper: Lumiere performs an expected constant number of heavy syncs after GST; LP22/Basic one per epoch")
	return t
}

// ChaosResult is one protocol/condition point of the chaos table.
type ChaosResult struct {
	Protocol  Protocol
	Condition string
	F, N      int
	// SyncLatency is the view-synchronization latency under the
	// condition: first honest-leader decision after GST − GST.
	SyncLatency time.Duration
	Decisions   int
	Decided     bool
}

// chaosCondition is one named fault condition of the chaos table: a
// transform applied to the base chaos scenario.
type chaosCondition struct {
	name  string
	apply func(s *Scenario)
}

// chaosConditions lists the chaos table's columns, each a pre-GST fault
// regime the §2 model admits beyond pure delay. All heal at (or by
// shortly after) GST, so the measured quantity is how fast each
// protocol resynchronizes views once the model stabilizes.
var chaosConditions = []chaosCondition{
	{"partition-heal", func(s *Scenario) {
		// Split-brain: an island of f+1 processors is cut off until
		// GST, so no side holds a quorum of synchronized processors;
		// the clamp floods the withheld traffic back at GST+Δ.
		island := make([]types.NodeID, s.F+1)
		for i := range island {
			island[i] = types.NodeID(i)
		}
		s.Partitions = [][]types.NodeID{island}
	}},
	{"loss-40", func(s *Scenario) {
		// 40% of pre-GST traffic is lost (delivered at GST+Δ).
		s.Loss = 0.4
		s.LossUntil = s.GST
	}},
	{"dup-reorder", func(s *Scenario) {
		// Every third message is duplicated and delays jitter by up
		// to Δ, reordering traffic for the whole run.
		s.Duplication = 0.33
		s.ReorderJitter = s.Delta
	}},
	{"churn", func(s *Scenario) {
		// f processors crash and recover in staggered waves, the last
		// dip ending after GST.
		for i := 0; i < s.F; i++ {
			start := time.Duration(200+600*i) * time.Millisecond
			s.Corruptions = append(s.Corruptions, adversary.Churn(types.NodeID(i),
				adversary.Downtime{From: start, To: start + 500*time.Millisecond},
				adversary.Downtime{From: s.GST - 200*time.Millisecond, To: s.GST + 500*time.Millisecond},
			))
		}
	}},
}

// chaosScenario builds the chaos table's base scenario: GST = 2s, a
// fast post-GST network (δ = Δ/10), and the chosen condition applied
// pre-GST.
func chaosScenario(p Protocol, f, ci int, seed int64) Scenario {
	delta := 50 * time.Millisecond
	gst := 2 * time.Second
	gamma := gammaOf(p, delta)
	cond := chaosConditions[ci]
	s := Scenario{
		Name:        fmt.Sprintf("chaos-%s-%s-f%d", cond.name, p, f),
		Protocol:    p,
		F:           f,
		Delta:       delta,
		DeltaActual: delta / 10,
		GST:         gst,
		Duration:    gst + 30*time.Duration(f+1)*gamma,
		Seed:        seed,
	}
	cond.apply(&s)
	return s
}

// measureChaos extracts the post-GST view-synchronization latency.
func measureChaos(res *Result) ChaosResult {
	s := res.Scenario
	out := ChaosResult{Protocol: s.Protocol, F: s.F, N: res.Cfg.N, Decisions: res.DecisionCount()}
	if d, ok := res.Collector.FirstDecisionAfter(res.GST); ok {
		out.Decided = true
		out.SyncLatency = d.At.Sub(res.GST)
	}
	return out
}

// Chaos runs one chaos condition (by index into chaosConditions) for
// one protocol and size.
func Chaos(p Protocol, f, ci int, seed int64) ChaosResult {
	return ChaosIn(nil, p, f, ci, seed)
}

// ChaosIn is Chaos inside an execution arena: callers measuring many
// cells back to back (BenchmarkChaosTable) amortize the per-cell setup
// by threading one arena through. A nil arena runs standalone.
func ChaosIn(a *Arena, p Protocol, f, ci int, seed int64) ChaosResult {
	r := measureChaos(RunIn(a, chaosScenario(p, f, ci, seed)))
	r.Condition = chaosConditions[ci].name
	return r
}

// ChaosConditionNames lists the chaos table's conditions in column
// order.
func ChaosConditionNames() []string {
	out := make([]string, len(chaosConditions))
	for i, c := range chaosConditions {
		out[i] = c.name
	}
	return out
}

// ChaosTable renders the chaos comparison: every protocol's
// view-synchronization latency (first honest-leader decision after GST,
// in Δ) under partitions healing at GST, pre-GST loss, duplication with
// reordering, and crash-recovery churn.
func ChaosTable(f int, seed int64) *Table {
	return ChaosTableOpts(f, seed, SweepOptions{})
}

// ChaosTableOpts is ChaosTable with explicit sweep options: the
// protocol × condition matrix runs as one sweep with per-cell derived
// seeds, byte-identical at every worker count.
func ChaosTableOpts(f int, seed int64, opts SweepOptions) *Table {
	scenarios := make([]Scenario, 0, len(AllProtocols)*len(chaosConditions))
	for _, p := range AllProtocols {
		for ci := range chaosConditions {
			scenarios = append(scenarios, chaosScenario(p, f, ci, 0))
		}
	}
	opts.BaseSeed, opts.KeepSeeds = seed, false
	results := Sweep(scenarios, opts).Results()

	delta := 50 * time.Millisecond
	t := &Table{Title: fmt.Sprintf("Chaos: view-synchronization latency after GST (in Δ), n=%d, GST=2s", 3*f+1)}
	t.Header = []string{"protocol"}
	for _, c := range chaosConditions {
		t.Header = append(t.Header, c.name)
	}
	for pi, p := range AllProtocols {
		row := []string{string(p)}
		for ci := range chaosConditions {
			r := measureChaos(results[pi*len(chaosConditions)+ci])
			if !r.Decided {
				row = append(row, "stalled")
				continue
			}
			row = append(row, fmt.Sprintf("%.2fΔ", float64(r.SyncLatency)/float64(delta)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("conditions heal at GST: partition (f+1 isolated), 40%% pre-GST loss, 33%% duplication + Δ reorder jitter, f-node crash-recovery churn")
	t.AddNote("the §2 clamp floods withheld pre-GST traffic back at GST+Δ; latency is the first honest-leader decision after GST")
	return t
}

// GapShrinkageResult reports §3.5's two honest-gap trajectories under the
// desynchronization adversary:
//
//   - hg_{f+1} never exceeds Γ (clock bumps always carry f+1 honest
//     contributors — Lemma 5.9's invariant). MaxGapPre/MaxGapSteady and
//     the convergence fields track it.
//   - hg_{2f+1} is what the adversary can blow up before GST (the f
//     blocked laggards); §3.5's epoch-length and boundary-leader tuning
//     brings it back down after GST. MaxWideGapPre/MaxWideGapSteady track
//     it.
type GapShrinkageResult struct {
	Gamma            time.Duration
	MaxGapPre        time.Duration
	MaxGapSteady     time.Duration
	TimeToBelow      time.Duration
	Converged        bool
	MaxWideGapPre    time.Duration
	MaxWideGapSteady time.Duration
}

// GapShrinkage runs the gap-trajectory experiment under the
// desynchronization adversary: Byzantine-assisted QCs bump f+1 honest
// clocks an epoch ahead of the blocked laggards before GST, so
// hg_{f+1, GST} is huge; after GST the mechanisms of §3.5 must bring it
// below Γ and keep it there.
func GapShrinkage(f int, seed int64) GapShrinkageResult {
	s := desyncScenario(ProtoLumiere, f, seed)
	s.Name = "gap-shrinkage"
	s.SampleGaps = true
	res := Run(s)
	out := GapShrinkageResult{Gamma: res.Gamma}
	gstT := res.GST
	steadyFrom := gstT.Add(20 * res.Gamma)
	for _, smp := range res.Gaps.Samples() {
		g := res.Gaps.GapF1(smp)
		wide := res.Gaps.Gap2F1(smp)
		switch {
		case smp.At <= gstT:
			if g > out.MaxGapPre {
				out.MaxGapPre = g
			}
			if wide > out.MaxWideGapPre {
				out.MaxWideGapPre = wide
			}
		case smp.At > steadyFrom:
			if wide > out.MaxWideGapSteady {
				out.MaxWideGapSteady = wide
			}
		}
	}
	if at, ok := res.Gaps.FirstTimeGapF1Below(gstT, res.Gamma); ok {
		out.TimeToBelow = at.Sub(gstT)
		out.Converged = true
		out.MaxGapSteady = res.Gaps.MaxGapF1After(at.Add(10 * res.Gamma))
	}
	return out
}

// AdversarialSuccess runs §3.5's adversarial-success-criterion scenario:
// f Byzantine leaders propose late (ignoring the QC deadline) to keep the
// success criterion alive while degrading progress. Lumiere must still
// converge: honest leaders shrink the gap and decisions keep flowing.
func AdversarialSuccess(f int, seed int64) EventualResult {
	delta := 50 * time.Millisecond
	lag := 3 * delta
	corr := make([]adversary.Corruption, f)
	for i := range corr {
		corr[i] = adversary.Corruption{Node: types.NodeID(i), Behavior: adversary.BehaviorLateProposing, Lag: lag}
	}
	res := Run(Scenario{
		Name:        "adversarial-success",
		Protocol:    ProtoLumiere,
		F:           f,
		Delta:       delta,
		DeltaActual: delta / 10,
		Corruptions: corr,
		Duration:    240 * time.Second,
		Seed:        seed,
	})
	stats := res.Collector.Stats(types.Time(0).Add(60*time.Second), 5)
	return EventualResult{
		Protocol:  ProtoLumiere,
		F:         f,
		N:         res.Cfg.N,
		Fa:        f,
		MaxMsgs:   stats.MaxMsgs,
		MeanMsgs:  stats.MeanMsgs,
		MaxGap:    stats.MaxGap,
		MeanGap:   stats.MeanGap,
		Decisions: stats.Count,
		HeavySync: len(res.Collector.HeavySyncViews(types.Time(0).Add(60 * time.Second))),
	}
}

// DeltaWaitAblation compares heavy-sync counts with and without the Δ-wait
// before epoch-view messages (§3.5's final fix). The race it guards
// against — clocks reaching c_{V(e+1)} with the success-deciding QCs
// still in flight — needs clocks that advance by time rather than bumps
// near the boundary, so the scenario mixes heavy delay jitter with
// late-proposing Byzantine leaders whose QCs arrive at the last moment.
func DeltaWaitAblation(f int, seed int64) (withWait, withoutWait int) {
	delta := 100 * time.Millisecond
	corr := make([]adversary.Corruption, f)
	for i := range corr {
		corr[i] = adversary.Corruption{
			Node:     types.NodeID(3 * i),
			Behavior: adversary.BehaviorLateProposing,
			Lag:      5 * delta,
		}
	}
	scenario := func(disable bool) Scenario {
		return Scenario{
			Name:                 fmt.Sprintf("delta-wait-%v", disable),
			Protocol:             ProtoLumiere,
			F:                    f,
			Delta:                delta,
			Delay:                network.Uniform{Min: time.Millisecond, Max: delta},
			Corruptions:          corr,
			CoreDisableDeltaWait: disable,
			Duration:             240 * time.Second,
			Seed:                 seed,
		}
	}
	results := Sweep([]Scenario{scenario(false), scenario(true)}, SweepOptions{KeepSeeds: true}).Results()
	count := func(res *Result) int {
		return len(res.Collector.HeavySyncViews(types.Time(0).Add(30 * time.Second)))
	}
	return count(results[0]), count(results[1])
}
