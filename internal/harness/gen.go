package harness

import (
	"fmt"
	"math/rand"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/hotstuff"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// This file implements the scenario generator and conformance checker
// behind the cross-protocol conformance suite (conformance_test.go): a
// seeded source of random-but-reproducible executions, and the
// protocol-independent safety/liveness obligations every view
// synchronization protocol in AllProtocols must meet on them.

// GenScenario derives a random but fully reproducible scenario from seed:
// random fault count up to f, random corruption behaviors (crash,
// non-proposing, late-proposing, mid-run crash, crash-recovery churn;
// plus equivocation when the SMR stack is on), a random delay policy
// bounded by Δ, random GST, pre-GST chaos, staggered joins, a coin for
// running the full SMR stack, link conditions from the chaos axes on a
// second coin (partition, loss, duplication, reorder jitter, omission
// budget), when the fault budget has headroom an
// adaptive attack strategy (view-desync, leader-target, gst-straddle or
// complexity-saturate) on 1..f−f_a strategic processors, and in-model
// WAN axes on independent coins: a 2–3-region topology replacing the
// delay policy, per-node clock drift up to ±10⁴ ppm with skews inside
// ±Δ/4, and a single millisecond-scale straggler. The scenario's
// Protocol is left unset so callers can run the same generated
// adversary against every protocol; invariant checking is enabled.
//
// The generated space is sized for conformance sweeps: f ∈ {1, 2}
// (n ∈ {4, 7}), 60 virtual seconds, GST ≤ 2s — small enough that a sweep
// of dozens of cells stays fast, hard enough to exercise every
// view-synchronization mechanism (joins, bumps, epoch syncs, view-change
// stalls, partition heals, churn recoveries).
func GenScenario(seed int64) Scenario { return genScenario(seed, false) }

// GenChaosScenario is GenScenario with the link-condition axes always
// on: every generated scenario carries at least one of partition, loss,
// duplication, reorder jitter, or crash-recovery churn. The chaos
// conformance sweep (ChaosSweep) runs on this generator.
func GenChaosScenario(seed int64) Scenario { return genScenario(seed, true) }

func genScenario(seed int64, forceChaos bool) Scenario {
	rng := rand.New(rand.NewSource(seed))
	delta := 50 * time.Millisecond
	f := 1 + rng.Intn(2)
	n := 3*f + 1
	fa := rng.Intn(f + 1)
	smr := rng.Intn(4) == 0

	behaviors := []adversary.Behavior{
		adversary.BehaviorCrash,
		adversary.BehaviorNonProposing,
		adversary.BehaviorLateProposing,
		adversary.BehaviorCrashAt,
		adversary.BehaviorChurn,
	}
	if smr {
		// Equivocation needs the HotStuff engine.
		behaviors = append(behaviors, adversary.BehaviorEquivocating)
	}
	perm := rng.Perm(n)
	corr := make([]adversary.Corruption, 0, fa)
	for i := 0; i < fa; i++ {
		c := adversary.Corruption{
			Node:     types.NodeID(perm[i]),
			Behavior: behaviors[rng.Intn(len(behaviors))],
		}
		switch c.Behavior {
		case adversary.BehaviorLateProposing:
			c.Lag = time.Duration(1+rng.Intn(200)) * time.Millisecond
		case adversary.BehaviorCrashAt:
			c.At = time.Duration(5+rng.Intn(25)) * time.Second
		case adversary.BehaviorChurn:
			// 1-2 non-overlapping downtimes, all recovered by 30s so
			// the node rejoins well inside the liveness window.
			cursor := time.Duration(rng.Intn(5000)) * time.Millisecond
			downs := make([]adversary.Downtime, 1+rng.Intn(2))
			for j := range downs {
				from := cursor + time.Duration(rng.Intn(5000))*time.Millisecond
				to := from + time.Duration(200+rng.Intn(4000))*time.Millisecond
				downs[j] = adversary.Downtime{From: from, To: to}
				cursor = to + time.Duration(500+rng.Intn(2000))*time.Millisecond
			}
			c.Downs = downs
		}
		corr = append(corr, c)
	}

	var delay network.DelayPolicy
	switch rng.Intn(4) {
	case 0:
		// nil: the harness default Fixed{Δ/10}.
	case 1:
		delay = network.Fixed{D: delta / time.Duration(2+rng.Intn(20))}
	case 2:
		delay = network.Uniform{Min: time.Millisecond, Max: delta}
	case 3:
		delay = network.Uniform{Min: delta / 2, Max: delta}
	}

	gst := time.Duration(rng.Intn(3)) * time.Second
	s := Scenario{
		Name:            fmt.Sprintf("gen-%d", seed),
		F:               f,
		Delta:           delta,
		Delay:           delay,
		PreGSTChaos:     gst > 0 && rng.Intn(2) == 0,
		GST:             gst,
		StartStagger:    time.Duration(rng.Intn(500)) * time.Millisecond,
		Corruptions:     corr,
		Duration:        60 * time.Second,
		Seed:            seed,
		CheckInvariants: true,
	}
	if smr {
		s.SMR = true
		s.WorkloadRate = 100
		s.SMRTwoPhase = rng.Intn(2) == 0
	}

	// Link-condition axes. Each axis is drawn independently; forceChaos
	// (and a plain-GenScenario coin) guarantees at least one lands by
	// promoting the pick axis.
	if forceChaos || rng.Intn(2) == 0 {
		pick := rng.Intn(3)
		if pick == 0 || rng.Intn(3) == 0 {
			// Partition: isolate a random island of 1..f+1 processors
			// (drawn from the permutation tail, so it usually cuts off
			// honest processors). Heals at GST; when GST = 0 it heals
			// at 1s instead — the cross-partition drops degrade to
			// Δ-late deliveries, a legal post-GST condition.
			k := 1 + rng.Intn(f+1)
			island := make([]types.NodeID, k)
			for i := range island {
				island[i] = types.NodeID(perm[n-1-i])
			}
			s.Partitions = [][]types.NodeID{island}
			if gst == 0 {
				s.PartitionHeal = time.Second
			}
		}
		if pick == 1 || rng.Intn(3) == 0 {
			s.Loss = 0.1 + 0.4*rng.Float64()
			if rng.Intn(2) == 0 {
				// Loss heals at GST; at GST = 0 heal at 1s instead
				// (LossUntil 0 is Lossy's whole-run sentinel, the
				// opposite of healing).
				s.LossUntil = gst
				if gst == 0 {
					s.LossUntil = time.Second
				}
			}
			if rng.Intn(2) == 0 {
				// A bounded post-GST omission budget charged to a
				// single sender (≤ f), exercising true loss after
				// stabilization.
				s.OmissionBudget = network.OmissionBudget{
					MaxMessages: 10 + rng.Intn(90),
					MaxSenders:  1,
				}
			}
		}
		if pick == 2 || rng.Intn(3) == 0 {
			s.Duplication = 0.1 + 0.4*rng.Float64()
			if rng.Intn(2) == 0 {
				s.ReorderJitter = time.Duration(1+rng.Intn(int(delta/time.Millisecond))) * time.Millisecond
			}
		}
	}

	// Adaptive attack strategy. Drawn last so every earlier axis keeps
	// its seed-determined value; the strategy's processors are the
	// highest free IDs and charge against the same f budget as the
	// static corruptions, so the draw only fires when that budget has
	// headroom.
	if avail := f - fa; avail > 0 && rng.Intn(3) == 0 {
		names := adversary.AttackNames()
		s.Attack = adversary.AttackSpec{
			Name:  names[rng.Intn(len(names))],
			Nodes: 1 + rng.Intn(avail),
		}
		switch s.Attack.Name {
		case adversary.AttackViewDesync, adversary.AttackSaturate:
			s.Attack.Period = time.Duration(1+rng.Intn(20)) * delta
		case adversary.AttackLeaderTarget:
			s.Attack.K = 1 + rng.Intn(f)
		}
	}

	// WAN axes: regional topology, clock drift, stragglers. Drawn last
	// (after the attack axis) so every pre-existing corpus seed keeps
	// its earlier draws; values stay in-model (Scenario.Validate's
	// bounds without UncheckedWAN) so the §2 obligations still bind.
	if rng.Intn(3) == 0 {
		s.Topology = &network.Topology{
			Regions: splitRegions(n, 2+rng.Intn(2)),
			Intra:   time.Duration(1+rng.Intn(5)) * time.Millisecond,
			Inter:   time.Duration(10+rng.Intn(25)) * time.Millisecond,
			Jitter:  time.Duration(rng.Intn(10)) * time.Millisecond,
		}
		s.Delay = nil // the topology is the delay model
	}
	if rng.Intn(3) == 0 {
		ppm := make([]int64, n)
		skew := make([]time.Duration, n)
		for i := range ppm {
			// ±10k ppm: in-model for every Γ here (err ≤ Γ/100 ≪ Δ).
			ppm[i] = int64(rng.Intn(20_001)) - 10_000
			skew[i] = time.Duration(rng.Intn(int(delta/2))) - delta/4
		}
		s.DriftPPM, s.DriftSkew = ppm, skew
	}
	if rng.Intn(4) == 0 {
		pd := make([]time.Duration, n)
		pd[rng.Intn(n)] = time.Duration(1+rng.Intn(10)) * time.Millisecond
		s.ProcDelays = pd
	}
	return s
}

// ConformanceReport checks a finished run against the protocol-
// independent obligations of §2 and returns one message per violation
// (empty means the run conforms):
//
//   - the run completed within its event budget;
//   - no runtime invariant (Lemmas 5.1–5.3) was violated;
//   - liveness: an honest-leader decision occurs after GST, within a
//     generous synchronous bound;
//   - view synchronization: the honest processors' final views lie
//     within a bounded spread (crashed and Byzantine processors are
//     exempt);
//   - SMR safety (when the scenario ran the SMR stack): all honest
//     replicas' committed block sequences are prefix-consistent.
func ConformanceReport(res *Result) []string {
	byz := byzantineSet(res)
	var problems []string
	if res.Aborted {
		problems = append(problems, "execution aborted: event budget exhausted")
	}
	for _, v := range res.Violations {
		problems = append(problems, "invariant violation: "+v)
	}

	// Liveness after GST. The bound is deliberately loose: after GST a
	// synchronous system must decide within O(n·Γ) (every protocol here
	// resynchronizes in at most an epoch's worth of views). Long-horizon
	// runs (the red-team attack cells run 30(f+1)Γ past GST) get the
	// horizon minus one Γ instead: a worst-case composed adversary —
	// quorum-sized partition island, GST-straddling strategy, loss — can
	// legitimately push the first honest decision past a fixed 30s while
	// still deciding views before the run ends. The deadline only ever
	// loosens beyond 30s, never tightens below it.
	deadline := 30 * time.Second
	if horizon := res.Scenario.Duration - res.Scenario.GST; horizon-GammaOf(res.Scenario.Protocol, res.Scenario.Delta) > deadline {
		deadline = horizon - GammaOf(res.Scenario.Protocol, res.Scenario.Delta)
	}
	d, ok := res.Collector.FirstDecisionAfter(res.GST)
	if !ok {
		problems = append(problems, "liveness: no honest-leader decision after GST")
	} else if lat := d.At.Sub(res.GST); lat > deadline {
		problems = append(problems, fmt.Sprintf("liveness: first decision %v after GST (deadline %v)", lat, deadline))
	}

	// View synchronization: honest final views within a bounded spread.
	var minV, maxV types.View = 1 << 60, -1
	for i, v := range res.FinalViews {
		if byz[types.NodeID(i)] || v == types.NoView {
			continue
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 0 {
		problems = append(problems, "no honest replica reported a final view")
	} else if spread := maxV - minV; spread > types.View(30*res.Cfg.N+60) {
		problems = append(problems, fmt.Sprintf("view sync: honest final views spread %d wide ([%v, %v])", spread, minV, maxV))
	}

	if res.Scenario.SMR {
		problems = append(problems, smrConsistencyProblems(res)...)
	}
	return problems
}

// byzantineSet returns the corrupted processors of a run.
func byzantineSet(res *Result) map[types.NodeID]bool {
	byz := make(map[types.NodeID]bool, len(res.Scenario.Corruptions))
	for _, c := range res.Scenario.Corruptions {
		if c.Behavior != adversary.BehaviorHonest {
			byz[c.Node] = true
		}
	}
	return byz
}

// smrConsistencyProblems checks SMR safety: every pair of honest
// replicas' committed block sequences must be prefix-consistent.
func smrConsistencyProblems(res *Result) []string {
	byz := byzantineSet(res)
	var logs [][]hotstuff.Hash
	for i, e := range res.Engines {
		hs, ok := e.(*hotstuff.Core)
		if !ok || hs == nil || byz[types.NodeID(i)] {
			continue
		}
		logs = append(logs, hs.CommittedHashes())
	}
	if len(logs) == 0 {
		return []string{"smr: no honest hotstuff engines"}
	}
	minLen := len(logs[0])
	for _, l := range logs {
		if len(l) < minLen {
			minLen = len(l)
		}
	}
	for i := 1; i < len(logs); i++ {
		for j := 0; j < minLen; j++ {
			if logs[i][j] != logs[0][j] {
				return []string{fmt.Sprintf("smr: commit logs diverge at index %d", j)}
			}
		}
	}
	if minLen == 0 {
		return []string{"smr: an honest replica committed nothing"}
	}
	return nil
}
