package harness

import (
	"strings"
	"testing"
	"time"

	"lumiere/internal/network"
	"lumiere/internal/types"
)

// TestPresetTopologyValidates: every preset must validate by
// construction at any n and the standard Δ — the presets are the rows
// of a published table, so a preset that needs UncheckedWAN would be a
// bug.
func TestPresetTopologyValidates(t *testing.T) {
	for _, name := range WANPresets {
		for _, n := range []int{4, 7, 13, 40} {
			topo := PresetTopology(name, n, AttackDelta)
			if err := topo.Validate(n, AttackDelta); err != nil {
				t.Errorf("preset %q at n=%d: %v", name, n, err)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown preset did not panic")
		}
	}()
	PresetTopology("mars", 4, AttackDelta)
}

// TestWANScenariosValid: the WAN table's generated scenarios pass
// Validate — the same check run() enforces, asserted directly so a
// preset edit that breaks it fails here with the descriptive error.
func TestWANScenariosValid(t *testing.T) {
	for _, preset := range WANPresets {
		for _, p := range WANProtocols {
			for _, s := range []Scenario{wanSyncScenario(preset, p, 1, 1), wanSMRScenario(preset, p, 1, 1)} {
				if err := s.Validate(); err != nil {
					t.Errorf("%s: %v", s.Name, err)
				}
			}
		}
	}
	for _, p := range WANProtocols {
		for _, ppm := range DriftPPMAxis {
			if err := driftScenario(p, 1, ppm, 1).Validate(); err != nil {
				t.Errorf("drift %s ppm=%d: %v", p, ppm, err)
			}
		}
	}
}

// TestTopologyTableDeterministic pins the WAN table's byte-identity
// across worker counts: same seed, workers 1 vs 4, identical render.
func TestTopologyTableDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full WAN sweeps")
	}
	a := TopologyTableOpts(1, 424242, SweepOptions{Workers: 1}).Render()
	b := TopologyTableOpts(1, 424242, SweepOptions{Workers: 4}).Render()
	if a != b {
		t.Fatalf("WAN table differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", a, b)
	}
	for _, preset := range WANPresets {
		if !strings.Contains(a, preset) {
			t.Errorf("table missing preset row %q:\n%s", preset, a)
		}
	}
	if strings.Contains(a, "stalled") {
		t.Errorf("a WAN preset stalled a protocol — every preset is in-model:\n%s", a)
	}
}

// TestDriftConformanceInModel is the drift conformance gate: rates the
// harness accepts without UncheckedWAN must keep every Lemma 5.1–5.3
// obligation intact, for both compared protocols.
func TestDriftConformanceInModel(t *testing.T) {
	axis := []int64{0, 100, 10_000}
	if testing.Short() {
		axis = []int64{0, 10_000}
	}
	rep := DriftSweep(1, axis, 77, SweepOptions{})
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if !c.InModel {
			t.Errorf("%s ppm=%d: expected in-model", c.Protocol, c.PPM)
		}
		if !c.Decided {
			t.Errorf("%s ppm=%d: no decision after GST", c.Protocol, c.PPM)
		}
		for _, p := range c.Problems {
			t.Errorf("%s ppm=%d: %s", c.Protocol, c.PPM, p)
		}
	}
	if !rep.InModelClean() {
		t.Error("InModelClean() = false")
	}
}

// TestDriftToleranceDeterministic pins the drift table's byte-identity
// across worker counts on a two-point axis.
func TestDriftToleranceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two drift sweeps")
	}
	axis := []int64{0, 100_000}
	a := DriftSweep(1, axis, 7, SweepOptions{Workers: 1}).Table().Render()
	b := DriftSweep(1, axis, 7, SweepOptions{Workers: 4}).Table().Render()
	if a != b {
		t.Fatalf("drift table differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", a, b)
	}
}

// TestScenarioValidateWAN pins the scenario validation hardening: each
// malformed WAN axis is rejected with an error naming the problem, and
// UncheckedWAN waives exactly the in-model bounds, nothing else.
func TestScenarioValidateWAN(t *testing.T) {
	delta := 50 * time.Millisecond
	base := func() Scenario {
		return Scenario{Protocol: ProtoLumiere, F: 1, Delta: delta, Duration: time.Second}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"topology class past delta", func(s *Scenario) {
			s.Topology = &network.Topology{Regions: []int{2, 2}, Inter: 60 * time.Millisecond}
		}, "exceeds Δ=50ms"},
		{"topology wrong n", func(s *Scenario) {
			s.Topology = &network.Topology{Regions: []int{2, 3}, Inter: time.Millisecond}
		}, "scenario has n=4"},
		{"topology and delay", func(s *Scenario) {
			s.Topology = &network.Topology{Regions: []int{4}}
			s.Delay = network.Fixed{D: time.Millisecond}
		}, "the topology is the delay model"},
		{"partition out of range", func(s *Scenario) {
			s.Partitions = [][]types.NodeID{{0, 9}}
		}, "references processor 9"},
		{"drift past budget", func(s *Scenario) {
			s.DriftPPM = []int64{200_000} // Γ=10Δ: 200k ppm drifts 2Δ
		}, "set UncheckedWAN"},
		{"drift hard range", func(s *Scenario) {
			s.UncheckedWAN = true
			s.DriftPPM = []int64{600_000}
		}, "hard range"},
		{"skew past delta", func(s *Scenario) {
			s.DriftSkew = []time.Duration{60 * time.Millisecond}
		}, "exceeds Δ=50ms"},
		{"too many drift rates", func(s *Scenario) {
			s.DriftPPM = make([]int64, 9)
		}, "for n=4"},
		{"proc delay past delta", func(s *Scenario) {
			s.ProcDelays = []time.Duration{60 * time.Millisecond}
		}, "set UncheckedWAN"},
		{"negative proc delay", func(s *Scenario) {
			s.UncheckedWAN = true
			s.ProcDelays = []time.Duration{-time.Millisecond}
		}, "negative proc delay"},
		{"double proc delays", func(s *Scenario) {
			s.Topology = &network.Topology{Regions: []int{4}, ProcDelays: []time.Duration{time.Millisecond}}
			s.ProcDelays = []time.Duration{time.Millisecond}
		}, "both ProcDelays and Topology.ProcDelays"},
	}
	for _, c := range cases {
		if c.want == "" {
			continue
		}
		s := base()
		c.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}

	// Waivers: UncheckedWAN admits out-of-model drift and stragglers…
	s := base()
	s.UncheckedWAN = true
	s.DriftPPM = []int64{400_000}
	s.DriftSkew = []time.Duration{time.Second}
	s.ProcDelays = []time.Duration{time.Second}
	if err := s.Validate(); err != nil {
		t.Errorf("UncheckedWAN did not waive in-model bounds: %v", err)
	}
	// …but never a topology past Δ.
	s = base()
	s.UncheckedWAN = true
	s.Topology = &network.Topology{Regions: []int{4}, Intra: time.Hour}
	if err := s.Validate(); err == nil {
		t.Error("UncheckedWAN waived the topology Δ bound")
	}
}

// TestRunRejectsInvalidScenario: run refuses to execute a scenario that
// fails validation, panicking with the descriptive error rather than
// producing a silently-distorted table.
func TestRunRejectsInvalidScenario(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("run did not panic on an invalid scenario")
		}
		if !strings.Contains(r.(string), "exceeds Δ") {
			t.Fatalf("panic %q does not carry the validation error", r)
		}
	}()
	Run(Scenario{
		Protocol: ProtoLumiere,
		F:        1,
		Delta:    50 * time.Millisecond,
		Duration: time.Second,
		Topology: &network.Topology{Regions: []int{4}, Intra: time.Hour},
	})
}

// TestStragglerDelaysDelivery: a per-node processing delay shifts every
// delivery into the straggler without touching the network model — the
// run still decides, and the topology-free control matches the plain
// scenario.
func TestStragglerDelaysDelivery(t *testing.T) {
	s := Scenario{
		Protocol:   ProtoLumiere,
		F:          1,
		Delta:      50 * time.Millisecond,
		Duration:   20 * time.Second,
		Seed:       5,
		ProcDelays: []time.Duration{0, 0, 0, 40 * time.Millisecond},
	}
	res := Run(s)
	if d, ok := res.Collector.FirstDecisionAfter(res.GST); !ok {
		t.Fatal("straggler run never decided")
	} else if d.At == 0 {
		t.Fatal("decision at time zero")
	}
}
