package harness

import (
	"fmt"
	"testing"
)

// conformanceBaseSeed pins the generated conformance corpus; bump it to
// roll a fresh corpus.
const conformanceBaseSeed = 2024

// conformanceScenarios builds the generated corpus: count scenarios from
// GenScenario, cycled across every protocol in AllProtocols so each
// protocol faces several distinct adversaries.
func conformanceScenarios(count int) []Scenario {
	out := make([]Scenario, count)
	for i := range out {
		s := GenScenario(DeriveSeed(conformanceBaseSeed, i))
		s.Protocol = AllProtocols[i%len(AllProtocols)]
		s.Name = fmt.Sprintf("conf-%02d-%s", i, s.Protocol)
		out[i] = s
	}
	return out
}

// TestConformanceGenerated is the cross-protocol conformance suite: a
// sweep of generated scenarios (random corruption sets, delay policies,
// GST, stagger, SMR on/off) over every protocol in AllProtocols, each
// run checked against the protocol-independent obligations of §2 (no
// invariant violations, honest decisions after GST, bounded final-view
// spread, SMR prefix consistency).
func TestConformanceGenerated(t *testing.T) {
	t.Parallel()
	count := 24
	if testing.Short() {
		count = 8
	}
	sr := Sweep(conformanceScenarios(count), SweepOptions{KeepSeeds: true})
	for i := range sr.Cells {
		cell := &sr.Cells[i]
		t.Run(cell.Scenario.Name, func(t *testing.T) {
			for _, p := range ConformanceReport(cell.Result) {
				t.Error(p)
			}
			if t.Failed() {
				t.Logf("scenario: %+v", cell.Scenario)
			}
		})
	}
}

// TestGenScenarioDeterministic: the generator is a pure function of its
// seed, and distinct seeds explore distinct scenarios.
func TestGenScenarioDeterministic(t *testing.T) {
	t.Parallel()
	a, b := GenScenario(99), GenScenario(99)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("GenScenario not deterministic:\n%+v\n%+v", a, b)
	}
	distinct := make(map[string]bool)
	for seed := int64(0); seed < 50; seed++ {
		distinct[fmt.Sprintf("%+v", GenScenario(seed))] = true
	}
	if len(distinct) < 45 {
		t.Fatalf("generator collapsed: only %d distinct scenarios of 50 seeds", len(distinct))
	}
}
