package harness

import (
	"fmt"
	"strings"
	"testing"

	"lumiere/internal/adversary"
)

// conformanceBaseSeed pins the generated conformance corpus; bump it to
// roll a fresh corpus.
const conformanceBaseSeed = 2024

// conformanceScenarios builds the generated corpus: count scenarios from
// GenScenario, cycled across every protocol in AllProtocols so each
// protocol faces several distinct adversaries.
func conformanceScenarios(count int) []Scenario {
	out := make([]Scenario, count)
	for i := range out {
		s := GenScenario(DeriveSeed(conformanceBaseSeed, i))
		s.Protocol = AllProtocols[i%len(AllProtocols)]
		s.Name = fmt.Sprintf("conf-%02d-%s", i, s.Protocol)
		out[i] = s
	}
	return out
}

// TestConformanceGenerated is the cross-protocol conformance suite: a
// sweep of generated scenarios (random corruption sets including
// crash-recovery churn, adaptive attack strategies on the spare fault
// budget, delay policies, link conditions — partitions, loss,
// duplication, reorder jitter, omission budgets — GST, stagger, SMR
// on/off) over every protocol in AllProtocols, each run checked
// against the protocol-independent obligations of §2 (no invariant
// violations, honest decisions after GST, bounded final-view spread,
// SMR prefix consistency).
func TestConformanceGenerated(t *testing.T) {
	t.Parallel()
	count := 44
	if testing.Short() {
		count = 18
	}
	sr := Sweep(conformanceScenarios(count), SweepOptions{KeepSeeds: true})
	for i := range sr.Cells {
		cell := &sr.Cells[i]
		t.Run(cell.Scenario.Name, func(t *testing.T) {
			for _, p := range ConformanceReport(cell.Result) {
				t.Error(p)
			}
			if t.Failed() {
				t.Logf("scenario: %+v", cell.Scenario)
			}
		})
	}
}

// TestChaosConformanceSweep is the chaos arm of the conformance suite:
// every generated cell carries guaranteed link conditions (GenChaos-
// Scenario), every protocol must meet the §2 obligations on them, and
// the rendered report must be byte-identical at every worker count.
// This is also CI's -race chaos-smoke target.
func TestChaosConformanceSweep(t *testing.T) {
	t.Parallel()
	count := 22
	if testing.Short() {
		count = 8
	}
	serial := ChaosSweep(count, conformanceBaseSeed, SweepOptions{Workers: 1})
	parallel := ChaosSweep(count, conformanceBaseSeed, SweepOptions{})
	for _, c := range serial.Cells {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, p := range c.Problems {
				t.Error(p)
			}
			if t.Failed() {
				t.Logf("scenario: %+v", GenChaosScenario(c.Seed))
			}
		})
	}
	if a, b := serial.Table().Render(), parallel.Table().Render(); a != b {
		t.Errorf("chaos report differs between 1 and %d workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			parallel.Workers, a, b)
	}
	if !serial.Conformant() {
		t.Errorf("chaos sweep not conformant: %d problems", serial.Problems)
	}
}

// TestGenChaosScenarioAlwaysConditioned: the chaos generator guarantees
// at least one link-condition axis (or churn) on every draw.
func TestGenChaosScenarioAlwaysConditioned(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 200; seed++ {
		s := GenChaosScenario(seed)
		churn := false
		for _, c := range s.Corruptions {
			if c.Behavior == adversary.BehaviorChurn {
				churn = true
			}
		}
		if len(s.Partitions) == 0 && s.Loss == 0 && s.Duplication == 0 &&
			s.ReorderJitter == 0 && !churn {
			t.Fatalf("seed %d: no chaos axis drawn: %+v", seed, s)
		}
	}
}

// TestGenScenarioDrawsAttacks: the generator actually exercises the
// adaptive-attack axis — a healthy fraction of draws carries a
// strategy — and every drawn spec respects the model: a registered
// strategy name, and attack processors plus static corruptions within
// the f budget (the harness would panic past it).
func TestGenScenarioDrawsAttacks(t *testing.T) {
	t.Parallel()
	known := make(map[string]bool)
	for _, name := range adversary.AttackNames() {
		known[name] = true
	}
	attacks, byName := 0, make(map[string]int)
	for seed := int64(0); seed < 400; seed++ {
		s := GenScenario(seed)
		if !s.Attack.Enabled() {
			continue
		}
		attacks++
		byName[s.Attack.Name]++
		if !known[s.Attack.Name] {
			t.Fatalf("seed %d: unknown attack strategy %q", seed, s.Attack.Name)
		}
		if s.Attack.Nodes < 1 || s.Attack.Nodes+len(s.Corruptions) > s.F {
			t.Fatalf("seed %d: attack %s×%d plus %d corruptions exceeds f=%d",
				seed, s.Attack.Name, s.Attack.Nodes, len(s.Corruptions), s.F)
		}
	}
	if attacks < 40 {
		t.Fatalf("only %d of 400 generated scenarios draw an attack", attacks)
	}
	if len(byName) < len(known) {
		t.Errorf("only strategies %v drawn over 400 seeds, want all of %v", byName, adversary.AttackNames())
	}
}

// TestGenScenarioDrawsWANAxes: the generator exercises the WAN axes —
// topology, drift, stragglers each land on a healthy fraction of draws
// — and every draw stays in-model: Validate accepts it without
// UncheckedWAN.
func TestGenScenarioDrawsWANAxes(t *testing.T) {
	t.Parallel()
	topos, drifts, procs := 0, 0, 0
	for seed := int64(0); seed < 400; seed++ {
		s := GenScenario(seed)
		if s.UncheckedWAN {
			t.Fatalf("seed %d: generator drew UncheckedWAN", seed)
		}
		s.Protocol = AllProtocols[seed%int64(len(AllProtocols))]
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated scenario invalid: %v", seed, err)
		}
		if s.Topology != nil {
			topos++
		}
		if len(s.DriftPPM) > 0 {
			drifts++
		}
		if len(s.ProcDelays) > 0 {
			procs++
		}
	}
	if topos < 80 || drifts < 80 || procs < 50 {
		t.Fatalf("WAN axes underdrawn over 400 seeds: topology %d, drift %d, stragglers %d", topos, drifts, procs)
	}
}

// TestGenScenarioDeterministic: the generator is a pure function of its
// seed, and distinct seeds explore distinct scenarios.
func TestGenScenarioDeterministic(t *testing.T) {
	t.Parallel()
	// Scenario carries a *Topology, so %+v alone would print a pointer
	// address; append the dereferenced topology to get a value key.
	key := func(s Scenario) string {
		k := fmt.Sprintf("%+v", s)
		if s.Topology != nil {
			k += fmt.Sprintf(" topo=%+v", *s.Topology)
		}
		return k
	}
	a, b := GenScenario(99), GenScenario(99)
	ka, kb := key(a), key(b)
	if ak, bk := strings.ReplaceAll(ka, fmt.Sprintf("%p", a.Topology), "T"), strings.ReplaceAll(kb, fmt.Sprintf("%p", b.Topology), "T"); ak != bk {
		t.Fatalf("GenScenario not deterministic:\n%s\n%s", ak, bk)
	}
	distinct := make(map[string]bool)
	for seed := int64(0); seed < 50; seed++ {
		s := GenScenario(seed)
		k := key(s)
		if s.Topology != nil {
			k = strings.ReplaceAll(k, fmt.Sprintf("%p", s.Topology), "T")
		}
		distinct[k] = true
	}
	if len(distinct) < 45 {
		t.Fatalf("generator collapsed: only %d distinct scenarios of 50 seeds", len(distinct))
	}
}
