package harness

import (
	"lumiere/internal/crypto"
	"lumiere/internal/metrics"
	"lumiere/internal/network"
	"lumiere/internal/replica"
	"lumiere/internal/sim"
	"lumiere/internal/types"
	"lumiere/internal/workload"
)

// This file implements the cell-reuse execution arena: a per-worker
// bundle of the long-lived, Reset()-able layers one simulated execution
// needs — scheduler, network, metrics collector, crypto suite and
// replica shells. harness.Run constructs all of them from scratch per
// call; across the thousands of cells of a Table 1 / chaos / attack
// sweep that setup churn dominates allocation traffic. An Arena instead
// pays construction once per worker and rewinds the stack between cells
// (sim.Scheduler.Reset, network.Net.Reset, metrics.Collector.Reset,
// crypto.SimSuite.Reset, replica.Replica.Reset), so an N-cell sweep
// performs O(workers) constructions instead of O(N).
//
// Reuse is invisible in results: each layer's Reset restores the exact
// observable state of a fresh construction (only buffer capacities
// survive), all randomness re-derives from the cell seed, and every
// table is byte-identical with arenas on or off at any worker count
// (see arena_test.go). What a Result hands out for inspection —
// pacemakers, engines, state machines, the metrics Collector (detached
// as a Snapshot), tracers and gap trackers — is built fresh per cell
// and never recycled: the paid-per-cell rebind path for state that must
// outlive the cell.

// Arena owns one long-lived instance of each execution layer for serial
// reuse across scenario runs. The zero Arena is ready to use (layers are
// constructed lazily on first run); an Arena must not be shared between
// goroutines — sweeps thread one per worker.
type Arena struct {
	sched     *sim.Scheduler
	net       *network.Net
	collector *metrics.Collector
	suite     *crypto.SimSuite
	replicas  []*replica.Replica
	wl        *workload.Engine
}

// NewArena creates an empty execution arena. Layers are built on first
// use and recycled by every subsequent RunIn.
func NewArena() *Arena { return &Arena{} }

// RunIn executes a scenario inside the arena, recycling its layers, and
// returns a Result that is independent of the arena: the metrics
// Collector is detached as a snapshot, and the pacemakers, engines and
// state machines it exposes are per-cell constructions. The result is
// byte-identical to Run(s). A nil arena runs the scenario on a fresh
// one-shot arena, making RunIn(nil, s) equivalent to Run(s).
func RunIn(a *Arena, s Scenario) *Result {
	if a == nil {
		return Run(s)
	}
	return a.run(s, true)
}

// scheduler returns the arena's scheduler, reset for seed.
func (a *Arena) scheduler(seed int64) *sim.Scheduler {
	if a.sched == nil {
		a.sched = sim.New(seed)
	} else {
		a.sched.Reset(seed)
	}
	return a.sched
}

// network returns the arena's network, re-armed for the execution.
func (a *Arena) network(cfg types.Config, gst types.Time, link network.LinkPolicy) *network.Net {
	if a.net == nil {
		a.net = network.NewNetLink(a.sched, cfg, gst, link)
	} else {
		a.net.Reset(cfg, gst, link)
	}
	return a.net
}

// metricsCollector returns the arena's collector, reset with the given
// honesty classifier and options.
func (a *Arena) metricsCollector(honest func(types.NodeID) bool, opts ...metrics.Option) *metrics.Collector {
	if a.collector == nil {
		a.collector = metrics.NewCollector(honest, opts...)
	} else {
		a.collector.Reset(honest, opts...)
	}
	return a.collector
}

// simSuite returns the arena's crypto suite, re-keyed for the execution.
func (a *Arena) simSuite(n int, seed int64) *crypto.SimSuite {
	if a.suite == nil {
		a.suite = crypto.NewSimSuite(n, seed)
	} else {
		a.suite.Reset(n, seed)
	}
	return a.suite
}

// workloadEngine returns the arena's workload engine, reset for the
// configuration (record slice and payload storage are recycled).
func (a *Arena) workloadEngine(cfg workload.Config) *workload.Engine {
	if a.wl == nil {
		a.wl = workload.NewEngine(cfg)
	} else {
		a.wl.Reset(cfg)
	}
	return a.wl
}

// replicaSlots returns n reset replica shells, reusing prior ones.
func (a *Arena) replicaSlots(n int) []*replica.Replica {
	if cap(a.replicas) < n {
		grown := make([]*replica.Replica, len(a.replicas), n)
		copy(grown, a.replicas)
		a.replicas = grown
	}
	for len(a.replicas) < n {
		a.replicas = append(a.replicas, replica.New(types.NodeID(len(a.replicas)), nil, nil))
	}
	a.replicas = a.replicas[:n]
	for i, r := range a.replicas {
		r.Reset(types.NodeID(i))
	}
	return a.replicas
}
