package harness

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "long-header", "c"}}
	tb.AddRow("x", "1", "2")
	tb.AddRow("longer-cell", "3", "4")
	tb.AddNote("a note %d", 7)
	out := tb.Render()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "longer-cell") {
		t.Fatal("missing cells")
	}
	if !strings.Contains(out, "note: a note 7") {
		t.Fatal("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("x,y", `q"u`)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Fatalf("csv escaping: %q", csv)
	}
}

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{F: 1}.withDefaults()
	if s.Delta <= 0 || s.DeltaActual != s.Delta/10 || s.N != 4 || s.Duration <= 0 || s.Protocol != ProtoLumiere {
		t.Fatalf("defaults = %+v", s)
	}
	s2 := Scenario{F: 2, N: 8}.withDefaults()
	if s2.N != 8 {
		t.Fatal("explicit N overridden")
	}
}

func TestGammaOf(t *testing.T) {
	d := gammaOf(ProtoLumiere, 100)
	if d != 1000 {
		t.Fatalf("lumiere Γ = %v", d)
	}
	if gammaOf(ProtoFever, 100) != 800 || gammaOf(ProtoLP22, 100) != 400 {
		t.Fatal("baseline Γ wrong")
	}
}
