// Package viewcore implements the underlying view-based protocol assumed
// in §2 of the paper. It is the simplest protocol satisfying the two
// conditions the analysis needs:
//
//	(⋄1) with an honest leader, if 2f+1 honest processors stay in view v
//	     from time t ≥ GST, all honest processors receive a QC for v by
//	     t + xδ — here x = 3: the leader broadcasts a proposal (δ),
//	     processors in v vote (δ), the leader aggregates 2f+1 votes into
//	     a QC and broadcasts it (δ);
//
//	(⋄2) a QC for view v requires 2f+1 processors to act as if honest
//	     and in view v — votes are signed statements bound to v.
//
// It also implements Lumiere's leader discipline (§4): an honest leader
// only produces a QC for view v if it can do so by a deadline supplied by
// the pacemaker (Γ/2 − 2Δ after the leader started driving the view).
//
// For full SMR, internal/hotstuff provides a chained variant with the same
// pacemaker-facing surface.
package viewcore

import (
	"lumiere/internal/clock"
	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/quorum"
	"lumiere/internal/types"
)

// QCObserver is notified of QC events.
type QCObserver interface {
	// OnQCSeen fires the first time this node observes a QC for a view
	// (its own formation or a received certificate).
	OnQCSeen(qc *msg.QC, at types.Time)
	// OnQCProduced fires on the leader when it forms and broadcasts a
	// QC — the paper's "lead(v) produces a QC for view v" event that
	// defines consensus decisions for the complexity measures (§2).
	OnQCProduced(qc *msg.QC, at types.Time)
}

// Core is one processor's instance of the underlying protocol.
type Core struct {
	cfg    types.Config
	id     types.NodeID
	ep     network.Endpoint
	rt     clock.Runtime
	suite  crypto.Suite
	signer crypto.Signer
	leader func(types.View) types.NodeID
	onQC   func(qc *msg.QC) // routes observed QCs to the pacemaker
	obs    QCObserver

	view      types.View
	proposals map[types.View]*msg.Proposal
	voted     quorum.Flags
	seenQC    quorum.Flags

	leading  types.View
	deadline types.Time
	votes    quorum.VoteSet
	done     bool

	// stmt is the statement scratch: sign/verify statements are rebuilt
	// in place, so the vote and QC hot paths allocate no statement
	// buffers.
	stmt msg.StmtScratch
}

var _ pacemaker.Driver = (*Core)(nil)

// New creates a Core. leader is the pacemaker's schedule; onQC routes
// every newly observed QC back to the pacemaker (may be nil); obs receives
// QC events (may be nil).
func New(cfg types.Config, ep network.Endpoint, rt clock.Runtime, suite crypto.Suite,
	leader func(types.View) types.NodeID, onQC func(*msg.QC), obs QCObserver) *Core {
	return &Core{
		cfg:       cfg,
		id:        ep.ID(),
		ep:        ep,
		rt:        rt,
		suite:     suite,
		signer:    suite.SignerFor(ep.ID()),
		leader:    leader,
		onQC:      onQC,
		obs:       obs,
		view:      types.NoView,
		proposals: make(map[types.View]*msg.Proposal),
		leading:   types.NoView,
	}
}

// EnterView implements pacemaker.Driver: follower-side view entry.
func (c *Core) EnterView(v types.View) {
	if v <= c.view {
		return
	}
	c.view = v
	c.pruneBelow(v)
	if p, ok := c.proposals[v]; ok {
		c.voteFor(p)
	}
}

// LeaderStart implements pacemaker.Driver: broadcast the proposal for v
// and arm the QC deadline.
func (c *Core) LeaderStart(v types.View, qcDeadline types.Time) {
	if c.leader(v) != c.id || v < c.view || v <= c.leading {
		return
	}
	c.leading = v
	c.deadline = qcDeadline
	c.votes.Reset(c.cfg.N)
	c.done = false
	c.ep.Broadcast(&msg.Proposal{V: v, Leader: c.id})
}

// Handle processes proposals, votes and QC broadcasts.
func (c *Core) Handle(from types.NodeID, m msg.Message) {
	switch mm := m.(type) {
	case *msg.Proposal:
		c.handleProposal(from, mm)
	case *msg.Vote:
		c.handleVote(from, mm)
	case *msg.QC:
		c.observeQC(mm)
	}
}

func (c *Core) handleProposal(from types.NodeID, p *msg.Proposal) {
	if p.Leader != from || c.leader(p.V) != from {
		return // not from the view's leader
	}
	if p.V < c.view {
		return
	}
	if _, dup := c.proposals[p.V]; dup {
		return
	}
	c.proposals[p.V] = p
	if p.Justify != nil {
		c.observeQC(p.Justify)
	}
	if p.V == c.view {
		c.voteFor(p)
	}
}

func (c *Core) voteFor(p *msg.Proposal) {
	if c.voted.Has(p.V) {
		return
	}
	c.voted.Set(p.V)
	sig := c.signer.Sign(c.stmt.Vote(p.V, &p.Hash))
	c.ep.Send(p.Leader, &msg.Vote{V: p.V, BlockHash: p.Hash, Sig: sig})
}

func (c *Core) handleVote(from types.NodeID, v *msg.Vote) {
	if v.Sig.Signer != from || c.leading != v.V || c.done {
		return
	}
	if err := c.suite.Verify(c.stmt.Vote(v.V, &v.BlockHash), v.Sig); err != nil {
		return
	}
	c.votes.Add(v.Sig)
	if c.votes.Count() < c.cfg.Quorum() {
		return
	}
	// Lumiere's leader discipline: refrain from producing the QC past
	// the deadline (§4 "Initial and non-initial views").
	if c.rt.Now() > c.deadline {
		c.done = true
		return
	}
	agg, err := c.suite.Aggregate(c.stmt.Vote(v.V, &v.BlockHash), c.votes.Sigs())
	if err != nil {
		return
	}
	c.done = true
	qc := &msg.QC{V: v.V, BlockHash: v.BlockHash, Agg: agg}
	if c.obs != nil {
		c.obs.OnQCProduced(qc, c.rt.Now())
	}
	c.ep.Broadcast(qc)
}

// observeQC registers a (verified) QC exactly once and routes it upward.
// Views below the pruning bound stay forgotten: a QC that old cannot
// advance the pacemaker, so it is treated as already seen.
func (c *Core) observeQC(qc *msg.QC) {
	if qc.V < c.seenQC.Bound() || c.seenQC.Has(qc.V) {
		return
	}
	if err := c.suite.VerifyAggregate(c.stmt.Vote(qc.V, &qc.BlockHash), qc.Agg, c.cfg.Quorum()); err != nil {
		return
	}
	c.seenQC.Set(qc.V)
	if c.obs != nil {
		c.obs.OnQCSeen(qc, c.rt.Now())
	}
	if c.onQC != nil {
		c.onQC(qc)
	}
}

// pruneBelow drops per-view state older than v−2 to bound memory over
// long executions.
func (c *Core) pruneBelow(v types.View) {
	low := v - 2
	for w := range c.proposals {
		if w < low {
			delete(c.proposals, w)
		}
	}
	c.voted.ForgetBelow(low)
	c.seenQC.ForgetBelow(low - 2)
}
