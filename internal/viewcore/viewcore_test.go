package viewcore

import (
	"testing"
	"time"

	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// rig wires n view cores over a simulated network with round-robin
// leaders, without any pacemaker: tests drive EnterView/LeaderStart
// directly.
type rig struct {
	sched    *sim.Scheduler
	net      *network.Net
	cores    []*Core
	qcs      [][]types.View // QCs observed per node (via onQC)
	produced []types.View   // QCs produced (with leader identity implied)
	cfg      types.Config
}

type prodObs struct {
	r  *rig
	id types.NodeID
}

func (o prodObs) OnQCSeen(qc *msg.QC, _ types.Time)     {}
func (o prodObs) OnQCProduced(qc *msg.QC, _ types.Time) { o.r.produced = append(o.r.produced, qc.V) }

func newRig(t *testing.T, f int, delay time.Duration) *rig {
	t.Helper()
	cfg := types.NewConfig(f, 100*time.Millisecond)
	r := &rig{
		sched: sim.New(1),
		cfg:   cfg,
		qcs:   make([][]types.View, cfg.N),
	}
	r.net = network.NewNet(r.sched, cfg, 0, network.Fixed{D: delay})
	suite := crypto.NewSimSuite(cfg.N, 2)
	leader := func(v types.View) types.NodeID { return types.NodeID(v % types.View(cfg.N)) }
	r.cores = make([]*Core, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		var ep network.Endpoint
		ep = r.net.Attach(types.NodeID(i), network.HandlerFunc(func(from types.NodeID, m msg.Message) {
			r.cores[i].Handle(from, m)
		}))
		r.cores[i] = New(cfg, ep, r.sched, suite, leader,
			func(qc *msg.QC) { r.qcs[i] = append(r.qcs[i], qc.V) },
			prodObs{r: r, id: types.NodeID(i)})
	}
	return r
}

func (r *rig) enterAll(v types.View) {
	for _, c := range r.cores {
		c.EnterView(v)
	}
}

func TestViewCompletesWithinXDelta(t *testing.T) {
	delta := 10 * time.Millisecond
	r := newRig(t, 1, delta)
	r.enterAll(0)
	r.cores[0].LeaderStart(0, types.TimeInf)
	// (⋄1) with x = 3: all honest processors receive the QC within 3δ.
	r.sched.RunFor(3 * delta)
	for i, qcs := range r.qcs {
		if len(qcs) != 1 || qcs[0] != 0 {
			t.Fatalf("node %d observed %v, want [0] within 3δ", i, qcs)
		}
	}
	if len(r.produced) != 1 {
		t.Fatalf("produced = %v", r.produced)
	}
}

func TestQCRequiresQuorumInView(t *testing.T) {
	// (⋄2): if only 2f processors are in the view, no QC forms.
	r := newRig(t, 1, time.Millisecond)
	for i := 0; i < 2; i++ { // nodes 0,1 only (need 3 = 2f+1)
		r.cores[i].EnterView(0)
	}
	r.cores[0].LeaderStart(0, types.TimeInf)
	r.sched.RunFor(time.Second)
	if len(r.produced) != 0 {
		t.Fatal("QC formed without quorum in view")
	}
	// Third node enters late: QC forms then (its buffered proposal).
	r.cores[2].EnterView(0)
	r.sched.RunFor(time.Second)
	if len(r.produced) != 1 {
		t.Fatal("QC did not form after quorum assembled")
	}
}

func TestLeaderDeadlineEnforced(t *testing.T) {
	delta := 10 * time.Millisecond
	r := newRig(t, 1, delta)
	r.enterAll(0)
	// Deadline in the past relative to QC formation (votes arrive at
	// 2δ): the honest leader must refrain from producing the QC.
	r.cores[0].LeaderStart(0, r.sched.Now().Add(delta))
	r.sched.RunFor(time.Second)
	if len(r.produced) != 0 {
		t.Fatal("leader produced QC past its deadline")
	}
}

func TestNonLeaderProposalIgnored(t *testing.T) {
	r := newRig(t, 1, time.Millisecond)
	r.enterAll(0)
	// Node 1 is not the leader of view 0; its LeaderStart must no-op.
	r.cores[1].LeaderStart(0, types.TimeInf)
	r.sched.RunFor(time.Second)
	if len(r.produced) != 0 {
		t.Fatal("non-leader drove a view")
	}
}

func TestForgedProposalRejected(t *testing.T) {
	r := newRig(t, 1, time.Millisecond)
	r.enterAll(0)
	// A proposal claiming to be from the leader but sent by node 2.
	r.cores[1].Handle(2, &msg.Proposal{V: 0, Leader: 0})
	r.sched.RunFor(time.Second)
	if len(r.produced) != 0 {
		t.Fatal("forged proposal accepted")
	}
}

func TestVoteDeduplication(t *testing.T) {
	r := newRig(t, 1, time.Millisecond)
	cfg := r.cfg
	suite := crypto.NewSimSuite(cfg.N, 2)
	r.enterAll(0)
	r.cores[0].LeaderStart(0, types.TimeInf)
	// Replay node 1's vote many times before others vote: the leader
	// must not count it more than once. (Votes from 0,1 alone are 2 <
	// 2f+1 = 3.)
	var blockHash [32]byte
	sig := suite.SignerFor(1).Sign(msg.VoteStatement(0, blockHash))
	for i := 0; i < 10; i++ {
		r.cores[0].Handle(1, &msg.Vote{V: 0, BlockHash: blockHash, Sig: sig})
	}
	if len(r.produced) != 0 {
		t.Fatal("duplicate votes counted toward quorum")
	}
}

func TestChainedViewsProduceSequentialQCs(t *testing.T) {
	delta := time.Millisecond
	r := newRig(t, 1, delta)
	// Drive three views back to back; a trivial pacemaker chains
	// EnterView/LeaderStart off observed QCs.
	for i := range r.cores {
		i := i
		orig := r.qcs
		_ = orig
		core := r.cores[i]
		// Rewire onQC to advance the view.
		core.onQC = func(qc *msg.QC) {
			next := qc.V + 1
			if next > 2 {
				return
			}
			core.EnterView(next)
			core.LeaderStart(next, types.TimeInf)
		}
	}
	r.enterAll(0)
	r.cores[0].LeaderStart(0, types.TimeInf)
	r.sched.RunFor(time.Second)
	if len(r.produced) != 3 {
		t.Fatalf("produced = %v, want 3 chained QCs", r.produced)
	}
}

func TestStaleViewProposalIgnored(t *testing.T) {
	r := newRig(t, 1, time.Millisecond)
	r.enterAll(5)
	r.cores[0].Handle(0, &msg.Proposal{V: 0, Leader: 0})
	r.sched.RunFor(100 * time.Millisecond)
	if len(r.produced) != 0 {
		t.Fatal("stale proposal caused activity")
	}
}
