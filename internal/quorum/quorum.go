// Package quorum provides dense, allocation-recycling containers for the
// per-view bookkeeping every engine keeps: which processors contributed a
// vote toward a certificate (VoteSet: an n-bit set plus the signatures in
// arrival order) and which views have already been acted on (Flags: a
// windowed bitset over views). They replace the
// map[types.NodeID]crypto.Signature vote maps and map[types.View]bool
// seen/done maps of the original engines — at n=4096 a map per view
// costs rehashing and pointer-chasing per vote, while a VoteSet is one
// 64-word bit array plus a quorum-capped signature slice, both recycled
// across views through a free pool and across arena executions through
// the Reset contracts of DESIGN.md §4.
//
// Semantics are those of the maps they replace: VoteSet.Add dedups by
// signer, Flags.Has on a pruned view reads false (a deleted map entry),
// and certificate bytes are unchanged because crypto.Aggregate sorts
// component signatures by signer internally — arrival order in, same
// aggregate out.
package quorum

import (
	"fmt"
	"slices"

	"lumiere/internal/crypto"
	"lumiere/internal/types"
)

// ---------------------------------------------------------------------------
// VoteSet: one certificate's votes
// ---------------------------------------------------------------------------

// VoteSet accumulates one certificate's votes: an n-bit signer set for
// deduplication and the accepted signatures in arrival order. Engines
// stop feeding a set once it reaches quorum, so the signature slice's
// capacity is bounded by the threshold, not by n.
type VoteSet struct {
	words []uint64
	sigs  []crypto.Signature
}

// Reset clears the set and sizes the signer bitset for n processors.
func (v *VoteSet) Reset(n int) {
	w := (n + 63) / 64
	if cap(v.words) < w {
		v.words = make([]uint64, w)
	} else {
		v.words = v.words[:w]
		clear(v.words)
	}
	v.sigs = v.sigs[:0]
}

// Add records a vote, deduplicating by signer. It reports whether the
// vote was new.
func (v *VoteSet) Add(sig crypto.Signature) bool {
	i := int(sig.Signer)
	w, b := i>>6, uint64(1)<<uint(i&63)
	if v.words[w]&b != 0 {
		return false
	}
	v.words[w] |= b
	v.sigs = append(v.sigs, sig)
	return true
}

// Has reports whether a signer has already voted.
func (v *VoteSet) Has(id types.NodeID) bool {
	i := int(id)
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of distinct votes collected.
func (v *VoteSet) Count() int { return len(v.sigs) }

// Sigs returns the collected signatures in arrival order. The slice is
// owned by the set: valid until the next Reset, not to be mutated.
func (v *VoteSet) Sigs() []crypto.Signature { return v.sigs }

// ---------------------------------------------------------------------------
// VoteSets: per-view pool of VoteSets
// ---------------------------------------------------------------------------

// VoteSets is an engine's per-view vote storage: VoteSets materialize
// lazily on first vote (only collectors pay the n-bit array) and return
// to a free pool when their view is pruned, so a long execution touches
// a bounded working set no matter how many views it advances through.
type VoteSets struct {
	n    int
	live map[types.View]*VoteSet
	free []*VoteSet
}

// Reset recycles every live set into the pool and re-arms the container
// for n processors.
func (s *VoteSets) Reset(n int) {
	s.n = n
	if s.live == nil {
		s.live = make(map[types.View]*VoteSet)
	}
	for v, vs := range s.live {
		s.free = append(s.free, vs)
		delete(s.live, v)
	}
}

// Get returns the view's vote set, materializing an empty one on first
// use.
func (s *VoteSets) Get(v types.View) *VoteSet {
	if vs, ok := s.live[v]; ok {
		return vs
	}
	var vs *VoteSet
	if k := len(s.free); k > 0 {
		vs = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		vs = new(VoteSet)
	}
	vs.Reset(s.n)
	s.live[v] = vs
	return vs
}

// Peek returns the view's vote set or nil, without materializing one.
func (s *VoteSets) Peek(v types.View) *VoteSet { return s.live[v] }

// Drop recycles one view's set, if present.
func (s *VoteSets) Drop(v types.View) {
	if vs, ok := s.live[v]; ok {
		s.free = append(s.free, vs)
		delete(s.live, v)
	}
}

// DropBelow recycles every set for a view strictly below bound — the
// pruning sweep engines run as their view advances.
func (s *VoteSets) DropBelow(bound types.View) {
	for v, vs := range s.live {
		if v < bound {
			s.free = append(s.free, vs)
			delete(s.live, v)
		}
	}
}

// Live returns the number of materialized views (diagnostics/tests).
func (s *VoteSets) Live() int { return len(s.live) }

// ---------------------------------------------------------------------------
// Flags: windowed view bitset
// ---------------------------------------------------------------------------

// Flags is a set of views, stored as a bitset over a sliding window —
// the replacement for an engine's map[types.View]bool seen/done/sent
// maps. ForgetBelow plays the role of the pruning delete-loop: views
// below the bound read false, and the window storage compacts so memory
// tracks the live span (current view back to the prune bound), not the
// whole execution.
//
// Setting a view below the forget bound panics: the engines' guard
// clauses (stale-view early returns before every Set) make that
// unreachable, and a panic turns any missed guard into a loud failure
// instead of a silently lost write.
type Flags struct {
	base types.View // view of bit 0 of bits
	lo   types.View // forget bound; views below it read false
	bits []uint64
}

// Reset empties the set and rewinds the window to view 0.
func (f *Flags) Reset() {
	f.base, f.lo = 0, 0
	f.bits = f.bits[:0]
}

// Has reports whether v is in the set. Views below the forget bound or
// beyond the window read false.
func (f *Flags) Has(v types.View) bool {
	if v < f.base {
		return false
	}
	i := int(v - f.base)
	w := i >> 6
	if w >= len(f.bits) {
		return false
	}
	return f.bits[w]&(1<<uint(i&63)) != 0
}

// Set adds v to the set, growing the window as needed.
func (f *Flags) Set(v types.View) {
	if v < f.lo {
		panic(fmt.Sprintf("quorum: Flags.Set(%d) below forget bound %d", v, f.lo))
	}
	if len(f.bits) == 0 {
		// Re-anchor an empty window at the bound so a fully-compacted
		// set doesn't span back to an ancient base.
		f.base = f.lo
	}
	i := int(v - f.base)
	if w := i >> 6; w >= len(f.bits) {
		old := len(f.bits)
		f.bits = slices.Grow(f.bits, w+1-old)[:w+1]
		clear(f.bits[old:]) // truncation leaves stale words in capacity
	}
	f.bits[i>>6] |= 1 << uint(i&63)
}

// Bound returns the forget bound: the lowest view Set still accepts.
// Engines use it as the staleness guard before re-admitting state for a
// view — anything below the bound was pruned and stays forgotten.
func (f *Flags) Bound() types.View { return f.lo }

// ForgetBelow removes every view strictly below bound and compacts the
// window. Matches the engines' pruning delete-loops over view maps.
func (f *Flags) ForgetBelow(bound types.View) {
	if bound <= f.lo {
		return
	}
	hi := f.base + types.View(64*len(f.bits))
	clearTo := bound
	if clearTo > hi {
		clearTo = hi
	}
	for v := f.lo; v < clearTo; v++ {
		i := int(v - f.base)
		f.bits[i>>6] &^= 1 << uint(i&63)
	}
	f.lo = bound
	if k := int(f.lo-f.base) >> 6; k > 0 {
		if k >= len(f.bits) {
			f.bits = f.bits[:0]
			f.base = f.lo
		} else {
			copy(f.bits, f.bits[k:])
			f.bits = f.bits[:len(f.bits)-k]
			f.base += types.View(64 * k)
		}
	}
}
