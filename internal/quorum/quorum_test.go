package quorum

import (
	"math/rand"
	"testing"

	"lumiere/internal/crypto"
	"lumiere/internal/types"
)

func TestVoteSetDedup(t *testing.T) {
	var vs VoteSet
	vs.Reset(100)
	if !vs.Add(crypto.Signature{Signer: 7}) {
		t.Fatal("first add rejected")
	}
	if vs.Add(crypto.Signature{Signer: 7}) {
		t.Fatal("duplicate signer accepted")
	}
	if !vs.Add(crypto.Signature{Signer: 99}) {
		t.Fatal("distinct signer rejected")
	}
	if vs.Count() != 2 || !vs.Has(7) || !vs.Has(99) || vs.Has(8) {
		t.Fatalf("state: count=%d", vs.Count())
	}
	sigs := vs.Sigs()
	if len(sigs) != 2 || sigs[0].Signer != 7 || sigs[1].Signer != 99 {
		t.Fatalf("arrival order lost: %+v", sigs)
	}
	vs.Reset(100)
	if vs.Count() != 0 || vs.Has(7) {
		t.Fatal("Reset did not clear")
	}
}

func TestVoteSetResize(t *testing.T) {
	var vs VoteSet
	vs.Reset(4)
	vs.Add(crypto.Signature{Signer: 3})
	vs.Reset(4096)
	if vs.Has(3) {
		t.Fatal("stale bit after grow")
	}
	vs.Add(crypto.Signature{Signer: 4095})
	if !vs.Has(4095) || vs.Count() != 1 {
		t.Fatal("high signer lost")
	}
	vs.Reset(4) // shrink reuses capacity
	if vs.Count() != 0 {
		t.Fatal("shrink did not clear")
	}
}

func TestVoteSetsPoolRecycling(t *testing.T) {
	var s VoteSets
	s.Reset(64)
	s.Get(10).Add(crypto.Signature{Signer: 1})
	s.Get(11).Add(crypto.Signature{Signer: 2})
	s.Get(12)
	if s.Live() != 3 {
		t.Fatalf("live = %d", s.Live())
	}
	if s.Peek(13) != nil {
		t.Fatal("Peek materialized")
	}
	s.DropBelow(12)
	if s.Live() != 1 || s.Peek(10) != nil || s.Peek(12) == nil {
		t.Fatal("DropBelow wrong")
	}
	// Recycled sets come back empty.
	if got := s.Get(20); got.Count() != 0 {
		t.Fatalf("recycled set not cleared: %d votes", got.Count())
	}
	s.Reset(64)
	if s.Live() != 0 {
		t.Fatal("Reset left live sets")
	}
	if got := s.Get(10); got.Count() != 0 || got.Has(1) {
		t.Fatal("post-Reset set dirty")
	}
}

// TestFlagsMatchesMap drives the same randomized Set/Has/ForgetBelow
// trace through Flags and a plain map with delete-below pruning and
// requires identical answers.
func TestFlagsMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var f Flags
	f.Reset()
	m := map[types.View]bool{}
	var bound types.View
	for i := 0; i < 20000; i++ {
		switch rng.Intn(4) {
		case 0: // set near the live window
			v := bound + types.View(rng.Intn(300))
			f.Set(v)
			m[v] = true
		case 1, 2: // query anywhere, including pruned views
			v := types.View(rng.Intn(int(bound) + 400))
			if f.Has(v) != m[v] {
				t.Fatalf("step %d: Has(%d) = %v, map %v (bound %d)", i, v, f.Has(v), m[v], bound)
			}
		case 3: // advance the prune bound
			bound += types.View(rng.Intn(50))
			f.ForgetBelow(bound)
			for v := range m {
				if v < bound {
					delete(m, v)
				}
			}
		}
	}
}

func TestFlagsSetBelowBoundPanics(t *testing.T) {
	var f Flags
	f.Reset()
	f.Set(5)
	f.ForgetBelow(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Set below forget bound did not panic")
		}
	}()
	f.Set(9)
}

func TestFlagsLargeJumpCompacts(t *testing.T) {
	var f Flags
	f.Reset()
	f.Set(0)
	f.ForgetBelow(1 << 20)
	f.Set(1 << 20)
	if got := len(f.bits); got > 2 {
		t.Fatalf("window did not compact: %d words", got)
	}
	if !f.Has(1<<20) || f.Has(0) {
		t.Fatal("wrong contents after jump")
	}
}

// TestSteadyStateAllocFree: the per-view operations that replaced the
// engines' map allocations — viewcore.LeaderStart's vote-map make, the
// pacemakers' per-view vote maps and seen/done map inserts — are
// allocation-free once the containers have reached steady-state
// capacity.
func TestSteadyStateAllocFree(t *testing.T) {
	const n = 61
	sigs := make([]crypto.Signature, n)
	for i := range sigs {
		sigs[i] = crypto.Signature{Signer: types.NodeID(i)}
	}

	var vs VoteSet
	vs.Reset(n)
	if avg := testing.AllocsPerRun(1000, func() {
		vs.Reset(n)
		for _, s := range sigs[:2*n/3+1] {
			vs.Add(s)
		}
		_ = vs.Sigs()
	}); avg != 0 {
		t.Errorf("VoteSet view cycle allocates %.1f/op, want 0", avg)
	}

	var sets VoteSets
	sets.Reset(n)
	view := types.View(0)
	sets.Get(view) // materialize the pooled set once
	if avg := testing.AllocsPerRun(1000, func() {
		view += 2
		s := sets.Get(view)
		for _, sig := range sigs[:n/3+1] {
			s.Add(sig)
		}
		sets.DropBelow(view)
	}); avg != 0 {
		t.Errorf("VoteSets view cycle allocates %.1f/op, want 0", avg)
	}

	var f Flags
	f.Reset()
	v := types.View(64) // pre-grow the window past the warmup edge
	f.Set(v)
	if avg := testing.AllocsPerRun(1000, func() {
		v += 2
		if !f.Has(v) {
			f.Set(v)
		}
		f.ForgetBelow(v - 2)
	}); avg != 0 {
		t.Errorf("Flags view cycle allocates %.1f/op, want 0", avg)
	}
}
