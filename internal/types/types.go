// Package types holds the primitive identifiers and time arithmetic shared
// by every subsystem: node identifiers, views, epochs, and the virtual /
// monotonic timestamp used by both the discrete-event simulator and the
// real-time runtime.
//
// The conventions follow the paper ("Lumiere: Making Optimal BFT for
// Partial Synchrony Practical", PODC 2024): n = 3f+1 processors, views
// indexed by int64, epochs grouping views, and a local clock value lc(p)
// measured in nanoseconds.
package types

import (
	"fmt"
	"math"
	"time"
)

// NodeID identifies a processor. Valid IDs are 0..n-1.
type NodeID int32

// NoNode is the sentinel for "no processor".
const NoNode NodeID = -1

// String implements fmt.Stringer.
func (id NodeID) String() string { return fmt.Sprintf("p%d", int32(id)) }

// View is a view number of the underlying view-based protocol. Views start
// at 0; processors boot in view -1 (they have not entered any view yet).
type View int64

// NoView is the boot view of every processor, per Algorithm 1 line 3.
const NoView View = -1

// String implements fmt.Stringer.
func (v View) String() string { return fmt.Sprintf("v%d", int64(v)) }

// Initial reports whether the view is an initial view (even), per the
// Fever / Lumiere convention of §3.3-§4: leaders get two consecutive views
// (v, v+1) and only the even one is entered on a clock trigger.
func (v View) Initial() bool { return v >= 0 && v%2 == 0 }

// Epoch groups views. Processors boot in epoch -1 (Algorithm 1 line 4).
type Epoch int64

// NoEpoch is the boot epoch of every processor.
const NoEpoch Epoch = -1

// String implements fmt.Stringer.
func (e Epoch) String() string { return fmt.Sprintf("e%d", int64(e)) }

// Time is a timestamp in nanoseconds. Under the simulator it is virtual
// time since the start of the execution; under the real-time runtime it is
// monotonic nanoseconds since process start. Local clock values lc(p) use
// the same representation.
type Time int64

// TimeInf is the "never" timestamp, used for unset deadlines.
const TimeInf Time = math.MaxInt64

// Add returns the timestamp d after t, saturating at TimeInf.
func (t Time) Add(d time.Duration) Time {
	if t == TimeInf {
		return TimeInf
	}
	s := t + Time(d)
	if d > 0 && s < t { // overflow
		return TimeInf
	}
	return s
}

// Sub returns the duration t − u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts a timestamp interpreted as an elapsed interval.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String implements fmt.Stringer, formatting as a duration since start.
func (t Time) String() string {
	if t == TimeInf {
		return "∞"
	}
	return time.Duration(t).String()
}

// MinTime returns the smaller of two timestamps.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of two timestamps.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Config carries the execution-model parameters shared by every protocol.
type Config struct {
	// N is the number of processors; the paper assumes N = 3F+1.
	N int
	// F is the maximum number of Byzantine processors tolerated.
	F int
	// Delta is Δ, the known bound on message delay after GST.
	Delta time.Duration
	// X is the view-completion parameter of the underlying protocol
	// ((⋄1) of §2): with an honest leader and synchronized honest
	// processors, a view completes within X·δ. Our view core has X = 3.
	X int
}

// DefaultX is the view-completion parameter of the bundled view core:
// propose (δ) + vote (δ) + QC broadcast (δ).
const DefaultX = 3

// NewConfig returns a Config for n = 3f+1 processors with the given f and
// Δ, using the bundled view core's X.
func NewConfig(f int, delta time.Duration) Config {
	return Config{N: 3*f + 1, F: f, Delta: delta, X: DefaultX}
}

// Validate reports a descriptive error if the configuration is unusable.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("types: N must be positive, got %d", c.N)
	case c.F < 0:
		return fmt.Errorf("types: F must be non-negative, got %d", c.F)
	case c.N < 3*c.F+1:
		return fmt.Errorf("types: N=%d cannot tolerate F=%d Byzantine processors (need N ≥ 3F+1)", c.N, c.F)
	case c.Delta <= 0:
		return fmt.Errorf("types: Delta must be positive, got %v", c.Delta)
	case c.X < 2:
		return fmt.Errorf("types: X must be at least 2 (§2 ⋄1), got %d", c.X)
	}
	return nil
}

// Quorum returns the quorum size 2f+1.
func (c Config) Quorum() int { return 2*c.F + 1 }

// Majority returns f+1, the size guaranteeing at least one honest member.
func (c Config) Majority() int { return c.F + 1 }
