package types

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestViewInitial(t *testing.T) {
	cases := []struct {
		v    View
		want bool
	}{
		{NoView, false},
		{0, true},
		{1, false},
		{2, true},
		{3, false},
		{1 << 40, true},
		{1<<40 + 1, false},
	}
	for _, c := range cases {
		if got := c.v.Initial(); got != c.want {
			t.Errorf("View(%d).Initial() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTimeAdd(t *testing.T) {
	if got := Time(10).Add(5 * time.Nanosecond); got != 15 {
		t.Errorf("Add = %v, want 15", got)
	}
	if got := TimeInf.Add(time.Second); got != TimeInf {
		t.Errorf("TimeInf.Add = %v, want TimeInf", got)
	}
	if got := Time(math.MaxInt64 - 1).Add(time.Hour); got != TimeInf {
		t.Errorf("overflow Add = %v, want TimeInf", got)
	}
	if got := Time(100).Add(-30 * time.Nanosecond); got != 70 {
		t.Errorf("negative Add = %v, want 70", got)
	}
}

func TestTimeSub(t *testing.T) {
	if got := Time(100).Sub(Time(40)); got != 60*time.Nanosecond {
		t.Errorf("Sub = %v", got)
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Error("MinTime broken")
	}
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Error("MaxTime broken")
	}
}

func TestConfigValidate(t *testing.T) {
	good := NewConfig(3, 100*time.Millisecond)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.N != 10 || good.Quorum() != 7 || good.Majority() != 4 {
		t.Errorf("derived sizes wrong: n=%d q=%d m=%d", good.N, good.Quorum(), good.Majority())
	}
	bad := []Config{
		{N: 0, F: 0, Delta: time.Second, X: 3},
		{N: 4, F: -1, Delta: time.Second, X: 3},
		{N: 3, F: 1, Delta: time.Second, X: 3}, // n < 3f+1
		{N: 4, F: 1, Delta: 0, X: 3},           // no Delta
		{N: 4, F: 1, Delta: time.Second, X: 1}, // x < 2
		{N: 6, F: 2, Delta: time.Second, X: 3}, // n < 3f+1
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestTimeAddMonotoneQuick(t *testing.T) {
	// Property: Add of a non-negative duration never decreases a time.
	f := func(base int64, d int64) bool {
		if base < 0 {
			base = -base
		}
		if d < 0 {
			d = -d
		}
		tm := Time(base % (1 << 50))
		return tm.Add(time.Duration(d%(1<<50))) >= tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if NodeID(3).String() != "p3" {
		t.Error("NodeID stringer")
	}
	if View(7).String() != "v7" {
		t.Error("View stringer")
	}
	if Epoch(2).String() != "e2" {
		t.Error("Epoch stringer")
	}
	if TimeInf.String() != "∞" {
		t.Error("TimeInf stringer")
	}
}
