// Package replica assembles one processor: a pacemaker (the BVS protocol
// under study), the underlying view core that produces QCs, a local clock,
// and the message router between them. The same assembly runs over the
// simulator and over TCP.
package replica

import (
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/types"
)

// Engine is the underlying protocol a replica runs: the plain view core
// for pure view-synchronization experiments, or chained HotStuff for full
// SMR. It is driven by the pacemaker and consumes the consensus traffic.
type Engine interface {
	pacemaker.Driver
	Handle(from types.NodeID, m msg.Message)
}

// Replica is one processor.
type Replica struct {
	ID      types.NodeID
	PM      pacemaker.Pacemaker
	Core    Engine
	Crashed bool

	started bool
	pending []pendingMsg
}

type pendingMsg struct {
	from types.NodeID
	m    msg.Message
}

var _ network.Handler = (*Replica)(nil)

// New assembles a replica from its pacemaker and consensus engine.
func New(id types.NodeID, pm pacemaker.Pacemaker, core Engine) *Replica {
	return &Replica{ID: id, PM: pm, Core: core}
}

// Reset rewinds the replica shell for a fresh execution: identity is
// rebound, the pacemaker and engine slots are emptied (they are rebuilt
// per execution — Results hand them out for inspection, so they cannot
// be recycled), and the boot/crash state and the pre-join buffer are
// cleared. The pending-message backing storage is reused.
func (r *Replica) Reset(id types.NodeID) {
	r.ID = id
	r.PM = nil
	r.Core = nil
	r.Crashed = false
	r.started = false
	for i := range r.pending {
		r.pending[i] = pendingMsg{}
	}
	r.pending = r.pending[:0]
}

// Start boots the protocol and replays any messages that arrived before
// the processor joined (the model lets processors join at arbitrary times
// before GST; earlier messages are delivered at join).
func (r *Replica) Start() {
	if r.Crashed || r.started {
		return
	}
	r.started = true
	r.PM.Start()
	for _, p := range r.pending {
		r.route(p.from, p.m)
	}
	r.pending = nil
}

// Deliver implements network.Handler.
func (r *Replica) Deliver(from types.NodeID, m msg.Message) {
	if r.Crashed {
		return
	}
	if !r.started {
		r.pending = append(r.pending, pendingMsg{from: from, m: m})
		return
	}
	r.route(from, m)
}

// route dispatches by message kind: underlying-protocol traffic to the
// view core (which verifies QCs once and surfaces them to the pacemaker
// via its callback), everything else to the pacemaker.
func (r *Replica) route(from types.NodeID, m msg.Message) {
	switch m.Kind() {
	case msg.KindProposal, msg.KindVote, msg.KindQC, msg.KindBlockFetch, msg.KindBlockResp:
		r.Core.Handle(from, m)
	default:
		r.PM.Handle(from, m)
	}
}
