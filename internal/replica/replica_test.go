package replica

import (
	"testing"

	"lumiere/internal/msg"
	"lumiere/internal/pacemaker"
	"lumiere/internal/types"
)

type fakePM struct {
	started bool
	got     []msg.Kind
}

func (f *fakePM) Start()                               { f.started = true }
func (f *fakePM) CurrentView() types.View              { return 0 }
func (f *fakePM) CurrentEpoch() types.Epoch            { return 0 }
func (f *fakePM) Handle(_ types.NodeID, m msg.Message) { f.got = append(f.got, m.Kind()) }
func (f *fakePM) Leader(types.View) types.NodeID       { return 0 }

type fakeEngine struct {
	pacemaker.NopDriver
	got []msg.Kind
}

func (f *fakeEngine) Handle(_ types.NodeID, m msg.Message) { f.got = append(f.got, m.Kind()) }

func TestRoutingByKind(t *testing.T) {
	pm := &fakePM{}
	eng := &fakeEngine{}
	r := New(0, pm, eng)
	r.Start()
	if !pm.started {
		t.Fatal("pacemaker not started")
	}
	r.Deliver(1, &msg.Proposal{V: 1})
	r.Deliver(1, &msg.Vote{V: 1})
	r.Deliver(1, &msg.QC{V: 1})
	r.Deliver(1, &msg.ViewMsg{V: 2})
	r.Deliver(1, &msg.EC{V: 0})
	r.Deliver(1, &msg.Request{ID: 1})
	if len(eng.got) != 3 {
		t.Fatalf("engine got %v", eng.got)
	}
	// Requests route to the pacemaker by default kind dispatch… they
	// are not view-sync messages, but non-core kinds go to the PM.
	if len(pm.got) != 3 {
		t.Fatalf("pm got %v", pm.got)
	}
}

func TestBufferingBeforeStart(t *testing.T) {
	pm := &fakePM{}
	eng := &fakeEngine{}
	r := New(0, pm, eng)
	r.Deliver(1, &msg.QC{V: 1})
	r.Deliver(1, &msg.ViewMsg{V: 2})
	if len(pm.got)+len(eng.got) != 0 {
		t.Fatal("delivered before start")
	}
	r.Start()
	if len(eng.got) != 1 || len(pm.got) != 1 {
		t.Fatalf("replay wrong: eng=%v pm=%v", eng.got, pm.got)
	}
	r.Start() // idempotent
}

func TestCrashedIgnoresEverything(t *testing.T) {
	pm := &fakePM{}
	eng := &fakeEngine{}
	r := New(0, pm, eng)
	r.Crashed = true
	r.Start()
	r.Deliver(1, &msg.QC{V: 1})
	if pm.started || len(pm.got)+len(eng.got) != 0 {
		t.Fatal("crashed replica acted")
	}
}
