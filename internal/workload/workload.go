// Package workload simulates client populations driving the SMR layer:
// open-loop clients that offer an exact command rate regardless of system
// speed, and closed-loop clients that each keep one command in flight and
// submit the next only after the previous one commits.
//
// The package is runtime-agnostic: the Engine generates command payloads
// and tracks submit→commit bookkeeping, while the caller (the harness
// injector) owns scheduling and fan-out. Everything is deterministic —
// client identities derive from command indices by a splitmix64 hash, so
// populations of 10⁵–10⁷ logical clients cost O(commands injected)
// memory, not O(population).
//
// Pacing is accumulator-based: command i is due at ⌊(i+1)·10⁹/rate⌋ ns,
// so exactly `rate` commands are due in every whole second at any rate —
// unlike interval pacing (⌊10⁹/rate⌋ ns between commands), which drifts
// above the requested rate for non-divisor rates and degenerates once the
// truncated interval reaches zero.
//
// The command-generation hot path is allocation-pinned: payloads are
// bump-allocated from reusable 64 KiB blocks and per-command records live
// in one append-only slice, so a warm engine allocates only when a block
// or the record slice fills (amortized well under one allocation per
// command; see TestWorkloadAllocs).
package workload

import (
	"strconv"
	"time"
)

// IDBase offsets workload command IDs away from the ID space replicas
// use for locally submitted commands (hotstuff.Core.Submit derives IDs
// from the replica's node ID).
const IDBase = uint64(1) << 40

// Pacer schedules an exact offered load: command i (0-based) is due at
// elapsed time ⌊(i+1)·10⁹/rate⌋ ns. The schedule is exact in the sense
// that for every horizon T, exactly DueBy(rate, T) commands are due —
// ⌊rate·k⌋ after k whole seconds — with no accumulated drift and no
// degenerate clamp at high rates (rates above 10⁹/s simply share
// nanosecond timestamps). Rates up to ~10⁹/s are supported for runs up
// to ~9·10⁹ commands (int64 headroom).
type Pacer struct {
	rate int64
	i    int64
}

// NewPacer creates a pacer for rate commands per second (rate ≥ 1).
func NewPacer(rate int64) *Pacer {
	p := &Pacer{}
	p.Reset(rate)
	return p
}

// Reset re-arms the pacer from the start of the schedule.
func (p *Pacer) Reset(rate int64) {
	if rate < 1 {
		rate = 1
	}
	p.rate = rate
	p.i = 0
}

// NextAtNs returns the due time (elapsed ns) of the next command.
func (p *Pacer) NextAtNs() int64 { return (p.i + 1) * int64(time.Second) / p.rate }

// Take consumes the next command and returns its index.
func (p *Pacer) Take() int64 {
	i := p.i
	p.i++
	return i
}

// Taken returns the number of commands consumed so far.
func (p *Pacer) Taken() int64 { return p.i }

// DueBy returns how many commands of the schedule are due by elapsed
// time tNs: the count of i ≥ 0 with ⌊(i+1)·10⁹/rate⌋ ≤ tNs. The
// computation is decomposed to stay exact without 128-bit arithmetic.
func DueBy(rate, tNs int64) int64 {
	if rate < 1 || tNs < 0 {
		return 0
	}
	// count = ⌊((tNs+1)·rate − 1) / 10⁹⌋, from
	// ⌊m·10⁹/rate⌋ ≤ t ⟺ m·10⁹ < (t+1)·rate.
	const ns = int64(time.Second)
	a := tNs + 1
	hi, lo := a/ns, a%ns
	if lo == 0 {
		return hi*rate - 1
	}
	return hi*rate + (lo*rate-1)/ns
}

// Config describes a client population.
type Config struct {
	// Clients is the logical population size (default 1). Open-loop
	// commands are attributed to clients by hashing the command index,
	// so engine state does not grow with the population.
	Clients int64
	// Rate is the offered load in commands per second: the exact
	// injection rate for open-loop populations, and the initial ramp
	// rate at which closed-loop clients issue their first command.
	Rate int64
	// Closed selects closed-loop clients: each client keeps exactly one
	// command in flight and submits its next command when the previous
	// one commits (plus Think). The population is capped at the number
	// of clients the ramp has started.
	Closed bool
	// Think is the closed-loop delay between a client's commit and its
	// next submission (0 = immediate resubmission at commit time).
	Think time.Duration
	// PayloadPad appends this many filler bytes to every written
	// command, modelling application payload; the words accounting
	// charges proposals ⌈payload bytes/32⌉ words (msg.PayloadWords).
	PayloadPad int
	// Reads makes every odd-sequence closed-loop command a GET of the
	// client's own key instead of a SET, so a replay of the committed
	// stream asserts read-your-writes (a GET submitted only after the
	// client's SET committed must never see "not found").
	Reads bool
}

func (c Config) clients() int64 {
	if c.Clients < 1 {
		return 1
	}
	return c.Clients
}

// Commit describes the first commit of one command.
type Commit struct {
	// Latency is submit→first-commit in nanoseconds.
	Latency time.Duration
	// Client is the logical client that submitted the command; Seq is
	// the command's sequence number within that client (closed loop).
	Client int64
	Seq    int32
}

// cmdRec is the engine's per-command bookkeeping: one fixed-size record
// per injected command, appended in submission order (command ID =
// IDBase + record index).
type cmdRec struct {
	submitNs int64
	latNs    int64 // -1 until first commit
	client   int64
	seq      int32
}

const genBlockSize = 1 << 16

// Engine generates one execution's command stream. It is not safe for
// concurrent use: the simulator is single-threaded, and sweeps thread
// one engine per worker through the arena.
type Engine struct {
	cfg       Config
	pacer     Pacer
	recs      []cmdRec
	buf       []byte // current bump block for payload bytes
	off       int
	pad       []byte
	committed int64
}

// NewEngine creates an engine for one execution.
func NewEngine(cfg Config) *Engine {
	e := &Engine{}
	e.Reset(cfg)
	return e
}

// Reset re-arms the engine for a fresh execution, reusing the record
// slice and pad backing storage (the bump block is kept as-is: payload
// slices handed out earlier belong to the previous execution's blocks).
func (e *Engine) Reset(cfg Config) {
	e.cfg = cfg
	e.pacer.Reset(cfg.Rate)
	e.recs = e.recs[:0]
	e.buf = nil
	e.off = 0
	e.committed = 0
	if cap(e.pad) < cfg.PayloadPad {
		e.pad = make([]byte, cfg.PayloadPad)
		for i := range e.pad {
			e.pad[i] = 'x'
		}
	}
	e.pad = e.pad[:cfg.PayloadPad]
}

// Config returns the population configuration.
func (e *Engine) Config() Config { return e.cfg }

// NextDueNs returns the due time (elapsed ns) of the next paced
// submission: the open-loop schedule, or the closed-loop initial ramp.
func (e *Engine) NextDueNs() int64 { return e.pacer.NextAtNs() }

// RampDone reports whether a closed-loop population has issued every
// client's first command; paced submission stops there and all further
// traffic is commit-driven. Open-loop populations never finish.
func (e *Engine) RampDone() bool { return e.cfg.Closed && e.pacer.Taken() >= e.cfg.clients() }

// SubmitNext issues the next paced command at elapsed time nowNs and
// returns its ID and payload. The payload is bump-allocated and valid
// until the engine is Reset.
func (e *Engine) SubmitNext(nowNs int64) (uint64, []byte) {
	i := e.pacer.Take()
	client := i
	if !e.cfg.Closed {
		client = int64(splitmix64(uint64(i)) % uint64(e.cfg.clients()))
	}
	return e.submit(client, 0, nowNs)
}

// Resubmit issues the next command of a closed-loop client whose
// previous command (sequence seq-1) committed.
func (e *Engine) Resubmit(client int64, seq int32, nowNs int64) (uint64, []byte) {
	return e.submit(client, seq, nowNs)
}

func (e *Engine) submit(client int64, seq int32, nowNs int64) (uint64, []byte) {
	idx := int64(len(e.recs))
	e.recs = append(e.recs, cmdRec{submitNs: nowNs, latNs: -1, client: client, seq: seq})
	return IDBase + uint64(idx), e.gen(idx, client, seq)
}

// gen builds the command payload in the current bump block: GETs for
// odd-sequence read commands, SETs of the client's key otherwise.
func (e *Engine) gen(idx, client int64, seq int32) []byte {
	need := 8 + 20 + 20 + len(e.pad)
	if cap(e.buf)-e.off < need {
		n := genBlockSize
		if need > n {
			n = need
		}
		e.buf = make([]byte, n)
		e.off = 0
	}
	b := e.buf[e.off:e.off]
	if e.cfg.Reads && seq%2 == 1 {
		b = append(b, "GET c"...)
		b = strconv.AppendInt(b, client, 10)
	} else {
		b = append(b, "SET c"...)
		b = strconv.AppendInt(b, client, 10)
		b = append(b, ' ', 'v')
		b = strconv.AppendInt(b, idx, 10)
		b = append(b, e.pad...)
	}
	e.off += len(b)
	return b
}

// OnCommit records the commit of command id at elapsed time atNs and
// returns its first-commit event. Repeat commits (the same command
// committing on other replicas) and foreign IDs return ok = false.
func (e *Engine) OnCommit(id uint64, atNs int64) (Commit, bool) {
	if id < IDBase {
		return Commit{}, false
	}
	idx := id - IDBase
	if idx >= uint64(len(e.recs)) {
		return Commit{}, false
	}
	r := &e.recs[idx]
	if r.latNs >= 0 {
		return Commit{}, false
	}
	r.latNs = atNs - r.submitNs
	e.committed++
	return Commit{Latency: time.Duration(r.latNs), Client: r.client, Seq: r.seq}, true
}

// Submitted returns the number of commands issued so far.
func (e *Engine) Submitted() int64 { return int64(len(e.recs)) }

// Committed returns the number of commands whose first commit has been
// recorded.
func (e *Engine) Committed() int64 { return e.committed }

// Outstanding returns the number of in-flight commands.
func (e *Engine) Outstanding() int64 { return int64(len(e.recs)) - e.committed }

// splitmix64 is the finalizer of the splitmix64 generator — the same
// mix the sweep engine uses for per-cell seeds — here mapping command
// indices onto the client population.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
