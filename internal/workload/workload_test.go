package workload

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// TestPacerExactRate: regression for the truncating-interval injector.
// For every rate — divisor of 10⁹ or not — exactly `rate` commands are
// due in each whole second, with no drift and no clamp collapse.
func TestPacerExactRate(t *testing.T) {
	for _, rate := range []int64{1, 3, 7, 100, 999, 333333, 666667, 1_000_000, 50_000_000, 2_000_000_000} {
		p := NewPacer(rate)
		for sec := int64(1); sec <= 3; sec++ {
			horizon := sec * int64(time.Second)
			if rate > 10_000_000 {
				// Count analytically for huge rates. Commands due in
				// (0, horizon] — at sub-ns rates command 0 is due at t=0
				// and belongs to no whole second.
				if due := DueBy(rate, horizon) - DueBy(rate, 0); due != rate*sec {
					t.Fatalf("rate %d: DueBy(%ds) = %d, want %d", rate, sec, due, rate*sec)
				}
				continue
			}
			for p.NextAtNs() <= horizon {
				p.Take()
			}
			if p.Taken() != rate*sec {
				t.Fatalf("rate %d: %d commands due by %ds, want %d", rate, p.Taken(), sec, rate*sec)
			}
			if DueBy(rate, horizon) != rate*sec {
				t.Fatalf("rate %d: DueBy(%ds) = %d, want %d", rate, sec, DueBy(rate, horizon), rate*sec)
			}
		}
	}
}

// TestPacerBeatsTruncatedInterval demonstrates the fixed drift: at rate
// 666667 the legacy interval ⌊10⁹/rate⌋ = 1499 ns realizes ~667111
// commands per second — 444/s above the request — while the accumulator
// schedule stays exact.
func TestPacerBeatsTruncatedInterval(t *testing.T) {
	const rate = 666667
	interval := int64(time.Second) / rate // the old computation
	legacy := int64(time.Second) / interval
	if legacy == rate {
		t.Fatalf("test premise broken: interval pacing is exact at rate %d", rate)
	}
	if got := DueBy(rate, int64(time.Second)); got != rate {
		t.Fatalf("accumulator schedule: %d due in 1s, want %d", got, rate)
	}
	if legacy < rate+400 {
		t.Fatalf("legacy drift smaller than expected: %d", legacy)
	}
}

// TestPacerMatchesLegacyOnDivisorRates: for rates dividing 10⁹ the
// accumulator schedule reproduces the legacy interval schedule tick for
// tick, so existing divisor-rate scenarios are unchanged.
func TestPacerMatchesLegacyOnDivisorRates(t *testing.T) {
	for _, rate := range []int64{100, 200, 500, 1000} {
		p := NewPacer(rate)
		interval := int64(time.Second) / rate
		for i := int64(0); i < 3*rate; i++ {
			want := (i + 1) * interval
			if got := p.NextAtNs(); got != want {
				t.Fatalf("rate %d, command %d: due %d, legacy %d", rate, i, got, want)
			}
			p.Take()
		}
	}
}

func TestDueByEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		rate, t, want int64
	}{
		{100, 0, 0},
		{100, 9_999_999, 0},
		{100, 10_000_000, 1},
		{1, 999_999_999, 0},
		{1, 1_000_000_000, 1},
		{2_000_000_000, 0, 1}, // two commands per ns: index 0 due at t=0
		{2_000_000_000, 1, 3}, // ⌊(m)·1e9/2e9⌋ ≤ 1 ⟺ m ≤ 3
		{100, 3 * 1_000_000_000, 300},
		{0, 1_000_000_000, 0},
		{100, -5, 0},
	} {
		if got := DueBy(tc.rate, tc.t); got != tc.want {
			t.Errorf("DueBy(%d, %d) = %d, want %d", tc.rate, tc.t, got, tc.want)
		}
	}
}

// TestEngineOpenLoopDeterministic: two engines with the same config
// produce identical IDs and payloads.
func TestEngineOpenLoopDeterministic(t *testing.T) {
	cfg := Config{Clients: 1_000_000, Rate: 1000, PayloadPad: 16}
	a, b := NewEngine(cfg), NewEngine(cfg)
	for i := 0; i < 500; i++ {
		at := a.NextDueNs()
		idA, plA := a.SubmitNext(at)
		idB, plB := b.SubmitNext(at)
		if idA != idB || !bytes.Equal(plA, plB) {
			t.Fatalf("command %d diverges: %d %q vs %d %q", i, idA, plA, idB, plB)
		}
		if len(plA) < cfg.PayloadPad {
			t.Fatalf("payload shorter than pad: %q", plA)
		}
	}
}

// TestEngineCommitBookkeeping: first commit wins, repeats and foreign
// IDs are ignored, latency is submit→commit.
func TestEngineCommitBookkeeping(t *testing.T) {
	e := NewEngine(Config{Clients: 10, Rate: 100})
	id, _ := e.SubmitNext(5_000)
	if e.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", e.Outstanding())
	}
	c, ok := e.OnCommit(id, 25_000)
	if !ok || c.Latency != 20_000*time.Nanosecond {
		t.Fatalf("commit = %+v ok=%v", c, ok)
	}
	if _, ok := e.OnCommit(id, 30_000); ok {
		t.Fatal("duplicate commit recorded")
	}
	if _, ok := e.OnCommit(id+999, 30_000); ok {
		t.Fatal("unknown command committed")
	}
	if _, ok := e.OnCommit(7, 30_000); ok {
		t.Fatal("sub-IDBase command committed")
	}
	if e.Committed() != 1 || e.Outstanding() != 0 {
		t.Fatalf("committed=%d outstanding=%d", e.Committed(), e.Outstanding())
	}
}

// TestEngineClosedLoopRampAndResubmit: the ramp issues one command per
// client then stops; resubmitted read commands GET the client's own key.
func TestEngineClosedLoopRampAndResubmit(t *testing.T) {
	e := NewEngine(Config{Clients: 3, Rate: 100, Closed: true, Reads: true})
	var ids []uint64
	for !e.RampDone() {
		id, pl := e.SubmitNext(e.NextDueNs())
		ids = append(ids, id)
		want := fmt.Sprintf("SET c%d v%d", len(ids)-1, len(ids)-1)
		if string(pl) != want {
			t.Fatalf("ramp command %d = %q, want %q", len(ids)-1, pl, want)
		}
	}
	if len(ids) != 3 {
		t.Fatalf("ramp issued %d commands, want 3", len(ids))
	}
	c, ok := e.OnCommit(ids[1], 50_000_000)
	if !ok || c.Client != 1 || c.Seq != 0 {
		t.Fatalf("commit = %+v ok=%v", c, ok)
	}
	_, pl := e.Resubmit(c.Client, c.Seq+1, 50_000_000)
	if string(pl) != "GET c1" {
		t.Fatalf("odd-sequence resubmit = %q, want read of own key", pl)
	}
	c2, _ := e.OnCommit(IDBase+3, 60_000_000)
	_, pl2 := e.Resubmit(c2.Client, c2.Seq+1, 60_000_000)
	if string(pl2) != "SET c1 v4" {
		t.Fatalf("even-sequence resubmit = %q", pl2)
	}
}

// TestGenAllocs: the warm payload-generation path bump-allocates — well
// under one allocation per command (one 64 KiB block per ~700 commands
// at this payload size, plus amortized record growth).
func TestGenAllocs(t *testing.T) {
	e := NewEngine(Config{Clients: 1 << 20, Rate: 10_000, PayloadPad: 64})
	for i := 0; i < 10_000; i++ { // warm the record slice
		e.SubmitNext(e.NextDueNs())
	}
	const per = 1000
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < per; i++ {
			e.SubmitNext(e.NextDueNs())
		}
	})
	if avg/per > 0.25 {
		t.Fatalf("injection path allocates %.3f allocs/command, want < 0.25", avg/per)
	}
}

func TestEngineResetReusesStorage(t *testing.T) {
	cfg := Config{Clients: 100, Rate: 1000, PayloadPad: 8}
	e := NewEngine(cfg)
	for i := 0; i < 1000; i++ {
		e.SubmitNext(e.NextDueNs())
	}
	e.Reset(cfg)
	if e.Submitted() != 0 || e.Committed() != 0 || e.NextDueNs() != int64(time.Millisecond) {
		t.Fatalf("reset engine not fresh: submitted=%d due=%d", e.Submitted(), e.NextDueNs())
	}
	id, pl := e.SubmitNext(e.NextDueNs())
	if id != IDBase || len(pl) == 0 {
		t.Fatalf("post-reset first command: id=%d payload=%q", id, pl)
	}
}
