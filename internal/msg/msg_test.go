package msg

import (
	"bytes"
	"testing"

	"lumiere/internal/crypto"
	"lumiere/internal/types"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindView, KindVC, KindEpochView, KindEC, KindTC,
		KindProposal, KindVote, KindQC, KindWish, KindTimeout, KindNewView,
		KindRequest, KindBlockFetch, KindBlockResp}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad string %q", k, s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "Kind(200)" {
		t.Fatal("unknown kind string")
	}
}

func TestMessageViews(t *testing.T) {
	cases := []struct {
		m    Message
		kind Kind
		view types.View
	}{
		{&ViewMsg{V: 3}, KindView, 3},
		{&VC{V: 4}, KindVC, 4},
		{&EpochViewMsg{V: 5}, KindEpochView, 5},
		{&EC{V: 6}, KindEC, 6},
		{&TC{V: 7}, KindTC, 7},
		{&QC{V: 8}, KindQC, 8},
		{&Proposal{V: 9}, KindProposal, 9},
		{&Vote{V: 10}, KindVote, 10},
		{&NewView{V: 11}, KindNewView, 11},
		{&Wish{V: 12}, KindWish, 12},
		{&Timeout{V: 13}, KindTimeout, 13},
		{&Request{ID: 1}, KindRequest, 0},
		{&BlockFetch{}, KindBlockFetch, 0},
		{&BlockResp{Cert: &QC{V: 14}}, KindBlockResp, 14},
		{&BlockResp{}, KindBlockResp, 0},
	}
	for _, c := range cases {
		if c.m.Kind() != c.kind || c.m.View() != c.view {
			t.Errorf("%T: kind=%v view=%v", c.m, c.m.Kind(), c.m.View())
		}
	}
}

func TestStatementDomainsDisjoint(t *testing.T) {
	v := types.View(5)
	var h [32]byte
	stmts := [][]byte{
		ViewStatement(v),
		EpochViewStatement(v),
		WishStatement(v),
		TimeoutStatement(v),
		VoteStatement(v, h),
	}
	for i := range stmts {
		for j := i + 1; j < len(stmts); j++ {
			if bytes.Equal(stmts[i], stmts[j]) {
				t.Fatalf("statements %d and %d collide", i, j)
			}
		}
	}
}

func TestFromAccessors(t *testing.T) {
	sig := crypto.Signature{Signer: 7}
	if (&ViewMsg{Sig: sig}).From() != 7 {
		t.Fatal("ViewMsg.From")
	}
	if (&EpochViewMsg{Sig: sig}).From() != 7 {
		t.Fatal("EpochViewMsg.From")
	}
	if (&Vote{Sig: sig}).From() != 7 {
		t.Fatal("Vote.From")
	}
	if (&Wish{Sig: sig}).From() != 7 {
		t.Fatal("Wish.From")
	}
	if (&Timeout{Sig: sig}).From() != 7 {
		t.Fatal("Timeout.From")
	}
	if (&NewView{FromRaw: 7}).From() != 7 {
		t.Fatal("NewView.From")
	}
	if (&BlockFetch{FromRaw: 7}).From() != 7 {
		t.Fatal("BlockFetch.From")
	}
	if (&BlockResp{FromRaw: 7}).From() != 7 {
		t.Fatal("BlockResp.From")
	}
}

func TestKappaSizeConstantPerKind(t *testing.T) {
	// §2: every message is O(κ) — sizes are small constants and do not
	// depend on n or the payload the certificate aggregates.
	msgs := []Message{
		&ViewMsg{}, &VC{}, &EpochViewMsg{}, &EC{}, &TC{}, &QC{},
		&Proposal{}, &Vote{}, &NewView{}, &Wish{}, &Timeout{}, &Request{},
		&BlockFetch{}, &BlockResp{},
	}
	for _, m := range msgs {
		if k := KappaSize(m); k < 1 || k > 2 {
			t.Errorf("%T: κ = %d out of expected constant range", m, k)
		}
	}
}

func TestWordsModel(t *testing.T) {
	// Words is the documented per-kind model: small constants, never
	// below KappaSize (words charge the integers too), and sensitive
	// only to which certificates a message actually carries.
	for _, tc := range []struct {
		m    Message
		want int
	}{
		{&ViewMsg{}, 2}, {&EpochViewMsg{}, 2}, {&Wish{}, 2}, {&Timeout{}, 2},
		{&VC{}, 2}, {&EC{}, 2}, {&TC{}, 2},
		{&Vote{}, 3}, {&QC{}, 3},
		{&Proposal{}, 2}, {&Proposal{Justify: &QC{}}, 5},
		{&NewView{}, 1}, {&NewView{HighQC: &QC{}}, 4},
		{&Request{}, 2},
		{&BlockFetch{}, 2}, {&BlockResp{Cert: &QC{}}, 4},
	} {
		if got := Words(tc.m); got != tc.want {
			t.Errorf("Words(%T) = %d, want %d", tc.m, got, tc.want)
		}
		if got, k := Words(tc.m), KappaSize(tc.m); got < k {
			t.Errorf("Words(%T) = %d below KappaSize %d", tc.m, got, k)
		}
	}
}

func TestWordsChargePayloadBytes(t *testing.T) {
	// Data-plane bytes are charged at ⌈bytes/WordBytes⌉ on top of the
	// per-kind constant; view-synchronization kinds never carry payload
	// so the Table 1 accounting is untouched.
	for _, tc := range []struct {
		n, want int
	}{
		{0, 0}, {1, 1}, {31, 1}, {32, 1}, {33, 2}, {64, 2}, {1000, 32},
	} {
		if got := PayloadWords(tc.n); got != tc.want {
			t.Errorf("PayloadWords(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	p := &Proposal{Justify: &QC{}, Block: make([]byte, 100)}
	if got := Words(p); got != 5+4 {
		t.Errorf("Proposal with 100B payload = %d words, want 9", got)
	}
	r := &Request{Payload: make([]byte, 40)}
	if got := Words(r); got != 2+2 {
		t.Errorf("Request with 40B payload = %d words, want 4", got)
	}
}
