// Package msg defines every wire message exchanged by the view
// synchronization protocols and the underlying consensus. All messages are
// O(κ) in the paper's accounting: they carry at most a constant number of
// signatures, certificates and hashes.
package msg

import (
	"fmt"

	"lumiere/internal/crypto"
	"lumiere/internal/types"
)

// Kind discriminates message types.
type Kind uint8

// Message kinds. Enumeration starts at 1 so the zero value is invalid.
const (
	// KindView is a "view v" message: processor p's signed statement
	// that its clock reached c_v, sent to lead(v) (§4 line 30).
	KindView Kind = iota + 1
	// KindVC is a View Certificate: f+1 view-v messages combined by
	// lead(v) and broadcast (§4 lines 32-34).
	KindVC
	// KindEpochView is an "epoch view v" message broadcast when a
	// processor wishes to perform a heavy epoch synchronization.
	KindEpochView
	// KindEC is an Epoch Certificate: 2f+1 epoch-view-v messages.
	KindEC
	// KindTC is a (Lumiere) epoch Timeout Certificate: f+1
	// epoch-view-v messages (§3.5). Cogsworth and NK20 reuse it as
	// their view-entry certificate with protocol-specific thresholds.
	KindTC
	// KindProposal is the underlying protocol's leader proposal.
	KindProposal
	// KindVote is a vote on a proposal, sent to the leader.
	KindVote
	// KindQC carries a Quorum Certificate for a completed view.
	KindQC
	// KindWish is Cogsworth's view-synchronization wish, sent to an
	// aggregation leader.
	KindWish
	// KindTimeout is NK20's all-to-all view timeout message.
	KindTimeout
	// KindNewView carries a replica's highest QC to the next leader
	// (chained HotStuff).
	KindNewView
	// KindRequest is a client command submitted to the SMR layer.
	KindRequest
	// KindBlockFetch asks peers for a certified block by hash (chained
	// HotStuff catch-up after a crash: missed proposals are lost, so a
	// revived replica re-fetches the committed chain).
	KindBlockFetch
	// KindBlockResp answers a BlockFetch with the encoded block and the
	// QC certifying it.
	KindBlockResp
)

var kindNames = map[Kind]string{
	KindView:       "VIEW",
	KindVC:         "VC",
	KindEpochView:  "EPOCHVIEW",
	KindEC:         "EC",
	KindTC:         "TC",
	KindProposal:   "PROPOSAL",
	KindVote:       "VOTE",
	KindQC:         "QC",
	KindWish:       "WISH",
	KindTimeout:    "TIMEOUT",
	KindNewView:    "NEWVIEW",
	KindRequest:    "REQUEST",
	KindBlockFetch: "BLOCKFETCH",
	KindBlockResp:  "BLOCKRESP",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is the interface implemented by all wire messages.
type Message interface {
	// Kind returns the message discriminator.
	Kind() Kind
	// View returns the view the message refers to.
	View() types.View
}

// Domain tags for signed statements, keeping signature domains disjoint.
const (
	DomainView      = "lumiere/view"
	DomainEpochView = "lumiere/epochview"
	DomainVote      = "lumiere/vote"
	DomainWish      = "lumiere/wish"
	DomainTimeout   = "lumiere/timeout"
)

// ---------------------------------------------------------------------------
// View synchronization messages
// ---------------------------------------------------------------------------

// ViewMsg is the value v signed by From (§3.3, §4 line 30).
type ViewMsg struct {
	V   types.View
	Sig crypto.Signature
}

// Kind implements Message.
func (m *ViewMsg) Kind() Kind { return KindView }

// View implements Message.
func (m *ViewMsg) View() types.View { return m.V }

// From returns the sender recorded in the signature.
func (m *ViewMsg) From() types.NodeID { return m.Sig.Signer }

// ViewStatement is the byte string a ViewMsg signs.
func ViewStatement(v types.View) []byte { return crypto.Statement(DomainView, v, nil) }

// VC is a View Certificate for an initial view: f+1 view-v messages
// combined into a single threshold signature (§4 lines 32-34).
type VC struct {
	V   types.View
	Agg crypto.Aggregate
}

// Kind implements Message.
func (m *VC) Kind() Kind { return KindVC }

// View implements Message.
func (m *VC) View() types.View { return m.V }

// EpochViewMsg is an epoch view v message (§4 "Forming ECs").
type EpochViewMsg struct {
	V   types.View
	Sig crypto.Signature
}

// Kind implements Message.
func (m *EpochViewMsg) Kind() Kind { return KindEpochView }

// View implements Message.
func (m *EpochViewMsg) View() types.View { return m.V }

// From returns the sender recorded in the signature.
func (m *EpochViewMsg) From() types.NodeID { return m.Sig.Signer }

// EpochViewStatement is the byte string an EpochViewMsg signs.
func EpochViewStatement(v types.View) []byte { return crypto.Statement(DomainEpochView, v, nil) }

// EC is an Epoch Certificate: 2f+1 epoch-view-v messages (§4 "ECs and
// TCs"). Processors assemble it locally from broadcast EpochViewMsgs; it
// is also forwardable as a compact certificate.
type EC struct {
	V   types.View
	Agg crypto.Aggregate
}

// Kind implements Message.
func (m *EC) Kind() Kind { return KindEC }

// View implements Message.
func (m *EC) View() types.View { return m.V }

// TC is a Timeout Certificate: f+1 epoch-view-v messages for Lumiere's
// epoch views (§3.5); Cogsworth and NK20 reuse the type for their view
// certificates (with wish/timeout statements and their own thresholds).
type TC struct {
	V   types.View
	Agg crypto.Aggregate
}

// Kind implements Message.
func (m *TC) Kind() Kind { return KindTC }

// View implements Message.
func (m *TC) View() types.View { return m.V }

// Wish is Cogsworth's request to synchronize into view V, sent to an
// aggregation leader.
type Wish struct {
	V   types.View
	Sig crypto.Signature
}

// Kind implements Message.
func (m *Wish) Kind() Kind { return KindWish }

// View implements Message.
func (m *Wish) View() types.View { return m.V }

// From returns the sender recorded in the signature.
func (m *Wish) From() types.NodeID { return m.Sig.Signer }

// WishStatement is the byte string a Wish signs.
func WishStatement(v types.View) []byte { return crypto.Statement(DomainWish, v, nil) }

// Timeout is NK20's all-to-all view-synchronization message.
type Timeout struct {
	V   types.View
	Sig crypto.Signature
}

// Kind implements Message.
func (m *Timeout) Kind() Kind { return KindTimeout }

// View implements Message.
func (m *Timeout) View() types.View { return m.V }

// From returns the sender recorded in the signature.
func (m *Timeout) From() types.NodeID { return m.Sig.Signer }

// TimeoutStatement is the byte string a Timeout signs.
func TimeoutStatement(v types.View) []byte { return crypto.Statement(DomainTimeout, v, nil) }

// ---------------------------------------------------------------------------
// Underlying-protocol messages
// ---------------------------------------------------------------------------

// QC is a Quorum Certificate: 2f+1 votes testifying that view V completed
// (§2 "Quorum certificates"). BlockHash is zero for the plain view core
// and carries the certified block hash for chained HotStuff.
type QC struct {
	V         types.View
	BlockHash [32]byte
	Agg       crypto.Aggregate
}

// Kind implements Message.
func (m *QC) Kind() Kind { return KindQC }

// View implements Message.
func (m *QC) View() types.View { return m.V }

// VoteStatement is the byte string a Vote signs and a QC certifies.
func VoteStatement(v types.View, blockHash [32]byte) []byte {
	return crypto.Statement(DomainVote, v, blockHash[:])
}

// StmtScratch is a reusable statement buffer for the signing hot path:
// each method rebuilds the corresponding *Statement encoding in place
// and returns it, so engines that keep one StmtScratch per instance
// sign and verify without per-call statement allocations. The returned
// slice is valid until the next method call; none of its consumers
// (Suite.Sign/Verify/Aggregate/VerifyAggregate) retain it.
type StmtScratch struct{ buf []byte }

// View rebuilds ViewStatement(v) in the scratch.
func (s *StmtScratch) View(v types.View) []byte {
	s.buf = crypto.AppendStatement(s.buf[:0], DomainView, v, nil)
	return s.buf
}

// EpochView rebuilds EpochViewStatement(v) in the scratch.
func (s *StmtScratch) EpochView(v types.View) []byte {
	s.buf = crypto.AppendStatement(s.buf[:0], DomainEpochView, v, nil)
	return s.buf
}

// Wish rebuilds WishStatement(v) in the scratch.
func (s *StmtScratch) Wish(v types.View) []byte {
	s.buf = crypto.AppendStatement(s.buf[:0], DomainWish, v, nil)
	return s.buf
}

// Timeout rebuilds TimeoutStatement(v) in the scratch.
func (s *StmtScratch) Timeout(v types.View) []byte {
	s.buf = crypto.AppendStatement(s.buf[:0], DomainTimeout, v, nil)
	return s.buf
}

// Vote rebuilds VoteStatement(v, *blockHash) in the scratch.
func (s *StmtScratch) Vote(v types.View, blockHash *[32]byte) []byte {
	s.buf = crypto.AppendStatement(s.buf[:0], DomainVote, v, blockHash[:])
	return s.buf
}

// Proposal is the leader's per-view proposal. Justify is the QC the
// proposal extends (nil for the plain view core's first views). Block is
// the serialized block payload for HotStuff, nil for the plain view core.
type Proposal struct {
	V       types.View
	Leader  types.NodeID
	Justify *QC
	Block   []byte
	Hash    [32]byte
}

// Kind implements Message.
func (m *Proposal) Kind() Kind { return KindProposal }

// View implements Message.
func (m *Proposal) View() types.View { return m.V }

// Vote is a replica's vote on a proposal, sent to the leader.
type Vote struct {
	V         types.View
	BlockHash [32]byte
	Sig       crypto.Signature
}

// Kind implements Message.
func (m *Vote) Kind() Kind { return KindVote }

// View implements Message.
func (m *Vote) View() types.View { return m.V }

// From returns the sender recorded in the signature.
func (m *Vote) From() types.NodeID { return m.Sig.Signer }

// NewView carries a replica's highest QC to the leader of view V (chained
// HotStuff view changes).
type NewView struct {
	V       types.View
	HighQC  *QC
	FromRaw types.NodeID
}

// Kind implements Message.
func (m *NewView) Kind() Kind { return KindNewView }

// View implements Message.
func (m *NewView) View() types.View { return m.V }

// From returns the sender.
func (m *NewView) From() types.NodeID { return m.FromRaw }

// Request is a client command for the SMR layer.
type Request struct {
	ID      uint64
	Payload []byte
}

// Kind implements Message.
func (m *Request) Kind() Kind { return KindRequest }

// View implements Message; requests are view-independent.
func (m *Request) View() types.View { return 0 }

// BlockFetch asks peers for the certified block with hash H. Sent by a
// replica whose committed chain has a gap (it crashed while proposals
// were being delivered, and the simulator's crash model loses them).
type BlockFetch struct {
	H       [32]byte
	FromRaw types.NodeID
}

// Kind implements Message.
func (m *BlockFetch) Kind() Kind { return KindBlockFetch }

// View implements Message; fetches are view-independent.
func (m *BlockFetch) View() types.View { return 0 }

// From returns the sender.
func (m *BlockFetch) From() types.NodeID { return m.FromRaw }

// BlockResp answers a BlockFetch: Block is the canonical encoding of the
// requested block and Cert a QC certifying its hash, so the receiver can
// verify the response without trusting the sender. Only certified blocks
// are ever served.
type BlockResp struct {
	Block   []byte
	Cert    *QC
	FromRaw types.NodeID
}

// Kind implements Message.
func (m *BlockResp) Kind() Kind { return KindBlockResp }

// View implements Message: the view of the certifying QC.
func (m *BlockResp) View() types.View {
	if m.Cert == nil {
		return 0
	}
	return m.Cert.V
}

// From returns the sender.
func (m *BlockResp) From() types.NodeID { return m.FromRaw }

// Compile-time interface compliance checks.
var (
	_ Message = (*ViewMsg)(nil)
	_ Message = (*VC)(nil)
	_ Message = (*EpochViewMsg)(nil)
	_ Message = (*EC)(nil)
	_ Message = (*TC)(nil)
	_ Message = (*QC)(nil)
	_ Message = (*Proposal)(nil)
	_ Message = (*Vote)(nil)
	_ Message = (*NewView)(nil)
	_ Message = (*Wish)(nil)
	_ Message = (*Timeout)(nil)
	_ Message = (*Request)(nil)
	_ Message = (*BlockFetch)(nil)
	_ Message = (*BlockResp)(nil)
)

// KappaSize returns a message's size in units of the security parameter κ
// (§2: every message is O(κ), carrying a constant number of signatures,
// certificates and hashes). Payload bytes (block contents) are charged
// separately by callers; view synchronization itself never sends payload.
func KappaSize(m Message) int {
	switch m.(type) {
	case *ViewMsg, *EpochViewMsg, *Wish, *Timeout:
		return 1 // one signature
	case *VC, *EC, *TC, *QC:
		return 1 // one threshold signature
	case *Vote:
		return 1
	case *Proposal:
		return 2 // justify certificate + block hash
	case *NewView:
		return 1
	case *BlockFetch:
		return 1 // one hash
	case *BlockResp:
		return 2 // certificate + the hash it certifies
	default:
		return 1
	}
}

// WordBytes is the byte width of one accounting word: κ = 256 bits, the
// size of a hash, signature share, or threshold certificate under the §2
// assumptions. Payload bytes are charged at this granularity.
const WordBytes = 32

// PayloadWords converts a payload byte length into whole accounting
// words, rounding up (any non-empty payload costs at least one word).
func PayloadWords(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + WordBytes - 1) / WordBytes
}

// Words returns a message's size in words, the unit of the paper's
// communication-complexity accounting: one word holds a single κ-bit
// quantity — a view number, a signature, a threshold certificate (O(κ)
// by the §2 threshold-signature assumption), or a hash. Where KappaSize
// charges only the cryptographic material, Words also charges the
// bounded integers a message carries, so the measured word counts track
// the constants of Table 1 more closely.
//
// Messages that carry block payload (SMR Proposals and client Requests)
// are additionally charged ⌈len(payload)/WordBytes⌉ words, so the
// accounting separates the protocol's O(κ) view-synchronization traffic
// from the data plane it moves. View-synchronization messages themselves
// never carry payload, so Table 1 word counts are unaffected.
//
// The per-kind model:
//
//	ViewMsg/EpochViewMsg/Wish/Timeout  view + signature            = 2
//	VC/EC/TC                           view + threshold signature  = 2
//	Vote                               view + hash + signature     = 3
//	QC                                 view + hash + threshold sig = 3
//	Proposal                           view‖leader + hash [+ QC]   = 2 or 5, + ⌈|Block|/32⌉
//	NewView                            view‖sender [+ QC]          = 1 or 4
//	Request                            id + payload handle         = 2, + ⌈|Payload|/32⌉
//	BlockFetch                         hash + sender               = 2
//	BlockResp                          sender + QC                 = 4, + ⌈|Block|/32⌉
func Words(m Message) int {
	switch mm := m.(type) {
	case *ViewMsg, *EpochViewMsg, *Wish, *Timeout:
		return 2
	case *VC, *EC, *TC:
		return 2
	case *Vote:
		return 3
	case *QC:
		return 3
	case *Proposal:
		w := 2
		if mm.Justify != nil {
			w = 5
		}
		return w + PayloadWords(len(mm.Block))
	case *NewView:
		if mm.HighQC != nil {
			return 4
		}
		return 1
	case *Request:
		return 2 + PayloadWords(len(mm.Payload))
	case *BlockFetch:
		return 2
	case *BlockResp:
		return 4 + PayloadWords(len(mm.Block))
	default:
		return 1
	}
}
