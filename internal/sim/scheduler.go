// Package sim implements the deterministic discrete-event scheduler that
// underlies all laptop-scale executions. A single goroutine drains a
// priority queue of timestamped events; ties are broken by insertion
// order, and all randomness flows from one seeded source, so a given seed
// reproduces an execution exactly.
//
// The scheduler doubles as the protocol runtime (see clock.Runtime): the
// same protocol state machines run unmodified over real time in
// internal/nettcp.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"lumiere/internal/types"
)

// event is a scheduled callback.
type event struct {
	at       types.Time
	seq      uint64 // FIFO tiebreak for equal timestamps
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event loop. It is not safe for
// concurrent use: all protocol code runs on the single event loop.
type Scheduler struct {
	now    types.Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	inStep bool
}

// New creates a Scheduler with virtual time 0 and randomness from seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() types.Time { return s.now }

// Rand returns the execution's random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Events returns the number of events fired so far.
func (s *Scheduler) Events() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn at absolute virtual time t (clamped to now for past
// times) and returns a cancel function. Cancel is idempotent.
func (s *Scheduler) At(t types.Time, fn func()) func() {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < s.now {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return func() { ev.canceled = true }
}

// After schedules fn d from now and returns a cancel function. This
// implements clock.Runtime.
func (s *Scheduler) After(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step fires the next event, if any, advancing virtual time. It returns
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, ev.at))
		}
		s.now = ev.at
		s.fired++
		s.inStep = true
		ev.fn()
		s.inStep = false
		return true
	}
	return false
}

// RunUntil fires events until virtual time would exceed t, then sets the
// clock to t. Events scheduled exactly at t are fired.
func (s *Scheduler) RunUntil(t types.Time) {
	for len(s.queue) > 0 {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances virtual time by d, firing all events in the window.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Drain fires events until the queue empties or limit events have fired.
// It returns the number of events fired.
func (s *Scheduler) Drain(limit uint64) uint64 {
	var fired uint64
	for fired < limit && s.Step() {
		fired++
	}
	return fired
}

func (s *Scheduler) peek() *event {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&s.queue)
	}
	return nil
}
