// Package sim implements the deterministic discrete-event scheduler that
// underlies all laptop-scale executions. A single goroutine drains a
// priority queue of timestamped events; ties are broken by insertion
// order, and all randomness flows from one seeded source, so a given seed
// reproduces an execution exactly.
//
// The scheduler doubles as the protocol runtime (see clock.Runtime): the
// same protocol state machines run unmodified over real time in
// internal/nettcp.
//
// Events live in a pooled, index-addressed arena: the heap stores arena
// indices, freed slots are recycled through a free list, and cancels
// remove events from the heap immediately via the tracked heap position
// (guarded by a per-slot generation counter, so stale cancels are
// no-ops). Message deliveries are payload events — {from, to, msg}
// dispatched through the registered MsgSink — so the simulated send hot
// path performs no per-event allocation in steady state.
package sim

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"lumiere/internal/types"
)

// eventKind discriminates arena slots.
type eventKind uint8

const (
	kindFree  eventKind = iota // slot is on the free list
	kindFunc                   // callback event (timers, harness hooks)
	kindMsg                    // payload event dispatched through the sink
	kindMulti                  // multicast event: one heap entry, many recipients
)

// event is one arena slot. Slots are reused: gen increments every time a
// slot is freed, invalidating outstanding Timer handles.
type event struct {
	at   types.Time
	seq  uint64 // FIFO tiebreak for equal timestamps
	fn   func() // kindFunc only
	msg  any    // kindMsg and kindMulti
	from types.NodeID
	to   types.NodeID
	gen  uint32
	pos  int32 // heap position, -1 while free or being fired
	kind eventKind
	// recips is the recipient set of a kindMulti event, in delivery
	// order. The backing array stays with the slot across reuse, so a
	// steady stream of multicasts recycles recipient storage the same
	// way the arena recycles slots.
	recips []types.NodeID
}

// Timer identifies a scheduled callback for cancellation without
// allocating a closure. The zero Timer is inert.
type Timer struct {
	id  int32
	gen uint32
	set bool
}

// MsgSink consumes payload events when they fire. The simulated network
// registers itself here; m is the message value passed to SendAt.
type MsgSink func(from, to types.NodeID, m any)

// Scheduler is a deterministic discrete-event loop. It is not safe for
// concurrent use: all protocol code runs on the single event loop.
type Scheduler struct {
	now       types.Time
	arena     []event
	free      []int32 // indices of recycled arena slots
	heap      []int32 // min-heap of arena indices, ordered by (at, seq)
	seq       uint64
	rng       *rand.Rand
	fired     uint64
	scheduled uint64
	sink      MsgSink

	// mcPool is the stack of reusable multicast builders (depth > 1 only
	// when an observer reached from a build triggers a nested broadcast);
	// expand is the recipient scratch a firing multicast event is copied
	// into before its slot is released back to the arena.
	mcPool  []*Multicast
	mcDepth int
	expand  []types.NodeID
}

// New creates a Scheduler with virtual time 0 and randomness from seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Reset rewinds the scheduler for a fresh execution while recycling its
// event arena, free list and heap storage: virtual time, the insertion
// sequence and the fired counter return to zero, the random source is
// re-seeded, every arena slot is freed (dropping payload and closure
// references and invalidating outstanding Timer handles via the
// generation counters), and the registered MsgSink is kept — the arena's
// long-lived network re-binds per execution via its own Reset. A reset
// scheduler is observationally identical to New(seed); only the slice
// capacities (sized by the high-water mark of past executions) survive.
func (s *Scheduler) Reset(seed int64) {
	for i := range s.arena {
		ev := &s.arena[i]
		ev.fn = nil
		ev.msg = nil
		ev.recips = ev.recips[:0]
		ev.kind = kindFree
		ev.pos = -1
		ev.gen++
	}
	s.free = s.free[:0]
	// Refill the free list high-to-low so slots are handed out in
	// ascending order, matching a fresh scheduler's append order.
	for i := len(s.arena) - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.scheduled = 0
	s.mcDepth = 0
	s.rng.Seed(seed)
}

// Now returns the current virtual time.
func (s *Scheduler) Now() types.Time { return s.now }

// Rand returns the execution's random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Events returns the number of events fired so far. A multicast event
// counts once per recipient it expands to, so the tally matches what a
// per-recipient scheduler would have fired (run budgets and abort
// thresholds keep their meaning under the collapsed representation).
func (s *Scheduler) Events() uint64 { return s.fired }

// Scheduled returns the number of heap insertions so far. Unlike
// Events, a multicast counts once per *heap entry* — one per distinct
// delivery time — so the gap between Scheduled and Events measures how
// much the multicast representation collapses broadcast fan-out.
func (s *Scheduler) Scheduled() uint64 { return s.scheduled }

// Pending returns the number of events currently scheduled (heap
// entries: a multicast to any number of recipients counts once).
// Cancelled events leave the heap immediately and are not counted.
func (s *Scheduler) Pending() int { return len(s.heap) }

// SetSink registers the consumer of payload events (see SendAt). The
// simulated network owns the sink; a scheduler carries exactly one for
// its lifetime, and a second registration panics — silently replacing
// the sink would cross-wire deliveries already in the heap.
func (s *Scheduler) SetSink(sink MsgSink) {
	if s.sink != nil {
		panic("sim: MsgSink already registered (one network per scheduler)")
	}
	s.sink = sink
}

// ---------------------------------------------------------------------------
// Arena + heap internals
// ---------------------------------------------------------------------------

func (s *Scheduler) less(a, b int32) bool {
	ea, eb := &s.arena[a], &s.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.arena[s.heap[i]].pos = int32(i)
	s.arena[s.heap[j]].pos = int32(j)
}

func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scheduler) down(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && s.less(s.heap[right], s.heap[left]) {
			min = right
		}
		if !s.less(s.heap[min], s.heap[i]) {
			return
		}
		s.swap(i, min)
		i = min
	}
}

// alloc grabs an arena slot, recycling from the free list first.
func (s *Scheduler) alloc() int32 {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id
	}
	s.arena = append(s.arena, event{pos: -1})
	return int32(len(s.arena) - 1)
}

// release returns a slot to the free list, dropping payload references so
// the arena never pins dead messages or closures, and bumping gen so
// outstanding cancel handles become stale.
func (s *Scheduler) release(id int32) {
	ev := &s.arena[id]
	ev.fn = nil
	ev.msg = nil
	ev.recips = ev.recips[:0]
	ev.kind = kindFree
	ev.pos = -1
	ev.gen++
	s.free = append(s.free, id)
}

// push inserts a filled slot into the heap.
func (s *Scheduler) push(id int32) {
	s.scheduled++
	s.arena[id].pos = int32(len(s.heap))
	s.heap = append(s.heap, id)
	s.up(len(s.heap) - 1)
}

// popMin removes and returns the earliest event's slot.
func (s *Scheduler) popMin() int32 {
	id := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.arena[s.heap[0]].pos = 0
	s.heap = s.heap[:last]
	if last > 0 {
		s.down(0)
	}
	s.arena[id].pos = -1
	return id
}

// removeAt deletes the event at heap position i, restoring heap order.
func (s *Scheduler) removeAt(i int) {
	last := len(s.heap) - 1
	id := s.heap[i]
	if i != last {
		s.heap[i] = s.heap[last]
		s.arena[s.heap[i]].pos = int32(i)
	}
	s.heap = s.heap[:last]
	if i < last {
		s.down(i)
		s.up(i)
	}
	s.arena[id].pos = -1
}

// schedule fills a slot shared by all scheduling entry points.
func (s *Scheduler) schedule(t types.Time) (int32, *event) {
	if t < s.now {
		t = s.now
	}
	id := s.alloc()
	ev := &s.arena[id]
	ev.at = t
	ev.seq = s.seq
	s.seq++
	s.push(id)
	return id, ev
}

// ---------------------------------------------------------------------------
// Scheduling API
// ---------------------------------------------------------------------------

// AtTimer schedules fn at absolute virtual time t (clamped to now for
// past times) and returns a Timer handle for Cancel. Unlike At, it
// allocates nothing beyond amortized arena growth.
func (s *Scheduler) AtTimer(t types.Time, fn func()) Timer {
	if fn == nil {
		panic("sim: nil event function")
	}
	id, ev := s.schedule(t)
	ev.fn = fn
	ev.kind = kindFunc
	return Timer{id: id, gen: ev.gen, set: true}
}

// Cancel removes a scheduled event from the heap immediately. Stale
// handles (already fired, already cancelled, or zero) are no-ops.
func (s *Scheduler) Cancel(tm Timer) {
	if !tm.set || int(tm.id) >= len(s.arena) {
		return
	}
	ev := &s.arena[tm.id]
	if ev.gen != tm.gen || ev.pos < 0 {
		return
	}
	s.removeAt(int(ev.pos))
	s.release(tm.id)
}

// At schedules fn at absolute virtual time t (clamped to now for past
// times) and returns a cancel function. Cancel is idempotent and removes
// the event from the heap immediately. The returned closure is the only
// allocation; use AtTimer/Cancel on allocation-sensitive paths.
func (s *Scheduler) At(t types.Time, fn func()) func() {
	tm := s.AtTimer(t, fn)
	return func() { s.Cancel(tm) }
}

// After schedules fn d from now and returns a cancel function. This
// implements clock.Runtime.
func (s *Scheduler) After(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// SendAt schedules delivery of a payload event {from, to, m} at absolute
// virtual time t (clamped to now) through the registered sink. This is
// the zero-allocation message hot path: no closure, no cancel handle, no
// per-event heap object.
func (s *Scheduler) SendAt(t types.Time, from, to types.NodeID, m any) {
	if s.sink == nil {
		panic("sim: SendAt with no registered MsgSink")
	}
	_, ev := s.schedule(t)
	ev.from = from
	ev.to = to
	ev.msg = m
	ev.kind = kindMsg
}

// ---------------------------------------------------------------------------
// Multicast events
// ---------------------------------------------------------------------------

// mcEntry is one recipient of a multicast under construction.
type mcEntry struct {
	to types.NodeID
	at types.Time
}

// mcMaxTracked bounds the distinct delivery times tracked inline during
// Add. Up to this many, Commit groups entries with a linear scan (the
// no-chaos case has 1-2 distinct times); beyond it, Commit falls back to
// a stable sort of the entries.
const mcMaxTracked = 16

// Multicast accumulates the per-recipient delivery times of one logical
// broadcast and commits them as one heap event per *distinct* delivery
// time instead of one per recipient. Within a shared delivery time,
// recipients are dispatched in Add order, and each group's heap entry
// takes a fresh insertion seq, so an execution is indistinguishable from
// scheduling every recipient individually — only the heap (and the
// Scheduled counter) sees the collapsed representation.
//
// A builder is obtained from Scheduler.Multicast and must be finished
// with Commit before the event loop resumes; builders nest (a network
// observer reached between Add calls may trigger another broadcast) but
// must commit in LIFO order.
type Multicast struct {
	s       *Scheduler
	from    types.NodeID
	msg     any
	entries []mcEntry
	times   []types.Time // distinct delivery times, first-seen order
	slots   []int32      // Commit scratch: event slot per distinct time
}

// Multicast starts a multicast of m from one sender. Deliveries are
// dispatched through the registered MsgSink, like SendAt.
func (s *Scheduler) Multicast(from types.NodeID, m any) *Multicast {
	if s.sink == nil {
		panic("sim: Multicast with no registered MsgSink")
	}
	if s.mcDepth == len(s.mcPool) {
		s.mcPool = append(s.mcPool, &Multicast{s: s})
	}
	mc := s.mcPool[s.mcDepth]
	s.mcDepth++
	mc.from = from
	mc.msg = m
	mc.entries = mc.entries[:0]
	mc.times = mc.times[:0]
	return mc
}

// Add records delivery to one recipient at absolute virtual time t
// (clamped to now). Add the same recipient twice for duplicated
// transmissions. Deliveries sharing a timestamp fire in Add order.
func (mc *Multicast) Add(to types.NodeID, t types.Time) {
	if t < mc.s.now {
		t = mc.s.now
	}
	mc.entries = append(mc.entries, mcEntry{to: to, at: t})
	if len(mc.times) > mcMaxTracked {
		return // overflowed: Commit takes the sorting path
	}
	for _, seen := range mc.times {
		if seen == t {
			return
		}
	}
	mc.times = append(mc.times, t)
}

// Commit schedules the accumulated deliveries — one heap event per
// distinct delivery time — and returns the builder to the scheduler's
// pool. The builder must not be used after Commit.
func (mc *Multicast) Commit() {
	s := mc.s
	if s.mcDepth == 0 || s.mcPool[s.mcDepth-1] != mc {
		panic("sim: Multicast.Commit out of order")
	}
	switch {
	case len(mc.entries) == 0:
		// nothing to schedule
	case len(mc.times) <= mcMaxTracked:
		mc.commitGrouped()
	default:
		mc.commitSorted()
	}
	mc.msg = nil
	s.mcDepth--
}

// commitGrouped schedules one event per tracked distinct time and fills
// recipient sets with a linear scan — O(entries · distinct times).
func (mc *Multicast) commitGrouped() {
	s := mc.s
	mc.slots = mc.slots[:0]
	for _, t := range mc.times {
		mc.slots = append(mc.slots, mc.newGroup(t))
	}
	for _, e := range mc.entries {
		for i, t := range mc.times {
			if t == e.at {
				id := mc.slots[i]
				s.arena[id].recips = append(s.arena[id].recips, e.to)
				break
			}
		}
	}
}

// commitSorted handles many distinct delivery times (chaotic per-link
// delays at large n): a stable sort by time preserves Add order within
// each group, and each run of equal times becomes one event.
func (mc *Multicast) commitSorted() {
	s := mc.s
	slices.SortStableFunc(mc.entries, func(a, b mcEntry) int {
		return cmp.Compare(a.at, b.at)
	})
	for i := 0; i < len(mc.entries); {
		j := i + 1
		for j < len(mc.entries) && mc.entries[j].at == mc.entries[i].at {
			j++
		}
		id := mc.newGroup(mc.entries[i].at)
		for _, e := range mc.entries[i:j] {
			s.arena[id].recips = append(s.arena[id].recips, e.to)
		}
		i = j
	}
}

// newGroup allocates and enqueues one kindMulti event at time t with an
// empty recipient set, returning its slot.
func (mc *Multicast) newGroup(t types.Time) int32 {
	id, ev := mc.s.schedule(t)
	ev.from = mc.from
	ev.msg = mc.msg
	ev.kind = kindMulti
	return id
}

// Reserve pre-sizes the arena and heap for n additional events, so a
// burst of schedules (e.g. a broadcast's n sends) performs at most one
// slice grow up front instead of n incremental ones.
func (s *Scheduler) Reserve(n int) {
	s.heap = slices.Grow(s.heap, n)
	if fresh := n - len(s.free); fresh > 0 {
		s.arena = slices.Grow(s.arena, fresh)
	}
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

// Step fires the next event, if any, advancing virtual time. It returns
// false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	id := s.popMin()
	ev := &s.arena[id]
	if ev.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v", s.now, ev.at))
	}
	s.now = ev.at
	s.fired++
	switch ev.kind {
	case kindFunc:
		fn := ev.fn
		s.release(id)
		fn()
	case kindMsg:
		from, to, m := ev.from, ev.to, ev.msg
		s.release(id)
		s.sink(from, to, m)
	case kindMulti:
		from, m := ev.from, ev.msg
		// Count every expansion so Events matches a per-recipient
		// scheduler (Step already counted the first delivery).
		s.fired += uint64(len(ev.recips) - 1)
		// Copy the recipient set out before releasing the slot: handlers
		// reached through the sink may schedule, growing the arena or
		// reusing this very slot mid-expansion. Expansion is never
		// reentrant (Step runs only on the event loop), so one scratch
		// buffer suffices.
		s.expand = append(s.expand[:0], ev.recips...)
		s.release(id)
		for _, to := range s.expand {
			s.sink(from, to, m)
		}
	default:
		panic("sim: free slot reached the heap")
	}
	return true
}

// RunUntil fires events until virtual time would exceed t, then sets the
// clock to t. Events scheduled exactly at t are fired.
func (s *Scheduler) RunUntil(t types.Time) {
	for len(s.heap) > 0 && s.arena[s.heap[0]].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances virtual time by d, firing all events in the window.
func (s *Scheduler) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Drain fires events until the queue empties or limit events have fired.
// It returns the number of events fired.
func (s *Scheduler) Drain(limit uint64) uint64 {
	var fired uint64
	for fired < limit && s.Step() {
		fired++
	}
	return fired
}
