package sim

import (
	"fmt"
	"testing"

	"lumiere/internal/types"
)

type delivery struct {
	from, to types.NodeID
	at       types.Time
	m        any
}

func recordSink(s *Scheduler, out *[]delivery) {
	s.SetSink(func(from, to types.NodeID, m any) {
		*out = append(*out, delivery{from: from, to: to, at: s.Now(), m: m})
	})
}

// TestMulticastCollapsesUniformBroadcast is the event-count gate from the
// issue: an n-recipient broadcast whose deliveries share one clamped time
// must cost O(1) heap insertions, not O(n), while Events still advances
// by n.
func TestMulticastCollapsesUniformBroadcast(t *testing.T) {
	const n = 4096
	s := New(1)
	var got []delivery
	recordSink(s, &got)

	base := s.Scheduled()
	mc := s.Multicast(7, "m")
	for i := 0; i < n; i++ {
		mc.Add(types.NodeID(i), 100)
	}
	mc.Commit()
	if ins := s.Scheduled() - base; ins != 1 {
		t.Fatalf("uniform %d-recipient broadcast scheduled %d heap events, want 1", n, ins)
	}
	s.RunUntil(100)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	if s.Events() != uint64(n) {
		t.Fatalf("Events() = %d, want %d (one per expanded delivery)", s.Events(), n)
	}
	for i, d := range got {
		if d.to != types.NodeID(i) || d.from != 7 || d.at != 100 || d.m != "m" {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}
}

// TestMulticastMatchesSendAt drives the same randomized delivery pattern
// through per-recipient SendAt and through a Multicast and requires the
// observed delivery sequences to be identical, on both the grouped
// (≤ mcMaxTracked distinct times) and the sorted (overflow) Commit path.
func TestMulticastMatchesSendAt(t *testing.T) {
	for _, distinct := range []int{1, 2, mcMaxTracked, mcMaxTracked + 1, 200} {
		t.Run(fmt.Sprintf("distinct=%d", distinct), func(t *testing.T) {
			const n = 300
			// Deterministic pattern with repeats, dups and interleaved times.
			pattern := make([]delivery, 0, n+10)
			for i := 0; i < n; i++ {
				at := types.Time(50 + (i*7)%distinct)
				pattern = append(pattern, delivery{to: types.NodeID(i), at: at})
				if i%37 == 0 { // duplicated transmission
					pattern = append(pattern, delivery{to: types.NodeID(i), at: at + 1})
				}
			}

			run := func(multi bool) []delivery {
				s := New(1)
				var got []delivery
				recordSink(s, &got)
				// Surrounding traffic: events before and after the broadcast's
				// seq block must keep their relative order.
				s.SendAt(49, 1, 2, "pre")
				if multi {
					mc := s.Multicast(9, "b")
					for _, p := range pattern {
						mc.Add(p.to, p.at)
					}
					mc.Commit()
				} else {
					for _, p := range pattern {
						s.SendAt(p.at, 9, p.to, "b")
					}
				}
				s.SendAt(51, 3, 4, "mid")
				s.RunUntil(10_000)
				return got
			}

			plain, multi := run(false), run(true)
			if len(plain) != len(multi) {
				t.Fatalf("len: plain %d vs multi %d", len(plain), len(multi))
			}
			for i := range plain {
				if plain[i] != multi[i] {
					t.Fatalf("delivery %d: plain %+v vs multi %+v", i, plain[i], multi[i])
				}
			}
		})
	}
}

// TestMulticastNestedBuilders exercises the builder pool: a sink handler
// reached mid-expansion starts its own multicast (the network does this
// when a delivery triggers a broadcast reply).
func TestMulticastNestedBuilders(t *testing.T) {
	s := New(1)
	var got []delivery
	s.SetSink(func(from, to types.NodeID, m any) {
		got = append(got, delivery{from: from, to: to, at: s.Now(), m: m})
		if m == "ping" && to == 0 {
			reply := s.Multicast(to, "pong")
			for i := 0; i < 3; i++ {
				reply.Add(types.NodeID(i), s.Now().Add(10))
			}
			reply.Commit()
		}
	})
	mc := s.Multicast(5, "ping")
	for i := 0; i < 3; i++ {
		mc.Add(types.NodeID(i), 100)
	}
	mc.Commit()
	s.RunUntil(1000)
	if len(got) != 6 {
		t.Fatalf("deliveries = %d, want 6: %+v", len(got), got)
	}
	for i, d := range got[3:] {
		if d.m != "pong" || d.at != 110 || d.to != types.NodeID(i) {
			t.Fatalf("reply %d = %+v", i, d)
		}
	}
}

// TestMulticastEmptyCommit checks a builder with no recipients is a no-op
// and the pool recycles cleanly.
func TestMulticastEmptyCommit(t *testing.T) {
	s := New(1)
	var got []delivery
	recordSink(s, &got)
	base := s.Scheduled()
	s.Multicast(0, "x").Commit()
	if s.Scheduled() != base || s.Pending() != 0 {
		t.Fatalf("empty multicast scheduled something")
	}
	// Pool slot is reusable afterwards.
	mc := s.Multicast(0, "y")
	mc.Add(1, 5)
	mc.Commit()
	s.RunUntil(10)
	if len(got) != 1 || got[0].m != "y" {
		t.Fatalf("got = %+v", got)
	}
}

// TestMulticastReset checks pending multicast events are dropped by Reset
// and the recycled arena behaves identically afterwards.
func TestMulticastReset(t *testing.T) {
	s := New(1)
	var got []delivery
	recordSink(s, &got)
	mc := s.Multicast(1, "stale")
	for i := 0; i < 50; i++ {
		mc.Add(types.NodeID(i), 100)
	}
	mc.Commit()
	s.Reset(2)
	if s.Scheduled() != 0 || s.Events() != 0 || s.Pending() != 0 {
		t.Fatalf("counters survived Reset: sched=%d fired=%d pending=%d",
			s.Scheduled(), s.Events(), s.Pending())
	}
	mc = s.Multicast(2, "fresh")
	mc.Add(3, 10)
	mc.Commit()
	s.RunUntil(1000)
	if len(got) != 1 || got[0].m != "fresh" {
		t.Fatalf("post-reset deliveries = %+v", got)
	}
}
