package sim

import (
	"fmt"
	"testing"
	"time"

	"lumiere/internal/types"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Nanosecond, func() { got = append(got, 3) })
	s.After(10*time.Nanosecond, func() { got = append(got, 1) })
	s.After(20*time.Nanosecond, func() { got = append(got, 2) })
	s.RunUntil(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 100 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	s.RunUntil(50)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New(1)
	fired := false
	cancel := s.After(10, func() { fired = true })
	cancel()
	cancel() // idempotent
	s.RunUntil(100)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New(1)
	var times []types.Time
	s.At(10, func() {
		times = append(times, s.Now())
		s.After(5, func() { times = append(times, s.Now()) })
		s.After(0, func() { times = append(times, s.Now()) })
	})
	s.RunUntil(100)
	if len(times) != 3 || times[0] != 10 || times[1] != 10 || times[2] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := New(1)
	s.RunUntil(100)
	fired := types.Time(-1)
	s.At(50, func() { fired = s.Now() }) // in the past
	s.RunUntil(200)
	if fired != 100 {
		t.Fatalf("past event fired at %v, want 100 (clamped)", fired)
	}
}

func TestSchedulerStepAndPending(t *testing.T) {
	s := New(1)
	s.After(5, func() {})
	s.After(6, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if !s.Step() || !s.Step() || s.Step() {
		t.Fatal("Step sequence wrong")
	}
	if s.Events() != 2 {
		t.Fatalf("events = %d", s.Events())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		var rec func(depth int)
		rec = func(depth int) {
			out = append(out, int64(s.Now()), s.Rand().Int63n(1000))
			if depth < 50 {
				s.After(time.Duration(s.Rand().Int63n(100)+1), func() { rec(depth + 1) })
			}
		}
		s.After(1, func() { rec(0) })
		s.RunUntil(types.Time(1e9))
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical executions")
	}
}

func TestSchedulerDrain(t *testing.T) {
	s := New(1)
	count := 0
	var loop func()
	loop = func() {
		count++
		s.After(1, loop)
	}
	s.After(1, loop)
	if fired := s.Drain(100); fired != 100 {
		t.Fatalf("drained %d", fired)
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

// TestSchedulerCancelShrinksPending is the regression test for the
// cancel leak: cancelled events must leave the heap immediately, not
// linger until popped.
func TestSchedulerCancelShrinksPending(t *testing.T) {
	s := New(1)
	cancels := make([]func(), 100)
	for i := range cancels {
		cancels[i] = s.After(time.Duration(i+1), func() { t.Fatal("cancelled event fired") })
	}
	if s.Pending() != 100 {
		t.Fatalf("pending = %d, want 100", s.Pending())
	}
	for i, cancel := range cancels {
		cancel()
		if want := 100 - i - 1; s.Pending() != want {
			t.Fatalf("after %d cancels pending = %d, want %d", i+1, s.Pending(), want)
		}
	}
	s.RunUntil(1000)
	if s.Events() != 0 {
		t.Fatalf("fired %d cancelled events", s.Events())
	}
}

func TestSchedulerTimerCancelStale(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.AtTimer(10, func() { fired++ })
	s.RunUntil(20)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The slot has been recycled; a stale handle must not cancel its
	// new occupant.
	s.Cancel(tm)
	s.AtTimer(30, func() { fired++ })
	s.Cancel(tm) // still stale
	s.RunUntil(40)
	if fired != 2 {
		t.Fatalf("stale cancel removed a live event: fired = %d", fired)
	}
	s.Cancel(Timer{}) // zero handle is inert
}

func TestSchedulerCancelPreservesOrder(t *testing.T) {
	s := New(1)
	var got []int
	var cancels []func()
	for i := 0; i < 20; i++ {
		i := i
		cancels = append(cancels, s.At(types.Time(i%5), func() { got = append(got, i) }))
	}
	for i := 1; i < 20; i += 2 {
		cancels[i]()
	}
	s.RunUntil(100)
	// Events fire by (at, seq): at = i%5, FIFO within an instant.
	sortedWant := []int{0, 10, 6, 16, 2, 12, 8, 18, 4, 14}
	if len(got) != len(sortedWant) {
		t.Fatalf("got %v", got)
	}
	for i, v := range sortedWant {
		if got[i] != v {
			t.Fatalf("order after cancels = %v, want %v", got, sortedWant)
		}
	}
}

type sinkRecorder struct {
	got []struct {
		from, to types.NodeID
		at       types.Time
	}
}

func TestSchedulerPayloadSink(t *testing.T) {
	s := New(1)
	var rec sinkRecorder
	var msgs []string
	s.SetSink(func(from, to types.NodeID, m any) {
		rec.got = append(rec.got, struct {
			from, to types.NodeID
			at       types.Time
		}{from, to, s.Now()})
		msgs = append(msgs, m.(string))
	})
	s.SendAt(20, 1, 2, "b")
	s.SendAt(10, 0, 1, "a")
	s.RunUntil(100)
	if len(rec.got) != 2 || msgs[0] != "a" || msgs[1] != "b" {
		t.Fatalf("sink got %v %v", rec.got, msgs)
	}
	if rec.got[0].at != 10 || rec.got[0].from != 0 || rec.got[0].to != 1 {
		t.Fatalf("first delivery = %+v", rec.got[0])
	}
	if s.Events() != 2 {
		t.Fatalf("events = %d", s.Events())
	}
}

func TestSchedulerDoubleSinkPanics(t *testing.T) {
	s := New(1)
	s.SetSink(func(types.NodeID, types.NodeID, any) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for second SetSink")
		}
	}()
	s.SetSink(func(types.NodeID, types.NodeID, any) {})
}

func TestSchedulerSendWithoutSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for SendAt without sink")
		}
	}()
	New(1).SendAt(1, 0, 1, "x")
}

// TestSchedulerAllocsSteadyState pins the zero-allocation hot paths: a
// schedule/fire cycle through AtTimer and through SendAt must not
// allocate once the arena is warm. The closure-based At API is allowed
// exactly one allocation (the returned cancel closure).
func TestSchedulerAllocsSteadyState(t *testing.T) {
	s := New(1)
	fn := func() {}
	s.SetSink(func(types.NodeID, types.NodeID, any) {})
	var m any = "payload"
	for i := 0; i < 100; i++ { // warm the arena and heap
		s.AtTimer(s.Now()+1, fn)
		s.SendAt(s.Now()+1, 0, 1, m)
		s.Step()
		s.Step()
	}
	if avg := testing.AllocsPerRun(500, func() {
		s.AtTimer(s.Now()+1, fn)
		s.Step()
	}); avg != 0 {
		t.Errorf("AtTimer/Step cycle allocates %.2f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() {
		s.SendAt(s.Now()+1, 0, 1, m)
		s.Step()
	}); avg != 0 {
		t.Errorf("SendAt/Step cycle allocates %.2f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() {
		cancel := s.At(s.Now()+1, fn)
		_ = cancel
		s.Step()
	}); avg > 1 {
		t.Errorf("At/Step cycle allocates %.2f per run, want <= 1 (cancel closure)", avg)
	}
}

func TestSchedulerReserve(t *testing.T) {
	s := New(1)
	s.SetSink(func(types.NodeID, types.NodeID, any) {})
	s.Reserve(64)
	if avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 64; i++ {
			s.SendAt(s.Now()+1, 0, 1, "m")
		}
		for i := 0; i < 64; i++ {
			s.Step()
		}
	}); avg != 0 {
		t.Errorf("reserved burst allocates %.2f per run, want 0", avg)
	}
}

func TestSchedulerNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil fn")
		}
	}()
	New(1).After(1, nil)
}

// TestSchedulerResetEquivalence pins the arena contract: a reset
// scheduler must be observationally identical to a fresh one — same
// clock, counters, random stream and event behavior — with only slice
// capacities surviving.
func TestSchedulerResetEquivalence(t *testing.T) {
	dirty := New(1)
	var fired int
	for i := 0; i < 100; i++ {
		dirty.After(time.Duration(dirty.Rand().Intn(1000))*time.Millisecond, func() { fired++ })
	}
	tm := dirty.AtTimer(types.Time(0).Add(5*time.Second), func() { fired++ })
	dirty.RunFor(500 * time.Millisecond)
	if fired == 0 {
		t.Fatal("warmup fired nothing")
	}

	dirty.Reset(7)
	fresh := New(7)
	if dirty.Now() != 0 || dirty.Events() != 0 || dirty.Pending() != 0 {
		t.Fatalf("reset state: now=%v events=%d pending=%d", dirty.Now(), dirty.Events(), dirty.Pending())
	}
	// The pre-reset timer handle must be stale: cancelling it is a no-op
	// and must not disturb the reset scheduler.
	dirty.Cancel(tm)
	for i := 0; i < 64; i++ {
		if a, b := dirty.Rand().Int63(), fresh.Rand().Int63(); a != b {
			t.Fatalf("random stream diverges at draw %d: %d != %d", i, a, b)
		}
	}
	// Same schedule on both: identical firing order and timestamps.
	var gotDirty, gotFresh []string
	schedule := func(s *Scheduler, out *[]string) {
		for i := 0; i < 20; i++ {
			i := i
			d := time.Duration(s.Rand().Intn(50)) * time.Millisecond
			s.After(d, func() {
				*out = append(*out, fmt.Sprintf("%d@%v", i, s.Now()))
			})
		}
		s.RunFor(time.Second)
	}
	schedule(dirty, &gotDirty)
	schedule(fresh, &gotFresh)
	if fmt.Sprint(gotDirty) != fmt.Sprint(gotFresh) {
		t.Fatalf("firing diverges:\nreset: %v\nfresh: %v", gotDirty, gotFresh)
	}
	if dirty.Events() != fresh.Events() {
		t.Fatalf("event counts diverge: %d != %d", dirty.Events(), fresh.Events())
	}
}

// TestSchedulerResetKeepsSink verifies the sink registration survives
// Reset — the arena's long-lived network registers once for both
// lifetimes — and payload events scheduled before the reset never reach
// the sink after it.
func TestSchedulerResetKeepsSink(t *testing.T) {
	s := New(1)
	var got []string
	s.SetSink(func(from, to types.NodeID, m any) {
		got = append(got, fmt.Sprintf("%v->%v:%v@%v", from, to, m, s.Now()))
	})
	s.SendAt(types.Time(0).Add(time.Second), 1, 2, "stale")
	s.Reset(1)
	s.SendAt(types.Time(0).Add(time.Millisecond), 3, 4, "live")
	s.RunFor(2 * time.Second)
	if len(got) != 1 || got[0] != "p3->p4:live@1ms" {
		t.Fatalf("sink saw %v", got)
	}
}
