package sim

import (
	"testing"
	"time"

	"lumiere/internal/types"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Nanosecond, func() { got = append(got, 3) })
	s.After(10*time.Nanosecond, func() { got = append(got, 1) })
	s.After(20*time.Nanosecond, func() { got = append(got, 2) })
	s.RunUntil(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 100 {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(50, func() { got = append(got, i) })
	}
	s.RunUntil(50)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := New(1)
	fired := false
	cancel := s.After(10, func() { fired = true })
	cancel()
	cancel() // idempotent
	s.RunUntil(100)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := New(1)
	var times []types.Time
	s.At(10, func() {
		times = append(times, s.Now())
		s.After(5, func() { times = append(times, s.Now()) })
		s.After(0, func() { times = append(times, s.Now()) })
	})
	s.RunUntil(100)
	if len(times) != 3 || times[0] != 10 || times[1] != 10 || times[2] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := New(1)
	s.RunUntil(100)
	fired := types.Time(-1)
	s.At(50, func() { fired = s.Now() }) // in the past
	s.RunUntil(200)
	if fired != 100 {
		t.Fatalf("past event fired at %v, want 100 (clamped)", fired)
	}
}

func TestSchedulerStepAndPending(t *testing.T) {
	s := New(1)
	s.After(5, func() {})
	s.After(6, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	if !s.Step() || !s.Step() || s.Step() {
		t.Fatal("Step sequence wrong")
	}
	if s.Events() != 2 {
		t.Fatalf("events = %d", s.Events())
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		var rec func(depth int)
		rec = func(depth int) {
			out = append(out, int64(s.Now()), s.Rand().Int63n(1000))
			if depth < 50 {
				s.After(time.Duration(s.Rand().Int63n(100)+1), func() { rec(depth + 1) })
			}
		}
		s.After(1, func() { rec(0) })
		s.RunUntil(types.Time(1e9))
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical executions")
	}
}

func TestSchedulerDrain(t *testing.T) {
	s := New(1)
	count := 0
	var loop func()
	loop = func() {
		count++
		s.After(1, loop)
	}
	s.After(1, loop)
	if fired := s.Drain(100); fired != 100 {
		t.Fatalf("drained %d", fired)
	}
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

func TestSchedulerNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil fn")
		}
	}()
	New(1).After(1, nil)
}
