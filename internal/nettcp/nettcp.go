// Package nettcp runs the protocol stack over real TCP connections: the
// "practical" deployment path. The same protocol state machines that run
// on the simulator run here unchanged — nettcp provides a
// network.Endpoint over TCP (gob-encoded envelopes) and pairs with
// clock.Wall, whose node mutex serializes message deliveries with timer
// callbacks exactly as the simulator's single thread does.
//
// Transport-level authentication is delegated to the protocol layer: all
// protocol messages carry ed25519 signatures (crypto.Ed25519Suite), so a
// peer lying about the envelope sender cannot forge signed content.
package nettcp

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

func init() {
	gob.Register(&msg.ViewMsg{})
	gob.Register(&msg.VC{})
	gob.Register(&msg.EpochViewMsg{})
	gob.Register(&msg.EC{})
	gob.Register(&msg.TC{})
	gob.Register(&msg.Proposal{})
	gob.Register(&msg.Vote{})
	gob.Register(&msg.QC{})
	gob.Register(&msg.Wish{})
	gob.Register(&msg.Timeout{})
	gob.Register(&msg.NewView{})
	gob.Register(&msg.Request{})
}

// envelope is the wire frame.
type envelope struct {
	From types.NodeID
	Msg  msg.Message
}

// Transport is one node's TCP fabric.
type Transport struct {
	self    types.NodeID
	addrs   []string
	nodeMu  *sync.Mutex // the node's big lock (shared with clock.Wall)
	handler network.Handler

	ln     net.Listener
	sendMu sync.Mutex
	peers  map[types.NodeID]*peer
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

type peer struct {
	addr  string
	queue chan envelope
}

const peerQueueSize = 4096

// New creates a transport for node self among addrs (index = NodeID).
// handler receives deliveries under nodeMu.
func New(self types.NodeID, addrs []string, nodeMu *sync.Mutex, handler network.Handler) *Transport {
	t := &Transport{
		self:    self,
		addrs:   addrs,
		nodeMu:  nodeMu,
		handler: handler,
		peers:   make(map[types.NodeID]*peer),
		closed:  make(chan struct{}),
	}
	for i, a := range addrs {
		if types.NodeID(i) == self {
			continue
		}
		p := &peer{addr: a, queue: make(chan envelope, peerQueueSize)}
		t.peers[types.NodeID(i)] = p
	}
	return t
}

// Start listens on the node's own address and starts peer writers.
func (t *Transport) Start() error {
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return fmt.Errorf("nettcp: listen %s: %w", t.addrs[t.self], err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	for id, p := range t.peers {
		t.wg.Add(1)
		go t.writeLoop(id, p)
	}
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *Transport) Addr() string {
	if t.ln == nil {
		return t.addrs[t.self]
	}
	return t.ln.Addr().String()
}

// Close shuts the transport down and waits for its goroutines.
func (t *Transport) Close() {
	t.once.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
	})
	t.wg.Wait()
}

// ID implements network.Endpoint.
func (t *Transport) ID() types.NodeID { return t.self }

// Send implements network.Endpoint. Self-sends are delivered inline on a
// fresh goroutine (the caller usually holds the node lock).
func (t *Transport) Send(to types.NodeID, m msg.Message) {
	if to == t.self {
		go t.deliver(t.self, m)
		return
	}
	p, ok := t.peers[to]
	if !ok {
		return
	}
	select {
	case p.queue <- envelope{From: t.self, Msg: m}:
	case <-t.closed:
	default:
		// Queue full: drop. Partial-synchrony protocols tolerate
		// arbitrary pre-GST loss windows and the certificates are
		// re-derivable; persistent backpressure means the peer is
		// effectively crashed.
	}
}

// Broadcast implements network.Endpoint.
func (t *Transport) Broadcast(m msg.Message) {
	for id := range t.peers {
		t.Send(id, m)
	}
	t.Send(t.self, m)
}

func (t *Transport) deliver(from types.NodeID, m msg.Message) {
	t.nodeMu.Lock()
	defer t.nodeMu.Unlock()
	select {
	case <-t.closed:
		return
	default:
	}
	t.handler.Deliver(from, m)
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	go func() {
		<-t.closed
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			return
		}
		if env.Msg == nil {
			continue
		}
		t.deliver(env.From, env.Msg)
	}
}

// writeLoop owns the outbound connection to one peer, dialing with
// backoff and re-dialing on write errors.
func (t *Transport) writeLoop(id types.NodeID, p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	backoff := 50 * time.Millisecond
	dial := func() bool {
		for {
			select {
			case <-t.closed:
				return false
			default:
			}
			c, err := net.DialTimeout("tcp", p.addr, time.Second)
			if err == nil {
				conn = c
				enc = gob.NewEncoder(conn)
				backoff = 50 * time.Millisecond
				return true
			}
			select {
			case <-time.After(backoff):
			case <-t.closed:
				return false
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case env := <-p.queue:
			for {
				if conn == nil && !dial() {
					return
				}
				if err := enc.Encode(&env); err != nil {
					conn.Close()
					conn, enc = nil, nil
					continue // re-dial and retry this envelope once
				}
				break
			}
		case <-t.closed:
			return
		}
	}
}

var _ network.Endpoint = (*Transport)(nil)
