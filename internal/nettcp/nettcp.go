// Package nettcp runs the protocol stack over real TCP connections: the
// "practical" deployment path. The same protocol state machines that run
// on the simulator run here unchanged — nettcp provides a
// network.Endpoint over TCP (gob-encoded envelopes) and pairs with
// clock.Wall, whose node mutex serializes message deliveries with timer
// callbacks exactly as the simulator's single thread does.
//
// Parity with the simulated runtime (see DESIGN.md §7):
//
//   - Self-sends are delivered through a single tracked FIFO worker, so
//     a node's messages to itself arrive in send order (the simulator's
//     same-instant self-delivery convention) and Close really quiesces:
//     after it returns no handler call is in flight.
//   - Every wire transmission can be observed by a network.Observer
//     (WithObserver); the metrics.Collector counts TCP sends in exactly
//     the per-kind words model the simulator uses, so wall-clock words
//     tables are directly comparable to simulated ones.
//   - A Conditioner (WithConditioner) realizes the link-chaos
//     primitives — delay, loss, duplication, partitions, churn — at the
//     socket layer, honoring the §2 partial-synchrony clamp.
//
// Transport-level authentication is delegated to the protocol layer: all
// protocol messages carry ed25519 signatures (crypto.Ed25519Suite), so a
// peer lying about the envelope sender cannot forge signed content.
package nettcp

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

func init() {
	gob.Register(&msg.ViewMsg{})
	gob.Register(&msg.VC{})
	gob.Register(&msg.EpochViewMsg{})
	gob.Register(&msg.EC{})
	gob.Register(&msg.TC{})
	gob.Register(&msg.Proposal{})
	gob.Register(&msg.Vote{})
	gob.Register(&msg.QC{})
	gob.Register(&msg.Wish{})
	gob.Register(&msg.Timeout{})
	gob.Register(&msg.NewView{})
	gob.Register(&msg.Request{})
	gob.Register(&msg.BlockFetch{})
	gob.Register(&msg.BlockResp{})
}

// envelope is the wire frame.
type envelope struct {
	From types.NodeID
	Msg  msg.Message
}

// PeerStats counts one outbound peer link's traffic. All counters are
// cumulative since Start.
type PeerStats struct {
	// Enqueued is the number of envelopes accepted into the peer queue.
	Enqueued int64
	// Sent is the number of envelopes written to the wire.
	Sent int64
	// QueueDrops counts envelopes dropped because the peer queue was
	// full (persistent backpressure: the peer is effectively crashed).
	QueueDrops int64
	// CondDrops counts envelopes the link conditioner omitted (true
	// post-GST omissions under its budget, or the node being down).
	CondDrops int64
	// Delayed counts envelopes the conditioner held back before
	// enqueueing (including pre-GST "losses" released at GST+Δ).
	Delayed int64
	// Duplicates counts extra copies the conditioner enqueued.
	Duplicates int64
	// Redials counts successful reconnects after a connection was lost.
	Redials int64
	// DialFails counts failed dial attempts.
	DialFails int64
	// Resends counts envelopes re-encoded on a fresh connection after a
	// write error — each is a possible wire duplicate, since the peer
	// may have received the failed write's bytes.
	Resends int64
	// WriteDrops counts envelopes dropped after exhausting their write
	// attempts (the bounded-retry budget of the write loop).
	WriteDrops int64
}

// Stats is a snapshot of a Transport's counters. A misbehaving or dead
// peer is visible here (QueueDrops, DialFails, WriteDrops climbing)
// where it would otherwise be indistinguishable from a healthy idle one.
type Stats struct {
	// Peers holds the outbound counters per peer.
	Peers map[types.NodeID]PeerStats
	// SelfDelivered counts self-sends handed to the handler.
	SelfDelivered int64
	// Delivered counts remote messages handed to the handler.
	Delivered int64
	// DecodeErrors counts inbound gob streams abandoned on a decode
	// error (the connection is closed; the peer re-dials).
	DecodeErrors int64
}

// peer is one outbound link's state.
type peer struct {
	addr  string
	queue chan envelope

	enqueued   atomic.Int64
	sent       atomic.Int64
	queueDrops atomic.Int64
	condDrops  atomic.Int64
	delayed    atomic.Int64
	duplicates atomic.Int64
	redials    atomic.Int64
	dialFails  atomic.Int64
	resends    atomic.Int64
	writeDrops atomic.Int64
}

func (p *peer) stats() PeerStats {
	return PeerStats{
		Enqueued:   p.enqueued.Load(),
		Sent:       p.sent.Load(),
		QueueDrops: p.queueDrops.Load(),
		CondDrops:  p.condDrops.Load(),
		Delayed:    p.delayed.Load(),
		Duplicates: p.duplicates.Load(),
		Redials:    p.redials.Load(),
		DialFails:  p.dialFails.Load(),
		Resends:    p.resends.Load(),
		WriteDrops: p.writeDrops.Load(),
	}
}

// Transport is one node's TCP fabric.
type Transport struct {
	self    types.NodeID
	addrs   []string
	nodeMu  *sync.Mutex // the node's big lock (shared with clock.Wall)
	handler network.Handler

	observer network.Observer // optional: wire-transmission accounting
	now      func() types.Time
	cond     *Conditioner // optional: socket-level link chaos

	ln     net.Listener
	peers  map[types.NodeID]*peer
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once

	// Self-send FIFO: a single tracked worker delivers self-sends in
	// send order (the simulator's same-instant self-delivery), and
	// Close waits for it, so no handler call survives Close.
	selfMu   sync.Mutex
	selfWake *sync.Cond
	selfQ    []msg.Message
	selfHead int
	closing  bool

	selfDelivered atomic.Int64
	delivered     atomic.Int64
	decodeErrors  atomic.Int64
}

const peerQueueSize = 4096

// writeAttempts bounds how many times the write loop tries to get one
// envelope onto the wire (each attempt is one dial-if-needed + one
// encode). Beyond it the envelope is dropped and counted — protocols
// under partial synchrony tolerate loss windows and certificates are
// re-derivable — instead of retrying (and possibly duplicating) forever.
const writeAttempts = 3

// Option configures a Transport.
type Option func(*Transport)

// WithObserver registers an observer for wire traffic. OnSend fires once
// per point-to-point transmission at enqueue time (self-deliveries are
// not transmissions, matching the simulator), stamped with now(); OnDeliver
// fires under the node lock when the handler receives the message. A
// metrics.Collector here counts TCP traffic in the same per-kind words
// model as the simulated network.
func WithObserver(o network.Observer, now func() types.Time) Option {
	return func(t *Transport) {
		t.observer = o
		t.now = now
	}
}

// WithConditioner installs a socket-level link conditioner on the
// outbound path (see Conditioner).
func WithConditioner(c *Conditioner) Option {
	return func(t *Transport) { t.cond = c }
}

// New creates a transport for node self among addrs (index = NodeID).
// handler receives deliveries under nodeMu. The self-send worker starts
// immediately (self-delivery needs no listener); wire loops start with
// Start. Close must not be called with nodeMu held.
func New(self types.NodeID, addrs []string, nodeMu *sync.Mutex, handler network.Handler, opts ...Option) *Transport {
	t := &Transport{
		self:    self,
		addrs:   addrs,
		nodeMu:  nodeMu,
		handler: handler,
		peers:   make(map[types.NodeID]*peer),
		closed:  make(chan struct{}),
	}
	t.selfWake = sync.NewCond(&t.selfMu)
	for i, a := range addrs {
		if types.NodeID(i) == self {
			continue
		}
		p := &peer{addr: a, queue: make(chan envelope, peerQueueSize)}
		t.peers[types.NodeID(i)] = p
	}
	for _, opt := range opts {
		opt(t)
	}
	t.wg.Add(1)
	go t.selfLoop()
	return t
}

// Start listens on the node's own address and starts peer writers.
func (t *Transport) Start() error {
	ln, err := net.Listen("tcp", t.addrs[t.self])
	if err != nil {
		return fmt.Errorf("nettcp: listen %s: %w", t.addrs[t.self], err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	for id, p := range t.peers {
		t.wg.Add(1)
		go t.writeLoop(id, p)
	}
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (t *Transport) Addr() string {
	if t.ln == nil {
		return t.addrs[t.self]
	}
	return t.ln.Addr().String()
}

// Close shuts the transport down and waits for its goroutines, including
// the self-send worker: when Close returns, no handler call is in flight
// and none will follow. Do not call with the node lock held (the workers
// need it to finish their current delivery).
func (t *Transport) Close() {
	t.once.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		if t.cond != nil {
			t.cond.stop()
		}
		t.selfMu.Lock()
		t.closing = true
		t.selfMu.Unlock()
		t.selfWake.Signal()
	})
	t.wg.Wait()
}

// ID implements network.Endpoint.
func (t *Transport) ID() types.NodeID { return t.self }

// Stats returns a snapshot of the transport's counters.
func (t *Transport) Stats() Stats {
	s := Stats{
		Peers:         make(map[types.NodeID]PeerStats, len(t.peers)),
		SelfDelivered: t.selfDelivered.Load(),
		Delivered:     t.delivered.Load(),
		DecodeErrors:  t.decodeErrors.Load(),
	}
	for id, p := range t.peers {
		s.Peers[id] = p.stats()
	}
	return s
}

// Send implements network.Endpoint. Self-sends go through the tracked
// FIFO worker; peer sends are observed, conditioned, and enqueued to the
// peer's write loop.
func (t *Transport) Send(to types.NodeID, m msg.Message) {
	if to == t.self {
		t.selfMu.Lock()
		if t.closing {
			t.selfMu.Unlock()
			return
		}
		t.selfQ = append(t.selfQ, m)
		t.selfMu.Unlock()
		t.selfWake.Signal()
		return
	}
	p, ok := t.peers[to]
	if !ok {
		return
	}
	// The send is observed before the conditioner's verdict, exactly as
	// the simulated network observes before the link policy: a dropped
	// message was still sent by the protocol.
	if t.observer != nil {
		t.observer.OnSend(t.self, to, m, t.wallNow(), true)
	}
	if t.cond != nil {
		t.cond.apply(t, p, to, envelope{From: t.self, Msg: m})
		return
	}
	t.enqueue(p, envelope{From: t.self, Msg: m})
}

// wallNow stamps observer events; without a clock it degrades to zero
// timestamps (counters still aggregate correctly).
func (t *Transport) wallNow() types.Time {
	if t.now == nil {
		return 0
	}
	return t.now()
}

// enqueue hands an envelope to the peer's write loop, dropping (and
// counting) on a full queue.
func (t *Transport) enqueue(p *peer, env envelope) {
	select {
	case p.queue <- env:
		p.enqueued.Add(1)
	case <-t.closed:
	default:
		// Queue full: drop, visibly. Partial-synchrony protocols
		// tolerate arbitrary pre-GST loss windows and the certificates
		// are re-derivable; persistent backpressure means the peer is
		// effectively crashed.
		p.queueDrops.Add(1)
	}
}

// Broadcast implements network.Endpoint.
func (t *Transport) Broadcast(m msg.Message) {
	for id := range t.peers {
		t.Send(id, m)
	}
	t.Send(t.self, m)
}

// selfLoop is the tracked self-delivery worker: strictly FIFO, one
// delivery at a time under the node lock.
func (t *Transport) selfLoop() {
	defer t.wg.Done()
	t.selfMu.Lock()
	for {
		for t.selfHead >= len(t.selfQ) && !t.closing {
			t.selfWake.Wait()
		}
		if t.closing {
			t.selfMu.Unlock()
			return
		}
		m := t.selfQ[t.selfHead]
		t.selfQ[t.selfHead] = nil
		t.selfHead++
		if t.selfHead == len(t.selfQ) {
			t.selfQ = t.selfQ[:0]
			t.selfHead = 0
		} else if t.selfHead > 256 && t.selfHead*2 >= len(t.selfQ) {
			n := copy(t.selfQ, t.selfQ[t.selfHead:])
			t.selfQ = t.selfQ[:n]
			t.selfHead = 0
		}
		t.selfMu.Unlock()
		if t.deliver(t.self, m) {
			t.selfDelivered.Add(1)
		}
		t.selfMu.Lock()
	}
}

// deliver hands a message to the handler under the node lock, reporting
// whether the handler actually ran (false once the transport is closed
// or, under a conditioner, while the node is down).
func (t *Transport) deliver(from types.NodeID, m msg.Message) bool {
	t.nodeMu.Lock()
	defer t.nodeMu.Unlock()
	select {
	case <-t.closed:
		return false
	default:
	}
	if t.cond != nil && t.cond.isDown() {
		return false
	}
	if t.observer != nil {
		t.observer.OnDeliver(from, t.self, m, t.wallNow())
	}
	t.handler.Deliver(from, m)
	return true
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	go func() {
		<-t.closed
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				select {
				case <-t.closed:
				default:
					// A corrupt gob stream poisons the decoder: count
					// it and abandon the connection (the peer re-dials)
					// instead of swallowing the error silently.
					t.decodeErrors.Add(1)
				}
			}
			return
		}
		if env.Msg == nil {
			continue
		}
		if t.deliver(env.From, env.Msg) {
			t.delivered.Add(1)
		}
	}
}

// writeLoop owns the outbound connection to one peer. Each envelope gets
// a bounded number of write attempts (dial if needed + encode); on a
// write error the connection is re-dialed and the envelope re-encoded —
// counted as a resend, since the peer may have received the failed
// write's bytes (a possible wire duplicate) — and after writeAttempts
// failures the envelope is dropped and counted, never silently retried
// forever.
func (t *Transport) writeLoop(id types.NodeID, p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	var enc *gob.Encoder
	backoff := 50 * time.Millisecond
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	// sleep waits for the current backoff (or close), growing it toward
	// its cap; a successful dial resets it.
	sleep := func() bool {
		select {
		case <-time.After(backoff):
		case <-t.closed:
			return false
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
		return true
	}
	for {
		select {
		case env := <-p.queue:
			sent := false
			encodeFailed := false
			for attempt := 0; attempt < writeAttempts; attempt++ {
				select {
				case <-t.closed:
					return
				default:
				}
				if conn == nil {
					c, err := net.DialTimeout("tcp", p.addr, time.Second)
					if err != nil {
						p.dialFails.Add(1)
						if !sleep() {
							return
						}
						continue
					}
					conn = c
					enc = gob.NewEncoder(conn)
					backoff = 50 * time.Millisecond
					if attempt > 0 {
						p.redials.Add(1)
					}
				}
				if encodeFailed {
					// Re-encoding after a failed write: the peer may
					// have received the failed attempt's bytes, so this
					// is a possible wire duplicate.
					p.resends.Add(1)
				}
				if err := enc.Encode(&env); err != nil {
					conn.Close()
					conn, enc = nil, nil
					encodeFailed = true
					continue
				}
				sent = true
				p.sent.Add(1)
				break
			}
			if !sent {
				p.writeDrops.Add(1)
			}
		case <-t.closed:
			return
		}
	}
}

var _ network.Endpoint = (*Transport)(nil)
