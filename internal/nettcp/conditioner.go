package nettcp

import (
	"math/rand"
	"sync"
	"time"

	"lumiere/internal/network"
	"lumiere/internal/types"
)

// Conditioner realizes the link-chaos primitives against real sockets:
// the same network.LinkPolicy values that condition the simulated
// network (internal/adversary: partitions, loss, duplication, flaky
// links, reorder jitter) decide, per outbound envelope, whether the
// transport enqueues it now, later, twice, or not at all.
//
// The §2 partial-synchrony clamp is honored on the release side: an
// envelope sent at local time t is handed to the write loop no later
// than max(GST, t) + Δ — a pre-GST "drop" becomes a release exactly at
// that bound (model-faithful loss), and a post-GST drop is a true
// omission only while the OmissionBudget allows it. On a real network
// the wire adds its own latency δ on top of the release time; that
// slack is the actual-delay the paper's optimistic-responsiveness
// claims are about, so the conditioner bounds what it controls (the
// adversarial delay) and leaves δ to the hardware.
//
// Churn is the down state (SetDown): while down the node neither sends
// nor receives, crash-recovery omission charged to the node itself.
// Slow replicas (SetProcDelays) add a per-recipient ingestion delay on
// top of the clamped release — the WAN straggler model, matching the
// simulator's post-clamp processing delays.
//
// A Conditioner belongs to one Transport. Its rng is guarded by the
// conditioner mutex, so verdicts are safe from concurrent senders;
// wall-clock scheduling makes conditioned TCP runs non-reproducible by
// nature (unlike the simulator's).
type Conditioner struct {
	link   network.LinkPolicy
	gst    types.Time
	delta  time.Duration
	now    func() types.Time
	budget network.OmissionBudget

	mu          sync.Mutex
	rng         *rand.Rand
	down        bool
	proc        []time.Duration
	omitted     int64
	omittedFrom map[types.NodeID]bool
	timers      map[*time.Timer]struct{}
	stopped     bool
}

// NewConditioner builds a conditioner applying link under the clamp
// bound max(GST, t)+Δ. now supplies the node's local clock (use the
// node's clock.Wall so timestamps match the metrics observer); seed
// drives the policy's randomness. A nil link passes everything through
// unconditioned.
func NewConditioner(link network.LinkPolicy, gst time.Duration, delta time.Duration,
	budget network.OmissionBudget, now func() types.Time, seed int64) *Conditioner {
	return &Conditioner{
		link:        link,
		gst:         types.Time(0).Add(gst),
		delta:       delta,
		now:         now,
		budget:      budget,
		rng:         rand.New(rand.NewSource(seed)),
		omittedFrom: make(map[types.NodeID]bool),
		timers:      make(map[*time.Timer]struct{}),
	}
}

// SetDown flips the churn state: while down, outbound envelopes are
// dropped (counted per peer) and inbound deliveries are discarded.
func (c *Conditioner) SetDown(down bool) {
	c.mu.Lock()
	c.down = down
	c.mu.Unlock()
}

// SetProcDelays installs per-recipient processing delays (indexed by
// NodeID; missing entries are zero), mirroring the simulator's slow-
// replica model: the delay is added AFTER the §2 clamp, because node
// slowness is outside the network model — the adversary's delay is
// bounded by max(GST, t)+Δ, the straggler's ingestion lag rides on top.
func (c *Conditioner) SetProcDelays(proc []time.Duration) {
	c.mu.Lock()
	c.proc = append([]time.Duration(nil), proc...)
	c.mu.Unlock()
}

// procDelay returns the recipient's processing delay; callers hold c.mu.
func (c *Conditioner) procDelay(to types.NodeID) time.Duration {
	if int(to) < len(c.proc) {
		return c.proc[to]
	}
	return 0
}

// Omitted returns the number of true post-GST omissions granted against
// the budget so far.
func (c *Conditioner) Omitted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.omitted
}

func (c *Conditioner) isDown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// allowOmission charges one post-GST omission by from against the
// budget; callers hold c.mu.
func (c *Conditioner) allowOmission(from types.NodeID) bool {
	if c.omitted >= int64(c.budget.MaxMessages) {
		return false
	}
	if !c.omittedFrom[from] {
		if c.budget.MaxSenders > 0 && len(c.omittedFrom) >= c.budget.MaxSenders {
			return false
		}
		c.omittedFrom[from] = true
	}
	c.omitted++
	return true
}

// apply runs one outbound envelope through the policy and realizes the
// verdict against the peer queue: enqueue now, enqueue at the clamped
// release time, duplicate, or omit.
func (c *Conditioner) apply(t *Transport, p *peer, to types.NodeID, env envelope) {
	at := c.now()
	bound := types.MaxTime(c.gst, at).Add(c.delta)
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		p.condDrops.Add(1)
		return
	}
	// The recipient's processing delay rides on top of every release,
	// clamped or not (the straggler model; see SetProcDelays).
	proc := c.procDelay(to)
	var v network.Verdict
	if c.link != nil {
		v = c.link.Link(t.self, to, env.Msg, at, c.rng)
	}
	if v.Drop {
		if at >= c.gst && c.allowOmission(t.self) {
			c.mu.Unlock()
			p.condDrops.Add(1)
			return
		}
		c.mu.Unlock()
		// Pre-GST "loss" (or an unfunded post-GST drop) degrades to the
		// worst release the model permits: the clamp bound.
		p.delayed.Add(1)
		c.release(t, p, env, bound.Sub(at)+proc)
		return
	}
	c.mu.Unlock()
	delay := v.Delay
	if delay < 0 {
		delay = 0
	}
	release := types.MinTime(at.Add(delay), bound)
	if d := release.Sub(at) + proc; d > 0 {
		p.delayed.Add(1)
		c.release(t, p, env, d)
	} else {
		t.enqueue(p, env)
	}
	if v.Dup {
		dupDelay := v.DupDelay
		if dupDelay < 0 {
			dupDelay = 0
		}
		p.duplicates.Add(1)
		dupRelease := types.MinTime(at.Add(dupDelay), bound)
		if d := dupRelease.Sub(at) + proc; d > 0 {
			c.release(t, p, env, d)
		} else {
			t.enqueue(p, env)
		}
	}
}

// release enqueues env after d, tracking the timer so Close can cancel
// pending releases.
func (c *Conditioner) release(t *Transport, p *peer, env envelope, d time.Duration) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		c.mu.Lock()
		delete(c.timers, tm)
		stopped := c.stopped
		c.mu.Unlock()
		if stopped {
			return
		}
		t.enqueue(p, env)
	})
	c.timers[tm] = struct{}{}
	c.mu.Unlock()
}

// stop cancels all pending releases (called by Transport.Close).
func (c *Conditioner) stop() {
	c.mu.Lock()
	c.stopped = true
	for tm := range c.timers {
		tm.Stop()
	}
	clear(c.timers)
	c.mu.Unlock()
}
