package nettcp

import (
	"sync"
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/types"
)

// condPair boots two started transports A→B with a conditioner on A and
// a recorder on B. now() is wall time since boot.
func condPair(t *testing.T, mkCond func(now func() types.Time) *Conditioner) (a, b *Transport, rec *recorder, now func() types.Time) {
	t.Helper()
	addrs := freeAddrs(t, 2)
	start := time.Now()
	now = func() types.Time { return types.Time(time.Since(start)) }
	var muA, muB sync.Mutex
	a = New(0, addrs, &muA, nopHandler, WithConditioner(mkCond(now)))
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	rec = &recorder{}
	b = New(1, addrs, &muB, rec)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return a, b, rec, now
}

var zeroLink = network.DelayLink{P: network.Fixed{D: 0}}

// TestChaosSocketClamp checks the §2 clamp at the socket layer: with
// 100% loss and no omission budget, a message sent before GST is not
// dropped but released at the bound max(GST, t)+Δ — so it arrives after
// GST, never silently disappears.
func TestChaosSocketClamp(t *testing.T) {
	const gst = 600 * time.Millisecond
	const delta = 100 * time.Millisecond
	a, _, rec, now := condPair(t, func(now func() types.Time) *Conditioner {
		return NewConditioner(adversary.Lossy{Base: zeroLink, P: 1}, gst, delta,
			network.OmissionBudget{}, now, 1)
	})
	a.Send(1, &msg.ViewMsg{V: 7})
	time.Sleep(gst / 2)
	if rec.count() != 0 {
		t.Fatal("lossy pre-GST message delivered before the clamp bound")
	}
	waitFor(t, 10*time.Second, "clamped release", func() bool { return rec.count() == 1 })
	if got := now(); got < types.Time(gst) {
		t.Fatalf("delivered at %v, before GST %v", got, gst)
	}
	ps := a.Stats().Peers[1]
	if ps.Delayed != 1 || ps.CondDrops != 0 {
		t.Fatalf("delayed=%d condDrops=%d, want 1/0", ps.Delayed, ps.CondDrops)
	}
}

// TestChaosSocketOmissionBudget checks that post-GST drops are granted
// as true omissions only up to the budget; the rest degrade to clamped
// releases and still arrive.
func TestChaosSocketOmissionBudget(t *testing.T) {
	const delta = 50 * time.Millisecond
	var cond *Conditioner
	a, _, rec, _ := condPair(t, func(now func() types.Time) *Conditioner {
		cond = NewConditioner(adversary.Lossy{Base: zeroLink, P: 1}, 0, delta,
			network.OmissionBudget{MaxMessages: 2, MaxSenders: 1}, now, 1)
		return cond
	})
	const sends = 5
	for i := 0; i < sends; i++ {
		a.Send(1, &msg.Wish{V: types.View(i)})
	}
	if got := cond.Omitted(); got != 2 {
		t.Fatalf("Omitted = %d, want 2", got)
	}
	waitFor(t, 10*time.Second, "unfunded drops to arrive", func() bool {
		return rec.count() == sends-2
	})
	ps := a.Stats().Peers[1]
	if ps.CondDrops != 2 || ps.Delayed != sends-2 {
		t.Fatalf("condDrops=%d delayed=%d, want 2/%d", ps.CondDrops, ps.Delayed, sends-2)
	}
}

// TestChaosSocketChurn checks the crash-recovery down state: while down
// the node neither sends nor receives; after recovery traffic flows.
func TestChaosSocketChurn(t *testing.T) {
	var cond *Conditioner
	a, b, recB, _ := condPair(t, func(now func() types.Time) *Conditioner {
		cond = NewConditioner(nil, 0, 50*time.Millisecond, network.OmissionBudget{}, now, 1)
		return cond
	})
	// Up: a round trip works.
	a.Send(1, &msg.ViewMsg{V: 1})
	waitFor(t, 10*time.Second, "delivery while up", func() bool { return recB.count() == 1 })

	cond.SetDown(true)
	a.Send(1, &msg.ViewMsg{V: 2}) // outbound while down: dropped
	b.Send(0, &msg.ViewMsg{V: 3}) // inbound while down: discarded
	time.Sleep(200 * time.Millisecond)
	if recB.count() != 1 {
		t.Fatal("outbound message leaked while down")
	}
	if got := a.Stats().Peers[1].CondDrops; got != 1 {
		t.Fatalf("condDrops = %d, want 1", got)
	}
	if got := a.Stats().Delivered; got != 0 {
		t.Fatalf("node delivered %d inbound messages while down", got)
	}

	cond.SetDown(false)
	a.Send(1, &msg.ViewMsg{V: 4})
	waitFor(t, 10*time.Second, "delivery after recovery", func() bool { return recB.count() == 2 })
}

// TestChaosSocketDuplication checks duplication at the socket layer:
// the receiver sees the extra copy and the sender counts it.
func TestChaosSocketDuplication(t *testing.T) {
	a, _, rec, _ := condPair(t, func(now func() types.Time) *Conditioner {
		return NewConditioner(adversary.Duplicating{Base: zeroLink, P: 1}, 0,
			50*time.Millisecond, network.OmissionBudget{}, now, 1)
	})
	a.Send(1, &msg.QC{V: 5})
	waitFor(t, 10*time.Second, "both copies", func() bool { return rec.count() == 2 })
	if got := a.Stats().Peers[1].Duplicates; got != 1 {
		t.Fatalf("duplicates = %d, want 1", got)
	}
}

// TestChaosSocketStraggler checks the slow-replica model at the socket
// layer: a per-recipient processing delay shifts the release past the
// delay even on an otherwise unconditioned link, mirroring the
// simulator's post-clamp straggler semantics.
func TestChaosSocketStraggler(t *testing.T) {
	const proc = 400 * time.Millisecond
	a, _, rec, now := condPair(t, func(now func() types.Time) *Conditioner {
		cond := NewConditioner(nil, 0, 50*time.Millisecond, network.OmissionBudget{}, now, 1)
		cond.SetProcDelays([]time.Duration{0, proc})
		return cond
	})
	a.Send(1, &msg.ViewMsg{V: 1})
	time.Sleep(proc / 2)
	if rec.count() != 0 {
		t.Fatal("straggler message delivered before its processing delay")
	}
	waitFor(t, 10*time.Second, "straggler release", func() bool { return rec.count() == 1 })
	if got := now(); got < types.Time(proc) {
		t.Fatalf("delivered at %v, before the %v processing delay", got, proc)
	}
	if got := a.Stats().Peers[1].Delayed; got != 1 {
		t.Fatalf("delayed = %d, want 1", got)
	}
}

// TestChaosSocketTopology checks that a regional topology compiled with
// Topology.Policy conditions real socket traffic: the inter-region
// latency class holds up delivery between regions.
func TestChaosSocketTopology(t *testing.T) {
	const inter = 400 * time.Millisecond
	topo := &network.Topology{Regions: []int{1, 1}, Intra: time.Millisecond, Inter: inter}
	if err := topo.Validate(2, time.Second); err != nil {
		t.Fatal(err)
	}
	a, _, rec, now := condPair(t, func(now func() types.Time) *Conditioner {
		return NewConditioner(topo.Policy(), 0, time.Second, network.OmissionBudget{}, now, 1)
	})
	a.Send(1, &msg.ViewMsg{V: 1})
	time.Sleep(inter / 2)
	if rec.count() != 0 {
		t.Fatal("inter-region message arrived before its latency class")
	}
	waitFor(t, 10*time.Second, "inter-region delivery", func() bool { return rec.count() == 1 })
	if got := now(); got < types.Time(inter) {
		t.Fatalf("delivered at %v, before the %v inter-region class", got, inter)
	}
}

// TestChaosSocketPartition checks the partition primitive severs the
// cut links at the socket layer until heal and restores them after.
func TestChaosSocketPartition(t *testing.T) {
	const heal = 500 * time.Millisecond
	const delta = 50 * time.Millisecond
	a, _, rec, now := condPair(t, func(now func() types.Time) *Conditioner {
		link := adversary.NewPartition(zeroLink, 2, types.Time(heal),
			[]types.NodeID{0}, []types.NodeID{1})
		// GST at heal: the partition window is the asynchronous period.
		return NewConditioner(link, heal, delta, network.OmissionBudget{}, now, 1)
	})
	a.Send(1, &msg.ViewMsg{V: 1})
	time.Sleep(heal / 2)
	if rec.count() != 0 {
		t.Fatal("message crossed the partition before heal")
	}
	waitFor(t, 10*time.Second, "post-heal delivery", func() bool { return rec.count() == 1 })
	if got := now(); got < types.Time(heal) {
		t.Fatalf("delivered at %v, before heal %v", got, heal)
	}
}
