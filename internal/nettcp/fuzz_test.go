package nettcp

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"lumiere/internal/crypto"
	"lumiere/internal/msg"
	"lumiere/internal/types"
)

// fuzzSig derives a signature from fuzz bytes.
func fuzzSig(data []byte) crypto.Signature {
	return crypto.Signature{
		Signer: types.NodeID(len(data) % 31),
		Bytes:  append([]byte(nil), data...),
	}
}

// fuzzAgg derives an aggregate (sorted, duplicate-free signers with
// parallel component signatures) from fuzz bytes.
func fuzzAgg(data []byte) crypto.Aggregate {
	k := 1 + len(data)%4
	agg := crypto.Aggregate{
		Signers: make([]types.NodeID, k),
		Bytes:   make([][]byte, k),
	}
	for i := 0; i < k; i++ {
		agg.Signers[i] = types.NodeID(i)
		component := append([]byte{byte(i)}, data...)
		agg.Bytes[i] = component
	}
	return agg
}

// buildFuzzMessage constructs a message of the given kind whose fields
// are derived from the raw fuzz input.
func buildFuzzMessage(kind msg.Kind, v types.View, data []byte) msg.Message {
	var hash [32]byte
	copy(hash[:], data)
	switch kind {
	case msg.KindView:
		return &msg.ViewMsg{V: v, Sig: fuzzSig(data)}
	case msg.KindVC:
		return &msg.VC{V: v, Agg: fuzzAgg(data)}
	case msg.KindEpochView:
		return &msg.EpochViewMsg{V: v, Sig: fuzzSig(data)}
	case msg.KindEC:
		return &msg.EC{V: v, Agg: fuzzAgg(data)}
	case msg.KindTC:
		return &msg.TC{V: v, Agg: fuzzAgg(data)}
	case msg.KindProposal:
		p := &msg.Proposal{V: v, Leader: types.NodeID(len(data) % 7), Block: append([]byte(nil), data...), Hash: hash}
		if len(data)%2 == 0 {
			p.Justify = &msg.QC{V: v - 1, BlockHash: hash, Agg: fuzzAgg(data)}
		}
		return p
	case msg.KindVote:
		return &msg.Vote{V: v, BlockHash: hash, Sig: fuzzSig(data)}
	case msg.KindQC:
		return &msg.QC{V: v, BlockHash: hash, Agg: fuzzAgg(data)}
	case msg.KindWish:
		return &msg.Wish{V: v, Sig: fuzzSig(data)}
	case msg.KindTimeout:
		return &msg.Timeout{V: v, Sig: fuzzSig(data)}
	case msg.KindNewView:
		nv := &msg.NewView{V: v, FromRaw: types.NodeID(len(data) % 7)}
		if len(data)%2 == 1 {
			nv.HighQC = &msg.QC{V: v - 1, BlockHash: hash, Agg: fuzzAgg(data)}
		}
		return nv
	case msg.KindRequest:
		return &msg.Request{ID: uint64(len(data)), Payload: append([]byte(nil), data...)}
	default:
		return nil
	}
}

// FuzzMessageGob fuzzes the wire format: the gob envelope encode/decode
// round-trip used by the TCP transport (writeLoop/readLoop), seeded with
// every message kind. It asserts the decode preserves the envelope
// sender and the message's kind and view, and that one round-trip
// reaches gob's canonical fixed point (decode∘encode is the identity
// from then on — no field is silently dropped or mangled).
func FuzzMessageGob(f *testing.F) {
	for k := msg.KindView; k <= msg.KindRequest; k++ {
		f.Add(uint8(k), int64(7), []byte{1, 2, 3, 4, 5})
		f.Add(uint8(k), int64(0), []byte{})
		f.Add(uint8(k), int64(-1), []byte{0xff})
	}
	nKinds := uint8(msg.KindRequest)
	f.Fuzz(func(t *testing.T, kindRaw uint8, viewRaw int64, data []byte) {
		kind := msg.Kind(kindRaw%nKinds + 1)
		m := buildFuzzMessage(kind, types.View(viewRaw), data)
		if m == nil {
			t.Fatalf("no builder for kind %v", kind)
		}
		env := envelope{From: types.NodeID(int(kindRaw) % 9), Msg: m}

		// Encode/decode exactly as writeLoop and readLoop do.
		var wire bytes.Buffer
		if err := gob.NewEncoder(&wire).Encode(&env); err != nil {
			t.Fatalf("encode %v: %v", kind, err)
		}
		var got envelope
		if err := gob.NewDecoder(&wire).Decode(&got); err != nil {
			t.Fatalf("decode %v: %v", kind, err)
		}
		if got.Msg == nil {
			t.Fatalf("decoded nil message for kind %v", kind)
		}
		if got.From != env.From {
			t.Fatalf("sender changed: %v -> %v", env.From, got.From)
		}
		if got.Msg.Kind() != m.Kind() {
			t.Fatalf("kind changed: %v -> %v", m.Kind(), got.Msg.Kind())
		}
		if got.Msg.View() != m.View() {
			t.Fatalf("view changed: %v -> %v", m.View(), got.Msg.View())
		}

		// One round-trip must reach the canonical fixed point: encoding
		// the decoded envelope and round-tripping again must reproduce
		// both the bytes and the value.
		var wire2 bytes.Buffer
		if err := gob.NewEncoder(&wire2).Encode(&got); err != nil {
			t.Fatalf("re-encode %v: %v", kind, err)
		}
		canonical := append([]byte(nil), wire2.Bytes()...)
		var got2 envelope
		if err := gob.NewDecoder(&wire2).Decode(&got2); err != nil {
			t.Fatalf("re-decode %v: %v", kind, err)
		}
		var wire3 bytes.Buffer
		if err := gob.NewEncoder(&wire3).Encode(&got2); err != nil {
			t.Fatalf("re-re-encode %v: %v", kind, err)
		}
		if !bytes.Equal(canonical, wire3.Bytes()) {
			t.Fatalf("gob round-trip of %v is not a fixed point", kind)
		}
		if !reflect.DeepEqual(got.Msg, got2.Msg) {
			t.Fatalf("message mutated across round-trips:\n%#v\nvs\n%#v", got.Msg, got2.Msg)
		}
	})
}
