package nettcp

import (
	"fmt"
	"net"
	"testing"
	"time"

	"lumiere/internal/types"
)

// freeAddrs reserves n distinct localhost ports. There is a small reuse
// race between Close and the node's Listen, acceptable in tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestClusterViewSync boots a real 4-node TCP cluster running Lumiere
// over the plain view core and waits for consensus decisions.
func TestClusterViewSync(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	base := types.NewConfig(1, 200*time.Millisecond)
	addrs := freeAddrs(t, base.N)
	decided := make(chan types.View, 1024)
	nodes := make([]*Node, base.N)
	for i := 0; i < base.N; i++ {
		n, err := StartNode(NodeConfig{
			ID:         types.NodeID(i),
			Addrs:      addrs,
			Base:       base,
			Seed:       99,
			OnDecision: func(v types.View) { decided <- v },
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
		defer n.Close()
	}
	deadline := time.After(30 * time.Second)
	got := 0
	for got < 10 {
		select {
		case <-decided:
			got++
		case <-deadline:
			t.Fatalf("only %d decisions before deadline", got)
		}
	}
	for i, n := range nodes {
		v, e, _ := n.Status()
		if v < 0 || e < 0 {
			t.Errorf("node %d stuck at view %v epoch %v", i, v, e)
		}
	}
}

// TestClusterSMR boots a TCP cluster running full HotStuff SMR, submits
// commands, and checks replicated execution and log consistency.
func TestClusterSMR(t *testing.T) {
	if testing.Short() {
		t.Skip("real-network test")
	}
	base := types.NewConfig(1, 200*time.Millisecond)
	addrs := freeAddrs(t, base.N)
	nodes := make([]*Node, base.N)
	for i := 0; i < base.N; i++ {
		n, err := StartNode(NodeConfig{
			ID:    types.NodeID(i),
			Addrs: addrs,
			Base:  base,
			Seed:  42,
			SMR:   true,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = n
		defer n.Close()
	}
	for i := 0; i < 20; i++ {
		target := nodes[i%len(nodes)]
		if err := target.Submit([]byte(fmt.Sprintf("SET key%d value%d", i, i))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, n := range nodes {
			if v, ok := n.KV().Get("key19"); !ok || v != "value19" {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for i, n := range nodes {
				_, _, c := n.Status()
				t.Logf("node %d committed=%d kv=%d", i, c, n.KV().Len())
			}
			t.Fatal("cluster did not replicate all commands in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Commit logs are prefix-consistent.
	logs := make([][][32]byte, len(nodes))
	minLen := 1 << 30
	for i, n := range nodes {
		logs[i] = n.CommittedHashes()
		if len(logs[i]) < minLen {
			minLen = len(logs[i])
		}
	}
	for i := 1; i < len(logs); i++ {
		for j := 0; j < minLen; j++ {
			if logs[i][j] != logs[0][j] {
				t.Fatalf("commit logs diverge at %d", j)
			}
		}
	}
}
