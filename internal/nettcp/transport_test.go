package nettcp

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lumiere/internal/metrics"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// recorder is a Handler that appends every delivery under its own lock
// (deliveries already run under the node lock; the recorder's lock lets
// the test goroutine read concurrently).
type recorder struct {
	mu    sync.Mutex
	froms []types.NodeID
	msgs  []msg.Message
}

func (r *recorder) Deliver(from types.NodeID, m msg.Message) {
	r.mu.Lock()
	r.froms = append(r.froms, from)
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func (r *recorder) snapshot() []msg.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]msg.Message(nil), r.msgs...)
}

var nopHandler = network.HandlerFunc(func(types.NodeID, msg.Message) {})

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSelfSendOrdering checks the simulator's self-delivery convention on
// the TCP transport: a node's messages to itself arrive in send order.
// (A transport that spawns one goroutine per self-send reorders under
// load and fails this.)
func TestSelfSendOrdering(t *testing.T) {
	var mu sync.Mutex
	rec := &recorder{}
	tr := New(0, []string{"127.0.0.1:0"}, &mu, rec)
	defer tr.Close()
	const total = 2000
	for i := 0; i < total; i++ {
		tr.Send(0, &msg.ViewMsg{V: types.View(i)})
	}
	waitFor(t, 10*time.Second, "self deliveries", func() bool { return rec.count() == total })
	for i, m := range rec.snapshot() {
		if v := m.(*msg.ViewMsg).V; v != types.View(i) {
			t.Fatalf("delivery %d: got view %v (self-sends reordered)", i, v)
		}
	}
	if got := tr.Stats().SelfDelivered; got != total {
		t.Fatalf("SelfDelivered = %d, want %d", got, total)
	}
}

// TestCloseQuiescesDuringTraffic closes a transport while senders hammer
// it from several goroutines and checks the Close contract: once Close
// returns, no handler call is in flight and none follows.
func TestCloseQuiescesDuringTraffic(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var muA, muB sync.Mutex
	var closedA, after atomic.Int64
	handlerA := network.HandlerFunc(func(types.NodeID, msg.Message) {
		if closedA.Load() != 0 {
			after.Add(1)
		}
	})
	a := New(0, addrs, &muA, handlerA)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	b := New(1, addrs, &muB, &recorder{})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.Send(0, &msg.ViewMsg{V: types.View(i)})
				a.Send(1, &msg.Wish{V: types.View(i)})
				b.Send(0, &msg.Timeout{V: types.View(i)})
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	a.Close()
	closedA.Store(1)
	close(stop)
	wg.Wait()
	time.Sleep(50 * time.Millisecond)
	if n := after.Load(); n != 0 {
		t.Fatalf("%d handler calls after Close returned", n)
	}
}

// TestRedialAfterPeerRestart kills a peer, restarts it on the same
// address, and checks the write loop re-dials and delivers again —
// with the reconnection visible in the stats instead of silent.
func TestRedialAfterPeerRestart(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var muA, muB1 sync.Mutex
	a := New(0, addrs, &muA, nopHandler)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	recB1 := &recorder{}
	b1 := New(1, addrs, &muB1, recB1)
	if err := b1.Start(); err != nil {
		t.Fatal(err)
	}
	a.Send(1, &msg.ViewMsg{V: 1})
	waitFor(t, 10*time.Second, "first delivery", func() bool { return recB1.count() >= 1 })
	b1.Close()

	// Restart the peer on the same address (retry until the port frees).
	var muB2 sync.Mutex
	recB2 := &recorder{}
	var b2 *Transport
	deadline := time.Now().Add(5 * time.Second)
	for {
		b2 = New(1, addrs, &muB2, recB2)
		if err := b2.Start(); err == nil {
			break
		}
		b2.Close()
		if time.Now().After(deadline) {
			t.Fatal("could not rebind peer address")
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer b2.Close()

	// Keep sending until the write loop notices the dead connection,
	// re-dials, and a message lands on the restarted peer.
	waitFor(t, 15*time.Second, "delivery after restart", func() bool {
		a.Send(1, &msg.ViewMsg{V: 2})
		time.Sleep(10 * time.Millisecond)
		return recB2.count() >= 1
	})
	ps := a.Stats().Peers[1]
	if ps.Redials+ps.Resends+ps.DialFails == 0 {
		t.Errorf("no redial activity recorded after peer restart: %+v", ps)
	}
}

// TestQueueOverflowCounted fills a peer queue with no write loop
// draining it and checks the overflow surfaces as QueueDrops rather
// than silence.
func TestQueueOverflowCounted(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var mu sync.Mutex
	tr := New(0, addrs, &mu, nopHandler)
	defer tr.Close()
	const extra = 32
	for i := 0; i < peerQueueSize+extra; i++ {
		tr.Send(1, &msg.Wish{V: types.View(i)})
	}
	ps := tr.Stats().Peers[1]
	if ps.Enqueued != peerQueueSize || ps.QueueDrops != extra {
		t.Fatalf("enqueued=%d queueDrops=%d, want %d/%d",
			ps.Enqueued, ps.QueueDrops, peerQueueSize, extra)
	}
}

// TestDecodeErrorCounted feeds a listener a corrupt stream and checks
// the abandoned connection is counted instead of swallowed.
func TestDecodeErrorCounted(t *testing.T) {
	addrs := freeAddrs(t, 1)
	var mu sync.Mutex
	tr := New(0, addrs, &mu, nopHandler)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not a gob stream")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, 5*time.Second, "decode error", func() bool { return tr.Stats().DecodeErrors == 1 })
}

// TestWordsParityWithSimulator drives one identical message trace
// through the TCP transport's metrics recorder and through the
// simulated network's, and requires the words accounting to agree
// exactly: same send count, same total words, same per-kind counts.
// This is the cross-check that makes wall-clock words tables directly
// comparable to simulated ones.
func TestWordsParityWithSimulator(t *testing.T) {
	cfg := types.NewConfig(1, 50*time.Millisecond)
	type op struct {
		from types.NodeID
		to   types.NodeID // -1 = broadcast
		m    msg.Message
	}
	qc := &msg.QC{V: 3}
	trace := []op{
		{0, -1, &msg.ViewMsg{V: 1}},
		{1, 0, &msg.Vote{V: 1}},
		{2, 0, &msg.Vote{V: 1}},
		{0, -1, qc},
		{0, -1, &msg.Proposal{V: 2, Justify: qc, Block: []byte("x")}}, // 5 words
		{1, -1, &msg.Proposal{V: 2}},                                  // 2 words
		{3, -1, &msg.Wish{V: 2}},
		{2, 2, &msg.Timeout{V: 2}},              // self-send: not a transmission
		{1, -1, &msg.NewView{V: 3, HighQC: qc}}, // 4 words
		{2, 0, &msg.NewView{V: 3}},              // 1 word
		{3, -1, &msg.Request{ID: 9, Payload: []byte("SET k v")}},
		{0, -1, &msg.VC{V: 1}},
		{1, -1, &msg.EC{}},
		{2, -1, &msg.TC{}},
		{3, 1, &msg.EpochViewMsg{}},
	}

	// TCP side: one transport + collector per node. OnSend fires at
	// enqueue time, so the trace needs no live sockets.
	addrs := freeAddrs(t, cfg.N)
	cols := make([]*metrics.Collector, cfg.N)
	trs := make([]*Transport, cfg.N)
	mus := make([]sync.Mutex, cfg.N)
	for i := 0; i < cfg.N; i++ {
		cols[i] = metrics.NewCollector(nil)
		trs[i] = New(types.NodeID(i), addrs, &mus[i], nopHandler,
			WithObserver(cols[i], func() types.Time { return 0 }))
		defer trs[i].Close()
	}
	for _, o := range trace {
		if o.to < 0 {
			trs[o.from].Broadcast(o.m)
		} else {
			trs[o.from].Send(o.to, o.m)
		}
	}

	// Simulator side: the same trace on the simulated network.
	sched := sim.New(1)
	simNet := network.NewNet(sched, cfg, 0, nil)
	simCol := metrics.NewCollector(nil)
	simNet.Observe(simCol)
	eps := make([]network.Endpoint, cfg.N)
	for i := 0; i < cfg.N; i++ {
		eps[i] = simNet.Attach(types.NodeID(i), nopHandler)
	}
	for _, o := range trace {
		if o.to < 0 {
			eps[o.from].Broadcast(o.m)
		} else {
			eps[o.from].Send(o.to, o.m)
		}
	}

	var tcpWords, tcpSends int64
	for _, c := range cols {
		tcpWords += c.WordsTotal()
		tcpSends += c.HonestSends()
	}
	if tcpSends == 0 {
		t.Fatal("trace produced no transmissions")
	}
	if tcpWords != simCol.WordsTotal() || tcpSends != simCol.HonestSends() {
		t.Fatalf("TCP recorder (%d sends, %d words) != simulator model (%d sends, %d words)",
			tcpSends, tcpWords, simCol.HonestSends(), simCol.WordsTotal())
	}
	kinds := []msg.Kind{
		msg.KindView, msg.KindVC, msg.KindEpochView, msg.KindEC, msg.KindTC,
		msg.KindProposal, msg.KindVote, msg.KindQC, msg.KindWish,
		msg.KindTimeout, msg.KindNewView, msg.KindRequest,
	}
	for _, k := range kinds {
		var tcp int64
		for _, c := range cols {
			tcp += c.KindCount(k)
		}
		if sim := simCol.KindCount(k); tcp != sim {
			t.Errorf("kind %v: TCP counted %d, simulator %d", k, tcp, sim)
		}
	}
}
