package nettcp

import (
	"fmt"
	"sync"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/clock"
	"lumiere/internal/core"
	"lumiere/internal/crypto"
	"lumiere/internal/hotstuff"
	"lumiere/internal/metrics"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/pacemaker"
	"lumiere/internal/replica"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
	"lumiere/internal/viewcore"
)

// NodeConfig configures one TCP node.
type NodeConfig struct {
	// ID is this node's index into Addrs.
	ID types.NodeID
	// Addrs lists every node's listen address, indexed by NodeID.
	Addrs []string
	// Base is the shared execution-model configuration.
	Base types.Config
	// Seed derives the shared PKI (all nodes must agree).
	Seed int64
	// Variant selects full or basic Lumiere (default full).
	Variant core.Variant
	// SMR runs chained HotStuff with a KV store (default: plain view
	// core).
	SMR bool
	// OnDecision, if set, fires when this node's leader role produces
	// a QC (a consensus decision).
	OnDecision func(v types.View)
	// OnCommit, if set, fires for each committed block (SMR only).
	OnCommit func(b *hotstuff.Block)

	// Start, when non-zero, is the node's wall-clock origin: local
	// times (metrics timestamps, GST) are measured from it. A cluster
	// harness passes one shared instant to all nodes so their decision
	// and send series live on a single comparable time base. Zero means
	// "now".
	Start time.Time

	// Link, when set, conditions this node's outbound socket traffic
	// with the same LinkPolicy primitives that condition the simulated
	// network (partitions, loss, duplication, reorder jitter), under
	// the §2 clamp max(GST, t)+Δ relative to Start. See Conditioner.
	Link network.LinkPolicy
	// GST is the global stabilization time (relative to Start) the
	// conditioner's clamp and omission budget honor.
	GST time.Duration
	// OmissionBudget authorizes true post-GST omission of this node's
	// outbound messages (see network.OmissionBudget).
	OmissionBudget network.OmissionBudget
	// ChaosSeed drives the link conditioner's randomness (default:
	// Seed + the node's ID, so per-node streams differ).
	ChaosSeed int64
	// Churn schedules crash-recovery downtimes: during each interval
	// the node neither sends nor receives (state is kept, like the
	// simulator's BehaviorChurn).
	Churn []adversary.Downtime
	// ProcDelays, when set, are per-recipient processing delays indexed
	// by NodeID (missing entries are zero): every envelope this node
	// sends to processor i is released ProcDelays[i] after its clamped
	// release time — the WAN slow-replica model. Give every node of a
	// cluster the same slice to emulate stragglers; use
	// network.Topology.NodeProcDelays to derive it from a regional
	// topology. Applied after the §2 clamp, like the simulator's.
	ProcDelays []time.Duration
}

// Node is a live TCP replica running Lumiere.
type Node struct {
	mu        sync.Mutex
	cfg       NodeConfig
	transport *Transport
	collector *metrics.Collector
	cond      *Conditioner
	rep       *replica.Replica
	pm        *core.Pacemaker
	hs        *hotstuff.Core
	kv        *statemachine.KV
	wall      *clock.Wall
	churn     []*time.Timer
}

// StartNode boots a node: it listens, connects to peers, and starts the
// protocol immediately (the processor joins with lc = 0).
func StartNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Base.Validate(); err != nil {
		return nil, fmt.Errorf("nettcp: %w", err)
	}
	if len(cfg.Addrs) != cfg.Base.N {
		return nil, fmt.Errorf("nettcp: %d addrs for n=%d", len(cfg.Addrs), cfg.Base.N)
	}
	n := &Node{cfg: cfg}
	start := cfg.Start
	if start.IsZero() {
		start = time.Now()
	}
	n.wall = clock.NewWallAt(&n.mu, start)

	variant := cfg.Variant
	if variant == 0 {
		variant = core.VariantFull
	}
	// The collector counts every wire send in the simulator's per-kind
	// words model; per-epoch words use the protocol's own epoch length,
	// exactly as the harness's accounting does.
	epochLen := core.Config{Base: cfg.Base, Variant: variant}.EpochLen()
	n.collector = metrics.NewCollector(nil, metrics.WithEpochWords(epochLen))

	rep := replica.New(cfg.ID, nil, nil)
	n.rep = rep
	topts := []Option{WithObserver(n.collector, n.wall.Now)}
	if cfg.Link != nil || len(cfg.Churn) > 0 || len(cfg.ProcDelays) > 0 ||
		cfg.OmissionBudget != (network.OmissionBudget{}) {
		chaosSeed := cfg.ChaosSeed
		if chaosSeed == 0 {
			chaosSeed = cfg.Seed + int64(cfg.ID)
		}
		n.cond = NewConditioner(cfg.Link, cfg.GST, cfg.Base.Delta, cfg.OmissionBudget, n.wall.Now, chaosSeed)
		n.cond.SetProcDelays(cfg.ProcDelays)
		topts = append(topts, WithConditioner(n.cond))
	}
	n.transport = New(cfg.ID, cfg.Addrs, &n.mu, rep, topts...)

	suite := crypto.NewEd25519Suite(cfg.Base.N, cfg.Seed)
	clk := clock.New(n.wall, 0)

	var pm *core.Pacemaker
	leaderFn := func(v types.View) types.NodeID { return pm.Leader(v) }
	onQC := func(qc *msg.QC) { pm.Handle(cfg.ID, qc) }
	obs := decisionObs{node: n}
	var engine replica.Engine
	if cfg.SMR {
		n.kv = statemachine.NewKV()
		n.hs = hotstuff.New(hotstuff.Config{Base: cfg.Base}, n.transport, n.wall, suite,
			leaderFn, onQC, n.kv, obs, func(b *hotstuff.Block, _ types.Time) {
				if cfg.OnCommit != nil {
					cfg.OnCommit(b)
				}
			})
		engine = n.hs
	} else {
		engine = viewcore.New(cfg.Base, n.transport, n.wall, suite, leaderFn, onQC, obs)
	}
	ccfg := core.Config{Base: cfg.Base, Variant: variant, ScheduleSeed: cfg.Seed + 7}
	pm = core.New(ccfg, n.transport, n.wall, clk, suite, engine, pacemaker.NopObserver{}, nil)
	n.pm = pm
	rep.PM = pm
	rep.Core = engine

	if err := n.transport.Start(); err != nil {
		return nil, err
	}
	if n.cond != nil {
		for _, d := range cfg.Churn {
			down, up := d.From, d.To
			n.churn = append(n.churn,
				time.AfterFunc(down, func() { n.cond.SetDown(true) }),
				time.AfterFunc(up, func() { n.cond.SetDown(false) }))
		}
	}
	n.mu.Lock()
	rep.Start()
	n.mu.Unlock()
	return n, nil
}

type decisionObs struct{ node *Node }

func (o decisionObs) OnQCSeen(*msg.QC, types.Time) {}

func (o decisionObs) OnQCProduced(qc *msg.QC, at types.Time) {
	// The producing node is the view's leader: record the consensus
	// decision exactly as the simulator's qcObserver does.
	o.node.collector.RecordDecision(qc.V, o.node.cfg.ID, at)
	if o.node.cfg.OnDecision != nil {
		o.node.cfg.OnDecision(qc.V)
	}
}

// Submit enqueues a client command into this node's mempool and gossips
// it to all replicas (SMR only).
func (n *Node) Submit(payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hs == nil {
		return fmt.Errorf("nettcp: node is not running SMR")
	}
	id := n.hs.Submit(payload)
	n.transport.Broadcast(&msg.Request{ID: id, Payload: payload})
	return nil
}

// Status returns a snapshot of protocol progress.
func (n *Node) Status() (view types.View, epoch types.Epoch, committed int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	view = n.pm.CurrentView()
	epoch = n.pm.CurrentEpoch()
	if n.hs != nil {
		committed = n.hs.CommittedCount()
	}
	return view, epoch, committed
}

// Metrics returns an independent snapshot of the node's metrics
// Collector: wire sends counted in the simulator's per-kind words model
// (msg.Words), decision instants on the node's wall clock. Safe to call
// while the node runs.
func (n *Node) Metrics() *metrics.Collector { return n.collector.Snapshot() }

// Stats returns a snapshot of the node's transport counters (per-peer
// sends, drops, redials, decode errors).
func (n *Node) Stats() Stats { return n.transport.Stats() }

// Omitted returns the true post-GST omissions the node's conditioner
// granted (0 without chaos).
func (n *Node) Omitted() int64 {
	if n.cond == nil {
		return 0
	}
	return n.cond.Omitted()
}

// Now returns the node's local wall-clock time (nanoseconds since its
// Start origin) — the time base of Metrics timestamps.
func (n *Node) Now() types.Time { return n.wall.Now() }

// KV exposes the node's state machine (SMR only; may be nil).
func (n *Node) KV() *statemachine.KV { return n.kv }

// CommittedHashes returns the commit log (SMR only).
func (n *Node) CommittedHashes() []hotstuff.Hash {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hs == nil {
		return nil
	}
	return n.hs.CommittedHashes()
}

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.transport.Addr() }

// Close stops the node and waits until no handler call is in flight.
func (n *Node) Close() {
	for _, tm := range n.churn {
		tm.Stop()
	}
	n.transport.Close()
}
