package nettcp

import (
	"fmt"
	"sync"

	"lumiere/internal/clock"
	"lumiere/internal/core"
	"lumiere/internal/crypto"
	"lumiere/internal/hotstuff"
	"lumiere/internal/msg"
	"lumiere/internal/pacemaker"
	"lumiere/internal/replica"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
	"lumiere/internal/viewcore"
)

// NodeConfig configures one TCP node.
type NodeConfig struct {
	// ID is this node's index into Addrs.
	ID types.NodeID
	// Addrs lists every node's listen address, indexed by NodeID.
	Addrs []string
	// Base is the shared execution-model configuration.
	Base types.Config
	// Seed derives the shared PKI (all nodes must agree).
	Seed int64
	// Variant selects full or basic Lumiere (default full).
	Variant core.Variant
	// SMR runs chained HotStuff with a KV store (default: plain view
	// core).
	SMR bool
	// OnDecision, if set, fires when this node's leader role produces
	// a QC (a consensus decision).
	OnDecision func(v types.View)
	// OnCommit, if set, fires for each committed block (SMR only).
	OnCommit func(b *hotstuff.Block)
}

// Node is a live TCP replica running Lumiere.
type Node struct {
	mu        sync.Mutex
	cfg       NodeConfig
	transport *Transport
	rep       *replica.Replica
	pm        *core.Pacemaker
	hs        *hotstuff.Core
	kv        *statemachine.KV
	wall      *clock.Wall
}

// StartNode boots a node: it listens, connects to peers, and starts the
// protocol immediately (the processor joins with lc = 0).
func StartNode(cfg NodeConfig) (*Node, error) {
	if err := cfg.Base.Validate(); err != nil {
		return nil, fmt.Errorf("nettcp: %w", err)
	}
	if len(cfg.Addrs) != cfg.Base.N {
		return nil, fmt.Errorf("nettcp: %d addrs for n=%d", len(cfg.Addrs), cfg.Base.N)
	}
	n := &Node{cfg: cfg}
	n.wall = clock.NewWall(&n.mu)
	rep := replica.New(cfg.ID, nil, nil)
	n.rep = rep
	n.transport = New(cfg.ID, cfg.Addrs, &n.mu, rep)

	suite := crypto.NewEd25519Suite(cfg.Base.N, cfg.Seed)
	clk := clock.New(n.wall, 0)

	var pm *core.Pacemaker
	leaderFn := func(v types.View) types.NodeID { return pm.Leader(v) }
	onQC := func(qc *msg.QC) { pm.Handle(cfg.ID, qc) }
	obs := decisionObs{node: n}
	var engine replica.Engine
	if cfg.SMR {
		n.kv = statemachine.NewKV()
		n.hs = hotstuff.New(hotstuff.Config{Base: cfg.Base}, n.transport, n.wall, suite,
			leaderFn, onQC, n.kv, obs, func(b *hotstuff.Block, _ types.Time) {
				if cfg.OnCommit != nil {
					cfg.OnCommit(b)
				}
			})
		engine = n.hs
	} else {
		engine = viewcore.New(cfg.Base, n.transport, n.wall, suite, leaderFn, onQC, obs)
	}
	variant := cfg.Variant
	if variant == 0 {
		variant = core.VariantFull
	}
	ccfg := core.Config{Base: cfg.Base, Variant: variant, ScheduleSeed: cfg.Seed + 7}
	pm = core.New(ccfg, n.transport, n.wall, clk, suite, engine, pacemaker.NopObserver{}, nil)
	n.pm = pm
	rep.PM = pm
	rep.Core = engine

	if err := n.transport.Start(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	rep.Start()
	n.mu.Unlock()
	return n, nil
}

type decisionObs struct{ node *Node }

func (o decisionObs) OnQCSeen(*msg.QC, types.Time) {}

func (o decisionObs) OnQCProduced(qc *msg.QC, _ types.Time) {
	if o.node.cfg.OnDecision != nil {
		o.node.cfg.OnDecision(qc.V)
	}
}

// Submit enqueues a client command into this node's mempool and gossips
// it to all replicas (SMR only).
func (n *Node) Submit(payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hs == nil {
		return fmt.Errorf("nettcp: node is not running SMR")
	}
	id := n.hs.Submit(payload)
	n.transport.Broadcast(&msg.Request{ID: id, Payload: payload})
	return nil
}

// Status returns a snapshot of protocol progress.
func (n *Node) Status() (view types.View, epoch types.Epoch, committed int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	view = n.pm.CurrentView()
	epoch = n.pm.CurrentEpoch()
	if n.hs != nil {
		committed = n.hs.CommittedCount()
	}
	return view, epoch, committed
}

// KV exposes the node's state machine (SMR only; may be nil).
func (n *Node) KV() *statemachine.KV { return n.kv }

// CommittedHashes returns the commit log (SMR only).
func (n *Node) CommittedHashes() []hotstuff.Hash {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hs == nil {
		return nil
	}
	return n.hs.CommittedHashes()
}

// Addr returns the node's bound address.
func (n *Node) Addr() string { return n.transport.Addr() }

// Close stops the node.
func (n *Node) Close() { n.transport.Close() }
