package network_test

import (
	"testing"
	"time"

	"lumiere/internal/adversary"
	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// FuzzLinkPolicy drives a randomized chaos chain — loss over
// duplication over reorder jitter over a fixed delay — through the
// simulated network and asserts the §2 clamp invariant: absent an
// omission budget, every message sent at t is delivered at least once,
// between one and two times, and every delivery lands inside
// [t, max(GST, t)+Δ].
func FuzzLinkPolicy(f *testing.F) {
	f.Add(int64(1), uint16(500), uint16(300), byte(128), byte(128), uint16(20), uint16(30))
	f.Add(int64(2), uint16(0), uint16(0), byte(255), byte(255), uint16(0), uint16(1000))
	f.Add(int64(3), uint16(1000), uint16(1000), byte(0), byte(0), uint16(500), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, gstMs, sendMs uint16, lossB, dupB byte, jitMs, delayMs uint16) {
		delta := 100 * time.Millisecond
		gst := types.Time(0).Add(time.Duration(gstMs) * time.Millisecond)
		sendAt := types.Time(0).Add(time.Duration(sendMs) * time.Millisecond)
		jitter := time.Duration(jitMs) * time.Millisecond

		var chain network.LinkPolicy = network.DelayLink{P: network.Fixed{D: time.Duration(delayMs) * time.Millisecond}}
		if jitter > 0 {
			chain = adversary.Reordering{Base: chain, Jitter: jitter}
		}
		chain = adversary.Duplicating{Base: chain, P: float64(dupB) / 255, Jitter: jitter}
		chain = adversary.Lossy{Base: chain, P: float64(lossB) / 255}

		s := sim.New(seed)
		cfg := types.NewConfig(1, delta)
		net := network.NewNetLink(s, cfg, gst, chain)
		var deliveries []types.Time
		net.Attach(1, network.HandlerFunc(func(types.NodeID, msg.Message) {
			deliveries = append(deliveries, s.Now())
		}))
		net.Attach(2, network.HandlerFunc(func(types.NodeID, msg.Message) {}))
		net.Attach(3, network.HandlerFunc(func(types.NodeID, msg.Message) {}))
		ep := net.Attach(0, network.HandlerFunc(func(types.NodeID, msg.Message) {}))

		s.RunUntil(sendAt)
		ep.Send(1, &msg.ViewMsg{V: 7})
		s.RunFor(time.Duration(gstMs)*time.Millisecond + 10*delta + 10*jitter)

		bound := types.MaxTime(gst, sendAt).Add(delta)
		if len(deliveries) < 1 || len(deliveries) > 2 {
			t.Fatalf("deliveries = %d, want 1 or 2 (no omission without a budget)", len(deliveries))
		}
		for i, at := range deliveries {
			if at < sendAt || at > bound {
				t.Fatalf("delivery %d at %v outside [%v, %v] (gst=%v)", i, at, sendAt, bound, gst)
			}
		}
	})
}
