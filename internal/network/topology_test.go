package network_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/network"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// FuzzTopologyPolicy drives a fuzzed-but-valid regional topology through
// the simulated network and asserts the §2 clamp invariant plus the
// topology's own floor: every message is delivered exactly once inside
// [sendAt + class, max(GST, sendAt)+Δ] — a validated topology is never
// distorted by the clamp post-GST, and the link never beats its own
// latency class.
func FuzzTopologyPolicy(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(5), uint16(40), uint16(10), uint16(500), uint16(600))
	f.Add(int64(2), uint8(1), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0))
	f.Add(int64(3), uint8(4), uint16(90), uint16(90), uint16(0), uint16(1000), uint16(100))
	f.Fuzz(func(t *testing.T, seed int64, regions uint8, intraMs, interMs, jitMs, gstMs, sendMs uint16) {
		delta := 100 * time.Millisecond
		r := int(regions)%4 + 1
		topo := &network.Topology{
			Regions: make([]int, r),
			Intra:   time.Duration(intraMs) * time.Millisecond,
			Inter:   time.Duration(interMs) * time.Millisecond,
			Jitter:  time.Duration(jitMs) * time.Millisecond,
		}
		n := 0
		for i := range topo.Regions {
			topo.Regions[i] = i + 1
			n += i + 1
		}
		if n == 1 { // need a distinct sender and recipient
			topo.Regions[0], n = 2, 2
		}
		// Clamp the draw into validity: class + jitter ≤ Δ.
		if topo.Jitter > delta {
			topo.Jitter = delta
		}
		if topo.Intra+topo.Jitter > delta {
			topo.Intra = delta - topo.Jitter
		}
		if topo.Inter+topo.Jitter > delta {
			topo.Inter = delta - topo.Jitter
		}
		if err := topo.Validate(n, delta); err != nil {
			t.Fatalf("clamped topology invalid: %v", err)
		}

		gst := types.Time(0).Add(time.Duration(gstMs) * time.Millisecond)
		sendAt := types.Time(0).Add(time.Duration(sendMs) * time.Millisecond)
		s := sim.New(seed)
		cfg := types.Config{N: n, F: (n - 1) / 3, Delta: delta, X: types.DefaultX}
		net := network.NewNetLink(s, cfg, gst, topo.Policy())
		to := types.NodeID(n - 1) // last region
		var deliveries []types.Time
		for id := 0; id < n; id++ {
			id := types.NodeID(id)
			if id == to {
				net.Attach(id, network.HandlerFunc(func(types.NodeID, msg.Message) {
					deliveries = append(deliveries, s.Now())
				}))
			} else if id != 0 {
				net.Attach(id, network.HandlerFunc(func(types.NodeID, msg.Message) {}))
			}
		}
		ep := net.Attach(0, network.HandlerFunc(func(types.NodeID, msg.Message) {}))

		s.RunUntil(sendAt)
		ep.Send(to, &msg.ViewMsg{V: 7})
		s.RunFor(time.Duration(gstMs)*time.Millisecond + 10*delta)

		class := topo.Inter
		if topo.NodeRegion(0) == topo.NodeRegion(to) {
			class = topo.Intra
		}
		bound := types.MaxTime(gst, sendAt).Add(delta)
		if len(deliveries) != 1 {
			t.Fatalf("deliveries = %d, want exactly 1", len(deliveries))
		}
		if at := deliveries[0]; at < sendAt.Add(class) || at > bound {
			t.Fatalf("delivery at %v outside [%v, %v] (gst=%v class=%v)", at, sendAt.Add(class), bound, gst, class)
		}
	})
}

// TestTopologyValidate pins the descriptive rejections: each malformed
// shape names what is wrong, and in particular a latency class past Δ is
// a scenario error, not a silent clamp.
func TestTopologyValidate(t *testing.T) {
	delta := 50 * time.Millisecond
	ok := func() *network.Topology {
		return &network.Topology{Regions: []int{2, 2}, Intra: time.Millisecond, Inter: 10 * time.Millisecond}
	}
	if err := ok().Validate(4, delta); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*network.Topology)
		n    int
		want string
	}{
		{"no regions", func(tp *network.Topology) { tp.Regions = nil }, 4, "no regions"},
		{"empty region", func(tp *network.Topology) { tp.Regions = []int{4, 0} }, 4, "at least 1"},
		{"wrong n", func(*network.Topology) {}, 5, "scenario has n=5"},
		{"matrix rows", func(tp *network.Topology) { tp.Matrix = [][]time.Duration{{0, 0}} }, 4, "1 rows for 2 regions"},
		{"matrix cols", func(tp *network.Topology) { tp.Matrix = [][]time.Duration{{0}, {0, 0}} }, 4, "row 0 has 1 entries"},
		{"negative intra", func(tp *network.Topology) { tp.Intra = -1 }, 4, "negative latency class"},
		{"negative jitter", func(tp *network.Topology) { tp.Jitter = -1 }, 4, "negative jitter"},
		{"class past delta", func(tp *network.Topology) { tp.Inter = 60 * time.Millisecond }, 4, "exceeds Δ=50ms"},
		{"class plus jitter past delta", func(tp *network.Topology) { tp.Inter, tp.Jitter = 45*time.Millisecond, 10*time.Millisecond }, 4, "exceeds Δ=50ms"},
		{"matrix past delta", func(tp *network.Topology) {
			tp.Matrix = [][]time.Duration{{0, time.Hour}, {0, 0}}
		}, 4, "from region 0 to 1"},
		{"proc delays len", func(tp *network.Topology) { tp.ProcDelays = []time.Duration{1} }, 4, "1 proc delays for 2 regions"},
		{"negative proc delay", func(tp *network.Topology) { tp.ProcDelays = []time.Duration{-1, 0} }, 4, "negative proc delay"},
		{"isolated range", func(tp *network.Topology) { tp.Isolated = []int{2} }, 4, "out of range"},
		{"isolated dup", func(tp *network.Topology) { tp.Isolated = []int{1, 1} }, 4, "isolated twice"},
		{"negative heal", func(tp *network.Topology) { tp.IsolateHeal = -1 }, 4, "negative isolate heal"},
	}
	for _, c := range cases {
		tp := ok()
		c.mut(tp)
		err := tp.Validate(c.n, delta)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestTopologyAllocs pins the compiled policy's Link path at zero
// allocations — it sits on the per-transmission hot path of every
// massive-n WAN sweep.
func TestTopologyAllocs(t *testing.T) {
	topo := &network.Topology{
		Regions: []int{3, 3, 2},
		Intra:   2 * time.Millisecond,
		Inter:   30 * time.Millisecond,
		Jitter:  5 * time.Millisecond,
	}
	p := topo.Policy()
	rng := rand.New(rand.NewSource(1))
	m := &msg.ViewMsg{V: 1}
	var sink network.Verdict
	allocs := testing.AllocsPerRun(1000, func() {
		sink = p.Link(0, 7, m, types.Time(1e9), rng)
	})
	if allocs != 0 {
		t.Fatalf("Link allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

// TestTopologyMatrixAsymmetry: a Matrix override is read row=sender,
// column=recipient and may be asymmetric.
func TestTopologyMatrixAsymmetry(t *testing.T) {
	topo := &network.Topology{
		Regions: []int{1, 1},
		Matrix: [][]time.Duration{
			{0, 10 * time.Millisecond},
			{40 * time.Millisecond, 0},
		},
	}
	if err := topo.Validate(2, 50*time.Millisecond); err != nil {
		t.Fatalf("asymmetric matrix rejected: %v", err)
	}
	p := topo.Policy()
	rng := rand.New(rand.NewSource(1))
	m := &msg.ViewMsg{V: 1}
	if d := p.Link(0, 1, m, 0, rng).Delay; d != 10*time.Millisecond {
		t.Fatalf("0→1 delay = %v, want 10ms", d)
	}
	if d := p.Link(1, 0, m, 0, rng).Delay; d != 40*time.Millisecond {
		t.Fatalf("1→0 delay = %v, want 40ms", d)
	}
}

// TestTopologyNodeMaps pins the region bookkeeping: node→region
// assignment in ID order, per-region proc delays expanded per node, and
// isolated regions turned into partition groups.
func TestTopologyNodeMaps(t *testing.T) {
	topo := &network.Topology{
		Regions:    []int{2, 1, 3},
		ProcDelays: []time.Duration{0, 5 * time.Millisecond, 20 * time.Millisecond},
		Isolated:   []int{2, 0},
	}
	wantRegion := []int{0, 0, 1, 2, 2, 2}
	for id, want := range wantRegion {
		if got := topo.NodeRegion(types.NodeID(id)); got != want {
			t.Errorf("NodeRegion(%d) = %d, want %d", id, got, want)
		}
	}
	pd := topo.NodeProcDelays()
	want := []time.Duration{0, 0, 5 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	if len(pd) != len(want) {
		t.Fatalf("NodeProcDelays len = %d, want %d", len(pd), len(want))
	}
	for i := range want {
		if pd[i] != want[i] {
			t.Errorf("NodeProcDelays[%d] = %v, want %v", i, pd[i], want[i])
		}
	}
	groups := topo.IslandGroups()
	if len(groups) != 2 {
		t.Fatalf("IslandGroups = %d groups, want 2", len(groups))
	}
	if len(groups[0]) != 3 || groups[0][0] != 3 || groups[0][2] != 5 {
		t.Errorf("island for region 2 = %v, want [3 4 5]", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 0 || groups[1][1] != 1 {
		t.Errorf("island for region 0 = %v, want [0 1]", groups[1])
	}
}

// TestPreGSTChaosLink: a pre-GST send rides the maximal delay (clamped
// to GST+Δ by the network); at and after GST the base topology rules.
func TestPreGSTChaosLink(t *testing.T) {
	topo := &network.Topology{Regions: []int{1, 1}, Inter: 10 * time.Millisecond}
	gst := types.Time(0).Add(2 * time.Second)
	p := network.PreGSTChaosLink{GST: gst, Base: topo.Policy()}
	rng := rand.New(rand.NewSource(1))
	m := &msg.ViewMsg{V: 1}
	if d := p.Link(0, 1, m, gst-1, rng).Delay; d < time.Hour {
		t.Fatalf("pre-GST delay = %v, want maximal", d)
	}
	if d := p.Link(0, 1, m, gst, rng).Delay; d != 10*time.Millisecond {
		t.Fatalf("post-GST delay = %v, want the topology's 10ms", d)
	}
}
