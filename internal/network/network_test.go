package network

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

func testCfg() types.Config { return types.NewConfig(1, 100*time.Millisecond) }

type recorder struct {
	got []struct {
		from types.NodeID
		at   types.Time
	}
	sched *sim.Scheduler
}

func (r *recorder) Deliver(from types.NodeID, _ msg.Message) {
	r.got = append(r.got, struct {
		from types.NodeID
		at   types.Time
	}{from, r.sched.Now()})
}

func TestFixedDelayDelivery(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s, testCfg(), 0, Fixed{D: 10 * time.Millisecond})
	r := &recorder{sched: s}
	n.Attach(1, r)
	ep := n.Attach(0, &recorder{sched: s})
	ep.Send(1, &msg.ViewMsg{V: 3})
	s.RunFor(time.Second)
	if len(r.got) != 1 {
		t.Fatalf("deliveries = %d", len(r.got))
	}
	if r.got[0].at != types.Time(10*time.Millisecond) || r.got[0].from != 0 {
		t.Fatalf("got %+v", r.got[0])
	}
}

func TestPartialSynchronyClamp(t *testing.T) {
	s := sim.New(1)
	gst := types.Time(0).Add(500 * time.Millisecond)
	n := NewNet(s, testCfg(), gst, Adversarial{})
	r := &recorder{sched: s}
	n.Attach(1, r)
	ep := n.Attach(0, &recorder{sched: s})
	// Sent before GST: must arrive by GST+Δ.
	ep.Send(1, &msg.ViewMsg{V: 1})
	s.RunUntil(gst.Add(50 * time.Millisecond))
	// Sent after GST: must arrive by send+Δ.
	ep.Send(1, &msg.ViewMsg{V: 2})
	s.RunFor(10 * time.Second)
	if len(r.got) != 2 {
		t.Fatalf("deliveries = %d", len(r.got))
	}
	if want := gst.Add(100 * time.Millisecond); r.got[0].at != want {
		t.Fatalf("pre-GST delivery at %v, want %v", r.got[0].at, want)
	}
	if want := gst.Add(150 * time.Millisecond); r.got[1].at != want {
		t.Fatalf("post-GST delivery at %v, want %v", r.got[1].at, want)
	}
}

func TestBroadcastIncludesSelfImmediately(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s, testCfg(), 0, Fixed{D: 10 * time.Millisecond})
	recs := make([]*recorder, 4)
	var ep Endpoint
	for i := range recs {
		recs[i] = &recorder{sched: s}
		e := n.Attach(types.NodeID(i), recs[i])
		if i == 0 {
			ep = e
		}
	}
	ep.Broadcast(&msg.ViewMsg{V: 1})
	s.RunUntil(0)
	if len(recs[0].got) != 1 || recs[0].got[0].at != 0 {
		t.Fatalf("self-delivery not immediate: %+v", recs[0].got)
	}
	s.RunFor(time.Second)
	for i, r := range recs {
		if len(r.got) != 1 {
			t.Fatalf("node %d got %d", i, len(r.got))
		}
	}
}

func TestObserverCountsAndHonesty(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s, testCfg(), 0, Fixed{D: time.Millisecond})
	var sends, byzSends int
	n.Observe(observerFuncs{
		onSend: func(honest bool) {
			if honest {
				sends++
			} else {
				byzSends++
			}
		},
	})
	eps := make([]Endpoint, 4)
	for i := range eps {
		eps[i] = n.Attach(types.NodeID(i), &recorder{sched: s})
	}
	n.SetByzantine(3)
	eps[0].Broadcast(&msg.ViewMsg{V: 1}) // 3 network sends (self excluded)
	eps[3].Broadcast(&msg.ViewMsg{V: 1}) // 3 byzantine sends
	s.RunFor(time.Second)
	if sends != 3 || byzSends != 3 {
		t.Fatalf("sends=%d byz=%d", sends, byzSends)
	}
}

type observerFuncs struct {
	onSend func(honest bool)
}

func (o observerFuncs) OnSend(_, _ types.NodeID, _ msg.Message, _ types.Time, honest bool) {
	if o.onSend != nil {
		o.onSend(honest)
	}
}
func (o observerFuncs) OnDeliver(_, _ types.NodeID, _ msg.Message, _ types.Time) {}

func TestKill(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s, testCfg(), 0, Fixed{D: time.Millisecond})
	r1 := &recorder{sched: s}
	ep0 := n.Attach(0, &recorder{sched: s})
	n.Attach(1, r1)
	ep1 := n.Attach(1, r1) // reattach returns fresh endpoint, same handler
	ep0.Send(1, &msg.ViewMsg{V: 1})
	s.RunFor(10 * time.Millisecond)
	n.Kill(0)
	ep0.Send(1, &msg.ViewMsg{V: 2}) // dropped: sender killed
	s.RunFor(10 * time.Millisecond)
	n.Kill(1)
	ep1.Send(1, &msg.ViewMsg{V: 3}) // dropped: receiver killed
	s.RunFor(10 * time.Millisecond)
	if len(r1.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(r1.got))
	}
}

func TestStopDropsTraffic(t *testing.T) {
	s := sim.New(1)
	n := NewNet(s, testCfg(), 0, Fixed{D: time.Millisecond})
	r := &recorder{sched: s}
	ep := n.Attach(0, &recorder{sched: s})
	n.Attach(1, r)
	n.Stop()
	ep.Send(1, &msg.ViewMsg{V: 1})
	s.RunFor(time.Second)
	if len(r.got) != 0 {
		t.Fatal("stopped net delivered")
	}
}

type nopHandler struct{}

func (nopHandler) Deliver(types.NodeID, msg.Message) {}

// TestBroadcastAllocs pins the zero-allocation send hot path across the
// scheduler and network layers: a warm n=31 broadcast plus the delivery
// of all its messages must average well under one allocation (the
// pre-arena implementation spent 3 allocations per point-to-point send).
// The drop and duplicate link-policy paths are gated alongside the
// delay-only baseline: chaos conditions ride the same hot path.
func TestBroadcastAllocs(t *testing.T) {
	// Half the messages are dropped pre-GST (delivery at the bound),
	// the other half delivered normally.
	dropHalf := LinkFunc(func(_, to types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) Verdict {
		return Verdict{Delay: time.Millisecond, Drop: to%2 == 0}
	})
	// Every message is duplicated with a jittered second copy.
	dupAll := LinkFunc(func(_, _ types.NodeID, _ msg.Message, _ types.Time, rng *rand.Rand) Verdict {
		d := time.Millisecond
		return Verdict{Delay: d, Dup: true, DupDelay: d + time.Duration(rng.Int63n(int64(time.Millisecond)))}
	})
	run := func(t *testing.T, observe bool, link LinkPolicy) {
		cfg := types.NewConfig(10, 100*time.Millisecond) // n = 31
		s := sim.New(1)
		// GST at 1h keeps every drop in the pre-GST "loss" regime:
		// the clamp reschedules it rather than omitting it.
		n := NewNetLink(s, cfg, types.Time(0).Add(time.Hour), link)
		if observe {
			n.Observe(observerFuncs{})
		}
		var ep Endpoint
		for i := 0; i < cfg.N; i++ {
			e := n.Attach(types.NodeID(i), nopHandler{})
			if i == 0 {
				ep = e
			}
		}
		m := &msg.ViewMsg{V: 1}
		for i := 0; i < 50; i++ { // warm the event arena
			ep.Broadcast(m)
			s.RunFor(10 * time.Millisecond)
		}
		avg := testing.AllocsPerRun(200, func() {
			ep.Broadcast(m)
			s.RunFor(10 * time.Millisecond)
		})
		perSend := avg / float64(cfg.N)
		t.Logf("allocs per broadcast = %.2f (%.4f per send)", avg, perSend)
		if perSend > 0.3 {
			t.Errorf("broadcast allocates %.4f per send, want <= 0.3 (>=10x below the pre-arena 3.0)", perSend)
		}
	}
	fixed := LinkPolicy(DelayLink{P: Fixed{D: time.Millisecond}})
	t.Run("no-observer", func(t *testing.T) { run(t, false, fixed) })
	t.Run("one-observer", func(t *testing.T) { run(t, true, fixed) })
	t.Run("dropping", func(t *testing.T) { run(t, true, dropHalf) })
	t.Run("duplicating", func(t *testing.T) { run(t, true, dupAll) })
}

// linkNet builds a 4-node net with recorders on every node, returning
// the endpoints and recorders.
func linkNet(s *sim.Scheduler, gst types.Time, link LinkPolicy) (*Net, []Endpoint, []*recorder) {
	n := NewNetLink(s, testCfg(), gst, link)
	eps := make([]Endpoint, 4)
	recs := make([]*recorder, 4)
	for i := range eps {
		recs[i] = &recorder{sched: s}
		eps[i] = n.Attach(types.NodeID(i), recs[i])
	}
	return n, eps, recs
}

// TestLinkClampEdgeCases pins the partial-synchrony clamp on the link
// layer, Δ = 100ms, GST = 500ms: delivery never lands outside
// [t, max(GST, t)+Δ], drops degrade to deliveries at the bound, and
// adversarially-delayed duplicates collapse onto the same timestamp.
func TestLinkClampEdgeCases(t *testing.T) {
	gst := types.Time(0).Add(500 * time.Millisecond)
	delta := 100 * time.Millisecond
	eps := time.Nanosecond
	adversarialDrop := Verdict{Drop: true}
	collapseDup := Verdict{Delay: 1 << 62, Dup: true, DupDelay: 1 << 62}
	cases := []struct {
		name    string
		sendAt  types.Time
		verdict Verdict
		wantAt  []types.Time // delivery times in order
	}{
		{
			// max(GST, t) = t exactly at the boundary: bound is GST+Δ.
			name:    "adversarial delay sent exactly at GST",
			sendAt:  gst,
			verdict: Verdict{Delay: 1 << 62},
			wantAt:  []types.Time{gst.Add(delta)},
		},
		{
			// The model-faithful "loss": a message dropped just before
			// GST must still be delivered at GST+Δ.
			name:    "drop at GST-ε delivered at GST+Δ",
			sendAt:  gst.Add(-eps),
			verdict: adversarialDrop,
			wantAt:  []types.Time{gst.Add(delta)},
		},
		{
			// A drop exactly at GST without a budget degrades to the
			// worst delay: delivery at t+Δ = GST+Δ.
			name:    "unfunded drop at GST",
			sendAt:  gst,
			verdict: adversarialDrop,
			wantAt:  []types.Time{gst.Add(delta)},
		},
		{
			name:    "zero verdict delivers immediately",
			sendAt:  gst.Add(time.Second),
			verdict: Verdict{},
			wantAt:  []types.Time{gst.Add(time.Second)},
		},
		{
			// Original and duplicate both request unbounded delay: the
			// clamp collapses them onto the bound — two deliveries at
			// the same timestamp.
			name:    "duplicate collapsing at same timestamp pre-GST",
			sendAt:  gst.Add(-100 * time.Millisecond),
			verdict: collapseDup,
			wantAt:  []types.Time{gst.Add(delta), gst.Add(delta)},
		},
		{
			name:    "duplicate collapsing at same timestamp post-GST",
			sendAt:  gst.Add(delta),
			verdict: collapseDup,
			wantAt:  []types.Time{gst.Add(2 * delta), gst.Add(2 * delta)},
		},
		{
			name:    "negative delay clamps to send time",
			sendAt:  gst.Add(time.Second),
			verdict: Verdict{Delay: -time.Second},
			wantAt:  []types.Time{gst.Add(time.Second)},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New(1)
			v := tc.verdict
			_, eps, recs := linkNet(s, gst, LinkFunc(
				func(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) Verdict { return v }))
			s.RunUntil(tc.sendAt)
			eps[0].Send(1, &msg.ViewMsg{V: 1})
			s.RunFor(time.Hour)
			got := recs[1].got
			if len(got) != len(tc.wantAt) {
				t.Fatalf("deliveries = %d, want %d", len(got), len(tc.wantAt))
			}
			for i, want := range tc.wantAt {
				if got[i].at != want {
					t.Errorf("delivery %d at %v, want %v", i, got[i].at, want)
				}
			}
		})
	}
}

// TestOmissionBudget pins the post-GST omission accounting: drops are
// true omissions only within MaxMessages and MaxSenders, and everything
// beyond the budget degrades to a delivery at the bound.
func TestOmissionBudget(t *testing.T) {
	gst := types.Time(0).Add(500 * time.Millisecond)
	dropAll := LinkFunc(func(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) Verdict {
		return Verdict{Drop: true}
	})

	t.Run("max messages", func(t *testing.T) {
		s := sim.New(1)
		n, eps, recs := linkNet(s, gst, dropAll)
		n.SetOmissionBudget(OmissionBudget{MaxMessages: 2})
		s.RunUntil(gst)
		for i := 0; i < 4; i++ {
			eps[0].Send(1, &msg.ViewMsg{V: types.View(i)})
		}
		s.RunFor(time.Hour)
		if len(recs[1].got) != 2 {
			t.Fatalf("deliveries = %d, want 2 (2 of 4 omitted)", len(recs[1].got))
		}
		if n.Omitted() != 2 {
			t.Fatalf("Omitted() = %d, want 2", n.Omitted())
		}
	})

	t.Run("max senders", func(t *testing.T) {
		s := sim.New(1)
		n, eps, recs := linkNet(s, gst, dropAll)
		n.SetOmissionBudget(OmissionBudget{MaxMessages: 100, MaxSenders: 1})
		s.RunUntil(gst)
		eps[0].Send(2, &msg.ViewMsg{V: 1}) // claims the only sender slot
		eps[1].Send(2, &msg.ViewMsg{V: 2}) // different sender: degrades
		eps[0].Send(2, &msg.ViewMsg{V: 3}) // same sender: omitted
		s.RunFor(time.Hour)
		if len(recs[2].got) != 1 {
			t.Fatalf("deliveries = %d, want 1 (only p1's message degrades)", len(recs[2].got))
		}
		if recs[2].got[0].from != 1 {
			t.Fatalf("delivered from %v, want p1", recs[2].got[0].from)
		}
		if n.Omitted() != 2 {
			t.Fatalf("Omitted() = %d, want 2", n.Omitted())
		}
	})

	t.Run("pre-GST drops never charge the budget", func(t *testing.T) {
		s := sim.New(1)
		n, eps, recs := linkNet(s, gst, dropAll)
		n.SetOmissionBudget(OmissionBudget{MaxMessages: 100})
		eps[0].Send(1, &msg.ViewMsg{V: 1}) // at t=0, pre-GST
		s.RunFor(time.Hour)
		if len(recs[1].got) != 1 || recs[1].got[0].at != gst.Add(100*time.Millisecond) {
			t.Fatalf("pre-GST drop: %+v, want one delivery at GST+Δ", recs[1].got)
		}
		if n.Omitted() != 0 {
			t.Fatalf("Omitted() = %d, want 0", n.Omitted())
		}
	})
}

// TestReviveRestoresTraffic pins crash-recovery at the network level:
// a killed node neither sends nor receives, and both directions resume
// after Revive.
func TestReviveRestoresTraffic(t *testing.T) {
	s := sim.New(1)
	n, eps, recs := linkNet(s, 0, DelayLink{P: Fixed{D: time.Millisecond}})
	eps[0].Send(1, &msg.ViewMsg{V: 1})
	s.RunFor(10 * time.Millisecond)
	n.Kill(1)
	eps[0].Send(1, &msg.ViewMsg{V: 2}) // lost: receiver down
	eps[1].Send(0, &msg.ViewMsg{V: 3}) // lost: sender down
	s.RunFor(10 * time.Millisecond)
	n.Revive(1)
	eps[0].Send(1, &msg.ViewMsg{V: 4})
	eps[1].Send(0, &msg.ViewMsg{V: 5})
	s.RunFor(10 * time.Millisecond)
	if len(recs[1].got) != 2 {
		t.Fatalf("receiver deliveries = %d, want 2 (v1, v4)", len(recs[1].got))
	}
	if len(recs[0].got) != 1 {
		t.Fatalf("sender-side deliveries = %d, want 1 (v5)", len(recs[0].got))
	}
}

func TestUniformPolicyWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Uniform{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := p.Delay(0, 1, &msg.ViewMsg{}, 0, rng)
		if d < p.Min || d > p.Max {
			t.Fatalf("delay %v outside [%v,%v]", d, p.Min, p.Max)
		}
	}
	degenerate := Uniform{Min: 3 * time.Millisecond, Max: 3 * time.Millisecond}
	if d := degenerate.Delay(0, 1, &msg.ViewMsg{}, 0, rng); d != 3*time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestTargetedPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Targeted{
		Base:    Fixed{D: time.Millisecond},
		Slow:    Fixed{D: time.Second},
		Targets: map[types.NodeID]bool{2: true},
	}
	if d := p.Delay(0, 1, &msg.ViewMsg{}, 0, rng); d != time.Millisecond {
		t.Fatalf("base = %v", d)
	}
	if d := p.Delay(0, 2, &msg.ViewMsg{}, 0, rng); d != time.Second {
		t.Fatalf("to target = %v", d)
	}
	if d := p.Delay(2, 0, &msg.ViewMsg{}, 0, rng); d != time.Second {
		t.Fatalf("from target = %v", d)
	}
}

func TestPhasedPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Phased{
		Switch: 100,
		Before: Fixed{D: time.Millisecond},
		After:  Fixed{D: time.Second},
	}
	if d := p.Delay(0, 1, &msg.ViewMsg{}, 99, rng); d != time.Millisecond {
		t.Fatalf("before = %v", d)
	}
	if d := p.Delay(0, 1, &msg.ViewMsg{}, 100, rng); d != time.Second {
		t.Fatalf("at switch = %v", d)
	}
}

func TestPreGSTChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gst := types.Time(0).Add(time.Second)
	p := PreGSTChaos{GST: gst, After: Fixed{D: time.Millisecond}}
	if d := p.Delay(0, 1, &msg.ViewMsg{}, 0, rng); d < time.Hour {
		t.Fatalf("pre-GST delay too small: %v", d)
	}
	if d := p.Delay(0, 1, &msg.ViewMsg{}, gst, rng); d != time.Millisecond {
		t.Fatalf("post-GST = %v", d)
	}
}

// TestNetResetEquivalence pins the arena contract for the network: after
// kills, Byzantine marks, omission charges, observers and a stop, Reset
// must restore the exact observable state of a fresh NewNetLink on the
// same (reset) scheduler.
func TestNetResetEquivalence(t *testing.T) {
	cfg := testCfg() // n = 4
	sched := sim.New(1)
	gst := types.Time(0).Add(time.Second)
	n := NewNetLink(sched, cfg, gst, nil)

	// Dirty every axis of mutable state.
	sends := 0
	n.Observe(observerFuncs{onSend: func(bool) { sends++ }})
	n.SetByzantine(1)
	n.Kill(2)
	n.SetOmissionBudget(OmissionBudget{MaxMessages: 5, MaxSenders: 1})
	rec := &recorder{sched: sched}
	ep := n.Attach(0, rec)
	n.Attach(3, rec)
	ep.Broadcast(&msg.ViewMsg{V: 1})
	sched.RunFor(5 * time.Second)
	n.Stop()

	sched.Reset(2)
	cfg2 := types.NewConfig(2, 50*time.Millisecond) // different shape: n = 7
	gst2 := types.Time(0).Add(2 * time.Second)
	n.Reset(cfg2, gst2, nil)

	if n.GST() != gst2 {
		t.Fatalf("gst = %v, want %v", n.GST(), gst2)
	}
	if n.Omitted() != 0 {
		t.Fatalf("omission charges survived reset: %d", n.Omitted())
	}
	for i := 0; i < cfg2.N; i++ {
		if !n.Honest(types.NodeID(i)) {
			t.Fatalf("node %d not honest after reset", i)
		}
	}
	// The reset network must deliver again (stop lifted, kills cleared,
	// observers detached).
	rec2 := &recorder{sched: sched}
	ep2 := n.Attach(2, rec2)
	n.Attach(5, rec2)
	ep2.Send(5, &msg.ViewMsg{V: 1})
	sched.RunFor(10 * time.Second)
	if len(rec2.got) != 1 || rec2.got[0].from != 2 {
		t.Fatalf("reset network delivered %v", rec2.got)
	}
	if sends != 3 {
		t.Fatalf("detached observer saw new traffic: %d sends", sends)
	}
}
