// Package network defines the transport abstraction shared by the
// simulator and the TCP runtime, and implements the simulated
// partial-synchrony network of §2: the adversary chooses GST and, per
// message, a delay, drop, or duplication (a LinkPolicy), subject to the
// constraint that a message sent at time t arrives by max{GST, t} + Δ.
// Pre-GST drops are therefore deliveries at GST+Δ; true post-GST
// omission requires an explicit OmissionBudget.
package network

import (
	"fmt"
	"math/rand"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// Endpoint is a node's handle on the network.
type Endpoint interface {
	// ID returns the owning node.
	ID() types.NodeID
	// Send transmits m to a single processor. Sends to self are
	// delivered at the same instant (the paper's convention).
	Send(to types.NodeID, m msg.Message)
	// Broadcast transmits m to all processors including the sender;
	// the self-copy is delivered at the same instant (§4).
	Broadcast(m msg.Message)
}

// Handler consumes delivered messages.
type Handler interface {
	Deliver(from types.NodeID, m msg.Message)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from types.NodeID, m msg.Message)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from types.NodeID, m msg.Message) { f(from, m) }

// Observer is notified of network activity; metrics and tracing hook in
// here.
type Observer interface {
	// OnSend fires once per point-to-point transmission (a broadcast
	// to n processors fires n−1 times; self-deliveries are not
	// transmissions).
	OnSend(from, to types.NodeID, m msg.Message, at types.Time, honestSender bool)
	// OnDeliver fires when the message reaches its destination.
	OnDeliver(from, to types.NodeID, m msg.Message, at types.Time)
}

// DelayPolicy is the adversary's control over message delivery times. The
// returned delay is a request: the network clamps actual delivery into the
// partial-synchrony window [now, max(GST, now)+Δ].
type DelayPolicy interface {
	Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration
}

// DelayFunc adapts a function to DelayPolicy.
type DelayFunc func(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration

// Delay implements DelayPolicy.
func (f DelayFunc) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	return f(from, to, m, at, rng)
}

// Verdict is a link's decision for one point-to-point transmission. The
// zero Verdict delivers immediately (subject to the clamp).
type Verdict struct {
	// Delay is the requested delivery delay; the network clamps actual
	// delivery into the partial-synchrony window [t, max(GST, t)+Δ].
	Delay time.Duration
	// Drop requests omission. The model constrains what the network
	// grants: a message sent before GST may be withheld, but must still
	// be delivered by GST+Δ, so pre-GST drops become deliveries exactly
	// at the bound (model-faithful "loss"). At or after GST a drop is a
	// true omission only while the network's OmissionBudget allows it;
	// once the budget is exhausted (or absent — the default) the drop
	// degrades to the worst delay the model permits, delivery at t+Δ.
	// A dropped message is never also duplicated.
	Drop bool
	// Dup requests one extra copy of the message, delivered at the clamp
	// of DupDelay. Duplicates are the network's doing, not the
	// sender's: they fire OnDeliver but not OnSend, so honest
	// communication accounting is unaffected.
	Dup bool
	// DupDelay is the extra copy's requested delay (clamped
	// independently of the original's).
	DupDelay time.Duration
}

// LinkPolicy generalizes DelayPolicy into the adversary's full control
// over one transmission: per (from, to, send time) it may delay, drop,
// or duplicate the message — and, by assigning non-monotone delays,
// reorder traffic. Implementations must be pure functions of their
// arguments and rng draws so executions stay reproducible, and must not
// allocate on the Link path (the send hot path is pinned at zero
// allocations). Composable condition primitives (partitions, loss,
// duplication, flaky links) live in internal/adversary.
type LinkPolicy interface {
	Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) Verdict
}

// LinkFunc adapts a function to LinkPolicy.
type LinkFunc func(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) Verdict

// Link implements LinkPolicy.
func (f LinkFunc) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) Verdict {
	return f(from, to, m, at, rng)
}

// DelayLink adapts a DelayPolicy to a LinkPolicy that only delays.
type DelayLink struct{ P DelayPolicy }

// Link implements LinkPolicy.
func (l DelayLink) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) Verdict {
	return Verdict{Delay: l.P.Delay(from, to, m, at, rng)}
}

// OmissionBudget authorizes true post-GST message omission. The §2 model
// lets the adversary lose pre-GST traffic for free (the clamp converts
// those drops into deliveries at GST+Δ), but after GST honest-to-honest
// messages must arrive within Δ — omission is a fault. The budget makes
// that fault explicit and bounded so the harness can account it against
// f. The zero value permits no post-GST omission.
type OmissionBudget struct {
	// MaxMessages caps the total number of post-GST omissions granted.
	MaxMessages int
	// MaxSenders caps the distinct senders whose post-GST messages may
	// be omitted (0 = no per-sender cap). The harness requires
	// MaxSenders ≤ f: omission post-GST is a processor fault, and only
	// f processors may be faulty.
	MaxSenders int
}

// ---------------------------------------------------------------------------
// Standard delay policies
// ---------------------------------------------------------------------------

// Fixed delays every message by exactly D (the "actual bound δ" of §2).
type Fixed struct{ D time.Duration }

// Delay implements DelayPolicy.
func (p Fixed) Delay(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) time.Duration {
	return p.D
}

// Uniform delays every message uniformly in [Min, Max].
type Uniform struct{ Min, Max time.Duration }

// Delay implements DelayPolicy.
func (p Uniform) Delay(_, _ types.NodeID, _ msg.Message, _ types.Time, rng *rand.Rand) time.Duration {
	if p.Max <= p.Min {
		return p.Min
	}
	return p.Min + time.Duration(rng.Int63n(int64(p.Max-p.Min)))
}

// Adversarial requests an unbounded delay for every message, so delivery
// always lands exactly on the partial-synchrony bound max(GST, t)+Δ — the
// worst case the model permits.
type Adversarial struct{}

// Delay implements DelayPolicy.
func (Adversarial) Delay(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) time.Duration {
	return time.Duration(1<<62 - 1)
}

// PreGSTChaos delays messages sent before GST as long as the model allows
// (arrival at GST+Δ) and uses After for messages sent at or after GST.
// This models the unbounded asynchrony before stabilization.
type PreGSTChaos struct {
	GST   types.Time
	After DelayPolicy
}

// Delay implements DelayPolicy.
func (p PreGSTChaos) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	if at < p.GST {
		return time.Duration(1<<62 - 1) // clamped to GST+Δ by the network
	}
	return p.After.Delay(from, to, m, at, rng)
}

// Targeted applies Slow to messages to or from nodes in Targets and Base
// to everything else. It models an adversary focusing delays on specific
// processors (e.g. the next honest leader).
type Targeted struct {
	Base    DelayPolicy
	Slow    DelayPolicy
	Targets map[types.NodeID]bool
}

// Delay implements DelayPolicy.
func (p Targeted) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	if p.Targets[from] || p.Targets[to] {
		return p.Slow.Delay(from, to, m, at, rng)
	}
	return p.Base.Delay(from, to, m, at, rng)
}

// Phased switches policies at a point in time (by send time): Before
// applies to messages sent strictly before Switch, After to the rest.
// Nest Phased values to build multi-phase adversary schedules.
type Phased struct {
	Switch types.Time
	Before DelayPolicy
	After  DelayPolicy
}

// Delay implements DelayPolicy.
func (p Phased) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	if at < p.Switch {
		return p.Before.Delay(from, to, m, at, rng)
	}
	return p.After.Delay(from, to, m, at, rng)
}

// ---------------------------------------------------------------------------
// Simulated network
// ---------------------------------------------------------------------------

// Net is the simulated partial-synchrony network.
type Net struct {
	sched     *sim.Scheduler
	cfg       types.Config
	gst       types.Time
	link      LinkPolicy
	handlers  []Handler
	honest    []bool
	killed    []bool
	observers []Observer
	stopped   bool

	budget      OmissionBudget
	omitted     int64
	omittedFrom []bool // senders already charged against MaxSenders
	omitSenders int

	// procDelay is the per-recipient straggler model: node i ingests
	// every network message procDelay[i] after its clamped delivery
	// time. Nil means no stragglers. See SetProcDelays.
	procDelay []time.Duration

	// perRecipient forces broadcast back onto the one-heap-event-per-
	// recipient path instead of multicast events. The two are
	// observationally identical (the equivalence suite diffs whole
	// tables across both); the toggle exists for those tests and for
	// bisecting, not for production use.
	perRecipient bool
}

// NewNet creates a network for cfg.N nodes. gst is the global
// stabilization time; policy chooses per-message delays (clamped to the
// model). All nodes start marked honest; use SetByzantine for corruptions.
// The network registers itself as the scheduler's payload sink: message
// deliveries flow through sim.SendAt rather than per-send closures.
func NewNet(sched *sim.Scheduler, cfg types.Config, gst types.Time, policy DelayPolicy) *Net {
	if policy == nil {
		policy = Fixed{D: cfg.Delta / 10}
	}
	return NewNetLink(sched, cfg, gst, DelayLink{P: policy})
}

// NewNetLink creates a network driven by a full link-condition policy:
// per-message delay, drop, and duplication, all clamped to the §2 model
// (see Verdict for the exact semantics). NewNet is the delay-only
// convenience wrapper.
func NewNetLink(sched *sim.Scheduler, cfg types.Config, gst types.Time, link LinkPolicy) *Net {
	if link == nil {
		link = DelayLink{P: Fixed{D: cfg.Delta / 10}}
	}
	honest := make([]bool, cfg.N)
	for i := range honest {
		honest[i] = true
	}
	n := &Net{
		sched:       sched,
		cfg:         cfg,
		gst:         gst,
		link:        link,
		handlers:    make([]Handler, cfg.N),
		honest:      honest,
		killed:      make([]bool, cfg.N),
		omittedFrom: make([]bool, cfg.N),
	}
	sched.SetSink(n.deliverPayload)
	return n
}

// Reset re-arms the network for a fresh execution on the same scheduler,
// reusing the per-node handler, honesty, liveness and omission-charge
// slots and the observer slice's backing storage. Everything mutable is
// cleared: all nodes return to honest and alive, observers are detached,
// the omission budget and its charges are zeroed, and the stop flag is
// lifted. The MsgSink registration with the scheduler persists — one
// network per scheduler for both of their lifetimes. A nil link falls
// back to Fixed{Δ/10}, as in NewNetLink.
func (n *Net) Reset(cfg types.Config, gst types.Time, link LinkPolicy) {
	if link == nil {
		link = DelayLink{P: Fixed{D: cfg.Delta / 10}}
	}
	n.cfg, n.gst, n.link = cfg, gst, link
	if cap(n.handlers) < cfg.N {
		n.handlers = make([]Handler, cfg.N)
		n.honest = make([]bool, cfg.N)
		n.killed = make([]bool, cfg.N)
		n.omittedFrom = make([]bool, cfg.N)
	}
	n.handlers = n.handlers[:cfg.N]
	n.honest = n.honest[:cfg.N]
	n.killed = n.killed[:cfg.N]
	n.omittedFrom = n.omittedFrom[:cfg.N]
	for i := range n.handlers {
		n.handlers[i] = nil
		n.honest[i] = true
		n.killed[i] = false
		n.omittedFrom[i] = false
	}
	n.observers = n.observers[:0]
	n.stopped = false
	n.budget = OmissionBudget{}
	n.omitted = 0
	n.omitSenders = 0
	n.perRecipient = false
	n.procDelay = nil
}

// SetProcDelays installs the straggler model: node i ingests every
// network message procDelay[i] after its clamped delivery time (zero =
// a fast node, the default). The delay models the node's own processing
// lag, not the adversary's network — it is applied after the §2 clamp
// (and so may push an ingestion past GST+Δ without violating the
// model), and self-deliveries, which never cross the network, stay
// instantaneous. Pass nil to clear; Reset also clears it.
func (n *Net) SetProcDelays(d []time.Duration) {
	if d != nil && len(d) != n.cfg.N {
		panic(fmt.Sprintf("network: %d proc delays for n=%d", len(d), n.cfg.N))
	}
	n.procDelay = d
}

// SetPerRecipientBroadcast toggles the legacy broadcast representation:
// one heap event per recipient rather than one multicast event per
// distinct delivery time. Reset clears it.
func (n *Net) SetPerRecipientBroadcast(on bool) { n.perRecipient = on }

// deliverPayload is the scheduler's MsgSink: it fires when a scheduled
// transmission reaches its delivery time.
func (n *Net) deliverPayload(from, to types.NodeID, m any) {
	n.dispatch(from, to, m.(msg.Message))
}

// GST returns the network's global stabilization time.
func (n *Net) GST() types.Time { return n.gst }

// Attach registers the handler for a node and returns its endpoint.
func (n *Net) Attach(id types.NodeID, h Handler) Endpoint {
	if int(id) < 0 || int(id) >= len(n.handlers) {
		panic(fmt.Sprintf("network: attach unknown node %v", id))
	}
	n.handlers[id] = h
	return &endpoint{net: n, id: id}
}

// Observe registers an observer for all traffic.
func (n *Net) Observe(o Observer) { n.observers = append(n.observers, o) }

// SetByzantine marks a node as Byzantine for accounting purposes (its
// sends are not charged to honest communication complexity).
func (n *Net) SetByzantine(id types.NodeID) { n.honest[id] = false }

// Honest reports whether a node is marked honest.
func (n *Net) Honest(id types.NodeID) bool { return n.honest[id] }

// Stop makes the network drop all future traffic (used to cleanly end a
// run without draining protocol timers).
func (n *Net) Stop() { n.stopped = true }

// Kill crashes a node from now on: its sends are dropped and nothing is
// delivered to it. Used for Byzantine processors that behave honestly
// until a chosen moment (the classic desynchronization adversary).
func (n *Net) Kill(id types.NodeID) { n.killed[id] = true }

// Revive undoes Kill: the node sends and receives again from now on,
// with whatever state it kept. Messages addressed to it while it was
// down are lost — crash-recovery omission, accounted as the node's own
// fault (it is one of the ≤ f corrupted processors), not against the
// network's OmissionBudget.
func (n *Net) Revive(id types.NodeID) { n.killed[id] = false }

// SetOmissionBudget authorizes true post-GST omission (see
// OmissionBudget). Call before the execution starts; the budget is
// consumed as drops are granted.
func (n *Net) SetOmissionBudget(b OmissionBudget) { n.budget = b }

// Omitted returns the number of post-GST omissions charged against the
// budget so far.
func (n *Net) Omitted() int64 { return n.omitted }

// allowOmission charges one post-GST omission by from against the
// budget, reporting whether it was granted.
func (n *Net) allowOmission(from types.NodeID) bool {
	if n.omitted >= int64(n.budget.MaxMessages) {
		return false
	}
	if !n.omittedFrom[from] {
		if n.budget.MaxSenders > 0 && n.omitSenders >= n.budget.MaxSenders {
			return false
		}
		n.omittedFrom[from] = true
		n.omitSenders++
	}
	n.omitted++
	return true
}

// clampDelivery converts a requested delay into the actual delivery
// time: within [sendAt, max(GST, sendAt)+Δ], per §2.
func (n *Net) clampDelivery(sendAt types.Time, req time.Duration) types.Time {
	if req < 0 {
		req = 0
	}
	bound := types.MaxTime(n.gst, sendAt).Add(n.cfg.Delta)
	return types.MinTime(sendAt.Add(req), bound)
}

func (n *Net) send(from, to types.NodeID, m msg.Message) {
	if n.stopped || n.killed[from] {
		return
	}
	if int(to) < 0 || int(to) >= len(n.handlers) {
		panic(fmt.Sprintf("network: send to unknown node %v", to))
	}
	n.sendTo(n.sched.Now(), from, to, m)
}

// broadcast transmits m from one node to all nodes. The default path
// batches the fan-out into one multicast event per distinct delivery
// time: verdicts are still resolved per recipient, at send time, in
// recipient order — so OnSend observation, rng draw order and delivery
// order are exactly those of the per-recipient path — but an
// n-recipient broadcast whose deliveries share a clamped time costs one
// heap insertion instead of n.
func (n *Net) broadcast(from types.NodeID, m msg.Message) {
	if n.stopped || n.killed[from] {
		return
	}
	now := n.sched.Now()
	if n.perRecipient {
		n.sched.Reserve(len(n.handlers))
		for to := range n.handlers {
			n.sendTo(now, from, types.NodeID(to), m)
		}
		return
	}
	mc := n.sched.Multicast(from, m)
	for to := range n.handlers {
		tid := types.NodeID(to)
		if tid == from {
			// Self-delivery at the same instant, not a network message.
			mc.Add(tid, now)
			continue
		}
		d := n.resolve(now, from, tid, m)
		if d.copies == 0 {
			continue
		}
		mc.Add(tid, d.at)
		if d.copies == 2 {
			mc.Add(tid, d.dupAt)
		}
	}
	mc.Commit()
}

// delivery is a resolved link verdict: the clamped schedule for one
// transmission's copies. copies is 0 (granted omission), 1, or 2 (with
// a network duplicate at dupAt).
type delivery struct {
	at     types.Time
	dupAt  types.Time
	copies int
}

// resolve runs the send-time half of one point-to-point transmission —
// OnSend observation plus the link policy's verdict — and clamps the
// outcome to the §2 model: delivery (and any duplicate) lands in
// [now, max(GST, now)+Δ], and drops are granted as true omissions only
// post-GST under the omission budget.
func (n *Net) resolve(now types.Time, from, to types.NodeID, m msg.Message) delivery {
	n.observeSend(from, to, m, now)
	var proc time.Duration
	if n.procDelay != nil {
		proc = n.procDelay[to] // straggler lag, applied outside the clamp
	}
	v := n.link.Link(from, to, m, now, n.sched.Rand())
	if v.Drop {
		if now >= n.gst && n.allowOmission(from) {
			return delivery{} // granted: a true post-GST omission
		}
		// Pre-GST "loss" (or an unfunded post-GST drop) degrades to
		// the worst delay the model permits: delivery at the bound.
		return delivery{at: types.MaxTime(n.gst, now).Add(n.cfg.Delta).Add(proc), copies: 1}
	}
	d := delivery{at: n.clampDelivery(now, v.Delay).Add(proc), copies: 1}
	if v.Dup {
		d.dupAt = n.clampDelivery(now, v.DupDelay).Add(proc)
		d.copies = 2
	}
	return d
}

// sendTo schedules one point-to-point transmission (shared by send and
// the legacy broadcast path; stop/kill checks happen in the callers).
func (n *Net) sendTo(now types.Time, from, to types.NodeID, m msg.Message) {
	if from == to {
		// Self-delivery at the same instant, not a network message.
		n.sched.SendAt(now, from, to, m)
		return
	}
	d := n.resolve(now, from, to, m)
	if d.copies == 0 {
		return
	}
	n.sched.SendAt(d.at, from, to, m)
	if d.copies == 2 {
		n.sched.SendAt(d.dupAt, from, to, m)
	}
}

// observeSend fans OnSend out to the observers, keeping the common
// zero/one observer cases free of slice iteration.
func (n *Net) observeSend(from, to types.NodeID, m msg.Message, now types.Time) {
	switch len(n.observers) {
	case 0:
	case 1:
		n.observers[0].OnSend(from, to, m, now, n.honest[from])
	default:
		for _, o := range n.observers {
			o.OnSend(from, to, m, now, n.honest[from])
		}
	}
}

// observeDeliver mirrors observeSend for the delivery side.
func (n *Net) observeDeliver(from, to types.NodeID, m msg.Message, now types.Time) {
	switch len(n.observers) {
	case 0:
	case 1:
		n.observers[0].OnDeliver(from, to, m, now)
	default:
		for _, o := range n.observers {
			o.OnDeliver(from, to, m, now)
		}
	}
}

func (n *Net) dispatch(from, to types.NodeID, m msg.Message) {
	if n.stopped || n.killed[to] {
		return
	}
	h := n.handlers[to]
	if h == nil {
		return
	}
	n.observeDeliver(from, to, m, n.sched.Now())
	h.Deliver(from, m)
}

type endpoint struct {
	net *Net
	id  types.NodeID
}

var _ Endpoint = (*endpoint)(nil)

func (e *endpoint) ID() types.NodeID { return e.id }

func (e *endpoint) Send(to types.NodeID, m msg.Message) { e.net.send(e.id, to, m) }

func (e *endpoint) Broadcast(m msg.Message) { e.net.broadcast(e.id, m) }
