// Package network defines the transport abstraction shared by the
// simulator and the TCP runtime, and implements the simulated
// partial-synchrony network of §2: the adversary chooses GST and
// per-message delays, subject to the constraint that a message sent at
// time t arrives by max{GST, t} + Δ.
package network

import (
	"fmt"
	"math/rand"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// Endpoint is a node's handle on the network.
type Endpoint interface {
	// ID returns the owning node.
	ID() types.NodeID
	// Send transmits m to a single processor. Sends to self are
	// delivered at the same instant (the paper's convention).
	Send(to types.NodeID, m msg.Message)
	// Broadcast transmits m to all processors including the sender;
	// the self-copy is delivered at the same instant (§4).
	Broadcast(m msg.Message)
}

// Handler consumes delivered messages.
type Handler interface {
	Deliver(from types.NodeID, m msg.Message)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from types.NodeID, m msg.Message)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from types.NodeID, m msg.Message) { f(from, m) }

// Observer is notified of network activity; metrics and tracing hook in
// here.
type Observer interface {
	// OnSend fires once per point-to-point transmission (a broadcast
	// to n processors fires n−1 times; self-deliveries are not
	// transmissions).
	OnSend(from, to types.NodeID, m msg.Message, at types.Time, honestSender bool)
	// OnDeliver fires when the message reaches its destination.
	OnDeliver(from, to types.NodeID, m msg.Message, at types.Time)
}

// DelayPolicy is the adversary's control over message delivery times. The
// returned delay is a request: the network clamps actual delivery into the
// partial-synchrony window [now, max(GST, now)+Δ].
type DelayPolicy interface {
	Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration
}

// DelayFunc adapts a function to DelayPolicy.
type DelayFunc func(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration

// Delay implements DelayPolicy.
func (f DelayFunc) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	return f(from, to, m, at, rng)
}

// ---------------------------------------------------------------------------
// Standard delay policies
// ---------------------------------------------------------------------------

// Fixed delays every message by exactly D (the "actual bound δ" of §2).
type Fixed struct{ D time.Duration }

// Delay implements DelayPolicy.
func (p Fixed) Delay(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) time.Duration {
	return p.D
}

// Uniform delays every message uniformly in [Min, Max].
type Uniform struct{ Min, Max time.Duration }

// Delay implements DelayPolicy.
func (p Uniform) Delay(_, _ types.NodeID, _ msg.Message, _ types.Time, rng *rand.Rand) time.Duration {
	if p.Max <= p.Min {
		return p.Min
	}
	return p.Min + time.Duration(rng.Int63n(int64(p.Max-p.Min)))
}

// Adversarial requests an unbounded delay for every message, so delivery
// always lands exactly on the partial-synchrony bound max(GST, t)+Δ — the
// worst case the model permits.
type Adversarial struct{}

// Delay implements DelayPolicy.
func (Adversarial) Delay(_, _ types.NodeID, _ msg.Message, _ types.Time, _ *rand.Rand) time.Duration {
	return time.Duration(1<<62 - 1)
}

// PreGSTChaos delays messages sent before GST as long as the model allows
// (arrival at GST+Δ) and uses After for messages sent at or after GST.
// This models the unbounded asynchrony before stabilization.
type PreGSTChaos struct {
	GST   types.Time
	After DelayPolicy
}

// Delay implements DelayPolicy.
func (p PreGSTChaos) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	if at < p.GST {
		return time.Duration(1<<62 - 1) // clamped to GST+Δ by the network
	}
	return p.After.Delay(from, to, m, at, rng)
}

// Targeted applies Slow to messages to or from nodes in Targets and Base
// to everything else. It models an adversary focusing delays on specific
// processors (e.g. the next honest leader).
type Targeted struct {
	Base    DelayPolicy
	Slow    DelayPolicy
	Targets map[types.NodeID]bool
}

// Delay implements DelayPolicy.
func (p Targeted) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	if p.Targets[from] || p.Targets[to] {
		return p.Slow.Delay(from, to, m, at, rng)
	}
	return p.Base.Delay(from, to, m, at, rng)
}

// Phased switches policies at a point in time (by send time): Before
// applies to messages sent strictly before Switch, After to the rest.
// Nest Phased values to build multi-phase adversary schedules.
type Phased struct {
	Switch types.Time
	Before DelayPolicy
	After  DelayPolicy
}

// Delay implements DelayPolicy.
func (p Phased) Delay(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) time.Duration {
	if at < p.Switch {
		return p.Before.Delay(from, to, m, at, rng)
	}
	return p.After.Delay(from, to, m, at, rng)
}

// ---------------------------------------------------------------------------
// Simulated network
// ---------------------------------------------------------------------------

// Net is the simulated partial-synchrony network.
type Net struct {
	sched     *sim.Scheduler
	cfg       types.Config
	gst       types.Time
	policy    DelayPolicy
	handlers  []Handler
	honest    []bool
	killed    []bool
	observers []Observer
	stopped   bool
}

// NewNet creates a network for cfg.N nodes. gst is the global
// stabilization time; policy chooses per-message delays (clamped to the
// model). All nodes start marked honest; use SetByzantine for corruptions.
// The network registers itself as the scheduler's payload sink: message
// deliveries flow through sim.SendAt rather than per-send closures.
func NewNet(sched *sim.Scheduler, cfg types.Config, gst types.Time, policy DelayPolicy) *Net {
	if policy == nil {
		policy = Fixed{D: cfg.Delta / 10}
	}
	honest := make([]bool, cfg.N)
	for i := range honest {
		honest[i] = true
	}
	n := &Net{
		sched:    sched,
		cfg:      cfg,
		gst:      gst,
		policy:   policy,
		handlers: make([]Handler, cfg.N),
		honest:   honest,
		killed:   make([]bool, cfg.N),
	}
	sched.SetSink(n.deliverPayload)
	return n
}

// deliverPayload is the scheduler's MsgSink: it fires when a scheduled
// transmission reaches its delivery time.
func (n *Net) deliverPayload(from, to types.NodeID, m any) {
	n.dispatch(from, to, m.(msg.Message))
}

// GST returns the network's global stabilization time.
func (n *Net) GST() types.Time { return n.gst }

// Attach registers the handler for a node and returns its endpoint.
func (n *Net) Attach(id types.NodeID, h Handler) Endpoint {
	if int(id) < 0 || int(id) >= len(n.handlers) {
		panic(fmt.Sprintf("network: attach unknown node %v", id))
	}
	n.handlers[id] = h
	return &endpoint{net: n, id: id}
}

// Observe registers an observer for all traffic.
func (n *Net) Observe(o Observer) { n.observers = append(n.observers, o) }

// SetByzantine marks a node as Byzantine for accounting purposes (its
// sends are not charged to honest communication complexity).
func (n *Net) SetByzantine(id types.NodeID) { n.honest[id] = false }

// Honest reports whether a node is marked honest.
func (n *Net) Honest(id types.NodeID) bool { return n.honest[id] }

// Stop makes the network drop all future traffic (used to cleanly end a
// run without draining protocol timers).
func (n *Net) Stop() { n.stopped = true }

// Kill crashes a node from now on: its sends are dropped and nothing is
// delivered to it. Used for Byzantine processors that behave honestly
// until a chosen moment (the classic desynchronization adversary).
func (n *Net) Kill(id types.NodeID) { n.killed[id] = true }

func (n *Net) deliverAt(sendAt types.Time, from, to types.NodeID, m msg.Message) types.Time {
	req := n.policy.Delay(from, to, m, sendAt, n.sched.Rand())
	if req < 0 {
		req = 0
	}
	bound := types.MaxTime(n.gst, sendAt).Add(n.cfg.Delta)
	return types.MinTime(sendAt.Add(req), bound)
}

func (n *Net) send(from, to types.NodeID, m msg.Message) {
	if n.stopped || n.killed[from] {
		return
	}
	if int(to) < 0 || int(to) >= len(n.handlers) {
		panic(fmt.Sprintf("network: send to unknown node %v", to))
	}
	n.sendTo(n.sched.Now(), from, to, m)
}

// broadcast transmits m from one node to all nodes, reserving heap space
// for the whole burst once instead of growing per recipient.
func (n *Net) broadcast(from types.NodeID, m msg.Message) {
	if n.stopped || n.killed[from] {
		return
	}
	now := n.sched.Now()
	n.sched.Reserve(len(n.handlers))
	for to := range n.handlers {
		n.sendTo(now, from, types.NodeID(to), m)
	}
}

// sendTo schedules one point-to-point transmission (shared by send and
// broadcast; stop/kill checks happen in the callers).
func (n *Net) sendTo(now types.Time, from, to types.NodeID, m msg.Message) {
	if from == to {
		// Self-delivery at the same instant, not a network message.
		n.sched.SendAt(now, from, to, m)
		return
	}
	n.observeSend(from, to, m, now)
	n.sched.SendAt(n.deliverAt(now, from, to, m), from, to, m)
}

// observeSend fans OnSend out to the observers, keeping the common
// zero/one observer cases free of slice iteration.
func (n *Net) observeSend(from, to types.NodeID, m msg.Message, now types.Time) {
	switch len(n.observers) {
	case 0:
	case 1:
		n.observers[0].OnSend(from, to, m, now, n.honest[from])
	default:
		for _, o := range n.observers {
			o.OnSend(from, to, m, now, n.honest[from])
		}
	}
}

// observeDeliver mirrors observeSend for the delivery side.
func (n *Net) observeDeliver(from, to types.NodeID, m msg.Message, now types.Time) {
	switch len(n.observers) {
	case 0:
	case 1:
		n.observers[0].OnDeliver(from, to, m, now)
	default:
		for _, o := range n.observers {
			o.OnDeliver(from, to, m, now)
		}
	}
}

func (n *Net) dispatch(from, to types.NodeID, m msg.Message) {
	if n.stopped || n.killed[to] {
		return
	}
	h := n.handlers[to]
	if h == nil {
		return
	}
	n.observeDeliver(from, to, m, n.sched.Now())
	h.Deliver(from, m)
}

type endpoint struct {
	net *Net
	id  types.NodeID
}

var _ Endpoint = (*endpoint)(nil)

func (e *endpoint) ID() types.NodeID { return e.id }

func (e *endpoint) Send(to types.NodeID, m msg.Message) { e.net.send(e.id, to, m) }

func (e *endpoint) Broadcast(m msg.Message) { e.net.broadcast(e.id, m) }
