package network

import (
	"fmt"
	"math/rand"
	"time"

	"lumiere/internal/msg"
	"lumiere/internal/types"
)

// Topology describes a geo-distributed deployment as a regional link
// matrix: processors are grouped into regions (in ID order), and the
// one-way latency of a link depends on the sender's and recipient's
// regions. It realizes as a LinkPolicy (Policy) that composes under the
// §2 clamp like every other link condition — but unlike the chaos
// policies it is a *deployment* model, so the harness validates it
// against Δ up front (Validate): a latency class exceeding Δ would be
// silently clamped post-GST, quietly distorting every table built on
// it, and is a scenario error instead.
//
// Topology also carries the two heterogeneity axes that are not link
// properties: per-region processing delay (ProcDelays — the straggler
// model, applied by the simulator at the dispatch boundary, outside the
// network clamp) and regional partitions (Isolated — realized by the
// harness through the adversary partition primitives).
type Topology struct {
	// Regions holds the number of processors per region; processors are
	// assigned in ID order (region 0 gets IDs 0..Regions[0]-1, and so
	// on). The sizes must sum to the scenario's n.
	Regions []int
	// Intra and Inter are the default one-way latency classes for
	// same-region and cross-region links. Matrix, when non-nil, is an
	// R×R per-region-pair override (Matrix[i][j] = latency from region i
	// to region j) and may be asymmetric.
	Intra  time.Duration
	Inter  time.Duration
	Matrix [][]time.Duration
	// Jitter adds an independent uniform extra delay in [0, Jitter] per
	// link. Latency class + Jitter must stay ≤ Δ.
	Jitter time.Duration
	// ProcDelays, when non-nil, gives each region a fixed per-delivery
	// processing delay (len R): every network message into one of the
	// region's processors is ingested that much later. This is node
	// slowness, not network delay — it is applied after the §2 clamp and
	// may exceed Δ (a degraded region lags the protocol without
	// violating the network model).
	ProcDelays []time.Duration
	// Isolated lists region indices cut off from the rest (each
	// isolated region forms its own partition group) until IsolateHeal
	// (zero = heal at GST, the model-faithful split-brain).
	Isolated    []int
	IsolateHeal time.Duration
}

// R returns the number of regions.
func (t *Topology) R() int { return len(t.Regions) }

// N returns the total number of processors the topology covers.
func (t *Topology) N() int {
	n := 0
	for _, r := range t.Regions {
		n += r
	}
	return n
}

// latency returns the latency class from region i to region j.
func (t *Topology) latency(i, j int) time.Duration {
	if t.Matrix != nil {
		return t.Matrix[i][j]
	}
	if i == j {
		return t.Intra
	}
	return t.Inter
}

// Validate checks the topology against a scenario with n processors and
// partial-synchrony bound delta. It rejects shapes that cannot mean
// what they say: region sizes that do not cover n, malformed matrices,
// negative delays, out-of-range isolated regions — and, the point of
// validating at all, any latency class whose worst draw (class +
// Jitter) exceeds delta, which the network would otherwise silently
// clamp post-GST.
func (t *Topology) Validate(n int, delta time.Duration) error {
	if len(t.Regions) == 0 {
		return fmt.Errorf("topology: no regions")
	}
	for i, r := range t.Regions {
		if r < 1 {
			return fmt.Errorf("topology: region %d has %d processors; every region needs at least 1", i, r)
		}
	}
	if t.N() != n {
		return fmt.Errorf("topology: regions cover %d processors, scenario has n=%d", t.N(), n)
	}
	r := t.R()
	if t.Matrix != nil {
		if len(t.Matrix) != r {
			return fmt.Errorf("topology: matrix has %d rows for %d regions", len(t.Matrix), r)
		}
		for i, row := range t.Matrix {
			if len(row) != r {
				return fmt.Errorf("topology: matrix row %d has %d entries for %d regions", i, len(row), r)
			}
		}
	}
	if t.Intra < 0 || t.Inter < 0 {
		return fmt.Errorf("topology: negative latency class (intra %v, inter %v)", t.Intra, t.Inter)
	}
	if t.Jitter < 0 {
		return fmt.Errorf("topology: negative jitter %v", t.Jitter)
	}
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			l := t.latency(i, j)
			if l < 0 {
				return fmt.Errorf("topology: negative latency %v from region %d to %d", l, i, j)
			}
			if l+t.Jitter > delta {
				return fmt.Errorf("topology: latency %v + jitter %v from region %d to %d exceeds Δ=%v; the post-GST clamp would silently distort it",
					l, t.Jitter, i, j, delta)
			}
		}
	}
	if t.ProcDelays != nil {
		if len(t.ProcDelays) != r {
			return fmt.Errorf("topology: %d proc delays for %d regions", len(t.ProcDelays), r)
		}
		for i, d := range t.ProcDelays {
			if d < 0 {
				return fmt.Errorf("topology: negative proc delay %v for region %d", d, i)
			}
		}
	}
	seen := make(map[int]bool, len(t.Isolated))
	for _, i := range t.Isolated {
		if i < 0 || i >= r {
			return fmt.Errorf("topology: isolated region %d out of range [0,%d)", i, r)
		}
		if seen[i] {
			return fmt.Errorf("topology: region %d isolated twice", i)
		}
		seen[i] = true
	}
	if t.IsolateHeal < 0 {
		return fmt.Errorf("topology: negative isolate heal %v", t.IsolateHeal)
	}
	return nil
}

// regionBounds returns the first node ID of each region plus the total,
// i.e. region i covers IDs [b[i], b[i+1]).
func (t *Topology) regionBounds() []int {
	b := make([]int, len(t.Regions)+1)
	for i, r := range t.Regions {
		b[i+1] = b[i] + r
	}
	return b
}

// NodeRegion returns the region of a node ID.
func (t *Topology) NodeRegion(id types.NodeID) int {
	cum := 0
	for i, r := range t.Regions {
		cum += r
		if int(id) < cum {
			return i
		}
	}
	return len(t.Regions) - 1
}

// NodeProcDelays expands the per-region ProcDelays into a per-node
// slice (nil when the topology has none).
func (t *Topology) NodeProcDelays() []time.Duration {
	if t.ProcDelays == nil {
		return nil
	}
	out := make([]time.Duration, 0, t.N())
	for i, r := range t.Regions {
		for k := 0; k < r; k++ {
			out = append(out, t.ProcDelays[i])
		}
	}
	return out
}

// IslandGroups returns the Isolated regions as partition groups (one
// group of node IDs per isolated region), ready for the adversary
// partition primitives. Nil when nothing is isolated.
func (t *Topology) IslandGroups() [][]types.NodeID {
	if len(t.Isolated) == 0 {
		return nil
	}
	b := t.regionBounds()
	groups := make([][]types.NodeID, 0, len(t.Isolated))
	for _, ri := range t.Isolated {
		g := make([]types.NodeID, 0, t.Regions[ri])
		for id := b[ri]; id < b[ri+1]; id++ {
			g = append(g, types.NodeID(id))
		}
		groups = append(groups, g)
	}
	return groups
}

// Policy compiles the topology into its LinkPolicy: per transmission,
// the latency class of the (sender region, recipient region) pair plus
// an independent uniform draw in [0, Jitter]. The compiled policy
// precomputes the node→region map and a flattened delay matrix, and its
// Link path performs no allocation (TestTopologyAllocs pins it).
// Isolated and ProcDelays are not part of the link policy — the harness
// realizes them through the partition primitives and the simulator's
// dispatch boundary respectively.
func (t *Topology) Policy() LinkPolicy {
	r := t.R()
	p := topologyLink{
		regions: r,
		region:  make([]int32, 0, t.N()),
		delays:  make([]time.Duration, r*r),
		jitter:  t.Jitter,
	}
	for i, size := range t.Regions {
		for k := 0; k < size; k++ {
			p.region = append(p.region, int32(i))
		}
		for j := 0; j < r; j++ {
			p.delays[i*r+j] = t.latency(i, j)
		}
	}
	return p
}

// topologyLink is the compiled regional-matrix policy.
type topologyLink struct {
	regions int
	region  []int32
	delays  []time.Duration
	jitter  time.Duration
}

// Link implements LinkPolicy.
func (p topologyLink) Link(from, to types.NodeID, _ msg.Message, _ types.Time, rng *rand.Rand) Verdict {
	d := p.delays[int(p.region[from])*p.regions+int(p.region[to])]
	if p.jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.jitter) + 1))
	}
	return Verdict{Delay: d}
}

// PreGSTChaosLink delays messages sent before GST as long as the model
// allows (arrival at GST+Δ) and defers to Base at or after GST — the
// LinkPolicy counterpart of the PreGSTChaos delay policy, used when the
// delay base is itself a LinkPolicy (a Topology).
type PreGSTChaosLink struct {
	GST  types.Time
	Base LinkPolicy
}

// Link implements LinkPolicy.
func (p PreGSTChaosLink) Link(from, to types.NodeID, m msg.Message, at types.Time, rng *rand.Rand) Verdict {
	if at < p.GST {
		return Verdict{Delay: time.Duration(1<<62 - 1)} // clamped to GST+Δ
	}
	return p.Base.Link(from, to, m, at, rng)
}
