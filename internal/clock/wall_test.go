package clock

import (
	"sync"
	"testing"
	"time"

	"lumiere/internal/types"
)

func TestWallNowMonotone(t *testing.T) {
	var mu sync.Mutex
	w := NewWall(&mu)
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("wall time not advancing: %v -> %v", a, b)
	}
}

func TestWallAfterFiresUnderLock(t *testing.T) {
	var mu sync.Mutex
	w := NewWall(&mu)
	done := make(chan struct{})
	locked := false
	w.After(time.Millisecond, func() {
		// TryLock failing proves the callback holds the node lock.
		locked = !mu.TryLock()
		if !locked {
			mu.Unlock()
		}
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if !locked {
		t.Fatal("callback did not hold the node lock")
	}
}

func TestWallAfterCancel(t *testing.T) {
	var mu sync.Mutex
	w := NewWall(&mu)
	fired := make(chan struct{}, 1)
	cancel := w.After(20*time.Millisecond, func() { fired <- struct{}{} })
	cancel()
	cancel() // idempotent
	select {
	case <-fired:
		t.Fatal("canceled timer fired")
	case <-time.After(60 * time.Millisecond):
	}
}

func TestWallNegativeDelayClamped(t *testing.T) {
	var mu sync.Mutex
	w := NewWall(&mu)
	done := make(chan struct{})
	w.After(-time.Second, func() { close(done) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("negative-delay timer never fired")
	}
}

// TestClockOverWall exercises the protocol clock on the real runtime:
// pause/bump/alarm semantics hold with real-time jitter.
func TestClockOverWall(t *testing.T) {
	var mu sync.Mutex
	w := NewWall(&mu)
	mu.Lock()
	c := New(w, 0)
	mu.Unlock()

	fired := make(chan types.Time, 1)
	mu.Lock()
	c.SetAlarm(types.Time(5*time.Millisecond), func() { fired <- c.Read() })
	mu.Unlock()
	select {
	case lc := <-fired:
		if lc < types.Time(5*time.Millisecond) {
			t.Fatalf("alarm fired early: %v", lc)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("alarm never fired")
	}

	mu.Lock()
	c.Pause()
	frozen := c.Read()
	mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	mu.Lock()
	if c.Read() != frozen {
		t.Fatal("paused wall clock advanced")
	}
	c.BumpTo(frozen + types.Time(time.Hour))
	if c.Read() != frozen+types.Time(time.Hour) {
		t.Fatal("bump while paused failed")
	}
	c.Unpause()
	mu.Unlock()
}
