// Package clock implements the local-clock abstraction of §2 and §4 of the
// paper: each processor p maintains a value lc(p) that advances in real
// time except when the protocol pauses it or bumps it forward. The same
// implementation runs over virtual time (the simulator's scheduler) and
// over wall time (the TCP runtime) via the Runtime interface.
//
// Protocol handlers of the form "Upon lc(p) == c_v" have exact-attainment
// semantics: they fire when the clock reaches the value c_v either by
// advancing in real time (which touches every intermediate value) or by a
// bump landing exactly on c_v. A bump that jumps over c_v does not fire
// them — the pacemakers compensate with their certificate handlers, as the
// paper's Algorithm 1 does (lines 18, 38, 46). The Ticker type in this
// package centralizes that distinction for all clock-driven pacemakers.
package clock

import (
	"time"

	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// Runtime provides real-time facilities to a protocol node: the current
// (virtual or monotonic) time and one-shot timers. sim.Scheduler implements
// it for simulations; Wall implements it over the OS clock.
type Runtime interface {
	// Now returns the current time.
	Now() types.Time
	// After schedules fn once, d from now, returning an idempotent
	// cancel function. Callbacks must be serialized with all other
	// protocol callbacks of the same node.
	After(d time.Duration, fn func()) (cancel func())
}

// TimerRuntime is an optional Runtime extension providing handle-based
// one-shot timers with eager cancellation. When the runtime supports
// it, Clock arms and cancels its alarm through reusable Timer handles
// and cached callbacks, so the alarm hot path — exercised at every view
// boundary by every clock-driven pacemaker — performs no per-alarm
// closure or cancel-handle allocation.
//
// The handle is the concrete sim.Timer: a zero-allocation handle needs
// a concrete value type, and the simulator is the only runtime where
// alarm churn matters (laptop-scale sweeps fire millions of
// boundaries; the wall-clock runtime fires a handful per second and
// keeps the closure-based fallback path below). This deliberately ties
// the fast path to the simulator rather than inventing a second handle
// abstraction.
type TimerRuntime interface {
	Runtime
	// AtTimer schedules fn at absolute time t and returns a handle for
	// Cancel. Past times are clamped to now.
	AtTimer(t types.Time, fn func()) sim.Timer
	// Cancel removes a scheduled timer; stale or zero handles are
	// no-ops.
	Cancel(tm sim.Timer)
}

// Clock is a pausable, bumpable local clock (lc(p) in the paper). The
// zero value is not usable; use New. Clock is not internally synchronized:
// the owning Runtime serializes access.
type Clock struct {
	rt     Runtime
	value  types.Time // lc at anchor (exact when paused)
	anchor types.Time // rt.Now() when value was anchored (running only)
	paused bool

	alarmTarget types.Time
	alarmFn     func()
	alarmCancel func()
	alarmGen    uint64

	// Allocation-free alarm path, used when rt implements TimerRuntime:
	// the pending alarm is a cancellable Timer handle and the callbacks
	// are cached once at construction. Cancellation is eager (the timer
	// leaves the runtime's queue immediately), which subsumes the
	// generation checks of the closure-based fallback path.
	trt     TimerRuntime
	tm      sim.Timer
	physFn  func() // physical-alarm callback (guards against pause races)
	asyncFn func() // already-reached-target callback
}

// New returns a running Clock with lc = initial.
func New(rt Runtime, initial types.Time) *Clock {
	c := &Clock{rt: rt, value: initial, anchor: rt.Now(), alarmTarget: types.TimeInf}
	if trt, ok := rt.(TimerRuntime); ok {
		c.trt = trt
		c.physFn = func() {
			if c.paused {
				return
			}
			c.fireAlarm()
		}
		c.asyncFn = c.fireAlarm
	}
	return c
}

// Read returns the current local-clock value lc(p).
func (c *Clock) Read() types.Time {
	if c.paused {
		return c.value
	}
	return c.value + (c.rt.Now() - c.anchor)
}

// Paused reports whether the clock is paused.
func (c *Clock) Paused() bool { return c.paused }

// Pause freezes the clock at its current value. Pausing a paused clock is
// a no-op.
func (c *Clock) Pause() {
	if c.paused {
		return
	}
	c.value = c.Read()
	c.paused = true
	c.cancelPhysical()
}

// Unpause resumes the clock from its frozen value. Unpausing a running
// clock is a no-op.
func (c *Clock) Unpause() {
	if !c.paused {
		return
	}
	c.paused = false
	c.anchor = c.rt.Now()
	c.armPhysical()
}

// BumpTo advances the clock to target instantaneously. Bumps never move
// the clock backwards; it returns true if the clock advanced. The paused
// state is preserved (Algorithm 1 unpauses explicitly where required).
//
// If the pending alarm's target is jumped over or landed on, the alarm is
// cleared without firing: the caller is responsible for processing the
// landing value (see Ticker.Jumped), mirroring the paper's convention that
// bump-triggered transitions happen inside the certificate handlers.
func (c *Clock) BumpTo(target types.Time) bool {
	cur := c.Read()
	if target <= cur {
		return false
	}
	c.value = target
	if !c.paused {
		c.anchor = c.rt.Now()
	}
	if c.alarmFn != nil && c.alarmTarget <= target {
		c.clearAlarm()
	}
	return true
}

// SetAlarm replaces the clock's single alarm: fn fires once when the
// running clock reaches target by the passage of time. If target is
// already reached, fn fires asynchronously (next runtime tick). Setting a
// new alarm cancels the previous one.
func (c *Clock) SetAlarm(target types.Time, fn func()) {
	c.clearAlarm()
	c.alarmTarget = target
	c.alarmFn = fn
	if target <= c.Read() {
		if c.trt != nil {
			c.tm = c.trt.AtTimer(c.trt.Now(), c.asyncFn)
			return
		}
		gen := c.alarmGen
		c.alarmCancel = c.rt.After(0, func() {
			if gen == c.alarmGen {
				c.fireAlarm()
			}
		})
		return
	}
	if !c.paused {
		c.armPhysical()
	}
}

// ClearAlarm cancels any pending alarm.
func (c *Clock) ClearAlarm() { c.clearAlarm() }

func (c *Clock) clearAlarm() {
	c.cancelPhysical()
	c.alarmTarget = types.TimeInf
	c.alarmFn = nil
	c.alarmGen++
}

func (c *Clock) cancelPhysical() {
	if c.trt != nil {
		c.trt.Cancel(c.tm)
		c.tm = sim.Timer{}
		return
	}
	if c.alarmCancel != nil {
		c.alarmCancel()
		c.alarmCancel = nil
	}
}

func (c *Clock) armPhysical() {
	if c.alarmFn == nil || c.alarmTarget == types.TimeInf {
		return
	}
	d := c.alarmTarget.Sub(c.Read())
	if c.trt != nil {
		c.tm = c.trt.AtTimer(c.trt.Now().Add(d), c.physFn)
		return
	}
	gen := c.alarmGen
	c.alarmCancel = c.rt.After(d, func() {
		if gen != c.alarmGen || c.paused {
			return
		}
		c.fireAlarm()
	})
}

func (c *Clock) fireAlarm() {
	fn := c.alarmFn
	c.alarmFn = nil
	c.alarmTarget = types.TimeInf
	c.alarmCancel = nil
	c.tm = sim.Timer{}
	c.alarmGen++
	if fn != nil {
		fn()
	}
}
