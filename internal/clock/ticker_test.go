package clock

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/sim"
	"lumiere/internal/types"
)

const gamma = 10 * time.Nanosecond

func tickerHarness(seed int64) (*sim.Scheduler, *Clock, *Ticker, *[]types.View) {
	s := sim.New(seed)
	c := New(s, 0)
	var fired []types.View
	tk := NewTicker(c, gamma, func(v types.View) { fired = append(fired, v) })
	return s, c, tk, &fired
}

func TestTickerCrossingFiresInOrder(t *testing.T) {
	s, _, tk, fired := tickerHarness(1)
	tk.Start()
	s.RunUntil(35)
	want := []types.View{1, 2, 3}
	if len(*fired) != len(want) {
		t.Fatalf("fired = %v", *fired)
	}
	for i, v := range want {
		if (*fired)[i] != v {
			t.Fatalf("fired = %v", *fired)
		}
	}
}

func TestTickerStartInclusiveFiresBoundaryZero(t *testing.T) {
	s, _, tk, fired := tickerHarness(1)
	tk.StartInclusive()
	if len(*fired) != 1 || (*fired)[0] != 0 {
		t.Fatalf("fired = %v, want [0]", *fired)
	}
	s.RunUntil(10)
	if len(*fired) != 2 || (*fired)[1] != 1 {
		t.Fatalf("fired = %v, want [0 1]", *fired)
	}
}

func TestTickerBumpLandingFires(t *testing.T) {
	s, c, tk, fired := tickerHarness(1)
	tk.Start()
	s.RunUntil(5)
	c.BumpTo(30) // lands exactly on boundary 3
	tk.Jumped(30)
	if len(*fired) != 1 || (*fired)[0] != 3 {
		t.Fatalf("fired = %v, want [3]", *fired)
	}
}

func TestTickerBumpOverSkips(t *testing.T) {
	s, c, tk, fired := tickerHarness(1)
	tk.Start()
	s.RunUntil(5)
	c.BumpTo(35) // jumps over boundaries 1,2,3, lands between 3 and 4
	tk.Jumped(35)
	if len(*fired) != 0 {
		t.Fatalf("fired = %v, want none", *fired)
	}
	s.RunUntil(12) // lc = 35 + (12-5) = 42: crossed boundary 4 only
	if len(*fired) != 1 || (*fired)[0] != 4 {
		t.Fatalf("fired = %v, want [4]", *fired)
	}
}

func TestTickerPauseSuppressesAndResumes(t *testing.T) {
	s, c, tk, fired := tickerHarness(1)
	tk.Start()
	s.RunUntil(15)
	c.Pause()
	s.RunUntil(100)
	if len(*fired) != 1 {
		t.Fatalf("fired during pause: %v", *fired)
	}
	c.Unpause()
	tk.Rearm()
	s.RunUntil(106) // lc: 15 paused; resumes at t=100, lc=20 at t=105
	if len(*fired) != 2 || (*fired)[1] != 2 {
		t.Fatalf("fired = %v", *fired)
	}
}

func TestTickerHandlerMayPauseAtBoundary(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	var fired []types.View
	var tk *Ticker
	tk = NewTicker(c, gamma, func(v types.View) {
		fired = append(fired, v)
		if v == 2 {
			c.Pause()
		}
	})
	tk.Start()
	s.RunUntil(100)
	if len(fired) != 2 || fired[1] != 2 || c.Read() != 20 {
		t.Fatalf("fired = %v lc = %v", fired, c.Read())
	}
}

func TestTickerHandlerMayBumpAtBoundary(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	var fired []types.View
	var tk *Ticker
	tk = NewTicker(c, gamma, func(v types.View) {
		fired = append(fired, v)
		if v == 1 {
			c.BumpTo(30) // lands on boundary 3 from within the handler
			tk.Jumped(30)
		}
	})
	tk.Start()
	s.RunUntil(10)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

// TestTickerExactlyOncePerBoundary checks the core guarantee under random
// interleavings: every boundary value the clock attains fires exactly
// once, and jumped-over boundaries never fire.
func TestTickerExactlyOncePerBoundary(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := sim.New(seed)
		c := New(s, 0)
		seen := make(map[types.View]int)
		var tk *Ticker
		tk = NewTicker(c, gamma, func(v types.View) { seen[v]++ })
		tk.Start()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0:
				s.RunFor(time.Duration(rng.Intn(25)))
			case 1:
				c.Pause()
			case 2:
				c.Unpause()
				tk.Rearm()
			case 3:
				target := c.Read() + types.Time(rng.Intn(35))
				if c.BumpTo(target) {
					tk.Jumped(target)
				}
			}
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: boundary %v fired %d times", seed, v, n)
			}
		}
	}
}

func TestTickerZeroGammaPanics(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTicker(c, 0, nil)
}
