package clock

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// TestDriftInverseExact pins base as the exact inverse of local: for any
// local target tl, base(tl) is the earliest base instant whose local
// image reaches tl.
func TestDriftInverseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ppms := []int64{0, 1, -1, 100, -100, 40_000, -40_000, 500_000, -500_000}
	skews := []time.Duration{0, time.Nanosecond, -time.Nanosecond, 25 * time.Millisecond, -25 * time.Millisecond}
	for _, ppm := range ppms {
		for _, skew := range skews {
			d := NewDrift(sim.New(1), ppm, skew)
			for i := 0; i < 2000; i++ {
				tl := types.Time(rng.Int63n(int64(3 * time.Hour)))
				b := d.base(tl)
				if d.local(b) < tl {
					t.Fatalf("ppm=%d skew=%v: local(base(%d))=%d < target", ppm, skew, tl, d.local(b))
				}
				if b > 0 && d.local(b-1) >= tl {
					t.Fatalf("ppm=%d skew=%v: base(%d)=%d not minimal", ppm, skew, tl, b)
				}
			}
		}
	}
}

// TestDriftLocalRoundTrip checks local∘base and base∘local at the
// extremes: TimeInf passes through, and base clamps at 0 when skew puts
// the target before the runtime's origin.
func TestDriftLocalRoundTrip(t *testing.T) {
	d := NewDrift(sim.New(1), 250_000, 10*time.Millisecond)
	if d.local(types.TimeInf) != types.TimeInf || d.base(types.TimeInf) != types.TimeInf {
		t.Fatal("TimeInf must pass through untouched")
	}
	if got := d.base(0); got != 0 {
		t.Fatalf("base(0) = %d with positive skew, want clamp at 0", got)
	}
}

// TestDriftNow: a clock 10% fast reads 110ms of local time after 100ms
// of base time, plus its initial skew.
func TestDriftNow(t *testing.T) {
	s := sim.New(1)
	d := NewDrift(s, 100_000, 3*time.Millisecond)
	s.RunUntil(types.Time(100 * time.Millisecond))
	want := types.Time(110*time.Millisecond + 3*time.Millisecond)
	if got := d.Now(); got != want {
		t.Fatalf("Now() = %d, want %d", got, want)
	}
}

// TestDriftAfterFiresEarlyOnFastClock: a timer armed for a local
// duration on a fast clock fires early in base time — 1s of local time
// on a +10% clock elapses in ~909ms of base time.
func TestDriftAfterFiresEarlyOnFastClock(t *testing.T) {
	s := sim.New(1)
	d := NewDrift(s, 100_000, 0)
	var fired types.Time = types.TimeInf
	d.After(time.Second, func() { fired = s.Now() })
	s.RunUntil(types.Time(2 * time.Second))
	if fired == types.TimeInf {
		t.Fatal("timer never fired")
	}
	if d.local(fired) < types.Time(time.Second) {
		t.Fatalf("fired at local %d, before the 1s local target", d.local(fired))
	}
	if fired > types.Time(910*time.Millisecond) {
		t.Fatalf("fired at base %v, want ≈909ms (early, fast clock)", time.Duration(fired))
	}
}

// TestDriftAfterFiresLateOnSlowClock mirrors the fast case: −50% rate
// means 1s of local time takes 2s of base time.
func TestDriftAfterFiresLateOnSlowClock(t *testing.T) {
	s := sim.New(1)
	d := NewDrift(s, -500_000, 0)
	var fired types.Time = types.TimeInf
	d.After(time.Second, func() { fired = s.Now() })
	s.RunUntil(types.Time(3 * time.Second))
	if fired == types.TimeInf {
		t.Fatal("timer never fired")
	}
	if fired < types.Time(1999*time.Millisecond) || fired > types.Time(2001*time.Millisecond) {
		t.Fatalf("fired at base %v, want ≈2s (late, slow clock)", time.Duration(fired))
	}
}

// TestDriftZeroTransparent: the zero wrapper is observationally the
// scheduler itself.
func TestDriftZeroTransparent(t *testing.T) {
	s := sim.New(1)
	d := NewDrift(s, 0, 0)
	s.RunUntil(12345)
	if d.Now() != s.Now() {
		t.Fatalf("zero drift Now() = %d, scheduler %d", d.Now(), s.Now())
	}
	var fired types.Time
	d.After(time.Millisecond, func() { fired = s.Now() })
	s.RunUntil(types.Time(2 * time.Millisecond))
	if fired != types.Time(12345+int64(time.Millisecond)) {
		t.Fatalf("zero drift timer at %d", fired)
	}
}

// TestDriftClockAlarm runs a Clock over a drifted runtime: SetAlarm's
// deadline is in local units, and the alarm must fire exactly when local
// time crosses it, through the zero-alloc TimerRuntime path.
func TestDriftClockAlarm(t *testing.T) {
	s := sim.New(1)
	d := NewDrift(s, 200_000, 0) // +20%
	c := New(d, 0)
	var fired types.Time = types.TimeInf
	c.SetAlarm(types.Time(600*time.Millisecond), func() { fired = d.Now() })
	s.RunUntil(types.Time(time.Second))
	if fired == types.TimeInf {
		t.Fatal("alarm never fired")
	}
	if fired < types.Time(600*time.Millisecond) {
		t.Fatalf("alarm fired at local %v, before its local deadline", time.Duration(fired))
	}
	if fired > types.Time(600*time.Millisecond+time.Microsecond) {
		t.Fatalf("alarm fired at local %v, long after its 600ms deadline", time.Duration(fired))
	}
}

// TestDriftCancel: a cancelled drifted timer never fires.
func TestDriftCancel(t *testing.T) {
	s := sim.New(1)
	d := NewDrift(s, 50_000, 0)
	fired := false
	cancel := d.After(10*time.Millisecond, func() { fired = true })
	cancel()
	s.RunUntil(types.Time(time.Second))
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

// TestNewDriftPanics: rates beyond ±5·10⁵ ppm are rejected at
// construction — outside the range where the conversion arithmetic is
// provably overflow-free and convergent.
func TestNewDriftPanics(t *testing.T) {
	for _, ppm := range []int64{500_001, -500_001, 1_000_000, -1_000_000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDrift(%d ppm) did not panic", ppm)
				}
			}()
			NewDrift(sim.New(1), ppm, 0)
		}()
	}
}

// TestDriftDeterministic: two identical drifted schedules produce
// identical firing sequences.
func TestDriftDeterministic(t *testing.T) {
	run := func() []types.Time {
		s := sim.New(99)
		d := NewDrift(s, -123_456, 7*time.Millisecond)
		var fires []types.Time
		var arm func()
		arm = func() {
			fires = append(fires, d.Now())
			if len(fires) < 50 {
				d.After(time.Duration(1+len(fires))*time.Millisecond, arm)
			}
		}
		d.After(time.Millisecond, arm)
		s.RunUntil(types.Time(time.Hour))
		return fires
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire %d: %d vs %d", i, a[i], b[i])
		}
	}
}
