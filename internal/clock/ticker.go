package clock

import (
	"time"

	"lumiere/internal/types"
)

// Ticker turns a Clock into the stream of "lc(p) == c_v" triggers that
// clock-driven pacemakers consume, where c_v = Γ·v. It enforces the
// paper's exact-attainment semantics:
//
//   - values crossed by the passage of time fire their triggers in order;
//   - a bump that lands exactly on c_v fires v's trigger (the owner
//     reports the landing via Jumped, so real-time jitter between the
//     bump and the observation cannot blur the target);
//   - a bump that jumps over c_v silently skips it.
//
// The owner must call Jumped(target) after every BumpTo(target) it
// performs, and Rearm after unpausing. Handlers may themselves bump or
// pause the clock; re-entrancy is handled.
type Ticker struct {
	clk    *Clock
	gamma  time.Duration
	handle func(v types.View)
	syncFn func() // cached alarm callback: one closure per Ticker, not per boundary

	cursor  types.Time // lc value up to which triggers have been evaluated
	syncing bool
}

// NewTicker creates a Ticker delivering triggers for view boundaries
// c_v = gamma·v. gamma must be positive. Call Start or StartInclusive to
// begin.
func NewTicker(clk *Clock, gamma time.Duration, handle func(v types.View)) *Ticker {
	if gamma <= 0 {
		panic("clock: non-positive gamma")
	}
	t := &Ticker{clk: clk, gamma: gamma, handle: handle}
	t.syncFn = t.sync
	return t
}

// Start begins delivering triggers for boundaries strictly greater than
// the clock's current value.
func (t *Ticker) Start() {
	t.cursor = t.clk.Read()
	t.sync()
}

// StartInclusive begins delivering triggers, treating the most recent
// boundary at or before the current clock value as not yet evaluated.
// Lumiere and LP22 boot this way so that lc ≈ 0 triggers the epoch-view-0
// handler — "≈" because under the wall clock a few nanoseconds elapse
// between clock creation and Start.
func (t *Ticker) StartInclusive() {
	lc := t.clk.Read()
	if lc < 0 {
		t.cursor = lc
		t.sync()
		return
	}
	g := types.Time(t.gamma)
	t.cursor = (lc/g)*g - 1
	t.sync()
}

// Gamma returns the boundary spacing Γ.
func (t *Ticker) Gamma() time.Duration { return t.gamma }

// Jumped must be called after the owner bumps the clock to target. If the
// bump landed exactly on a boundary, its trigger fires synchronously;
// boundaries jumped over are dropped.
func (t *Ticker) Jumped(target types.Time) {
	if target > t.cursor {
		fire := t.onBoundary(target)
		t.cursor = target
		if fire {
			t.fire(t.viewAt(target))
		}
	}
	t.sync()
}

// Rearm re-evaluates triggers and the physical alarm; call after
// unpausing.
func (t *Ticker) Rearm() { t.sync() }

func (t *Ticker) onBoundary(lc types.Time) bool {
	return lc >= 0 && lc%types.Time(t.gamma) == 0
}

func (t *Ticker) viewAt(lc types.Time) types.View {
	return types.View(lc / types.Time(t.gamma))
}

func (t *Ticker) nextBoundaryAfter(lc types.Time) types.Time {
	g := types.Time(t.gamma)
	if lc < 0 {
		return 0
	}
	return (lc/g + 1) * g
}

// sync fires triggers for every boundary the running clock has crossed
// since the cursor, in order, then arms the clock alarm for the next one.
// It is iterative and re-entrancy-guarded: handlers that pause or bump
// the clock (via Jumped) interleave correctly, and under the wall clock —
// where Read advances between statements — it terminates as soon as the
// next boundary lies in the future.
func (t *Ticker) sync() {
	if t.syncing {
		return
	}
	t.syncing = true
	for {
		lc := t.clk.Read()
		if lc <= t.cursor {
			break
		}
		next := t.nextBoundaryAfter(t.cursor)
		if next > lc {
			t.cursor = lc
			break
		}
		t.cursor = next
		t.fire(t.viewAt(next))
	}
	t.syncing = false
	t.clk.SetAlarm(t.nextBoundaryAfter(t.cursor), t.syncFn)
}

func (t *Ticker) fire(v types.View) {
	if t.handle != nil {
		t.handle(v)
	}
}
