package clock

import (
	"time"

	"lumiere/internal/sim"
	"lumiere/internal/types"
)

// Drift is a Runtime decorator modeling an imperfect hardware clock: a
// node reading local time through it observes
//
//	local(t) = t + t·PPM/10⁶ + Skew
//
// where t is the underlying runtime's time, PPM is the rate drift in
// parts per million (+100 = the crystal runs 0.01% fast) and Skew is a
// fixed initial offset. Everything a node does through a drifted
// runtime — Clock reads, alarms, Ticker boundaries, protocol After
// timers — happens in its local time scale, so a timer armed for a
// local-units duration d fires after ≈ d/(1+PPM/10⁶) of real time: a
// fast clock's view timers expire early, a slow clock's late, which is
// exactly the failure mode the model's Γ slack has to absorb. The
// harness derives its in-model drift tolerance from that slack
// (Scenario.Validate); DriftToleranceTable shows what breaks beyond it.
//
// Drift implements TimerRuntime over a TimerRuntime base, so Clock's
// allocation-free alarm path survives the wrapping: Clock.SetAlarm
// computes its deadline as Now().Add(d) in local units, and Drift's
// AtTimer converts that local target back to a base-runtime instant.
// The conversion is exact at the nanosecond (integer arithmetic with a
// monotone fix-up against rounding), so drifted timers are
// deterministic and never fire before their local target.
//
// |PPM| must be at most 5·10⁵ — a clock between half and 1.5× real
// speed. That is many orders of magnitude past any hardware crystal
// (and past anything the harness accepts in-model) while keeping the
// local↔base conversion's integer arithmetic overflow-free and its
// inverse iteration convergent; NewDrift panics outside the range. The
// zero-drift wrapper (PPM and Skew both zero) is valid and
// observationally transparent.
type Drift struct {
	rt   TimerRuntime
	ppm  int64
	skew types.Time
}

// NewDrift wraps rt with rate drift ppm (parts per million) and initial
// skew. It panics unless -500000 ≤ ppm ≤ 500000.
func NewDrift(rt TimerRuntime, ppm int64, skew time.Duration) *Drift {
	if ppm < -500_000 || ppm > 500_000 {
		panic("clock: drift rate must be within ±5·10⁵ ppm")
	}
	return &Drift{rt: rt, ppm: ppm, skew: types.Time(skew)}
}

// PPM returns the rate drift in parts per million.
func (d *Drift) PPM() int64 { return d.ppm }

// Skew returns the initial offset.
func (d *Drift) Skew() time.Duration { return time.Duration(d.skew) }

// local converts a base-runtime instant to the drifted local scale.
// Splitting t into 10⁶-quotient and remainder keeps the product inside
// int64 for any simulation horizon at any legal ppm.
func (d *Drift) local(t types.Time) types.Time {
	if t == types.TimeInf {
		return types.TimeInf
	}
	q, r := int64(t)/1_000_000, int64(t)%1_000_000
	return t + types.Time(q*d.ppm+r*d.ppm/1_000_000) + d.skew
}

// base inverts local: the earliest base instant whose local image is
// ≥ tl. A fixed-point iteration (each step shrinks the residual by the
// drift factor ρ = ppm/10⁶) lands within a few nanoseconds, and a
// monotone fix-up makes the inverse exact against local's integer
// rounding.
func (d *Drift) base(tl types.Time) types.Time {
	if tl == types.TimeInf {
		return types.TimeInf
	}
	t := tl - d.skew
	if t < 0 {
		t = 0
	}
	for i := 0; i < 64; i++ {
		res := int64(tl - d.local(t))
		if res == 0 {
			break
		}
		// step ≈ res/(1+ρ), split two-scale (quotient·10⁶ plus the
		// remainder rescaled) so it is exact to ~1ns without the
		// res·10⁶ product ever leaving int64.
		div := 1_000_000 + d.ppm
		step := types.Time(res/div*1_000_000 + res%div*1_000_000/div)
		if step == 0 {
			if res > 0 {
				step = 1
			} else {
				step = -1
			}
		}
		if t+step < 0 {
			t = 0
			break
		}
		t += step
	}
	for d.local(t) < tl {
		t++
	}
	for t > 0 && d.local(t-1) >= tl {
		t--
	}
	return t
}

// Now returns the drifted local time.
func (d *Drift) Now() types.Time { return d.local(d.rt.Now()) }

// After schedules fn once, a local-units duration dur from now.
func (d *Drift) After(dur time.Duration, fn func()) (cancel func()) {
	target := d.base(d.Now().Add(dur))
	now := d.rt.Now()
	if target < now {
		target = now
	}
	return d.rt.After(target.Sub(now), fn)
}

// AtTimer schedules fn at the local-time instant t, implementing
// TimerRuntime so Clock keeps its handle-based zero-allocation alarm
// path through a drifted runtime.
func (d *Drift) AtTimer(t types.Time, fn func()) sim.Timer {
	return d.rt.AtTimer(d.base(t), fn)
}

// Cancel removes a scheduled timer.
func (d *Drift) Cancel(tm sim.Timer) { d.rt.Cancel(tm) }
