package clock

import (
	"sync"
	"time"

	"lumiere/internal/types"
)

// Wall is a Runtime over the operating-system monotonic clock. All
// callbacks (timers and, by convention, message deliveries) are serialized
// by a single mutex supplied by the owning node, so protocol state
// machines written for the single-threaded simulator run unchanged.
type Wall struct {
	mu    *sync.Mutex
	start time.Time
}

var _ Runtime = (*Wall)(nil)

// NewWall creates a wall-clock runtime. mu is the owning node's big lock;
// every timer callback runs with mu held. Run message deliveries under the
// same lock.
func NewWall(mu *sync.Mutex) *Wall {
	return &Wall{mu: mu, start: time.Now()}
}

// NewWallAt is NewWall with an explicit time origin: Now() reports
// monotonic nanoseconds since start. A cluster harness gives every node
// the same origin so their metrics timestamps (decision instants, send
// series) live on one comparable time base.
func NewWallAt(mu *sync.Mutex, start time.Time) *Wall {
	return &Wall{mu: mu, start: start}
}

// Now implements Runtime using monotonic nanoseconds since creation.
func (w *Wall) Now() types.Time { return types.Time(time.Since(w.start)) }

// After implements Runtime. The callback acquires the node lock.
func (w *Wall) After(d time.Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	var once sync.Once
	canceled := make(chan struct{})
	timer := time.AfterFunc(d, func() {
		select {
		case <-canceled:
			return
		default:
		}
		w.mu.Lock()
		defer w.mu.Unlock()
		select {
		case <-canceled:
			return
		default:
			fn()
		}
	})
	return func() {
		once.Do(func() {
			close(canceled)
			timer.Stop()
		})
	}
}

// Lock exposes the node lock for transports delivering messages.
func (w *Wall) Lock() { w.mu.Lock() }

// Unlock releases the node lock.
func (w *Wall) Unlock() { w.mu.Unlock() }
