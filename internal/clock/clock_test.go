package clock

import (
	"math/rand"
	"testing"
	"time"

	"lumiere/internal/sim"
	"lumiere/internal/types"
)

func TestClockAdvances(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	if c.Read() != 0 {
		t.Fatalf("initial = %v", c.Read())
	}
	s.RunUntil(100)
	if c.Read() != 100 {
		t.Fatalf("read = %v", c.Read())
	}
}

func TestClockInitialOffset(t *testing.T) {
	s := sim.New(1)
	s.RunUntil(50)
	c := New(s, 500)
	s.RunUntil(80)
	if c.Read() != 530 {
		t.Fatalf("read = %v, want 530", c.Read())
	}
}

func TestClockPauseUnpause(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunUntil(10)
	c.Pause()
	c.Pause() // idempotent
	s.RunUntil(100)
	if c.Read() != 10 {
		t.Fatalf("paused read = %v", c.Read())
	}
	c.Unpause()
	c.Unpause() // idempotent
	s.RunUntil(130)
	if c.Read() != 40 {
		t.Fatalf("resumed read = %v", c.Read())
	}
}

func TestClockBump(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunUntil(10)
	if !c.BumpTo(50) {
		t.Fatal("bump failed")
	}
	if c.Read() != 50 {
		t.Fatalf("read = %v", c.Read())
	}
	if c.BumpTo(30) {
		t.Fatal("backward bump accepted")
	}
	if c.BumpTo(50) {
		t.Fatal("equal bump accepted")
	}
	s.RunUntil(20)
	if c.Read() != 60 {
		t.Fatalf("read after bump+advance = %v", c.Read())
	}
}

func TestClockBumpWhilePaused(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	c.Pause()
	c.BumpTo(40)
	s.RunUntil(100)
	if c.Read() != 40 || !c.Paused() {
		t.Fatalf("read = %v paused = %v", c.Read(), c.Paused())
	}
	c.Unpause()
	s.RunUntil(110)
	if c.Read() != 50 {
		t.Fatalf("read = %v", c.Read())
	}
}

func TestAlarmFiresOnCrossing(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	var firedAt types.Time = -1
	c.SetAlarm(30, func() { firedAt = c.Read() })
	s.RunUntil(100)
	if firedAt != 30 {
		t.Fatalf("fired at %v", firedAt)
	}
}

func TestAlarmSuspendedByPause(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	firedLC := types.Time(-1)
	firedAt := types.Time(-1)
	c.SetAlarm(30, func() { firedLC, firedAt = c.Read(), s.Now() })
	s.RunUntil(10)
	c.Pause()
	s.RunUntil(200)
	if firedAt != -1 {
		t.Fatal("alarm fired while paused")
	}
	c.Unpause()
	s.RunUntil(250)
	// lc was 10 during the pause (t=10..200), so lc reaches 30 at real
	// time 220.
	if firedLC != 30 || firedAt != 220 {
		t.Fatalf("fired lc=%v at=%v, want lc=30 at=220", firedLC, firedAt)
	}
}

func TestAlarmClearedByBumpPast(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	fired := false
	c.SetAlarm(30, func() { fired = true })
	c.BumpTo(50) // jumps over the target: alarm must NOT fire
	s.RunUntil(200)
	if fired {
		t.Fatal("alarm fired despite bump over target")
	}
}

func TestAlarmPastTargetFiresAsync(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunUntil(50)
	fired := false
	c.SetAlarm(20, func() { fired = true })
	if fired {
		t.Fatal("fired synchronously")
	}
	s.RunUntil(51)
	if !fired {
		t.Fatal("past-target alarm never fired")
	}
}

func TestAlarmReplacedBySet(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	var got []int
	c.SetAlarm(30, func() { got = append(got, 1) })
	c.SetAlarm(40, func() { got = append(got, 2) })
	s.RunUntil(100)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got = %v", got)
	}
}

func TestClearAlarm(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	fired := false
	c.SetAlarm(30, func() { fired = true })
	c.ClearAlarm()
	s.RunUntil(100)
	if fired {
		t.Fatal("cleared alarm fired")
	}
}

// TestClockMonotoneRandom is a randomized property test: under arbitrary
// interleavings of advance/pause/unpause/bump, Read never decreases
// (Lemma 5.2's clock clause).
func TestClockMonotoneRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := sim.New(seed)
		c := New(s, 0)
		rng := rand.New(rand.NewSource(seed))
		last := c.Read()
		check := func() {
			if v := c.Read(); v < last {
				t.Fatalf("seed %d: clock regressed %v -> %v", seed, last, v)
			} else {
				last = v
			}
		}
		for i := 0; i < 500; i++ {
			switch rng.Intn(5) {
			case 0:
				s.RunFor(time.Duration(rng.Intn(100)))
			case 1:
				c.Pause()
			case 2:
				c.Unpause()
			case 3:
				c.BumpTo(c.Read() + types.Time(rng.Intn(200)))
			case 4:
				c.BumpTo(c.Read() - types.Time(rng.Intn(200))) // must no-op
			}
			check()
		}
	}
}
