// Command lumiere-cluster runs Lumiere over real TCP.
//
// Single-process demo cluster (n nodes in one process, real sockets):
//
//	lumiere-cluster -local -f 1 -smr -rate 50 -duration 20s
//
// Wall-clock experiment table (one loopback cluster per f, real
// sockets, words counted in the simulator's per-kind model):
//
//	lumiere-cluster -local -table -table-fs 1,2,5,10,17 -duration 3s
//
// Socket-level chaos against the local cluster (the §2 clamp honored
// relative to -gst):
//
//	lumiere-cluster -local -f 1 -loss 0.4 -dup 0.2 -gst 2s -duration 20s
//
// Multi-process deployment — run one per node with a shared peer list:
//
//	lumiere-cluster -id 0 -peers "h0:7000,h1:7000,h2:7000,h3:7000" -f 1 -smr
//	lumiere-cluster -id 1 -peers ... (etc.)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"lumiere"
	"lumiere/internal/types"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this node's index into -peers")
		peers    = flag.String("peers", "", "comma-separated node addresses, indexed by id")
		f        = flag.Int("f", 1, "fault tolerance f (n = 3f+1)")
		delta    = flag.Duration("delta", 200*time.Millisecond, "Δ")
		seed     = flag.Int64("seed", 42, "shared PKI seed (must match across nodes)")
		smr      = flag.Bool("smr", false, "run chained HotStuff SMR with a KV store")
		rate     = flag.Int("rate", 0, "client commands per second submitted by this node")
		duration = flag.Duration("duration", 30*time.Second, "how long to run (0 = forever)")
		local    = flag.Bool("local", false, "run the whole cluster in-process on localhost")
		table    = flag.Bool("table", false, "with -local: run the wall-clock experiment table and exit")
		tableFs  = flag.String("table-fs", "1,2,5,10,17", "comma-separated f values for -table (n = 3f+1)")
		csv      = flag.Bool("csv", false, "with -table: emit CSV instead of aligned text")
		loss     = flag.Float64("loss", 0, "with -local: drop each outbound message with this probability at the socket layer")
		dup      = flag.Float64("dup", 0, "with -local: duplicate each outbound message with this probability")
		reorder  = flag.Duration("reorder", 0, "with -local: uniform extra release jitter in [0, reorder] per message")
		gst      = flag.Duration("gst", 0, "with -local chaos: global stabilization time the §2 clamp honors")
	)
	flag.Parse()

	if *table {
		runTable(*tableFs, *delta, *duration, *seed, *csv)
		return
	}
	base := types.NewConfig(*f, *delta)
	if *local {
		runLocal(base, *seed, *smr, *rate, *duration, chaos{loss: *loss, dup: *dup, reorder: *reorder, gst: *gst})
		return
	}
	addrs := strings.Split(*peers, ",")
	if len(addrs) != base.N {
		fmt.Fprintf(os.Stderr, "need %d peer addresses for f=%d, got %d\n", base.N, *f, len(addrs))
		os.Exit(1)
	}
	node, err := lumiere.StartClusterNode(lumiere.ClusterConfig{
		ID:    lumiere.NodeID(*id),
		Addrs: addrs,
		Base:  base,
		Seed:  *seed,
		SMR:   *smr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer node.Close()
	fmt.Printf("node %d listening on %s (n=%d f=%d smr=%v)\n", *id, node.Addr(), base.N, base.F, *smr)
	runWorkloadAndReport(base, []*lumiere.ClusterNode{node}, *smr, *rate, *duration)
}

// runTable runs the wall-clock experiment table: one loopback cluster
// per f, Δ and per-cell runtime from the flags (the -duration and
// -delta defaults are trimmed to 3s per cell and 50ms — loopback scale
// — when left untouched).
func runTable(fsSpec string, delta, perRun time.Duration, seed int64, csv bool) {
	var fs []int
	for _, s := range strings.Split(fsSpec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad -table-fs entry %q\n", s)
			os.Exit(1)
		}
		fs = append(fs, v)
	}
	if perRun <= 0 || perRun == 30*time.Second {
		perRun = 3 * time.Second
	}
	if delta == 200*time.Millisecond {
		delta = 50 * time.Millisecond
	}
	tbl, err := lumiere.ClusterTable(fs, delta, perRun, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(tbl.CSV())
		return
	}
	fmt.Print(tbl.Render())
}

// chaos bundles the -local socket-chaos flags.
type chaos struct {
	loss, dup float64
	reorder   time.Duration
	gst       time.Duration
}

func (c chaos) enabled() bool { return c.loss > 0 || c.dup > 0 || c.reorder > 0 }

// runLocal boots the full cluster in one process over real sockets.
func runLocal(base types.Config, seed int64, smr bool, rate int, duration time.Duration, ch chaos) {
	addrs := make([]string, base.N)
	lns := make([]net.Listener, base.N)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	start := time.Now()
	nodes := make([]*lumiere.ClusterNode, base.N)
	for i := 0; i < base.N; i++ {
		cfg := lumiere.ClusterConfig{
			ID:    lumiere.NodeID(i),
			Addrs: addrs,
			Base:  base,
			Seed:  seed,
			SMR:   smr,
			Start: start,
		}
		if ch.enabled() {
			cfg.Link = lumiere.ClusterExperiment{
				F: base.F, N: base.N, Delta: base.Delta,
				Loss: ch.loss, Duplication: ch.dup, ReorderJitter: ch.reorder,
				GST: ch.gst,
			}.LinkPolicy()
			cfg.GST = ch.gst
			cfg.ChaosSeed = seed + int64(i) + 1
		}
		n, err := lumiere.StartClusterNode(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		nodes[i] = n
		defer n.Close()
	}
	fmt.Printf("local cluster up: n=%d f=%d smr=%v chaos=%v\n", base.N, base.F, smr, ch.enabled())
	runWorkloadAndReport(base, nodes, smr, rate, duration)
}

func runWorkloadAndReport(base types.Config, nodes []*lumiere.ClusterNode, smr bool, rate int, duration time.Duration) {
	stop := make(chan struct{})
	if smr && rate > 0 {
		go func() {
			tick := time.NewTicker(time.Second / time.Duration(rate))
			defer tick.Stop()
			i := 0
			for {
				select {
				case <-tick.C:
					target := nodes[i%len(nodes)]
					cmd := fmt.Sprintf("SET key%d value%d", i%100, i)
					if err := target.Submit([]byte(cmd)); err != nil {
						fmt.Fprintln(os.Stderr, "submit:", err)
					}
					i++
				case <-stop:
					return
				}
			}
		}()
	}
	report := time.NewTicker(2 * time.Second)
	defer report.Stop()
	var end <-chan time.Time
	if duration > 0 {
		end = time.After(duration)
	}
	for {
		select {
		case <-report.C:
			for i, n := range nodes {
				v, e, committed := n.Status()
				st := n.Stats()
				var sent, drops int64
				for _, p := range st.Peers {
					sent += p.Sent
					drops += p.QueueDrops + p.WriteDrops + p.CondDrops
				}
				line := fmt.Sprintf("node %d: view=%v epoch=%v words=%d sent=%d drops=%d decode-errs=%d",
					i, v, e, n.Metrics().WordsTotal(), sent, drops, st.DecodeErrors)
				if smr {
					line += fmt.Sprintf(" committed=%d kv=%d", committed, n.KV().Len())
				}
				fmt.Println(line)
			}
			fmt.Println("--")
		case <-end:
			close(stop)
			fmt.Println("done")
			return
		}
	}
}
