// Command lumiere-cluster runs Lumiere over real TCP.
//
// Single-process demo cluster (n nodes in one process, real sockets):
//
//	lumiere-cluster -local -f 1 -smr -rate 50 -duration 20s
//
// Multi-process deployment — run one per node with a shared peer list:
//
//	lumiere-cluster -id 0 -peers "h0:7000,h1:7000,h2:7000,h3:7000" -f 1 -smr
//	lumiere-cluster -id 1 -peers ... (etc.)
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"lumiere"
	"lumiere/internal/types"
)

func main() {
	var (
		id       = flag.Int("id", 0, "this node's index into -peers")
		peers    = flag.String("peers", "", "comma-separated node addresses, indexed by id")
		f        = flag.Int("f", 1, "fault tolerance f (n = 3f+1)")
		delta    = flag.Duration("delta", 200*time.Millisecond, "Δ")
		seed     = flag.Int64("seed", 42, "shared PKI seed (must match across nodes)")
		smr      = flag.Bool("smr", false, "run chained HotStuff SMR with a KV store")
		rate     = flag.Int("rate", 0, "client commands per second submitted by this node")
		duration = flag.Duration("duration", 30*time.Second, "how long to run (0 = forever)")
		local    = flag.Bool("local", false, "run the whole cluster in-process on localhost")
	)
	flag.Parse()

	base := types.NewConfig(*f, *delta)
	if *local {
		runLocal(base, *seed, *smr, *rate, *duration)
		return
	}
	addrs := strings.Split(*peers, ",")
	if len(addrs) != base.N {
		fmt.Fprintf(os.Stderr, "need %d peer addresses for f=%d, got %d\n", base.N, *f, len(addrs))
		os.Exit(1)
	}
	node, err := lumiere.StartClusterNode(lumiere.ClusterConfig{
		ID:    lumiere.NodeID(*id),
		Addrs: addrs,
		Base:  base,
		Seed:  *seed,
		SMR:   *smr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer node.Close()
	fmt.Printf("node %d listening on %s (n=%d f=%d smr=%v)\n", *id, node.Addr(), base.N, base.F, *smr)
	runWorkloadAndReport(base, []*lumiere.ClusterNode{node}, *smr, *rate, *duration)
}

// runLocal boots the full cluster in one process over real sockets.
func runLocal(base types.Config, seed int64, smr bool, rate int, duration time.Duration) {
	addrs := make([]string, base.N)
	lns := make([]net.Listener, base.N)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	nodes := make([]*lumiere.ClusterNode, base.N)
	for i := 0; i < base.N; i++ {
		n, err := lumiere.StartClusterNode(lumiere.ClusterConfig{
			ID:    lumiere.NodeID(i),
			Addrs: addrs,
			Base:  base,
			Seed:  seed,
			SMR:   smr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		nodes[i] = n
		defer n.Close()
	}
	fmt.Printf("local cluster up: n=%d f=%d smr=%v\n", base.N, base.F, smr)
	runWorkloadAndReport(base, nodes, smr, rate, duration)
}

func runWorkloadAndReport(base types.Config, nodes []*lumiere.ClusterNode, smr bool, rate int, duration time.Duration) {
	stop := make(chan struct{})
	if smr && rate > 0 {
		go func() {
			tick := time.NewTicker(time.Second / time.Duration(rate))
			defer tick.Stop()
			i := 0
			for {
				select {
				case <-tick.C:
					target := nodes[i%len(nodes)]
					cmd := fmt.Sprintf("SET key%d value%d", i%100, i)
					if err := target.Submit([]byte(cmd)); err != nil {
						fmt.Fprintln(os.Stderr, "submit:", err)
					}
					i++
				case <-stop:
					return
				}
			}
		}()
	}
	report := time.NewTicker(2 * time.Second)
	defer report.Stop()
	var end <-chan time.Time
	if duration > 0 {
		end = time.After(duration)
	}
	for {
		select {
		case <-report.C:
			for i, n := range nodes {
				v, e, committed := n.Status()
				if smr {
					fmt.Printf("node %d: view=%v epoch=%v committed=%d kv=%d\n", i, v, e, committed, n.KV().Len())
				} else {
					fmt.Printf("node %d: view=%v epoch=%v\n", i, v, e)
				}
			}
			fmt.Println("--")
		case <-end:
			close(stop)
			fmt.Println("done")
			return
		}
	}
}
