// Command lumiere-bench regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded results). Text tables go to stdout; pass -csv DIR to also
// write machine-readable CSVs. The sweeps fan out across a worker pool
// (-workers, default all CPUs); results are byte-identical at any worker
// count because every cell's seed derives from (-seed, cell index).
//
//	lumiere-bench             # quick sweep (minutes)
//	lumiere-bench -full       # full sweep including n=61 and the massive-n table (-maxn caps it)
//	lumiere-bench -workers 1  # serial reference run
//	lumiere-bench -chaos      # chaos suite only (fault conditions + conformance)
//	lumiere-bench -attack     # attack suite only (adaptive strategies + word complexity)
//	lumiere-bench -smr        # SMR suite only (throughput/commit-latency + under-attack tables)
//	lumiere-bench -wan        # WAN suite only (topology degradation + clock-drift tolerance tables)
//	lumiere-bench -redteam    # adversarial search only (searched worst-case frontier)
//	lumiere-bench -redteam -frontier FRONTIER.json   # regenerate the committed frontier artifact
//	lumiere-bench -n 4096     # massive-n scaling table only, at one system size
//	lumiere-bench -largen -maxn 4096   # massive-n scaling table over the whole axis
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"lumiere"
)

func main() {
	// All failure paths return through realMain so the profile-writing
	// defers (-cpuprofile/-memprofile) always flush before the process
	// exits.
	os.Exit(realMain())
}

func realMain() int {
	var (
		full       = flag.Bool("full", false, "run the full sweep (larger n; slower)")
		seed       = flag.Int64("seed", 42, "randomness seed")
		csvDir     = flag.String("csv", "", "directory for CSV output (optional)")
		workers    = flag.Int("workers", runtime.NumCPU(), "sweep worker-pool size")
		progress   = flag.Bool("progress", false, "print per-cell sweep progress to stderr")
		sendlog    = flag.Bool("sendlog", false, "retain full per-send record logs (debugging; large memory)")
		chaos      = flag.Bool("chaos", false, "run only the chaos suite: fault-condition table + chaos conformance sweep")
		attack     = flag.Bool("attack", false, "run only the attack suite: adaptive-strategy table + word-complexity tables")
		smr        = flag.Bool("smr", false, "run only the SMR suite: throughput/commit-latency table + throughput under attack")
		wan        = flag.Bool("wan", false, "run only the WAN suite: topology graceful-degradation table + clock-drift tolerance table")
		redteam    = flag.Bool("redteam", false, "run only the adversarial search suite: searched worst-case frontier per protocol × objective")
		frontier   = flag.String("frontier", "", "with -redteam: write the searched frontier artifact (FRONTIER.json) to this path")
		largen     = flag.Bool("largen", false, "run only the massive-n scaling table over the default axis (capped by -maxn)")
		largeN     = flag.Int("n", 0, "run the massive-n scaling table at this single system size (needs n ≥ 4; 0 = default axis)")
		maxN       = flag.Int("maxn", 1024, "cap the massive-n scaling axis at this size (4096 reproduces the recorded table)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken at exit to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *cpuprofile, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// No early exit in here: it would skip the CPU-profile defers
		// registered above and leave that profile unflushed.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create %s: %v\n", *memprofile, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "write mem profile: %v\n", err)
			}
		}()
	}

	fs := []int{1, 3, 5, 10}
	if *full {
		fs = append(fs, 20)
	}
	evF := 5
	fas := []int{0, 1, 2, 3, 5}

	// The massive-n axis: a single explicit -n, or the default sizes
	// capped by -maxn. Sizes below 4 cannot tolerate a single fault
	// (n ≥ 3f+1 with f = ⌊(n−1)/3⌋ ≥ 1) — reject them up front rather
	// than panicking inside the harness.
	largeNs := []int{}
	if *largeN != 0 {
		if *largeN < 4 {
			fmt.Fprintf(os.Stderr, "-n %d: need n ≥ 4 (n ≥ 3f+1 with f ≥ 1; f = (n-1)/3)\n", *largeN)
			return 1
		}
		largeNs = []int{*largeN}
	} else {
		for _, n := range lumiere.LargeNSizes {
			if n <= *maxN {
				largeNs = append(largeNs, n)
			}
		}
	}

	opts := lumiere.SweepOptions{Workers: *workers, KeepSendLog: *sendlog}
	if *progress {
		opts.Progress = func(done, total int, cell *lumiere.SweepCell) {
			fmt.Fprintf(os.Stderr, "  [%3d/%3d] %-28s %8v\n", done, total, cell.Scenario.Name, cell.Elapsed.Round(time.Millisecond))
		}
	}

	emit := func(name string, t *lumiere.Table) {
		fmt.Println(t.Render())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
			}
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mkdir %s: %v\n", *csvDir, err)
			return 1
		}
	}

	start := time.Now()
	if *wan {
		fmt.Printf("WAN suite (seed %d, %d workers)\n\n", *seed, *workers)
		wanF := 1
		if *full {
			wanF = 2
		}
		emit("wan_topology", lumiere.TopologyTableOpts(wanF, *seed, opts))
		drift := lumiere.RunDriftSweep(wanF, lumiere.DriftPPMAxis, *seed, opts)
		emit("wan_drift", drift.Table())
		if !drift.InModelClean() {
			fmt.Fprintln(os.Stderr, "drift sweep NOT clean: an in-model drift magnitude violated Lemma 5.1-5.3")
			return 1
		}
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
		return 0
	}
	if *redteam {
		fmt.Printf("red-team suite (seed %d, %d workers)\n\n", *seed, *workers)
		cfg := lumiere.RedTeamConfig{F: 2, Seed: *seed, Workers: *workers}
		if *progress {
			cfg.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
		}
		fr := lumiere.RedTeam(cfg)
		emit("redteam_frontier", fr.Table())
		if *frontier != "" {
			if err := fr.WriteFile(*frontier); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *frontier, err)
				return 1
			}
			fmt.Printf("wrote %s\n", *frontier)
		}
		if !fr.AllDecided() {
			fmt.Fprintln(os.Stderr, "red-team search has stalled frontier cells: a model-legal scenario defeated a protocol")
			return 1
		}
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
		return 0
	}
	if (*largeN != 0 || *largen) && !*chaos && !*attack && !*smr {
		fmt.Printf("massive-n suite (seed %d, %d workers)\n\n", *seed, *workers)
		emit("largen_words", lumiere.LargeNWordsTable(largeNs, *seed, opts))
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
		return 0
	}
	if *smr {
		fmt.Printf("SMR suite (seed %d, %d workers)\n\n", *seed, *workers)
		smrF := 1
		if *full {
			smrF = 3
		}
		emit("smr_throughput", lumiere.ThroughputTableOpts(smrF, *seed, opts))
		emit("smr_throughput_attack", lumiere.ThroughputUnderAttackTableOpts(smrF, *seed, opts))
		fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
		return 0
	}
	if *chaos {
		fmt.Printf("chaos suite (seed %d, %d workers)\n\n", *seed, *workers)
		chaosF := 3
		cells := 24
		if *full {
			chaosF = 5
			cells = 48
		}
		emit("chaos_table", lumiere.ChaosTableOpts(chaosF, *seed, opts))
		rep := lumiere.RunChaosSweep(cells, *seed, opts)
		emit("chaos_conformance", rep.Table())
		if !rep.Conformant() {
			fmt.Fprintf(os.Stderr, "chaos sweep NOT conformant: %d problems\n", rep.Problems)
			return 1
		}
		fmt.Printf("all %d chaos cells conformant; done in %v\n", len(rep.Cells), time.Since(start).Round(time.Second))
		return 0
	}
	if *attack {
		fmt.Printf("attack suite (seed %d, %d workers)\n\n", *seed, *workers)
		attackF := 1
		fas := []int{0, 1, 2, 3}
		if *full {
			attackF = 3
		}
		rep := lumiere.RunAttackSweep(attackF, *seed, opts)
		emit("attack_table", rep.Table())
		if !rep.AllDecided() {
			fmt.Fprintln(os.Stderr, "attack sweep has stalled cells: a model-legal attack defeated a protocol")
			return 1
		}
		emit("eventual_words", lumiere.EventualWordsTable(3, fas, *seed, opts))
		emit("word_scaling", lumiere.WordScalingTable(fs, 1, *seed, opts))
		if *full && len(largeNs) > 0 {
			emit("largen_words", lumiere.LargeNWordsTable(largeNs, *seed, opts))
		}
		fmt.Printf("all %d attack cells decided after GST; done in %v\n", len(rep.Cells), time.Since(start).Round(time.Second))
		return 0
	}
	fmt.Printf("regenerating the paper's evaluation (seed %d, %d workers)\n\n", *seed, *workers)

	comm, lat := lumiere.Table1WorstCaseOpts(fs, *seed, opts)
	emit("table1_worst_comm", comm)
	emit("table1_worst_latency", lat)

	evComm, evLat := lumiere.Table1EventualOpts(evF, fas, *seed, opts)
	emit("table1_eventual_comm", evComm)
	emit("table1_eventual_latency", evLat)

	scaling := lumiere.EventualScalingDataOpts(fs, 1, *seed, opts)
	emit("eventual_scaling", lumiere.EventualScalingTableF(scaling, fs, 1))
	fmt.Println(lumiere.EventualScalingPlot(scaling))
	emit("figure1_stalls", lumiere.Figure1TableOpts(fs, *seed, opts))
	emit("responsiveness", lumiere.ResponsivenessTableOpts(3, *seed, opts))
	emit("heavy_syncs", lumiere.HeavySyncTableOpts(3, *seed, opts))

	if *full && len(largeNs) > 0 {
		emit("largen_words", lumiere.LargeNWordsTable(largeNs, *seed, opts))
	}

	g := lumiere.GapShrinkage(3, *seed)
	fmt.Printf("== §3.5 honest-gap shrinkage under the desync adversary (n=10) ==\n")
	fmt.Printf("Γ=%v  pre-GST max: hg_{f+1}=%v (never exceeds Γ — Lemma 5.9), hg_{2f+1}=%v\n",
		g.Gamma, g.MaxGapPre, g.MaxWideGapPre)
	fmt.Printf("time to hg_{f+1} ≤ Γ after GST: %v (converged=%v)\n", g.TimeToBelow, g.Converged)
	fmt.Printf("steady-state max: hg_{f+1}=%v, hg_{2f+1}=%v\n\n", g.MaxGapSteady, g.MaxWideGapSteady)

	adv := lumiere.AdversarialSuccess(3, *seed)
	fmt.Printf("== §3.5 adversarial success criterion (n=10, f late-proposing Byzantine leaders) ==\n")
	fmt.Printf("decisions=%d  mean gap=%v  max gap=%v  heavy syncs=%d\n\n",
		adv.Decisions, adv.MeanGap.Round(time.Millisecond), adv.MaxGap.Round(time.Millisecond), adv.HeavySync)

	w, wo := lumiere.DeltaWaitAblation(3, *seed)
	fmt.Printf("== §3.5 Δ-wait ablation (n=10, fast QC bursts) ==\n")
	fmt.Printf("heavy syncs after warmup: with Δ-wait=%d, without=%d\n\n", w, wo)

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
	return 0
}
