// Command lumiere-sim runs one simulated execution of a view
// synchronization protocol under the partial synchrony model and prints
// its metrics.
//
// Examples:
//
//	lumiere-sim -protocol lumiere -f 3 -duration 60s
//	lumiere-sim -protocol lp22 -f 3 -nonproposing 1 -trace
//	lumiere-sim -protocol lumiere -f 2 -smr -rate 200
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lumiere"
	"lumiere/internal/statemachine"
	"lumiere/internal/types"
	"lumiere/internal/viz"
)

func main() {
	var (
		protocol    = flag.String("protocol", "lumiere", "protocol: lumiere | basic-lumiere | lp22 | fever | cogsworth | nk20")
		f           = flag.Int("f", 3, "fault tolerance f (n = 3f+1)")
		delta       = flag.Duration("delta", 100*time.Millisecond, "Δ, the known post-GST delay bound")
		deltaActual = flag.Duration("delta-actual", 0, "δ, the actual message delay (default Δ/10)")
		gst         = flag.Duration("gst", 0, "global stabilization time")
		duration    = flag.Duration("duration", 60*time.Second, "virtual run length")
		seed        = flag.Int64("seed", 1, "randomness seed (runs are reproducible)")
		crash       = flag.Int("crash", 0, "crash this many processors from the start")
		nonProp     = flag.Int("nonproposing", 0, "this many Byzantine processors never propose")
		withTrace   = flag.Bool("trace", false, "print the event timeline")
		lanes       = flag.Bool("lanes", false, "render per-processor swimlanes (Figure 1 style)")
		gaps        = flag.Bool("gaps", false, "sample honest clock gaps")
		smr         = flag.Bool("smr", false, "run chained HotStuff SMR with a KV store")
		rate        = flag.Int("rate", 100, "client commands per second (with -smr)")
		checks      = flag.Bool("checks", true, "verify Lemma 5.1-5.3 invariants (lumiere)")
	)
	flag.Parse()

	var corruptions []lumiere.Corruption
	next := 0
	for i := 0; i < *crash; i++ {
		corruptions = append(corruptions, lumiere.Corruption{Node: lumiere.NodeID(next), Behavior: lumiere.BehaviorCrash})
		next++
	}
	for i := 0; i < *nonProp; i++ {
		corruptions = append(corruptions, lumiere.Corruption{Node: lumiere.NodeID(next), Behavior: lumiere.BehaviorNonProposing})
		next++
	}

	s := lumiere.Scenario{
		Protocol:        lumiere.Protocol(*protocol),
		F:               *f,
		Delta:           *delta,
		DeltaActual:     *deltaActual,
		GST:             *gst,
		Duration:        *duration,
		Seed:            *seed,
		Corruptions:     corruptions,
		CheckInvariants: *checks,
		SampleGaps:      *gaps,
		SMR:             *smr,
		WorkloadRate:    *rate,
	}
	if !*smr {
		s.WorkloadRate = 0
	}
	if *withTrace || *lanes {
		s.TraceLimit = 500_000
	}

	res := lumiere.Run(s)

	fmt.Printf("protocol:        %s (n=%d, f=%d, fa=%d)\n", *protocol, res.Cfg.N, res.Cfg.F, len(corruptions))
	fmt.Printf("Δ=%v  δ=%v  Γ=%v  GST=%v  duration=%v  seed=%d\n",
		res.Cfg.Delta, res.Scenario.DeltaActual, res.Gamma, *gst, *duration, *seed)
	fmt.Printf("decisions:       %d\n", res.DecisionCount())
	fmt.Printf("honest messages: %d (byzantine: %d)\n", res.Collector.HonestSends(), res.Collector.ByzantineSends())
	stats := res.Collector.Stats(res.GST, 5)
	if stats.Count > 0 {
		fmt.Printf("per-decision:    mean %.1f msgs, max %.0f msgs; mean gap %v, max gap %v\n",
			stats.MeanMsgs, stats.MaxMsgs, stats.MeanGap.Round(time.Microsecond), stats.MaxGap.Round(time.Microsecond))
		fmt.Printf("throughput:      %.1f decisions/s (virtual)\n", stats.DecisionsPerSecSimed)
	}
	heavy := res.Collector.HeavySyncViews(res.GST.Add(res.Scenario.Duration / 4))
	fmt.Printf("heavy syncs after warmup: %d\n", len(heavy))
	fmt.Printf("final views:     %v\n", res.FinalViews)
	if *gaps && len(res.Gaps.Samples()) > 0 {
		fmt.Printf("max hg_{f+1} after GST: %v (Γ = %v)\n", res.Gaps.MaxGapF1After(res.GST), res.Gamma)
	}
	if *smr {
		committed := -1
		for i, e := range res.Engines {
			if e == nil {
				continue
			}
			type committer interface{ CommittedCount() int }
			if c, ok := e.(committer); ok {
				if committed < 0 || c.CommittedCount() < committed {
					committed = c.CommittedCount()
				}
				_ = i
			}
		}
		fmt.Printf("committed blocks (min across replicas): %d; injected commands: %d\n", committed, res.Injected)
		for _, sm := range res.SMs {
			if kv, ok := sm.(*statemachine.KV); ok && kv != nil {
				fmt.Printf("kv keys on replica 0: %d\n", kv.Len())
				break
			}
		}
	}
	if len(res.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATIONS (%d):\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "  ", v)
		}
		os.Exit(1)
	}
	if *lanes && res.Tracer != nil {
		fmt.Println("---- swimlanes (middle 20Γ of the run) ----")
		mid := types.Time(0).Add(*duration / 2)
		fmt.Print(viz.Swimlane(res.Tracer.Events(), res.Cfg.N, mid, mid.Add(20*res.Gamma), 110))
	}
	if *withTrace && res.Tracer != nil {
		fmt.Println("---- timeline ----")
		fmt.Print(res.Tracer.Render())
	}
}
