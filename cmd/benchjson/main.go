// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive a perf
// trajectory (ns/op, allocs/op, B/op and custom b.ReportMetric units) per
// benchmark across PRs:
//
//	go test -run '^$' -bench 'SweepWorkers|AllocsPerSend' -benchtime 1x -benchmem . \
//	  | go run ./cmd/benchjson > BENCH_sweep.json
//
// With -baseline old.json the emitted document also carries per-benchmark
// deltas against the baseline report (vs_baseline: percent change of
// ns/op, allocs/op and B/op, matched by benchmark name), and the command
// exits nonzero when any benchmark regresses its allocs_per_op by more
// than -max-alloc-regress percent (default 20). Allocation counts are
// deterministic, so CI gates on them rather than on noisy wall-clock:
//
//	go run ./cmd/benchjson -baseline BENCH_sweep.json < bench.out > BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name including the sub-benchmark path but
	// with the machine-dependent -GOMAXPROCS suffix stripped (e.g.
	// "BenchmarkSweepWorkers/workers=04"), so entries from different
	// machines match by name.
	Name string `json:"name"`
	// Gomaxprocs is the stripped -N suffix (0 if the line had none).
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	// Params holds the key=value sub-benchmark path segments (e.g.
	// "BenchmarkChaosTable/cond=partition-heal/proto=lumiere" →
	// {"cond": "partition-heal", "proto": "lumiere"}), so structured
	// sweeps like the chaos table stay machine-readable rows without
	// name parsing downstream. Segments without "=" are left in Name
	// only.
	Params map[string]string `json:"params,omitempty"`
	// Iterations is the measured iteration count (b.N).
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp/BytesPerOp are present with -benchmem or
	// b.ReportAllocs (nil otherwise).
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "sweep_ms").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// VsBaseline holds percent deltas against a -baseline report's
	// benchmark of the same Name (absent without -baseline or when the
	// baseline lacks the benchmark).
	VsBaseline *Delta `json:"vs_baseline,omitempty"`
}

// Delta is the percent change of one benchmark against the baseline:
// 100·(new−old)/old per measure, present where both reports carry the
// measure.
type Delta struct {
	NsPerOpPct     *float64 `json:"ns_per_op_pct,omitempty"`
	AllocsPerOpPct *float64 `json:"allocs_per_op_pct,omitempty"`
	BytesPerOpPct  *float64 `json:"bytes_per_op_pct,omitempty"`
}

// Report is the emitted document.
type Report struct {
	// Context echoes the non-benchmark header lines go test prints
	// (goos, goarch, pkg, cpu).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds one entry per benchmark line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes go test -bench output and collects benchmark lines and
// header context. Unrecognized lines are ignored.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			if k, v, found := strings.Cut(line, ":"); found {
				rep.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Context) == 0 {
		rep.Context = nil
	}
	return rep, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8  10  123 ns/op  4 B/op  2 allocs/op  1.5 custom_unit
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name, procs := splitProcsSuffix(fields[0])
	b := Benchmark{Name: name, Gomaxprocs: procs, Iterations: iters, Params: parseParams(name)}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		case "B/op":
			v := val
			b.BytesPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

// parseParams extracts key=value sub-benchmark path segments from a
// benchmark name. Returns nil when no segment parses.
func parseParams(name string) map[string]string {
	segs := strings.Split(name, "/")
	var params map[string]string
	for _, seg := range segs[1:] {
		k, v, found := strings.Cut(seg, "=")
		if !found || k == "" {
			continue
		}
		if params == nil {
			params = map[string]string{}
		}
		params[k] = v
	}
	return params
}

// splitProcsSuffix strips go test's trailing -GOMAXPROCS from a
// benchmark name ("BenchmarkX-8" → "BenchmarkX", 8). Names without a
// numeric suffix pass through with procs 0.
func splitProcsSuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

// pct returns 100·(new−old)/old, or nil when either side is missing or
// old is zero (no meaningful ratio).
func pct(newV, oldV *float64) *float64 {
	if newV == nil || oldV == nil || *oldV == 0 {
		return nil
	}
	p := 100 * (*newV - *oldV) / *oldV
	return &p
}

// diffAgainst annotates every benchmark of rep that the baseline also
// carries with its percent deltas. It returns the benchmarks whose
// allocs_per_op regressed by more than maxAllocRegress percent, and the
// baseline benchmarks absent from the new run — also a gate failure:
// a renamed benchmark or a drifted -bench regex would otherwise turn
// the regression gate into a silent no-op (intentional removals are
// accompanied by a regenerated baseline in the same change).
func diffAgainst(rep, baseline *Report, maxAllocRegress float64) (regressed, missing []string) {
	base := make(map[string]*Benchmark, len(baseline.Benchmarks))
	for i := range baseline.Benchmarks {
		base[baseline.Benchmarks[i].Name] = &baseline.Benchmarks[i]
	}
	matched := make(map[string]bool, len(rep.Benchmarks))
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		old, ok := base[b.Name]
		if !ok {
			continue
		}
		matched[b.Name] = true
		ns := b.NsPerOp
		oldNs := old.NsPerOp
		d := &Delta{
			NsPerOpPct:     pct(&ns, &oldNs),
			AllocsPerOpPct: pct(b.AllocsPerOp, old.AllocsPerOp),
			BytesPerOpPct:  pct(b.BytesPerOp, old.BytesPerOp),
		}
		b.VsBaseline = d
		if d.AllocsPerOpPct != nil && *d.AllocsPerOpPct > maxAllocRegress {
			regressed = append(regressed, fmt.Sprintf("%s: allocs/op %+.1f%% (%.0f -> %.0f)",
				b.Name, *d.AllocsPerOpPct, *old.AllocsPerOp, *b.AllocsPerOp))
		}
	}
	for i := range baseline.Benchmarks {
		if name := baseline.Benchmarks[i].Name; !matched[name] {
			missing = append(missing, name)
		}
	}
	return regressed, missing
}

func main() {
	var (
		baselinePath    = flag.String("baseline", "", "baseline report to diff against (a prior benchjson output)")
		maxAllocRegress = flag.Float64("max-alloc-regress", 20, "with -baseline: max tolerated allocs_per_op regression in percent before exiting nonzero")
	)
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var regressed, missing []string
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var baseline Report
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		regressed, missing = diffAgainst(rep, &baseline, *maxAllocRegress)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fail := false
	if len(regressed) > 0 {
		fail = true
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed allocs_per_op by more than %.0f%% vs %s:\n",
			len(regressed), *maxAllocRegress, *baselinePath)
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
	}
	if len(missing) > 0 {
		fail = true
		fmt.Fprintf(os.Stderr, "benchjson: %d baseline benchmark(s) missing from this run (renamed, or the -bench pattern drifted?); regenerate %s if intentional:\n",
			len(missing), *baselinePath)
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
	}
	if fail {
		os.Exit(2)
	}
}
