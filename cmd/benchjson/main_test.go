package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lumiere
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepWorkers/workers=01-8         	       1	1879162656 ns/op	      1879 sweep_ms	 5438104 B/op	   12345 allocs/op
BenchmarkAllocsPerSend-8                   	     200	      2988 ns/op	        30.00 sends/op	      30 B/op	       0 allocs/op
PASS
ok  	lumiere	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSweepWorkers/workers=01" || b.Gomaxprocs != 8 || b.Iterations != 1 {
		t.Fatalf("first = %+v", b)
	}
	if b.NsPerOp != 1879162656 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 12345 {
		t.Fatalf("allocs/op = %v", b.AllocsPerOp)
	}
	if b.Metrics["sweep_ms"] != 1879 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	a := rep.Benchmarks[1]
	if a.Name != "BenchmarkAllocsPerSend" || a.Gomaxprocs != 8 {
		t.Fatalf("second = %+v", a)
	}
	if a.AllocsPerOp == nil || *a.AllocsPerOp != 0 {
		t.Fatalf("allocs/op = %v", a.AllocsPerOp)
	}
	if a.Metrics["sends/op"] != 30 {
		t.Fatalf("metrics = %v", a.Metrics)
	}
	if rep.Context["cpu"] == "" || rep.Context["goos"] != "linux" {
		t.Fatalf("context = %v", rep.Context)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBad oops\nBenchmarkOK-2 5 10 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkOK" || rep.Benchmarks[0].Gomaxprocs != 2 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

// TestParseChaosRowShape pins the chaos table's benchmark row shape:
// cond/proto path segments become structured Params and the
// sync-latency metric stays a custom unit.
func TestParseChaosRowShape(t *testing.T) {
	const chaos = `BenchmarkChaosTable/cond=partition-heal/proto=lumiere-8  1  120000 ns/op  1.30 sync_delta
BenchmarkChaosTable/cond=churn/proto=basic-lumiere-8  1  130000 ns/op  13.50 sync_delta
`
	rep, err := parse(strings.NewReader(chaos))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Params["cond"] != "partition-heal" || b.Params["proto"] != "lumiere" {
		t.Fatalf("params = %v", b.Params)
	}
	if b.Metrics["sync_delta"] != 1.30 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if c := rep.Benchmarks[1]; c.Params["cond"] != "churn" || c.Params["proto"] != "basic-lumiere" {
		t.Fatalf("params = %v", c.Params)
	}
}

func TestParseParams(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want map[string]string
	}{
		{"BenchmarkX", nil},
		{"BenchmarkX/sub", nil},
		{"BenchmarkX/f=3", map[string]string{"f": "3"}},
		{"BenchmarkX/cond=loss-40/proto=nk20", map[string]string{"cond": "loss-40", "proto": "nk20"}},
		{"BenchmarkX/plain/k=v", map[string]string{"k": "v"}},
		{"BenchmarkX/=v", nil},
	} {
		got := parseParams(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("parseParams(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for k, v := range tc.want {
			if got[k] != v {
				t.Errorf("parseParams(%q)[%q] = %q, want %q", tc.in, k, got[k], v)
			}
		}
	}
}

func TestSplitProcsSuffix(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 0},
		{"BenchmarkSweepWorkers/workers=01-4", "BenchmarkSweepWorkers/workers=01", 4},
		{"BenchmarkOdd-name", "BenchmarkOdd-name", 0},
	} {
		name, procs := splitProcsSuffix(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcsSuffix(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
