package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lumiere
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepWorkers/workers=01-8         	       1	1879162656 ns/op	      1879 sweep_ms	 5438104 B/op	   12345 allocs/op
BenchmarkAllocsPerSend-8                   	     200	      2988 ns/op	        30.00 sends/op	      30 B/op	       0 allocs/op
PASS
ok  	lumiere	12.3s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSweepWorkers/workers=01" || b.Gomaxprocs != 8 || b.Iterations != 1 {
		t.Fatalf("first = %+v", b)
	}
	if b.NsPerOp != 1879162656 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 12345 {
		t.Fatalf("allocs/op = %v", b.AllocsPerOp)
	}
	if b.Metrics["sweep_ms"] != 1879 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	a := rep.Benchmarks[1]
	if a.Name != "BenchmarkAllocsPerSend" || a.Gomaxprocs != 8 {
		t.Fatalf("second = %+v", a)
	}
	if a.AllocsPerOp == nil || *a.AllocsPerOp != 0 {
		t.Fatalf("allocs/op = %v", a.AllocsPerOp)
	}
	if a.Metrics["sends/op"] != 30 {
		t.Fatalf("metrics = %v", a.Metrics)
	}
	if rep.Context["cpu"] == "" || rep.Context["goos"] != "linux" {
		t.Fatalf("context = %v", rep.Context)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("hello\nBenchmarkBad oops\nBenchmarkOK-2 5 10 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkOK" || rep.Benchmarks[0].Gomaxprocs != 2 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

// TestParseChaosRowShape pins the chaos table's benchmark row shape:
// cond/proto path segments become structured Params and the
// sync-latency metric stays a custom unit.
func TestParseChaosRowShape(t *testing.T) {
	const chaos = `BenchmarkChaosTable/cond=partition-heal/proto=lumiere-8  1  120000 ns/op  1.30 sync_delta
BenchmarkChaosTable/cond=churn/proto=basic-lumiere-8  1  130000 ns/op  13.50 sync_delta
`
	rep, err := parse(strings.NewReader(chaos))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Params["cond"] != "partition-heal" || b.Params["proto"] != "lumiere" {
		t.Fatalf("params = %v", b.Params)
	}
	if b.Metrics["sync_delta"] != 1.30 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if c := rep.Benchmarks[1]; c.Params["cond"] != "churn" || c.Params["proto"] != "basic-lumiere" {
		t.Fatalf("params = %v", c.Params)
	}
}

func TestParseParams(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want map[string]string
	}{
		{"BenchmarkX", nil},
		{"BenchmarkX/sub", nil},
		{"BenchmarkX/f=3", map[string]string{"f": "3"}},
		{"BenchmarkX/cond=loss-40/proto=nk20", map[string]string{"cond": "loss-40", "proto": "nk20"}},
		{"BenchmarkX/plain/k=v", map[string]string{"k": "v"}},
		{"BenchmarkX/=v", nil},
	} {
		got := parseParams(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("parseParams(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for k, v := range tc.want {
			if got[k] != v {
				t.Errorf("parseParams(%q)[%q] = %q, want %q", tc.in, k, got[k], v)
			}
		}
	}
}

func TestSplitProcsSuffix(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 0},
		{"BenchmarkSweepWorkers/workers=01-4", "BenchmarkSweepWorkers/workers=01", 4},
		{"BenchmarkOdd-name", "BenchmarkOdd-name", 0},
	} {
		name, procs := splitProcsSuffix(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcsSuffix(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

func fp(v float64) *float64 { return &v }

// TestDiffAgainst pins the -baseline diff mode: deltas are percent
// changes matched by name, missing measures and unmatched benchmarks
// produce no delta, and only allocs_per_op regressions beyond the
// threshold are reported.
func TestDiffAgainst(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: fp(130), BytesPerOp: fp(2000)},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: fp(90)},
		{Name: "BenchmarkNew", NsPerOp: 50},
	}}
	baseline := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: fp(100), BytesPerOp: fp(1000)},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: fp(100)},
		{Name: "BenchmarkGone", NsPerOp: 10, AllocsPerOp: fp(10)},
	}}
	regressed, missing := diffAgainst(rep, baseline, 20)
	a := rep.Benchmarks[0].VsBaseline
	if a == nil || *a.NsPerOpPct != 50 || *a.AllocsPerOpPct != 30 || *a.BytesPerOpPct != 100 {
		t.Fatalf("BenchmarkA deltas = %+v", a)
	}
	if b := rep.Benchmarks[1].VsBaseline; b == nil || *b.AllocsPerOpPct != -10 || b.BytesPerOpPct != nil {
		t.Fatalf("BenchmarkB deltas = %+v", b)
	}
	if rep.Benchmarks[2].VsBaseline != nil {
		t.Fatalf("BenchmarkNew unexpectedly matched: %+v", rep.Benchmarks[2].VsBaseline)
	}
	if len(regressed) != 1 || !strings.Contains(regressed[0], "BenchmarkA") {
		t.Fatalf("regressed = %v", regressed)
	}
	// A baseline benchmark the new run no longer carries is a gate
	// failure in its own right — a silent rename or -bench drift must
	// not turn the gate into a no-op.
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v", missing)
	}
	// A 30%% regression passes a 50%% threshold.
	rep.Benchmarks[0].VsBaseline = nil
	if r, _ := diffAgainst(rep, baseline, 50); len(r) != 0 {
		t.Fatalf("regressed at 50%% threshold = %v", r)
	}
}

// TestPct pins the delta helper's nil handling.
func TestPct(t *testing.T) {
	if p := pct(fp(120), fp(100)); p == nil || *p != 20 {
		t.Fatalf("pct(120,100) = %v", p)
	}
	if p := pct(nil, fp(100)); p != nil {
		t.Fatalf("pct(nil,100) = %v", p)
	}
	if p := pct(fp(1), nil); p != nil {
		t.Fatalf("pct(1,nil) = %v", p)
	}
	if p := pct(fp(1), fp(0)); p != nil {
		t.Fatalf("pct(1,0) = %v", p)
	}
}
