// Command doccheck enforces the repository's documentation contract:
//
//   - every package in the module (the root facade, internal/*, cmd/*,
//     examples/*) must carry a package doc comment ("// Package x ..."
//     or, for main packages, "// Command x ...");
//   - every exported identifier of the root facade package (the public
//     API) must have a doc comment.
//
// It prints one line per violation and exits non-zero if any exist, so
// CI can gate on it:
//
//	go run ./cmd/doccheck
package main

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	for _, dir := range dirs {
		probs, err := checkDir(root, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		problems = append(problems, probs...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages documented, facade fully covered\n", len(dirs))
}

// packageDirs lists every directory under root containing .go files,
// skipping hidden directories and testdata.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory and returns its documentation
// problems: a missing package comment always; undocumented exported
// identifiers for the root facade package.
func checkDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, pkg := range pkgs {
		hasDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasDoc = true
				break
			}
		}
		if !hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		if dir == root && name != "main" {
			problems = append(problems, facadeProblems(dir, pkg)...)
		}
	}
	return problems, nil
}

// facadeProblems reports exported identifiers of the facade package
// that lack doc comments (a doc on a const/var group covers its
// members).
func facadeProblems(dir string, pkg *ast.Package) []string {
	d := doc.New(pkg, dir, doc.AllDecls|doc.PreserveAST)
	var problems []string
	undocumented := func(kind, name, docText string) {
		if strings.TrimSpace(docText) == "" && ast.IsExported(name) {
			problems = append(problems, fmt.Sprintf("%s: exported %s %s is undocumented", dir, kind, name))
		}
	}
	valueDocumented := func(v *doc.Value) bool {
		if strings.TrimSpace(v.Doc) != "" {
			return true
		}
		// A group is covered by per-spec comments too.
		for _, spec := range v.Decl.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok && vs.Doc != nil {
				return true
			}
		}
		return false
	}
	checkValues := func(kind string, vals []*doc.Value) {
		for _, v := range vals {
			if valueDocumented(v) {
				continue
			}
			for _, n := range v.Names {
				undocumented(kind, n, "")
			}
		}
	}
	checkValues("const", d.Consts)
	checkValues("var", d.Vars)
	for _, f := range d.Funcs {
		undocumented("func", f.Name, f.Doc)
	}
	for _, t := range d.Types {
		undocumented("type", t.Name, t.Doc)
		checkValues("const", t.Consts)
		checkValues("var", t.Vars)
		for _, f := range t.Funcs {
			undocumented("func", f.Name, f.Doc)
		}
		for _, m := range t.Methods {
			undocumented("method", t.Name+"."+m.Name, m.Doc)
		}
	}
	return problems
}
