// Kvbank runs a replicated bank on chained HotStuff under Lumiere with
// the maximum number of crashed replicas, random network jitter, and a
// transfer workload — then audits every replica: the committed ledgers
// must be identical and money must be conserved.
package main

import (
	"fmt"
	"os"
	"time"

	"lumiere"
	"lumiere/internal/hotstuff"
	"lumiere/internal/network"
	"lumiere/internal/statemachine"
)

const (
	accounts  = 10
	seedMoney = 1_000
)

func main() {
	const f = 2 // n = 7, and we crash f of them
	res := lumiere.Run(lumiere.Scenario{
		Protocol:        lumiere.ProtoLumiere,
		F:               f,
		Delta:           lumiere.DefaultDelta,
		Delay:           network.Uniform{Min: time.Millisecond, Max: 40 * time.Millisecond},
		Corruptions:     lumiere.CrashFirst(f),
		Duration:        60 * time.Second,
		Seed:            11,
		SMR:             true,
		NewStateMachine: func() statemachine.StateMachine { return statemachine.NewBank() },
		WorkloadRate:    200,
		WorkloadCommand: func(i int) []byte {
			if i < accounts {
				return []byte(fmt.Sprintf("OPEN acct%d %d", i, seedMoney))
			}
			return []byte(fmt.Sprintf("XFER acct%d acct%d %d", i%accounts, (i+7)%accounts, 1+i%13))
		},
	})

	fmt.Printf("cluster: n=%d with %d crashed replicas; %d commands injected\n", res.Cfg.N, f, res.Injected)

	var refLog []hotstuff.Hash
	var refSummary string
	alive := 0
	for i, e := range res.Engines {
		hs, ok := e.(*hotstuff.Core)
		if !ok || hs == nil {
			continue
		}
		alive++
		bank := res.SMs[i].(*statemachine.Bank)
		log := hs.CommittedHashes()
		fmt.Printf("replica %d: committed %d blocks, total balance %d\n", i, len(log), bank.TotalBalance())
		if bank.TotalBalance() != accounts*seedMoney {
			fmt.Printf("  (some OPENs still in flight — total is a multiple of %d: %v)\n",
				seedMoney, bank.TotalBalance()%seedMoney == 0)
		}
		if refLog == nil {
			refLog, refSummary = log, bank.Summary()
			continue
		}
		n := len(refLog)
		if len(log) < n {
			n = len(log)
		}
		for j := 0; j < n; j++ {
			if refLog[j] != log[j] {
				fmt.Printf("CONSISTENCY VIOLATION at block %d on replica %d\n", j, i)
				os.Exit(1)
			}
		}
		if len(log) == len(refLog) && bank.Summary() != refSummary {
			fmt.Printf("STATE DIVERGENCE on replica %d\n", i)
			os.Exit(1)
		}
	}
	fmt.Printf("audit passed: %d live replicas agree on the ledger, money conserved\n", alive)
}
