// Viewsync compares all six implemented view synchronization protocols on
// the same adversarial scenario — the paper's Table 1, live: n = 10 with
// one silent Byzantine processor and a fast network. Watch LP22 pay a
// Θ(n²) epoch synchronization forever and stall behind its unbumped
// clocks, while Lumiere stays linear and responsive.
package main

import (
	"fmt"
	"time"

	"lumiere"
	"lumiere/internal/types"
)

func main() {
	const f = 3 // n = 10
	delta := lumiere.DefaultDelta

	fmt.Printf("n=%d, f=%d, one crashed processor, Δ=%v, δ=%v, 120s virtual\n\n", 3*f+1, f, delta, delta/20)
	fmt.Printf("%-14s %10s %12s %12s %12s %8s\n", "protocol", "decisions", "mean msgs", "max msgs", "max stall", "heavyΘn²")

	for _, p := range lumiere.AllProtocols {
		res := lumiere.Run(lumiere.Scenario{
			Protocol:    p,
			F:           f,
			Delta:       delta,
			DeltaActual: delta / 20,
			Corruptions: lumiere.CrashFirst(1),
			Duration:    120 * time.Second,
			Seed:        7,
		})
		stats := res.Collector.Stats(types.Time(0).Add(20*time.Second), 5)
		heavy := len(res.Collector.HeavySyncViews(types.Time(0).Add(20 * time.Second)))
		fmt.Printf("%-14s %10d %12.1f %12.0f %12v %8d\n",
			p, stats.Count, stats.MeanMsgs, stats.MaxMsgs,
			stats.MaxGap.Round(time.Millisecond), heavy)
	}

	fmt.Println("\nColumns: decisions in steady state; honest messages per decision window")
	fmt.Println("(mean and worst); longest stall between decisions; heavy epoch syncs.")
	fmt.Println("Lumiere: linear per-decision cost, bounded stalls, zero heavy syncs.")
}
