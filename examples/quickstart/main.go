// Quickstart: run Lumiere driving chained HotStuff on a simulated
// partial-synchrony network, commit a replicated KV workload, and print
// what happened. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"time"

	"lumiere"
	"lumiere/internal/hotstuff"
	"lumiere/internal/statemachine"
)

func main() {
	res := lumiere.Run(lumiere.Scenario{
		Protocol:     lumiere.ProtoLumiere,
		F:            1,                    // n = 3f+1 = 4 replicas
		Delta:        lumiere.DefaultDelta, // Δ = 100ms (known bound)
		DeltaActual:  5 * time.Millisecond, // δ: the network is actually fast
		Duration:     20 * time.Second,     // virtual time — runs in ~ms of real time
		SMR:          true,                 // chained HotStuff + KV store
		WorkloadRate: 100,                  // client commands per second
		Seed:         1,
	})

	fmt.Printf("simulated %v of a %d-replica cluster\n", 20*time.Second, res.Cfg.N)
	fmt.Printf("consensus decisions: %d\n", res.DecisionCount())

	stats := res.Collector.Stats(0, 5)
	fmt.Printf("mean decision gap:   %v  (Δ=%v, δ=%v — optimistic responsiveness at work)\n",
		stats.MeanGap.Round(time.Millisecond), res.Cfg.Delta, 5*time.Millisecond)

	hs := res.Engines[0].(*hotstuff.Core)
	kv := res.SMs[0].(*statemachine.KV)
	fmt.Printf("blocks committed:    %d\n", hs.CommittedCount())
	fmt.Printf("commands executed:   %d commands → %d live keys\n", res.Injected, kv.Len())
	if v, ok := kv.Get("key1"); ok {
		fmt.Printf("kv[\"key1\"] = %q on every replica\n", v)
	}
	fmt.Printf("heavy Θ(n²) syncs after warmup: %d (Lumiere retires them — Theorem 1.1(4))\n",
		len(res.Collector.HeavySyncViews(res.GST.Add(5*time.Second))))
}
