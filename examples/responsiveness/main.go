// Responsiveness demonstrates Theorem 1.1(3): Lumiere is *smoothly
// optimistically responsive*. With no faults, decision latency tracks the
// actual network delay δ, not the conservative bound Δ; and each
// additional actual fault adds only O(Δ) to the worst stall — latency
// O(Δ·f_a + δ).
package main

import (
	"fmt"
	"time"

	"lumiere"
	"lumiere/internal/types"
)

func main() {
	const f = 3 // n = 10
	delta := lumiere.DefaultDelta

	fmt.Printf("Part 1 — latency tracks δ (f_a = 0, Δ = %v fixed):\n\n", delta)
	fmt.Printf("%12s %16s %16s\n", "actual δ", "mean gap", "gap/δ")
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond} {
		res := lumiere.Run(lumiere.Scenario{
			Protocol:    lumiere.ProtoLumiere,
			F:           f,
			Delta:       delta,
			DeltaActual: d,
			Duration:    90 * time.Second,
			Seed:        3,
		})
		stats := res.Collector.Stats(types.Time(0).Add(20*time.Second), 5)
		fmt.Printf("%12v %16v %16.2f\n", d, stats.MeanGap.Round(100*time.Microsecond),
			float64(stats.MeanGap)/float64(d))
	}
	fmt.Println("\nThe ratio stays ~3 (= x, the view round-trips): pure network speed.")

	fmt.Printf("\nPart 2 — smooth degradation in f_a (δ = %v):\n\n", delta/20)
	fmt.Printf("%6s %12s %14s %16s\n", "f_a", "decisions", "mean gap", "max stall")
	for fa := 0; fa <= f; fa++ {
		res := lumiere.Run(lumiere.Scenario{
			Protocol:    lumiere.ProtoLumiere,
			F:           f,
			Delta:       delta,
			DeltaActual: delta / 20,
			Corruptions: lumiere.NonProposingSet(nodesUpTo(fa)...),
			Duration:    120 * time.Second,
			Seed:        3,
		})
		stats := res.Collector.Stats(types.Time(0).Add(20*time.Second), 5)
		fmt.Printf("%6d %12d %14v %16v\n", fa, stats.Count,
			stats.MeanGap.Round(time.Millisecond), stats.MaxGap.Round(time.Millisecond))
	}
	fmt.Println("\nEach Byzantine leader costs O(Γ) = O(Δ) when its views come up;")
	fmt.Println("honest views still complete at network speed in between.")
}

func nodesUpTo(k int) []lumiere.NodeID {
	out := make([]lumiere.NodeID, k)
	for i := range out {
		out[i] = lumiere.NodeID(i)
	}
	return out
}
